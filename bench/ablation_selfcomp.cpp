//===- ablation_selfcomp.cpp - Decomposition vs. self-composition -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central motivation (§1, §7): proving timing-channel freedom
/// by decomposition instead of self-composition. This ablation runs both on
/// every Table-1 benchmark:
///
///  - decomposition: the full Blazer pipeline (quotient partitioning +
///    per-trail non-relational bounds);
///  - baseline: sequential self-composition with cost counters, verified
///    by the same zone abstract interpreter (see src/selfcomp).
///
/// The expected shape: the baseline verifies only loop-free/balanced
/// programs (where zones track the two counters exactly) and loses every
/// input-dependent loop to widening, while decomposition verifies all 12
/// safe benchmarks. The "abs states" column shows the product-program
/// state growth the paper warns about.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "selfcomp/SelfComposition.h"

#include <cstdio>
#include <string>

using namespace blazer;

int main() {
  std::printf("Ablation: decomposition (Blazer) vs. sequential "
              "self-composition\n\n");
  std::printf("%-24s %7s | %-9s %9s | %-9s %9s %10s\n", "Benchmark",
              "paper", "decomp", "time (s)", "selfcomp", "time (s)",
              "abs states");
  std::printf("%s\n", std::string(92, '-').c_str());

  int DecompCorrect = 0, SelfCompCorrect = 0, SafeTotal = 0;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    CfgFunction F = B.compile();
    BlazerResult R = analyzeFunction(F, B.options());
    SelfCompResult S =
        verifyBySelfComposition(F, B.options().Observer.threshold());

    bool IsSafe = B.Expected == VerdictKind::Safe;
    SafeTotal += IsSafe ? 1 : 0;
    if (IsSafe && R.Verdict == VerdictKind::Safe)
      ++DecompCorrect;
    if (IsSafe && S.Verified)
      ++SelfCompCorrect;

    std::printf("%-24s %7s | %-9s %9.3f | %-9s %9.3f %10zu\n",
                B.Name.c_str(), verdictName(B.Expected),
                verdictName(R.Verdict), R.TotalSeconds,
                S.Verified ? "verified" : (S.GapBounded ? "refuted"
                                                        : "lost"),
                S.Seconds, S.ProductNodes);
  }
  std::printf("%s\n", std::string(92, '-').c_str());
  std::printf("safe benchmarks verified: decomposition %d/%d, "
              "self-composition %d/%d\n",
              DecompCorrect, SafeTotal, SelfCompCorrect, SafeTotal);
  std::printf("(\"lost\" = the zone analysis could not bound cost1 - cost2 "
              "at all: widening on an\n input-dependent loop severed the "
              "counter relation — the paper's §1 argument.)\n");
  return 0;
}
