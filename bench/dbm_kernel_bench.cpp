//===- dbm_kernel_bench.cpp - DBM kernel micro-benchmarks ------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks for the flat-storage DBM kernels at the dimensions the
/// analysis actually sees: n = 4 and 8 client variables exercise the
/// inline small-matrix buffer (every Table-1 benchmark lives here), n = 16
/// and 32 the pooled heap path. Measured per dimension:
///
///   copy             — rule-of-five copy of a closed zone (the unit cost
///                      every other kernel pays once)
///   incremental add  — copy + addConstraint on a closed matrix (the
///                      O(n^2) single-constraint re-closure hot path)
///   fullclose add    — copy + addConstraintFullClose (the O(n^3)
///                      Floyd-Warshall baseline the incremental path is
///                      measured against)
///   join             — copy + joinWith (the branchless elementwise-max
///                      sweep the fixpoint runs per in-arc)
///
/// Subtract the copy row from the others to isolate the kernel itself.
///
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"

#include <benchmark/benchmark.h>

#include <cstdint>

using namespace blazer;

namespace {

/// Deterministic xorshift RNG so every run benchmarks identical zones.
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }

private:
  uint32_t S;
};

/// A feasible closed zone over \p NumVars variables: random difference
/// constraints with non-negative bounds never create a negative cycle, so
/// the zone stays non-bottom and fully closed.
Dbm makeZone(int NumVars, uint32_t Seed) {
  Dbm D = Dbm::top(NumVars);
  Rng R(Seed);
  for (int K = 0; K < NumVars * 2; ++K) {
    int I = R.range(0, NumVars);
    int J = R.range(0, NumVars);
    if (I != J)
      D.addConstraint(I, J, R.range(0, 20));
  }
  return D;
}

void BM_DbmCopy(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Dbm D = makeZone(N, 1);
  for (auto _ : State) {
    Dbm C = D;
    benchmark::DoNotOptimize(C.bound(1, 0));
  }
}
BENCHMARK(BM_DbmCopy)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DbmIncrementalAdd(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Dbm D = makeZone(N, 2);
  for (auto _ : State) {
    Dbm C = D;
    // Tighter than anything makeZone emitted, so the re-closure really
    // propagates instead of no-opping on an entailed constraint.
    C.addConstraint(1, 0, -1);
    benchmark::DoNotOptimize(C.bound(1, 0));
  }
}
BENCHMARK(BM_DbmIncrementalAdd)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DbmFullCloseAdd(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Dbm D = makeZone(N, 2);
  for (auto _ : State) {
    Dbm C = D;
    C.addConstraintFullClose(1, 0, -1);
    benchmark::DoNotOptimize(C.bound(1, 0));
  }
}
BENCHMARK(BM_DbmFullCloseAdd)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DbmJoin(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  Dbm A = makeZone(N, 3);
  Dbm B = makeZone(N, 4);
  for (auto _ : State) {
    Dbm C = A;
    C.joinWith(B);
    benchmark::DoNotOptimize(C.bound(1, 0));
  }
}
BENCHMARK(BM_DbmJoin)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

} // namespace

BENCHMARK_MAIN();
