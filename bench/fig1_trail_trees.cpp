//===- fig1_trail_trees.cpp - Regenerates Figure 1 of the paper ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1: the trail trees of loginSafe and loginBad (the
/// PPM16 password checker), with the per-trail bound "balloons", the
/// taint/sec edge annotations, and — for loginBad — the synthesized attack
/// specification. Also prints the Figure-2 driver outcome for each.
///
/// Paper reference values (in the authors' bytecode cost model):
///   loginSafe:  trmg [8, 23*g.len+10]; tr1 [8,8];
///               tr2 [19*g.len+10, 23*g.len+10]  -> safe
///   loginBad:   trmg -> taint split -> sec split (tr3/tr4) -> attack
///
//===----------------------------------------------------------------------===//

#include "automata/TrailExpr.h"
#include "benchmarks/Benchmarks.h"

#include <cstdio>

using namespace blazer;

namespace {

void showBenchmark(const char *Name) {
  const BenchmarkProgram *B = findBenchmark(Name);
  if (!B) {
    std::printf("missing benchmark %s\n", Name);
    return;
  }
  CfgFunction F = B->compile();
  std::printf("==== %s (%zu basic blocks) ====\n", Name, F.blockCount());
  std::printf("%s\n", B->Source.c_str());

  BlazerResult R = analyzeFunction(F, B->options());
  std::printf("--- trail tree (Figure 1 style) ---\n%s",
              R.treeString(F).c_str());

  // Render the most general trail as an annotated regex over CFG edges
  // (§4.1/§4.2): tainted/secret-deciding constructors carry |_l, |_h, ...
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  if (!R.Tree.empty()) {
    TrailExpr::Ptr Regex =
        renderAnnotatedTrail(F, R.Tree[0].Auto, R.Taint, 2048);
    if (Regex)
      std::printf("--- trmg as an annotated trail expression ---\n%s\n",
                  Regex->str(&A).c_str());
    else
      std::printf("--- trmg regex exceeds the display budget ---\n");
  }

  for (const AttackSpec &Spec : R.Attacks)
    std::printf("--- attack specification ---\n%s\n", Spec.str().c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Figure 1: trail trees for the PPM16 password checker\n\n");
  showBenchmark("login_safe");
  showBenchmark("login_unsafe");
  return 0;
}
