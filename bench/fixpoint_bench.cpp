//===- fixpoint_bench.cpp - WTO vs FIFO zone-fixpoint microbenchmarks -------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the zone-fixpoint engine in isolation (not a paper
/// figure; an engineering ablation backing DESIGN.md's Performance
/// section). Three axes:
///
///   - Scheduler pairs run the same Analyzer::analyze over the same
///     product graph under the default WTO scheduler and the legacy FIFO
///     worklist, on products of increasing size: the most general trail
///     of a loopy Literature benchmark, a refined (symbol-restricted)
///     trail of the same function, and the end-to-end driver. The
///     transfer memo and in-arc joins are shared by both schedulers, so
///     the deltas isolate pure iteration-order cost (redundant pops and
///     re-widenings).
///   - *_NoArcCache variants re-run the WTO configurations with the
///     per-arc transfer cache and incremental joins disabled
///     (AnalyzerConfig::ArcCache = false); the delta against the default
///     variant is the arc-cache speedup quoted in EXPERIMENTS.md.
///   - *_FreshCtx variants re-run the WTO configurations with the
///     per-thread fixpoint context pool disabled
///     (AnalyzerConfig::PooledContext = false). The benchmark loop calls
///     analyze repeatedly on one product graph, which is exactly the
///     pool's design load (the cascade and trail refinement re-run
///     same-shape fixpoints): the default variant amortizes the WTO
///     decomposition, arc index, and state arena across iterations while
///     the FreshCtx variant rebuilds them each time, so the delta is the
///     amortized-context speedup quoted in EXPERIMENTS.md.
///   - *_Phases variants enable AnalyzerConfig::PhaseTimers and report
///     where one analyze call spends its time (join_ns / transfer_ns /
///     widen_ns counters). Timer probes add two clock reads per
///     join/transfer/widen, so wall-clock from these variants is NOT
///     comparable to the untimed ones — quote speedups from the untimed
///     pairs only.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"

#include <benchmark/benchmark.h>

using namespace blazer;

namespace {

const CfgFunction &modPow2Unsafe() {
  static CfgFunction F = findBenchmark("modPow2_unsafe")->compile();
  return F;
}

const CfgFunction &gpt14Unsafe() {
  static CfgFunction F = findBenchmark("gpt14_unsafe")->compile();
  return F;
}

/// Most-general product of \p F (one DFA state: the largest, loopiest
/// product the driver ever analyzes for this function).
ProductGraph mostGeneralProduct(const CfgFunction &F) {
  BoundAnalysis BA(F);
  return ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
}

/// A refined product: restrict the trail to contain a mid-alphabet symbol,
/// mirroring what RefinePartition produces mid-run (more DFA states, so a
/// larger product than the most general trail's).
ProductGraph refinedProduct(const CfgFunction &F) {
  BoundAnalysis BA(F);
  const EdgeAlphabet &A = BA.alphabet();
  int N = static_cast<int>(A.size());
  Dfa T = BA.mostGeneralTrail()
              .intersect(Dfa::containsSymbol(N, N / 2))
              .minimize();
  return ProductGraph::build(F, T, A);
}

void runFixpoint(benchmark::State &State, const CfgFunction &F,
                 const ProductGraph &G, bool UseWto, bool ArcCache = true,
                 bool PhaseTimers = false, bool Pooled = true) {
  VarEnv Env(F);
  AnalyzerConfig C;
  C.UseWto = UseWto;
  C.ArcCache = ArcCache;
  C.PhaseTimers = PhaseTimers;
  C.PooledContext = Pooled;
  Analyzer Az(F, Env, C);
  FixpointStats Stats;
  for (auto _ : State) {
    AnalysisResult R = Az.analyze(G);
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["pops"] = static_cast<double>(Stats.Pops);
  State.counters["joins"] = static_cast<double>(Stats.Joins);
  State.counters["widenings"] = static_cast<double>(Stats.Widenings);
  State.counters["hit_rate"] = Stats.transferHitRate();
  if (ArcCache) {
    State.counters["arc_hits"] = static_cast<double>(Stats.ArcHits);
    State.counters["arc_misses"] = static_cast<double>(Stats.ArcMisses);
    State.counters["arc_bytes"] = static_cast<double>(Stats.ArcBytes);
  }
  if (Pooled) {
    // Per-iteration pool counters (last analyze call of the loop): in
    // steady state ctx_hits is 1 (every run reuses the shape) and the
    // fast-path counters show how many pops the version token settled.
    State.counters["ctx_hits"] = static_cast<double>(Stats.CtxHits);
    State.counters["cmp_fast_hits"] =
        static_cast<double>(Stats.CmpFastHits);
    State.counters["batch_passes"] =
        static_cast<double>(Stats.BatchPasses);
  }
  if (PhaseTimers) {
    State.counters["join_ns"] = static_cast<double>(Stats.JoinNanos);
    State.counters["transfer_ns"] = static_cast<double>(Stats.TransferNanos);
    State.counters["widen_ns"] = static_cast<double>(Stats.WidenNanos);
  }
}

void BM_Fixpoint_ModPow2_MostGeneral_Wto(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto);

void BM_Fixpoint_ModPow2_MostGeneral_Fifo(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Fifo);

void BM_Fixpoint_ModPow2_Refined_Wto(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Wto);

void BM_Fixpoint_ModPow2_Refined_Fifo(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Fifo);

void BM_Fixpoint_Gpt14_MostGeneral_Wto(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto);

void BM_Fixpoint_Gpt14_MostGeneral_Fifo(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Fifo);

//===----------------------------------------------------------------------===//
// Arc-cache A/B (WTO scheduler; the default above is arc-cache on)
//===----------------------------------------------------------------------===//

void BM_Fixpoint_ModPow2_MostGeneral_Wto_NoArcCache(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto_NoArcCache);

void BM_Fixpoint_ModPow2_Refined_Wto_NoArcCache(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Wto_NoArcCache);

void BM_Fixpoint_Gpt14_MostGeneral_Wto_NoArcCache(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/false);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto_NoArcCache);

//===----------------------------------------------------------------------===//
// Context-pool A/B (WTO scheduler; the default above is fixpoint-ctx=pooled)
//===----------------------------------------------------------------------===//

void BM_Fixpoint_ModPow2_MostGeneral_Wto_FreshCtx(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/true,
              /*PhaseTimers=*/false, /*Pooled=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto_FreshCtx);

void BM_Fixpoint_ModPow2_Refined_Wto_FreshCtx(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/true,
              /*PhaseTimers=*/false, /*Pooled=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Wto_FreshCtx);

void BM_Fixpoint_Gpt14_MostGeneral_Wto_FreshCtx(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/true,
              /*PhaseTimers=*/false, /*Pooled=*/false);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto_FreshCtx);

//===----------------------------------------------------------------------===//
// Per-phase breakdown (PhaseTimers on; wall time not comparable to above)
//===----------------------------------------------------------------------===//

void BM_Fixpoint_ModPow2_MostGeneral_Wto_Phases(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/true,
              /*PhaseTimers=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto_Phases);

void BM_Fixpoint_ModPow2_MostGeneral_Wto_Phases_NoArcCache(
    benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/false,
              /*PhaseTimers=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto_Phases_NoArcCache);

void BM_Fixpoint_Gpt14_MostGeneral_Wto_Phases(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/true,
              /*PhaseTimers=*/true);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto_Phases);

void BM_Fixpoint_Gpt14_MostGeneral_Wto_Phases_NoArcCache(
    benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true, /*ArcCache=*/false,
              /*PhaseTimers=*/true);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto_Phases_NoArcCache);

/// Product construction itself (arc-indexed build with reserved tables).
void BM_ProductGraphBuild(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  BoundAnalysis BA(F);
  Dfa Mg = BA.mostGeneralTrail();
  for (auto _ : State)
    benchmark::DoNotOptimize(ProductGraph::build(F, Mg, BA.alphabet()));
}
BENCHMARK(BM_ProductGraphBuild);

void BM_EndToEnd_ModPow1Unsafe_Wto(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_Wto);

void BM_EndToEnd_ModPow1Unsafe_Fifo(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  Opt.Engine.Fixpoint = FixpointSched::Fifo;
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_Fifo);

void BM_EndToEnd_ModPow1Unsafe_NoArcCache(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  Opt.Engine.ArcCache = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_NoArcCache);

void BM_EndToEnd_ModPow1Unsafe_FreshCtx(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  Opt.Engine.PooledFixpointCtx = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_FreshCtx);

} // namespace

BENCHMARK_MAIN();
