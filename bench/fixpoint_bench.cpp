//===- fixpoint_bench.cpp - WTO vs FIFO zone-fixpoint microbenchmarks -------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the zone-fixpoint schedulers in isolation (not a
/// paper figure; an engineering ablation backing DESIGN.md's Performance
/// section). Each pair runs the same Analyzer::analyze over the same
/// product graph under the default WTO scheduler and the legacy FIFO
/// worklist, on products of increasing size: the most general trail of a
/// loopy Literature benchmark, a refined (symbol-restricted) trail of the
/// same function, and the end-to-end driver. The transfer memo and in-arc
/// joins are shared by both schedulers, so the deltas isolate pure
/// iteration-order cost (redundant pops and re-widenings).
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"

#include <benchmark/benchmark.h>

using namespace blazer;

namespace {

const CfgFunction &modPow2Unsafe() {
  static CfgFunction F = findBenchmark("modPow2_unsafe")->compile();
  return F;
}

const CfgFunction &gpt14Unsafe() {
  static CfgFunction F = findBenchmark("gpt14_unsafe")->compile();
  return F;
}

/// Most-general product of \p F (one DFA state: the largest, loopiest
/// product the driver ever analyzes for this function).
ProductGraph mostGeneralProduct(const CfgFunction &F) {
  BoundAnalysis BA(F);
  return ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
}

/// A refined product: restrict the trail to contain a mid-alphabet symbol,
/// mirroring what RefinePartition produces mid-run (more DFA states, so a
/// larger product than the most general trail's).
ProductGraph refinedProduct(const CfgFunction &F) {
  BoundAnalysis BA(F);
  const EdgeAlphabet &A = BA.alphabet();
  int N = static_cast<int>(A.size());
  Dfa T = BA.mostGeneralTrail()
              .intersect(Dfa::containsSymbol(N, N / 2))
              .minimize();
  return ProductGraph::build(F, T, A);
}

void runFixpoint(benchmark::State &State, const CfgFunction &F,
                 const ProductGraph &G, bool UseWto) {
  VarEnv Env(F);
  Analyzer Az(F, Env, UseWto);
  FixpointStats Stats;
  for (auto _ : State) {
    AnalysisResult R = Az.analyze(G);
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["pops"] = static_cast<double>(Stats.Pops);
  State.counters["joins"] = static_cast<double>(Stats.Joins);
  State.counters["widenings"] = static_cast<double>(Stats.Widenings);
  State.counters["hit_rate"] = Stats.transferHitRate();
}

void BM_Fixpoint_ModPow2_MostGeneral_Wto(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Wto);

void BM_Fixpoint_ModPow2_MostGeneral_Fifo(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_MostGeneral_Fifo);

void BM_Fixpoint_ModPow2_Refined_Wto(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Wto);

void BM_Fixpoint_ModPow2_Refined_Fifo(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  ProductGraph G = refinedProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_ModPow2_Refined_Fifo);

void BM_Fixpoint_Gpt14_MostGeneral_Wto(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/true);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Wto);

void BM_Fixpoint_Gpt14_MostGeneral_Fifo(benchmark::State &State) {
  const CfgFunction &F = gpt14Unsafe();
  ProductGraph G = mostGeneralProduct(F);
  runFixpoint(State, F, G, /*UseWto=*/false);
}
BENCHMARK(BM_Fixpoint_Gpt14_MostGeneral_Fifo);

/// Product construction itself (arc-indexed build with reserved tables).
void BM_ProductGraphBuild(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  BoundAnalysis BA(F);
  Dfa Mg = BA.mostGeneralTrail();
  for (auto _ : State)
    benchmark::DoNotOptimize(ProductGraph::build(F, Mg, BA.alphabet()));
}
BENCHMARK(BM_ProductGraphBuild);

void BM_EndToEnd_ModPow1Unsafe_Wto(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_Wto);

void BM_EndToEnd_ModPow1Unsafe_Fifo(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  Opt.Engine.Fixpoint = FixpointSched::Fifo;
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEnd_ModPow1Unsafe_Fifo);

} // namespace

BENCHMARK_MAIN();
