//===- micro_components.cpp - google-benchmark component timings ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the individual substrates (not a paper figure; an
/// engineering ablation): automaton operations, zone-domain operations,
/// taint analysis, trail-restricted abstract interpretation, bound
/// analysis, and the end-to-end driver on a representative benchmark.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "dataflow/Taint.h"
#include "selfcomp/SelfComposition.h"

#include <benchmark/benchmark.h>

using namespace blazer;

namespace {

const CfgFunction &loginUnsafe() {
  static CfgFunction F = findBenchmark("login_unsafe")->compile();
  return F;
}

const CfgFunction &modPow2Unsafe() {
  static CfgFunction F = findBenchmark("modPow2_unsafe")->compile();
  return F;
}

void BM_CompileBenchmark(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("login_unsafe");
  for (auto _ : State)
    benchmark::DoNotOptimize(B->compile());
}
BENCHMARK(BM_CompileBenchmark);

void BM_TaintAnalysis(benchmark::State &State) {
  const CfgFunction &F = loginUnsafe();
  for (auto _ : State)
    benchmark::DoNotOptimize(runTaintAnalysis(F));
}
BENCHMARK(BM_TaintAnalysis);

void BM_CfgAutomatonMinimize(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa D = Dfa::fromCfg(F, A);
  for (auto _ : State)
    benchmark::DoNotOptimize(D.minimize());
}
BENCHMARK(BM_CfgAutomatonMinimize);

void BM_TrailIntersection(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa D = Dfa::fromCfg(F, A);
  int N = static_cast<int>(A.size());
  for (auto _ : State) {
    Dfa T = D.intersect(Dfa::avoidsSymbol(N, 0))
                .intersect(Dfa::containsSymbol(N, N / 2));
    benchmark::DoNotOptimize(T.minimize());
  }
}
BENCHMARK(BM_TrailIntersection);

void BM_LanguageInclusion(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa D = Dfa::fromCfg(F, A);
  Dfa Sub = D.intersect(Dfa::avoidsSymbol(static_cast<int>(A.size()), 0));
  for (auto _ : State)
    benchmark::DoNotOptimize(Sub.includedIn(D));
}
BENCHMARK(BM_LanguageInclusion);

void BM_ZoneClosureViaConstraints(benchmark::State &State) {
  for (auto _ : State) {
    Dbm D = Dbm::top(16);
    for (int I = 1; I < 16; ++I)
      D.addConstraint(I, (I % 15) + 1, I);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_ZoneClosureViaConstraints);

void BM_ZoneJoinWiden(benchmark::State &State) {
  Dbm A = Dbm::top(16);
  Dbm B = Dbm::top(16);
  for (int I = 1; I < 16; ++I) {
    A.addConstraint(I, 0, I);
    B.addConstraint(I, 0, I + 3);
  }
  for (auto _ : State) {
    Dbm J = A;
    J.joinWith(B);
    J.widenWith(B);
    benchmark::DoNotOptimize(J);
  }
}
BENCHMARK(BM_ZoneJoinWiden);

void BM_AbstractInterpretation(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa D = Dfa::fromCfg(F, A);
  ProductGraph G = ProductGraph::build(F, D, A);
  VarEnv Env(F);
  Analyzer Az(F, Env);
  for (auto _ : State)
    benchmark::DoNotOptimize(Az.analyze(G));
}
BENCHMARK(BM_AbstractInterpretation);

void BM_BoundAnalysisMostGeneral(benchmark::State &State) {
  const CfgFunction &F = modPow2Unsafe();
  BoundAnalysis BA(F);
  Dfa Mg = BA.mostGeneralTrail();
  for (auto _ : State)
    benchmark::DoNotOptimize(BA.analyzeTrail(Mg));
}
BENCHMARK(BM_BoundAnalysisMostGeneral);

void BM_EndToEndLoginSafe(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("login_safe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEndLoginSafe);

void BM_EndToEndModPow1Unsafe(benchmark::State &State) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeFunction(F, Opt));
}
BENCHMARK(BM_EndToEndModPow1Unsafe);

void BM_SelfCompositionBaseline(benchmark::State &State) {
  const CfgFunction &F = loginUnsafe();
  for (auto _ : State)
    benchmark::DoNotOptimize(verifyBySelfComposition(F, 700));
}
BENCHMARK(BM_SelfCompositionBaseline);

} // namespace

BENCHMARK_MAIN();
