//===- scaling_subtrails.cpp - The §6.2 subtrail-explosion claim ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6.2 observes that "running time appears loosely related to the number
/// of basic blocks" and attributes the outliers to "a combinatorial
/// explosion of subtrails, super-linear with respect to the number of
/// conditional branches". This bench regenerates that observation with two
/// synthetic families:
///
///  - safe(k):   k sequential branches on the public input, each with
///               balanced arms — the safety loop refines through them;
///  - unsafe(k): k sequential branches on the secret, each unbalanced —
///               the attack search decomposes trail after trail.
///
/// For each k it reports basic blocks, trails explored, and wall time.
///
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"
#include "ir/Cfg.h"

#include <cstdio>
#include <sstream>
#include <string>

using namespace blazer;

namespace {

/// k sequential low branches, each choosing between a loop over the public
/// input and a constant step. Under the concrete-instruction observer,
/// a trail is narrow only once EVERY branch is resolved, so the refinement
/// explores on the order of 2^k subtrails — the §6.2 explosion.
std::string makeSafeProgram(int K) {
  std::ostringstream OS;
  OS << "fn safe_k(public low: int, secret high: int) {\n"
     << "  var x: int = 0;\n"
     << "  var i: int = 0;\n";
  for (int I = 0; I < K; ++I) {
    OS << "  if (low > " << I << ") {\n"
       << "    i = 0;\n"
       << "    while (i < low) { i = i + 1; }\n"
       << "  } else {\n"
       << "    x = x + 1;\n"
       << "  }\n";
  }
  OS << "}\n";
  return OS.str();
}

/// Same k public branches, plus one final unbalanced secret branch: the
/// safety loop pays the full 2^k decomposition before the attack search
/// closes the case.
std::string makeUnsafeProgram(int K) {
  std::ostringstream OS;
  OS << "fn unsafe_k(public low: int, secret high: int) {\n"
     << "  var x: int = 0;\n"
     << "  var i: int = 0;\n";
  for (int I = 0; I < K; ++I) {
    OS << "  if (low > " << I << ") {\n"
       << "    i = 0;\n"
       << "    while (i < low) { i = i + 1; }\n"
       << "  } else {\n"
       << "    x = x + 1;\n"
       << "  }\n";
  }
  OS << "  if (high > 0) {\n"
     << "    i = 0;\n"
     << "    while (i < high) { i = i + 1; }\n"
     << "  }\n"
     << "}\n";
  return OS.str();
}

void runFamily(const char *Label, std::string (*Make)(int), int MaxK) {
  std::printf("-- %s family --\n", Label);
  std::printf("%4s %8s %10s %12s %10s\n", "k", "blocks", "trails",
              "verdict", "time (s)");
  for (int K = 1; K <= MaxK; ++K) {
    auto F = compileSingleFunction(Make(K), BuiltinRegistry::standard());
    if (!F) {
      std::printf("compile error at k=%d: %s\n", K, F.diag().str().c_str());
      return;
    }
    BlazerOptions Opt;
    // Concrete observer: every unresolved branch leaves an observable gap,
    // so narrowness requires fully resolved trails.
    Opt.Observer = ObserverModel::concreteInstructions(/*Threshold=*/50,
                                                       /*DefaultMaxInput=*/100);
    Opt.MaxTrails = 4096;
    Opt.MaxDepth = 64;
    BlazerResult R = analyzeFunction(*F, Opt);
    std::printf("%4d %8zu %10zu %12s %10.3f\n", K, F->blockCount(),
                R.Tree.size(), verdictName(R.Verdict), R.TotalSeconds);
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Subtrail growth vs. number of conditional branches (§6.2)\n\n");
  runFamily("safe", makeSafeProgram, 7);
  runFamily("safe+secret tail", makeUnsafeProgram, 7);
  std::printf("Expected shape: trails and time grow super-linearly in k,\n"
              "mirroring the paper's modPow/gpt14 outliers.\n");
  return 0;
}
