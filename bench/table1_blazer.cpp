//===- table1_blazer.cpp - Regenerates Table 1 of the paper ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Blazer on all 24 benchmarks and prints the Table-1 rows: Size
/// (basic blocks), median Safety time, and median Safety+Attack time over
/// NRUNS runs (the paper uses the median of five). Safe benchmarks print
/// "-" in the w/Attack column, as in the paper. A trailing column compares
/// the verdict against the paper's expectation.
///
/// Set BLAZER_TABLE1_RUNS to override the run count (default 5).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace blazer;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N == 0)
    return 0;
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

} // namespace

int main() {
  int Runs = 5;
  if (const char *EnvRuns = std::getenv("BLAZER_TABLE1_RUNS"))
    Runs = std::max(1, std::atoi(EnvRuns));

  std::printf("Table 1: Blazer on the benchmark suite (median of %d runs)\n",
              Runs);
  std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", "Benchmark",
              "Category", "Size", "Safety (s)", "w/Attack (s)", "Verdict",
              "vs paper");
  std::printf("%s\n", std::string(96, '-').c_str());

  int Mismatches = 0;
  std::string LastCategory;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    if (B.Category != LastCategory) {
      std::printf("-- %s --\n", B.Category.c_str());
      LastCategory = B.Category;
    }
    CfgFunction F = B.compile();
    std::vector<double> SafetyTimes, TotalTimes;
    BlazerResult Last;
    for (int R = 0; R < Runs; ++R) {
      BlazerResult Res = analyzeFunction(F, B.options());
      SafetyTimes.push_back(Res.SafetySeconds);
      TotalTimes.push_back(Res.TotalSeconds);
      Last = std::move(Res);
    }
    bool Match = Last.Verdict == B.Expected;
    Mismatches += Match ? 0 : 1;
    bool Safe = Last.Verdict == VerdictKind::Safe;
    char Attack[32];
    if (Safe)
      std::snprintf(Attack, sizeof(Attack), "%12s", "-");
    else
      std::snprintf(Attack, sizeof(Attack), "%12.3f", median(TotalTimes));
    std::printf("%-24s %-12s %5zu  %12.3f  %s  %-8s %s\n", B.Name.c_str(),
                B.Category.c_str(), F.blockCount(), median(SafetyTimes),
                Attack, verdictName(Last.Verdict),
                Match ? "match" : "MISMATCH");
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("verdict agreement with the paper: %d/24\n", 24 - Mismatches);
  return Mismatches == 0 ? 0 : 1;
}
