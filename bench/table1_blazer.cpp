//===- table1_blazer.cpp - Regenerates Table 1 of the paper ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Blazer on all 24 benchmarks and prints the Table-1 rows: Size
/// (basic blocks), median Safety time, and median Safety+Attack time over
/// NRUNS runs (the paper uses the median of five). Safe benchmarks print
/// "-" in the w/Attack column, as in the paper. A trailing column compares
/// the verdict against the paper's expectation.
///
/// Set BLAZER_TABLE1_RUNS to override the run count (default 5), and
/// BLAZER_TABLE1_TIMEOUT to cap each per-function analysis in wall-clock
/// seconds (default 300; 0 disables). A tripped deadline prints a T/O row
/// — like the paper's own Table 1 — and the driver moves on to the next
/// benchmark instead of hanging. BLAZER_TABLE1_JOBS sets the analysis
/// worker-thread count (default 1 = sequential; 0 = hardware concurrency)
/// so the sweep exercises the parallel trail-tree path; verdicts and
/// bounds are identical at any job count.
///
/// Perf-trajectory knobs (the BENCH_table1.json pipeline):
///   BLAZER_TABLE1_CACHE=0|1      trail-bound memo cache (default 1). With
///                                the cache on, runs of the same benchmark
///                                share one cache, so repetition medians
///                                measure the warm path the refinement
///                                driver actually exercises.
///   BLAZER_TABLE1_FULLCLOSE=0|1  force every DBM addConstraint through
///                                the full Floyd-Warshall closure
///                                (default 0) — the pre-incremental
///                                baseline for A/B timing.
///   BLAZER_TABLE1_FIFO=0|1       drive the zone fixpoint with the legacy
///                                FIFO worklist instead of the WTO
///                                scheduler (default 0) — the
///                                pre-WTO baseline for A/B timing.
///   BLAZER_TABLE1_JSON=PATH      write per-benchmark median wall-clock
///                                milliseconds (plus verdicts, cache and
///                                fixpoint counters) as one JSON mode
///                                object.
///
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"
#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace blazer;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N == 0)
    return 0;
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

/// 0/1 environment switch; anything else falls back to \p Default with a
/// warning (mirroring the other BLAZER_TABLE1_* knobs).
bool envSwitch(const char *Name, bool Default) {
  const char *V = std::getenv(Name);
  if (!V)
    return Default;
  if (std::string(V) == "0")
    return false;
  if (std::string(V) == "1")
    return true;
  std::fprintf(stderr, "ignoring malformed %s '%s'\n", Name, V);
  return Default;
}

/// One emitted JSON row.
struct JsonRow {
  std::string Name;
  std::string Category;
  size_t Blocks = 0;
  std::string Verdict;
  bool Match = false;
  bool TimedOut = false;
  double MedianWallMs = 0;
  double MedianSafetyMs = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  FixpointStats Fixpoint;
};

} // namespace

int main() {
  int Runs = 5;
  if (const char *EnvRuns = std::getenv("BLAZER_TABLE1_RUNS"))
    Runs = std::max(1, std::atoi(EnvRuns));
  double Timeout = 300;
  if (const char *EnvTimeout = std::getenv("BLAZER_TABLE1_TIMEOUT")) {
    char *End = nullptr;
    double V = std::strtod(EnvTimeout, &End);
    if (End != EnvTimeout && *End == '\0' && V >= 0)
      Timeout = V;
    else
      std::fprintf(stderr,
                   "ignoring malformed BLAZER_TABLE1_TIMEOUT '%s'\n",
                   EnvTimeout);
  }
  int Jobs = 1;
  if (const char *EnvJobs = std::getenv("BLAZER_TABLE1_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(EnvJobs, &End, 10);
    if (End != EnvJobs && *End == '\0' && V >= 0 && V <= 1024)
      Jobs = static_cast<int>(V);
    else
      std::fprintf(stderr, "ignoring malformed BLAZER_TABLE1_JOBS '%s'\n",
                   EnvJobs);
  }
  BudgetLimits Limits;
  Limits.TimeoutSeconds = Timeout;
  bool UseCache = envSwitch("BLAZER_TABLE1_CACHE", true);
  bool FullClose = envSwitch("BLAZER_TABLE1_FULLCLOSE", false);
  bool Fifo = envSwitch("BLAZER_TABLE1_FIFO", false);
  Dbm::forceFullClose(FullClose);
  const char *JsonPath = std::getenv("BLAZER_TABLE1_JSON");
  std::vector<JsonRow> JsonRows;

  std::printf("Table 1: Blazer on the benchmark suite (median of %d runs, "
              "jobs=%d, cache=%s, closure=%s, fixpoint=%s)\n",
              Runs, Jobs, UseCache ? "on" : "off",
              FullClose ? "full" : "incremental", Fifo ? "fifo" : "wto");
  std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", "Benchmark",
              "Category", "Size", "Safety (s)", "w/Attack (s)", "Verdict",
              "vs paper");
  std::printf("%s\n", std::string(96, '-').c_str());

  int Mismatches = 0;
  std::string LastCategory;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    if (B.Category != LastCategory) {
      std::printf("-- %s --\n", B.Category.c_str());
      LastCategory = B.Category;
    }
    CfgFunction F = B.compile();
    std::vector<double> SafetyTimes, TotalTimes, WallMs;
    BlazerResult Last;
    // Summed over all runs: with a warm shared cache the later runs skip
    // the zone fixpoints entirely, so the cold first run dominates.
    FixpointStats FixpointTotal;
    // With the cache on, the benchmark's runs share one cache: the first
    // run pays the misses, later runs measure the warm path — the same
    // reuse profile the refinement driver sees across rounds.
    std::shared_ptr<TrailBoundCache> Shared =
        UseCache ? std::make_shared<TrailBoundCache>() : nullptr;
    for (int R = 0; R < Runs; ++R) {
      auto W0 = std::chrono::steady_clock::now();
      BlazerResult Res = runBenchmark(B, Limits, Jobs, UseCache, Shared,
                                      Fifo);
      auto W1 = std::chrono::steady_clock::now();
      WallMs.push_back(
          std::chrono::duration<double, std::milli>(W1 - W0).count());
      SafetyTimes.push_back(Res.SafetySeconds);
      TotalTimes.push_back(Res.TotalSeconds);
      FixpointTotal.mergeFrom(Res.Fixpoint);
      Last = std::move(Res);
      if (Last.Degradation.tripped())
        break; // No point repeating a run that hit its budget.
    }
    bool TimedOut = Last.Degradation.tripped();
    bool Match = Last.Verdict == B.Expected;
    // A T/O row records the timeout instead of a verdict mismatch: the
    // budget, not the algorithm, decided the outcome.
    Mismatches += (Match || TimedOut) ? 0 : 1;
    bool Safe = Last.Verdict == VerdictKind::Safe;
    char Attack[32];
    if (Safe)
      std::snprintf(Attack, sizeof(Attack), "%12s", "-");
    else
      std::snprintf(Attack, sizeof(Attack), "%12.3f", median(TotalTimes));
    std::printf("%-24s %-12s %5zu  %12.3f  %s  %-8s %s\n", B.Name.c_str(),
                B.Category.c_str(), F.blockCount(), median(SafetyTimes),
                Attack, TimedOut ? "T/O" : verdictName(Last.Verdict),
                TimedOut ? "timeout" : (Match ? "match" : "MISMATCH"));
    if (TimedOut)
      std::printf("    %s\n", Last.Degradation.str().c_str());
    if (JsonPath) {
      JsonRow Row;
      Row.Name = B.Name;
      Row.Category = B.Category;
      Row.Blocks = F.blockCount();
      Row.Verdict = verdictName(Last.Verdict);
      Row.Match = Match;
      Row.TimedOut = TimedOut;
      Row.MedianWallMs = median(WallMs);
      Row.MedianSafetyMs = median(SafetyTimes) * 1000.0;
      Row.CacheHits = Last.CacheStats.Hits;
      Row.CacheMisses = Last.CacheStats.Misses;
      Row.CacheEvictions = Last.CacheStats.Evictions;
      Row.Fixpoint = FixpointTotal;
      JsonRows.push_back(std::move(Row));
    }
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("verdict agreement with the paper: %d/24\n", 24 - Mismatches);

  if (JsonPath) {
    std::FILE *Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write BLAZER_TABLE1_JSON path '%s'\n",
                   JsonPath);
      return 1;
    }
    std::fprintf(Out,
                 "{\n"
                 "  \"mode\": {\"cache\": %s, \"closure\": \"%s\", "
                 "\"fixpoint\": \"%s\", \"jobs\": %d, \"runs\": %d},\n"
                 "  \"verdict_agreement\": \"%d/24\",\n"
                 "  \"benchmarks\": [\n",
                 UseCache ? "true" : "false",
                 FullClose ? "full" : "incremental", Fifo ? "fifo" : "wto",
                 Jobs, Runs, 24 - Mismatches);
    for (size_t I = 0; I < JsonRows.size(); ++I) {
      const JsonRow &R = JsonRows[I];
      std::fprintf(
          Out,
          "    {\"name\": \"%s\", \"category\": \"%s\", \"blocks\": %zu, "
          "\"verdict\": \"%s\", \"match\": %s, \"timed_out\": %s, "
          "\"median_wall_ms\": %.3f, \"median_safety_ms\": %.3f, "
          "\"cache\": {\"hits\": %llu, \"misses\": %llu, "
          "\"evictions\": %llu}, "
          "\"fixpoint\": {\"pops\": %llu, \"joins\": %llu, "
          "\"widenings\": %llu, \"transfer_hit_rate\": %.4f, "
          "\"sweeps\": %llu}}%s\n",
          R.Name.c_str(), R.Category.c_str(), R.Blocks, R.Verdict.c_str(),
          R.Match ? "true" : "false", R.TimedOut ? "true" : "false",
          R.MedianWallMs, R.MedianSafetyMs,
          static_cast<unsigned long long>(R.CacheHits),
          static_cast<unsigned long long>(R.CacheMisses),
          static_cast<unsigned long long>(R.CacheEvictions),
          static_cast<unsigned long long>(R.Fixpoint.Pops),
          static_cast<unsigned long long>(R.Fixpoint.Joins),
          static_cast<unsigned long long>(R.Fixpoint.Widenings),
          R.Fixpoint.transferHitRate(),
          static_cast<unsigned long long>(R.Fixpoint.Sweeps),
          I + 1 < JsonRows.size() ? "," : "");
    }
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
  }
  return Mismatches == 0 ? 0 : 1;
}
