//===- table1_blazer.cpp - Regenerates Table 1 of the paper ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Blazer on all 24 benchmarks and prints the Table-1 rows: Size
/// (basic blocks), median Safety time, and median Safety+Attack time over
/// NRUNS runs (the paper uses the median of five). Safe benchmarks print
/// "-" in the w/Attack column, as in the paper. A trailing column compares
/// the verdict against the paper's expectation.
///
/// Set BLAZER_TABLE1_RUNS to override the run count (default 5), and
/// BLAZER_TABLE1_TIMEOUT to cap each per-function analysis in wall-clock
/// seconds (default 300; 0 disables). A tripped deadline prints a T/O row
/// — like the paper's own Table 1 — and the driver moves on to the next
/// benchmark instead of hanging. BLAZER_TABLE1_JOBS sets the analysis
/// worker-thread count (default 1 = sequential; 0 = hardware concurrency)
/// so the sweep exercises the parallel trail-tree path; verdicts and
/// bounds are identical at any job count.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace blazer;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N == 0)
    return 0;
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

} // namespace

int main() {
  int Runs = 5;
  if (const char *EnvRuns = std::getenv("BLAZER_TABLE1_RUNS"))
    Runs = std::max(1, std::atoi(EnvRuns));
  double Timeout = 300;
  if (const char *EnvTimeout = std::getenv("BLAZER_TABLE1_TIMEOUT")) {
    char *End = nullptr;
    double V = std::strtod(EnvTimeout, &End);
    if (End != EnvTimeout && *End == '\0' && V >= 0)
      Timeout = V;
    else
      std::fprintf(stderr,
                   "ignoring malformed BLAZER_TABLE1_TIMEOUT '%s'\n",
                   EnvTimeout);
  }
  int Jobs = 1;
  if (const char *EnvJobs = std::getenv("BLAZER_TABLE1_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(EnvJobs, &End, 10);
    if (End != EnvJobs && *End == '\0' && V >= 0 && V <= 1024)
      Jobs = static_cast<int>(V);
    else
      std::fprintf(stderr, "ignoring malformed BLAZER_TABLE1_JOBS '%s'\n",
                   EnvJobs);
  }
  BudgetLimits Limits;
  Limits.TimeoutSeconds = Timeout;

  std::printf("Table 1: Blazer on the benchmark suite (median of %d runs, "
              "jobs=%d)\n",
              Runs, Jobs);
  std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", "Benchmark",
              "Category", "Size", "Safety (s)", "w/Attack (s)", "Verdict",
              "vs paper");
  std::printf("%s\n", std::string(96, '-').c_str());

  int Mismatches = 0;
  std::string LastCategory;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    if (B.Category != LastCategory) {
      std::printf("-- %s --\n", B.Category.c_str());
      LastCategory = B.Category;
    }
    CfgFunction F = B.compile();
    std::vector<double> SafetyTimes, TotalTimes;
    BlazerResult Last;
    for (int R = 0; R < Runs; ++R) {
      BlazerResult Res = runBenchmark(B, Limits, Jobs);
      SafetyTimes.push_back(Res.SafetySeconds);
      TotalTimes.push_back(Res.TotalSeconds);
      Last = std::move(Res);
      if (Last.Degradation.tripped())
        break; // No point repeating a run that hit its budget.
    }
    bool TimedOut = Last.Degradation.tripped();
    bool Match = Last.Verdict == B.Expected;
    // A T/O row records the timeout instead of a verdict mismatch: the
    // budget, not the algorithm, decided the outcome.
    Mismatches += (Match || TimedOut) ? 0 : 1;
    bool Safe = Last.Verdict == VerdictKind::Safe;
    char Attack[32];
    if (Safe)
      std::snprintf(Attack, sizeof(Attack), "%12s", "-");
    else
      std::snprintf(Attack, sizeof(Attack), "%12.3f", median(TotalTimes));
    std::printf("%-24s %-12s %5zu  %12.3f  %s  %-8s %s\n", B.Name.c_str(),
                B.Category.c_str(), F.blockCount(), median(SafetyTimes),
                Attack, TimedOut ? "T/O" : verdictName(Last.Verdict),
                TimedOut ? "timeout" : (Match ? "match" : "MISMATCH"));
    if (TimedOut)
      std::printf("    %s\n", Last.Degradation.str().c_str());
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("verdict agreement with the paper: %d/24\n", 24 - Mismatches);
  return Mismatches == 0 ? 0 : 1;
}
