//===- table1_blazer.cpp - Regenerates Table 1 of the paper ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Blazer on all 24 benchmarks and prints the Table-1 rows: Size
/// (basic blocks), median Safety time, and median Safety+Attack time over
/// NRUNS runs (the paper uses the median of five). Safe benchmarks print
/// "-" in the w/Attack column, as in the paper. A trailing column compares
/// the verdict against the paper's expectation.
///
/// Set BLAZER_TABLE1_RUNS to override the run count (default 5), and
/// BLAZER_TABLE1_TIMEOUT to cap each per-function analysis in wall-clock
/// seconds (default 300; 0 disables). A tripped deadline prints a T/O row
/// — like the paper's own Table 1 — and the driver moves on to the next
/// benchmark instead of hanging. BLAZER_TABLE1_JOBS sets the analysis
/// worker-thread count (default 1 = sequential; 0 = hardware concurrency)
/// so the sweep exercises the parallel trail-tree path; verdicts and
/// bounds are identical at any job count.
///
/// Engine knobs (the BENCH_table1.json pipeline) come from the EngineConfig
/// registry: for every knob the canonical BLAZER_TABLE1_<NAME> env var is
/// read (DOMAIN=cascade|zone|interval-only, FIXPOINT=wto|fifo,
/// CLOSURE=incremental|full, CACHE=on|off, FAULT_PLAN=<seed>:<rate>[:...]),
/// plus the deprecated 0/1 aliases BLAZER_TABLE1_{FIFO,FULLCLOSE,CACHE}
/// from the pre-unification drivers. With the cache on, runs of the same
/// benchmark share one cache, so repetition medians measure the warm path
/// the refinement driver actually exercises. BLAZER_TABLE1_JSON=PATH
/// writes per-benchmark median wall-clock milliseconds plus verdicts and
/// the shared engine-telemetry schema as one JSON mode object.
///
/// TableCT matrix mode: BLAZER_TABLE1_MODE=tablect swaps the sweep for
/// the constant-time matrix — every TableCT benchmark under --ct across
/// cost models {unit, weighted:arith=3,call=2, memaccess} and jobs {1, 8}
/// — plus a Table-1 drift check (all 24 benchmarks once, unit cost,
/// normal mode: verdicts must still match the paper). The JSON lands at
/// BLAZER_TABLE1_JSON as with the default sweep; exit status is 0 only
/// when every ct-verdict matches the registry expectation and the drift
/// check is clean. BLAZER_TABLE1_CT_FILTER=<substring> restricts the
/// matrix to matching benchmark names and BLAZER_TABLE1_CT_DRIFT=0 skips
/// the drift half (the smoke test uses both to stay cheap).
///
/// Crash containment: each benchmark runs in a forked child with a
/// watchdog deadline, so one crashing or wedged benchmark (heap
/// corruption, an injected abort() plan, a runaway fixpoint) costs its own
/// row, not the sweep. A crashed or watchdog-killed child is retried once;
/// if it dies again the table prints a CRASH row and the JSON gains a
/// structured {"crashed": true, "exit_status": ..} row while the other 23
/// benchmarks report normally. BLAZER_TABLE1_SANDBOX=0 runs everything
/// in-process (debuggers, coverage); BLAZER_TABLE1_WATCHDOG overrides the
/// per-benchmark deadline in seconds (default 600, 0 disables);
/// BLAZER_TABLE1_FAULT_ONLY=<name> applies the fault plan to one benchmark
/// and runs the rest fault-free (the crash-containment test uses this to
/// crash exactly one row).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace blazer;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N == 0)
    return 0;
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

/// Everything one benchmark contributes to the sweep, rendered by whoever
/// ran it (the forked child, normally) and merged by the parent.
struct BenchReport {
  bool Match = false;
  bool TimedOut = false;
  /// The fully rendered human table row(s), category header excluded.
  std::string Human;
  /// The fully rendered JSON row ("" when JSON output is off).
  std::string Json;
};

/// Measures one benchmark: Runs repetitions sharing one cache, medians,
/// verdict comparison, and row rendering. Runs in the sandbox child (or
/// in-process under BLAZER_TABLE1_SANDBOX=0).
BenchReport runOne(const BenchmarkProgram &B, int Runs,
                   const BudgetLimits &Limits, int Jobs,
                   const EngineConfig &Engine, bool WantJson) {
  BenchReport Rep;
  CfgFunction F = B.compile();
  std::vector<double> SafetyTimes, TotalTimes, WallMs;
  BlazerResult Last;
  // Fixpoint/cascade work summed over all runs: with a warm shared cache
  // the later runs skip the fixpoints entirely, so the cold first run
  // dominates. Cache counters instead come from the last run's snapshot
  // — the shared cache already accumulates across runs.
  EngineTelemetry Total;
  // With the cache on, the benchmark's runs share one cache: the first
  // run pays the misses, later runs measure the warm path — the same
  // reuse profile the refinement driver sees across rounds.
  std::shared_ptr<TrailBoundCache> Shared =
      Engine.TrailCache ? std::make_shared<TrailBoundCache>() : nullptr;
  for (int R = 0; R < Runs; ++R) {
    auto W0 = std::chrono::steady_clock::now();
    BlazerResult Res = runBenchmark(B, Limits, Jobs, Engine, Shared);
    auto W1 = std::chrono::steady_clock::now();
    WallMs.push_back(
        std::chrono::duration<double, std::milli>(W1 - W0).count());
    SafetyTimes.push_back(Res.SafetySeconds);
    TotalTimes.push_back(Res.TotalSeconds);
    Total.Fixpoint.mergeFrom(Res.Telemetry.Fixpoint);
    Total.Cascade.mergeFrom(Res.Telemetry.Cascade);
    Total.Fault.mergeFrom(Res.Telemetry.Fault);
    Last = std::move(Res);
    if (Last.Degradation.tripped())
      break; // No point repeating a run that hit its budget.
  }
  Total.Cache = Last.Telemetry.Cache;
  Rep.TimedOut = Last.Degradation.tripped();
  Rep.Match = Last.Verdict == B.Expected;
  bool Safe = Last.Verdict == VerdictKind::Safe;
  char Attack[32];
  if (Safe)
    std::snprintf(Attack, sizeof(Attack), "%12s", "-");
  else
    std::snprintf(Attack, sizeof(Attack), "%12.3f", median(TotalTimes));
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-24s %-12s %5zu  %12.3f  %s  %-8s %s\n",
                B.Name.c_str(), B.Category.c_str(), F.blockCount(),
                median(SafetyTimes), Attack,
                Rep.TimedOut ? "T/O" : verdictName(Last.Verdict),
                Rep.TimedOut ? "timeout"
                             : (Rep.Match ? "match" : "MISMATCH"));
  Rep.Human = Line;
  if (Rep.TimedOut) {
    std::snprintf(Line, sizeof(Line), "    %s\n",
                  Last.Degradation.str().c_str());
    Rep.Human += Line;
  }
  if (WantJson) {
    char Buf[2048];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"name\": \"%s\", \"category\": \"%s\", \"blocks\": %zu, "
        "\"verdict\": \"%s\", \"match\": %s, \"timed_out\": %s, "
        "\"median_wall_ms\": %.3f, \"median_safety_ms\": %.3f, "
        "\"telemetry\": %s}",
        B.Name.c_str(), B.Category.c_str(), F.blockCount(),
        verdictName(Last.Verdict), Rep.Match ? "true" : "false",
        Rep.TimedOut ? "true" : "false", median(WallMs),
        median(SafetyTimes) * 1000.0, Total.json().c_str());
    Rep.Json = Buf;
  }
  return Rep;
}

bool writeAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len) {
    ssize_t N = write(Fd, P, Len);
    if (N <= 0)
      return false;
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  while (Len) {
    ssize_t N = read(Fd, P, Len);
    if (N <= 0)
      return false;
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Outcome of one sandboxed attempt.
enum class ChildOutcome { Ok, Crashed, WatchdogKilled };

/// Forks, runs \p runOne in the child, and ships the BenchReport back over
/// a pipe. The parent polls a watchdog deadline; a child that crashes,
/// exits non-zero, or outlives the deadline yields Crashed/WatchdogKilled
/// with \p ExitStatus set (exit code, or 128+signal).
ChildOutcome runSandboxed(const BenchmarkProgram &B, int Runs,
                          const BudgetLimits &Limits, int Jobs,
                          const EngineConfig &Engine, bool WantJson,
                          double WatchdogSeconds, BenchReport &Rep,
                          int &ExitStatus) {
  int Fd[2];
  if (pipe(Fd) != 0) {
    Rep = runOne(B, Runs, Limits, Jobs, Engine, WantJson);
    return ChildOutcome::Ok; // No pipe, no sandbox: degrade to in-process.
  }
  // Buffered output written before the fork would be flushed by both
  // processes; drain it while it is still only the parent's.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fd[0]);
    close(Fd[1]);
    Rep = runOne(B, Runs, Limits, Jobs, Engine, WantJson);
    return ChildOutcome::Ok;
  }
  if (Pid == 0) {
    close(Fd[0]);
    BenchReport R = runOne(B, Runs, Limits, Jobs, Engine, WantJson);
    uint32_t Hdr[4] = {R.Match ? 1u : 0u, R.TimedOut ? 1u : 0u,
                       static_cast<uint32_t>(R.Human.size()),
                       static_cast<uint32_t>(R.Json.size())};
    bool Ok = writeAll(Fd[1], Hdr, sizeof(Hdr)) &&
              writeAll(Fd[1], R.Human.data(), R.Human.size()) &&
              writeAll(Fd[1], R.Json.data(), R.Json.size());
    close(Fd[1]);
    _exit(Ok ? 0 : 1);
  }
  close(Fd[1]);

  // Watchdog: poll for exit; past the deadline the child is killed hard.
  // The report payload is far below PIPE_BUF, so the child never blocks on
  // a full pipe while we are not reading.
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(WatchdogSeconds);
  int Status = 0;
  bool WatchdogFired = false;
  for (;;) {
    pid_t R = waitpid(Pid, &Status, WNOHANG);
    if (R == Pid)
      break;
    if (R < 0) { // Interrupted or lost: treat as a crash.
      Status = 0;
      break;
    }
    if (WatchdogSeconds > 0 &&
        std::chrono::steady_clock::now() >= Deadline) {
      WatchdogFired = true;
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  ExitStatus = WIFEXITED(Status)     ? WEXITSTATUS(Status)
               : WIFSIGNALED(Status) ? 128 + WTERMSIG(Status)
                                     : -1;
  if (WatchdogFired) {
    close(Fd[0]);
    return ChildOutcome::WatchdogKilled;
  }
  uint32_t Hdr[4];
  bool Ok = ExitStatus == 0 && readAll(Fd[0], Hdr, sizeof(Hdr));
  if (Ok) {
    Rep.Match = Hdr[0] != 0;
    Rep.TimedOut = Hdr[1] != 0;
    Rep.Human.resize(Hdr[2]);
    Rep.Json.resize(Hdr[3]);
    Ok = (!Hdr[2] || readAll(Fd[0], &Rep.Human[0], Hdr[2])) &&
         (!Hdr[3] || readAll(Fd[0], &Rep.Json[0], Hdr[3]));
  }
  close(Fd[0]);
  return Ok ? ChildOutcome::Ok : ChildOutcome::Crashed;
}

/// The constant-time matrix: TableCT benchmarks under --ct across cost
/// models and job counts, then (optionally) the Table-1 unit-mode drift
/// check. Runs in-process — the TableCT kernels finish in well under a
/// second each, so the fork sandbox would only add noise to the medians.
int runTableCtMatrix(int Runs, const BudgetLimits &Limits,
                     const EngineConfig &BaseEngine, const char *JsonPath) {
  const char *Filter = std::getenv("BLAZER_TABLE1_CT_FILTER");
  bool Drift = true;
  if (const char *EnvDrift = std::getenv("BLAZER_TABLE1_CT_DRIFT"))
    Drift = std::strcmp(EnvDrift, "0") != 0;

  const char *Models[] = {"unit", "weighted:arith=3,call=2", "memaccess"};
  const int JobCounts[] = {1, 8};

  std::printf("TableCT matrix: strict constant-time verdicts "
              "(median of %d runs per cell)\n",
              Runs);
  std::printf("%-20s %-24s %4s  %-10s %-10s %8s  %s\n", "Benchmark",
              "Cost model", "Jobs", "ct", "expected", "wall(ms)", "result");
  std::printf("%s\n", std::string(92, '-').c_str());

  std::vector<std::string> JsonRows;
  int Cells = 0, CtMismatches = 0;
  for (const BenchmarkProgram &B : tableCtBenchmarks()) {
    if (Filter && B.Name.find(Filter) == std::string::npos)
      continue;
    for (const char *Model : Models) {
      for (int Jobs : JobCounts) {
        EngineConfig Engine = BaseEngine;
        Engine.set("cost-model", Model);
        Engine.set("ct", "on");
        std::vector<double> WallMs;
        BlazerResult Last;
        for (int R = 0; R < Runs; ++R) {
          auto W0 = std::chrono::steady_clock::now();
          BlazerResult Res = runBenchmark(B, Limits, Jobs, Engine);
          auto W1 = std::chrono::steady_clock::now();
          WallMs.push_back(
              std::chrono::duration<double, std::milli>(W1 - W0).count());
          Last = std::move(Res);
        }
        ++Cells;
        bool Match = Last.Ct == B.ExpectedCt;
        // An unsafe expectation also demands a concrete witness pair —
        // the verdict alone is not the deliverable.
        if (B.ExpectedCt == CtVerdict::CtUnsafe && !Last.CtPair)
          Match = false;
        CtMismatches += Match ? 0 : 1;
        std::printf("%-20s %-24s %4d  %-10s %-10s %8.1f  %s\n",
                    B.Name.c_str(), Model, Jobs, ctVerdictName(Last.Ct),
                    ctVerdictName(B.ExpectedCt), median(WallMs),
                    Match ? "match" : "MISMATCH");
        if (JsonPath) {
          char Buf[512];
          std::snprintf(
              Buf, sizeof(Buf),
              "    {\"name\": \"%s\", \"model\": \"%s\", \"jobs\": %d, "
              "\"ct_verdict\": \"%s\", \"expected\": \"%s\", "
              "\"match\": %s, \"witness\": %s, \"median_wall_ms\": %.3f}",
              B.Name.c_str(), Model, Jobs, ctVerdictName(Last.Ct),
              ctVerdictName(B.ExpectedCt), Match ? "true" : "false",
              Last.CtPair ? "true" : "false", median(WallMs));
          JsonRows.push_back(Buf);
        }
      }
    }
  }
  std::printf("%s\n", std::string(92, '-').c_str());
  std::printf("TableCT agreement: %d/%d\n", Cells - CtMismatches, Cells);

  // Drift check: the cost-model layer in unit mode must be invisible to
  // the Table-1 pipeline — same 24 verdicts the paper reports.
  int DriftMismatches = 0, DriftChecked = 0;
  if (Drift) {
    EngineConfig Engine = BaseEngine;
    Engine.set("cost-model", "unit");
    for (const BenchmarkProgram &B : allBenchmarks()) {
      BlazerResult Res = runBenchmark(B, Limits, /*Jobs=*/1, Engine);
      ++DriftChecked;
      if (Res.Verdict != B.Expected) {
        ++DriftMismatches;
        std::printf("drift: %s gave %s, paper says %s\n", B.Name.c_str(),
                    verdictName(Res.Verdict), verdictName(B.Expected));
      }
    }
    std::printf("Table-1 unit-mode drift: %d mismatches of %d\n",
                DriftMismatches, DriftChecked);
  }

  if (JsonPath) {
    std::FILE *Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write BLAZER_TABLE1_JSON path '%s'\n",
                   JsonPath);
      return 1;
    }
    std::fprintf(Out,
                 "{\n"
                 "  \"mode\": {\"suite\": \"tablect\", \"runs\": %d},\n"
                 "  \"ct_agreement\": \"%d/%d\",\n"
                 "  \"table1_unit_drift\": {\"checked\": %d, "
                 "\"mismatches\": %d},\n"
                 "  \"matrix\": [\n",
                 Runs, Cells - CtMismatches, Cells, DriftChecked,
                 DriftMismatches);
    for (size_t I = 0; I < JsonRows.size(); ++I)
      std::fprintf(Out, "%s%s\n", JsonRows[I].c_str(),
                   I + 1 < JsonRows.size() ? "," : "");
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
  }
  return (CtMismatches == 0 && DriftMismatches == 0) ? 0 : 1;
}

} // namespace

int main() {
  int Runs = 5;
  if (const char *EnvRuns = std::getenv("BLAZER_TABLE1_RUNS"))
    Runs = std::max(1, std::atoi(EnvRuns));
  double Timeout = 300;
  if (const char *EnvTimeout = std::getenv("BLAZER_TABLE1_TIMEOUT")) {
    char *End = nullptr;
    double V = std::strtod(EnvTimeout, &End);
    if (End != EnvTimeout && *End == '\0' && V >= 0)
      Timeout = V;
    else
      std::fprintf(stderr,
                   "ignoring malformed BLAZER_TABLE1_TIMEOUT '%s'\n",
                   EnvTimeout);
  }
  int Jobs = 1;
  if (const char *EnvJobs = std::getenv("BLAZER_TABLE1_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(EnvJobs, &End, 10);
    if (End != EnvJobs && *End == '\0' && V >= 0 && V <= 1024)
      Jobs = static_cast<int>(V);
    else
      std::fprintf(stderr, "ignoring malformed BLAZER_TABLE1_JOBS '%s'\n",
                   EnvJobs);
  }
  bool Sandbox = true;
  if (const char *EnvSandbox = std::getenv("BLAZER_TABLE1_SANDBOX"))
    Sandbox = std::strcmp(EnvSandbox, "0") != 0;
  double Watchdog = 600;
  if (const char *EnvWatchdog = std::getenv("BLAZER_TABLE1_WATCHDOG")) {
    char *End = nullptr;
    double V = std::strtod(EnvWatchdog, &End);
    if (End != EnvWatchdog && *End == '\0' && V >= 0)
      Watchdog = V;
    else
      std::fprintf(stderr,
                   "ignoring malformed BLAZER_TABLE1_WATCHDOG '%s'\n",
                   EnvWatchdog);
  }
  const char *FaultOnly = std::getenv("BLAZER_TABLE1_FAULT_ONLY");
  BudgetLimits Limits;
  Limits.TimeoutSeconds = Timeout;
  EngineConfig Engine;
  Engine.loadEnv("BLAZER_TABLE1");
  const char *JsonPath = std::getenv("BLAZER_TABLE1_JSON");
  if (const char *Mode = std::getenv("BLAZER_TABLE1_MODE")) {
    if (std::strcmp(Mode, "tablect") == 0)
      return runTableCtMatrix(Runs, Limits, Engine, JsonPath);
    if (std::strcmp(Mode, "table1") != 0) {
      std::fprintf(stderr, "unknown BLAZER_TABLE1_MODE '%s'\n", Mode);
      return 1;
    }
  }
  std::vector<std::string> JsonRows;

  std::printf("Table 1: Blazer on the benchmark suite (median of %d runs, "
              "jobs=%d, %s%s)\n",
              Runs, Jobs, Engine.str().c_str(),
              Sandbox ? ", sandboxed" : "");
  std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", "Benchmark",
              "Category", "Size", "Safety (s)", "w/Attack (s)", "Verdict",
              "vs paper");
  std::printf("%s\n", std::string(96, '-').c_str());

  int Mismatches = 0;
  std::string LastCategory;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    if (B.Category != LastCategory) {
      std::printf("-- %s --\n", B.Category.c_str());
      LastCategory = B.Category;
    }
    EngineConfig BenchEngine = Engine;
    if (FaultOnly && B.Name != FaultOnly)
      BenchEngine.Fault = FaultPlan(); // Plan targets one benchmark only.

    BenchReport Rep;
    bool Crashed = false, WatchdogKilled = false;
    int ExitStatus = 0, Retries = 0;
    if (!Sandbox) {
      Rep = runOne(B, Runs, Limits, Jobs, BenchEngine, JsonPath != nullptr);
    } else {
      // One retry on crash/timeout: transient trouble (OOM pressure, a
      // lost pipe) gets a second chance before the row is written off.
      for (int Attempt = 0; Attempt < 2; ++Attempt) {
        Retries = Attempt;
        ChildOutcome O =
            runSandboxed(B, Runs, Limits, Jobs, BenchEngine,
                         JsonPath != nullptr, Watchdog, Rep, ExitStatus);
        Crashed = O == ChildOutcome::Crashed;
        WatchdogKilled = O == ChildOutcome::WatchdogKilled;
        if (!Crashed && !WatchdogKilled)
          break;
      }
    }

    if (Crashed || WatchdogKilled) {
      // Contained: this row reports the loss, the sweep continues.
      std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", B.Name.c_str(),
                  B.Category.c_str(), "-", "-", "-",
                  WatchdogKilled ? "W/D" : "CRASH", "contained");
      std::printf("    child %s (exit status %d) after %d attempt(s)\n",
                  WatchdogKilled ? "exceeded the watchdog deadline"
                                 : "crashed",
                  ExitStatus, Retries + 1);
      if (JsonPath) {
        char Buf[512];
        std::snprintf(Buf, sizeof(Buf),
                      "    {\"name\": \"%s\", \"category\": \"%s\", "
                      "\"crashed\": true, \"watchdog_timeout\": %s, "
                      "\"exit_status\": %d, \"retries\": %d}",
                      B.Name.c_str(), B.Category.c_str(),
                      WatchdogKilled ? "true" : "false", ExitStatus,
                      Retries);
        JsonRows.push_back(Buf);
      }
      // Like T/O rows, a contained crash is not a verdict mismatch: the
      // sandbox, not the algorithm, decided the outcome.
      continue;
    }

    std::fputs(Rep.Human.c_str(), stdout);
    Mismatches += (Rep.Match || Rep.TimedOut) ? 0 : 1;
    if (JsonPath)
      JsonRows.push_back(Rep.Json);
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("verdict agreement with the paper: %d/24\n", 24 - Mismatches);

  if (JsonPath) {
    std::FILE *Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write BLAZER_TABLE1_JSON path '%s'\n",
                   JsonPath);
      return 1;
    }
    std::fprintf(Out,
                 "{\n"
                 "  \"mode\": {\"domain\": \"%s\", \"cache\": %s, "
                 "\"closure\": \"%s\", \"fixpoint\": \"%s\", "
                 "\"arc_cache\": \"%s\", \"fixpoint_ctx\": \"%s\", "
                 "\"fault\": \"%s\", \"sandbox\": %s, \"jobs\": %d, "
                 "\"runs\": %d},\n"
                 "  \"verdict_agreement\": \"%d/24\",\n"
                 "  \"benchmarks\": [\n",
                 Engine.get("domain").c_str(),
                 Engine.TrailCache ? "true" : "false",
                 Engine.get("closure").c_str(),
                 Engine.get("fixpoint").c_str(),
                 Engine.get("arc-cache").c_str(),
                 Engine.get("fixpoint-ctx").c_str(),
                 Engine.get("fault-plan").c_str(),
                 Sandbox ? "true" : "false", Jobs, Runs, 24 - Mismatches);
    for (size_t I = 0; I < JsonRows.size(); ++I)
      std::fprintf(Out, "%s%s\n", JsonRows[I].c_str(),
                   I + 1 < JsonRows.size() ? "," : "");
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
  }
  return Mismatches == 0 ? 0 : 1;
}
