//===- table1_blazer.cpp - Regenerates Table 1 of the paper ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs Blazer on all 24 benchmarks and prints the Table-1 rows: Size
/// (basic blocks), median Safety time, and median Safety+Attack time over
/// NRUNS runs (the paper uses the median of five). Safe benchmarks print
/// "-" in the w/Attack column, as in the paper. A trailing column compares
/// the verdict against the paper's expectation.
///
/// Set BLAZER_TABLE1_RUNS to override the run count (default 5), and
/// BLAZER_TABLE1_TIMEOUT to cap each per-function analysis in wall-clock
/// seconds (default 300; 0 disables). A tripped deadline prints a T/O row
/// — like the paper's own Table 1 — and the driver moves on to the next
/// benchmark instead of hanging. BLAZER_TABLE1_JOBS sets the analysis
/// worker-thread count (default 1 = sequential; 0 = hardware concurrency)
/// so the sweep exercises the parallel trail-tree path; verdicts and
/// bounds are identical at any job count.
///
/// Engine knobs (the BENCH_table1.json pipeline) come from the EngineConfig
/// registry: for every knob the canonical BLAZER_TABLE1_<NAME> env var is
/// read (DOMAIN=cascade|zone|interval-only, FIXPOINT=wto|fifo,
/// CLOSURE=incremental|full, CACHE=on|off), plus the deprecated 0/1
/// aliases BLAZER_TABLE1_{FIFO,FULLCLOSE,CACHE} from the pre-unification
/// drivers. With the cache on, runs of the same benchmark share one cache,
/// so repetition medians measure the warm path the refinement driver
/// actually exercises. BLAZER_TABLE1_JSON=PATH writes per-benchmark median
/// wall-clock milliseconds plus verdicts and the shared engine-telemetry
/// schema as one JSON mode object.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace blazer;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N == 0)
    return 0;
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

/// One emitted JSON row.
struct JsonRow {
  std::string Name;
  std::string Category;
  size_t Blocks = 0;
  std::string Verdict;
  bool Match = false;
  bool TimedOut = false;
  double MedianWallMs = 0;
  double MedianSafetyMs = 0;
  EngineTelemetry Telemetry;
};

} // namespace

int main() {
  int Runs = 5;
  if (const char *EnvRuns = std::getenv("BLAZER_TABLE1_RUNS"))
    Runs = std::max(1, std::atoi(EnvRuns));
  double Timeout = 300;
  if (const char *EnvTimeout = std::getenv("BLAZER_TABLE1_TIMEOUT")) {
    char *End = nullptr;
    double V = std::strtod(EnvTimeout, &End);
    if (End != EnvTimeout && *End == '\0' && V >= 0)
      Timeout = V;
    else
      std::fprintf(stderr,
                   "ignoring malformed BLAZER_TABLE1_TIMEOUT '%s'\n",
                   EnvTimeout);
  }
  int Jobs = 1;
  if (const char *EnvJobs = std::getenv("BLAZER_TABLE1_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(EnvJobs, &End, 10);
    if (End != EnvJobs && *End == '\0' && V >= 0 && V <= 1024)
      Jobs = static_cast<int>(V);
    else
      std::fprintf(stderr, "ignoring malformed BLAZER_TABLE1_JOBS '%s'\n",
                   EnvJobs);
  }
  BudgetLimits Limits;
  Limits.TimeoutSeconds = Timeout;
  EngineConfig Engine;
  Engine.loadEnv("BLAZER_TABLE1");
  const char *JsonPath = std::getenv("BLAZER_TABLE1_JSON");
  std::vector<JsonRow> JsonRows;

  std::printf("Table 1: Blazer on the benchmark suite (median of %d runs, "
              "jobs=%d, %s)\n",
              Runs, Jobs, Engine.str().c_str());
  std::printf("%-24s %-12s %5s  %12s  %12s  %-8s %s\n", "Benchmark",
              "Category", "Size", "Safety (s)", "w/Attack (s)", "Verdict",
              "vs paper");
  std::printf("%s\n", std::string(96, '-').c_str());

  int Mismatches = 0;
  std::string LastCategory;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    if (B.Category != LastCategory) {
      std::printf("-- %s --\n", B.Category.c_str());
      LastCategory = B.Category;
    }
    CfgFunction F = B.compile();
    std::vector<double> SafetyTimes, TotalTimes, WallMs;
    BlazerResult Last;
    // Fixpoint/cascade work summed over all runs: with a warm shared cache
    // the later runs skip the fixpoints entirely, so the cold first run
    // dominates. Cache counters instead come from the last run's snapshot
    // — the shared cache already accumulates across runs.
    EngineTelemetry Total;
    // With the cache on, the benchmark's runs share one cache: the first
    // run pays the misses, later runs measure the warm path — the same
    // reuse profile the refinement driver sees across rounds.
    std::shared_ptr<TrailBoundCache> Shared =
        Engine.TrailCache ? std::make_shared<TrailBoundCache>() : nullptr;
    for (int R = 0; R < Runs; ++R) {
      auto W0 = std::chrono::steady_clock::now();
      BlazerResult Res = runBenchmark(B, Limits, Jobs, Engine, Shared);
      auto W1 = std::chrono::steady_clock::now();
      WallMs.push_back(
          std::chrono::duration<double, std::milli>(W1 - W0).count());
      SafetyTimes.push_back(Res.SafetySeconds);
      TotalTimes.push_back(Res.TotalSeconds);
      Total.Fixpoint.mergeFrom(Res.Telemetry.Fixpoint);
      Total.Cascade.mergeFrom(Res.Telemetry.Cascade);
      Last = std::move(Res);
      if (Last.Degradation.tripped())
        break; // No point repeating a run that hit its budget.
    }
    Total.Cache = Last.Telemetry.Cache;
    bool TimedOut = Last.Degradation.tripped();
    bool Match = Last.Verdict == B.Expected;
    // A T/O row records the timeout instead of a verdict mismatch: the
    // budget, not the algorithm, decided the outcome.
    Mismatches += (Match || TimedOut) ? 0 : 1;
    bool Safe = Last.Verdict == VerdictKind::Safe;
    char Attack[32];
    if (Safe)
      std::snprintf(Attack, sizeof(Attack), "%12s", "-");
    else
      std::snprintf(Attack, sizeof(Attack), "%12.3f", median(TotalTimes));
    std::printf("%-24s %-12s %5zu  %12.3f  %s  %-8s %s\n", B.Name.c_str(),
                B.Category.c_str(), F.blockCount(), median(SafetyTimes),
                Attack, TimedOut ? "T/O" : verdictName(Last.Verdict),
                TimedOut ? "timeout" : (Match ? "match" : "MISMATCH"));
    if (TimedOut)
      std::printf("    %s\n", Last.Degradation.str().c_str());
    if (JsonPath) {
      JsonRow Row;
      Row.Name = B.Name;
      Row.Category = B.Category;
      Row.Blocks = F.blockCount();
      Row.Verdict = verdictName(Last.Verdict);
      Row.Match = Match;
      Row.TimedOut = TimedOut;
      Row.MedianWallMs = median(WallMs);
      Row.MedianSafetyMs = median(SafetyTimes) * 1000.0;
      Row.Telemetry = Total;
      JsonRows.push_back(std::move(Row));
    }
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("verdict agreement with the paper: %d/24\n", 24 - Mismatches);

  if (JsonPath) {
    std::FILE *Out = std::fopen(JsonPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write BLAZER_TABLE1_JSON path '%s'\n",
                   JsonPath);
      return 1;
    }
    std::fprintf(Out,
                 "{\n"
                 "  \"mode\": {\"domain\": \"%s\", \"cache\": %s, "
                 "\"closure\": \"%s\", \"fixpoint\": \"%s\", \"jobs\": %d, "
                 "\"runs\": %d},\n"
                 "  \"verdict_agreement\": \"%d/24\",\n"
                 "  \"benchmarks\": [\n",
                 Engine.get("domain").c_str(),
                 Engine.TrailCache ? "true" : "false",
                 Engine.get("closure").c_str(),
                 Engine.get("fixpoint").c_str(), Jobs, Runs,
                 24 - Mismatches);
    for (size_t I = 0; I < JsonRows.size(); ++I) {
      const JsonRow &R = JsonRows[I];
      std::fprintf(
          Out,
          "    {\"name\": \"%s\", \"category\": \"%s\", \"blocks\": %zu, "
          "\"verdict\": \"%s\", \"match\": %s, \"timed_out\": %s, "
          "\"median_wall_ms\": %.3f, \"median_safety_ms\": %.3f, "
          "\"telemetry\": %s}%s\n",
          R.Name.c_str(), R.Category.c_str(), R.Blocks, R.Verdict.c_str(),
          R.Match ? "true" : "false", R.TimedOut ? "true" : "false",
          R.MedianWallMs, R.MedianSafetyMs, R.Telemetry.json().c_str(),
          I + 1 < JsonRows.size() ? "," : "");
    }
    std::fprintf(Out, "  ]\n}\n");
    std::fclose(Out);
  }
  return Mismatches == 0 ? 0 : 1;
}
