file(REMOVE_RECURSE
  "CMakeFiles/ablation_selfcomp.dir/ablation_selfcomp.cpp.o"
  "CMakeFiles/ablation_selfcomp.dir/ablation_selfcomp.cpp.o.d"
  "ablation_selfcomp"
  "ablation_selfcomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selfcomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
