# Empty compiler generated dependencies file for ablation_selfcomp.
# This may be replaced when dependencies are built.
