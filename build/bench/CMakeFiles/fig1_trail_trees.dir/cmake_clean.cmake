file(REMOVE_RECURSE
  "CMakeFiles/fig1_trail_trees.dir/fig1_trail_trees.cpp.o"
  "CMakeFiles/fig1_trail_trees.dir/fig1_trail_trees.cpp.o.d"
  "fig1_trail_trees"
  "fig1_trail_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trail_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
