# Empty compiler generated dependencies file for fig1_trail_trees.
# This may be replaced when dependencies are built.
