file(REMOVE_RECURSE
  "CMakeFiles/scaling_subtrails.dir/scaling_subtrails.cpp.o"
  "CMakeFiles/scaling_subtrails.dir/scaling_subtrails.cpp.o.d"
  "scaling_subtrails"
  "scaling_subtrails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_subtrails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
