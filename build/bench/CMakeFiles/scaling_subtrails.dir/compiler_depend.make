# Empty compiler generated dependencies file for scaling_subtrails.
# This may be replaced when dependencies are built.
