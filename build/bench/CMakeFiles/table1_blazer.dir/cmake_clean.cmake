file(REMOVE_RECURSE
  "CMakeFiles/table1_blazer.dir/table1_blazer.cpp.o"
  "CMakeFiles/table1_blazer.dir/table1_blazer.cpp.o.d"
  "table1_blazer"
  "table1_blazer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_blazer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
