# Empty dependencies file for table1_blazer.
# This may be replaced when dependencies are built.
