# Empty compiler generated dependencies file for language_tour.
# This may be replaced when dependencies are built.
