file(REMOVE_RECURSE
  "CMakeFiles/modpow_audit.dir/modpow_audit.cpp.o"
  "CMakeFiles/modpow_audit.dir/modpow_audit.cpp.o.d"
  "modpow_audit"
  "modpow_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modpow_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
