# Empty compiler generated dependencies file for modpow_audit.
# This may be replaced when dependencies are built.
