
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/absint/Analyzer.cpp" "src/absint/CMakeFiles/blazer_absint.dir/Analyzer.cpp.o" "gcc" "src/absint/CMakeFiles/blazer_absint.dir/Analyzer.cpp.o.d"
  "/root/repo/src/absint/Dbm.cpp" "src/absint/CMakeFiles/blazer_absint.dir/Dbm.cpp.o" "gcc" "src/absint/CMakeFiles/blazer_absint.dir/Dbm.cpp.o.d"
  "/root/repo/src/absint/ProductGraph.cpp" "src/absint/CMakeFiles/blazer_absint.dir/ProductGraph.cpp.o" "gcc" "src/absint/CMakeFiles/blazer_absint.dir/ProductGraph.cpp.o.d"
  "/root/repo/src/absint/VarEnv.cpp" "src/absint/CMakeFiles/blazer_absint.dir/VarEnv.cpp.o" "gcc" "src/absint/CMakeFiles/blazer_absint.dir/VarEnv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/blazer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/blazer_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/blazer_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/blazer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/blazer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
