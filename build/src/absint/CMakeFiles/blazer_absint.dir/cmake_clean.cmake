file(REMOVE_RECURSE
  "CMakeFiles/blazer_absint.dir/Analyzer.cpp.o"
  "CMakeFiles/blazer_absint.dir/Analyzer.cpp.o.d"
  "CMakeFiles/blazer_absint.dir/Dbm.cpp.o"
  "CMakeFiles/blazer_absint.dir/Dbm.cpp.o.d"
  "CMakeFiles/blazer_absint.dir/ProductGraph.cpp.o"
  "CMakeFiles/blazer_absint.dir/ProductGraph.cpp.o.d"
  "CMakeFiles/blazer_absint.dir/VarEnv.cpp.o"
  "CMakeFiles/blazer_absint.dir/VarEnv.cpp.o.d"
  "libblazer_absint.a"
  "libblazer_absint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_absint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
