file(REMOVE_RECURSE
  "libblazer_absint.a"
)
