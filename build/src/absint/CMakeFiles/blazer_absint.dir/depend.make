# Empty dependencies file for blazer_absint.
# This may be replaced when dependencies are built.
