
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/AnnotateTrail.cpp" "src/automata/CMakeFiles/blazer_automata.dir/AnnotateTrail.cpp.o" "gcc" "src/automata/CMakeFiles/blazer_automata.dir/AnnotateTrail.cpp.o.d"
  "/root/repo/src/automata/Automaton.cpp" "src/automata/CMakeFiles/blazer_automata.dir/Automaton.cpp.o" "gcc" "src/automata/CMakeFiles/blazer_automata.dir/Automaton.cpp.o.d"
  "/root/repo/src/automata/TrailExpr.cpp" "src/automata/CMakeFiles/blazer_automata.dir/TrailExpr.cpp.o" "gcc" "src/automata/CMakeFiles/blazer_automata.dir/TrailExpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/blazer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/blazer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/blazer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
