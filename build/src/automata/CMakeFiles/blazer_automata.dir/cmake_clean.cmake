file(REMOVE_RECURSE
  "CMakeFiles/blazer_automata.dir/AnnotateTrail.cpp.o"
  "CMakeFiles/blazer_automata.dir/AnnotateTrail.cpp.o.d"
  "CMakeFiles/blazer_automata.dir/Automaton.cpp.o"
  "CMakeFiles/blazer_automata.dir/Automaton.cpp.o.d"
  "CMakeFiles/blazer_automata.dir/TrailExpr.cpp.o"
  "CMakeFiles/blazer_automata.dir/TrailExpr.cpp.o.d"
  "libblazer_automata.a"
  "libblazer_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
