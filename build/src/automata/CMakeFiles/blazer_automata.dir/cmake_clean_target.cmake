file(REMOVE_RECURSE
  "libblazer_automata.a"
)
