# Empty compiler generated dependencies file for blazer_automata.
# This may be replaced when dependencies are built.
