file(REMOVE_RECURSE
  "CMakeFiles/blazer_benchmarks.dir/Benchmarks.cpp.o"
  "CMakeFiles/blazer_benchmarks.dir/Benchmarks.cpp.o.d"
  "libblazer_benchmarks.a"
  "libblazer_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
