file(REMOVE_RECURSE
  "libblazer_benchmarks.a"
)
