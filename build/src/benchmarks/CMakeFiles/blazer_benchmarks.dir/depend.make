# Empty dependencies file for blazer_benchmarks.
# This may be replaced when dependencies are built.
