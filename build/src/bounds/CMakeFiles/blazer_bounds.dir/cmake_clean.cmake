file(REMOVE_RECURSE
  "CMakeFiles/blazer_bounds.dir/BoundAnalysis.cpp.o"
  "CMakeFiles/blazer_bounds.dir/BoundAnalysis.cpp.o.d"
  "libblazer_bounds.a"
  "libblazer_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
