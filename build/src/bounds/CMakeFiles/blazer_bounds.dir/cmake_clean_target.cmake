file(REMOVE_RECURSE
  "libblazer_bounds.a"
)
