# Empty compiler generated dependencies file for blazer_bounds.
# This may be replaced when dependencies are built.
