file(REMOVE_RECURSE
  "CMakeFiles/blazer_core.dir/Blazer.cpp.o"
  "CMakeFiles/blazer_core.dir/Blazer.cpp.o.d"
  "CMakeFiles/blazer_core.dir/QuotientCheck.cpp.o"
  "CMakeFiles/blazer_core.dir/QuotientCheck.cpp.o.d"
  "libblazer_core.a"
  "libblazer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
