file(REMOVE_RECURSE
  "libblazer_core.a"
)
