# Empty compiler generated dependencies file for blazer_core.
# This may be replaced when dependencies are built.
