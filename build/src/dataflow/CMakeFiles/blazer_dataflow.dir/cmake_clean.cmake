file(REMOVE_RECURSE
  "CMakeFiles/blazer_dataflow.dir/Dominators.cpp.o"
  "CMakeFiles/blazer_dataflow.dir/Dominators.cpp.o.d"
  "CMakeFiles/blazer_dataflow.dir/Taint.cpp.o"
  "CMakeFiles/blazer_dataflow.dir/Taint.cpp.o.d"
  "libblazer_dataflow.a"
  "libblazer_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
