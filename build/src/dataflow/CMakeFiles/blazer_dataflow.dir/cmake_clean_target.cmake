file(REMOVE_RECURSE
  "libblazer_dataflow.a"
)
