# Empty compiler generated dependencies file for blazer_dataflow.
# This may be replaced when dependencies are built.
