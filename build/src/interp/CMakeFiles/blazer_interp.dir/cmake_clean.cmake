file(REMOVE_RECURSE
  "CMakeFiles/blazer_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/blazer_interp.dir/Interpreter.cpp.o.d"
  "libblazer_interp.a"
  "libblazer_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
