file(REMOVE_RECURSE
  "libblazer_interp.a"
)
