# Empty dependencies file for blazer_interp.
# This may be replaced when dependencies are built.
