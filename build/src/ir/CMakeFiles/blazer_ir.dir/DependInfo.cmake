
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Cfg.cpp" "src/ir/CMakeFiles/blazer_ir.dir/Cfg.cpp.o" "gcc" "src/ir/CMakeFiles/blazer_ir.dir/Cfg.cpp.o.d"
  "/root/repo/src/ir/Lower.cpp" "src/ir/CMakeFiles/blazer_ir.dir/Lower.cpp.o" "gcc" "src/ir/CMakeFiles/blazer_ir.dir/Lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/blazer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/blazer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
