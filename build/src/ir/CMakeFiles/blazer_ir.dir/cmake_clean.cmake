file(REMOVE_RECURSE
  "CMakeFiles/blazer_ir.dir/Cfg.cpp.o"
  "CMakeFiles/blazer_ir.dir/Cfg.cpp.o.d"
  "CMakeFiles/blazer_ir.dir/Lower.cpp.o"
  "CMakeFiles/blazer_ir.dir/Lower.cpp.o.d"
  "libblazer_ir.a"
  "libblazer_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
