file(REMOVE_RECURSE
  "libblazer_ir.a"
)
