# Empty compiler generated dependencies file for blazer_ir.
# This may be replaced when dependencies are built.
