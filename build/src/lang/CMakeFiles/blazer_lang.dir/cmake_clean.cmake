file(REMOVE_RECURSE
  "CMakeFiles/blazer_lang.dir/AstClone.cpp.o"
  "CMakeFiles/blazer_lang.dir/AstClone.cpp.o.d"
  "CMakeFiles/blazer_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/blazer_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/blazer_lang.dir/Builtins.cpp.o"
  "CMakeFiles/blazer_lang.dir/Builtins.cpp.o.d"
  "CMakeFiles/blazer_lang.dir/Lexer.cpp.o"
  "CMakeFiles/blazer_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/blazer_lang.dir/Parser.cpp.o"
  "CMakeFiles/blazer_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/blazer_lang.dir/Sema.cpp.o"
  "CMakeFiles/blazer_lang.dir/Sema.cpp.o.d"
  "libblazer_lang.a"
  "libblazer_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
