file(REMOVE_RECURSE
  "libblazer_lang.a"
)
