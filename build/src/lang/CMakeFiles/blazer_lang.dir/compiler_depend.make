# Empty compiler generated dependencies file for blazer_lang.
# This may be replaced when dependencies are built.
