file(REMOVE_RECURSE
  "CMakeFiles/blazer_selfcomp.dir/SelfComposition.cpp.o"
  "CMakeFiles/blazer_selfcomp.dir/SelfComposition.cpp.o.d"
  "libblazer_selfcomp.a"
  "libblazer_selfcomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_selfcomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
