file(REMOVE_RECURSE
  "libblazer_selfcomp.a"
)
