# Empty compiler generated dependencies file for blazer_selfcomp.
# This may be replaced when dependencies are built.
