file(REMOVE_RECURSE
  "CMakeFiles/blazer_support.dir/Bound.cpp.o"
  "CMakeFiles/blazer_support.dir/Bound.cpp.o.d"
  "CMakeFiles/blazer_support.dir/CostPoly.cpp.o"
  "CMakeFiles/blazer_support.dir/CostPoly.cpp.o.d"
  "CMakeFiles/blazer_support.dir/Observer.cpp.o"
  "CMakeFiles/blazer_support.dir/Observer.cpp.o.d"
  "libblazer_support.a"
  "libblazer_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
