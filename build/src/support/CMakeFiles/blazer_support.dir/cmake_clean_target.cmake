file(REMOVE_RECURSE
  "libblazer_support.a"
)
