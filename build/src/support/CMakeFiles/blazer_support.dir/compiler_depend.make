# Empty compiler generated dependencies file for blazer_support.
# This may be replaced when dependencies are built.
