file(REMOVE_RECURSE
  "CMakeFiles/absint_tests.dir/AnalyzerTest.cpp.o"
  "CMakeFiles/absint_tests.dir/AnalyzerTest.cpp.o.d"
  "CMakeFiles/absint_tests.dir/DbmTest.cpp.o"
  "CMakeFiles/absint_tests.dir/DbmTest.cpp.o.d"
  "CMakeFiles/absint_tests.dir/VarEnvTest.cpp.o"
  "CMakeFiles/absint_tests.dir/VarEnvTest.cpp.o.d"
  "absint_tests"
  "absint_tests.pdb"
  "absint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
