# Empty dependencies file for absint_tests.
# This may be replaced when dependencies are built.
