file(REMOVE_RECURSE
  "CMakeFiles/automata_tests.dir/AutomatonTest.cpp.o"
  "CMakeFiles/automata_tests.dir/AutomatonTest.cpp.o.d"
  "CMakeFiles/automata_tests.dir/TrailExprTest.cpp.o"
  "CMakeFiles/automata_tests.dir/TrailExprTest.cpp.o.d"
  "automata_tests"
  "automata_tests.pdb"
  "automata_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
