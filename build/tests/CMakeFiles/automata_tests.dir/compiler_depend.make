# Empty compiler generated dependencies file for automata_tests.
# This may be replaced when dependencies are built.
