file(REMOVE_RECURSE
  "CMakeFiles/bounds_tests.dir/BoundAnalysisTest.cpp.o"
  "CMakeFiles/bounds_tests.dir/BoundAnalysisTest.cpp.o.d"
  "bounds_tests"
  "bounds_tests.pdb"
  "bounds_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
