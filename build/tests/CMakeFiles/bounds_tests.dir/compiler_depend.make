# Empty compiler generated dependencies file for bounds_tests.
# This may be replaced when dependencies are built.
