file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/BenchmarkVerdictTest.cpp.o"
  "CMakeFiles/core_tests.dir/BenchmarkVerdictTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/BlazerDriverTest.cpp.o"
  "CMakeFiles/core_tests.dir/BlazerDriverTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/ExtensionsTest.cpp.o"
  "CMakeFiles/core_tests.dir/ExtensionsTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/QuotientPropertyTest.cpp.o"
  "CMakeFiles/core_tests.dir/QuotientPropertyTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/SoundnessPropertyTest.cpp.o"
  "CMakeFiles/core_tests.dir/SoundnessPropertyTest.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
