file(REMOVE_RECURSE
  "CMakeFiles/lang_tests.dir/LexerTest.cpp.o"
  "CMakeFiles/lang_tests.dir/LexerTest.cpp.o.d"
  "CMakeFiles/lang_tests.dir/ParserTest.cpp.o"
  "CMakeFiles/lang_tests.dir/ParserTest.cpp.o.d"
  "CMakeFiles/lang_tests.dir/SemaTest.cpp.o"
  "CMakeFiles/lang_tests.dir/SemaTest.cpp.o.d"
  "lang_tests"
  "lang_tests.pdb"
  "lang_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
