file(REMOVE_RECURSE
  "CMakeFiles/selfcomp_tests.dir/SelfCompTest.cpp.o"
  "CMakeFiles/selfcomp_tests.dir/SelfCompTest.cpp.o.d"
  "selfcomp_tests"
  "selfcomp_tests.pdb"
  "selfcomp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfcomp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
