# Empty compiler generated dependencies file for selfcomp_tests.
# This may be replaced when dependencies are built.
