
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BoundTest.cpp" "tests/CMakeFiles/support_tests.dir/BoundTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/BoundTest.cpp.o.d"
  "/root/repo/tests/CostPolyTest.cpp" "tests/CMakeFiles/support_tests.dir/CostPolyTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/CostPolyTest.cpp.o.d"
  "/root/repo/tests/ObserverTest.cpp" "tests/CMakeFiles/support_tests.dir/ObserverTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/ObserverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmarks/CMakeFiles/blazer_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/selfcomp/CMakeFiles/blazer_selfcomp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blazer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/blazer_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/blazer_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/absint/CMakeFiles/blazer_absint.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/blazer_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/blazer_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/blazer_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/blazer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/blazer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
