# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/lang_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/automata_tests[1]_include.cmake")
include("/root/repo/build/tests/dataflow_tests[1]_include.cmake")
include("/root/repo/build/tests/absint_tests[1]_include.cmake")
include("/root/repo/build/tests/bounds_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
include("/root/repo/build/tests/selfcomp_tests[1]_include.cmake")
