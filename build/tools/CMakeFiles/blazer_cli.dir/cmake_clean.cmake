file(REMOVE_RECURSE
  "CMakeFiles/blazer_cli.dir/blazer_cli.cpp.o"
  "CMakeFiles/blazer_cli.dir/blazer_cli.cpp.o.d"
  "blazer"
  "blazer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blazer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
