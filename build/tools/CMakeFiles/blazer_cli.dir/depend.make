# Empty dependencies file for blazer_cli.
# This may be replaced when dependencies are built.
