# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_safe_function "/root/repo/build/tools/blazer" "--observer=concrete" "--threshold=700" "--max-input=100" "/root/repo/samples/pin_check.blz" "pin_check_fixed")
set_tests_properties(cli_safe_function PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_attack_function "/root/repo/build/tools/blazer" "--observer=concrete" "--threshold=700" "--max-input=100" "/root/repo/samples/pin_check.blz" "pin_check")
set_tests_properties(cli_attack_function PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pinned_modexp "/root/repo/build/tools/blazer" "--observer=concrete" "--pin=exponent.len=4096" "--regex" "/root/repo/samples/modexp.blz")
set_tests_properties(cli_pinned_modexp PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_capacity_mode "/root/repo/build/tools/blazer" "--capacity=2" "/root/repo/samples/pin_check.blz" "pin_check_fixed")
set_tests_properties(cli_capacity_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/blazer" "--no-such-flag")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_file "/root/repo/build/tools/blazer" "/no/such/file.blz")
set_tests_properties(cli_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
