//===- language_tour.cpp - The mini-language and its toolchain --------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tour of the substrates under the analysis: parse a program, inspect
/// its CFG (including the Graphviz rendering), run the taint analysis and
/// read the branch annotations, execute it concretely with instruction
/// counting, and render the most general trail as a regular expression —
/// each stage of the pipeline that the timing-channel verdicts stand on.
///
//===----------------------------------------------------------------------===//

#include "automata/TrailExpr.h"
#include "dataflow/Taint.h"
#include "interp/Interpreter.h"
#include "ir/Cfg.h"

#include <cstdio>

using namespace blazer;

static const char *Source = R"(
// A toy PIN check: compares a public guess against the secret PIN digits,
// bailing out at the first mismatch (deliberately leaky).
fn pin_check(public guess: int[], secret pin: int[]) -> bool {
  var i: int = 0;
  while (i < guess.length) {
    if (i >= pin.length) { return false; }
    if (guess[i] != pin[i]) { return false; }
    i = i + 1;
  }
  return true;
}
)";

int main() {
  BuiltinRegistry Registry = BuiltinRegistry::standard();

  std::printf("=== 1. Source ===\n%s\n", Source);

  Result<CfgFunction> F = compileFunction(Source, "pin_check", Registry);
  if (!F) {
    std::fprintf(stderr, "compile error: %s\n", F.diag().str().c_str());
    return 1;
  }

  std::printf("=== 2. Lowered CFG (%zu basic blocks) ===\n%s\n",
              F->blockCount(), F->str().c_str());
  std::printf("=== 3. Graphviz (pipe into `dot -Tpng`) ===\n%s\n",
              F->toDot().c_str());

  std::printf("=== 4. Taint analysis (the JOANA substitute) ===\n");
  TaintInfo Taint = runTaintAnalysis(*F);
  for (const BasicBlock &B : F->Blocks) {
    if (B.Term != BasicBlock::TermKind::Branch)
      continue;
    TaintMark M = Taint.markOf(B.Id);
    std::printf("  bb%d  branch on %-28s  -> [%s]\n", B.Id,
                exprToString(B.Cond).c_str(),
                M.any() ? M.str().c_str() : "untainted");
  }
  std::printf("  (note: the loop counter i is secret-tainted through the\n"
              "   early returns, so even `i < guess.length` is marked l,h)\n\n");

  std::printf("=== 5. Concrete runs with instruction counting ===\n");
  InputAssignment In;
  In.Arrays["pin"] = {1, 2, 3, 4};
  for (std::vector<int64_t> Guess :
       {std::vector<int64_t>{9, 9, 9, 9}, {1, 9, 9, 9}, {1, 2, 3, 9},
        {1, 2, 3, 4}}) {
    In.Arrays["guess"] = Guess;
    TraceResult R = runFunction(*F, In);
    std::printf("  guess=[%lld,%lld,%lld,%lld]  -> %s in %3lld instructions"
                "  (%zu CFG edges)\n",
                static_cast<long long>(Guess[0]),
                static_cast<long long>(Guess[1]),
                static_cast<long long>(Guess[2]),
                static_cast<long long>(Guess[3]),
                R.ReturnValue && *R.ReturnValue ? "accept" : "reject",
                static_cast<long long>(R.Cost), R.Edges.size());
  }
  std::printf("  The running time grows with the matching prefix — the\n"
              "  leak the timing-channel analysis exists to catch.\n\n");

  std::printf("=== 6. The most general trail as a regex (§4.1) ===\n");
  EdgeAlphabet A = EdgeAlphabet::forFunction(*F);
  Dfa Cfg = Dfa::fromCfg(*F, A);
  TrailExpr::Ptr Regex = dfaToTrailExpr(Cfg.minimize(), 4096);
  if (Regex)
    std::printf("%s\n", Regex->str(&A).c_str());
  return 0;
}
