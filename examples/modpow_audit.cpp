//===- modpow_audit.cpp - Auditing modular exponentiation --------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crypto scenario from the STAC benchmarks: audit square-and-multiply
/// modular exponentiation (the RSA/Diffie-Hellman core that Kocher's 1996
/// attack targets). Demonstrates configuring the observer model for
/// crypto-sized inputs — 4096-bit exponents whose *length* is public
/// knowledge (pinned) while the bits themselves are the secret.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <cstdio>

using namespace blazer;

namespace {

void audit(const char *Name, const char *Expectation) {
  const BenchmarkProgram *B = findBenchmark(Name);
  CfgFunction F = B->compile();

  // The observer configuration the paper describes in §6.1: concrete
  // instruction counts, 4096-bit inputs, 25k-instruction threshold.
  BlazerOptions Opt = B->options();

  std::printf("==== %s ====\n", Name);
  BlazerResult R = analyzeFunction(F, Opt);
  std::printf("%s", R.treeString(F).c_str());
  for (const AttackSpec &Spec : R.Attacks)
    std::printf("%s\n", Spec.str().c_str());
  std::printf("expected: %s\n\n", Expectation);
}

} // namespace

int main() {
  std::printf("Auditing modular exponentiation for key-dependent timing\n");
  std::printf("(exponent bit-length pinned at 4096: key size is public;\n"
              " a mulmod call is summarized as 97 instructions)\n\n");

  audit("modPow1_unsafe",
        "attack — one-bits pay an extra modular multiply (Kocher 1996)");
  audit("modPow1_safe",
        "safe — the dummy multiply balances both bit values");
  audit("k96_unsafe",
        "attack — the textbook leaky square-and-multiply");
  audit("k96_safe", "safe — dummy-balanced variant");
  audit("modPow2_safe",
        "safe — Montgomery-ladder style, both arms do identical work");
  return 0;
}
