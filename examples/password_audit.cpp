//===- password_audit.cpp - Auditing a password checker ---------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A realistic audit session on the §2/Figure-1 password checker: run the
/// analysis on the vulnerable version, read the attack specification,
/// validate it with concrete witness inputs (the step the paper delegates
/// to a programmer or symbolic execution), then verify the repaired
/// version.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/QuotientCheck.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace blazer;

namespace {

/// Searches a small input grid for two runs with equal public inputs whose
/// costs differ — and whose traces follow the two trails of \p Spec.
void validateAttack(const CfgFunction &F, const BlazerResult &R,
                    const AttackSpec &Spec) {
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  InputGrid Grid;
  Grid.IntValues = {0, 1};
  Grid.ArrayLengths = {0, 2, 3};
  Grid.ElementValues = {0, 1, 7};
  std::vector<InputAssignment> Inputs = enumerateInputs(F, Grid);

  for (size_t I = 0; I < Inputs.size(); ++I) {
    TraceResult TA = runFunction(F, Inputs[I]);
    if (!TA.Ok || !traceInTrail(R.Tree[Spec.TrailA].Auto, A, TA.Edges))
      continue;
    for (size_t J = 0; J < Inputs.size(); ++J) {
      if (!InputAssignment::agreeOn(F, SecurityLevel::Public, Inputs[I],
                                    Inputs[J]))
        continue;
      TraceResult TB = runFunction(F, Inputs[J]);
      if (!TB.Ok || !traceInTrail(R.Tree[Spec.TrailB].Auto, A, TB.Edges))
        continue;
      if (TA.Cost == TB.Cost)
        continue;
      std::printf("  witness found:\n");
      std::printf("    run A %s -> %lld instructions (trail tr%d)\n",
                  Inputs[I].str().c_str(), static_cast<long long>(TA.Cost),
                  Spec.TrailA);
      std::printf("    run B %s -> %lld instructions (trail tr%d)\n",
                  Inputs[J].str().c_str(), static_cast<long long>(TB.Cost),
                  Spec.TrailB);
      std::printf("    equal public inputs, different secrets, different "
                  "running times: the channel is real.\n");
      return;
    }
  }
  std::printf("  no concrete witness on the sampled grid\n");
}

} // namespace

int main() {
  std::printf("=== Auditing login_unsafe (the Tenex-style checker) ===\n\n");
  const BenchmarkProgram *Bad = findBenchmark("login_unsafe");
  CfgFunction FBad = Bad->compile();
  BlazerResult RBad = analyzeFunction(FBad, Bad->options());

  std::printf("%s\n", RBad.treeString(FBad).c_str());
  if (RBad.Verdict != VerdictKind::Attack) {
    std::printf("expected an attack specification!\n");
    return 1;
  }
  for (const AttackSpec &Spec : RBad.Attacks) {
    std::printf("%s\n\n", Spec.str().c_str());
    std::printf("validating the specification with concrete inputs...\n");
    validateAttack(FBad, RBad, Spec);
  }

  std::printf("\n=== Auditing login_safe (the repaired checker) ===\n\n");
  const BenchmarkProgram *Good = findBenchmark("login_safe");
  CfgFunction FGood = Good->compile();
  BlazerResult RGood = analyzeFunction(FGood, Good->options());
  std::printf("%s\n", RGood.treeString(FGood).c_str());

  if (RGood.Verdict != VerdictKind::Safe) {
    std::printf("expected a safety proof!\n");
    return 1;
  }
  std::printf("The repaired checker always scans the whole guess: every\n"
              "partition component's running time is a function of public\n"
              "inputs only, so by Theorem 3.1 the program is free of\n"
              "timing channels.\n");
  return 0;
}
