//===- quickstart.cpp - Minimal Blazer walkthrough -------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small program with a public and a secret input,
/// run the timing-channel analysis, and print the trail tree. The program
/// is Example 2 of the paper: the branch on `low` gives two trails with
/// different (but public-determined) running times — no timing channel.
///
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"
#include "ir/Cfg.h"

#include <cstdio>

using namespace blazer;

static const char *Source = R"(
fn bar(secret high: int, public low: int) {
  var i: int = 0;
  if (low > 0) {
    i = 0;
    while (i < low) { i = i + 1; }
    while (i > 0) { i = i - 1; }
  } else {
    if (high == 0) { i = 5; } else { i = 0; i = i + 1; }
  }
}
)";

int main() {
  BuiltinRegistry Registry = BuiltinRegistry::standard();
  Result<CfgFunction> F = compileSingleFunction(Source, Registry);
  if (!F) {
    std::fprintf(stderr, "compile error: %s\n", F.diag().str().c_str());
    return 1;
  }

  std::printf("=== CFG ===\n%s\n", F->str().c_str());

  BlazerOptions Options;
  Options.Observer = ObserverModel::polynomialDegree(/*Epsilon=*/16);
  BlazerResult R = analyzeFunction(*F, Options);

  std::printf("=== Trail tree ===\n%s\n", R.treeString(*F).c_str());
  for (const AttackSpec &A : R.Attacks)
    std::printf("%s\n", A.str().c_str());
  return R.Verdict == VerdictKind::Safe ? 0 : 2;
}
