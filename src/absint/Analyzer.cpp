//===- Analyzer.cpp - Trail-restricted abstract interpreter ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"

#include "absint/Wto.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <deque>

using namespace blazer;

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferBlock(const Domain &In, int Block) const {
  // Simulated kernel failure before the block executes; Out is a local, so
  // unwinding through the fixpoint leaves no partial state behind.
  maybeInjectFault(FaultSite::Transfer);
  Domain Out = In;
  for (const Instr &I : F.block(Block).Instrs)
    Env.transferInstr(Out, I);
  return Out;
}

template <NumericDomain Domain>
void AnalyzerT<Domain>::applyBranch(Domain &Out, const Edge &E) const {
  const BasicBlock &B = F.block(E.From);
  if (B.Term == BasicBlock::TermKind::Branch) {
    if (B.TrueSucc == B.FalseSucc)
      return; // Degenerate branch carries no information.
    Env.assumeCond(Out, B.Cond, E.To == B.TrueSucc);
  }
}

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferEdge(const Domain &In, const Edge &E) const {
  Domain Out = transferBlock(In, E.From);
  applyBranch(Out, E);
  return Out;
}

namespace {

/// Nanosecond accumulator for the bench-only per-phase breakdown. A null
/// sink (PhaseTimers off) compiles to two untaken branches.
class ScopedNanos {
public:
  explicit ScopedNanos(uint64_t *Sink) : Sink(Sink) {
    if (Sink)
      T0 = std::chrono::steady_clock::now();
  }
  ~ScopedNanos() {
    if (Sink)
      *Sink += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
  }

  ScopedNanos(const ScopedNanos &) = delete;
  ScopedNanos &operator=(const ScopedNanos &) = delete;

private:
  uint64_t *Sink;
  std::chrono::steady_clock::time_point T0;
};

/// Mutable state of one fixpoint run: the entry states under construction,
/// the version-stamped post-block memo, the per-arc transfer cache, and
/// the work counters. Both schedulers and the descending sweeps share
/// these, so memoized transfers survive re-pops and carry over into
/// refinement.
///
/// Every domain value the run touches lives in one flat arena, laid out
/// [entry states | post-block memo | arc values | accumulators] (the arc
/// segments exist only with the cache on). One allocation per run, and
/// the ascent walks contiguous memory instead of three parallel vectors.
///
/// The arc cache memoizes applyBranch(postOf(From), CfgEdge) per in-arc
/// under the source's StateVersion stamp. During the ascent, entry states
/// only grow (setState always joins with the previous state), every
/// transfer is entrywise monotone, and the domain join is a pointwise max
/// — so folding only the arcs whose cached value moved into a per-node
/// accumulator yields bit-for-bit the same matrix entries as re-joining
/// every arc from bottom: stale contributions are entrywise below their
/// replacements and max() absorbs them. The descending sweeps shrink
/// states, which breaks that absorption argument, so they keep the exact
/// full join over all arcs (still served from the cache, which is exact
/// memoization regardless of direction). Pops are never short-circuited:
/// the cache changes how joinOfPreds computes its value, never whether a
/// node is popped, widened, or compared — the Visits/widening/setState
/// trajectory is identical with the cache on or off.
template <blazer::NumericDomain Domain> class FixpointRun {
  using Analyzer = blazer::AnalyzerT<Domain>;
  using Result = blazer::AnalysisResultT<Domain>;

public:
  FixpointRun(const Analyzer &A, const VarEnv &Env, const ProductGraph &G,
              Result &R, AnalysisBudget *Budget,
              const std::vector<char> *Dead)
      : A(A), Env(Env), G(G), R(R), Budget(Budget), Dead(Dead),
        N(static_cast<int>(G.size())), ArcCacheOn(A.config().ArcCache),
        Verify(A.config().VerifyArcCache),
        JoinNs(A.config().PhaseTimers ? &R.Stats.JoinNanos : nullptr),
        TransferNs(A.config().PhaseTimers ? &R.Stats.TransferNanos
                                          : nullptr),
        WidenNs(A.config().PhaseTimers ? &R.Stats.WidenNanos : nullptr) {
    if (ArcCacheOn) {
      ArcBase.assign(N + 1, 0);
      for (int Id = 0; Id < N; ++Id)
        ArcBase[Id + 1] = ArcBase[Id] + G.inArcs(Id).size();
      NumArcs = ArcBase[N];
    }
    // Arena layout: [0,N) entry, [N,2N) post memo, then (cache on only)
    // [2N,2N+A) arc values, [2N+A,3N+A) accumulators.
    Arena.assign(ArcCacheOn ? 3 * static_cast<size_t>(N) + NumArcs
                            : 2 * static_cast<size_t>(N),
                 Domain::bottom(Env.numVars()));
    if (!(Dead && (*Dead)[G.entry()]))
      entryOf(G.entry()) = Env.template initialState<Domain>();
    // Version 0 means "never computed"; entry states start at version 1 so
    // every node's first post-block lookup (and arc refresh) is a miss.
    PostVersion.assign(N, 0);
    StateVersion.assign(N, 1);
    Visits.assign(N, 0);
    if (ArcCacheOn) {
      ArcVersion.assign(NumArcs, 0);
      ArcFolded.assign(NumArcs, 0);
      AccValid.assign(N, false);
    }
  }

  bool isDead(int Id) const { return Dead && (*Dead)[Id]; }

  Domain &entryOf(int Id) { return Arena[static_cast<size_t>(Id)]; }

  /// Moves the finished entry states out of the arena and records the
  /// cache's memory footprint. Call exactly once, after the run.
  void finish() {
    for (int Id = 0; Id < N; ++Id)
      R.EntryState[Id] = std::move(entryOf(Id));
    if (ArcCacheOn) {
      for (size_t I = 2 * static_cast<size_t>(N); I < Arena.size(); ++I)
        R.Stats.ArcBytes += Arena[I].memoryBytes();
    }
  }

  /// The post-block state of node \p P's current entry state, computed at
  /// most once per entry-state change and shared by every outgoing arc.
  const Domain &postOf(int P) {
    Domain &Slot = Arena[static_cast<size_t>(N) + P];
    if (PostVersion[P] == StateVersion[P]) {
      ++(InSweep ? R.Stats.SweepTransferHits : R.Stats.TransferHits);
      return Slot;
    }
    ++(InSweep ? R.Stats.SweepTransferMisses : R.Stats.TransferMisses);
    ScopedNanos Time(TransferNs);
    Slot = A.transferBlock(entryOf(P), G.node(P).Block);
    PostVersion[P] = StateVersion[P];
    return Slot;
  }

  /// The cached value flowing along in-arc \p AIdx (global arc index),
  /// recomputed only when the source's entry state changed since the
  /// stamp. This is exact memoization — valid in the ascent and the
  /// descending sweeps alike.
  const Domain &refreshArc(size_t AIdx, const ProductGraph::InArc &IA) {
    Domain &Slot = Arena[2 * static_cast<size_t>(N) + AIdx];
    if (ArcVersion[AIdx] == StateVersion[IA.From]) {
      ++R.Stats.ArcHits;
      if (Verify) {
        // Staleness oracle: the stamped value must equal a from-scratch
        // recomputation. Counted, not asserted — the test layer asserts.
        Domain Fresh = postOf(IA.From);
        A.applyBranch(Fresh, IA.CfgEdge);
        if (!Fresh.equals(Slot))
          ++R.Stats.ArcVerifyMismatches;
      }
      return Slot;
    }
    ++R.Stats.ArcMisses;
    ScopedNanos Time(TransferNs);
    Slot = postOf(IA.From);
    A.applyBranch(Slot, IA.CfgEdge);
    ArcVersion[AIdx] = StateVersion[IA.From];
    return Slot;
  }

  /// The original uncached join: copy + applyBranch + fold per in-arc.
  /// The --arc-cache=off baseline, and the degradation path when a fault
  /// plan poisons the cache mid-run.
  Domain uncachedJoin(int Id) {
    Domain Acc = Domain::bottom(Env.numVars());
    for (const ProductGraph::InArc &IA : G.inArcs(Id)) {
      Domain Along = [&] {
        ScopedNanos Time(TransferNs);
        Domain V = postOf(IA.From);
        A.applyBranch(V, IA.CfgEdge);
        return V;
      }();
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
    }
    return Acc;
  }

  /// True while the arc cache is live; simulated cache poisoning
  /// (FaultSite::ArcCache) permanently downgrades this run to the
  /// uncached path — same values, no verdict impact, by construction.
  bool arcCacheLive() {
    if (!ArcCacheOn)
      return false;
    try {
      maybeInjectFault(FaultSite::ArcCache);
    } catch (const InjectedFault &) {
      ArcCacheOn = false;
    }
    return ArcCacheOn;
  }

  /// Join of the states flowing into \p Id over exactly its in-arcs —
  /// incrementally when the arc cache is on: arcs whose stamp already
  /// matches what the accumulator folded are skipped, everything else is
  /// max-folded in. Ascent only (see class comment).
  Domain joinOfPreds(int Id) {
    if (Id == G.entry())
      return Env.template initialState<Domain>();
    if (!arcCacheLive())
      return uncachedJoin(Id);
    const std::vector<ProductGraph::InArc> &Arcs = G.inArcs(Id);
    Domain &Acc = Arena[2 * static_cast<size_t>(N) + NumArcs + Id];
    if (!AccValid[Id]) {
      Acc = Domain::bottom(Env.numVars());
      AccValid[Id] = true;
      // Force a first full fold below by marking every arc unfolded.
      for (size_t K = 0; K < Arcs.size(); ++K)
        ArcFolded[ArcBase[Id] + K] = 0;
    }
    for (size_t K = 0; K < Arcs.size(); ++K) {
      size_t AIdx = ArcBase[Id] + K;
      const Domain &Along = refreshArc(AIdx, Arcs[K]);
      if (ArcFolded[AIdx] == ArcVersion[AIdx])
        continue; // Already absorbed into Acc; max() would be a no-op.
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
      ArcFolded[AIdx] = ArcVersion[AIdx];
    }
    return Acc;
  }

  /// The exact full join the descending sweeps need: every arc re-folded
  /// from bottom (values still served from the arc cache when live).
  Domain sweepJoinOfPreds(int Id) {
    if (Id == G.entry())
      return Env.template initialState<Domain>();
    if (!arcCacheLive())
      return uncachedJoin(Id);
    const std::vector<ProductGraph::InArc> &Arcs = G.inArcs(Id);
    Domain Acc = Domain::bottom(Env.numVars());
    for (size_t K = 0; K < Arcs.size(); ++K) {
      const Domain &Along = refreshArc(ArcBase[Id] + K, Arcs[K]);
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
    }
    return Acc;
  }

  void setState(int Id, Domain S) {
    entryOf(Id) = std::move(S);
    ++StateVersion[Id]; // Invalidate the post-block memo (and, through
                        // the stamps, every cached out-arc) of Id.
  }

  /// Recomputes \p Id's entry state; widens when \p AtWidenPoint and the
  /// warm-up has passed. Returns true when the state grew. Dead nodes
  /// (pinned bottom by the cascade) never change.
  bool updateNode(int Id, bool AtWidenPoint) {
    if (isDead(Id))
      return false;
    ++R.Stats.Pops;
    Domain NewState = joinOfPreds(Id);
    if (AtWidenPoint && ++Visits[Id] > WideningDelay) {
      ScopedNanos Time(WidenNs);
      Domain Widened = entryOf(Id);
      Widened.widenWith(NewState);
      NewState = std::move(Widened);
      ++R.Stats.Widenings;
      WideningFired = true;
    }
    if (NewState.leq(entryOf(Id)))
      return false;
    NewState.joinWith(entryOf(Id));
    setState(Id, std::move(NewState));
    return true;
  }

  /// Bourdoncle's recursive strategy over the WTO item span [Begin, End):
  /// plain vertices are updated once (their inputs are already stable);
  /// a component is iterated — head update, body stabilization — until the
  /// head's recomputation reports no change. Widening only at heads keeps
  /// termination: every cycle passes through some head.
  void stabilize(const Wto &W, size_t Begin, size_t End) {
    for (size_t I = Begin; I < End;) {
      // Fail soft, same as the FIFO ascent: an interrupted run is not a
      // post-fixpoint; the tripped budget marks the result untrustworthy.
      if (Tripped || (Budget && !Budget->checkpoint())) {
        Tripped = true;
        return;
      }
      const Wto::Item &It = W.items()[I];
      if (!It.Head) {
        updateNode(It.Node, false);
        ++I;
        continue;
      }
      updateNode(It.Node, true);
      while (!Tripped) {
        stabilize(W, I + 1, It.End);
        if (Tripped)
          return;
        if (!updateNode(It.Node, true))
          break;
      }
      I = It.End;
    }
  }

  void runWto() {
    Wto W = Wto::build(G.successorIds(), G.entry());
    stabilize(W, 0, W.size());
  }

  /// The legacy FIFO worklist: widening at RPO back-edge targets, warm-up
  /// delay, deque seeded with the full RPO. Kept verbatim (modulo the
  /// shared in-arc joins and memo, which are value-identical) as the A/B
  /// baseline scheduler.
  void runFifo() {
    std::vector<int> RpoIndex(N, -1);
    for (size_t I = 0; I < G.rpo().size(); ++I)
      RpoIndex[G.rpo()[I]] = static_cast<int>(I);
    std::vector<bool> WidenPoint(N, false);
    for (int Id = 0; Id < N; ++Id)
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        if (RpoIndex[Arc.To] >= 0 && RpoIndex[Id] >= 0 &&
            RpoIndex[Arc.To] <= RpoIndex[Id])
          WidenPoint[Arc.To] = true;

    std::deque<int> Work(G.rpo().begin(), G.rpo().end());
    std::vector<bool> InWork(N, true);
    while (!Work.empty()) {
      if (Budget && !Budget->checkpoint()) {
        Tripped = true;
        break;
      }
      int Id = Work.front();
      Work.pop_front();
      InWork[Id] = false;
      if (!updateNode(Id, WidenPoint[Id]))
        continue;
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        if (!InWork[Arc.To]) {
          InWork[Arc.To] = true;
          Work.push_back(Arc.To);
        }
    }
  }

  /// Descending refinement: plain recomputation sweeps tighten the widened
  /// states (sound: each recomputation stays above the least fixpoint
  /// because its inputs do, so any accepted refinement is independently
  /// valid — a sweep interrupted mid-way keeps what it has, fail-soft like
  /// the ascent). When no widening fired, the ascent already terminated at
  /// the least fixpoint and both sweeps would recompute every state
  /// unchanged, so they are skipped outright.
  void descend() {
    if (!WideningFired)
      return;
    InSweep = true;
    for (int Pass = 0; Pass < 2 && !(Budget && Budget->exhausted()); ++Pass) {
      ++R.Stats.Sweeps;
      for (int Id : G.rpo()) {
        if (Budget && !Budget->checkpoint())
          return;
        if (isDead(Id))
          continue;
        Domain NewState = sweepJoinOfPreds(Id);
        // Accept only strict refinements: re-assigning an equal state
        // would spuriously invalidate the post-block memo.
        if (NewState.leq(entryOf(Id)) && !entryOf(Id).leq(NewState))
          setState(Id, std::move(NewState));
      }
    }
  }

  bool tripped() const { return Tripped; }

private:
  static constexpr int WideningDelay = 2;

  const Analyzer &A;
  const VarEnv &Env;
  const ProductGraph &G;
  Result &R;
  AnalysisBudget *Budget;
  const std::vector<char> *Dead;
  int N;
  bool ArcCacheOn;
  bool Verify;
  uint64_t *JoinNs;
  uint64_t *TransferNs;
  uint64_t *WidenNs;

  /// Flat per-run state arena (see class comment for the layout).
  std::vector<Domain> Arena;
  /// Prefix sums of in-arc counts: node Id's arcs occupy global indices
  /// [ArcBase[Id], ArcBase[Id + 1]). Empty with the cache off.
  std::vector<size_t> ArcBase;
  size_t NumArcs = 0;
  std::vector<uint64_t> PostVersion;
  std::vector<uint64_t> StateVersion;
  std::vector<int> Visits;
  /// Source StateVersion when the arc value was computed (0 = never).
  std::vector<uint64_t> ArcVersion;
  /// ArcVersion the node accumulator last absorbed (0 = not folded).
  std::vector<uint64_t> ArcFolded;
  std::vector<char> AccValid;
  bool WideningFired = false;
  bool Tripped = false;
  bool InSweep = false;
};

} // namespace

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G) const {
  return analyze(G, nullptr);
}

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G,
                           const std::vector<char> *Dead) const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase(Domain::FixpointPhase);
  AnalysisResultT<Domain> R;
  int N = static_cast<int>(G.size());
  R.EntryState.assign(N, Domain::bottom(Env.numVars()));
  R.Feasible.assign(N, false);
  if (G.empty())
    return R;

  // The run's entry states (and everything else it touches) live in the
  // FixpointRun arena; finish() moves them into R.
  FixpointRun<Domain> Run(*this, Env, G, R, Budget, Dead);
  if (Config.UseWto)
    Run.runWto();
  else
    Run.runFifo();
  if (!Run.tripped())
    Run.descend();
  Run.finish();

  for (int Id = 0; Id < N; ++Id)
    R.Feasible[Id] = !R.EntryState[Id].isBottom();
  return R;
}

// The engine's two domains. New domains extend this list (and the extern
// declarations in Analyzer.h) rather than moving the definitions inline.
namespace blazer {
template class AnalyzerT<Dbm>;
template class AnalyzerT<IntervalDomain>;
} // namespace blazer
