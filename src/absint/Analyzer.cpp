//===- Analyzer.cpp - Trail-restricted abstract interpreter ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"

#include "support/Budget.h"

#include <cassert>
#include <deque>

using namespace blazer;

Dbm Analyzer::transferBlock(const Dbm &In, int Block) const {
  Dbm Out = In;
  for (const Instr &I : F.block(Block).Instrs)
    Env.transferInstr(Out, I);
  return Out;
}

Dbm Analyzer::transferEdge(const Dbm &In, const Edge &E) const {
  Dbm Out = transferBlock(In, E.From);
  const BasicBlock &B = F.block(E.From);
  if (B.Term == BasicBlock::TermKind::Branch) {
    if (B.TrueSucc == B.FalseSucc)
      return Out; // Degenerate branch carries no information.
    bool Positive = E.To == B.TrueSucc;
    Env.assumeCond(Out, B.Cond, Positive);
  }
  return Out;
}

AnalysisResult Analyzer::analyze(const ProductGraph &G) const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase("zone-fixpoint");
  AnalysisResult R;
  int N = static_cast<int>(G.size());
  R.EntryState.assign(N, Dbm::bottom(Env.numVars()));
  R.Feasible.assign(N, false);
  if (G.empty())
    return R;

  R.EntryState[G.entry()] = Env.initialState();

  // Widening points: RPO back-edge targets.
  std::vector<int> RpoIndex(N, -1);
  for (size_t I = 0; I < G.rpo().size(); ++I)
    RpoIndex[G.rpo()[I]] = static_cast<int>(I);
  std::vector<bool> WidenPoint(N, false);
  for (int Id = 0; Id < N; ++Id)
    for (const ProductGraph::Arc &A : G.successors(Id))
      if (RpoIndex[A.To] >= 0 && RpoIndex[Id] >= 0 &&
          RpoIndex[A.To] <= RpoIndex[Id])
        WidenPoint[A.To] = true;

  auto JoinOfPreds = [&](int Id) {
    if (Id == G.entry())
      return Env.initialState();
    Dbm Acc = Dbm::bottom(Env.numVars());
    for (int P : G.predecessors(Id)) {
      for (const ProductGraph::Arc &A : G.successors(P)) {
        if (A.To != Id)
          continue;
        Dbm Along = transferEdge(R.EntryState[P], A.CfgEdge);
        Acc.joinWith(Along);
      }
    }
    return Acc;
  };

  // Ascending phase with widening after a warm-up.
  constexpr int WideningDelay = 2;
  std::vector<int> Visits(N, 0);
  std::deque<int> Work(G.rpo().begin(), G.rpo().end());
  std::vector<bool> InWork(N, true);
  while (!Work.empty()) {
    // Fail soft: an interrupted ascent is not a post-fixpoint, so the
    // states below are not trustworthy over-approximations. Callers must
    // check AnalysisBudget::exhausted() and discard the result.
    if (Budget && !Budget->checkpoint())
      break;
    int Id = Work.front();
    Work.pop_front();
    InWork[Id] = false;
    Dbm NewState = JoinOfPreds(Id);
    if (WidenPoint[Id] && ++Visits[Id] > WideningDelay) {
      Dbm Widened = R.EntryState[Id];
      Widened.widenWith(NewState);
      NewState = std::move(Widened);
    }
    if (NewState.leq(R.EntryState[Id]))
      continue;
    NewState.joinWith(R.EntryState[Id]);
    R.EntryState[Id] = std::move(NewState);
    for (const ProductGraph::Arc &A : G.successors(Id))
      if (!InWork[A.To]) {
        InWork[A.To] = true;
        Work.push_back(A.To);
      }
  }

  // Descending refinement: a couple of plain recomputation sweeps tighten
  // the widened states (sound: each recomputation stays above the least
  // fixpoint because the inputs do). Skipped entirely once the budget has
  // tripped — the result is already marked untrustworthy.
  for (int Pass = 0; Pass < 2 && !(Budget && Budget->exhausted()); ++Pass) {
    for (int Id : G.rpo()) {
      Dbm NewState = JoinOfPreds(Id);
      // Only accept refinements.
      if (NewState.leq(R.EntryState[Id]))
        R.EntryState[Id] = std::move(NewState);
    }
  }

  for (int Id = 0; Id < N; ++Id)
    R.Feasible[Id] = !R.EntryState[Id].isBottom();
  return R;
}
