//===- Analyzer.cpp - Trail-restricted abstract interpreter ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"

#include "absint/FixpointContext.h"
#include "absint/Wto.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <deque>

using namespace blazer;

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferBlock(const Domain &In, int Block) const {
  // Simulated kernel failure before the block executes; Out is a local, so
  // unwinding through the fixpoint leaves no partial state behind.
  maybeInjectFault(FaultSite::Transfer);
  Domain Out = In;
  for (const Instr &I : F.block(Block).Instrs)
    Env.transferInstr(Out, I);
  return Out;
}

template <NumericDomain Domain>
void AnalyzerT<Domain>::applyBranch(Domain &Out, const Edge &E) const {
  const BasicBlock &B = F.block(E.From);
  if (B.Term == BasicBlock::TermKind::Branch) {
    if (B.TrueSucc == B.FalseSucc)
      return; // Degenerate branch carries no information.
    Env.assumeCond(Out, B.Cond, E.To == B.TrueSucc);
  }
}

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferEdge(const Domain &In, const Edge &E) const {
  Domain Out = transferBlock(In, E.From);
  applyBranch(Out, E);
  return Out;
}

namespace {

/// Nanosecond accumulator for the bench-only per-phase breakdown. A null
/// sink (PhaseTimers off) compiles to two untaken branches.
class ScopedNanos {
public:
  explicit ScopedNanos(uint64_t *Sink) : Sink(Sink) {
    if (Sink)
      T0 = std::chrono::steady_clock::now();
  }
  ~ScopedNanos() {
    if (Sink)
      *Sink += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
  }

  ScopedNanos(const ScopedNanos &) = delete;
  ScopedNanos &operator=(const ScopedNanos &) = delete;

private:
  uint64_t *Sink;
  std::chrono::steady_clock::time_point T0;
};

/// Mutable state of one fixpoint run: the entry states under construction,
/// the version-stamped post-block memo, the per-arc transfer cache, and
/// the work counters. Both schedulers and the descending sweeps share
/// these, so memoized transfers survive re-pops and carry over into
/// refinement.
///
/// Every domain value the run touches lives in one flat arena, laid out
/// [entry states | post-block memo | arc values | accumulators] (the arc
/// segments exist only with the cache on). The arena and the run's
/// schedule data are *borrowed*: the caller hands in a FixpointShape
/// (flat in-arc index, lazily built WTO / FIFO schedules) and a
/// FixpointArena (slots + stamp vectors). In pooled mode both come from
/// the per-thread FixpointContext and survive across runs — a same-shape
/// run pays an O(|V|) entry reset and stamp clears instead of
/// reconstructing 3|V|+|A| domain values and a WTO; in fresh mode they
/// are function-locals of analyze() and die with the run. The iteration
/// code is identical either way, which is what makes the two modes
/// byte-identical.
///
/// The arc cache memoizes applyBranch(postOf(From), CfgEdge) per in-arc
/// under the source's StateVersion stamp. During the ascent, entry states
/// only grow (setState always joins with the previous state), every
/// transfer is entrywise monotone, and the domain join is a pointwise max
/// — so folding only the arcs whose cached value moved into a per-node
/// accumulator yields bit-for-bit the same matrix entries as re-joining
/// every arc from bottom: stale contributions are entrywise below their
/// replacements and max() absorbs them. The descending sweeps shrink
/// states, which breaks that absorption argument, so they keep the exact
/// full join over all arcs (still served from the cache, which is exact
/// memoization regardless of direction). Pops are never short-circuited:
/// the cache changes how joinOfPreds computes its value, never whether a
/// node is popped, widened, or compared — the Visits/widening/setState
/// trajectory is identical with the cache on or off.
///
/// The comparison fast path (pooled mode only) memoizes stabilization
/// no-ops: when a pop of node Id last concluded "no change" and none of
/// the entry states feeding Id (its in-arc sources, or only itself for
/// the entry node) changed version since, recomputing the join and the
/// leq must conclude "no change" again — versions only ever increase, so
/// an unchanged version *sum* over the inputs pins every input unchanged.
/// The fast path replays the pop's observable trajectory exactly (Pops,
/// Visits, Widenings, WideningFired) and bails to the slow path whenever
/// the widening applicability differs from the memoized pop (the one
/// warm-up -> widening transition per head), so the Visits/widening/
/// setState trajectory is identical with the fast path on or off. It is
/// disabled under the staleness oracle (VerifyArcCache), which wants
/// every hit re-checked, and in fresh mode, which is the measured PR-9
/// baseline.
template <blazer::NumericDomain Domain> class FixpointRun {
  using Analyzer = blazer::AnalyzerT<Domain>;
  using Result = blazer::AnalysisResultT<Domain>;

public:
  FixpointRun(const Analyzer &A, const VarEnv &Env, const ProductGraph &G,
              FixpointShape &Shape, FixpointArena<Domain> &Ar, bool Pooled,
              Result &R, AnalysisBudget *Budget,
              const std::vector<char> *Dead)
      : A(A), Env(Env), G(G), Shape(Shape), Ar(Ar), R(R), Budget(Budget),
        Dead(Dead), N(static_cast<int>(G.size())),
        NumArcs(Shape.NumArcs), ArcCacheOn(A.config().ArcCache),
        Verify(A.config().VerifyArcCache),
        FastCmp(Pooled && !A.config().VerifyArcCache),
        Batch(Pooled),
        JoinNs(A.config().PhaseTimers ? &R.Stats.JoinNanos : nullptr),
        TransferNs(A.config().PhaseTimers ? &R.Stats.TransferNanos
                                          : nullptr),
        WidenNs(A.config().PhaseTimers ? &R.Stats.WidenNanos : nullptr) {
    // Arena layout: [0,N) entry, [N,2N) post memo, then (cache on only)
    // [2N,2N+A) arc values, [2N+A,3N+A) accumulators. Slots are grow-only
    // across pooled runs; every slot above the entry segment is gated by
    // a per-run stamp and written before it is read, so only the entry
    // segment needs a value reset.
    size_t Need = ArcCacheOn ? 3 * static_cast<size_t>(N) + NumArcs
                             : 2 * static_cast<size_t>(N);
    if (Ar.Slots.size() < Need)
      Ar.Slots.resize(Need, Domain::bottom(Env.numVars()));
    for (int Id = 0; Id < N; ++Id)
      Ar.Slots[static_cast<size_t>(Id)].resetBottom(Env.numVars());
    if (!(Dead && (*Dead)[G.entry()]))
      entryOf(G.entry()) = Env.template initialState<Domain>();
    // Version 0 means "never computed"; entry states start at version 1 so
    // every node's first post-block lookup (and arc refresh) is a miss.
    Ar.PostVersion.assign(N, 0);
    Ar.StateVersion.assign(N, 1);
    Ar.Visits.assign(N, 0);
    if (ArcCacheOn) {
      Ar.ArcVersion.assign(NumArcs, 0);
      Ar.ArcFolded.assign(NumArcs, 0);
      Ar.AccValid.assign(N, false);
    }
    if (FastCmp) {
      Ar.CmpToken.assign(N, 0); // Tokens are >= 1, so 0 = no memo.
      Ar.CmpFlags.assign(N, 0);
    }
  }

  bool isDead(int Id) const { return Dead && (*Dead)[Id]; }

  Domain &entryOf(int Id) { return Ar.Slots[static_cast<size_t>(Id)]; }

  /// Moves the finished entry states out of the arena and records the
  /// cache's memory footprint. Call exactly once, after the run.
  void finish() {
    for (int Id = 0; Id < N; ++Id)
      R.EntryState[Id] = std::move(entryOf(Id));
    if (ArcCacheOn) {
      // High-water accounting: a pooled arena retains its slots, so
      // re-summing them every run would multiply the footprint by the run
      // count. Charge only growth beyond what this arena already
      // reported; a fresh arena starts at zero charged, so its one run
      // charges the full segment — the pre-pooling behavior.
      uint64_t Cur = 0;
      for (size_t I = 2 * static_cast<size_t>(N);
           I < 3 * static_cast<size_t>(N) + NumArcs; ++I)
        Cur += Ar.Slots[I].memoryBytes();
      if (Cur > Ar.ChargedBytes) {
        R.Stats.ArcBytes += Cur - Ar.ChargedBytes;
        Ar.ChargedBytes = Cur;
      }
    }
  }

  /// The post-block state of node \p P's current entry state, computed at
  /// most once per entry-state change and shared by every outgoing arc.
  const Domain &postOf(int P) {
    Domain &Slot = Ar.Slots[static_cast<size_t>(N) + P];
    if (Ar.PostVersion[P] == Ar.StateVersion[P]) {
      ++(InSweep ? R.Stats.SweepTransferHits : R.Stats.TransferHits);
      return Slot;
    }
    ++(InSweep ? R.Stats.SweepTransferMisses : R.Stats.TransferMisses);
    ScopedNanos Time(TransferNs);
    Slot = A.transferBlock(entryOf(P), G.node(P).Block);
    Ar.PostVersion[P] = Ar.StateVersion[P];
    return Slot;
  }

  /// The cached value flowing along in-arc \p AIdx (global arc index),
  /// recomputed only when the source's entry state changed since the
  /// stamp. This is exact memoization — valid in the ascent and the
  /// descending sweeps alike.
  const Domain &refreshArc(size_t AIdx, const ProductGraph::InArc &IA) {
    Domain &Slot = Ar.Slots[2 * static_cast<size_t>(N) + AIdx];
    if (Ar.ArcVersion[AIdx] == Ar.StateVersion[IA.From]) {
      ++R.Stats.ArcHits;
      if (Verify) {
        // Staleness oracle: the stamped value must equal a from-scratch
        // recomputation. Counted, not asserted — the test layer asserts.
        Domain Fresh = postOf(IA.From);
        A.applyBranch(Fresh, IA.CfgEdge);
        if (!Fresh.equals(Slot))
          ++R.Stats.ArcVerifyMismatches;
      }
      return Slot;
    }
    ++R.Stats.ArcMisses;
    ScopedNanos Time(TransferNs);
    Slot = postOf(IA.From);
    A.applyBranch(Slot, IA.CfgEdge);
    Ar.ArcVersion[AIdx] = Ar.StateVersion[IA.From];
    return Slot;
  }

  /// The original uncached join: copy + applyBranch + fold per in-arc.
  /// The --arc-cache=off baseline, and the degradation path when a fault
  /// plan poisons the cache mid-run.
  Domain uncachedJoin(int Id) {
    Domain Acc = Domain::bottom(Env.numVars());
    for (size_t K = Shape.ArcBase[Id]; K < Shape.ArcBase[Id + 1]; ++K) {
      const ProductGraph::InArc &IA = Shape.FlatArcs[K];
      Domain Along = [&] {
        ScopedNanos Time(TransferNs);
        Domain V = postOf(IA.From);
        A.applyBranch(V, IA.CfgEdge);
        return V;
      }();
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
    }
    return Acc;
  }

  /// True while the arc cache is live; simulated cache poisoning
  /// (FaultSite::ArcCache) permanently downgrades this run to the
  /// uncached path — same values, no verdict impact, by construction.
  bool arcCacheLive() {
    if (!ArcCacheOn)
      return false;
    try {
      maybeInjectFault(FaultSite::ArcCache);
    } catch (const InjectedFault &) {
      ArcCacheOn = false;
    }
    return ArcCacheOn;
  }

  /// Join of the states flowing into \p Id over exactly its in-arcs —
  /// incrementally when the arc cache is on: arcs whose stamp already
  /// matches what the accumulator folded are skipped, everything else is
  /// max-folded in. Ascent only (see class comment).
  Domain joinOfPreds(int Id) {
    if (Id == G.entry())
      return Env.template initialState<Domain>();
    if (!arcCacheLive())
      return uncachedJoin(Id);
    Domain &Acc = Ar.Slots[2 * static_cast<size_t>(N) + NumArcs + Id];
    size_t Base = Shape.ArcBase[Id], End = Shape.ArcBase[Id + 1];
    if (!Ar.AccValid[Id]) {
      Acc.resetBottom(Env.numVars());
      Ar.AccValid[Id] = true;
      // Force a first full fold below by marking every arc unfolded.
      for (size_t K = Base; K < End; ++K)
        Ar.ArcFolded[K] = 0;
    }
    for (size_t K = Base; K < End; ++K) {
      const Domain &Along = refreshArc(K, Shape.FlatArcs[K]);
      if (Ar.ArcFolded[K] == Ar.ArcVersion[K])
        continue; // Already absorbed into Acc; max() would be a no-op.
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
      Ar.ArcFolded[K] = Ar.ArcVersion[K];
    }
    return Acc;
  }

  /// The exact full join the descending sweeps need: every arc re-folded
  /// from bottom (values still served from the arc cache when live).
  Domain sweepJoinOfPreds(int Id) {
    if (Id == G.entry())
      return Env.template initialState<Domain>();
    if (!arcCacheLive())
      return uncachedJoin(Id);
    Domain Acc = Domain::bottom(Env.numVars());
    for (size_t K = Shape.ArcBase[Id]; K < Shape.ArcBase[Id + 1]; ++K) {
      const Domain &Along = refreshArc(K, Shape.FlatArcs[K]);
      ScopedNanos Time(JoinNs);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
    }
    return Acc;
  }

  void setState(int Id, Domain S) {
    entryOf(Id) = std::move(S);
    ++Ar.StateVersion[Id]; // Invalidate the post-block memo (and, through
                           // the stamps, every cached out-arc) of Id.
  }

  /// Sum of the StateVersions feeding \p Id's pop: its in-arc sources
  /// plus its own state (joinOfPreds of the entry node ignores in-arcs,
  /// so only its own version counts there). Versions never decrease, so
  /// an equal sum pins every summand equal — an unchanged token means an
  /// identical recomputation.
  uint64_t inputToken(int Id) const {
    uint64_t T = Ar.StateVersion[Id];
    if (Id != G.entry())
      for (size_t K = Shape.ArcBase[Id]; K < Shape.ArcBase[Id + 1]; ++K)
        T += Ar.StateVersion[Shape.FlatArcs[K].From];
    return T;
  }

  /// Recomputes \p Id's entry state; widens when \p AtWidenPoint and the
  /// warm-up has passed. Returns true when the state grew. Dead nodes
  /// (pinned bottom by the cascade) never change.
  bool updateNode(int Id, bool AtWidenPoint) {
    if (isDead(Id))
      return false;
    uint64_t Tok = 0;
    if (FastCmp) {
      // Comparison fast path: the last pop of Id concluded "no change"
      // with exactly these inputs and the same widening applicability —
      // replay its counters and skip the join + leq. The memo is written
      // only on the no-change path and any state growth bumps Id's own
      // version (part of the token), so a stale hit is impossible.
      Tok = inputToken(Id);
      char Flags = static_cast<char>((AtWidenPoint ? 1 : 0) |
                                     (AtWidenPoint &&
                                              Ar.Visits[Id] + 1 >
                                                  WideningDelay
                                          ? 2
                                          : 0));
      if (Ar.CmpToken[Id] == Tok && Ar.CmpFlags[Id] == Flags) {
        ++R.Stats.CmpFastHits;
        ++R.Stats.Pops;
        if (AtWidenPoint)
          ++Ar.Visits[Id];
        if (Flags & 2) {
          ++R.Stats.Widenings;
          WideningFired = true;
        }
        return false;
      }
      ++R.Stats.CmpFastMisses;
    }
    ++R.Stats.Pops;
    Domain NewState = joinOfPreds(Id);
    bool Fired = false;
    if (AtWidenPoint && ++Ar.Visits[Id] > WideningDelay) {
      ScopedNanos Time(WidenNs);
      Domain Widened = entryOf(Id);
      Widened.widenWith(NewState);
      NewState = std::move(Widened);
      ++R.Stats.Widenings;
      WideningFired = true;
      Fired = true;
    }
    if (NewState.leq(entryOf(Id))) {
      if (FastCmp) {
        // No version moved during this pop, so Tok still describes the
        // inputs the no-change conclusion was drawn from.
        Ar.CmpToken[Id] = Tok;
        Ar.CmpFlags[Id] = static_cast<char>((AtWidenPoint ? 1 : 0) |
                                            (Fired ? 2 : 0));
      }
      return false;
    }
    NewState.joinWith(entryOf(Id));
    setState(Id, std::move(NewState));
    return true;
  }

  /// Bourdoncle's recursive strategy over the WTO item span [Begin, End):
  /// plain vertices are updated once (their inputs are already stable);
  /// a component is iterated — head update, body stabilization — until the
  /// head's recomputation reports no change. Widening only at heads keeps
  /// termination: every cycle passes through some head. Innermost
  /// components with non-empty, head-free bodies take the batched path:
  /// the same pop/checkpoint sequence as the recursion, as one tight loop
  /// over the contiguous item span.
  void stabilize(size_t Begin, size_t End) {
    const std::vector<Wto::Item> &Items = Shape.W.items();
    for (size_t I = Begin; I < End;) {
      // Fail soft, same as the FIFO ascent: an interrupted run is not a
      // post-fixpoint; the tripped budget marks the result untrustworthy.
      if (Tripped || (Budget && !Budget->checkpoint())) {
        Tripped = true;
        return;
      }
      const Wto::Item &It = Items[I];
      if (!It.Head) {
        updateNode(It.Node, false);
        ++I;
        continue;
      }
      if (Batch && Shape.FlatComponent[I]) {
        stabilizeFlat(I, It.End);
        if (Tripped)
          return;
        I = It.End;
        continue;
      }
      updateNode(It.Node, true);
      while (!Tripped) {
        stabilize(I + 1, It.End);
        if (Tripped)
          return;
        if (!updateNode(It.Node, true))
          break;
      }
      I = It.End;
    }
  }

  /// Batched stabilization of a flat component (head at \p HeadIdx, body
  /// items [HeadIdx + 1, End) all plain vertices): identical pop order,
  /// budget checkpoints, and widening decisions as the recursive path —
  /// the caller already checkpointed before the head's first pop, the
  /// body checkpoints per item per pass, and the head's re-pops are
  /// uncheckpointed, exactly as in stabilize() — minus the per-pass
  /// recursion bookkeeping.
  void stabilizeFlat(size_t HeadIdx, size_t End) {
    const std::vector<Wto::Item> &Items = Shape.W.items();
    updateNode(Items[HeadIdx].Node, true);
    while (true) {
      ++R.Stats.BatchPasses;
      for (size_t I = HeadIdx + 1; I < End; ++I) {
        if (Tripped || (Budget && !Budget->checkpoint())) {
          Tripped = true;
          return;
        }
        updateNode(Items[I].Node, false);
        ++R.Stats.BatchedNodes;
      }
      if (!updateNode(Items[HeadIdx].Node, true))
        return;
    }
  }

  void runWto() {
    if (!Shape.WtoBuilt) {
      Shape.W = Wto::build(G.successorIds(), G.entry());
      Shape.FlatComponent = Shape.W.flatComponents();
      Shape.WtoBuilt = true;
    }
    stabilize(0, Shape.W.size());
  }

  /// The legacy FIFO worklist: widening at RPO back-edge targets, warm-up
  /// delay, deque seeded with the full RPO. Kept verbatim (modulo the
  /// shared in-arc joins and memo, which are value-identical) as the A/B
  /// baseline scheduler. The RPO index and widen-point map depend only on
  /// the shape, so they are computed once and borrowed thereafter.
  void runFifo() {
    if (!Shape.FifoBuilt) {
      Shape.RpoIndex.assign(N, -1);
      for (size_t I = 0; I < G.rpo().size(); ++I)
        Shape.RpoIndex[G.rpo()[I]] = static_cast<int>(I);
      Shape.WidenPoint.assign(N, 0);
      for (int Id = 0; Id < N; ++Id)
        for (const ProductGraph::Arc &Arc : G.successors(Id))
          if (Shape.RpoIndex[Arc.To] >= 0 && Shape.RpoIndex[Id] >= 0 &&
              Shape.RpoIndex[Arc.To] <= Shape.RpoIndex[Id])
            Shape.WidenPoint[Arc.To] = 1;
      Shape.FifoBuilt = true;
    }

    std::deque<int> Work(G.rpo().begin(), G.rpo().end());
    std::vector<bool> InWork(N, true);
    while (!Work.empty()) {
      if (Budget && !Budget->checkpoint()) {
        Tripped = true;
        break;
      }
      int Id = Work.front();
      Work.pop_front();
      InWork[Id] = false;
      if (!updateNode(Id, Shape.WidenPoint[Id] != 0))
        continue;
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        if (!InWork[Arc.To]) {
          InWork[Arc.To] = true;
          Work.push_back(Arc.To);
        }
    }
  }

  /// Descending refinement: plain recomputation sweeps tighten the widened
  /// states (sound: each recomputation stays above the least fixpoint
  /// because its inputs do, so any accepted refinement is independently
  /// valid — a sweep interrupted mid-way keeps what it has, fail-soft like
  /// the ascent). When no widening fired, the ascent already terminated at
  /// the least fixpoint and both sweeps would recompute every state
  /// unchanged, so they are skipped outright.
  void descend() {
    if (!WideningFired)
      return;
    InSweep = true;
    for (int Pass = 0; Pass < 2 && !(Budget && Budget->exhausted()); ++Pass) {
      ++R.Stats.Sweeps;
      for (int Id : G.rpo()) {
        if (Budget && !Budget->checkpoint())
          return;
        if (isDead(Id))
          continue;
        Domain NewState = sweepJoinOfPreds(Id);
        // Accept only strict refinements: re-assigning an equal state
        // would spuriously invalidate the post-block memo.
        if (NewState.leq(entryOf(Id)) && !entryOf(Id).leq(NewState))
          setState(Id, std::move(NewState));
      }
    }
  }

  bool tripped() const { return Tripped; }

private:
  static constexpr int WideningDelay = 2;

  const Analyzer &A;
  const VarEnv &Env;
  const ProductGraph &G;
  /// Borrowed schedule data (flat arc index; lazily built WTO / FIFO
  /// schedules). Pooled: owned by the thread's FixpointContext. Fresh:
  /// a local of analyze().
  FixpointShape &Shape;
  /// Borrowed storage: the slot arena plus every per-run stamp vector
  /// (PostVersion/StateVersion/Visits/Arc*/Acc*/Cmp*). Same ownership
  /// split as the shape.
  FixpointArena<Domain> &Ar;
  Result &R;
  AnalysisBudget *Budget;
  const std::vector<char> *Dead;
  int N;
  size_t NumArcs;
  bool ArcCacheOn;
  bool Verify;
  /// Version-stamped comparison fast path (pooled mode, oracle off).
  bool FastCmp;
  /// Batched flat-component stabilization (pooled mode).
  bool Batch;
  uint64_t *JoinNs;
  uint64_t *TransferNs;
  uint64_t *WidenNs;

  bool WideningFired = false;
  bool Tripped = false;
  bool InSweep = false;
};

} // namespace

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G) const {
  return analyze(G, nullptr);
}

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G,
                           const std::vector<char> *Dead) const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase(Domain::FixpointPhase);
  AnalysisResultT<Domain> R;
  int N = static_cast<int>(G.size());
  R.EntryState.assign(N, Domain::bottom(Env.numVars()));
  R.Feasible.assign(N, false);
  if (G.empty())
    return R;

  // Context acquisition. Pooled mode borrows the thread's shape cache and
  // retained arena; fresh mode (the A/B baseline, or a degraded run when
  // a fault plan poisons the pool) builds function-local ones. Either
  // way FixpointRun iterates the same structures, so the two modes are
  // byte-identical — which is why the FixpointCtx fault site can degrade
  // with no verdict impact, by construction.
  bool Pooled = Config.PooledContext;
  if (Pooled) {
    try {
      maybeInjectFault(FaultSite::FixpointCtx);
    } catch (const InjectedFault &) {
      Pooled = false;
    }
  }
  FixpointShape LocalShape;
  FixpointArena<Domain> LocalArena;
  FixpointShape *Shape = &LocalShape;
  FixpointArena<Domain> *Arena = &LocalArena;
  if (Pooled) {
    FixpointContext &Ctx = FixpointContext::forThread();
    bool Hit = false;
    Shape = &Ctx.shapeFor(G, Hit);
    ++(Hit ? R.Stats.CtxHits : R.Stats.CtxMisses);
    FixpointArena<Domain> &PoolArena = Ctx.template arena<Domain>();
    // Re-entrant analysis on this thread (the pool arena is mid-run):
    // fall back to local storage rather than clobbering live slots.
    if (!PoolArena.InUse)
      Arena = &PoolArena;
  } else {
    buildFixpointShape(LocalShape, G);
  }
  ArenaLease<Domain> Lease(*Arena);

  // The run's entry states (and everything else it touches) live in the
  // borrowed arena; finish() moves them into R.
  FixpointRun<Domain> Run(*this, Env, G, *Shape, *Arena, Pooled, R, Budget,
                          Dead);
  if (Config.UseWto)
    Run.runWto();
  else
    Run.runFifo();
  if (!Run.tripped())
    Run.descend();
  Run.finish();

  for (int Id = 0; Id < N; ++Id)
    R.Feasible[Id] = !R.EntryState[Id].isBottom();
  return R;
}

// The engine's two domains. New domains extend this list (and the extern
// declarations in Analyzer.h) rather than moving the definitions inline.
namespace blazer {
template class AnalyzerT<Dbm>;
template class AnalyzerT<IntervalDomain>;
} // namespace blazer
