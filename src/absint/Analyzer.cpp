//===- Analyzer.cpp - Trail-restricted abstract interpreter ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"

#include "absint/Wto.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <deque>

using namespace blazer;

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferBlock(const Domain &In, int Block) const {
  // Simulated kernel failure before the block executes; Out is a local, so
  // unwinding through the fixpoint leaves no partial state behind.
  maybeInjectFault(FaultSite::Transfer);
  Domain Out = In;
  for (const Instr &I : F.block(Block).Instrs)
    Env.transferInstr(Out, I);
  return Out;
}

template <NumericDomain Domain>
void AnalyzerT<Domain>::applyBranch(Domain &Out, const Edge &E) const {
  const BasicBlock &B = F.block(E.From);
  if (B.Term == BasicBlock::TermKind::Branch) {
    if (B.TrueSucc == B.FalseSucc)
      return; // Degenerate branch carries no information.
    Env.assumeCond(Out, B.Cond, E.To == B.TrueSucc);
  }
}

template <NumericDomain Domain>
Domain AnalyzerT<Domain>::transferEdge(const Domain &In, const Edge &E) const {
  Domain Out = transferBlock(In, E.From);
  applyBranch(Out, E);
  return Out;
}

namespace {

/// Mutable state of one fixpoint run: the entry states under construction,
/// the version-stamped post-block memo, and the work counters. Both
/// schedulers and the descending sweeps share these, so memoized transfers
/// survive re-pops and carry over into refinement.
template <blazer::NumericDomain Domain> class FixpointRun {
  using Analyzer = blazer::AnalyzerT<Domain>;
  using Result = blazer::AnalysisResultT<Domain>;

public:
  FixpointRun(const Analyzer &A, const VarEnv &Env, const ProductGraph &G,
              Result &R, AnalysisBudget *Budget,
              const std::vector<char> *Dead)
      : A(A), Env(Env), G(G), R(R), Budget(Budget), Dead(Dead),
        N(static_cast<int>(G.size())) {
    // Version 0 means "never computed"; entry states start at version 1 so
    // every node's first post-block lookup is a miss.
    PostBlock.assign(N, Domain::bottom(Env.numVars()));
    PostVersion.assign(N, 0);
    StateVersion.assign(N, 1);
    Visits.assign(N, 0);
  }

  bool isDead(int Id) const { return Dead && (*Dead)[Id]; }

  /// The post-block state of node \p P's current entry state, computed at
  /// most once per entry-state change and shared by every outgoing arc.
  const Domain &postOf(int P) {
    if (PostVersion[P] == StateVersion[P]) {
      ++R.Stats.TransferHits;
      return PostBlock[P];
    }
    ++R.Stats.TransferMisses;
    PostBlock[P] = A.transferBlock(R.EntryState[P], G.node(P).Block);
    PostVersion[P] = StateVersion[P];
    return PostBlock[P];
  }

  /// Join of the states flowing into \p Id over exactly its in-arcs.
  Domain joinOfPreds(int Id) {
    if (Id == G.entry())
      return Env.template initialState<Domain>();
    Domain Acc = Domain::bottom(Env.numVars());
    for (const ProductGraph::InArc &IA : G.inArcs(Id)) {
      Domain Along = postOf(IA.From);
      A.applyBranch(Along, IA.CfgEdge);
      Acc.joinWith(Along);
      ++R.Stats.Joins;
    }
    return Acc;
  }

  void setState(int Id, Domain S) {
    R.EntryState[Id] = std::move(S);
    ++StateVersion[Id]; // Invalidate the post-block memo for Id.
  }

  /// Recomputes \p Id's entry state; widens when \p AtWidenPoint and the
  /// warm-up has passed. Returns true when the state grew. Dead nodes
  /// (pinned bottom by the cascade) never change.
  bool updateNode(int Id, bool AtWidenPoint) {
    if (isDead(Id))
      return false;
    ++R.Stats.Pops;
    Domain NewState = joinOfPreds(Id);
    if (AtWidenPoint && ++Visits[Id] > WideningDelay) {
      Domain Widened = R.EntryState[Id];
      Widened.widenWith(NewState);
      NewState = std::move(Widened);
      ++R.Stats.Widenings;
      WideningFired = true;
    }
    if (NewState.leq(R.EntryState[Id]))
      return false;
    NewState.joinWith(R.EntryState[Id]);
    setState(Id, std::move(NewState));
    return true;
  }

  /// Bourdoncle's recursive strategy over the WTO item span [Begin, End):
  /// plain vertices are updated once (their inputs are already stable);
  /// a component is iterated — head update, body stabilization — until the
  /// head's recomputation reports no change. Widening only at heads keeps
  /// termination: every cycle passes through some head.
  void stabilize(const Wto &W, size_t Begin, size_t End) {
    for (size_t I = Begin; I < End;) {
      // Fail soft, same as the FIFO ascent: an interrupted run is not a
      // post-fixpoint; the tripped budget marks the result untrustworthy.
      if (Tripped || (Budget && !Budget->checkpoint())) {
        Tripped = true;
        return;
      }
      const Wto::Item &It = W.items()[I];
      if (!It.Head) {
        updateNode(It.Node, false);
        ++I;
        continue;
      }
      updateNode(It.Node, true);
      while (!Tripped) {
        stabilize(W, I + 1, It.End);
        if (Tripped)
          return;
        if (!updateNode(It.Node, true))
          break;
      }
      I = It.End;
    }
  }

  void runWto() {
    Wto W = Wto::build(G.successorIds(), G.entry());
    stabilize(W, 0, W.size());
  }

  /// The legacy FIFO worklist: widening at RPO back-edge targets, warm-up
  /// delay, deque seeded with the full RPO. Kept verbatim (modulo the
  /// shared in-arc joins and memo, which are value-identical) as the A/B
  /// baseline scheduler.
  void runFifo() {
    std::vector<int> RpoIndex(N, -1);
    for (size_t I = 0; I < G.rpo().size(); ++I)
      RpoIndex[G.rpo()[I]] = static_cast<int>(I);
    std::vector<bool> WidenPoint(N, false);
    for (int Id = 0; Id < N; ++Id)
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        if (RpoIndex[Arc.To] >= 0 && RpoIndex[Id] >= 0 &&
            RpoIndex[Arc.To] <= RpoIndex[Id])
          WidenPoint[Arc.To] = true;

    std::deque<int> Work(G.rpo().begin(), G.rpo().end());
    std::vector<bool> InWork(N, true);
    while (!Work.empty()) {
      if (Budget && !Budget->checkpoint()) {
        Tripped = true;
        break;
      }
      int Id = Work.front();
      Work.pop_front();
      InWork[Id] = false;
      if (!updateNode(Id, WidenPoint[Id]))
        continue;
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        if (!InWork[Arc.To]) {
          InWork[Arc.To] = true;
          Work.push_back(Arc.To);
        }
    }
  }

  /// Descending refinement: plain recomputation sweeps tighten the widened
  /// states (sound: each recomputation stays above the least fixpoint
  /// because its inputs do, so any accepted refinement is independently
  /// valid — a sweep interrupted mid-way keeps what it has, fail-soft like
  /// the ascent). When no widening fired, the ascent already terminated at
  /// the least fixpoint and both sweeps would recompute every state
  /// unchanged, so they are skipped outright.
  void descend() {
    if (!WideningFired)
      return;
    for (int Pass = 0; Pass < 2 && !(Budget && Budget->exhausted()); ++Pass) {
      ++R.Stats.Sweeps;
      for (int Id : G.rpo()) {
        if (Budget && !Budget->checkpoint())
          return;
        if (isDead(Id))
          continue;
        Domain NewState = joinOfPreds(Id);
        // Accept only strict refinements: re-assigning an equal state
        // would spuriously invalidate the post-block memo.
        if (NewState.leq(R.EntryState[Id]) &&
            !R.EntryState[Id].leq(NewState))
          setState(Id, std::move(NewState));
      }
    }
  }

  bool tripped() const { return Tripped; }

private:
  static constexpr int WideningDelay = 2;

  const Analyzer &A;
  const VarEnv &Env;
  const ProductGraph &G;
  Result &R;
  AnalysisBudget *Budget;
  const std::vector<char> *Dead;
  int N;

  std::vector<Domain> PostBlock;
  std::vector<uint64_t> PostVersion;
  std::vector<uint64_t> StateVersion;
  std::vector<int> Visits;
  bool WideningFired = false;
  bool Tripped = false;
};

} // namespace

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G) const {
  return analyze(G, nullptr);
}

template <NumericDomain Domain>
AnalysisResultT<Domain>
AnalyzerT<Domain>::analyze(const ProductGraph &G,
                           const std::vector<char> *Dead) const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase(Domain::FixpointPhase);
  AnalysisResultT<Domain> R;
  int N = static_cast<int>(G.size());
  R.EntryState.assign(N, Domain::bottom(Env.numVars()));
  R.Feasible.assign(N, false);
  if (G.empty())
    return R;

  if (!(Dead && (*Dead)[G.entry()]))
    R.EntryState[G.entry()] = Env.template initialState<Domain>();

  FixpointRun<Domain> Run(*this, Env, G, R, Budget, Dead);
  if (UseWto)
    Run.runWto();
  else
    Run.runFifo();
  if (!Run.tripped())
    Run.descend();

  for (int Id = 0; Id < N; ++Id)
    R.Feasible[Id] = !R.EntryState[Id].isBottom();
  return R;
}

// The engine's two domains. New domains extend this list (and the extern
// declarations in Analyzer.h) rather than moving the definitions inline.
namespace blazer {
template class AnalyzerT<Dbm>;
template class AnalyzerT<IntervalDomain>;
} // namespace blazer
