//===- Analyzer.h - Trail-restricted abstract interpreter -------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpreter: a fixpoint over the product graph (CFG x trail
/// DFA) in a numeric abstract domain, with widening and a descending
/// refinement pass. This is the "standard abstract interpreter equipped
/// with a trail oracle" of §5; its invariants feed the bound analysis and
/// decide trail feasibility (infeasible trails — like the
/// vulnerable-looking one in loopAndBranch — come back bottom).
///
/// The interpreter is a template over the NumericDomain concept, with two
/// engine instantiations: AnalyzerT<Dbm> (zones, the paper's domain) and
/// AnalyzerT<IntervalDomain> (boxes, the cheap first tier of the
/// interval->zone cascade). Both run the same schedulers, transfer
/// functions, memoization, and refinement; only the lattice differs.
///
/// Two schedulers drive the same transfer functions:
///
///  - WTO (default): Bourdoncle's recursive iteration strategy over a weak
///    topological order of the product. Components are iterated to
///    stabilization innermost-first, and widening is applied only at
///    component heads — an admissible widening set, since every cycle
///    passes through a head. Joins walk exactly the in-arcs of a node, and
///    each node's post-block state is memoized under a version counter so
///    transferBlock runs once per entry-state change.
///
///  - FIFO (legacy, behind EngineConfig::Fixpoint): the original worklist
///    deque with widening at RPO back-edge targets, kept as the A/B
///    baseline. It shares the in-arc joins and the transfer memo, so the
///    two schedulers differ only in iteration order — and since the domain
///    join is a pointwise max (order-independent), they compute identical
///    invariants wherever widening behaves the same.
///
/// On top of the post-block memo, the run keeps a per-arc transfer cache
/// (AnalyzerConfig::ArcCache, wired from EngineConfig::ArcCache): each
/// in-arc's applyBranch(postOf(From)) value is cached under the source
/// node's state version, and the monotone ascent folds only arcs whose
/// cached value moved into a per-node accumulated join. Entry states are
/// byte-identical with the cache on or off — the cache changes how the
/// same pointwise-max join is computed, never its value (see DESIGN.md
/// "Fixpoint engine: the arc cache"). All per-run domain values (entry
/// states, post memo, arc values, accumulators) live in one flat arena so
/// the iteration walks contiguous memory.
///
/// Thread-safety audit (for the parallel trail-tree analysis): AnalyzerT
/// holds only const references to per-function state and has no mutable
/// members; the domains and AnalysisResultT are plain value types; VarEnv
/// is immutable after construction. transferBlock/transferEdge are
/// therefore safe to call concurrently from worker threads — they allocate
/// their result state locally and report joins to the (atomic)
/// thread-local AnalysisBudget. analyze() keeps all run state (entry
/// states, transfer memo, counters) in per-call locals or in the strictly
/// thread-local FixpointContext pool, so concurrent analyze() calls on
/// distinct products are safe; one fixpoint stays sequential on purpose —
/// parallelism comes from analyzing distinct trails concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_ANALYZER_H
#define BLAZER_ABSINT_ANALYZER_H

#include "absint/Dbm.h"
#include "absint/IntervalDomain.h"
#include "absint/NumericDomain.h"
#include "absint/ProductGraph.h"
#include "absint/VarEnv.h"
#include "support/EngineTelemetry.h" // FixpointStats

#include <cstdint>
#include <vector>

namespace blazer {

/// Per-product-node invariants (at block entry) in domain \p Domain.
template <NumericDomain Domain> struct AnalysisResultT {
  std::vector<Domain> EntryState;
  /// True when the node's entry state is non-bottom, i.e. some concrete
  /// execution compatible with the trail may reach it.
  std::vector<bool> Feasible;
  /// Work counters of the fixpoint run that produced the states.
  FixpointStats Stats;
};

/// Per-analyzer engine switches (a value-semantic subset of EngineConfig
/// plus test/bench-only diagnostics).
struct AnalyzerConfig {
  /// Bourdoncle WTO recursion (default) vs the legacy FIFO worklist.
  bool UseWto = true;
  /// Per-arc transfer cache + dirty-arc incremental ascent joins.
  bool ArcCache = true;
  /// Borrow the per-thread FixpointContext pool: WTO/arc-index reuse
  /// across same-shape runs, a retained state arena reset by version
  /// stamp, batched flat-component stabilization, and the version-stamped
  /// comparison fast path. `false` rebuilds everything per run (the
  /// `--fixpoint-ctx=fresh` A/B baseline); entry states, trajectories,
  /// and verdicts are byte-identical either way (see DESIGN.md "Fixpoint
  /// engine: the context pool").
  bool PooledContext = true;
  /// Staleness oracle: on every arc-cache hit, recompute the arc value
  /// from scratch and count a FixpointStats::ArcVerifyMismatches when the
  /// cached value differs. Test-only — quadratic overhead.
  bool VerifyArcCache = false;
  /// Accumulate per-phase wall time (join/transfer/widen nanos) into
  /// FixpointStats. Bench-only — keeps the clock off the production path.
  bool PhaseTimers = false;
};

/// Runs the fixpoint analysis over a product graph in domain \p Domain.
template <NumericDomain Domain> class AnalyzerT {
public:
  AnalyzerT(const CfgFunction &F, const VarEnv &Env, bool UseWto = true)
      : F(F), Env(Env) {
    Config.UseWto = UseWto;
  }

  AnalyzerT(const CfgFunction &F, const VarEnv &Env, const AnalyzerConfig &C)
      : F(F), Env(Env), Config(C) {}

  AnalysisResultT<Domain> analyze(const ProductGraph &G) const;

  /// Like analyze(G), but nodes with a nonzero entry in \p Dead are pinned
  /// to bottom: never seeded, never updated, reported infeasible. The
  /// cascade passes the complement of the interval-reachable set here so
  /// the zone run skips nodes the cheap domain already ruled out — sound
  /// because zone states are included in interval states node-for-node, so
  /// an interval-unreachable node is zone-unreachable too. \p Dead must
  /// have one entry per product node; null behaves like analyze(G).
  AnalysisResultT<Domain> analyze(const ProductGraph &G,
                                  const std::vector<char> *Dead) const;

  /// Abstract execution of \p Block's instructions on \p In (terminator
  /// condition not yet applied).
  Domain transferBlock(const Domain &In, int Block) const;

  /// Abstract state propagated along CFG edge \p E starting from the entry
  /// state \p In of block E.From: runs the block body, then assumes the
  /// branch condition for the side E takes.
  Domain transferEdge(const Domain &In, const Edge &E) const;

  /// Applies just the branch-condition half of transferEdge to \p Out,
  /// which must already be the post-block state of E.From.
  void applyBranch(Domain &Out, const Edge &E) const;

  const AnalyzerConfig &config() const { return Config; }

private:
  const CfgFunction &F;
  const VarEnv &Env;
  AnalyzerConfig Config;
};

// Engine instantiations live in Analyzer.cpp.
extern template class AnalyzerT<Dbm>;
extern template class AnalyzerT<IntervalDomain>;

/// The zone-domain instantiation, under the historical names.
using Analyzer = AnalyzerT<Dbm>;
using AnalysisResult = AnalysisResultT<Dbm>;

/// The box-domain instantiation (first tier of the cascade).
using IntervalAnalyzer = AnalyzerT<IntervalDomain>;
using IntervalAnalysisResult = AnalysisResultT<IntervalDomain>;

} // namespace blazer

#endif // BLAZER_ABSINT_ANALYZER_H
