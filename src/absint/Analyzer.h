//===- Analyzer.h - Trail-restricted abstract interpreter -------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpreter: a worklist fixpoint over the product graph
/// (CFG x trail DFA) in the zone domain, with widening at loop heads and a
/// descending refinement pass. This is the "standard abstract interpreter
/// equipped with a trail oracle" of §5; its invariants feed the bound
/// analysis and decide trail feasibility (infeasible trails — like the
/// vulnerable-looking one in loopAndBranch — come back bottom).
///
/// Thread-safety audit (for the parallel trail-tree analysis): Analyzer
/// holds only const references to per-function state and has no mutable
/// members; Dbm and AnalysisResult are plain value types; VarEnv is
/// immutable after construction. transferBlock/transferEdge are therefore
/// safe to call concurrently from worker threads — they allocate their
/// result Dbm locally and report DBM joins to the (atomic) thread-local
/// AnalysisBudget. analyze() itself stays sequential *within one product
/// graph* on purpose: the worklist order and widening points are
/// order-sensitive, and reordering them could change (weaken) invariants
/// — parallelism comes from analyzing distinct trails concurrently, not
/// from splitting one fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_ANALYZER_H
#define BLAZER_ABSINT_ANALYZER_H

#include "absint/Dbm.h"
#include "absint/ProductGraph.h"
#include "absint/VarEnv.h"

#include <vector>

namespace blazer {

/// Per-product-node invariants (at block entry).
struct AnalysisResult {
  std::vector<Dbm> EntryState;
  /// True when the node's entry state is non-bottom, i.e. some concrete
  /// execution compatible with the trail may reach it.
  std::vector<bool> Feasible;
};

/// Runs the zone analysis over \p G.
class Analyzer {
public:
  Analyzer(const CfgFunction &F, const VarEnv &Env) : F(F), Env(Env) {}

  AnalysisResult analyze(const ProductGraph &G) const;

  /// Abstract execution of \p Block's instructions on \p In (terminator
  /// condition not yet applied).
  Dbm transferBlock(const Dbm &In, int Block) const;

  /// Abstract state propagated along CFG edge \p E starting from the entry
  /// state \p In of block E.From: runs the block body, then assumes the
  /// branch condition for the side E takes.
  Dbm transferEdge(const Dbm &In, const Edge &E) const;

private:
  const CfgFunction &F;
  const VarEnv &Env;
};

} // namespace blazer

#endif // BLAZER_ABSINT_ANALYZER_H
