//===- Analyzer.h - Trail-restricted abstract interpreter -------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpreter: a fixpoint over the product graph (CFG x trail
/// DFA) in the zone domain, with widening and a descending refinement pass.
/// This is the "standard abstract interpreter equipped with a trail oracle"
/// of §5; its invariants feed the bound analysis and decide trail
/// feasibility (infeasible trails — like the vulnerable-looking one in
/// loopAndBranch — come back bottom).
///
/// Two schedulers drive the same transfer functions:
///
///  - WTO (default): Bourdoncle's recursive iteration strategy over a weak
///    topological order of the product. Components are iterated to
///    stabilization innermost-first, and widening is applied only at
///    component heads — an admissible widening set, since every cycle
///    passes through a head. Joins walk exactly the in-arcs of a node, and
///    each node's post-block state is memoized under a version counter so
///    transferBlock runs once per entry-state change.
///
///  - FIFO (legacy, behind BlazerOptions::FifoFixpoint): the original
///    worklist deque with widening at RPO back-edge targets, kept as the
///    A/B baseline. It shares the in-arc joins and the transfer memo, so
///    the two schedulers differ only in iteration order — and since the
///    zone join is a pointwise max of closed matrices (order-independent),
///    they compute identical invariants wherever widening behaves the same.
///
/// Thread-safety audit (for the parallel trail-tree analysis): Analyzer
/// holds only const references to per-function state and has no mutable
/// members; Dbm and AnalysisResult are plain value types; VarEnv is
/// immutable after construction. transferBlock/transferEdge are therefore
/// safe to call concurrently from worker threads — they allocate their
/// result Dbm locally and report DBM joins to the (atomic) thread-local
/// AnalysisBudget. analyze() keeps all run state (entry states, transfer
/// memo, counters) in per-call locals, so concurrent analyze() calls on
/// distinct products are safe; one fixpoint stays sequential on purpose —
/// parallelism comes from analyzing distinct trails concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_ANALYZER_H
#define BLAZER_ABSINT_ANALYZER_H

#include "absint/Dbm.h"
#include "absint/ProductGraph.h"
#include "absint/VarEnv.h"

#include <cstdint>
#include <vector>

namespace blazer {

/// Work counters of one (or several, merged) zone-fixpoint runs. These are
/// diagnostics, not semantics: two schedulers that agree on every invariant
/// still pop and join different amounts.
struct FixpointStats {
  uint64_t Pops = 0;      ///< Node entry-state recomputations.
  uint64_t Joins = 0;     ///< In-arc joins folded into entry states.
  uint64_t Widenings = 0; ///< Widening applications.
  uint64_t TransferHits = 0;   ///< Post-block memo hits.
  uint64_t TransferMisses = 0; ///< Post-block memo misses (block executions).
  uint64_t Sweeps = 0;         ///< Descending sweeps actually run.

  void mergeFrom(const FixpointStats &O) {
    Pops += O.Pops;
    Joins += O.Joins;
    Widenings += O.Widenings;
    TransferHits += O.TransferHits;
    TransferMisses += O.TransferMisses;
    Sweeps += O.Sweeps;
  }

  /// Fraction of post-block lookups served from the memo, in [0, 1].
  double transferHitRate() const {
    uint64_t Total = TransferHits + TransferMisses;
    return Total ? static_cast<double>(TransferHits) / Total : 0.0;
  }
};

/// Per-product-node invariants (at block entry).
struct AnalysisResult {
  std::vector<Dbm> EntryState;
  /// True when the node's entry state is non-bottom, i.e. some concrete
  /// execution compatible with the trail may reach it.
  std::vector<bool> Feasible;
  /// Work counters of the fixpoint run that produced the states.
  FixpointStats Stats;
};

/// Runs the zone analysis over \p G.
class Analyzer {
public:
  Analyzer(const CfgFunction &F, const VarEnv &Env, bool UseWto = true)
      : F(F), Env(Env), UseWto(UseWto) {}

  AnalysisResult analyze(const ProductGraph &G) const;

  /// Abstract execution of \p Block's instructions on \p In (terminator
  /// condition not yet applied).
  Dbm transferBlock(const Dbm &In, int Block) const;

  /// Abstract state propagated along CFG edge \p E starting from the entry
  /// state \p In of block E.From: runs the block body, then assumes the
  /// branch condition for the side E takes.
  Dbm transferEdge(const Dbm &In, const Edge &E) const;

  /// Applies just the branch-condition half of transferEdge to \p Out,
  /// which must already be the post-block state of E.From.
  void applyBranch(Dbm &Out, const Edge &E) const;

private:
  const CfgFunction &F;
  const VarEnv &Env;
  const bool UseWto;
};

} // namespace blazer

#endif // BLAZER_ABSINT_ANALYZER_H
