//===- Dbm.cpp - Difference-bound-matrix (zone) abstract domain -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"

#include "support/Budget.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>

using namespace blazer;

namespace {
/// Bench-only A/B switch (see Dbm::forceFullClose). Written once before
/// analysis threads exist; relaxed loads keep the hot path free of fences.
std::atomic<bool> ForceFullClose{false};
} // namespace

void Dbm::forceFullClose(bool Enable) {
  ForceFullClose.store(Enable, std::memory_order_relaxed);
}

Dbm::Dbm(int NumVars) : N(NumVars + 1) {
  M.assign(static_cast<size_t>(N) * N, Inf);
  for (int I = 0; I < N; ++I)
    at(I, I) = 0;
}

Dbm Dbm::top(int NumVars) { return Dbm(NumVars); }

Dbm Dbm::bottom(int NumVars) {
  Dbm D(NumVars);
  D.setBottom();
  return D;
}

void Dbm::setBottom() {
  Bottom = true;
  // Canonical bottom: keep the matrix irrelevant but consistent.
}

int64_t Dbm::bound(int I, int J) const {
  assert(I >= 0 && I < N && J >= 0 && J < N && "index out of range");
  if (I < 0 || I >= N || J < 0 || J >= N)
    return Inf; // Release builds: no constraint known about unknown vars.
  return at(I, J);
}

Result<int64_t> Dbm::boundChecked(int I, int J) const {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return Result<int64_t>::error(
        "DBM index (" + std::to_string(I) + ", " + std::to_string(J) +
        ") out of range for dimension " + std::to_string(N));
  return at(I, J);
}

void Dbm::addConstraint(int I, int J, int64_t C) {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return; // Recoverable misuse: no variable to constrain.
  if (Bottom)
    return;
  if (I == J) {
    // vi - vi <= C: tautology for C >= 0, contradiction otherwise.
    if (C < 0)
      setBottom();
    return;
  }
  if (C >= at(I, J))
    return; // Not tighter.
  if (!Closed || ForceFullClose.load(std::memory_order_relaxed)) {
    at(I, J) = C;
    close();
    return;
  }
  // Closed input: the only candidate negative cycle uses the new I -> J
  // edge, and closure makes at(J, I) the exact shortest path J -> I, so
  // the zone is empty iff C + at(J, I) < 0.
  int64_t JI = at(J, I);
  if (JI != Inf && C + JI < 0) {
    setBottom();
    return;
  }
  // Single-constraint re-closure: any path improved by the new edge
  // decomposes as p -> I, the edge, J -> q, with both legs already
  // shortest paths. O(n^2) instead of the full Floyd-Warshall. In-place is
  // safe: rows I's column and J's row only relax by C + at(J, I) >= 0, so
  // the values read below never change under our own writes.
  at(I, J) = C;
  for (int P = 0; P < N; ++P) {
    int64_t PI = at(P, I);
    if (PI == Inf)
      continue;
    int64_t PIC = PI + C;
    for (int Q = 0; Q < N; ++Q) {
      int64_t JQ = at(J, Q);
      if (JQ == Inf)
        continue;
      int64_t Via = PIC + JQ;
      if (Via < at(P, Q))
        at(P, Q) = Via;
    }
  }
}

void Dbm::addConstraintFullClose(int I, int J, int64_t C) {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return;
  if (Bottom)
    return;
  if (I == J) {
    if (C < 0)
      setBottom();
    return;
  }
  if (C >= at(I, J))
    return;
  at(I, J) = C;
  close();
}

std::optional<int64_t> Dbm::lowerOf(int V) const {
  // 0 - v <= c  means  v >= -c.
  int64_t C = at(0, V);
  if (C == Inf)
    return std::nullopt;
  return -C;
}

std::optional<int64_t> Dbm::upperOfOpt(int V) const {
  int64_t C = at(V, 0);
  if (C == Inf)
    return std::nullopt;
  return C;
}

std::optional<int64_t> Dbm::exactDifference(int I, int J) const {
  if (Bottom)
    return std::nullopt;
  int64_t Hi = at(I, J);
  int64_t Lo = at(J, I);
  if (Hi == Inf || Lo == Inf || Hi != -Lo)
    return std::nullopt;
  return Hi;
}

void Dbm::forget(int V) {
  assert(V > 0 && V < N && "cannot forget the zero variable");
  if (V <= 0 || V >= N)
    return; // Recoverable misuse: nothing to forget.
  if (Bottom)
    return;
  // The matrix is closed, so dropping V's row and column loses no
  // information about the other variables.
  for (int I = 0; I < N; ++I) {
    at(V, I) = Inf;
    at(I, V) = Inf;
  }
  at(V, V) = 0;
}

void Dbm::assignConst(int V, int64_t C) {
  if (Bottom)
    return;
  // forget keeps a closed matrix closed, so each constraint lands on the
  // O(n^2) incremental path; closure is canonical, so the result is the
  // same matrix the old forget-then-full-close sequence produced.
  forget(V);
  addConstraint(V, 0, C);
  addConstraint(0, V, -C);
}

void Dbm::assignVarPlus(int V, int W, int64_t C) {
  if (Bottom)
    return;
  if (V == W) {
    // v := v + c: translate all of v's constraints.
    for (int I = 0; I < N; ++I) {
      if (I == V)
        continue;
      if (at(V, I) != Inf)
        at(V, I) = addSat(at(V, I), C);
      if (at(I, V) != Inf)
        at(I, V) = addSat(at(I, V), -C);
    }
    return; // Still closed: a translation preserves closure.
  }
  forget(V);
  addConstraint(V, W, C);
  addConstraint(W, V, -C);
}

void Dbm::assignBoolUnknown(int V) {
  if (Bottom)
    return;
  forget(V);
  addConstraint(V, 0, 1); // v <= 1
  addConstraint(0, V, 0); // v >= 0
}

void Dbm::joinWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    // Recoverable misuse: joining zones over different variable sets has no
    // exact answer — degrade to top of our own dimension (sound: top
    // over-approximates any join).
    *this = Dbm::top(numVars());
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  for (size_t I = 0; I < M.size(); ++I)
    M[I] = std::max(M[I], RHS.M[I]);
  // Pointwise max of closed matrices is closed; anything else (a widened
  // operand) taints the result.
  Closed = Closed && RHS.Closed;
}

void Dbm::meetWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return; // Recoverable misuse: keep *this (an over-approximation).
  if (Bottom)
    return;
  if (RHS.Bottom) {
    setBottom();
    return;
  }
  for (size_t I = 0; I < M.size(); ++I)
    M[I] = std::min(M[I], RHS.M[I]);
  close();
}

void Dbm::widenWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    *this = Dbm::top(numVars()); // Sound and trivially convergent.
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  for (size_t I = 0; I < M.size(); ++I)
    if (RHS.M[I] > M[I])
      M[I] = Inf;
  // Deliberately not re-closed: closing after widening can defeat
  // convergence. The next addConstraint must therefore take the full
  // closure, not the incremental one.
  Closed = false;
}

bool Dbm::leq(const Dbm &RHS) const {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return false; // Incomparable; false is the conservative answer.
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  for (size_t I = 0; I < M.size(); ++I)
    if (M[I] > RHS.M[I])
      return false;
  return true;
}

bool Dbm::equals(const Dbm &RHS) const {
  if (Bottom || RHS.Bottom)
    return Bottom == RHS.Bottom;
  return M == RHS.M;
}

void Dbm::close() {
  if (Bottom)
    return;
  AnalysisBudget *Budget = BudgetScope::current();
  Closed = false;
  for (int K = 0; K < N; ++K) {
    // Cancellation point between pivots: on a trip, every relaxation
    // applied so far is entailed by the constraints, so the matrix still
    // represents the same zone — merely non-canonically (Closed stays
    // false, and subsequent close() calls return here immediately).
    if (Budget && !Budget->checkpoint()) {
      checkDiagonal();
      return;
    }
    for (int I = 0; I < N; ++I) {
      int64_t IK = at(I, K);
      if (IK == Inf)
        continue;
      for (int J = 0; J < N; ++J) {
        int64_t KJ = at(K, J);
        if (KJ == Inf)
          continue;
        int64_t Via = IK + KJ;
        if (Via < at(I, J))
          at(I, J) = Via;
      }
    }
  }
  checkDiagonal();
  if (!Bottom)
    Closed = true;
}

void Dbm::checkDiagonal() {
  for (int I = 0; I < N; ++I)
    if (at(I, I) < 0) {
      setBottom();
      return;
    }
}

std::string Dbm::str(const std::vector<std::string> &Names) const {
  if (Bottom)
    return "<bottom>";
  auto Name = [&](int I) -> std::string {
    if (I == 0)
      return "0";
    if (I - 1 < static_cast<int>(Names.size()))
      return Names[I - 1];
    return "v" + std::to_string(I);
  };
  std::ostringstream OS;
  bool First = true;
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      if (I == J || at(I, J) == Inf)
        continue;
      if (!First)
        OS << ", ";
      First = false;
      if (J == 0)
        OS << Name(I) << " <= " << at(I, J);
      else if (I == 0)
        OS << Name(J) << " >= " << -at(I, J);
      else
        OS << Name(I) << " - " << Name(J) << " <= " << at(I, J);
    }
  if (First)
    return "<top>";
  return OS.str();
}
