//===- Dbm.cpp - Difference-bound-matrix (zone) abstract domain -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"

#include "support/Budget.h"
#include "support/EngineConfig.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <sstream>

using namespace blazer;

namespace {
/// Process-global owner of every slab the matrix pools carve buffers from.
/// Intentionally leaked (never destroyed): buffers released into one
/// thread's freelist may have been carved from a slab another thread
/// allocated, and thread_local pool destructors run after arbitrary other
/// destructors — global, immortal slab ownership makes every ordering
/// safe. The mutex is taken only on slab allocation and thread retirement,
/// never on the per-matrix acquire/release fast path.
class SlabRegistry {
public:
  void adopt(int64_t *Slab) {
    std::lock_guard<std::mutex> Lock(Mu);
    Slabs.push_back(Slab);
  }

  /// A retiring thread parks its freelist here so the buffers are not
  /// stranded; the next thread to miss on this bucket reclaims them all.
  void spill(size_t Bucket, std::vector<int64_t *> &&Buffers) {
    if (Buffers.empty())
      return;
    std::lock_guard<std::mutex> Lock(Mu);
    if (Bucket >= Spilled.size())
      Spilled.resize(Bucket + 1);
    auto &Dst = Spilled[Bucket];
    Dst.insert(Dst.end(), Buffers.begin(), Buffers.end());
  }

  bool reclaim(size_t Bucket, std::vector<int64_t *> &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Bucket >= Spilled.size() || Spilled[Bucket].empty())
      return false;
    Out.swap(Spilled[Bucket]);
    return true;
  }

private:
  std::mutex Mu;
  std::vector<int64_t *> Slabs;
  std::vector<std::vector<int64_t *>> Spilled;
};

SlabRegistry &slabRegistry() {
  static SlabRegistry *Reg = new SlabRegistry; // Intentionally leaked.
  return *Reg;
}

/// Thread-exit ordering flag for the pooled fixpoint context: the
/// thread_local FixpointContext arena holds Dbm slots, and C++ gives no
/// ordering between its destructor and the MatrixPool's. A trivially
/// destructible thread_local stays readable through every destructor, so
/// late releases (arena slots dying after the pool) detect the dead pool
/// and spill their buffer straight into the immortal SlabRegistry instead.
thread_local bool PoolAlive = true;

/// Thread-local freelist of heap matrix buffers, bucketed by dimension.
/// A fixpoint churns through temporaries of a single dimension (one per
/// join/transfer), so after warm-up every acquire is a pop. Buffers are
/// carved in slabs of SlabMatrices at a time (geometric growth per
/// bucket) from memory owned by the global SlabRegistry, so the steady
/// state performs no per-buffer new/delete at all and a buffer released
/// on a different thread than the one that carved it is always safe.
class MatrixPool {
public:
  int64_t *acquire(int N) {
    // Simulated allocation failure. Throwing here is safe at every caller:
    // acquireStorage runs either in a constructor before any storage is
    // owned or in copy-assign after releaseStorage nulled M, so the unwound
    // Dbm is destructible and nothing leaks back into the freelist.
    maybeInjectFault(FaultSite::DbmPool);
    size_t Bucket = static_cast<size_t>(N);
    if (Bucket >= Free.size())
      Free.resize(Bucket + 1);
    auto &List = Free[Bucket];
    if (!List.empty()) {
      int64_t *P = List.back();
      List.pop_back();
      return P;
    }
    // Miss: first try buffers parked by retired threads, then carve a
    // fresh slab. Both are off the fast path.
    if (slabRegistry().reclaim(Bucket, List) && !List.empty()) {
      int64_t *P = List.back();
      List.pop_back();
      return P;
    }
    if (Bucket >= SlabSize.size())
      SlabSize.resize(Bucket + 1, 0);
    size_t Count = SlabSize[Bucket] ? SlabSize[Bucket] : MinSlabMatrices;
    SlabSize[Bucket] = std::min(Count * 2, MaxSlabMatrices);
    size_t Cells = static_cast<size_t>(N) * N;
    int64_t *Slab = new int64_t[Cells * Count];
    slabRegistry().adopt(Slab);
    for (size_t I = 1; I < Count; ++I)
      List.push_back(Slab + I * Cells);
    return Slab;
  }

  void release(int64_t *P, int N) {
    size_t Bucket = static_cast<size_t>(N);
    if (Bucket >= Free.size())
      Free.resize(Bucket + 1);
    // No retention cap: every buffer is slab-carved, so total footprint is
    // bounded by the peak number of simultaneously live matrices, and a
    // release is always one push.
    Free[Bucket].push_back(P);
  }

  ~MatrixPool() {
    PoolAlive = false;
    for (size_t B = 0; B < Free.size(); ++B)
      slabRegistry().spill(B, std::move(Free[B]));
  }

private:
  static constexpr size_t MinSlabMatrices = 8;
  static constexpr size_t MaxSlabMatrices = 256;
  std::vector<std::vector<int64_t *>> Free;
  /// Next slab's matrix count per bucket (geometric growth).
  std::vector<size_t> SlabSize;
};

thread_local MatrixPool Pool;
} // namespace

void Dbm::acquireStorage() {
  M = N <= SmallDim ? Small : Pool.acquire(N);
}

void Dbm::releaseStorage() {
  if (M && M != Small) {
    if (PoolAlive) {
      Pool.release(M, N);
    } else {
      // Thread teardown: the pool is gone, so park the buffer in the
      // immortal registry for the next thread that misses on this bucket.
      std::vector<int64_t *> One{M};
      slabRegistry().spill(static_cast<size_t>(N), std::move(One));
    }
  }
  M = nullptr;
}

Dbm::Dbm(int NumVars) : N(NumVars + 1) {
  acquireStorage();
  std::fill_n(M, cells(), Inf);
  for (int I = 0; I < N; ++I)
    at(I, I) = 0;
}

Dbm::Dbm(const Dbm &O) : N(O.N), Bottom(O.Bottom), Closed(O.Closed) {
  acquireStorage();
  std::copy_n(O.M, cells(), M);
}

Dbm::Dbm(Dbm &&O) noexcept : N(O.N), Bottom(O.Bottom), Closed(O.Closed) {
  if (O.inlineStorage()) {
    // Inline storage cannot be stolen; a small move is a small copy, and
    // the source stays valid untouched.
    M = Small;
    std::copy_n(O.M, cells(), M);
    return;
  }
  M = O.M;
  // Leave O as a valid dimension-1 top over its inline buffer.
  O.M = O.Small;
  O.N = 1;
  O.Small[0] = 0;
  O.Bottom = false;
  O.Closed = true;
}

Dbm &Dbm::operator=(const Dbm &O) {
  if (this == &O)
    return *this;
  // !M: a previous assignment's acquireStorage threw (injected pool fault)
  // after releaseStorage nulled the buffer. Destruction-safe then, but a
  // pooled arena retains such unwound slots across runs — re-acquire.
  if (N != O.N || !M) {
    releaseStorage();
    N = O.N;
    acquireStorage();
  }
  Bottom = O.Bottom;
  Closed = O.Closed;
  std::copy_n(O.M, cells(), M);
  return *this;
}

Dbm &Dbm::operator=(Dbm &&O) noexcept {
  if (this == &O)
    return *this;
  if (O.inlineStorage()) {
    if (N != O.N || !M) {
      releaseStorage();
      N = O.N;
      M = Small; // O fits inline, so N <= SmallDim here.
    }
    Bottom = O.Bottom;
    Closed = O.Closed;
    std::copy_n(O.M, cells(), M);
    return *this;
  }
  releaseStorage();
  N = O.N;
  M = O.M;
  Bottom = O.Bottom;
  Closed = O.Closed;
  O.M = O.Small;
  O.N = 1;
  O.Small[0] = 0;
  O.Bottom = false;
  O.Closed = true;
  return *this;
}

Dbm::~Dbm() { releaseStorage(); }

Dbm Dbm::top(int NumVars) { return Dbm(NumVars); }

Dbm Dbm::bottom(int NumVars) {
  Dbm D(NumVars);
  D.setBottom();
  return D;
}

void Dbm::resetBottom(int NumVars) {
  int NewN = NumVars + 1;
  if (NewN != N || !M) {
    releaseStorage();
    N = NewN;
    acquireStorage();
  }
  // Same matrix bottom(NumVars) constructs: top-canonical cells with the
  // Bottom flag set (the flag is authoritative; see setBottom).
  std::fill_n(M, cells(), Inf);
  for (int I = 0; I < N; ++I)
    at(I, I) = 0;
  Bottom = true;
  Closed = true;
}

void Dbm::setBottom() {
  Bottom = true;
  // Canonical bottom: keep the matrix irrelevant but consistent.
}

int64_t Dbm::bound(int I, int J) const {
  assert(I >= 0 && I < N && J >= 0 && J < N && "index out of range");
  if (I < 0 || I >= N || J < 0 || J >= N)
    return Inf; // Release builds: no constraint known about unknown vars.
  return at(I, J);
}

Result<int64_t> Dbm::boundChecked(int I, int J) const {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return Result<int64_t>::error(
        "DBM index (" + std::to_string(I) + ", " + std::to_string(J) +
        ") out of range for dimension " + std::to_string(N));
  return at(I, J);
}

void Dbm::addConstraint(int I, int J, int64_t C) {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return; // Recoverable misuse: no variable to constrain.
  if (Bottom)
    return;
  if (I == J) {
    // vi - vi <= C: tautology for C >= 0, contradiction otherwise.
    if (C < 0)
      setBottom();
    return;
  }
  if (C >= at(I, J))
    return; // Not tighter.
  if (!Closed || ClosurePolicyScope::current() == ClosureMode::Full) {
    at(I, J) = C;
    close();
    return;
  }
  // Closed input: the only candidate negative cycle uses the new I -> J
  // edge, and closure makes at(J, I) the exact shortest path J -> I, so
  // the zone is empty iff C + at(J, I) < 0.
  int64_t JI = at(J, I);
  if (JI != Inf && C + JI < 0) {
    setBottom();
    return;
  }
  // Single-constraint re-closure: any path improved by the new edge
  // decomposes as p -> I, the edge, J -> q, with both legs already
  // shortest paths. O(n^2) instead of the full Floyd-Warshall. In-place is
  // safe: row J and column I only relax by C + at(J, I) >= 0, so the
  // values read below never change under our own writes. The inner loop
  // is the branchless select form (wrapped add + Inf-guarded min), which
  // vectorizes over the contiguous rows.
  at(I, J) = C;
  const int64_t *RowJ = M + static_cast<size_t>(J) * N;
  for (int P = 0; P < N; ++P) {
    int64_t PI = at(P, I);
    if (PI == Inf)
      continue;
    int64_t PIC = PI + C;
    int64_t *RowP = M + static_cast<size_t>(P) * N;
    for (int Q = 0; Q < N; ++Q) {
      int64_t JQ = RowJ[Q];
      int64_t Via = wrapAdd(PIC, JQ);
      int64_t Old = RowP[Q];
      bool Take = (JQ != Inf) & (Via < Old);
      RowP[Q] = Take ? Via : Old;
    }
  }
}

void Dbm::addConstraintFullClose(int I, int J, int64_t C) {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return;
  if (Bottom)
    return;
  if (I == J) {
    if (C < 0)
      setBottom();
    return;
  }
  if (C >= at(I, J))
    return;
  at(I, J) = C;
  close();
}

std::optional<int64_t> Dbm::lowerOf(int V) const {
  // 0 - v <= c  means  v >= -c.
  int64_t C = at(0, V);
  if (C == Inf)
    return std::nullopt;
  return -C;
}

std::optional<int64_t> Dbm::upperOfOpt(int V) const {
  int64_t C = at(V, 0);
  if (C == Inf)
    return std::nullopt;
  return C;
}

std::optional<int64_t> Dbm::exactDifference(int I, int J) const {
  if (Bottom)
    return std::nullopt;
  int64_t Hi = at(I, J);
  int64_t Lo = at(J, I);
  if (Hi == Inf || Lo == Inf || Hi != -Lo)
    return std::nullopt;
  return Hi;
}

void Dbm::forget(int V) {
  assert(V > 0 && V < N && "cannot forget the zero variable");
  if (V <= 0 || V >= N)
    return; // Recoverable misuse: nothing to forget.
  if (Bottom)
    return;
  // The matrix is closed, so dropping V's row and column loses no
  // information about the other variables.
  std::fill_n(M + static_cast<size_t>(V) * N, N, Inf);
  for (int I = 0; I < N; ++I)
    at(I, V) = Inf;
  at(V, V) = 0;
}

void Dbm::assignConst(int V, int64_t C) {
  if (Bottom)
    return;
  // forget keeps a closed matrix closed, so each constraint lands on the
  // O(n^2) incremental path; closure is canonical, so the result is the
  // same matrix the old forget-then-full-close sequence produced.
  forget(V);
  addConstraint(V, 0, C);
  addConstraint(0, V, -C);
}

void Dbm::assignVarPlus(int V, int W, int64_t C) {
  if (Bottom)
    return;
  if (V == W) {
    // v := v + c: translate all of v's constraints.
    for (int I = 0; I < N; ++I) {
      if (I == V)
        continue;
      if (at(V, I) != Inf)
        at(V, I) = addSat(at(V, I), C);
      if (at(I, V) != Inf)
        at(I, V) = addSat(at(I, V), -C);
    }
    return; // Still closed: a translation preserves closure.
  }
  forget(V);
  addConstraint(V, W, C);
  addConstraint(W, V, -C);
}

void Dbm::assignBoolUnknown(int V) {
  if (Bottom)
    return;
  forget(V);
  addConstraint(V, 0, 1); // v <= 1
  addConstraint(0, V, 0); // v >= 0
}

void Dbm::joinWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    // Recoverable misuse: joining zones over different variable sets has no
    // exact answer — degrade to top of our own dimension (sound: top
    // over-approximates any join).
    *this = Dbm::top(numVars());
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  const int64_t *R = RHS.M;
  for (size_t I = 0, E = cells(); I < E; ++I)
    M[I] = std::max(M[I], R[I]);
  // Pointwise max of closed matrices is closed; anything else (a widened
  // operand) taints the result.
  Closed = Closed && RHS.Closed;
}

void Dbm::meetWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return; // Recoverable misuse: keep *this (an over-approximation).
  if (Bottom)
    return;
  if (RHS.Bottom) {
    setBottom();
    return;
  }
  const int64_t *R = RHS.M;
  for (size_t I = 0, E = cells(); I < E; ++I)
    M[I] = std::min(M[I], R[I]);
  close();
}

void Dbm::widenWith(const Dbm &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    *this = Dbm::top(numVars()); // Sound and trivially convergent.
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  const int64_t *R = RHS.M;
  for (size_t I = 0, E = cells(); I < E; ++I)
    if (R[I] > M[I])
      M[I] = Inf;
  // Deliberately not re-closed: closing after widening can defeat
  // convergence. The next addConstraint must therefore take the full
  // closure, not the incremental one.
  Closed = false;
}

bool Dbm::leq(const Dbm &RHS) const {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return false; // Incomparable; false is the conservative answer.
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  const int64_t *R = RHS.M;
  for (size_t I = 0, E = cells(); I < E; ++I)
    if (M[I] > R[I])
      return false;
  return true;
}

bool Dbm::equals(const Dbm &RHS) const {
  if (Bottom || RHS.Bottom)
    return Bottom == RHS.Bottom;
  if (N != RHS.N)
    return false;
  return std::equal(M, M + cells(), RHS.M);
}

void Dbm::close() {
  if (Bottom)
    return;
  // Simulated kernel failure at the canonicalization boundary; the matrix
  // has not been touched yet, so unwinding leaves a consistent zone.
  maybeInjectFault(FaultSite::Closure);
  AnalysisBudget *Budget = BudgetScope::current();
  Closed = false;
  for (int K = 0; K < N; ++K) {
    // Cancellation point between pivots: on a trip, every relaxation
    // applied so far is entailed by the constraints, so the matrix still
    // represents the same zone — merely non-canonically (Closed stays
    // false, and subsequent close() calls return here immediately).
    if (Budget && !Budget->checkpoint()) {
      checkDiagonal();
      return;
    }
    const int64_t *RowK = M + static_cast<size_t>(K) * N;
    for (int I = 0; I < N; ++I) {
      int64_t IK = M[static_cast<size_t>(I) * N + K];
      if (IK == Inf)
        continue;
      int64_t *RowI = M + static_cast<size_t>(I) * N;
      for (int J = 0; J < N; ++J) {
        int64_t KJ = RowK[J];
        int64_t Via = wrapAdd(IK, KJ);
        int64_t Old = RowI[J];
        bool Take = (KJ != Inf) & (Via < Old);
        RowI[J] = Take ? Via : Old;
      }
    }
  }
  checkDiagonal();
  if (!Bottom)
    Closed = true;
}

void Dbm::checkDiagonal() {
  for (int I = 0; I < N; ++I)
    if (at(I, I) < 0) {
      setBottom();
      return;
    }
}

std::string Dbm::str(const std::vector<std::string> &Names) const {
  if (Bottom)
    return "<bottom>";
  auto Name = [&](int I) -> std::string {
    if (I == 0)
      return "0";
    if (I - 1 < static_cast<int>(Names.size()))
      return Names[I - 1];
    return "v" + std::to_string(I);
  };
  std::ostringstream OS;
  bool First = true;
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      if (I == J || at(I, J) == Inf)
        continue;
      if (!First)
        OS << ", ";
      First = false;
      if (J == 0)
        OS << Name(I) << " <= " << at(I, J);
      else if (I == 0)
        OS << Name(J) << " >= " << -at(I, J);
      else
        OS << Name(I) << " - " << Name(J) << " <= " << at(I, J);
    }
  if (First)
    return "<top>";
  return OS.str();
}
