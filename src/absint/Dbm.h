//===- Dbm.h - Difference-bound-matrix (zone) abstract domain ---*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relational numeric domain that substitutes for PPL (§5): zones,
/// represented as difference-bound matrices. A zone over variables
/// v1..vn (plus the special zero variable Z at index 0) stores upper bounds
/// on all differences vi - vj; that is enough to express the invariants the
/// paper's benchmarks need (e.g. i >= 0, i - guess.len <= -1) and supports
/// the usual lattice and transfer operations with widening.
///
/// Storage is built for the fixpoint hot path:
///  - the matrix is a flat row-major int64_t array, and the O(n^2)/O(n^3)
///    closure/join/widen inner loops are branchless select-form min/add
///    sweeps over contiguous rows, which the compiler auto-vectorizes;
///  - matrices of up to SmallDim - 1 = 8 client variables (every Table-1
///    benchmark) live inline in the Dbm object — construction and copy
///    never touch the allocator;
///  - larger matrices draw their buffer from a thread-local pool bucketed
///    by dimension, so one fixpoint's constant churn of temporaries reuses
///    a handful of allocations instead of hitting malloc per state.
///
/// The closure policy (incremental re-closure vs always-full
/// Floyd-Warshall) is per-run, not process-wide: addConstraint consults the
/// thread's ClosurePolicyScope (support/EngineConfig.h), which the driver
/// installs from BlazerOptions::Engine and the worker pool propagates.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_DBM_H
#define BLAZER_ABSINT_DBM_H

#include "support/Result.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// A closed zone (or bottom). Index 0 is the constant-zero variable; client
/// variables use indices 1..N. The matrix entry M[i][j] bounds vi - vj.
class Dbm {
public:
  /// The +infinity sentinel for absent constraints.
  static constexpr int64_t Inf = std::numeric_limits<int64_t>::max();

  /// Phase label installed around fixpoints in this domain.
  static constexpr const char *FixpointPhase = "zone-fixpoint";

  /// Top over \p NumVars client variables.
  static Dbm top(int NumVars);
  /// Bottom (unreachable) over \p NumVars client variables.
  static Dbm bottom(int NumVars);

  /// Resets this value in place to bottom(NumVars), reusing the existing
  /// matrix buffer when the dimension is unchanged. The pooled fixpoint
  /// arena resets its retained entry-state slots with this instead of
  /// assigning from a bottom prototype: one write sweep, no buffer churn,
  /// byte-identical result.
  void resetBottom(int NumVars);

  Dbm(const Dbm &O);
  Dbm(Dbm &&O) noexcept;
  Dbm &operator=(const Dbm &O);
  Dbm &operator=(Dbm &&O) noexcept;
  ~Dbm();

  int numVars() const { return N - 1; }
  bool isBottom() const { return Bottom; }

  /// Raw bound on vi - vj (indices include 0 = zero var). Out-of-range
  /// indices yield Inf (no constraint known) rather than undefined
  /// behavior in release builds — and assert in debug builds, so a layout
  /// bug cannot masquerade as "no constraint"; use boundChecked to
  /// distinguish misuse from absence programmatically.
  int64_t bound(int I, int J) const;
  /// Like bound(), but reports out-of-range indices as a Diag.
  Result<int64_t> boundChecked(int I, int J) const;

  /// Constrains vi - vj <= C and re-closes; may become bottom. I == J is
  /// recoverable: vi - vi <= C is a tautology for C >= 0 (no-op) and a
  /// contradiction for C < 0 (bottom). Out-of-range indices are ignored.
  ///
  /// On a closed matrix this runs the single-constraint O(n^2) re-closure
  /// (propagating paths through the tightened (I, J) entry only); the full
  /// O(n^3) Floyd-Warshall runs only when closure is not known to hold
  /// (after widening) or the thread's ClosurePolicyScope forces it (the
  /// A/B lever behind --closure=full). Both paths produce the same
  /// canonical matrix.
  void addConstraint(int I, int J, int64_t C);

  /// Debug hook: addConstraint via the full Floyd-Warshall closure,
  /// bypassing the incremental path. The differential closure test checks
  /// the two implementations entry-for-entry against each other.
  void addConstraintFullClose(int I, int J, int64_t C);

  /// Upper bound of variable \p V (Inf when unbounded).
  int64_t upperOf(int V) const { return bound(V, 0); }
  /// Lower bound of variable \p V (-Inf encoded as Inf on the (0,V) entry;
  /// use hasLowerOf/lowerOf).
  std::optional<int64_t> lowerOf(int V) const;
  std::optional<int64_t> upperOfOpt(int V) const;

  /// \returns c when the zone entails vi - vj == c exactly.
  std::optional<int64_t> exactDifference(int I, int J) const;

  /// Removes all knowledge about variable \p V.
  void forget(int V);

  /// v := c.
  void assignConst(int V, int64_t C);
  /// v := w + c (W may equal V).
  void assignVarPlus(int V, int W, int64_t C);
  /// v := [0,1] (result of an unmodeled boolean computation).
  void assignBoolUnknown(int V);

  /// Lattice operations; operands must have equal dimensions.
  void joinWith(const Dbm &RHS);
  void meetWith(const Dbm &RHS);
  /// Standard DBM widening: drops unstable constraints to infinity.
  void widenWith(const Dbm &RHS);
  /// Partial-order test (this included in RHS).
  bool leq(const Dbm &RHS) const;
  bool equals(const Dbm &RHS) const;

  /// Renders the non-trivial constraints using \p Names (index 1..N-1).
  std::string str(const std::vector<std::string> &Names) const;

  /// Bytes this value holds (object + heap matrix when not inline); the
  /// arc-cache telemetry sums this over its cached states.
  size_t memoryBytes() const {
    return sizeof(Dbm) +
           (inlineStorage() ? 0 : cells() * sizeof(int64_t));
  }

private:
  explicit Dbm(int NumVars);

  /// Floyd-Warshall closure; sets Bottom on a negative cycle. Checkpoints
  /// the thread's AnalysisBudget between pivots: on a tripped budget it
  /// returns early with Closed still false — the matrix then represents the
  /// same zone in non-canonical form (every tightening applied so far is
  /// entailed), which is sound, and callers discard degraded results anyway.
  void close();
  /// Sets Bottom when any diagonal entry went negative (a negative cycle).
  void checkDiagonal();
  void setBottom();

  /// Matrices of up to SmallDim rows (i.e. up to 8 client variables plus
  /// the zero variable) use the inline buffer; beyond that, a pooled heap
  /// buffer.
  static constexpr int SmallDim = 9;

  size_t cells() const { return static_cast<size_t>(N) * N; }
  bool inlineStorage() const { return M == Small; }
  /// Points M at the right buffer for dimension N (inline or pooled).
  void acquireStorage();
  /// Returns a pooled buffer; no-op for inline storage.
  void releaseStorage();

  int N = 1; ///< Matrix dimension (numVars + 1).
  bool Bottom = false;
  /// Whether M is known to be in closed (canonical shortest-path) form.
  /// True for every matrix this class hands out except after widenWith,
  /// which deliberately leaves constraints un-tightened for convergence —
  /// the next addConstraint on such a matrix falls back to the full
  /// closure, exactly as the pre-incremental implementation behaved.
  bool Closed = true;
  int64_t *M = nullptr; ///< Row-major N x N (flat; inline or pooled).
  int64_t Small[static_cast<size_t>(SmallDim) * SmallDim];

  int64_t &at(int I, int J) {
    assert(I >= 0 && I < N && J >= 0 && J < N && "DBM index out of range");
    return M[static_cast<size_t>(I) * N + J];
  }
  int64_t at(int I, int J) const {
    assert(I >= 0 && I < N && J >= 0 && J < N && "DBM index out of range");
    return M[static_cast<size_t>(I) * N + J];
  }

  static int64_t addSat(int64_t A, int64_t B) {
    if (A == Inf || B == Inf)
      return Inf;
    return A + B;
  }

  /// Two's-complement wrapping add: used by the branchless kernels to
  /// compute candidate path lengths without branching on Inf (the select
  /// guard discards the wrapped value whenever an operand was Inf).
  static int64_t wrapAdd(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  }
};

} // namespace blazer

#endif // BLAZER_ABSINT_DBM_H
