//===- FixpointContext.cpp - Amortized per-thread fixpoint state ----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/FixpointContext.h"

using namespace blazer;

void blazer::buildFixpointShape(FixpointShape &S, const ProductGraph &G) {
  S.Fingerprint = G.shapeFingerprint();
  S.N = static_cast<int>(G.size());
  S.Entry = G.entry();
  S.ArcBase.assign(S.N + 1, 0);
  for (int Id = 0; Id < S.N; ++Id)
    S.ArcBase[Id + 1] = S.ArcBase[Id] + G.inArcs(Id).size();
  S.NumArcs = S.ArcBase[S.N];
  S.FlatArcs.clear();
  S.FlatArcs.reserve(S.NumArcs);
  for (int Id = 0; Id < S.N; ++Id)
    for (const ProductGraph::InArc &IA : G.inArcs(Id))
      S.FlatArcs.push_back(IA);
  // The successor encoding pins everything the cached schedules depend on:
  // the WTO's DFS and the RPO both follow per-node successor order, which
  // in-arc lists alone cannot reconstruct.
  S.SuccEnc.clear();
  S.SuccEnc.reserve(S.N + 3 * S.NumArcs);
  for (int Id = 0; Id < S.N; ++Id) {
    const std::vector<ProductGraph::Arc> &Succ = G.successors(Id);
    S.SuccEnc.push_back(static_cast<int>(Succ.size()));
    for (const ProductGraph::Arc &A : Succ) {
      S.SuccEnc.push_back(A.To);
      S.SuccEnc.push_back(A.CfgEdge.From);
      S.SuccEnc.push_back(A.CfgEdge.To);
    }
  }
  S.WtoBuilt = false;
  S.W = Wto();
  S.FlatComponent.clear();
  S.FifoBuilt = false;
  S.RpoIndex.clear();
  S.WidenPoint.clear();
}

bool blazer::fixpointShapeMatches(const FixpointShape &S,
                                  const ProductGraph &G) {
  if (S.N != static_cast<int>(G.size()) || S.Entry != G.entry())
    return false;
  size_t K = 0;
  for (int Id = 0; Id < S.N; ++Id) {
    const std::vector<ProductGraph::Arc> &Succ = G.successors(Id);
    if (K >= S.SuccEnc.size() ||
        S.SuccEnc[K++] != static_cast<int>(Succ.size()))
      return false;
    for (const ProductGraph::Arc &A : Succ) {
      if (K + 3 > S.SuccEnc.size() || S.SuccEnc[K] != A.To ||
          S.SuccEnc[K + 1] != A.CfgEdge.From ||
          S.SuccEnc[K + 2] != A.CfgEdge.To)
        return false;
      K += 3;
    }
  }
  return K == S.SuccEnc.size();
}

FixpointContext &FixpointContext::forThread() {
  thread_local FixpointContext Ctx;
  return Ctx;
}

FixpointShape &FixpointContext::shapeFor(const ProductGraph &G, bool &Hit) {
  uint64_t Key = G.shapeFingerprint();
  auto It = Shapes.find(Key);
  if (It != Shapes.end() && fixpointShapeMatches(*It->second, G)) {
    Hit = true;
    return *It->second;
  }
  Hit = false;
  if (It != Shapes.end()) {
    // Fingerprint collision: the exact compare caught it. Rebuild in
    // place — the colliding shape is rarer than the rebuild is cheap.
    buildFixpointShape(*It->second, G);
    return *It->second;
  }
  while (Shapes.size() >= MaxShapes && !InsertionOrder.empty()) {
    Shapes.erase(InsertionOrder.front());
    InsertionOrder.pop_front();
  }
  auto Shape = std::make_unique<FixpointShape>();
  buildFixpointShape(*Shape, G);
  FixpointShape &Ref = *Shape;
  Shapes.emplace(Key, std::move(Shape));
  InsertionOrder.push_back(Key);
  return Ref;
}

const FixpointShape *FixpointContext::peekShape(const ProductGraph &G) const {
  auto It = Shapes.find(G.shapeFingerprint());
  if (It == Shapes.end() || !fixpointShapeMatches(*It->second, G))
    return nullptr;
  return It->second.get();
}

void FixpointContext::clear() {
  Shapes.clear();
  InsertionOrder.clear();
  ZoneArena = FixpointArena<Dbm>();
  BoxArena = FixpointArena<IntervalDomain>();
}
