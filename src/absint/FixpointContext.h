//===- FixpointContext.h - Amortized per-thread fixpoint state --*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread fixpoint context pool: schedule data keyed by product
/// shape, plus one grow-only state arena per numeric domain, both retained
/// across the trail fixpoints of a refinement run.
///
/// A refinement sweep runs ~76 trail fixpoints over restricted products
/// that share one CFG skeleton, and the cascade runs the interval and zone
/// analyzers back to back on the *same* product. Rebuilding the WTO
/// decomposition, the flattened in-arc index, and a `3|V|+|A|`-slot domain
/// arena for every one of those runs is pure setup tax on graphs this
/// small (~50 arcs). The context pool pays it once per distinct shape:
///
///  - FixpointShape caches everything derivable from the product's arc
///    structure — flat in-arc array with prefix sums, the Bourdoncle WTO
///    (with flat-component flags for batched stabilization), and the FIFO
///    scheduler's widen-point map — keyed by a structural fingerprint and
///    verified exactly (full successor-encoding compare) on every hit, so
///    a hash collision degrades to a rebuild, never to a wrong schedule.
///
///  - FixpointArena retains the domain-value slots and the version-stamp
///    vectors. Slots above the entry segment are written before they are
///    read (the stamp vectors, which ARE reset per run, gate every read),
///    so a run only pays an O(|V|) bottom reset for the entry states plus
///    cheap stamp clears — no per-slot construction, no DBM slab churn.
///
/// Pooled and fresh runs execute the same FixpointRun code over the same
/// structures; only the storage lifetime differs. That is what makes the
/// `--fixpoint-ctx={pooled,fresh}` A/B byte-identical by construction.
///
/// Thread safety: the pool is strictly thread-local (`forThread()`), so
/// concurrent `analyze()` calls on distinct threads never share a context.
/// Re-entrant analysis on one thread is handled by the arena's InUse flag —
/// a nested run falls back to function-local storage.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_FIXPOINTCONTEXT_H
#define BLAZER_ABSINT_FIXPOINTCONTEXT_H

#include "absint/Dbm.h"
#include "absint/IntervalDomain.h"
#include "absint/ProductGraph.h"
#include "absint/Wto.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace blazer {

/// Everything the fixpoint engine derives from a product's arc structure,
/// computed once per distinct shape. The WTO and FIFO schedules are built
/// lazily on the first run that asks for them (a cascade run that stays in
/// FIFO mode never pays for a WTO, and vice versa).
struct FixpointShape {
  uint64_t Fingerprint = 0;
  int N = 0;
  int Entry = -1;
  size_t NumArcs = 0;

  /// Prefix sums of in-arc counts: node Id's in-arcs occupy FlatArcs
  /// indices [ArcBase[Id], ArcBase[Id + 1]).
  std::vector<size_t> ArcBase;
  /// All in-arcs flattened into one array, grouped by target node.
  std::vector<ProductGraph::InArc> FlatArcs;
  /// Exact structural identity: per node, the successor count followed by
  /// (To, Edge.From, Edge.To) per arc. Compared in full on every cache
  /// hit, so fingerprint collisions are detected, not trusted.
  std::vector<int> SuccEnc;

  bool WtoBuilt = false;
  Wto W;
  /// Per WTO item: head of a non-empty component whose body contains no
  /// nested head — eligible for the batched stabilization pass.
  std::vector<char> FlatComponent;

  bool FifoBuilt = false;
  std::vector<int> RpoIndex;
  std::vector<char> WidenPoint;
};

/// Populates \p S from \p G (arc index + successor encoding; schedules stay
/// lazy). Also the builder for fresh-mode runs, so both modes iterate the
/// exact same structures.
void buildFixpointShape(FixpointShape &S, const ProductGraph &G);

/// Exact structural match between a cached shape and a product graph.
bool fixpointShapeMatches(const FixpointShape &S, const ProductGraph &G);

/// Grow-only per-domain storage reused across same-thread fixpoint runs.
/// Slot layout per run: [0,N) entry | [N,2N) post memo | [2N,2N+A) arc
/// values | [2N+A,3N+A) accumulators (arc segments only with the arc cache
/// on). Only the entry segment and the stamp vectors are reset per run;
/// every other slot is gated by a stamp and overwritten before first read.
template <class Domain> struct FixpointArena {
  std::vector<Domain> Slots;
  std::vector<uint64_t> PostVersion;
  std::vector<uint64_t> StateVersion;
  std::vector<int> Visits;
  std::vector<uint64_t> ArcVersion;
  std::vector<uint64_t> ArcFolded;
  std::vector<char> AccValid;
  /// Comparison fast-path memo (see Analyzer.cpp): input-version token of
  /// the last no-change pop (0 = invalid) and its widening flags.
  std::vector<uint64_t> CmpToken;
  std::vector<char> CmpFlags;
  /// High-water bytes already charged to FixpointStats::ArcBytes for the
  /// retained arc segment; a pooled run only charges growth beyond this,
  /// so the pooled counter reports footprint, not footprint x runs.
  uint64_t ChargedBytes = 0;
  /// Guards against re-entrant analysis on one thread clobbering a live
  /// run's slots; the nested run falls back to local storage.
  bool InUse = false;
};

/// RAII claim on an arena for the duration of one fixpoint run.
template <class Domain> class ArenaLease {
public:
  explicit ArenaLease(FixpointArena<Domain> &A) : A(A) { A.InUse = true; }
  ~ArenaLease() { A.InUse = false; }
  ArenaLease(const ArenaLease &) = delete;
  ArenaLease &operator=(const ArenaLease &) = delete;

private:
  FixpointArena<Domain> &A;
};

/// The per-thread pool: a bounded shape cache plus one arena per domain.
class FixpointContext {
public:
  /// The calling thread's context (thread-local singleton).
  static FixpointContext &forThread();

  /// The cached shape for \p G, building and inserting it on a miss.
  /// \p Hit reports whether an exact structural match was already pooled.
  /// The returned reference stays valid for the duration of the run (the
  /// cache evicts FIFO, never the entry it just returned).
  FixpointShape &shapeFor(const ProductGraph &G, bool &Hit);

  /// The pooled shape for \p G if one exists, without inserting. Test
  /// hook for the WTO-reuse oracle.
  const FixpointShape *peekShape(const ProductGraph &G) const;

  template <class Domain> FixpointArena<Domain> &arena();

  size_t shapeCount() const { return Shapes.size(); }

  /// Drops every pooled shape and shrinks the arenas. Test hook.
  void clear();

private:
  /// Bounds the pool on adversarial workloads that stream distinct shapes;
  /// a refinement run's working set is far below this.
  static constexpr size_t MaxShapes = 64;

  // unique_ptr: FixpointShape addresses must survive rehash and eviction
  // of other entries while a run holds a reference.
  std::unordered_map<uint64_t, std::unique_ptr<FixpointShape>> Shapes;
  std::deque<uint64_t> InsertionOrder;
  FixpointArena<Dbm> ZoneArena;
  FixpointArena<IntervalDomain> BoxArena;
};

template <> inline FixpointArena<Dbm> &FixpointContext::arena<Dbm>() {
  return ZoneArena;
}
template <>
inline FixpointArena<IntervalDomain> &
FixpointContext::arena<IntervalDomain>() {
  return BoxArena;
}

} // namespace blazer

#endif // BLAZER_ABSINT_FIXPOINTCONTEXT_H
