//===- IntervalDomain.cpp - Interval (box) abstract domain ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/IntervalDomain.h"

#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace blazer;

IntervalDomain::IntervalDomain(int NumVars) : N(NumVars + 1) {
  UB.assign(2 * static_cast<size_t>(N), Inf);
  hi(0) = 0; // The zero variable is exactly 0.
  negLo(0) = 0;
}

IntervalDomain IntervalDomain::top(int NumVars) {
  return IntervalDomain(NumVars);
}

IntervalDomain IntervalDomain::bottom(int NumVars) {
  IntervalDomain D(NumVars);
  D.setBottom();
  return D;
}

void IntervalDomain::resetBottom(int NumVars) {
  N = NumVars + 1;
  UB.assign(2 * static_cast<size_t>(N), Inf);
  hi(0) = 0;
  negLo(0) = 0;
  Bottom = true;
}

int64_t IntervalDomain::bound(int I, int J) const {
  assert(I >= 0 && I < N && J >= 0 && J < N && "index out of range");
  if (I < 0 || I >= N || J < 0 || J >= N)
    return Inf; // Release builds: no constraint known about unknown vars.
  if (I == J)
    return 0;
  // vi - vj <= hi(vi) + sup(-vj); exact when I or J is the zero variable
  // (whose slots hold 0).
  return addSat(hi(I), negLo(J));
}

void IntervalDomain::checkEmpty(int V) {
  // hi(v) + sup(-v) < 0 means hi(v) < lo(v): the interval is empty.
  if (hi(V) != Inf && negLo(V) != Inf && hi(V) + negLo(V) < 0)
    setBottom();
}

void IntervalDomain::addConstraint(int I, int J, int64_t C) {
  if (I < 0 || I >= N || J < 0 || J >= N)
    return; // Recoverable misuse: no variable to constrain.
  if (Bottom)
    return;
  if (I == J) {
    if (C < 0)
      setBottom();
    return;
  }
  // vi - vj <= C projects to hi(vi) <= C + hi(vj) and
  // sup(-vj) <= C + sup(-vi). When J (resp. I) is the zero variable the
  // other side's slot is 0 and the projection is the exact bound.
  int64_t NewHi = addSat(C, hi(J));
  if (NewHi < hi(I)) {
    hi(I) = NewHi;
    checkEmpty(I);
    if (Bottom)
      return;
  }
  int64_t NewNegLo = addSat(C, negLo(I));
  if (NewNegLo < negLo(J)) {
    negLo(J) = NewNegLo;
    checkEmpty(J);
  }
}

std::optional<int64_t> IntervalDomain::lowerOf(int V) const {
  int64_t C = negLo(V);
  if (C == Inf)
    return std::nullopt;
  return -C;
}

std::optional<int64_t> IntervalDomain::upperOfOpt(int V) const {
  int64_t C = hi(V);
  if (C == Inf)
    return std::nullopt;
  return C;
}

std::optional<int64_t> IntervalDomain::exactDifference(int I, int J) const {
  if (Bottom || I < 0 || I >= N || J < 0 || J >= N)
    return std::nullopt;
  if (I == J)
    return 0;
  // Exact only via exact values: v is the singleton hi(v) when
  // hi(v) + sup(-v) == 0.
  if (hi(I) == Inf || negLo(I) == Inf || hi(I) + negLo(I) != 0)
    return std::nullopt;
  if (hi(J) == Inf || negLo(J) == Inf || hi(J) + negLo(J) != 0)
    return std::nullopt;
  return hi(I) - hi(J);
}

void IntervalDomain::forget(int V) {
  assert(V > 0 && V < N && "cannot forget the zero variable");
  if (V <= 0 || V >= N)
    return;
  if (Bottom)
    return;
  hi(V) = Inf;
  negLo(V) = Inf;
}

void IntervalDomain::assignConst(int V, int64_t C) {
  if (Bottom)
    return;
  if (V <= 0 || V >= N)
    return;
  hi(V) = C;
  negLo(V) = -C;
}

void IntervalDomain::assignVarPlus(int V, int W, int64_t C) {
  if (Bottom)
    return;
  if (V <= 0 || V >= N || W < 0 || W >= N)
    return;
  if (V == W) {
    // v := v + c: translate the interval.
    if (hi(V) != Inf)
      hi(V) = addSat(hi(V), C);
    if (negLo(V) != Inf)
      negLo(V) = addSat(negLo(V), -C);
    return;
  }
  hi(V) = addSat(hi(W), C);
  negLo(V) = addSat(negLo(W), -C);
}

void IntervalDomain::assignBoolUnknown(int V) {
  if (Bottom)
    return;
  if (V <= 0 || V >= N)
    return;
  hi(V) = 1;    // v <= 1
  negLo(V) = 0; // v >= 0
}

void IntervalDomain::joinWith(const IntervalDomain &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    *this = IntervalDomain::top(numVars()); // Sound over-approximation.
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  for (size_t I = 0; I < UB.size(); ++I)
    UB[I] = std::max(UB[I], RHS.UB[I]);
}

void IntervalDomain::meetWith(const IntervalDomain &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return; // Recoverable misuse: keep *this (an over-approximation).
  if (Bottom)
    return;
  if (RHS.Bottom) {
    setBottom();
    return;
  }
  for (size_t I = 0; I < UB.size(); ++I)
    UB[I] = std::min(UB[I], RHS.UB[I]);
  for (int V = 1; V < N && !Bottom; ++V)
    checkEmpty(V);
}

void IntervalDomain::widenWith(const IntervalDomain &RHS) {
  assert(N == RHS.N && "dimension mismatch");
  if (AnalysisBudget *B = BudgetScope::current())
    B->countJoins();
  if (N != RHS.N) {
    *this = IntervalDomain::top(numVars());
    return;
  }
  if (RHS.Bottom)
    return;
  if (Bottom) {
    *this = RHS;
    return;
  }
  // Standard interval widening: unstable bounds jump to infinity. Each slot
  // moves at most once, so ascending chains stabilize immediately.
  for (size_t I = 0; I < UB.size(); ++I)
    if (RHS.UB[I] > UB[I])
      UB[I] = Inf;
}

bool IntervalDomain::leq(const IntervalDomain &RHS) const {
  assert(N == RHS.N && "dimension mismatch");
  if (N != RHS.N)
    return false; // Incomparable; false is the conservative answer.
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  for (size_t I = 0; I < UB.size(); ++I)
    if (UB[I] > RHS.UB[I])
      return false;
  return true;
}

bool IntervalDomain::equals(const IntervalDomain &RHS) const {
  if (Bottom || RHS.Bottom)
    return Bottom == RHS.Bottom;
  return UB == RHS.UB;
}

std::string IntervalDomain::str(const std::vector<std::string> &Names) const {
  if (Bottom)
    return "<bottom>";
  auto Name = [&](int I) -> std::string {
    if (I - 1 < static_cast<int>(Names.size()))
      return Names[I - 1];
    return "v" + std::to_string(I);
  };
  std::ostringstream OS;
  bool First = true;
  for (int V = 1; V < N; ++V) {
    if (hi(V) == Inf && negLo(V) == Inf)
      continue;
    if (!First)
      OS << ", ";
    First = false;
    if (hi(V) != Inf && negLo(V) != Inf && hi(V) + negLo(V) == 0) {
      OS << Name(V) << " == " << hi(V);
      continue;
    }
    if (negLo(V) != Inf) {
      OS << Name(V) << " >= " << -negLo(V);
      if (hi(V) != Inf)
        OS << ", ";
    }
    if (hi(V) != Inf)
      OS << Name(V) << " <= " << hi(V);
  }
  if (First)
    return "<top>";
  return OS.str();
}
