//===- IntervalDomain.h - Interval (box) abstract domain --------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-relational half of the interval->zone cascade: per-variable
/// [lo, hi] boxes with the same variable numbering, transfer semantics,
/// and NumericDomain surface as the zone domain (Dbm), at O(n) per
/// operation instead of O(n^2)/O(n^3).
///
/// Storage mirrors the DBM's first row and column: for each variable v the
/// domain keeps an upper bound on v (Dbm entry M[v][0]) and an upper bound
/// on -v (M[0][v]), with Inf for "unconstrained". A difference constraint
/// vi - vj <= c — which a box cannot represent relationally — is projected
/// through the other variable's interval (hi(vi) <= c + hi(vj),
/// lo(vj) >= lo(vi) - c), the best sound box approximation. Consequently
/// every interval invariant over-approximates the per-variable projection
/// of the corresponding zone invariant, which is exactly what the cascade
/// relies on: a trail the intervals prove infeasible needs no zone run.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_INTERVALDOMAIN_H
#define BLAZER_ABSINT_INTERVALDOMAIN_H

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// A box over variables v1..vn (index 0 is the constant-zero variable,
/// as in Dbm), or bottom.
class IntervalDomain {
public:
  /// The +infinity sentinel for absent constraints (same value as
  /// Dbm::Inf, so mixed-domain comparisons need no translation).
  static constexpr int64_t Inf = std::numeric_limits<int64_t>::max();

  /// Phase label installed around fixpoints in this domain.
  static constexpr const char *FixpointPhase = "interval-fixpoint";

  static IntervalDomain top(int NumVars);
  static IntervalDomain bottom(int NumVars);

  /// Resets this value in place to bottom(NumVars), reusing the bound
  /// store's capacity. Same contract as Dbm::resetBottom.
  void resetBottom(int NumVars);

  int numVars() const { return N - 1; }
  bool isBottom() const { return Bottom; }

  /// Upper bound on vi - vj, derived from the two intervals (exact when
  /// one side is the zero variable). Out-of-range indices yield Inf in
  /// release builds, as in Dbm.
  int64_t bound(int I, int J) const;

  /// Conjoins vi - vj <= C, projecting two-variable constraints through
  /// the other side's interval; may become bottom. Same recoverable-misuse
  /// contract as Dbm::addConstraint.
  void addConstraint(int I, int J, int64_t C);

  int64_t upperOf(int V) const { return bound(V, 0); }
  std::optional<int64_t> lowerOf(int V) const;
  std::optional<int64_t> upperOfOpt(int V) const;

  /// \returns c when both intervals are singletons with vi - vj == c
  /// (boxes entail an exact difference only through exact values).
  std::optional<int64_t> exactDifference(int I, int J) const;

  void forget(int V);
  void assignConst(int V, int64_t C);
  void assignVarPlus(int V, int W, int64_t C);
  void assignBoolUnknown(int V);

  void joinWith(const IntervalDomain &RHS);
  void meetWith(const IntervalDomain &RHS);
  void widenWith(const IntervalDomain &RHS);
  bool leq(const IntervalDomain &RHS) const;
  bool equals(const IntervalDomain &RHS) const;

  std::string str(const std::vector<std::string> &Names) const;

  /// Bytes this value holds (object + bound store); the arc-cache
  /// telemetry sums this over its cached states.
  size_t memoryBytes() const {
    return sizeof(IntervalDomain) + UB.capacity() * sizeof(int64_t);
  }

private:
  explicit IntervalDomain(int NumVars);

  /// Bottom when some interval became empty (hi < lo).
  void checkEmpty(int V);
  void setBottom() { Bottom = true; }

  /// UB[2v] bounds v, UB[2v + 1] bounds -v; both Inf when unconstrained.
  int64_t &hi(int V) { return UB[2 * static_cast<size_t>(V)]; }
  int64_t hi(int V) const { return UB[2 * static_cast<size_t>(V)]; }
  int64_t &negLo(int V) { return UB[2 * static_cast<size_t>(V) + 1]; }
  int64_t negLo(int V) const { return UB[2 * static_cast<size_t>(V) + 1]; }

  static int64_t addSat(int64_t A, int64_t B) {
    if (A == Inf || B == Inf)
      return Inf;
    return A + B;
  }

  int N = 1; ///< numVars + 1, mirroring the DBM dimension.
  bool Bottom = false;
  std::vector<int64_t> UB; ///< Flat 2N upper-bound store.
};

} // namespace blazer

#endif // BLAZER_ABSINT_INTERVALDOMAIN_H
