//===- NumericDomain.h - The abstract-domain interface ----------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface a numeric abstract domain must implement to drive the
/// trail-restricted abstract interpreter (AnalyzerT), the VarEnv transfer
/// functions, and the region-folding bound engine. Extracted from the
/// previously Dbm-hardwired Analyzer so the interval->zone cascade can run
/// the same fixpoint and pruning machinery over either domain.
///
/// The contract, shared by Dbm (zones) and IntervalDomain (boxes):
///
///  - Variables are indexed 1..numVars(); index 0 is the constant-zero
///    pseudo-variable. bound(I, J) is an upper bound on vi - vj with
///    Inf meaning "no constraint"; addConstraint(I, J, C) conjoins
///    vi - vj <= C. A domain that cannot represent a relation exactly must
///    over-approximate it (IntervalDomain projects difference constraints
///    through the other variable's interval) — never drop the sound
///    direction.
///  - Lattice: joinWith/meetWith/widenWith/leq/equals/isBottom over
///    operands of equal dimension, with top(n)/bottom(n) factories and an
///    in-place resetBottom(n) (the pooled fixpoint arena's slot reset —
///    must be byte-identical to assigning bottom(n)).
///    widenWith must guarantee stabilization of ascending chains.
///  - Transfers: forget/assignConst/assignVarPlus/assignBoolUnknown.
///  - Projections for the bound engine: lowerOf/upperOfOpt/
///    exactDifference, and a str(Names) renderer for diagnostics.
///  - Cost accounting: joinWith/widenWith count one join against the
///    thread's AnalysisBudget, keeping budget trips comparable across
///    domains.
///
/// Thread-safety: domains are plain value types; const operations must be
/// safe to call concurrently on distinct objects (the parallel trail-tree
/// analysis runs one fixpoint per worker).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_NUMERICDOMAIN_H
#define BLAZER_ABSINT_NUMERICDOMAIN_H

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// Compile-time check of the domain contract above. AnalyzerT and the
/// templated VarEnv transfers constrain on this, so a domain missing an
/// operation fails at the template boundary with a named requirement
/// instead of deep inside an instantiation.
template <typename D>
concept NumericDomain = requires(D S, const D C, int V, int64_t K,
                                 const std::vector<std::string> &Names) {
  { D::Inf } -> std::convertible_to<int64_t>;
  { D::top(V) } -> std::same_as<D>;
  { D::bottom(V) } -> std::same_as<D>;
  S.resetBottom(V);
  { C.numVars() } -> std::convertible_to<int>;
  { C.isBottom() } -> std::convertible_to<bool>;
  { C.bound(V, V) } -> std::convertible_to<int64_t>;
  { C.lowerOf(V) } -> std::same_as<std::optional<int64_t>>;
  { C.upperOfOpt(V) } -> std::same_as<std::optional<int64_t>>;
  { C.exactDifference(V, V) } -> std::same_as<std::optional<int64_t>>;
  S.addConstraint(V, V, K);
  S.forget(V);
  S.assignConst(V, K);
  S.assignVarPlus(V, V, K);
  S.assignBoolUnknown(V);
  S.joinWith(C);
  S.meetWith(C);
  S.widenWith(C);
  { C.leq(C) } -> std::convertible_to<bool>;
  { C.equals(C) } -> std::convertible_to<bool>;
  { C.str(Names) } -> std::convertible_to<std::string>;
  { C.memoryBytes() } -> std::convertible_to<size_t>;
};

} // namespace blazer

#endif // BLAZER_ABSINT_NUMERICDOMAIN_H
