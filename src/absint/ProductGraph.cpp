//===- ProductGraph.cpp - CFG x trail-DFA product graph -------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/ProductGraph.h"

#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace blazer;

int ProductGraph::indexOf(int Block, int State) const {
  auto It = Index.find({Block, State});
  return It == Index.end() ? -1 : It->second;
}

std::vector<std::vector<int>> ProductGraph::successorIds() const {
  std::vector<std::vector<int>> Adj(Nodes.size());
  for (size_t Id = 0; Id < Nodes.size(); ++Id) {
    Adj[Id].reserve(Succs[Id].size());
    for (const Arc &A : Succs[Id])
      Adj[Id].push_back(A.To);
  }
  return Adj;
}

ProductGraph ProductGraph::build(const CfgFunction &F, const Dfa &D,
                                 const EdgeAlphabet &A) {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase("cfg-trail-product");
  std::vector<bool> Live = D.liveStates();

  // Phase 1: forward exploration from (entry, start) over DFA-live states.
  struct Raw {
    Node N;
    std::vector<std::pair<int, Edge>> Succ; ///< (raw succ id, edge).
  };
  std::unordered_map<std::pair<int, int>, int, BlockStateHash> RawIndex;
  std::vector<Raw> Raws;
  std::deque<int> Work;
  // Most products stay near |blocks| x a small number of live DFA states;
  // reserving that ballpark avoids rehash/regrow churn in the hot loop.
  size_t Guess = F.blockCount() * 4 + 16;
  RawIndex.reserve(Guess);
  Raws.reserve(Guess);

  auto Intern = [&](int Block, int State) -> int {
    auto [It, New] = RawIndex.try_emplace({Block, State},
                                          static_cast<int>(Raws.size()));
    if (New) {
      Raws.push_back(Raw{Node{Block, State}, {}});
      Work.push_back(It->second);
      if (Budget)
        Budget->countStates();
    }
    return It->second;
  };

  ProductGraph G;
  if (!Live[D.start()])
    return G; // Trail language empty.
  Intern(F.Entry, D.start());
  while (!Work.empty()) {
    // Fail soft: an empty product is the conservative "no information"
    // answer; the tripped budget tells callers not to trust it.
    if (Budget && !Budget->checkpoint())
      return ProductGraph();
    int Id = Work.front();
    Work.pop_front();
    Node N = Raws[Id].N;
    for (int SuccBlock : F.block(N.Block).successors()) {
      Edge E{N.Block, SuccBlock};
      int Sym = A.symbolOrNone(E);
      if (Sym < 0)
        continue;
      int NextState = D.next(N.State, Sym);
      if (!Live[NextState])
        continue;
      int SuccId = Intern(SuccBlock, NextState);
      Raws[Id].Succ.push_back({SuccId, E});
    }
  }

  // Phase 2: keep only nodes that can reach an accepting exit node.
  std::vector<std::vector<int>> RawPreds(Raws.size());
  for (size_t Id = 0; Id < Raws.size(); ++Id)
    for (const auto &[S, E] : Raws[Id].Succ) {
      (void)E;
      RawPreds[S].push_back(static_cast<int>(Id));
    }
  std::vector<bool> Keep(Raws.size(), false);
  std::deque<int> Back;
  for (size_t Id = 0; Id < Raws.size(); ++Id)
    if (Raws[Id].N.Block == F.Exit && D.accepting(Raws[Id].N.State)) {
      Keep[Id] = true;
      Back.push_back(static_cast<int>(Id));
    }
  while (!Back.empty()) {
    int Id = Back.front();
    Back.pop_front();
    for (int P : RawPreds[Id])
      if (!Keep[P]) {
        Keep[P] = true;
        Back.push_back(P);
      }
  }
  auto RawEntryIt = RawIndex.find({F.Entry, D.start()});
  int RawEntry = RawEntryIt == RawIndex.end() ? -1 : RawEntryIt->second;
  if (RawEntry < 0 || !Keep[RawEntry])
    return G; // No complete trace survives the trail restriction.

  // Renumber survivors.
  size_t Survivors = 0;
  for (size_t Id = 0; Id < Raws.size(); ++Id)
    Survivors += Keep[Id];
  G.Nodes.reserve(Survivors);
  G.Index.reserve(Survivors);
  std::vector<int> Remap(Raws.size(), -1);
  for (size_t Id = 0; Id < Raws.size(); ++Id) {
    if (!Keep[Id])
      continue;
    Remap[Id] = static_cast<int>(G.Nodes.size());
    G.Nodes.push_back(Raws[Id].N);
    G.Index[{Raws[Id].N.Block, Raws[Id].N.State}] = Remap[Id];
  }
  G.Succs.resize(G.Nodes.size());
  G.InArcs.resize(G.Nodes.size());
  for (size_t Id = 0; Id < Raws.size(); ++Id) {
    if (!Keep[Id])
      continue;
    G.Succs[Remap[Id]].reserve(Raws[Id].Succ.size());
    for (const auto &[S, E] : Raws[Id].Succ) {
      if (!Keep[S])
        continue;
      G.Succs[Remap[Id]].push_back(Arc{Remap[S], E});
      G.InArcs[Remap[S]].push_back(InArc{Remap[Id], E});
    }
  }
  G.Entry = Remap[RawEntry];
  for (size_t Id = 0; Id < Raws.size(); ++Id)
    if (Keep[Id] && Raws[Id].N.Block == F.Exit &&
        D.accepting(Raws[Id].N.State))
      G.Accepts.push_back(Remap[Id]);

  // Reverse postorder.
  std::vector<bool> Seen(G.Nodes.size(), false);
  std::vector<std::pair<int, size_t>> Stack{{G.Entry, 0}};
  Seen[G.Entry] = true;
  std::vector<int> Post;
  Post.reserve(G.Nodes.size());
  while (!Stack.empty()) {
    auto &[N, I] = Stack.back();
    if (I < G.Succs[N].size()) {
      int S = G.Succs[N][I++].To;
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Post.push_back(N);
    Stack.pop_back();
  }
  G.Rpo.assign(Post.rbegin(), Post.rend());

  // Structural fingerprint (splitmix64 mixing): node count, entry, and
  // every successor arc with its CFG edge, in order. This is exactly the
  // data the fixpoint shape cache derives its schedules from.
  auto Mix = [](uint64_t H, uint64_t V) {
    H += 0x9e3779b97f4a7c15ULL + V;
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ULL;
    H ^= H >> 27;
    H *= 0x94d049bb133111ebULL;
    H ^= H >> 31;
    return H;
  };
  uint64_t H = Mix(0x5eed5eed5eed5eedULL, G.Nodes.size());
  H = Mix(H, static_cast<uint64_t>(static_cast<int64_t>(G.Entry)));
  for (size_t Id = 0; Id < G.Succs.size(); ++Id) {
    H = Mix(H, G.Succs[Id].size());
    for (const Arc &A : G.Succs[Id]) {
      H = Mix(H, static_cast<uint32_t>(A.To));
      H = Mix(H, (static_cast<uint64_t>(static_cast<uint32_t>(
                      A.CfgEdge.From))
                  << 32) |
                     static_cast<uint32_t>(A.CfgEdge.To));
    }
  }
  G.ShapeFp = H;
  return G;
}
