//===- ProductGraph.h - CFG x trail-DFA product graph -----------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of the CFG with a trail's DFA — the "oracle" of §5 that
/// restricts the abstract interpreter (and the bound analysis) to the paths
/// a trail describes. Nodes are (block, dfa-state) pairs reachable from the
/// initial pair that can still complete to an accepted trace.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_PRODUCTGRAPH_H
#define BLAZER_ABSINT_PRODUCTGRAPH_H

#include "automata/Automaton.h"
#include "ir/Cfg.h"

#include <map>
#include <vector>

namespace blazer {

/// The trimmed product graph.
class ProductGraph {
public:
  struct Node {
    int Block = -1;
    int State = -1; ///< DFA state.
  };
  struct Arc {
    int To = -1;  ///< Target node id.
    Edge CfgEdge; ///< The underlying CFG edge.
  };

  /// Builds the product of \p F and trail automaton \p D over alphabet
  /// \p A. The result is empty() when the trail admits no complete trace
  /// path through the CFG.
  static ProductGraph build(const CfgFunction &F, const Dfa &D,
                            const EdgeAlphabet &A);

  bool empty() const { return Nodes.empty(); }
  size_t size() const { return Nodes.size(); }
  const Node &node(int Id) const { return Nodes[Id]; }
  const std::vector<Arc> &successors(int Id) const { return Succs[Id]; }
  const std::vector<int> &predecessors(int Id) const { return Preds[Id]; }
  int entry() const { return Entry; }
  const std::vector<int> &accepts() const { return Accepts; }

  /// Node id for (block, state), or -1.
  int indexOf(int Block, int State) const;

  /// Ids in a fixed reverse-postorder from the entry.
  const std::vector<int> &rpo() const { return Rpo; }

private:
  std::vector<Node> Nodes;
  std::vector<std::vector<Arc>> Succs;
  std::vector<std::vector<int>> Preds;
  std::map<std::pair<int, int>, int> Index;
  std::vector<int> Rpo;
  int Entry = -1;
  std::vector<int> Accepts;
};

} // namespace blazer

#endif // BLAZER_ABSINT_PRODUCTGRAPH_H
