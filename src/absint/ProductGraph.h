//===- ProductGraph.h - CFG x trail-DFA product graph -----------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product of the CFG with a trail's DFA — the "oracle" of §5 that
/// restricts the abstract interpreter (and the bound analysis) to the paths
/// a trail describes. Nodes are (block, dfa-state) pairs reachable from the
/// initial pair that can still complete to an accepted trace.
///
/// The graph stores both outgoing and incoming arc lists: the fixpoint
/// engine joins a node's entry state over exactly its in-arcs (predecessor
/// id + CFG edge), without rescanning every predecessor's successor list.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_PRODUCTGRAPH_H
#define BLAZER_ABSINT_PRODUCTGRAPH_H

#include "automata/Automaton.h"
#include "ir/Cfg.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace blazer {

/// Hash for (block, state) pairs: both halves are small non-negative ints,
/// packed into one 64-bit word and mixed (splitmix64 finalizer), so the
/// flat node index behaves well without tree-map allocation churn.
struct BlockStateHash {
  size_t operator()(const std::pair<int, int> &P) const {
    uint64_t X = (static_cast<uint64_t>(static_cast<uint32_t>(P.first))
                  << 32) |
                 static_cast<uint32_t>(P.second);
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ULL;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebULL;
    X ^= X >> 31;
    return static_cast<size_t>(X);
  }
};

/// The trimmed product graph.
class ProductGraph {
public:
  struct Node {
    int Block = -1;
    int State = -1; ///< DFA state.
  };
  struct Arc {
    int To = -1;  ///< Target node id.
    Edge CfgEdge; ///< The underlying CFG edge.
  };
  /// An incoming arc: the source node plus the CFG edge it rides.
  struct InArc {
    int From = -1; ///< Source node id.
    Edge CfgEdge;  ///< The underlying CFG edge.
  };

  /// Builds the product of \p F and trail automaton \p D over alphabet
  /// \p A. The result is empty() when the trail admits no complete trace
  /// path through the CFG.
  static ProductGraph build(const CfgFunction &F, const Dfa &D,
                            const EdgeAlphabet &A);

  bool empty() const { return Nodes.empty(); }
  size_t size() const { return Nodes.size(); }
  const Node &node(int Id) const { return Nodes[Id]; }
  const std::vector<Arc> &successors(int Id) const { return Succs[Id]; }
  /// Incoming arcs of \p Id, in the same deterministic order the arcs were
  /// created (ascending source id, then the source's successor order).
  const std::vector<InArc> &inArcs(int Id) const { return InArcs[Id]; }
  int entry() const { return Entry; }
  const std::vector<int> &accepts() const { return Accepts; }

  /// Node id for (block, state), or -1.
  int indexOf(int Block, int State) const;

  /// Ids in a fixed reverse-postorder from the entry.
  const std::vector<int> &rpo() const { return Rpo; }

  /// Plain successor-id adjacency (arc targets, in arc order) — the shape
  /// the scheduling utilities (Wto, tarjanSccs) consume.
  std::vector<std::vector<int>> successorIds() const;

  /// Structural fingerprint over (size, entry, per-node successor arcs
  /// with their CFG edges) — the index key of the per-thread fixpoint
  /// shape cache. Equal-shaped products (same arc structure in the same
  /// order) hash equal; the cache verifies hits exactly, so collisions
  /// cost a rebuild, never correctness. Computed once at build time.
  uint64_t shapeFingerprint() const { return ShapeFp; }

private:
  std::vector<Node> Nodes;
  std::vector<std::vector<Arc>> Succs;
  std::vector<std::vector<InArc>> InArcs;
  std::unordered_map<std::pair<int, int>, int, BlockStateHash> Index;
  std::vector<int> Rpo;
  int Entry = -1;
  std::vector<int> Accepts;
  uint64_t ShapeFp = 0;
};

} // namespace blazer

#endif // BLAZER_ABSINT_PRODUCTGRAPH_H
