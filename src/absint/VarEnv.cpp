//===- VarEnv.cpp - Variable environment for the zone domain --------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/VarEnv.h"
#include "absint/IntervalDomain.h" // Explicit instantiations below.
#include "dataflow/Taint.h"        // lengthSymbol

#include <cassert>

using namespace blazer;

VarEnv::VarEnv(const CfgFunction &Fn, std::map<std::string, int64_t> InputPins)
    : F(Fn), Pins(std::move(InputPins)) {
  auto Register = [&](const std::string &Name, bool IsInput) {
    if (IndexMap.count(Name))
      return;
    Names.push_back(Name);
    InputSymbol.push_back(IsInput);
    IndexMap[Name] = static_cast<int>(Names.size()); // 1-based.
  };

  for (const auto &[Name, Type] : F.VarTypes) {
    if (Type == TypeKind::IntArray) {
      Register(lengthSymbol(Name), /*IsInput=*/true);
      continue;
    }
    Register(Name, /*IsInput=*/false);
  }
  for (const Param &P : F.Params)
    if (P.Type != TypeKind::IntArray)
      Register(P.Name + "#in", /*IsInput=*/true);
}

int VarEnv::indexOf(const std::string &Name) const {
  auto It = IndexMap.find(Name);
  return It == IndexMap.end() ? -1 : It->second;
}

std::string VarEnv::displaySymbol(int I) const {
  const std::string &Name = nameOf(I);
  size_t Pos = Name.rfind("#in");
  if (Pos != std::string::npos && Pos + 3 == Name.size())
    return Name.substr(0, Pos);
  return Name;
}

Dbm VarEnv::initialState() const { return initialState<Dbm>(); }

template <class Domain> Domain VarEnv::initialState() const {
  Domain D = Domain::top(numVars());
  for (const Param &P : F.Params) {
    if (P.Type == TypeKind::IntArray) {
      int Len = indexOf(lengthSymbol(P.Name));
      assert(Len > 0 && "length var must exist");
      D.addConstraint(0, Len, 0); // len >= 0
      continue;
    }
    int V = indexOf(P.Name);
    int In = indexOf(P.Name + "#in");
    assert(V > 0 && In > 0 && "param vars must exist");
    D.addConstraint(V, In, 0);
    D.addConstraint(In, V, 0); // v == v#in at entry.
    if (P.Type == TypeKind::Bool) {
      D.addConstraint(In, 0, 1);  // in <= 1
      D.addConstraint(0, In, 0);  // in >= 0
    }
  }
  // Pinned input symbols (publicly known quantities like key sizes) take
  // their fixed value; trails contradicting a pin become infeasible.
  for (int I = 1; I <= numVars(); ++I) {
    if (!isInputSymbol(I))
      continue;
    auto It = Pins.find(displaySymbol(I));
    if (It == Pins.end())
      continue;
    D.addConstraint(I, 0, It->second);
    D.addConstraint(0, I, -It->second);
  }
  // Array locals (rare) have length zero.
  for (const auto &[Name, Type] : F.VarTypes) {
    if (Type != TypeKind::IntArray)
      continue;
    bool IsParam = false;
    for (const Param &P : F.Params)
      if (P.Name == Name)
        IsParam = true;
    if (!IsParam) {
      int Len = indexOf(lengthSymbol(Name));
      D.addConstraint(Len, 0, 0);
      D.addConstraint(0, Len, 0);
    }
  }
  return D;
}

std::optional<LinForm> VarEnv::parseLinear(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    LinForm L;
    L.Const = cast<IntLitExpr>(E)->Value;
    return L;
  }
  case Expr::Kind::BoolLit: {
    LinForm L;
    L.Const = cast<BoolLitExpr>(E)->Value ? 1 : 0;
    return L;
  }
  case Expr::Kind::VarRef: {
    int V = indexOf(cast<VarRefExpr>(E)->Name);
    if (V < 0)
      return std::nullopt;
    LinForm L;
    L.add(V, 1);
    return L;
  }
  case Expr::Kind::ArrayLength: {
    int V = indexOf(lengthSymbol(cast<ArrayLengthExpr>(E)->Array));
    if (V < 0)
      return std::nullopt;
    LinForm L;
    L.add(V, 1);
    return L;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->Op != UnaryOp::Neg)
      return std::nullopt;
    auto Sub = parseLinear(U->Sub.get());
    if (!Sub)
      return std::nullopt;
    LinForm L;
    L.Const = -Sub->Const;
    for (const auto &[V, C] : Sub->Coeffs)
      L.add(V, -C);
    return L;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->Op == BinaryOp::Add || B->Op == BinaryOp::Sub) {
      auto L = parseLinear(B->Lhs.get());
      auto R = parseLinear(B->Rhs.get());
      if (!L || !R)
        return std::nullopt;
      int64_t Sign = B->Op == BinaryOp::Add ? 1 : -1;
      L->Const += Sign * R->Const;
      for (const auto &[V, C] : R->Coeffs)
        L->add(V, Sign * C);
      return L;
    }
    if (B->Op == BinaryOp::Mul) {
      auto L = parseLinear(B->Lhs.get());
      auto R = parseLinear(B->Rhs.get());
      if (!L || !R)
        return std::nullopt;
      // One side must be constant.
      if (!L->Coeffs.empty() && !R->Coeffs.empty())
        return std::nullopt;
      const LinForm &VarSide = L->Coeffs.empty() ? *R : *L;
      int64_t K = L->Coeffs.empty() ? L->Const : R->Const;
      LinForm Out;
      Out.Const = VarSide.Const * K;
      for (const auto &[V, C] : VarSide.Coeffs)
        Out.add(V, C * K);
      return Out;
    }
    return std::nullopt;
  }
  case Expr::Kind::ArrayIndex:
  case Expr::Kind::Call:
    return std::nullopt;
  }
  return std::nullopt;
}

template <class Domain>
std::optional<int64_t> VarEnv::evalUpper(const Domain &D,
                                         const LinForm &F_) const {
  // Two-variable difference form x - y + c: the zone stores its bound
  // directly, which is often much tighter than combining intervals.
  if (F_.Coeffs.size() == 2) {
    auto It = F_.Coeffs.begin();
    auto [V1, C1] = *It++;
    auto [V2, C2] = *It;
    int X = -1, Y = -1;
    if (C1 == 1 && C2 == -1) {
      X = V1;
      Y = V2;
    } else if (C1 == -1 && C2 == 1) {
      X = V2;
      Y = V1;
    }
    if (X >= 0 && D.bound(X, Y) != Domain::Inf)
      return D.bound(X, Y) + F_.Const;
  }
  int64_t Sum = F_.Const;
  for (const auto &[V, C] : F_.Coeffs) {
    if (C > 0) {
      auto Hi = D.upperOfOpt(V);
      if (!Hi)
        return std::nullopt;
      Sum += C * *Hi;
    } else {
      auto Lo = D.lowerOf(V);
      if (!Lo)
        return std::nullopt;
      Sum += C * *Lo;
    }
  }
  return Sum;
}

template <class Domain>
std::optional<int64_t> VarEnv::evalLower(const Domain &D,
                                         const LinForm &F_) const {
  // Two-variable difference form: lower(x - y) = -upper(y - x).
  if (F_.Coeffs.size() == 2) {
    auto It = F_.Coeffs.begin();
    auto [V1, C1] = *It++;
    auto [V2, C2] = *It;
    int X = -1, Y = -1;
    if (C1 == 1 && C2 == -1) {
      X = V1;
      Y = V2;
    } else if (C1 == -1 && C2 == 1) {
      X = V2;
      Y = V1;
    }
    if (X >= 0 && D.bound(Y, X) != Domain::Inf)
      return -D.bound(Y, X) + F_.Const;
  }
  int64_t Sum = F_.Const;
  for (const auto &[V, C] : F_.Coeffs) {
    if (C > 0) {
      auto Lo = D.lowerOf(V);
      if (!Lo)
        return std::nullopt;
      Sum += C * *Lo;
    } else {
      auto Hi = D.upperOfOpt(V);
      if (!Hi)
        return std::nullopt;
      Sum += C * *Hi;
    }
  }
  return Sum;
}

template <class Domain>
void VarEnv::transferInstr(Domain &D, const Instr &I) const {
  if (D.isBottom())
    return;
  switch (I.K) {
  case Instr::Kind::ArrayStore:
  case Instr::Kind::CallStmt:
  case Instr::Kind::Nop:
    return; // No scalar state change.
  case Instr::Kind::Assign:
    break;
  }
  int V = indexOf(I.Dest);
  if (V < 0)
    return; // Array declaration placeholder.

  if (!I.Value) {
    D.assignConst(V, 0); // Default initialization.
    return;
  }
  if (auto L = parseLinear(I.Value)) {
    if (L->Coeffs.empty()) {
      D.assignConst(V, L->Const);
      return;
    }
    if (L->Coeffs.size() == 1 && L->Coeffs.begin()->second == 1) {
      D.assignVarPlus(V, L->Coeffs.begin()->first, L->Const);
      return;
    }
    // General linear form: fall back to interval bounds computed before the
    // target is clobbered.
    auto Hi = evalUpper(D, *L);
    auto Lo = evalLower(D, *L);
    D.forget(V);
    if (Hi)
      D.addConstraint(V, 0, *Hi);
    if (Lo)
      D.addConstraint(0, V, -*Lo);
    return;
  }
  // Unmodeled right-hand side.
  auto TypeIt = F.VarTypes.find(I.Dest);
  if (TypeIt != F.VarTypes.end() && TypeIt->second == TypeKind::Bool) {
    D.assignBoolUnknown(V);
    return;
  }
  D.forget(V);
}

template <class Domain>
void VarEnv::applyLeqZero(Domain &D, const LinForm &L) const {
  // Express "L <= 0" as a zone constraint when L has shape
  // x - y + c, x + c, or -x + c.
  if (L.Coeffs.empty()) {
    if (L.Const > 0)
      D.meetWith(Domain::bottom(numVars())); // Contradiction.
    return;
  }
  if (L.Coeffs.size() == 1) {
    auto [V, C] = *L.Coeffs.begin();
    if (C == 1) {
      D.addConstraint(V, 0, -L.Const); // v <= -const
      return;
    }
    if (C == -1) {
      D.addConstraint(0, V, -L.Const); // -v <= -const, i.e. v >= const
      return;
    }
    return;
  }
  if (L.Coeffs.size() == 2) {
    auto It = L.Coeffs.begin();
    auto [V1, C1] = *It++;
    auto [V2, C2] = *It;
    if (C1 == 1 && C2 == -1) {
      D.addConstraint(V1, V2, -L.Const);
      return;
    }
    if (C1 == -1 && C2 == 1) {
      D.addConstraint(V2, V1, -L.Const);
      return;
    }
  }
  // Wider forms are ignored (sound over-approximation).
}

template <class Domain>
void VarEnv::assumeCond(Domain &D, const Expr *Cond, bool Positive) const {
  if (!Cond || D.isBottom())
    return;
  switch (Cond->kind()) {
  case Expr::Kind::BoolLit: {
    bool Holds = cast<BoolLitExpr>(Cond)->Value == Positive;
    if (!Holds)
      D.meetWith(Domain::bottom(numVars()));
    return;
  }
  case Expr::Kind::VarRef: {
    int V = indexOf(cast<VarRefExpr>(Cond)->Name);
    if (V < 0)
      return;
    if (Positive)
      D.addConstraint(0, V, -1); // v >= 1
    else
      D.addConstraint(V, 0, 0); // v <= 0
    return;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(Cond);
    if (U->Op == UnaryOp::Not)
      assumeCond(D, U->Sub.get(), !Positive);
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Cond);
    switch (B->Op) {
    case BinaryOp::And:
      if (Positive) {
        assumeCond(D, B->Lhs.get(), true);
        assumeCond(D, B->Rhs.get(), true);
      } else {
        // !(a && b) == !a || !b: join of the two refinements.
        Domain D1 = D;
        assumeCond(D1, B->Lhs.get(), false);
        Domain D2 = D;
        assumeCond(D2, B->Rhs.get(), false);
        D1.joinWith(D2);
        D = std::move(D1);
      }
      return;
    case BinaryOp::Or:
      if (Positive) {
        Domain D1 = D;
        assumeCond(D1, B->Lhs.get(), true);
        Domain D2 = D;
        assumeCond(D2, B->Rhs.get(), true);
        D1.joinWith(D2);
        D = std::move(D1);
      } else {
        assumeCond(D, B->Lhs.get(), false);
        assumeCond(D, B->Rhs.get(), false);
      }
      return;
    default:
      break;
    }
    // Comparison atom: build L - R and apply.
    auto L = parseLinear(B->Lhs.get());
    auto R = parseLinear(B->Rhs.get());
    if (!L || !R)
      return;
    LinForm Diff = *L;
    Diff.Const -= R->Const;
    for (const auto &[V, C] : R->Coeffs)
      Diff.add(V, -C);

    BinaryOp Op = B->Op;
    if (!Positive) {
      // Negate the comparison.
      switch (Op) {
      case BinaryOp::Lt:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Le;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Lt;
        break;
      case BinaryOp::Eq:
        Op = BinaryOp::Ne;
        break;
      case BinaryOp::Ne:
        Op = BinaryOp::Eq;
        break;
      default:
        return;
      }
    }
    auto Negated = [&]() {
      LinForm N;
      N.Const = -Diff.Const;
      for (const auto &[V, C] : Diff.Coeffs)
        N.add(V, -C);
      return N;
    };
    switch (Op) {
    case BinaryOp::Lt: { // L - R < 0  ==  L - R + 1 <= 0
      LinForm G = Diff;
      G.Const += 1;
      applyLeqZero(D, G);
      return;
    }
    case BinaryOp::Le:
      applyLeqZero(D, Diff);
      return;
    case BinaryOp::Gt: { // R - L + 1 <= 0
      LinForm G = Negated();
      G.Const += 1;
      applyLeqZero(D, G);
      return;
    }
    case BinaryOp::Ge:
      applyLeqZero(D, Negated());
      return;
    case BinaryOp::Eq:
      applyLeqZero(D, Diff);
      applyLeqZero(D, Negated());
      return;
    case BinaryOp::Ne:
      return; // Disequality is not a zone constraint; ignore.
    default:
      return;
    }
  }
  default:
    return;
  }
}

// The transfer functions are instantiated once per engine domain; new
// domains add their instantiations here rather than moving the definitions
// into the header.
namespace blazer {
template Dbm VarEnv::initialState<Dbm>() const;
template IntervalDomain VarEnv::initialState<IntervalDomain>() const;
template void VarEnv::transferInstr<Dbm>(Dbm &, const Instr &) const;
template void VarEnv::transferInstr<IntervalDomain>(IntervalDomain &,
                                                    const Instr &) const;
template void VarEnv::assumeCond<Dbm>(Dbm &, const Expr *, bool) const;
template void VarEnv::assumeCond<IntervalDomain>(IntervalDomain &,
                                                 const Expr *, bool) const;
template std::optional<int64_t> VarEnv::evalUpper<Dbm>(const Dbm &,
                                                       const LinForm &) const;
template std::optional<int64_t>
VarEnv::evalUpper<IntervalDomain>(const IntervalDomain &,
                                  const LinForm &) const;
template std::optional<int64_t> VarEnv::evalLower<Dbm>(const Dbm &,
                                                       const LinForm &) const;
template std::optional<int64_t>
VarEnv::evalLower<IntervalDomain>(const IntervalDomain &,
                                  const LinForm &) const;
} // namespace blazer
