//===- VarEnv.h - Variable environment for the zone domain ------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps a function's scalars onto DBM indices and implements the abstract
/// transfer functions (assignments and branch assumptions) of the abstract
/// interpreter.
///
/// Besides the program variables, the environment carries two kinds of
/// pseudo-variables:
///  - "<param>#in": an immutable copy of each scalar parameter's input
///    value (the *seeding* of Berdine et al. [10] that the paper leverages
///    to compute transition invariants — bounds are expressed against these
///    pinned seeds even when the program overwrites the parameter);
///  - "<array>.len": the (immutable) length of each array, the symbolic
///    quantity bounds like 23*g.len + 10 are stated over.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_VARENV_H
#define BLAZER_ABSINT_VARENV_H

#include "absint/Dbm.h"
#include "ir/Cfg.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// A linear combination of DBM variables plus a constant, used to translate
/// expressions into zone constraints.
struct LinForm {
  std::map<int, int64_t> Coeffs; ///< DBM index -> coefficient (no zeros).
  int64_t Const = 0;

  void add(int Var, int64_t C) {
    if (Var < 0) {
      Const += C;
      return;
    }
    auto It = Coeffs.find(Var);
    if (It == Coeffs.end()) {
      if (C != 0)
        Coeffs[Var] = C;
      return;
    }
    It->second += C;
    if (It->second == 0)
      Coeffs.erase(It);
  }
};

/// The per-function variable numbering plus transfer functions.
class VarEnv {
public:
  /// \p InputPins fixes the value of input symbols (by display name, e.g.
  /// "exponent.len") in the initial abstract state — used for publicly
  /// known quantities such as crypto key sizes.
  explicit VarEnv(const CfgFunction &F,
                  std::map<std::string, int64_t> InputPins = {});

  int numVars() const { return static_cast<int>(Names.size()); }
  /// DBM index (1-based; 0 is the zero variable) or -1.
  int indexOf(const std::string &Name) const;
  /// Name of DBM index \p I (I >= 1).
  const std::string &nameOf(int I) const { return Names[I - 1]; }
  const std::vector<std::string> &names() const { return Names; }

  /// \returns true when \p I denotes an immutable input symbol (a "#in"
  /// parameter seed or an array length).
  bool isInputSymbol(int I) const { return InputSymbol[I - 1]; }

  /// The pinned input symbols, as passed at construction. Part of the
  /// trail-bound cache key: pins change the initial abstract state, so
  /// results computed under different pins must not collide.
  const std::map<std::string, int64_t> &inputPins() const { return Pins; }

  /// Display name used in cost polynomials: "p#in" renders as "p",
  /// "a.len" stays "a.len".
  std::string displaySymbol(int I) const;

  /// The abstract state at function entry: parameters pinned to their
  /// seeds, lengths non-negative, booleans in [0,1]. The templated form
  /// builds the state in any NumericDomain (the interval->zone cascade
  /// seeds both domains identically); the plain overload keeps the
  /// historical zone-typed spelling working.
  template <class Domain> Domain initialState() const;
  Dbm initialState() const;

  /// Parses \p E into a linear form over DBM indices, if it is linear with
  /// integer coefficients.
  std::optional<LinForm> parseLinear(const Expr *E) const;

  /// Applies one instruction to \p D in place. Instantiated for every
  /// NumericDomain the engine runs (Dbm and IntervalDomain; see VarEnv.cpp
  /// for the explicit instantiations).
  template <class Domain> void transferInstr(Domain &D, const Instr &I) const;

  /// Refines \p D with the assumption that \p Cond evaluates to
  /// \p Positive. Unhandled shapes leave \p D unchanged (sound).
  template <class Domain>
  void assumeCond(Domain &D, const Expr *Cond, bool Positive) const;

  /// Best-effort numeric bounds of a linear form under \p D. Uses the
  /// domain's difference constraints directly for two-variable +/-1 forms,
  /// falling back to per-variable intervals otherwise.
  template <class Domain>
  std::optional<int64_t> evalUpper(const Domain &D, const LinForm &F) const;
  template <class Domain>
  std::optional<int64_t> evalLower(const Domain &D, const LinForm &F) const;

private:
  /// Adds "F <= 0" to \p D when expressible as a difference constraint.
  template <class Domain>
  void applyLeqZero(Domain &D, const LinForm &F) const;

  const CfgFunction &F;
  std::map<std::string, int64_t> Pins;  ///< Display name -> pinned value.
  std::vector<std::string> Names;       ///< Index i -> name of var i+1.
  std::vector<bool> InputSymbol;        ///< Parallel to Names.
  std::map<std::string, int> IndexMap;  ///< Name -> DBM index.
};

} // namespace blazer

#endif // BLAZER_ABSINT_VARENV_H
