//===- Wto.cpp - Weak topological order construction ----------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Wto.h"

#include <cassert>
#include <sstream>

using namespace blazer;

std::vector<int>
blazer::reversePostorder(const std::vector<std::vector<int>> &Succs,
                         int Entry, const std::vector<char> *Mask) {
  std::vector<int> Rpo;
  size_t N = Succs.size();
  if (Entry < 0 || static_cast<size_t>(Entry) >= N ||
      (Mask && !(*Mask)[Entry]))
    return Rpo;
  std::vector<char> Seen(N, 0);
  std::vector<std::pair<int, size_t>> Stack{{Entry, 0}};
  Seen[Entry] = 1;
  std::vector<int> Post;
  Post.reserve(N);
  while (!Stack.empty()) {
    auto &[V, I] = Stack.back();
    if (I < Succs[V].size()) {
      int S = Succs[V][I++];
      if (Seen[S] || (Mask && !(*Mask)[S]))
        continue;
      Seen[S] = 1;
      Stack.push_back({S, 0});
      continue;
    }
    Post.push_back(V);
    Stack.pop_back();
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  return Rpo;
}

namespace {

/// Recursive hierarchical SCC decomposition. Each level receives a masked
/// subgraph and emits its SCCs in topological order; a non-trivial SCC
/// emits its head (the member with the smallest RPO index, i.e. the loop's
/// natural entry for reducible shapes), then decomposes the SCC minus the
/// head one level deeper. Every cycle of the original graph lies within
/// some SCC at some level and passes through that SCC's removed head, so
/// the heads cover all cycles regardless of reducibility.
class Builder {
public:
  Builder(const std::vector<std::vector<int>> &Succs,
          const std::vector<int> &RpoIndex, std::vector<Wto::Item> &Items,
          std::vector<char> &HeadNode, size_t &Heads)
      : Succs(Succs), RpoIndex(RpoIndex), Items(Items), HeadNode(HeadNode),
        Heads(Heads) {}

  /// Decomposes the subgraph induced by \p Mask, whose members are
  /// \p Members listed in RPO order.
  void decompose(std::vector<char> &Mask, const std::vector<int> &Members) {
    auto Degree = [&](int V) { return Succs[V].size(); };
    auto SuccAt = [&](int V, size_t I) { return Succs[V][I]; };
    std::vector<std::vector<int>> Sccs =
        tarjanSccs(Succs.size(), &Mask, &Members, Degree, SuccAt);
    // Tarjan emits successor components first; reverse for topo order.
    for (size_t C = Sccs.size(); C-- > 0;) {
      std::vector<int> &Comp = Sccs[C];
      if (Comp.size() == 1 && !hasSelfArc(Comp[0])) {
        Items.push_back({Comp[0], Items.size() + 1, /*Head=*/false});
        continue;
      }
      // Head: the member entered first in the whole graph's RPO.
      int Head = Comp[0];
      for (int V : Comp)
        if (RpoIndex[V] < RpoIndex[Head])
          Head = V;
      size_t HeadIdx = Items.size();
      Items.push_back({Head, 0, /*Head=*/true}); // End patched below.
      HeadNode[Head] = 1;
      ++Heads;

      // Body: the SCC minus its head, in RPO order, one level deeper.
      std::sort(Comp.begin(), Comp.end(),
                [&](int A, int B) { return RpoIndex[A] < RpoIndex[B]; });
      std::vector<int> Body;
      Body.reserve(Comp.size() - 1);
      for (int V : Comp)
        if (V != Head)
          Body.push_back(V);
      std::vector<char> SubMask(Succs.size(), 0);
      for (int V : Body)
        SubMask[V] = 1;
      decompose(SubMask, Body);
      Items[HeadIdx].End = Items.size();
    }
  }

private:
  bool hasSelfArc(int V) const {
    for (int S : Succs[V])
      if (S == V)
        return true;
    return false;
  }

  const std::vector<std::vector<int>> &Succs;
  const std::vector<int> &RpoIndex;
  std::vector<Wto::Item> &Items;
  std::vector<char> &HeadNode;
  size_t &Heads;
};

} // namespace

Wto Wto::build(const std::vector<std::vector<int>> &Succs, int Entry) {
  Wto W;
  size_t N = Succs.size();
  W.HeadNode.assign(N, 0);
  std::vector<int> Rpo = reversePostorder(Succs, Entry);
  if (Rpo.empty())
    return W;
  std::vector<int> RpoIndex(N, -1);
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = static_cast<int>(I);
  std::vector<char> Mask(N, 0);
  for (int V : Rpo)
    Mask[V] = 1;
  W.Items.reserve(Rpo.size());
  Builder B(Succs, RpoIndex, W.Items, W.HeadNode, W.Heads);
  B.decompose(Mask, Rpo);
  assert(W.Items.size() == Rpo.size() &&
         "WTO must list every reachable node exactly once");
  return W;
}

std::vector<char> Wto::flatComponents() const {
  std::vector<char> Flat(Items.size(), 0);
  for (size_t I = 0; I < Items.size(); ++I) {
    if (!Items[I].Head || Items[I].End <= I + 1)
      continue; // Plain vertex, or a self-loop component (empty body).
    bool IsFlat = true;
    for (size_t J = I + 1; J < Items[I].End && IsFlat; ++J)
      IsFlat = !Items[J].Head;
    Flat[I] = IsFlat;
  }
  return Flat;
}

std::string Wto::str() const {
  std::ostringstream OS;
  std::vector<size_t> OpenEnds;
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I)
      OS << ' ';
    if (isHead(I)) {
      OS << '(';
      OpenEnds.push_back(Items[I].End);
    }
    OS << Items[I].Node;
    while (!OpenEnds.empty() && OpenEnds.back() == I + 1) {
      OS << ')';
      OpenEnds.pop_back();
    }
  }
  return OS.str();
}
