//===- Wto.h - Weak topological order and SCC scheduling utils --*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixpoint scheduling utilities shared by the abstract interpreter and the
/// bound analysis:
///
///  - Wto: a Bourdoncle-style weak topological order of a directed graph,
///    computed by hierarchical SCC decomposition (topologically ordered
///    SCCs; each non-trivial SCC contributes a *component* whose head is
///    its earliest node in reverse postorder, with the rest decomposed
///    recursively after the head is removed). Every cycle of the graph
///    passes through at least one component head, so the heads form an
///    admissible widening set, and the flattened item sequence drives the
///    recursive iteration strategy: iterate a component until its head
///    stabilizes before moving past it.
///
///  - tarjanSccs: the iterative Tarjan strongly-connected-components walk
///    (successor components emitted first), over any successor accessor.
///    Used by Wto::build and by the bound analysis' region folding.
///
///  - reversePostorder: DFS reverse postorder over a masked subgraph.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_ABSINT_WTO_H
#define BLAZER_ABSINT_WTO_H

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace blazer {

/// Iterative Tarjan SCCs of the subgraph induced by \p Mask (null = whole
/// graph), seeded from \p Seeds in order (null = 0..N-1). \p Degree(n)
/// yields the successor count of node n and \p SuccAt(n, i) its i-th
/// successor; successors outside the mask are skipped. Components are
/// emitted successors-first (reverse topological order), each as a vector
/// of node ids in Tarjan stack-pop order.
template <typename DegreeFn, typename SuccAtFn>
std::vector<std::vector<int>>
tarjanSccs(size_t N, const std::vector<char> *Mask,
           const std::vector<int> *Seeds, DegreeFn Degree, SuccAtFn SuccAt) {
  std::vector<std::vector<int>> Out;
  std::vector<int> Index(N, -1), Low(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<int> Stack;
  int Next = 0;
  struct Frame {
    int Node;
    size_t SuccIdx;
  };
  std::vector<Frame> Frames;
  auto InMask = [&](int V) { return !Mask || (*Mask)[V]; };
  size_t SeedCount = Seeds ? Seeds->size() : N;
  for (size_t SeedIdx = 0; SeedIdx < SeedCount; ++SeedIdx) {
    int Start = Seeds ? (*Seeds)[SeedIdx] : static_cast<int>(SeedIdx);
    if (!InMask(Start) || Index[Start] >= 0)
      continue;
    Frames.assign(1, {Start, 0});
    Index[Start] = Low[Start] = Next++;
    Stack.push_back(Start);
    OnStack[Start] = 1;
    while (!Frames.empty()) {
      Frame &Fr = Frames.back();
      size_t Deg = Degree(Fr.Node);
      bool Descended = false;
      while (Fr.SuccIdx < Deg) {
        int S = SuccAt(Fr.Node, Fr.SuccIdx++);
        if (!InMask(S))
          continue;
        if (Index[S] < 0) {
          Index[S] = Low[S] = Next++;
          Stack.push_back(S);
          OnStack[S] = 1;
          Frames.push_back({S, 0});
          Descended = true;
          break;
        }
        if (OnStack[S])
          Low[Fr.Node] = std::min(Low[Fr.Node], Index[S]);
      }
      if (Descended)
        continue;
      int B = Fr.Node;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] = std::min(Low[Frames.back().Node], Low[B]);
      if (Low[B] == Index[B]) {
        std::vector<int> Component;
        while (true) {
          int X = Stack.back();
          Stack.pop_back();
          OnStack[X] = 0;
          Component.push_back(X);
          if (X == B)
            break;
        }
        Out.push_back(std::move(Component));
      }
    }
  }
  return Out;
}

/// DFS reverse postorder over \p Succs restricted to \p Mask (null = whole
/// graph), rooted at \p Entry. Nodes unreachable from the entry within the
/// mask are absent from the result.
std::vector<int> reversePostorder(const std::vector<std::vector<int>> &Succs,
                                  int Entry,
                                  const std::vector<char> *Mask = nullptr);

/// A weak topological order, flattened into an item sequence. Each item is
/// either a plain vertex or the *head* of a component whose body occupies
/// the items up to (but excluding) index End; bodies nest. The sequence
/// lists every node reachable from the entry exactly once.
class Wto {
public:
  struct Item {
    int Node = -1;
    /// One-past-the-end item index of this component's span: a head at
    /// index I owns the body items [I + 1, End). For a plain vertex — and
    /// for a self-loop component, whose body is empty — End is I + 1.
    size_t End = 0;
    /// True when this item heads a component (i.e. it is a widening
    /// point); the body may be empty (self-loop).
    bool Head = false;
  };

  /// Builds the WTO of the graph \p Succs (adjacency by node id) from
  /// \p Entry. Deterministic: depends only on the adjacency structure.
  static Wto build(const std::vector<std::vector<int>> &Succs, int Entry);

  const std::vector<Item> &items() const { return Items; }
  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }

  /// True when the item at index \p I heads a component.
  bool isHead(size_t I) const { return Items[I].Head; }
  /// True when node \p V heads some component.
  bool isHeadNode(int V) const {
    return V >= 0 && V < static_cast<int>(HeadNode.size()) && HeadNode[V];
  }
  /// Number of component heads in the sequence.
  size_t headCount() const { return Heads; }

  /// Bourdoncle's parenthesized notation, e.g. "0 1 (2 3 (4 5)) 6".
  std::string str() const;

  /// Per item: true for a head whose body is non-empty and contains no
  /// nested head. Such innermost components iterate as one tight pass
  /// over a contiguous item span (the batched stabilization path); nested
  /// or self-loop components keep the recursive strategy.
  std::vector<char> flatComponents() const;

private:
  std::vector<Item> Items;
  std::vector<char> HeadNode; ///< Indexed by node id.
  size_t Heads = 0;
};

} // namespace blazer

#endif // BLAZER_ABSINT_WTO_H
