//===- AnnotateTrail.cpp - The ANNOTATETRAIL procedure --------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/AnnotateTrail.h"

#include <set>

using namespace blazer;

namespace {

/// Collects the symbols occurring anywhere in \p E.
void collectSymbols(const TrailExpr *E, std::set<int> &Out) {
  switch (E->kind()) {
  case TrailExpr::Kind::Empty:
  case TrailExpr::Kind::Epsilon:
    return;
  case TrailExpr::Kind::Symbol:
    Out.insert(E->symbolId());
    return;
  case TrailExpr::Kind::Concat:
  case TrailExpr::Kind::Union:
    collectSymbols(E->lhs().get(), Out);
    collectSymbols(E->rhs().get(), Out);
    return;
  case TrailExpr::Kind::Star:
    collectSymbols(E->lhs().get(), Out);
    return;
  }
}

class Annotator {
public:
  explicit Annotator(const std::map<int, AnnotatedBranch> &Branches)
      : Branches(Branches) {}

  /// Rebuilds \p E bottom-up in structure but decides marks top-down: the
  /// set \p Consumed carries branch ids already claimed by an enclosing
  /// constructor (the "outermost" rule of §4.2).
  TrailExpr::Ptr walk(const TrailExpr::Ptr &E, std::set<int> Consumed) {
    switch (E->kind()) {
    case TrailExpr::Kind::Empty:
    case TrailExpr::Kind::Epsilon:
    case TrailExpr::Kind::Symbol:
      return E;
    case TrailExpr::Kind::Concat: {
      TrailExpr::Ptr L = walk(E->lhs(), Consumed);
      TrailExpr::Ptr R = walk(E->rhs(), Consumed);
      if (L == E->lhs() && R == E->rhs())
        return E;
      return TrailExpr::concat(std::move(L), std::move(R));
    }
    case TrailExpr::Kind::Union: {
      std::set<int> SymsL, SymsR;
      collectSymbols(E->lhs().get(), SymsL);
      collectSymbols(E->rhs().get(), SymsR);
      TaintMark Mark = E->mark();
      for (const auto &[Block, Info] : Branches) {
        if (Consumed.count(Block) || !Info.Mark.any())
          continue;
        // §4.2: the union decides b when "for at least one of the two
        // tr_i's, one of the edges from b appears in the set of traces
        // defined by it, whereas the other edge does not".
        bool SepL = (SymsL.count(Info.TrueSymbol) > 0) !=
                    (SymsL.count(Info.FalseSymbol) > 0);
        bool SepR = (SymsR.count(Info.TrueSymbol) > 0) !=
                    (SymsR.count(Info.FalseSymbol) > 0);
        if (SepL || SepR) {
          Mark.Low |= Info.Mark.Low;
          Mark.High |= Info.Mark.High;
          Consumed.insert(Block);
        }
      }
      TrailExpr::Ptr L = walk(E->lhs(), Consumed);
      TrailExpr::Ptr R = walk(E->rhs(), Consumed);
      return TrailExpr::unite(std::move(L), std::move(R), Mark);
    }
    case TrailExpr::Kind::Star: {
      std::set<int> Syms;
      collectSymbols(E->lhs().get(), Syms);
      TaintMark Mark = E->mark();
      for (const auto &[Block, Info] : Branches) {
        if (Consumed.count(Block) || !Info.Mark.any())
          continue;
        // The star decides b when exactly one of b's edges occurs under
        // it (taking the other edge leaves the loop).
        bool HasTrue = Syms.count(Info.TrueSymbol);
        bool HasFalse = Syms.count(Info.FalseSymbol);
        if (HasTrue != HasFalse) {
          Mark.Low |= Info.Mark.Low;
          Mark.High |= Info.Mark.High;
          Consumed.insert(Block);
        }
      }
      return TrailExpr::star(walk(E->lhs(), Consumed), Mark);
    }
    }
    return E;
  }

private:
  const std::map<int, AnnotatedBranch> &Branches;
};

} // namespace

TrailExpr::Ptr
blazer::annotateTrail(const TrailExpr::Ptr &Trail,
                      const std::map<int, AnnotatedBranch> &Branches) {
  if (!Trail)
    return Trail;
  Annotator A(Branches);
  return A.walk(Trail, {});
}
