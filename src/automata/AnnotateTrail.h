//===- AnnotateTrail.h - The ANNOTATETRAIL procedure ------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ANNOTATETRAIL (§4.2): marks the union and Kleene-star constructors of a
/// trail expression as low- and/or high-dependent. A constructor is
/// dependent with respect to a tainted branch block b when it is the
/// *outermost* constructor of its kind that separates b's two out-edges —
/// for a union, one of the edges occurs in one operand's language and not
/// in the other; for a star, one edge occurs under the star and the other
/// does not. The driver's RefinePartition consults the resulting marks to
/// decide where quotient-preserving splits are allowed.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_AUTOMATA_ANNOTATETRAIL_H
#define BLAZER_AUTOMATA_ANNOTATETRAIL_H

#include "automata/TrailExpr.h"

#include <map>

namespace blazer {

/// The per-branch information ANNOTATETRAIL consumes: the two out-edge
/// symbols of a branching block and its taint mark.
struct AnnotatedBranch {
  int TrueSymbol = -1;
  int FalseSymbol = -1;
  TaintMark Mark;
};

/// \returns a copy of \p Trail with union/star constructors marked per
/// §4.2. \p Branches maps branch block ids to their edge symbols and taint
/// marks; only marked (tainted) branches produce annotations.
TrailExpr::Ptr annotateTrail(const TrailExpr::Ptr &Trail,
                             const std::map<int, AnnotatedBranch> &Branches);

} // namespace blazer

#endif // BLAZER_AUTOMATA_ANNOTATETRAIL_H
