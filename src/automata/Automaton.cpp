//===- Automaton.cpp - Finite automata over CFG edges ---------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/Automaton.h"

#include "support/Budget.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <set>
#include <sstream>

using namespace blazer;

//===----------------------------------------------------------------------===//
// EdgeAlphabet
//===----------------------------------------------------------------------===//

EdgeAlphabet::EdgeAlphabet(std::vector<Edge> Es) : Edges(std::move(Es)) {
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  for (size_t I = 0; I < Edges.size(); ++I)
    SymbolIndex[Edges[I]] = static_cast<int>(I);
}

EdgeAlphabet EdgeAlphabet::forFunction(const CfgFunction &F) {
  return EdgeAlphabet(F.edges());
}

int EdgeAlphabet::symbol(const Edge &E) const {
  int S = symbolOrNone(E);
  assert(S >= 0 && "edge not in alphabet");
  return S;
}

int EdgeAlphabet::symbolOrNone(const Edge &E) const {
  auto It = SymbolIndex.find(E);
  return It == SymbolIndex.end() ? -1 : It->second;
}

//===----------------------------------------------------------------------===//
// Dfa constructors
//===----------------------------------------------------------------------===//

Dfa Dfa::emptyLanguage(int NumSymbols) {
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = 0;
  D.Delta.assign(1, std::vector<int>(NumSymbols, 0));
  D.Accept.assign(1, false);
  return D;
}

Dfa Dfa::allWords(int NumSymbols) {
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = 0;
  D.Delta.assign(1, std::vector<int>(NumSymbols, 0));
  D.Accept.assign(1, true);
  return D;
}

Dfa Dfa::containsSymbol(int NumSymbols, int S) {
  if (S < 0 || S >= NumSymbols)
    return emptyLanguage(NumSymbols); // No word contains an unknown symbol.
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = 0;
  // State 0: not seen yet; state 1: seen (accepting sink for S-tracking).
  D.Delta.assign(2, std::vector<int>(NumSymbols, 0));
  D.Delta[0][S] = 1;
  for (int Sym = 0; Sym < NumSymbols; ++Sym)
    D.Delta[1][Sym] = 1;
  D.Accept = {false, true};
  return D;
}

Dfa Dfa::avoidsSymbol(int NumSymbols, int S) {
  if (S < 0 || S >= NumSymbols)
    return allWords(NumSymbols); // Every word avoids an unknown symbol.
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = 0;
  // State 0: clean (accepting); state 1: dead.
  D.Delta.assign(2, std::vector<int>(NumSymbols, 0));
  D.Delta[0][S] = 1;
  for (int Sym = 0; Sym < NumSymbols; ++Sym)
    D.Delta[1][Sym] = 1;
  D.Accept = {true, false};
  return D;
}

Dfa Dfa::fromCfg(const CfgFunction &F, const EdgeAlphabet &A) {
  Dfa D;
  D.NumSymbols = static_cast<int>(A.size());
  int N = static_cast<int>(F.blockCount());
  int Dead = N; // Extra absorbing state to keep the DFA complete.
  D.Delta.assign(N + 1, std::vector<int>(D.NumSymbols, Dead));
  D.Accept.assign(N + 1, false);
  D.Start = F.Entry;
  D.Accept[F.Exit] = true;
  for (const Edge &E : F.edges()) {
    int Sym = A.symbolOrNone(E);
    if (Sym >= 0)
      D.Delta[E.From][Sym] = E.To;
  }
  return D;
}

Result<Dfa> Dfa::fromParts(int NumSymbols, int Start,
                           std::vector<std::vector<int>> Delta,
                           std::vector<bool> Accept) {
  if (NumSymbols < 0)
    return Result<Dfa>::error("negative symbol count");
  if (Delta.size() != Accept.size())
    return Result<Dfa>::error(
        "transition table and accepting set sizes differ (" +
        std::to_string(Delta.size()) + " vs " +
        std::to_string(Accept.size()) + ")");
  if (Delta.empty())
    return Result<Dfa>::error("a DFA needs at least one state");
  int NumStates = static_cast<int>(Delta.size());
  if (Start < 0 || Start >= NumStates)
    return Result<Dfa>::error("start state " + std::to_string(Start) +
                              " out of range");
  for (size_t S = 0; S < Delta.size(); ++S) {
    if (static_cast<int>(Delta[S].size()) != NumSymbols)
      return Result<Dfa>::error("row " + std::to_string(S) + " has " +
                                std::to_string(Delta[S].size()) +
                                " entries, expected " +
                                std::to_string(NumSymbols));
    for (int T : Delta[S])
      if (T < 0 || T >= NumStates)
        return Result<Dfa>::error("transition target " + std::to_string(T) +
                                  " out of range in row " +
                                  std::to_string(S));
  }
  return fromPartsTrusted(NumSymbols, Start, std::move(Delta),
                          std::move(Accept));
}

Dfa Dfa::fromPartsTrusted(int NumSymbols, int Start,
                          std::vector<std::vector<int>> Delta,
                          std::vector<bool> Accept) {
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = Start;
  D.Delta = std::move(Delta);
  D.Accept = std::move(Accept);
  assert(D.Delta.size() == D.Accept.size() && "table size mismatch");
  return D;
}

//===----------------------------------------------------------------------===//
// Language operations
//===----------------------------------------------------------------------===//

/// Completes a partially-built transition table after a budget trip: every
/// state whose row was never filled becomes a dead (non-accepting,
/// self-looping) state. The result under-approximates the intended
/// language; the tripped budget tells callers to discard it.
static void sealTruncatedTable(int NumStates, int NumSymbols,
                               std::vector<std::vector<int>> &Delta,
                               std::vector<bool> &Accept) {
  Delta.resize(NumStates);
  Accept.resize(NumStates, false);
  for (int S = 0; S < NumStates; ++S)
    if (static_cast<int>(Delta[S].size()) != NumSymbols) {
      Delta[S].assign(NumSymbols, S);
      Accept[S] = false;
    }
}

/// Builds the reachable product of \p A and \p B; acceptance combines the
/// operands' accepting flags with \p Op. Counts created states against the
/// thread's current AnalysisBudget and stops expanding once it trips.
template <typename AcceptOp>
static Dfa productDfa(const Dfa &A, const Dfa &B, AcceptOp Op) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase("dfa-product");
  int M = A.numSymbols();
  std::map<std::pair<int, int>, int> Index;
  std::vector<std::pair<int, int>> States;
  std::deque<int> Work;

  auto Intern = [&](int SA, int SB) {
    auto [It, New] = Index.try_emplace({SA, SB},
                                       static_cast<int>(States.size()));
    if (New) {
      States.push_back({SA, SB});
      Work.push_back(It->second);
      if (Budget)
        Budget->countStates();
    }
    return It->second;
  };

  Intern(A.start(), B.start());
  std::vector<std::vector<int>> Delta;
  std::vector<bool> Accept;
  while (!Work.empty()) {
    if (Budget && !Budget->checkpoint())
      break;
    int Id = Work.front();
    Work.pop_front();
    auto [SA, SB] = States[Id];
    if (static_cast<int>(Delta.size()) <= Id) {
      Delta.resize(Id + 1);
      Accept.resize(Id + 1);
    }
    Delta[Id].assign(M, -1);
    Accept[Id] = Op(A.accepting(SA), B.accepting(SB));
    for (int Sym = 0; Sym < M; ++Sym)
      Delta[Id][Sym] = Intern(A.next(SA, Sym), B.next(SB, Sym));
  }
  sealTruncatedTable(static_cast<int>(States.size()), M, Delta, Accept);
  Result<Dfa> D =
      Dfa::fromParts(M, /*Start=*/0, std::move(Delta), std::move(Accept));
  assert(D && "product table is total by construction");
  return D.take();
}

Dfa Dfa::intersect(const Dfa &RHS) const {
  return productDfa(*this, RHS, [](bool A, bool B) { return A && B; });
}

Dfa Dfa::unite(const Dfa &RHS) const {
  return productDfa(*this, RHS, [](bool A, bool B) { return A || B; });
}

Dfa Dfa::complement() const {
  Dfa D = *this;
  for (size_t I = 0; I < D.Accept.size(); ++I)
    D.Accept[I] = !D.Accept[I];
  return D;
}

bool Dfa::isEmpty() const {
  std::vector<bool> Seen(numStates(), false);
  std::deque<int> Work = {Start};
  Seen[Start] = true;
  while (!Work.empty()) {
    int S = Work.front();
    Work.pop_front();
    if (Accept[S])
      return false;
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      int T = Delta[S][Sym];
      if (!Seen[T]) {
        Seen[T] = true;
        Work.push_back(T);
      }
    }
  }
  return true;
}

bool Dfa::accepts(const std::vector<int> &Word) const {
  int S = Start;
  for (int Sym : Word) {
    if (Sym < 0 || Sym >= NumSymbols)
      return false; // Not a word over this alphabet.
    S = Delta[S][Sym];
  }
  return Accept[S];
}

bool Dfa::includedIn(const Dfa &RHS) const {
  return intersect(RHS.complement()).isEmpty();
}

bool Dfa::equivalent(const Dfa &RHS) const {
  return includedIn(RHS) && RHS.includedIn(*this);
}

std::vector<bool> Dfa::liveStates() const {
  // Backward reachability from accepting states.
  std::vector<std::vector<int>> Preds(numStates());
  for (int S = 0; S < numStates(); ++S)
    for (int Sym = 0; Sym < NumSymbols; ++Sym)
      Preds[Delta[S][Sym]].push_back(S);
  std::vector<bool> Live(numStates(), false);
  std::deque<int> Work;
  for (int S = 0; S < numStates(); ++S)
    if (Accept[S]) {
      Live[S] = true;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    int S = Work.front();
    Work.pop_front();
    for (int P : Preds[S])
      if (!Live[P]) {
        Live[P] = true;
        Work.push_back(P);
      }
  }
  return Live;
}

std::optional<std::vector<int>> Dfa::shortestWord() const {
  std::vector<int> PrevState(numStates(), -1);
  std::vector<int> PrevSym(numStates(), -1);
  std::vector<bool> Seen(numStates(), false);
  std::deque<int> Work = {Start};
  Seen[Start] = true;
  int Found = Accept[Start] ? Start : -1;
  while (Found < 0 && !Work.empty()) {
    int S = Work.front();
    Work.pop_front();
    for (int Sym = 0; Sym < NumSymbols && Found < 0; ++Sym) {
      int T = Delta[S][Sym];
      if (Seen[T])
        continue;
      Seen[T] = true;
      PrevState[T] = S;
      PrevSym[T] = Sym;
      if (Accept[T])
        Found = T;
      Work.push_back(T);
    }
  }
  if (Found < 0)
    return std::nullopt;
  std::vector<int> Word;
  for (int S = Found; PrevState[S] >= 0; S = PrevState[S])
    Word.push_back(PrevSym[S]);
  std::reverse(Word.begin(), Word.end());
  return Word;
}

std::string Dfa::canonicalKey() const {
  // BFS renumbering exactly like trim(), serialized without materializing
  // the renumbered automaton.
  std::vector<int> Remap(numStates(), -1);
  std::vector<int> Order;
  std::deque<int> Work = {Start};
  Remap[Start] = 0;
  Order.push_back(Start);
  while (!Work.empty()) {
    int S = Work.front();
    Work.pop_front();
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      int T = Delta[S][Sym];
      if (Remap[T] >= 0)
        continue;
      Remap[T] = static_cast<int>(Order.size());
      Order.push_back(T);
      Work.push_back(T);
    }
  }
  std::string Key;
  Key.reserve(16 + Order.size() * (NumSymbols + 1) * 4);
  Key += "k";
  Key += std::to_string(NumSymbols);
  for (int S : Order) {
    Key += Accept[S] ? "|a" : "|r";
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      Key += ',';
      Key += std::to_string(Remap[Delta[S][Sym]]);
    }
  }
  return Key;
}

Dfa Dfa::trim() const {
  std::vector<int> Remap(numStates(), -1);
  std::vector<int> Order;
  std::deque<int> Work = {Start};
  Remap[Start] = 0;
  Order.push_back(Start);
  while (!Work.empty()) {
    int S = Work.front();
    Work.pop_front();
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      int T = Delta[S][Sym];
      if (Remap[T] >= 0)
        continue;
      Remap[T] = static_cast<int>(Order.size());
      Order.push_back(T);
      Work.push_back(T);
    }
  }
  Dfa D;
  D.NumSymbols = NumSymbols;
  D.Start = 0;
  D.Delta.assign(Order.size(), std::vector<int>(NumSymbols, -1));
  D.Accept.assign(Order.size(), false);
  for (size_t I = 0; I < Order.size(); ++I) {
    int S = Order[I];
    D.Accept[I] = Accept[S];
    for (int Sym = 0; Sym < NumSymbols; ++Sym)
      D.Delta[I][Sym] = Remap[Delta[S][Sym]];
  }
  return D;
}

Dfa Dfa::minimize() const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase("dfa-minimize");
  Dfa T = trim();
  int N = T.numStates();
  // Moore's algorithm: start from the accept/reject partition and refine.
  std::vector<int> Class(N);
  for (int S = 0; S < N; ++S)
    Class[S] = T.Accept[S] ? 1 : 0;
  int NumClasses = 2;
  bool Changed = true;
  while (Changed) {
    // Fail soft on a tripped budget: the trimmed automaton accepts the same
    // language, it is merely larger than necessary.
    if (Budget && !Budget->checkpoint())
      return T;
    Changed = false;
    // Signature: (class, classes of successors).
    std::map<std::vector<int>, int> SigIndex;
    std::vector<int> NewClass(N);
    for (int S = 0; S < N; ++S) {
      std::vector<int> Sig;
      Sig.reserve(T.NumSymbols + 1);
      Sig.push_back(Class[S]);
      for (int Sym = 0; Sym < T.NumSymbols; ++Sym)
        Sig.push_back(Class[T.Delta[S][Sym]]);
      auto [It, New] =
          SigIndex.try_emplace(Sig, static_cast<int>(SigIndex.size()));
      (void)New;
      NewClass[S] = It->second;
    }
    int NewCount = static_cast<int>(SigIndex.size());
    if (NewCount != NumClasses) {
      Changed = true;
      NumClasses = NewCount;
    }
    Class = std::move(NewClass);
  }
  Dfa D;
  D.NumSymbols = T.NumSymbols;
  D.Start = Class[T.Start];
  D.Delta.assign(NumClasses, std::vector<int>(T.NumSymbols, -1));
  D.Accept.assign(NumClasses, false);
  for (int S = 0; S < N; ++S) {
    D.Accept[Class[S]] = T.Accept[S];
    for (int Sym = 0; Sym < T.NumSymbols; ++Sym)
      D.Delta[Class[S]][Sym] = Class[T.Delta[S][Sym]];
  }
  return D;
}

std::string Dfa::str() const {
  std::ostringstream OS;
  OS << "dfa states=" << numStates() << " start=" << Start << " accept={";
  bool First = true;
  for (int S = 0; S < numStates(); ++S)
    if (Accept[S]) {
      if (!First)
        OS << ",";
      First = false;
      OS << S;
    }
  OS << "}\n";
  for (int S = 0; S < numStates(); ++S)
    for (int Sym = 0; Sym < NumSymbols; ++Sym)
      if (Delta[S][Sym] != S || Accept[S]) // Compress pure self-loop spam.
        OS << "  " << S << " --" << Sym << "--> " << Delta[S][Sym] << "\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Nfa
//===----------------------------------------------------------------------===//

int Nfa::addState() {
  Trans.emplace_back();
  return static_cast<int>(Trans.size()) - 1;
}

void Nfa::addTransition(int From, int Symbol, int To) {
  assert(Symbol >= 0 && Symbol < NumSymbols && "symbol out of range");
  Trans[From].push_back(Transition{Symbol, To});
}

void Nfa::addEpsilon(int From, int To) {
  Trans[From].push_back(Transition{-1, To});
}

Dfa Nfa::determinize() const {
  AnalysisBudget *Budget = BudgetScope::current();
  PhaseScope Phase("nfa-determinize");
  auto Closure = [&](std::set<int> States) {
    std::deque<int> Work(States.begin(), States.end());
    while (!Work.empty()) {
      int S = Work.front();
      Work.pop_front();
      for (const Transition &T : Trans[S])
        if (T.Symbol < 0 && States.insert(T.To).second)
          Work.push_back(T.To);
    }
    return States;
  };

  std::map<std::set<int>, int> Index;
  std::vector<std::set<int>> Sets;
  std::deque<int> Work;
  auto Intern = [&](std::set<int> S) {
    auto [It, New] = Index.try_emplace(S, static_cast<int>(Sets.size()));
    if (New) {
      Sets.push_back(std::move(S));
      Work.push_back(It->second);
      if (Budget)
        Budget->countStates();
    }
    return It->second;
  };

  Intern(Closure({Start}));
  std::vector<std::vector<int>> Delta;
  std::vector<bool> Accept;
  while (!Work.empty()) {
    if (Budget && !Budget->checkpoint())
      break; // Subset construction blew the budget; seal and bail.
    int Id = Work.front();
    Work.pop_front();
    if (static_cast<int>(Delta.size()) <= Id) {
      Delta.resize(Id + 1);
      Accept.resize(Id + 1);
    }
    Delta[Id].assign(NumSymbols, -1);
    Accept[Id] = Sets[Id].count(AcceptState) > 0;
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      std::set<int> Next;
      for (int S : Sets[Id])
        for (const Transition &T : Trans[S])
          if (T.Symbol == Sym)
            Next.insert(T.To);
      Delta[Id][Sym] = Intern(Closure(std::move(Next)));
    }
  }
  sealTruncatedTable(static_cast<int>(Sets.size()), NumSymbols, Delta,
                     Accept);
  Result<Dfa> D = Dfa::fromParts(NumSymbols, /*Start=*/0, std::move(Delta),
                                 std::move(Accept));
  assert(D && "subset-construction table is total by construction");
  return D.take();
}
