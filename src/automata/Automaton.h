//===- Automaton.h - Finite automata over CFG edges -------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite automata over the alphabet of CFG edges — the substitute for the
/// brics automaton library the paper uses "to check language inclusion and
/// construct intersection, union, and complementation automata" (§5).
///
/// DFAs here are always *complete*: every state has a transition on every
/// symbol (a dead state absorbs the rest). That makes complementation a
/// flip of the accepting set and products straightforward.
///
/// Resource governance: the state-producing operations (products, subset
/// construction, minimization) count created states against the thread's
/// current AnalysisBudget (see support/Budget.h). When the budget trips,
/// products and determinization stop expanding and complete the automaton
/// with dead states — an *under-approximation* of the true language that
/// callers must discard by checking AnalysisBudget::exhausted();
/// minimization instead falls back to the (language-equal) trimmed input.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_AUTOMATA_AUTOMATON_H
#define BLAZER_AUTOMATA_AUTOMATON_H

#include "ir/Cfg.h"
#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blazer {

/// Bijection between CFG edges and dense symbol ids (the trail alphabet).
class EdgeAlphabet {
public:
  EdgeAlphabet() = default;
  explicit EdgeAlphabet(std::vector<Edge> Edges);

  /// Builds the alphabet of all edges of \p F.
  static EdgeAlphabet forFunction(const CfgFunction &F);

  size_t size() const { return Edges.size(); }
  /// \returns the symbol id of \p E; asserts that the edge is known.
  int symbol(const Edge &E) const;
  /// \returns the symbol id of \p E, or -1 when unknown.
  int symbolOrNone(const Edge &E) const;
  const Edge &edge(int Symbol) const { return Edges[Symbol]; }

private:
  std::vector<Edge> Edges;         ///< Sorted.
  std::map<Edge, int> SymbolIndex;
};

/// A complete deterministic finite automaton.
class Dfa {
public:
  /// The automaton accepting the empty language over \p NumSymbols symbols.
  static Dfa emptyLanguage(int NumSymbols);
  /// The automaton accepting every word.
  static Dfa allWords(int NumSymbols);
  /// Words that contain the symbol \p S at least once. A symbol outside
  /// [0, NumSymbols) occurs in no word, so the result is the empty language.
  static Dfa containsSymbol(int NumSymbols, int S);
  /// Words that never contain the symbol \p S. Every word avoids a symbol
  /// outside [0, NumSymbols), so the result accepts all words.
  static Dfa avoidsSymbol(int NumSymbols, int S);
  /// The control-flow-graph automaton A_C of §4.1: states are blocks, the
  /// initial state is the entry block, the only accepting state is the exit
  /// block, and (q, (q,p), p) transitions mirror the CFG edges. Edges of
  /// \p F missing from \p A (a mismatched alphabet) are skipped.
  static Dfa fromCfg(const CfgFunction &F, const EdgeAlphabet &A);
  /// Builds a DFA from a caller-provided transition table, validating it
  /// fully: \p Delta must be total (every row NumSymbols wide, every entry a
  /// valid state id), sized like \p Accept, and \p Start in range. Malformed
  /// input yields a Diag instead of undefined behavior.
  static Result<Dfa> fromParts(int NumSymbols, int Start,
                               std::vector<std::vector<int>> Delta,
                               std::vector<bool> Accept);

  int numStates() const { return static_cast<int>(Delta.size()); }
  int numSymbols() const { return NumSymbols; }
  int start() const { return Start; }
  bool accepting(int State) const { return Accept[State]; }
  /// The (total) transition function.
  int next(int State, int Symbol) const { return Delta[State][Symbol]; }

  /// Language operations (all return complete DFAs over the same alphabet).
  Dfa intersect(const Dfa &RHS) const;
  Dfa unite(const Dfa &RHS) const;
  Dfa complement() const;
  /// Moore partition-refinement minimization.
  Dfa minimize() const;

  bool isEmpty() const;
  /// \returns whether the DFA accepts \p Word. A word containing a symbol
  /// outside [0, numSymbols()) is not a word over this alphabet and is
  /// never accepted.
  bool accepts(const std::vector<int> &Word) const;
  /// L(this) ⊆ L(RHS)?
  bool includedIn(const Dfa &RHS) const;
  /// L(this) == L(RHS)?
  bool equivalent(const Dfa &RHS) const;

  /// \returns for each state whether some accepting state is reachable from
  /// it. States where this is false are "dead" — products over the CFG use
  /// this to prune paths that can never complete to an accepted trace.
  std::vector<bool> liveStates() const;

  /// \returns a shortest accepted word, or std::nullopt when empty.
  std::optional<std::vector<int>> shortestWord() const;

  /// Serializes the reachable part of the automaton with states renumbered
  /// in BFS discovery order (symbol-ascending), which is invariant under
  /// any renumbering of this automaton's states. For a *minimal* DFA the
  /// result is therefore a canonical fingerprint of the language: two
  /// minimized automata get the same key iff they accept the same words.
  /// Used as the trail-bound cache key; unreachable states are dropped
  /// because no analysis result can depend on them.
  std::string canonicalKey() const;

  /// Debug rendering.
  std::string str() const;

private:
  Dfa() = default;

  /// fromParts without validation, for internal construction sites whose
  /// tables are total by construction.
  static Dfa fromPartsTrusted(int NumSymbols, int Start,
                              std::vector<std::vector<int>> Delta,
                              std::vector<bool> Accept);

  /// Drops unreachable states (renumbering) while keeping completeness.
  Dfa trim() const;

  int NumSymbols = 0;
  int Start = 0;
  std::vector<std::vector<int>> Delta; ///< [state][symbol] -> state.
  std::vector<bool> Accept;

  friend class Nfa;
};

/// A nondeterministic finite automaton with epsilon transitions; the
/// Thompson-construction target for trail expressions.
class Nfa {
public:
  explicit Nfa(int NumSymbols) : NumSymbols(NumSymbols) {}

  int addState();
  void addTransition(int From, int Symbol, int To);
  void addEpsilon(int From, int To);
  void setStart(int S) { Start = S; }
  void setAccept(int S) { AcceptState = S; }

  /// Subset construction to a complete DFA.
  Dfa determinize() const;

  int numStates() const { return static_cast<int>(Trans.size()); }

private:
  struct Transition {
    int Symbol; ///< -1 for epsilon.
    int To;
  };

  int NumSymbols;
  int Start = 0;
  int AcceptState = 0;
  std::vector<std::vector<Transition>> Trans;
};

} // namespace blazer

#endif // BLAZER_AUTOMATA_AUTOMATON_H
