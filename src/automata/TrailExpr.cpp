//===- TrailExpr.cpp - Regular trail expressions ---------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/TrailExpr.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace blazer;

std::string TaintMark::str() const {
  if (Low && High)
    return "l,h";
  if (Low)
    return "l";
  if (High)
    return "h";
  return "";
}

TrailExpr::Ptr TrailExpr::empty() {
  static const Ptr Instance(new TrailExpr(Kind::Empty));
  return Instance;
}

TrailExpr::Ptr TrailExpr::epsilon() {
  static const Ptr Instance(new TrailExpr(Kind::Epsilon));
  return Instance;
}

TrailExpr::Ptr TrailExpr::symbol(int S) {
  assert(S >= 0 && "invalid symbol");
  auto *N = new TrailExpr(Kind::Symbol);
  N->Sym = S;
  return Ptr(N);
}

TrailExpr::Ptr TrailExpr::concat(Ptr L, Ptr R) {
  assert(L && R && "null trail operand");
  if (L->TheKind == Kind::Empty || R->TheKind == Kind::Empty)
    return empty();
  if (L->TheKind == Kind::Epsilon)
    return R;
  if (R->TheKind == Kind::Epsilon)
    return L;
  auto *N = new TrailExpr(Kind::Concat);
  N->L = std::move(L);
  N->R = std::move(R);
  return Ptr(N);
}

TrailExpr::Ptr TrailExpr::unite(Ptr L, Ptr R, TaintMark Mark) {
  assert(L && R && "null trail operand");
  if (L->TheKind == Kind::Empty)
    return R;
  if (R->TheKind == Kind::Empty)
    return L;
  if (L == R)
    return L;
  auto *N = new TrailExpr(Kind::Union);
  N->L = std::move(L);
  N->R = std::move(R);
  N->Mark = Mark;
  return Ptr(N);
}

TrailExpr::Ptr TrailExpr::star(Ptr Sub, TaintMark Mark) {
  assert(Sub && "null trail operand");
  if (Sub->TheKind == Kind::Empty || Sub->TheKind == Kind::Epsilon)
    return epsilon();
  if (Sub->TheKind == Kind::Star)
    return Sub;
  auto *N = new TrailExpr(Kind::Star);
  N->L = std::move(Sub);
  N->Mark = Mark;
  return Ptr(N);
}

size_t TrailExpr::size() const {
  size_t N = 1;
  if (L)
    N += L->size();
  if (R)
    N += R->size();
  return N;
}

Nfa TrailExpr::toNfa(int NumSymbols) const {
  Nfa N(NumSymbols);
  // Recursive Thompson construction returning (start, accept).
  struct Builder {
    Nfa &N;
    std::pair<int, int> build(const TrailExpr *E) {
      int S = N.addState();
      int A = N.addState();
      switch (E->kind()) {
      case Kind::Empty:
        break; // No connection: accepts nothing.
      case Kind::Epsilon:
        N.addEpsilon(S, A);
        break;
      case Kind::Symbol:
        N.addTransition(S, E->symbolId(), A);
        break;
      case Kind::Concat: {
        auto [LS, LA] = build(E->lhs().get());
        auto [RS, RA] = build(E->rhs().get());
        N.addEpsilon(S, LS);
        N.addEpsilon(LA, RS);
        N.addEpsilon(RA, A);
        break;
      }
      case Kind::Union: {
        auto [LS, LA] = build(E->lhs().get());
        auto [RS, RA] = build(E->rhs().get());
        N.addEpsilon(S, LS);
        N.addEpsilon(S, RS);
        N.addEpsilon(LA, A);
        N.addEpsilon(RA, A);
        break;
      }
      case Kind::Star: {
        auto [LS, LA] = build(E->lhs().get());
        N.addEpsilon(S, LS);
        N.addEpsilon(LA, S);
        N.addEpsilon(S, A);
        break;
      }
      }
      return {S, A};
    }
  } B{N};
  auto [S, A] = B.build(this);
  N.setStart(S);
  N.setAccept(A);
  return N;
}

Dfa TrailExpr::toDfa(int NumSymbols) const {
  return toNfa(NumSymbols).determinize().minimize();
}

std::string TrailExpr::str(const EdgeAlphabet *A) const {
  // Precedence: star > concat > union.
  auto NeedsParens = [](Kind Outer, Kind Inner) {
    auto Level = [](Kind K) {
      switch (K) {
      case Kind::Union:
        return 0;
      case Kind::Concat:
        return 1;
      default:
        return 2;
      }
    };
    return Level(Inner) < Level(Outer);
  };
  std::ostringstream OS;
  // Iterative-free simple recursion via lambda.
  std::function<void(const TrailExpr *)> Print = [&](const TrailExpr *E) {
    auto Child = [&](const TrailExpr *C) {
      if (NeedsParens(E->kind(), C->kind())) {
        OS << "(";
        Print(C);
        OS << ")";
      } else {
        Print(C);
      }
    };
    switch (E->kind()) {
    case Kind::Empty:
      OS << "<empty>";
      return;
    case Kind::Epsilon:
      OS << "eps";
      return;
    case Kind::Symbol:
      if (A)
        OS << A->edge(E->symbolId()).str();
      else
        OS << "e" << E->symbolId();
      return;
    case Kind::Concat:
      Child(E->lhs().get());
      OS << " . ";
      Child(E->rhs().get());
      return;
    case Kind::Union:
      Child(E->lhs().get());
      OS << " |";
      if (E->mark().any())
        OS << "_" << E->mark().str();
      OS << " ";
      Child(E->rhs().get());
      return;
    case Kind::Star: {
      const TrailExpr *Sub = E->lhs().get();
      if (Sub->kind() == Kind::Symbol) {
        Print(Sub);
      } else {
        OS << "(";
        Print(Sub);
        OS << ")";
      }
      OS << "*";
      if (E->mark().any())
        OS << "_" << E->mark().str();
      return;
    }
    }
  };
  Print(this);
  return OS.str();
}

TrailExpr::Ptr blazer::dfaToTrailExpr(const Dfa &D, size_t SizeLimit) {
  // GNFA state elimination over the live part of D. R[i][j] is the regex for
  // direct moves from i to j.
  int N = D.numStates();
  std::vector<bool> Live = D.liveStates();
  if (!Live[D.start()])
    return TrailExpr::empty();

  // States: 0..N-1 original (only live kept), N = super-start, N+1 = super-
  // accept.
  int Super = N;
  int SuperAcc = N + 1;
  std::map<std::pair<int, int>, TrailExpr::Ptr> R;
  auto Get = [&](int I, int J) -> TrailExpr::Ptr {
    auto It = R.find({I, J});
    return It == R.end() ? TrailExpr::empty() : It->second;
  };
  auto Add = [&](int I, int J, TrailExpr::Ptr E) {
    R[{I, J}] = TrailExpr::unite(Get(I, J), std::move(E));
  };

  for (int S = 0; S < N; ++S) {
    if (!Live[S])
      continue;
    for (int Sym = 0; Sym < D.numSymbols(); ++Sym) {
      int T = D.next(S, Sym);
      if (Live[T])
        Add(S, T, TrailExpr::symbol(Sym));
    }
    if (D.accepting(S))
      Add(S, SuperAcc, TrailExpr::epsilon());
  }
  Add(Super, D.start(), TrailExpr::epsilon());

  // Eliminate original states one by one.
  for (int K = 0; K < N; ++K) {
    if (!Live[K])
      continue;
    TrailExpr::Ptr Loop = TrailExpr::star(Get(K, K));
    // Collect in/out neighbours.
    std::vector<int> Ins, Outs;
    for (int I = 0; I <= SuperAcc; ++I) {
      if (I == K)
        continue;
      if (Get(I, K)->kind() != TrailExpr::Kind::Empty)
        Ins.push_back(I);
      if (Get(K, I)->kind() != TrailExpr::Kind::Empty)
        Outs.push_back(I);
    }
    for (int I : Ins)
      for (int J : Outs) {
        TrailExpr::Ptr Through = TrailExpr::concat(
            TrailExpr::concat(Get(I, K), Loop), Get(K, J));
        if (Through->size() > SizeLimit)
          return nullptr;
        Add(I, J, std::move(Through));
      }
    // Remove K's rows/columns.
    for (auto It = R.begin(); It != R.end();) {
      if (It->first.first == K || It->first.second == K)
        It = R.erase(It);
      else
        ++It;
    }
  }
  TrailExpr::Ptr Out = Get(Super, SuperAcc);
  if (Out->size() > SizeLimit)
    return nullptr;
  return Out;
}
