//===- TrailExpr.h - Regular trail expressions ------------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trail expressions (§4.1): regular expressions over CFG edges, with the
/// low/high annotations of §4.2 on union and Kleene-star constructors. The
/// analysis itself manipulates trails as automata; TrailExpr is the regex
/// form used for construction and for rendering trails the way the paper
/// writes them, e.g. "23 · (34·45·5*_l ...) |_l (38 ...)".
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_AUTOMATA_TRAILEXPR_H
#define BLAZER_AUTOMATA_TRAILEXPR_H

#include "automata/Automaton.h"

#include <memory>

namespace blazer {

/// Low/high dependence marks on branching constructors (§4.2).
struct TaintMark {
  bool Low = false;
  bool High = false;

  bool any() const { return Low || High; }
  /// Renders "l", "h", "l,h" or "".
  std::string str() const;
};

/// An immutable regex tree node. Build via the smart constructors, which
/// apply the usual simplifications (identity and annihilator laws).
class TrailExpr {
public:
  enum class Kind { Empty, Epsilon, Symbol, Concat, Union, Star };

  using Ptr = std::shared_ptr<const TrailExpr>;

  static Ptr empty();
  static Ptr epsilon();
  static Ptr symbol(int S);
  static Ptr concat(Ptr L, Ptr R);
  static Ptr unite(Ptr L, Ptr R, TaintMark Mark = TaintMark());
  static Ptr star(Ptr Sub, TaintMark Mark = TaintMark());

  Kind kind() const { return TheKind; }
  int symbolId() const { return Sym; }
  const Ptr &lhs() const { return L; }
  const Ptr &rhs() const { return R; }
  const TaintMark &mark() const { return Mark; }

  /// Thompson construction over an alphabet of \p NumSymbols symbols.
  Nfa toNfa(int NumSymbols) const;
  /// Convenience: toNfa + determinize + minimize.
  Dfa toDfa(int NumSymbols) const;

  /// Renders the expression; symbols print as "From->To" via \p A (or as
  /// bare ids when \p A is null). Annotated constructors print as "|_l",
  /// "*_h" etc.
  std::string str(const EdgeAlphabet *A = nullptr) const;

  /// Number of nodes in the tree.
  size_t size() const;

private:
  explicit TrailExpr(Kind K) : TheKind(K) {}

  Kind TheKind;
  int Sym = -1;
  Ptr L;
  Ptr R;
  TaintMark Mark;
};

/// Converts \p D to a trail expression by GNFA state elimination. Returns
/// null when the intermediate expressions exceed \p SizeLimit nodes (regex
/// extraction can blow up exponentially; callers fall back to automaton
/// display).
TrailExpr::Ptr dfaToTrailExpr(const Dfa &D, size_t SizeLimit = 4096);

} // namespace blazer

#endif // BLAZER_AUTOMATA_TRAILEXPR_H
