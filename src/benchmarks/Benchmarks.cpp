//===- Benchmarks.cpp - The 24 Table-1 benchmark programs -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace blazer;

//===----------------------------------------------------------------------===//
// MicroBench sources
//===----------------------------------------------------------------------===//

/// array_safe: both sides of the secret comparison walk the public array —
/// every execution is linear in low.length.
static const char *ArraySafe = R"(
fn array_safe(secret high: int[], public low: int[]) {
  var i: int = 0;
  var t: int = 0;
  if (high.length == low.length) {
    while (i < low.length) { t = t + low[i]; i = i + 1; }
  } else {
    while (i < low.length) { t = t + 1; i = i + 1; }
  }
}
)";

/// array_unsafe: a secret test selects between a loop over the secret array
/// and a constant step — the running time's asymptotic class leaks.
static const char *ArrayUnsafe = R"(
fn array_unsafe(secret high: int[], public low: int[]) {
  var i: int = 0;
  var t: int = 0;
  if (high.length > 1) {
    while (i < high.length) { t = t + high[i]; i = i + 1; }
  } else {
    t = 0;
  }
}
)";

/// loopAndbranch_safe (Fig. 3): looks vulnerable, but the potentially
/// vulnerable inner trail (the high-guarded loop) is infeasible — low
/// becomes >= 10 on that path — which the abstract interpreter catches.
static const char *LoopBranchSafe = R"(
fn loopAndbranch_safe(secret high: int, public low: int) {
  var i: int = high;
  if (low < 0) {
    while (i > 0) { i = i - 1; }
  } else {
    low = low + 10;
    if (low >= 10) {
      var j: int = high;
      while (j > 0) { j = j - 1; }
    } else {
      if (high < 0) {
        var k: int = high;
        while (k > 0) { k = k - 1; }
      }
    }
  }
}
)";

/// loopAndbranch_unsafe: the inner secret branch is now reachable and picks
/// between constant work and a secret-length loop.
static const char *LoopBranchUnsafe = R"(
fn loopAndbranch_unsafe(secret high: int, public low: int) {
  var i: int = high;
  if (low < 0) {
    while (i > 0) { i = i - 1; }
  } else {
    low = low - 10;
    if (low >= 10) {
      var j: int = high;
      while (j > 0) { j = j - 1; }
    } else {
      if (high < 0) {
        skip;
      } else {
        var k: int = high;
        while (k > 0) { k = k - 1; }
      }
    }
  }
}
)";

/// nosecret_safe: no secret input at all — side channels need a secret.
static const char *NoSecretSafe = R"(
fn nosecret_safe(public low: int) {
  var i: int = 0;
  while (i < low) { i = i + 1; }
}
)";

/// notaint_unsafe: no attacker-controlled input, but the secret alone
/// decides between constant and linear work.
static const char *NoTaintUnsafe = R"(
fn notaint_unsafe(secret high: int) {
  var i: int = 0;
  if (high > 0) {
    while (i < high) { i = i + 1; }
  } else {
    skip;
  }
}
)";

/// sanity_safe: a secret branch whose two sides cost the same.
static const char *SanitySafe = R"(
fn sanity_safe(secret high: int, public low: int) {
  var x: int = 0;
  if (high == 0) {
    x = low + 1;
    x = x * 2;
  } else {
    x = low + 2;
    x = x * 3;
  }
}
)";

/// sanity_unsafe: one side of the secret branch hashes (md5 summary cost),
/// the other does one assignment.
static const char *SanityUnsafe = R"(
fn sanity_unsafe(secret high: int, public low: int) {
  var x: int = 0;
  if (high == 0) {
    x = 1;
  } else {
    x = md5(low);
  }
}
)";

/// straightline_safe: no branching whatsoever.
static const char *StraightlineSafe = R"(
fn straightline_safe(secret high: int, public low: int) {
  var x: int = high + low;
  var y: int = x * 2;
  var z: int = y - high;
  skip;
  skip;
}
)";

/// straightline_unsafe generator: one arm of a secret branch is a single
/// large straight-line block (the paper notes a 90-instruction block drives
/// this benchmark's running time).
static std::string makeStraightlineUnsafe() {
  std::ostringstream OS;
  OS << "fn straightline_unsafe(secret high: int, public low: int) {\n"
     << "  var x: int = 0;\n"
     << "  if (high == 0) {\n";
  for (int I = 0; I < 90; ++I)
    OS << "    x = x + " << (I % 7) << ";\n";
  OS << "  } else {\n"
     << "    x = 1;\n"
     << "  }\n"
     << "}\n";
  return OS.str();
}

/// unixlogin_safe: whether the user exists is secret (the classic Unix bug
/// leaked exactly that), but both sides hash the guess, so timing is flat.
static const char *UnixloginSafe = R"(
fn unixlogin_safe(secret user_exists: bool, public pw_guess: int,
                  secret stored_hash: int) -> bool {
  var outcome: bool = false;
  var h: int = 0;
  if (user_exists) {
    h = md5(pw_guess);
    if (h == stored_hash) { outcome = true; } else { outcome = false; }
  } else {
    h = md5(pw_guess);
    outcome = false;
  }
  return outcome;
}
)";

/// unixlogin_unsafe: the hash only happens for existing users — timing
/// reveals valid usernames (the vulnerability Fig. 3 alludes to).
static const char *UnixloginUnsafe = R"(
fn unixlogin_unsafe(secret user_exists: bool, public pw_guess: int,
                    secret stored_hash: int) -> bool {
  var outcome: bool = false;
  var h: int = 0;
  if (user_exists) {
    h = md5(pw_guess);
    if (h == stored_hash) { outcome = true; } else { outcome = false; }
  } else {
    outcome = false;
  }
  return outcome;
}
)";

//===----------------------------------------------------------------------===//
// STAC sources
//===----------------------------------------------------------------------===//

/// modPow1_safe (Fig. 3): square-and-multiply with a balancing dummy
/// multiply on zero bits. The exponent is a secret bit array; its length
/// (the key size) is pinned as public knowledge.
static const char *ModPow1Safe = R"(
fn modPow1_safe(public base: int, secret exponent: int[],
                public modulus: int) -> int {
  var s: int = 1;
  var dummy: int = 0;
  var width: int = exponent.length;
  var i: int = 0;
  while (i < width) {
    s = mulmod(s, s, modulus);
    if (exponent[width - i - 1] == 1) {
      s = mulmod(s, base, modulus);
    } else {
      dummy = mulmod(s, base, modulus);
    }
    i = i + 1;
  }
  return s;
}
)";

/// modPow1_unsafe: the dummy multiply is removed — one-bits cost a whole
/// modular multiplication more than zero-bits.
static const char *ModPow1Unsafe = R"(
fn modPow1_unsafe(public base: int, secret exponent: int[],
                  public modulus: int) -> int {
  var s: int = 1;
  var width: int = exponent.length;
  var i: int = 0;
  while (i < width) {
    s = mulmod(s, s, modulus);
    if (exponent[width - i - 1] == 1) {
      s = mulmod(s, base, modulus);
    }
    i = i + 1;
  }
  return s;
}
)";

/// modPow2_safe: Montgomery-ladder style — both bit values perform the same
/// two multiplications.
static const char *ModPow2Safe = R"(
fn modPow2_safe(public base: int, secret exponent: int[],
                public modulus: int) -> int {
  var r0: int = 1;
  var r1: int = base;
  var n: int = exponent.length;
  var i: int = 0;
  while (i < n) {
    if (exponent[i] == 0) {
      r1 = mulmod(r0, r1, modulus);
      r0 = mulmod(r0, r0, modulus);
    } else {
      r0 = mulmod(r0, r1, modulus);
      r1 = mulmod(r1, r1, modulus);
    }
    i = i + 1;
  }
  return r0;
}
)";

/// modPow2_unsafe: one-bits additionally run an extra normalization loop,
/// and a second secret test guards a conditional reduction — a larger CFG
/// whose subtrail tree explodes (the paper's slowest benchmark).
static const char *ModPow2Unsafe = R"(
fn modPow2_unsafe(public base: int, secret exponent: int[],
                  public modulus: int) -> int {
  var r0: int = 1;
  var r1: int = base;
  var n: int = exponent.length;
  var i: int = 0;
  var j: int = 0;
  while (i < n) {
    if (exponent[i] == 0) {
      r1 = mulmod(r0, r1, modulus);
      r0 = mulmod(r0, r0, modulus);
    } else {
      r0 = mulmod(r0, r1, modulus);
      r1 = mulmod(r1, r1, modulus);
      j = 0;
      while (j < 16) {
        r1 = r1 + 1;
        j = j + 1;
      }
      if (r1 > modulus) {
        r1 = mulmod(r1, 1, modulus);
      }
    }
    i = i + 1;
  }
  return r0;
}
)";

/// pwdEqual_safe: constant-time password comparison — the loop always runs
/// over the whole guess, accumulating the verdict in a flag.
static const char *PwdEqualSafe = R"(
fn pwdEqual_safe(public guess: int[], secret pwd: int[]) -> bool {
  var equal: bool = true;
  var dummy: bool = false;
  var i: int = 0;
  if (guess.length == pwd.length) {
    dummy = true;
  } else {
    equal = false;
  }
  while (i < guess.length) {
    if (i < pwd.length) {
      if (guess[i] != pwd[i]) { equal = false; } else { dummy = true; }
    } else {
      dummy = true;
      equal = false;
    }
    i = i + 1;
  }
  return equal;
}
)";

/// pwdEqual_unsafe: early return on the first mismatch — running time
/// reveals the length of the matching prefix (Tenex-style).
static const char *PwdEqualUnsafe = R"(
fn pwdEqual_unsafe(public guess: int[], secret pwd: int[]) -> bool {
  var i: int = 0;
  while (i < guess.length) {
    if (i >= pwd.length) { return false; }
    if (guess[i] != pwd[i]) { return false; }
    i = i + 1;
  }
  return true;
}
)";

//===----------------------------------------------------------------------===//
// Literature sources
//===----------------------------------------------------------------------===//

/// gpt14_safe (Genkin, Pipman, Tromer — CHES'14): fixed-window modular
/// exponentiation with balanced arms.
static const char *Gpt14Safe = R"(
fn gpt14_safe(secret key: int[], public msg: int) -> int {
  var acc: int = msg;
  var dummy: int = 0;
  var n: int = key.length;
  var i: int = 0;
  while (i < n) {
    acc = mulmod(acc, acc, 2147483647);
    if (key[i] == 1) {
      acc = mulmod(acc, msg, 2147483647);
    } else {
      dummy = mulmod(acc, msg, 2147483647);
    }
    i = i + 1;
  }
  return acc;
}
)";

/// gpt14_unsafe: the square-and-multiply leak plus a final data-dependent
/// halving loop whose trip count is non-linear in the inputs — the bound
/// lemmas cannot bound it, so (like the paper) the attack search comes back
/// empty-handed and the tool gives up.
static const char *Gpt14Unsafe = R"(
fn gpt14_unsafe(secret key: int[], public msg: int) -> int {
  var acc: int = msg;
  var n: int = key.length;
  var i: int = 0;
  while (i < n) {
    acc = mulmod(acc, acc, 2147483647);
    if (key[i] == 1) {
      acc = mulmod(acc, msg, 2147483647);
    }
    i = i + 1;
  }
  var t: int = acc;
  while (t > 1000) {
    t = t / 2;
  }
  return acc;
}
)";

/// k96_safe (Kocher CRYPTO'96 fix): modular exponentiation with a dummy
/// multiply balancing the per-bit work.
static const char *K96Safe = R"(
fn k96_safe(secret exponent: int[], public base: int,
            public modulus: int) -> int {
  var y: int = base;
  var result: int = 1;
  var dummy: int = 0;
  var w: int = exponent.length;
  var i: int = 0;
  while (i < w) {
    if (exponent[i] == 1) {
      result = mulmod(result, y, modulus);
    } else {
      dummy = mulmod(result, y, modulus);
    }
    y = mulmod(y, y, modulus);
    i = i + 1;
  }
  return result;
}
)";

/// k96_unsafe: the textbook leaky square-and-multiply of Kocher's paper.
static const char *K96Unsafe = R"(
fn k96_unsafe(secret exponent: int[], public base: int,
              public modulus: int) -> int {
  var y: int = base;
  var result: int = 1;
  var w: int = exponent.length;
  var i: int = 0;
  while (i < w) {
    if (exponent[i] == 1) {
      result = mulmod(result, y, modulus);
    }
    y = mulmod(y, y, modulus);
    i = i + 1;
  }
  return result;
}
)";

/// login_safe (Pasareanu, Phan, Malacaria — CSF'16; §2/Fig. 1 loginSafe):
/// checks the whole guess regardless of mismatches. Whether the username
/// is known is public (footnote 4 of the paper).
static const char *LoginSafe = R"(
fn login_safe(public user_known: bool, public guess: int[],
              secret user_pw: int[]) -> bool {
  var dummy: bool = false;
  var matches: bool = true;
  var i: int = 0;
  if (!user_known) {
    return false;
  }
  while (i < guess.length) {
    if (i < user_pw.length) {
      if (guess[i] != user_pw[i]) { matches = false; } else { dummy = true; }
    } else {
      dummy = true;
      matches = false;
    }
    i = i + 1;
  }
  return matches;
}
)";

/// login_unsafe (Fig. 1 loginBad): early returns reveal the matching-prefix
/// length, the Tenex password bug.
static const char *LoginUnsafe = R"(
fn login_unsafe(public user_known: bool, public guess: int[],
                secret user_pw: int[]) -> bool {
  var i: int = 0;
  if (!user_known) {
    return false;
  }
  while (i < guess.length) {
    if (i < user_pw.length) {
      if (guess[i] != user_pw[i]) { return false; }
    } else {
      return false;
    }
    i = i + 1;
  }
  return true;
}
)";

//===----------------------------------------------------------------------===//
// TableCT sources — written around the strict --ct verdict: the safe
// variant of each pair does *identical-cost* work on both sides of every
// secret branch (not merely sub-threshold differences), so its bounds are
// exactly equal under any cost model; the unsafe variant has a provable
// cost separation.
//===----------------------------------------------------------------------===//

/// ctmodexp_safe: blinded square-and-multiply — zero bits pay for the same
/// multiply into a dummy, so every iteration costs the same regardless of
/// the exponent. The key size (exponent.len) is pinned public knowledge.
static const char *CtModExpSafe = R"(
fn ctmodexp_safe(public base: int, secret exponent: int[],
                 public modulus: int) -> int {
  var s: int = 1;
  var dummy: int = 0;
  var n: int = exponent.length;
  var i: int = 0;
  while (i < n) {
    s = mulmod(s, s, modulus);
    if (exponent[i] == 1) {
      s = mulmod(s, base, modulus);
    } else {
      dummy = mulmod(s, base, modulus);
    }
    i = i + 1;
  }
  return s;
}
)";

/// ctmodexp_unsafe: the dummy is gone — one-bits cost a multiply more.
static const char *CtModExpUnsafe = R"(
fn ctmodexp_unsafe(public base: int, secret exponent: int[],
                   public modulus: int) -> int {
  var s: int = 1;
  var n: int = exponent.length;
  var i: int = 0;
  while (i < n) {
    s = mulmod(s, s, modulus);
    if (exponent[i] == 1) {
      s = mulmod(s, base, modulus);
    }
    i = i + 1;
  }
  return s;
}
)";

/// ctcompare_safe: constant-time MAC comparison — the loop always runs over
/// the whole (pinned-length) secret MAC, and both arms of the per-byte
/// secret test do one identical-cost counter bump.
static const char *CtCompareSafe = R"(
fn ctcompare_safe(public guess: int[], secret mac: int[]) -> int {
  var bad: int = 0;
  var good: int = 0;
  var w: int = mac.length;
  var i: int = 0;
  while (i < w) {
    if (guess[i] != mac[i]) {
      bad = bad + 1;
    } else {
      good = good + 1;
    }
    i = i + 1;
  }
  return bad;
}
)";

/// ctcompare_unsafe: early exit on the first mismatch — the all-mismatch
/// and all-match trails have provably different (exact) costs.
static const char *CtCompareUnsafe = R"(
fn ctcompare_unsafe(public guess: int[], secret mac: int[]) -> int {
  var w: int = mac.length;
  var i: int = 0;
  while (i < w) {
    if (guess[i] != mac[i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}
)";

/// cttable_safe: masked table select — a full public-index scan where the
/// secret-index test picks between two identical-cost accumulations (the
/// real one and a dummy), so neither the trip count nor any per-iteration
/// cost depends on the secret.
static const char *CtTableSafe = R"(
fn cttable_safe(secret k: int, public table: int[]) -> int {
  var acc: int = 0;
  var dummy: int = 0;
  var j: int = 0;
  while (j < table.length) {
    if (j == k) {
      acc = acc + table[j];
    } else {
      dummy = dummy + table[j];
    }
    j = j + 1;
  }
  return acc;
}
)";

/// cttable_unsafe: scan-until-secret — the walk to index k takes k steps,
/// so the lookup's cost is the secret.
static const char *CtTableUnsafe = R"(
fn cttable_unsafe(secret k: int, public table: int[]) -> int {
  var j: int = 0;
  while (j < k) {
    j = j + 1;
  }
  var acc: int = table[j];
  return acc;
}
)";

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

BlazerOptions BenchmarkProgram::options() const {
  BlazerOptions Opt;
  if (Category == "TableCT") {
    // Crypto kernels under the concrete model. Key and MAC sizes are
    // pinned public knowledge (a realistic MAC is 32 bytes; exponents are
    // 4096-bit); the table-lookup pair uses the default input maximum.
    Opt.Observer = ObserverModel::concreteInstructions(
        /*Threshold=*/25000, /*DefaultMaxInput=*/4096);
    Opt.Observer.pinSymbol("exponent.len", 4096);
    Opt.Observer.pinSymbol("mac.len", 32);
    return Opt;
  }
  if (Category == "MicroBench") {
    // §6.1: complexity-class observer, unbounded variables; constant-time
    // code may differ by a small epsilon.
    Opt.Observer = ObserverModel::polynomialDegree(/*Epsilon=*/32);
    return Opt;
  }
  // §6.1: concrete bytecode-instruction counts. Crypto benchmarks use
  // 4096-bit inputs and the 25k-instruction observability threshold; the
  // password checkers (guess length capped at 100, as in §2.2's n = 100
  // discussion) use a proportionally smaller threshold.
  bool PasswordBench = Name.rfind("login", 0) == 0 ||
                       Name.rfind("pwdEqual", 0) == 0;
  if (PasswordBench) {
    Opt.Observer = ObserverModel::concreteInstructions(
        /*Threshold=*/700, /*DefaultMaxInput=*/100);
    return Opt;
  }
  Opt.Observer = ObserverModel::concreteInstructions(/*Threshold=*/25000,
                                                     /*DefaultMaxInput=*/4096);
  // Key sizes are public knowledge even though key material is secret.
  Opt.Observer.pinSymbol("exponent.len", 4096);
  Opt.Observer.pinSymbol("key.len", 4096);
  return Opt;
}

CfgFunction BenchmarkProgram::compile() const {
  BuiltinRegistry Registry = BuiltinRegistry::standard();
  Result<CfgFunction> F = compileFunction(Source, Name, Registry);
  if (!F) {
    std::fprintf(stderr, "benchmark %s failed to compile: %s\n", Name.c_str(),
                 F.diag().str().c_str());
    std::abort();
  }
  return F.take();
}

const std::vector<BenchmarkProgram> &blazer::allBenchmarks() {
  static const std::vector<BenchmarkProgram> Suite = [] {
    std::vector<BenchmarkProgram> S;
    auto Add = [&S](const std::string &Name, const char *Cat,
                    std::string Src, VerdictKind Expected) {
      S.push_back(BenchmarkProgram{Name, Cat, std::move(Src), Expected});
    };
    // MicroBench.
    Add("array_safe", "MicroBench", ArraySafe, VerdictKind::Safe);
    Add("array_unsafe", "MicroBench", ArrayUnsafe, VerdictKind::Attack);
    Add("loopAndbranch_safe", "MicroBench", LoopBranchSafe,
        VerdictKind::Safe);
    Add("loopAndbranch_unsafe", "MicroBench", LoopBranchUnsafe,
        VerdictKind::Attack);
    Add("nosecret_safe", "MicroBench", NoSecretSafe, VerdictKind::Safe);
    Add("notaint_unsafe", "MicroBench", NoTaintUnsafe, VerdictKind::Attack);
    Add("sanity_safe", "MicroBench", SanitySafe, VerdictKind::Safe);
    Add("sanity_unsafe", "MicroBench", SanityUnsafe, VerdictKind::Attack);
    Add("straightline_safe", "MicroBench", StraightlineSafe,
        VerdictKind::Safe);
    Add("straightline_unsafe", "MicroBench", makeStraightlineUnsafe(),
        VerdictKind::Attack);
    Add("unixlogin_safe", "MicroBench", UnixloginSafe, VerdictKind::Safe);
    Add("unixlogin_unsafe", "MicroBench", UnixloginUnsafe,
        VerdictKind::Attack);
    // STAC.
    Add("modPow1_safe", "STAC", ModPow1Safe, VerdictKind::Safe);
    Add("modPow1_unsafe", "STAC", ModPow1Unsafe, VerdictKind::Attack);
    Add("modPow2_safe", "STAC", ModPow2Safe, VerdictKind::Safe);
    Add("modPow2_unsafe", "STAC", ModPow2Unsafe, VerdictKind::Attack);
    Add("pwdEqual_safe", "STAC", PwdEqualSafe, VerdictKind::Safe);
    Add("pwdEqual_unsafe", "STAC", PwdEqualUnsafe, VerdictKind::Attack);
    // Literature.
    Add("gpt14_safe", "Literature", Gpt14Safe, VerdictKind::Safe);
    Add("gpt14_unsafe", "Literature", Gpt14Unsafe, VerdictKind::Unknown);
    Add("k96_safe", "Literature", K96Safe, VerdictKind::Safe);
    Add("k96_unsafe", "Literature", K96Unsafe, VerdictKind::Attack);
    Add("login_safe", "Literature", LoginSafe, VerdictKind::Safe);
    Add("login_unsafe", "Literature", LoginUnsafe, VerdictKind::Attack);
    return S;
  }();
  return Suite;
}

const std::vector<BenchmarkProgram> &blazer::tableCtBenchmarks() {
  static const std::vector<BenchmarkProgram> Suite = [] {
    std::vector<BenchmarkProgram> S;
    auto Add = [&S](const std::string &Name, const char *Src,
                    VerdictKind Expected, CtVerdict ExpectedCt) {
      S.push_back(
          BenchmarkProgram{Name, "TableCT", Src, Expected, ExpectedCt});
    };
    Add("ctmodexp_safe", CtModExpSafe, VerdictKind::Safe,
        CtVerdict::CtSafe);
    Add("ctmodexp_unsafe", CtModExpUnsafe, VerdictKind::Attack,
        CtVerdict::CtUnsafe);
    Add("ctcompare_safe", CtCompareSafe, VerdictKind::Safe,
        CtVerdict::CtSafe);
    // The early-exit gap (~500 instructions for a 32-byte MAC) sits far
    // below the 25k observability threshold, so the threshold-based
    // analysis calls this Safe — the leak only --ct's exact-equality
    // verdict catches, which is the point of the pair.
    Add("ctcompare_unsafe", CtCompareUnsafe, VerdictKind::Safe,
        CtVerdict::CtUnsafe);
    Add("cttable_safe", CtTableSafe, VerdictKind::Safe, CtVerdict::CtSafe);
    Add("cttable_unsafe", CtTableUnsafe, VerdictKind::Attack,
        CtVerdict::CtUnsafe);
    return S;
  }();
  return Suite;
}

const BenchmarkProgram *blazer::findBenchmark(const std::string &Name) {
  for (const BenchmarkProgram &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  for (const BenchmarkProgram &B : tableCtBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

BlazerResult blazer::runBenchmark(const BenchmarkProgram &B,
                                  const BudgetLimits &Limits, int Jobs,
                                  EngineConfig Engine,
                                  std::shared_ptr<TrailBoundCache> SharedCache) {
  CfgFunction F = B.compile();
  BlazerOptions Opt = B.options();
  Opt.Budget = Limits;
  Opt.Jobs = Jobs;
  Opt.Engine = Engine;
  Opt.SharedTrailCache = std::move(SharedCache);
  return analyzeFunction(F, Opt);
}
