//===- Benchmarks.h - The 24 Table-1 benchmark programs ---------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation suite of §6: 12 hand-crafted MicroBench programs, 6
/// DARPA STAC extracts, and 6 programs from the cryptography literature
/// (Genkin et al. CHES'14, Kocher CRYPTO'96, Pasareanu et al. CSF'16),
/// paired as safe/unsafe variants and re-expressed in the mini-language
/// (the substitution for the paper's Java bytecode — see DESIGN.md).
///
/// Observer models follow §6.1: MicroBench uses the polynomial-degree
/// model with unbounded inputs; STAC and Literature use the concrete
/// instruction-count model with 4096-bit crypto inputs and a 25k-instruction
/// observability threshold. Key bit-lengths are pinned (publicly known).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_BENCHMARKS_BENCHMARKS_H
#define BLAZER_BENCHMARKS_BENCHMARKS_H

#include "core/Blazer.h"
#include "ir/Cfg.h"

#include <string>
#include <vector>

namespace blazer {

/// One benchmark program plus its expected outcome and analysis options.
struct BenchmarkProgram {
  std::string Name;     ///< e.g. "modPow1_unsafe".
  std::string Category; ///< "MicroBench", "STAC", "Literature", "TableCT".
  std::string Source;   ///< Mini-language text (one function).
  /// The verdict the paper reports: Safe for *_safe, Attack for *_unsafe —
  /// except gpt14_unsafe, where the tool gives up (Unknown).
  VerdictKind Expected = VerdictKind::Safe;
  /// The expected --ct classification; CtUnknown for the Table-1 suite
  /// (whose pairs were not designed around exact-equality) and a real
  /// CtSafe/CtUnsafe expectation for the TableCT family.
  CtVerdict ExpectedCt = CtVerdict::CtUnknown;

  /// Observer model + budgets for this benchmark (per §6.1).
  BlazerOptions options() const;

  /// Compiles the source (aborts on error — the suite is fixed).
  CfgFunction compile() const;
};

/// All 24 benchmarks, in Table-1 order.
const std::vector<BenchmarkProgram> &allBenchmarks();

/// The TableCT crypto-kernel family: three safe/unsafe pairs written
/// around the strict --ct verdict (square-and-multiply modexp vs the
/// blinded variant, early-exit vs constant-time comparison, and
/// secret-scan table lookup vs masked full-scan select). Kept out of
/// allBenchmarks() so the Table-1 suite and its 24-count invariants are
/// untouched; findBenchmark searches both registries.
const std::vector<BenchmarkProgram> &tableCtBenchmarks();

/// Compiles and analyzes \p B under \p Limits (merged into the benchmark's
/// own options). A tripped budget shows up as Degradation.tripped() on the
/// result with an Unknown verdict — the Table-1 "T/O" row — instead of an
/// unbounded run. \p Jobs is the analysis worker-thread count (1 =
/// sequential, 0 = hardware concurrency); see BlazerOptions::Jobs.
/// \p Engine maps to BlazerOptions::Engine (domain mode, fixpoint
/// scheduler, closure policy, trail-cache switch); \p SharedCache (may be
/// null) to BlazerOptions::SharedTrailCache, letting bench drivers keep
/// one cache warm across repeated runs of the same benchmark.
BlazerResult runBenchmark(const BenchmarkProgram &B,
                          const BudgetLimits &Limits = {}, int Jobs = 1,
                          EngineConfig Engine = {},
                          std::shared_ptr<TrailBoundCache> SharedCache = nullptr);

/// Lookup by name; null when absent.
const BenchmarkProgram *findBenchmark(const std::string &Name);

} // namespace blazer

#endif // BLAZER_BENCHMARKS_BENCHMARKS_H
