//===- BoundAnalysis.cpp - Symbolic running-time bounds per trail ---------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundAnalysis.h"

#include "absint/Wto.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>
#include <sstream>

using namespace blazer;

BoundRange TrailBoundResult::range() const {
  assert(Hi && "range() without an upper bound");
  return BoundRange(Lo, *Hi);
}

std::string TrailBoundResult::str() const {
  if (!Feasible)
    return "<infeasible>";
  return "[" + Lo.str() + ", " + (Hi ? Hi->str() : "?") + "]";
}

/// Projects the engine-level knobs onto the per-analyzer switches (the
/// diagnostic flags stay at their defaults — only tests/bench set those).
static AnalyzerConfig analyzerConfig(const EngineConfig &E) {
  AnalyzerConfig C;
  C.UseWto = E.Fixpoint == FixpointSched::Wto;
  C.ArcCache = E.ArcCache;
  C.PooledContext = E.PooledFixpointCtx;
  return C;
}

BoundAnalysis::BoundAnalysis(const CfgFunction &Fn,
                             std::map<std::string, int64_t> InputPins,
                             ThreadPool *PoolIn, TrailBoundCache *CacheIn,
                             EngineConfig EngineIn)
    : F(Fn), A(EdgeAlphabet::forFunction(Fn)), Env(Fn, std::move(InputPins)),
      Engine(EngineIn), Costs(Fn, Engine.Cost),
      Az(Fn, Env, analyzerConfig(EngineIn)),
      IntAz(Fn, Env, analyzerConfig(EngineIn)), Pool(PoolIn),
      Cache(CacheIn) {
  if (!Cache)
    return;
  // Everything a TrailBoundResult depends on besides the trail language:
  // the function's identity and shape, the cost of every block (the
  // selected cost model applied to its instructions), the pinned inputs,
  // the fixpoint scheduler, the domain mode, and the cost-model spec
  // itself (per-block costs under two different weight tables can
  // coincide on small functions, so the spec is salted explicitly —
  // cached bounds never leak across models). Two functions agreeing on all
  // of this and on a trail's canonical DFA necessarily get the same
  // bounds, so sharing a cache across drivers is sound. (The schedulers
  // and the cascade/zone-only modes are expected to agree too, but salting
  // by both keeps A/B runs honest: a FIFO or cascade run never serves
  // entries computed under the other configuration, so a differential test
  // actually exercises both engines.)
  std::ostringstream Salt;
  Salt << F.Name << '/' << F.blockCount() << '/' << F.Entry << '/' << F.Exit;
  for (const BasicBlock &B : F.Blocks)
    Salt << ',' << Costs.blockCost(B);
  Salt << ';';
  for (const Edge &E : F.edges())
    Salt << E.From << '>' << E.To << ' ';
  Salt << ';';
  for (const auto &[Sym, Val] : Env.inputPins())
    Salt << Sym << '=' << Val << ' ';
  Salt << ';' << fixpointSchedName(Engine.Fixpoint);
  Salt << ';' << domainModeName(Engine.Domain);
  Salt << ";cost=" << Engine.Cost.str();
  Salt << ";arc=" << (Engine.ArcCache ? "on" : "off");
  Salt << ";ctx=" << (Engine.PooledFixpointCtx ? "pooled" : "fresh");
  Salt << '@';
  CacheSalt = Salt.str();
}

FixpointStats BoundAnalysis::fixpointStats() const {
  FixpointStats S;
  S.Pops = Stats.Pops.load(std::memory_order_relaxed);
  S.Joins = Stats.Joins.load(std::memory_order_relaxed);
  S.Widenings = Stats.Widenings.load(std::memory_order_relaxed);
  S.TransferHits = Stats.TransferHits.load(std::memory_order_relaxed);
  S.TransferMisses = Stats.TransferMisses.load(std::memory_order_relaxed);
  S.Sweeps = Stats.Sweeps.load(std::memory_order_relaxed);
  S.SweepTransferHits =
      Stats.SweepTransferHits.load(std::memory_order_relaxed);
  S.SweepTransferMisses =
      Stats.SweepTransferMisses.load(std::memory_order_relaxed);
  S.ArcHits = Stats.ArcHits.load(std::memory_order_relaxed);
  S.ArcMisses = Stats.ArcMisses.load(std::memory_order_relaxed);
  S.ArcBytes = Stats.ArcBytes.load(std::memory_order_relaxed);
  S.CtxHits = Stats.CtxHits.load(std::memory_order_relaxed);
  S.CtxMisses = Stats.CtxMisses.load(std::memory_order_relaxed);
  S.BatchPasses = Stats.BatchPasses.load(std::memory_order_relaxed);
  S.BatchedNodes = Stats.BatchedNodes.load(std::memory_order_relaxed);
  S.CmpFastHits = Stats.CmpFastHits.load(std::memory_order_relaxed);
  S.CmpFastMisses = Stats.CmpFastMisses.load(std::memory_order_relaxed);
  S.ArcVerifyMismatches =
      Stats.ArcVerifyMismatches.load(std::memory_order_relaxed);
  S.JoinNanos = Stats.JoinNanos.load(std::memory_order_relaxed);
  S.TransferNanos = Stats.TransferNanos.load(std::memory_order_relaxed);
  S.WidenNanos = Stats.WidenNanos.load(std::memory_order_relaxed);
  return S;
}

CascadeStats BoundAnalysis::cascadeStats() const {
  CascadeStats S;
  S.Discharged = Casc.Discharged.load(std::memory_order_relaxed);
  S.Promoted = Casc.Promoted.load(std::memory_order_relaxed);
  S.IntervalPops = Casc.IntervalPops.load(std::memory_order_relaxed);
  return S;
}

void BoundAnalysis::accumulateStats(const FixpointStats &S) const {
  Stats.Pops.fetch_add(S.Pops, std::memory_order_relaxed);
  Stats.Joins.fetch_add(S.Joins, std::memory_order_relaxed);
  Stats.Widenings.fetch_add(S.Widenings, std::memory_order_relaxed);
  Stats.TransferHits.fetch_add(S.TransferHits, std::memory_order_relaxed);
  Stats.TransferMisses.fetch_add(S.TransferMisses,
                                 std::memory_order_relaxed);
  Stats.Sweeps.fetch_add(S.Sweeps, std::memory_order_relaxed);
  Stats.SweepTransferHits.fetch_add(S.SweepTransferHits,
                                    std::memory_order_relaxed);
  Stats.SweepTransferMisses.fetch_add(S.SweepTransferMisses,
                                      std::memory_order_relaxed);
  Stats.ArcHits.fetch_add(S.ArcHits, std::memory_order_relaxed);
  Stats.ArcMisses.fetch_add(S.ArcMisses, std::memory_order_relaxed);
  Stats.ArcBytes.fetch_add(S.ArcBytes, std::memory_order_relaxed);
  Stats.CtxHits.fetch_add(S.CtxHits, std::memory_order_relaxed);
  Stats.CtxMisses.fetch_add(S.CtxMisses, std::memory_order_relaxed);
  Stats.BatchPasses.fetch_add(S.BatchPasses, std::memory_order_relaxed);
  Stats.BatchedNodes.fetch_add(S.BatchedNodes, std::memory_order_relaxed);
  Stats.CmpFastHits.fetch_add(S.CmpFastHits, std::memory_order_relaxed);
  Stats.CmpFastMisses.fetch_add(S.CmpFastMisses,
                                std::memory_order_relaxed);
  Stats.ArcVerifyMismatches.fetch_add(S.ArcVerifyMismatches,
                                      std::memory_order_relaxed);
  Stats.JoinNanos.fetch_add(S.JoinNanos, std::memory_order_relaxed);
  Stats.TransferNanos.fetch_add(S.TransferNanos, std::memory_order_relaxed);
  Stats.WidenNanos.fetch_add(S.WidenNanos, std::memory_order_relaxed);
}

Dfa BoundAnalysis::mostGeneralTrail() const { return Dfa::fromCfg(F, A); }

namespace {

int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0 && "divisor must be positive");
  int64_t Q = A / B;
  if (A % B != 0 && A < 0)
    --Q;
  return Q;
}

/// A lower bound plus an optional upper bound — the DP value flowing
/// through the region computation.
struct RB {
  Bound Lo = Bound::lower(CostPoly());
  std::optional<Bound> Hi = Bound::upper(CostPoly());
  std::string Note;

  static RB exact(const CostPoly &P) {
    RB R;
    R.Lo = Bound::lower(P);
    R.Hi = Bound::upper(P);
    return R;
  }
  static RB unknownUpper(Bound Lo, std::string Note) {
    RB R;
    R.Lo = std::move(Lo);
    R.Hi.reset();
    R.Note = std::move(Note);
    return R;
  }

  RB plus(const RB &O) const {
    RB R;
    R.Lo = Lo + O.Lo;
    if (Hi && O.Hi)
      R.Hi = *Hi + *O.Hi;
    else
      R.Hi.reset();
    R.Note = Note.empty() ? O.Note : Note;
    return R;
  }
  void mergeWith(const RB &O) {
    Lo.merge(O.Lo);
    if (Hi && O.Hi)
      Hi->merge(*O.Hi);
    else {
      if (Note.empty())
        Note = O.Note;
      Hi.reset();
    }
  }
};

/// Per-iteration delta of one DBM variable relative to its value at the
/// loop header: unreached, a known constant, or unknown.
struct Delta {
  enum class Kind { Unreached, Known, Unknown };
  Kind K = Kind::Unreached;
  int64_t C = 0;

  static Delta known(int64_t C) { return Delta{Kind::Known, C}; }
  static Delta unknown() { return Delta{Kind::Unknown, 0}; }

  Delta joined(const Delta &O) const {
    if (K == Kind::Unreached)
      return O;
    if (O.K == Kind::Unreached)
      return *this;
    if (K == Kind::Known && O.K == Kind::Known && C == O.C)
      return *this;
    return unknown();
  }
  bool same(const Delta &O) const { return K == O.K && C == O.C; }
};

using DeltaState = std::vector<Delta>; ///< Indexed by DBM var (1-based -1).

/// The whole per-trail computation: pruned product graph + recursive region
/// folding. Templated over the numeric domain: zones under cascade and
/// zone-only modes, boxes under interval-only (where weaker invariants may
/// cost upper bounds, never soundness).
template <class Domain> class RegionEngine {
public:
  RegionEngine(const CfgFunction &F, const VarEnv &Env,
               const AnalyzerT<Domain> &Az, const ProductGraph &G,
               const AnalysisResultT<Domain> &AR, ThreadPool *Pool,
               const CostEvaluator &Costs)
      : F(F), Env(Env), Az(Az), G(G), AR(AR), Pool(Pool), Costs(Costs) {
    buildPrunedGraph();
  }

  bool entryAlive() const {
    return !G.empty() && Alive[G.entry()];
  }

  /// Bounds over complete paths entry -> accepting nodes.
  RB run() {
    std::vector<char> All(G.size(), 0);
    for (size_t I = 0; I < G.size(); ++I)
      All[I] = Alive[I];
    std::set<int> Entries = {G.entry()};
    std::set<int> Accepts;
    for (int Acc : G.accepts())
      if (Alive[Acc])
        Accepts.insert(Acc);
    return regionBounds(All, Entries, Accepts, 0);
  }

private:
  //===------------------------------------------------------------------===//
  // Pruning
  //===------------------------------------------------------------------===//

  void buildPrunedGraph() {
    size_t N = G.size();
    Alive.assign(N, 0);
    Succs.assign(N, {});
    Preds.assign(N, {});
    if (G.empty())
      return;

    // An arc is feasible when the abstract state propagated along it is not
    // bottom. Each per-node transfer is independent (the analyzer is
    // stateless and every iteration writes only its own slot), so the
    // sweep — the hot loop of one trail query — fans out over the pool.
    std::vector<std::vector<std::pair<int, Edge>>> Feasible(N);
    parallelForWithBudget(Pool, N, [&](size_t Id) {
      if (!AR.Feasible[Id])
        return;
      for (const ProductGraph::Arc &Arc : G.successors(Id)) {
        if (!AR.Feasible[Arc.To])
          continue;
        Domain Along = Az.transferEdge(AR.EntryState[Id], Arc.CfgEdge);
        if (Along.isBottom())
          continue;
        Feasible[Id].push_back({Arc.To, Arc.CfgEdge});
      }
    });
    // Forward reachability from the entry over feasible arcs...
    std::vector<char> Fwd(N, 0);
    if (AR.Feasible[G.entry()]) {
      std::deque<int> Work = {G.entry()};
      Fwd[G.entry()] = 1;
      while (!Work.empty()) {
        int Id = Work.front();
        Work.pop_front();
        for (const auto &[To, E] : Feasible[Id]) {
          (void)E;
          if (!Fwd[To]) {
            Fwd[To] = 1;
            Work.push_back(To);
          }
        }
      }
    }
    // ...then backward from accepting nodes.
    std::vector<std::vector<int>> RevAdj(N);
    for (size_t Id = 0; Id < N; ++Id)
      for (const auto &[To, E] : Feasible[Id]) {
        (void)E;
        RevAdj[To].push_back(static_cast<int>(Id));
      }
    std::vector<char> Bwd(N, 0);
    std::deque<int> Work;
    for (int Acc : G.accepts())
      if (Fwd[Acc]) {
        Bwd[Acc] = 1;
        Work.push_back(Acc);
      }
    while (!Work.empty()) {
      int Id = Work.front();
      Work.pop_front();
      for (int P : RevAdj[Id])
        if (Fwd[P] && !Bwd[P]) {
          Bwd[P] = 1;
          Work.push_back(P);
        }
    }
    for (size_t Id = 0; Id < N; ++Id)
      Alive[Id] = Fwd[Id] && Bwd[Id];
    for (size_t Id = 0; Id < N; ++Id) {
      if (!Alive[Id])
        continue;
      for (const auto &[To, E] : Feasible[Id]) {
        if (!Alive[To])
          continue;
        Succs[Id].push_back({To, E});
        Preds[To].push_back(static_cast<int>(Id));
      }
    }
  }

  int64_t nodeCost(int Id) const {
    return Costs.blockCost(F.block(G.node(Id).Block));
  }

  //===------------------------------------------------------------------===//
  // Region folding
  //===------------------------------------------------------------------===//

  /// Tarjan SCCs of the subgraph induced by \p InRegion, emitted in reverse
  /// topological order (successor components first). Delegates to the
  /// shared scheduling utility; seeds in ascending id order reproduce the
  /// historical emission order exactly.
  std::vector<std::vector<int>>
  sccsOf(const std::vector<char> &InRegion) const {
    return tarjanSccs(
        G.size(), &InRegion, /*Seeds=*/nullptr,
        [&](int V) { return Succs[V].size(); },
        [&](int V, size_t I) { return Succs[V][I].first; });
  }

  bool hasSelfArc(int Id) const {
    for (const auto &[To, E] : Succs[Id]) {
      (void)E;
      if (To == Id)
        return true;
    }
    return false;
  }

  RB regionBounds(const std::vector<char> &InRegion,
                  const std::set<int> &Entries, const std::set<int> &Accepts,
                  int Depth) {
    if (AnalysisBudget *B = BudgetScope::current(); B && !B->checkpoint())
      return RB::unknownUpper(Bound::lower(CostPoly()),
                              B->reason().str());
    if (Depth > 32)
      return RB::unknownUpper(Bound::lower(CostPoly()),
                              "loop nest too deep");
    if (Accepts.empty())
      return RB::exact(CostPoly()); // No complete path: contributes nothing.

    std::vector<std::vector<int>> Sccs = sccsOf(InRegion);
    // Tarjan emits successors first; process in reverse for topo order.
    std::reverse(Sccs.begin(), Sccs.end());

    // Map node -> scc id.
    std::map<int, int> SccOf;
    for (size_t C = 0; C < Sccs.size(); ++C)
      for (int N : Sccs[C])
        SccOf[N] = static_cast<int>(C);

    std::vector<std::optional<RB>> In(Sccs.size());
    std::vector<std::optional<RB>> Out(Sccs.size());
    std::optional<RB> Result;
    RB Zero = RB::exact(CostPoly());

    for (size_t C = 0; C < Sccs.size(); ++C) {
      const std::vector<int> &Comp = Sccs[C];
      bool Loop = Comp.size() > 1 || hasSelfArc(Comp[0]);

      // Gather In[C]: empty path if C holds an entry; otherwise merged
      // predecessor Out values.
      std::optional<RB> InC;
      for (int N : Comp)
        if (Entries.count(N)) {
          if (!InC)
            InC = Zero;
          else
            InC->mergeWith(Zero);
        }
      for (int N : Comp) {
        for (int P : Preds[N]) {
          if (!InRegion[P] || SccOf.at(P) == static_cast<int>(C))
            continue;
          const std::optional<RB> &PredOut = Out[SccOf.at(P)];
          if (!PredOut)
            continue; // Predecessor unreachable within region.
          if (!InC)
            InC = *PredOut;
          else
            InC->mergeWith(*PredOut);
        }
      }
      In[C] = InC;
      if (!InC) {
        Out[C] = std::nullopt;
        continue;
      }

      RB Weight = Loop ? loopBounds(Comp, InRegion, Entries, Depth)
                       : RB::exact(CostPoly::constant(nodeCost(Comp[0])));
      Out[C] = InC->plus(Weight);

      // Accepting nodes inside C terminate paths here.
      for (int N : Comp) {
        if (!Accepts.count(N))
          continue;
        RB Contribution;
        if (!Loop) {
          Contribution = *Out[C];
        } else {
          // A path may stop mid-loop: sound lower bound is one header
          // visit; the upper bound of the full loop still covers it.
          RB Partial;
          Partial.Lo = Bound::lower(CostPoly::constant(nodeCost(Comp[0])));
          Partial.Hi = Weight.Hi;
          Partial.Note = Weight.Note;
          Contribution = InC->plus(Partial);
        }
        if (!Result)
          Result = Contribution;
        else
          Result->mergeWith(Contribution);
      }
    }
    if (!Result)
      return RB::unknownUpper(Bound::lower(CostPoly()),
                              "no accepting path in region");
    return *Result;
  }

  /// Bounds one non-trivial SCC \p Comp.
  ///
  /// Iterations are counted at a *counting node* X: a branch in the SCC
  /// with exactly one in-SCC successor and at least one exit, whose guard
  /// matches a trip-count lemma. X is normally the SCC's entry header, but
  /// trail restrictions can unroll the first iteration and rotate the loop
  /// so that the entry lands mid-body — then the guard node elsewhere in
  /// the SCC serves as X and the bound composes prefix / rotation segments.
  RB loopBounds(const std::vector<int> &Comp,
                const std::vector<char> &InRegion,
                const std::set<int> &RegionEntries, int Depth) {
    std::set<int> CSet(Comp.begin(), Comp.end());

    // Identify the unique entry header: target of arcs from outside the
    // SCC (within the region) or a designated region entry.
    std::set<int> Headers;
    for (int N : Comp) {
      if (RegionEntries.count(N))
        Headers.insert(N);
      for (int P : Preds[N])
        if (InRegion[P] && !CSet.count(P))
          Headers.insert(N);
    }
    Bound MinLo = Bound::lower(CostPoly::constant(minNodeCost(Comp)));
    if (Headers.size() != 1)
      return RB::unknownUpper(MinLo, "irreducible loop (multiple headers)");
    int H = *Headers.begin();

    auto InSccSuccs = [&](int N) {
      std::vector<std::pair<int, Edge>> Out;
      for (const auto &[To, E] : Succs[N])
        if (CSet.count(To))
          Out.push_back({To, E});
      return Out;
    };
    auto HasExit = [&](int N) {
      for (const auto &[To, E] : Succs[N]) {
        (void)E;
        if (!CSet.count(To))
          return true;
      }
      return false;
    };

    // Choose the counting node: prefer the entry header, then scan the
    // other SCC nodes in id order.
    std::vector<int> Candidates = {H};
    {
      std::vector<int> Rest(Comp.begin(), Comp.end());
      std::sort(Rest.begin(), Rest.end());
      for (int N : Rest)
        if (N != H)
          Candidates.push_back(N);
    }
    int X = -1;
    std::optional<CostPoly> TripHi, TripLo;
    bool MayBeSkipped = true;
    std::string Why = "no counting node with a matching lemma";
    for (int Cand : Candidates) {
      if (F.block(G.node(Cand).Block).Term != BasicBlock::TermKind::Branch)
        continue;
      std::vector<std::pair<int, Edge>> InSucc = InSccSuccs(Cand);
      if (InSucc.size() != 1 || !HasExit(Cand))
        continue;
      bool EarlyExitAtCand = false;
      for (int N : Comp)
        if (N != Cand && HasExit(N))
          EarlyExitAtCand = true;
      std::optional<CostPoly> Hi2, Lo2;
      bool Skip2 = true;
      std::string Why2;
      deriveTrips(Comp, CSet, Cand, InSucc[0].second,
                  /*AllowTripLo=*/Cand == H && !EarlyExitAtCand, Hi2, Lo2,
                  Skip2, Why2);
      if (Hi2) {
        X = Cand;
        TripHi = Hi2;
        TripLo = Lo2;
        MayBeSkipped = Skip2;
        break;
      }
      if (!Why2.empty())
        Why = Why2;
    }
    if (X < 0)
      return RB::unknownUpper(MinLo, Why);

    CostPoly XCost = CostPoly::constant(nodeCost(X));
    bool EarlyExit = false;
    for (int N : Comp)
      if (N != X && HasExit(N))
        EarlyExit = true;

    // Sub-region: the SCC without the counting node.
    std::vector<char> BodyRegion(G.size(), 0);
    for (int N : Comp)
      if (N != X)
        BodyRegion[N] = 1;
    std::set<int> BodyEntries, BodyAccepts;
    for (const auto &[To, E] : Succs[X]) {
      (void)E;
      if (CSet.count(To) && To != X)
        BodyEntries.insert(To);
    }
    for (int P : Preds[X])
      if (CSet.count(P) && P != X)
        BodyAccepts.insert(P);

    if (X == H) {
      // Classic while-shaped loop: body runs between consecutive header
      // visits.
      RB BodyRB = RB::exact(CostPoly());
      if (!BodyEntries.empty())
        BodyRB = regionBounds(BodyRegion, BodyEntries, BodyAccepts,
                              Depth + 1);
      RB W;
      if (TripLo) {
        const CostPoly &T = *TripLo;
        W.Lo = (BodyRB.Lo * T) + (XCost * (T + CostPoly::constant(1)));
      } else {
        W.Lo = Bound::lower(XCost);
      }
      if (EarlyExit)
        W.Lo.merge(Bound::lower(XCost));

      if (BodyRB.Hi) {
        // The zero-trip fallback covers inputs where the trip polynomial
        // would go negative; it is omitted when the preheader state proves
        // the loop always runs at least once.
        std::vector<CostPoly> TripCandidates = {*TripHi};
        if (MayBeSkipped)
          TripCandidates.push_back(CostPoly());
        Bound Hi = Bound::upper(CostPoly());
        bool First = true;
        for (const CostPoly &T : TripCandidates) {
          Bound Candidate =
              (*BodyRB.Hi * T) + (XCost * (T + CostPoly::constant(1)));
          if (First) {
            Hi = Candidate;
            First = false;
          } else {
            Hi.merge(Candidate);
          }
        }
        if (EarlyExit)
          Hi = Hi + *BodyRB.Hi; // One partial pass before the exit.
        W.Hi = Hi;
      } else {
        W.Hi.reset();
        W.Note = BodyRB.Note;
      }
      return W;
    }

    // Rotated loop: paths run a prefix segment H -> X, then at most TripHi
    // full rotations at X. Every segment (prefix, rotation, final partial)
    // is a path through the SCC-minus-X region, so:
    //   cost <= Seg.Hi * (TripHi + 2) + XCost * (TripHi + 1).
    std::set<int> SegEntries = BodyEntries;
    SegEntries.insert(H);
    std::set<int> SegAccepts = BodyAccepts;
    for (int N : Comp)
      if (N != X && HasExit(N))
        SegAccepts.insert(N);
    RB SegRB = RB::exact(CostPoly());
    if (!SegEntries.empty() && !SegAccepts.empty())
      SegRB = regionBounds(BodyRegion, SegEntries, SegAccepts, Depth + 1);

    RB W;
    W.Lo = MinLo; // Weak but sound: the SCC is entered at all.
    if (SegRB.Hi) {
      const CostPoly &T = *TripHi;
      Bound Hi = (*SegRB.Hi * (T + CostPoly::constant(2))) +
                 (XCost * (T + CostPoly::constant(1)));
      // Trips may be zero-clamped: cover the T=0 instantiation too.
      if (MayBeSkipped)
        Hi.merge((*SegRB.Hi * CostPoly::constant(2)) + XCost);
      W.Hi = Hi;
    } else {
      W.Hi.reset();
      W.Note = SegRB.Note;
    }
    return W;
  }

  int64_t minNodeCost(const std::vector<int> &Comp) const {
    int64_t Min = nodeCost(Comp[0]);
    for (int N : Comp)
      Min = std::min(Min, nodeCost(N));
    return Min;
  }

  //===------------------------------------------------------------------===//
  // Trip-count lemmas
  //===------------------------------------------------------------------===//

  void deriveTrips(const std::vector<int> &Comp, const std::set<int> &CSet,
                   int H, const Edge &ContinueEdge, bool AllowTripLo,
                   std::optional<CostPoly> &TripHi,
                   std::optional<CostPoly> &TripLo, bool &MayBeSkipped,
                   std::string &Why) {
    const BasicBlock &HB = F.block(G.node(H).Block);
    assert(HB.Term == BasicBlock::TermKind::Branch &&
           "counting node must be a branch");
    if (HB.TrueSucc == HB.FalseSucc) {
      Why = "degenerate branch";
      return;
    }
    bool ContinuePositive = ContinueEdge.To == HB.TrueSucc;

    // Guard value at loop entry, from the preheader states.
    Domain Pre = preheaderState(CSet, H);
    if (Pre.isBottom()) {
      Why = "no feasible loop entry state";
      return;
    }

    // Canonical continue guard: G <= 0.
    std::optional<LinForm> Guard =
        canonicalGuard(HB.Cond, ContinuePositive);
    if (!Guard)
      Guard = canonicalGuardNe(HB.Cond, ContinuePositive, Pre, Comp, CSet,
                               H);
    if (!Guard) {
      Why = "loop guard is not a linear comparison";
      return;
    }

    // Per-iteration delta of the guard.
    std::optional<int64_t> GDelta = guardDelta(*Guard, Comp, CSet, H);
    if (!GDelta) {
      Why = "guard progress is not a constant per iteration";
      return;
    }
    if (*GDelta <= 0) {
      Why = "guard does not progress toward exit";
      return;
    }
    int64_t Gd = *GDelta;
    std::optional<CostPoly> G0Lo = polyLower(Pre, *Guard);
    std::optional<CostPoly> G0Hi = polyUpper(Pre, *Guard);

    // Can the loop be skipped (zero body executions)? Only if the guard can
    // start positive; the zone's numeric evaluation often refutes that.
    MayBeSkipped = true;
    if (auto NumericHi = Env.evalUpper(Pre, *Guard))
      if (*NumericHi <= 0)
        MayBeSkipped = false;

    // T = max(0, floor(-G0 / g) + 1).
    if (G0Lo) {
      if (Gd == 1) {
        TripHi = (CostPoly() - *G0Lo) + CostPoly::constant(1);
      } else if (G0Lo->isConstant()) {
        TripHi = CostPoly::constant(
            std::max<int64_t>(0, floorDiv(-G0Lo->constantTerm(), Gd) + 1));
      } else {
        // g >= 2 with a symbolic start: -G0 + 1 still dominates the trips.
        TripHi = (CostPoly() - *G0Lo) + CostPoly::constant(1);
      }
    } else {
      Why = "loop entry value of the guard is unbounded";
    }

    // Lower trip bound only when the header guard is the sole way out.
    if (AllowTripLo && G0Hi) {
      if (Gd == 1)
        TripLo = (CostPoly() - *G0Hi) + CostPoly::constant(1);
      else if (G0Hi->isConstant())
        TripLo = CostPoly::constant(
            std::max<int64_t>(0, floorDiv(-G0Hi->constantTerm(), Gd) + 1));
      // Symbolic start with g >= 2: leave TripLo unset (trips >= 0 anyway).
    }
  }

  /// Builds the linear form G with "continue iff G <= 0" from the header
  /// branch condition.
  std::optional<LinForm> canonicalGuard(const Expr *Cond,
                                        bool Positive) const {
    const auto *B = dyn_cast<BinaryExpr>(Cond);
    if (!B)
      return std::nullopt;
    BinaryOp Op = B->Op;
    if (!Positive) {
      switch (Op) {
      case BinaryOp::Lt:
        Op = BinaryOp::Ge;
        break;
      case BinaryOp::Le:
        Op = BinaryOp::Gt;
        break;
      case BinaryOp::Gt:
        Op = BinaryOp::Le;
        break;
      case BinaryOp::Ge:
        Op = BinaryOp::Lt;
        break;
      default:
        return std::nullopt;
      }
    }
    auto L = Env.parseLinear(B->Lhs.get());
    auto R = Env.parseLinear(B->Rhs.get());
    if (!L || !R)
      return std::nullopt;
    LinForm Diff = *L;
    Diff.Const -= R->Const;
    for (const auto &[V, C] : R->Coeffs)
      Diff.add(V, -C);
    LinForm Neg;
    Neg.Const = -Diff.Const;
    for (const auto &[V, C] : Diff.Coeffs)
      Neg.add(V, -C);
    switch (Op) {
    case BinaryOp::Lt: // L - R < 0  ==  (L - R + 1) <= 0
      Diff.Const += 1;
      return Diff;
    case BinaryOp::Le:
      return Diff;
    case BinaryOp::Gt: // R - L + 1 <= 0
      Neg.Const += 1;
      return Neg;
    case BinaryOp::Ge:
      return Neg;
    default:
      return std::nullopt;
    }
  }

  /// The disequality lemma: "continue while L != R" behaves like a strict
  /// comparison when the difference moves by exactly one unit per
  /// iteration (it cannot step over zero) and the preheader state fixes
  /// its starting side. \returns the canonical G (continue iff G <= 0).
  std::optional<LinForm> canonicalGuardNe(const Expr *Cond, bool Positive,
                                          const Domain &Pre,
                                          const std::vector<int> &Comp,
                                          const std::set<int> &CSet, int H) {
    const auto *B = dyn_cast<BinaryExpr>(Cond);
    if (!B)
      return std::nullopt;
    BinaryOp Op = B->Op;
    if (!Positive) {
      if (Op == BinaryOp::Eq)
        Op = BinaryOp::Ne;
      else
        return std::nullopt;
    }
    if (Op != BinaryOp::Ne)
      return std::nullopt;
    auto L = Env.parseLinear(B->Lhs.get());
    auto R = Env.parseLinear(B->Rhs.get());
    if (!L || !R)
      return std::nullopt;
    LinForm Diff = *L;
    Diff.Const -= R->Const;
    for (const auto &[V, C] : R->Coeffs)
      Diff.add(V, -C);

    std::optional<int64_t> D = guardDelta(Diff, Comp, CSet, H);
    if (!D)
      return std::nullopt;
    if (*D == 1) {
      // Approaching zero from below: need Diff <= 0 at entry.
      auto Hi = Env.evalUpper(Pre, Diff);
      if (!Hi || *Hi > 0)
        return std::nullopt;
      LinForm G = Diff;
      G.Const += 1; // Continue while Diff <= -1, exit exactly at 0.
      return G;
    }
    if (*D == -1) {
      // Approaching zero from above: need Diff >= 0 at entry.
      auto Lo = Env.evalLower(Pre, Diff);
      if (!Lo || *Lo < 0)
        return std::nullopt;
      LinForm G;
      G.Const = -Diff.Const + 1;
      for (const auto &[V, C] : Diff.Coeffs)
        G.add(V, -C);
      return G;
    }
    return std::nullopt;
  }

  /// Per-iteration constant delta of \p Guard around the loop, via the
  /// seeding-style delta dataflow within the SCC.
  std::optional<int64_t> guardDelta(const LinForm &Guard,
                                    const std::vector<int> &Comp,
                                    const std::set<int> &CSet, int H) {
    int NV = Env.numVars();
    auto MakeZero = [&] {
      return DeltaState(NV + 1, Delta::known(0));
    };
    std::map<int, DeltaState> Entry;
    Entry[H] = MakeZero();

    auto TransferBlock = [&](DeltaState D, int Block) {
      for (const Instr &I : F.block(Block).Instrs) {
        if (I.K != Instr::Kind::Assign)
          continue;
        int V = Env.indexOf(I.Dest);
        if (V < 0)
          continue;
        Delta New = Delta::unknown();
        if (I.Value) {
          if (auto L = Env.parseLinear(I.Value)) {
            if (L->Coeffs.size() == 1 && L->Coeffs.begin()->first == V &&
                L->Coeffs.begin()->second == 1 &&
                D[V].K == Delta::Kind::Known)
              New = Delta::known(D[V].C + L->Const);
          }
        }
        D[V] = New;
      }
      return D;
    };

    // Fixpoint over in-SCC arcs that do not re-enter the header, iterated
    // in reverse postorder from the header (shared scheduling utility):
    // the join is monotone and order-independent, so the least fixpoint is
    // unchanged, but a topological-ish order converges in far fewer
    // rounds than the arbitrary Tarjan pop order of Comp.
    std::vector<std::vector<int>> SubAdj(G.size());
    for (int N : Comp)
      for (const auto &[To, E] : Succs[N]) {
        (void)E;
        if (CSet.count(To) && To != H)
          SubAdj[N].push_back(To);
      }
    std::vector<int> Order = reversePostorder(SubAdj, H);
    bool Changed = true;
    int Guard2 = 0;
    while (Changed && ++Guard2 < 1000) {
      Changed = false;
      for (int N : Order) {
        auto It = Entry.find(N);
        if (It == Entry.end())
          continue;
        DeltaState Out = TransferBlock(It->second, G.node(N).Block);
        for (const auto &[To, E] : Succs[N]) {
          (void)E;
          if (!CSet.count(To) || To == H)
            continue;
          auto ToIt = Entry.find(To);
          if (ToIt == Entry.end()) {
            Entry[To] = Out;
            Changed = true;
            continue;
          }
          DeltaState Joined = ToIt->second;
          bool Moved = false;
          for (int V = 0; V <= NV; ++V) {
            Delta J = Joined[V].joined(Out[V]);
            if (!J.same(Joined[V])) {
              Joined[V] = J;
              Moved = true;
            }
          }
          if (Moved) {
            ToIt->second = std::move(Joined);
            Changed = true;
          }
        }
      }
    }

    // Join the deltas carried by the back edges into the header.
    std::optional<DeltaState> Back;
    for (int N : Comp) {
      bool EdgesToH = false;
      for (const auto &[To, E] : Succs[N]) {
        (void)E;
        if (To == H && CSet.count(N))
          EdgesToH = true;
      }
      if (!EdgesToH)
        continue;
      auto It = Entry.find(N);
      if (It == Entry.end())
        continue; // Unreached back-edge source.
      DeltaState Out = TransferBlock(It->second, G.node(N).Block);
      if (!Back) {
        Back = std::move(Out);
        continue;
      }
      for (int V = 0; V <= NV; ++V)
        (*Back)[V] = (*Back)[V].joined(Out[V]);
    }
    if (!Back)
      return std::nullopt;

    int64_t Sum = 0;
    for (const auto &[V, C] : Guard.Coeffs) {
      const Delta &D = (*Back)[V];
      if (D.K != Delta::Kind::Known)
        return std::nullopt;
      Sum += C * D.C;
    }
    return Sum;
  }

  /// Join of the abstract states entering the loop from outside.
  Domain preheaderState(const std::set<int> &CSet, int H) {
    Domain Acc = Domain::bottom(Env.numVars());
    bool Any = false;
    for (int P : Preds[H]) {
      if (CSet.count(P))
        continue;
      for (const auto &[To, E] : Succs[P]) {
        if (To != H)
          continue;
        Acc.joinWith(Az.transferEdge(AR.EntryState[P], E));
        Any = true;
      }
    }
    if (!Any)
      return AR.EntryState[H]; // Header is the region entry; use its own
                               // (weaker) invariant.
    return Acc;
  }

  //===------------------------------------------------------------------===//
  // Symbolic projections of zone states
  //===------------------------------------------------------------------===//

  std::optional<CostPoly> varLowerPoly(const Domain &D, int V) const {
    if (Env.isInputSymbol(V))
      return CostPoly::variable(Env.displaySymbol(V));
    // Exact constant first (keeps polynomials free of incidental symbols).
    if (auto Lo = D.lowerOf(V))
      if (auto Hi = D.upperOfOpt(V))
        if (*Lo == *Hi)
          return CostPoly::constant(*Lo);
    for (int S = 1; S <= Env.numVars(); ++S) {
      if (S == V || !Env.isInputSymbol(S))
        continue;
      if (auto C = D.exactDifference(V, S))
        return CostPoly::variable(Env.displaySymbol(S)) +
               CostPoly::constant(*C);
    }
    if (auto Lo = D.lowerOf(V))
      return CostPoly::constant(*Lo);
    // One-sided relation to an input symbol: s - v <= c means v >= s - c.
    for (int S = 1; S <= Env.numVars(); ++S) {
      if (S == V || !Env.isInputSymbol(S))
        continue;
      int64_t C = D.bound(S, V);
      if (C != Domain::Inf)
        return CostPoly::variable(Env.displaySymbol(S)) -
               CostPoly::constant(C);
    }
    return std::nullopt;
  }

  std::optional<CostPoly> varUpperPoly(const Domain &D, int V) const {
    if (Env.isInputSymbol(V))
      return CostPoly::variable(Env.displaySymbol(V));
    // Exact constant first (keeps polynomials free of incidental symbols).
    if (auto Lo = D.lowerOf(V))
      if (auto Hi = D.upperOfOpt(V))
        if (*Lo == *Hi)
          return CostPoly::constant(*Hi);
    for (int S = 1; S <= Env.numVars(); ++S) {
      if (S == V || !Env.isInputSymbol(S))
        continue;
      if (auto C = D.exactDifference(V, S))
        return CostPoly::variable(Env.displaySymbol(S)) +
               CostPoly::constant(*C);
    }
    if (auto Hi = D.upperOfOpt(V))
      return CostPoly::constant(*Hi);
    // One-sided relation to an input symbol: v - s <= c means v <= s + c.
    for (int S = 1; S <= Env.numVars(); ++S) {
      if (S == V || !Env.isInputSymbol(S))
        continue;
      int64_t C = D.bound(V, S);
      if (C != Domain::Inf)
        return CostPoly::variable(Env.displaySymbol(S)) +
               CostPoly::constant(C);
    }
    return std::nullopt;
  }

  std::optional<CostPoly> polyLower(const Domain &D, const LinForm &L) const {
    CostPoly Sum = CostPoly::constant(L.Const);
    for (const auto &[V, C] : L.Coeffs) {
      std::optional<CostPoly> P =
          C > 0 ? varLowerPoly(D, V) : varUpperPoly(D, V);
      if (!P)
        return std::nullopt;
      Sum += *P * C;
    }
    return Sum;
  }

  std::optional<CostPoly> polyUpper(const Domain &D, const LinForm &L) const {
    CostPoly Sum = CostPoly::constant(L.Const);
    for (const auto &[V, C] : L.Coeffs) {
      std::optional<CostPoly> P =
          C > 0 ? varUpperPoly(D, V) : varLowerPoly(D, V);
      if (!P)
        return std::nullopt;
      Sum += *P * C;
    }
    return Sum;
  }

  const CfgFunction &F;
  const VarEnv &Env;
  const AnalyzerT<Domain> &Az;
  const ProductGraph &G;
  const AnalysisResultT<Domain> &AR;
  ThreadPool *Pool;
  const CostEvaluator &Costs;

  std::vector<char> Alive;
  std::vector<std::vector<std::pair<int, Edge>>> Succs;
  std::vector<std::vector<int>> Preds;
};

} // namespace

TrailBoundResult BoundAnalysis::analyzeTrail(const Dfa &TrailDfa) const {
  FaultInjector *Faults = FaultScope::current();
  if (!Faults)
    return analyzeTrailMemo(TrailDfa);
  // Fault-recovery boundary. Every injection site below the trail level
  // (pool, kernels, cache protocol) unwinds to here with the structures it
  // crossed already cleaned up by their own RAII/abandon paths; the trail
  // site itself fires first so whole-trail loss is also exercised. One
  // retry with backoff for transient sites, then degrade: trip the budget
  // with fault provenance and return the same fail-soft shape a budget
  // trip produces (feasible, no upper bound), which the driver can only
  // turn into Unknown — never into Safe.
  for (int Attempt = 0;; ++Attempt) {
    try {
      maybeInjectFault(FaultSite::TrailAnalysis);
      return analyzeTrailMemo(TrailDfa);
    } catch (const InjectedFault &F) {
      if (Attempt == 0 && FaultInjector::transientSite(F.site())) {
        Faults->countRetry();
        FaultInjector::backoff(Attempt);
        continue;
      }
      Faults->countDegradation();
      if (AnalysisBudget *Budget = BudgetScope::current())
        Budget->tripFault(faultSiteName(F.site()));
      TrailBoundResult Res;
      Res.Feasible = true;
      Res.Lo = Bound::lower(CostPoly());
      Res.Hi.reset();
      Res.Note = F.what();
      return Res;
    }
  }
}

TrailBoundResult BoundAnalysis::analyzeTrailMemo(const Dfa &TrailDfa) const {
  if (!Cache)
    return analyzeTrailUncached(TrailDfa);
  AnalysisBudget *Budget = BudgetScope::current();
  if (Budget && Budget->exhausted())
    return analyzeTrailUncached(TrailDfa); // Degrades immediately; no entry.
  // The product construction and everything after it are invariant under
  // renumbering of the trail DFA's states (product nodes are interned in
  // discovery order and never consult raw state ids), so any two trails
  // with the same canonical key get byte-identical results — a cache hit
  // returns exactly what recomputation would have.
  return Cache->getOrCompute(
      CacheSalt + TrailDfa.canonicalKey(),
      [&]() -> std::pair<TrailBoundResult, bool> {
        TrailBoundResult R = analyzeTrailUncached(TrailDfa);
        // Fail-soft results reflect the tripped budget, not the trail;
        // caching one would leak Unknown into budget-free reruns.
        return {R, !(Budget && Budget->exhausted())};
      });
}

TrailBoundResult BoundAnalysis::analyzeTrailUncached(const Dfa &TrailDfa) const {
  AnalysisBudget *Budget = BudgetScope::current();
  // A tripped budget must yield "feasible with unknown upper bound", never
  // "infeasible": infeasible trails are treated as vacuously narrow by the
  // driver, which would turn resource exhaustion into an unsound Safe.
  auto Degraded = [&] {
    TrailBoundResult Res;
    Res.Feasible = true;
    Res.Lo = Bound::lower(CostPoly());
    Res.Hi.reset();
    Res.Note = Budget->reason().str();
    return Res;
  };
  if (Budget && Budget->exhausted())
    return Degraded();

  TrailBoundResult Res;
  ProductGraph G = ProductGraph::build(F, TrailDfa, A);
  if (Budget && Budget->exhausted())
    return Degraded(); // Truncated product: its emptiness means nothing.
  if (G.empty())
    return Res;

  // Interval-only mode: the box domain runs the whole pipeline. Weaker
  // invariants may cost upper bounds (more "?" results), never soundness.
  if (Engine.Domain == DomainMode::IntervalOnly) {
    IntervalAnalysisResult AR = IntAz.analyze(G);
    accumulateStats(AR.Stats);
    if (Budget && Budget->exhausted())
      return Degraded();
    RegionEngine<IntervalDomain> Eng(F, Env, IntAz, G, AR, Pool, Costs);
    if (!Eng.entryAlive())
      return Res;
    RB R = Eng.run();
    if (Budget && Budget->exhausted())
      return Degraded();
    Res.Feasible = true;
    Res.Lo = R.Lo;
    Res.Hi = R.Hi;
    Res.Note = R.Note;
    return Res;
  }

  // Cascade tier 1: run the O(n)-per-transfer interval fixpoint over the
  // same product schedule and test whether any accepting node stays
  // forward-reachable over interval-feasible arcs. If not, the trail is
  // infeasible — the zone invariants are included in the interval ones
  // node-for-node (same transfer structure, coarser lattice), so the
  // O(n^2)/O(n^3) zone run could only confirm the verdict and is skipped.
  // If yes, the interval run still pays for itself: nodes it proved
  // unreachable are pinned bottom in the zone fixpoint, which then never
  // pops, transfers, or joins them. Bounds always come from zones.
  std::vector<char> Dead;
  if (Engine.Domain == DomainMode::Cascade) {
    IntervalAnalysisResult IR = IntAz.analyze(G);
    Casc.IntervalPops.fetch_add(IR.Stats.Pops, std::memory_order_relaxed);
    // Interval-domain *work* counters stay out of the zone columns (that
    // is IntervalPops' job), but context-pool traffic is pool telemetry
    // regardless of which domain drew it: the pre-pass is what inserts a
    // trail's shape, so dropping its miss would make the pooled hit rate
    // read as 100% on every cold shape.
    Stats.CtxHits.fetch_add(IR.Stats.CtxHits, std::memory_order_relaxed);
    Stats.CtxMisses.fetch_add(IR.Stats.CtxMisses,
                              std::memory_order_relaxed);
    Stats.BatchPasses.fetch_add(IR.Stats.BatchPasses,
                                std::memory_order_relaxed);
    Stats.BatchedNodes.fetch_add(IR.Stats.BatchedNodes,
                                 std::memory_order_relaxed);
    Stats.CmpFastHits.fetch_add(IR.Stats.CmpFastHits,
                                std::memory_order_relaxed);
    Stats.CmpFastMisses.fetch_add(IR.Stats.CmpFastMisses,
                                  std::memory_order_relaxed);
    if (Budget && Budget->exhausted())
      return Degraded(); // Interrupted interval ascent: states partial.
    size_t N = G.size();
    std::vector<char> Fwd(N, 0);
    if (IR.Feasible[G.entry()]) {
      // Arc feasibility is evaluated lazily as nodes pop: an arc is taken
      // when its target is interval-feasible and the state propagated
      // along it is non-bottom (the same test the zone pruner applies).
      std::deque<int> Work = {G.entry()};
      Fwd[G.entry()] = 1;
      while (!Work.empty()) {
        int Id = Work.front();
        Work.pop_front();
        for (const ProductGraph::Arc &Arc : G.successors(Id)) {
          if (Fwd[Arc.To] || !IR.Feasible[Arc.To])
            continue;
          if (IntAz.transferEdge(IR.EntryState[Id], Arc.CfgEdge).isBottom())
            continue;
          Fwd[Arc.To] = 1;
          Work.push_back(Arc.To);
        }
      }
    }
    if (Budget && Budget->exhausted())
      return Degraded();
    bool AnyAccept = false;
    for (int Acc : G.accepts())
      AnyAccept = AnyAccept || Fwd[Acc];
    if (!AnyAccept) {
      Casc.Discharged.fetch_add(1, std::memory_order_relaxed);
      return Res; // Infeasible; no zone work needed.
    }
    Casc.Promoted.fetch_add(1, std::memory_order_relaxed);
    Dead.assign(N, 0);
    for (size_t I = 0; I < N; ++I)
      Dead[I] = !Fwd[I];
  }

  AnalysisResult AR = Az.analyze(G, Dead.empty() ? nullptr : &Dead);
  accumulateStats(AR.Stats);
  if (Budget && Budget->exhausted())
    return Degraded(); // Interrupted ascent: states are untrustworthy.
  RegionEngine<Dbm> Eng(F, Env, Az, G, AR, Pool, Costs);
  if (!Eng.entryAlive())
    return Res;
  RB R = Eng.run();
  if (Budget && Budget->exhausted())
    return Degraded();
  Res.Feasible = true;
  Res.Lo = R.Lo;
  Res.Hi = R.Hi;
  Res.Note = R.Note;
  return Res;
}
