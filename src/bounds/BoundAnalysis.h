//===- BoundAnalysis.h - Symbolic running-time bounds per trail -*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BOUNDANALYSIS (§2.2/§5): computes symbolic lower and upper bounds on the
/// running time of the executions described by a trail.
///
/// Pipeline: build the CFG x trail-DFA product, run the zone abstract
/// interpreter over it (pruning infeasible nodes and arcs), then fold the
/// product's SCC condensation bottom-up. Each loop SCC is bounded by
/// matching its header condition and the per-iteration transition
/// invariants (variable deltas, obtained via seeding) against a small
/// database of complexity-bound lemmas in the style of Gulwani et al.
/// [16,17]:
///   - inc-to-upper:  continue while v < U, v += d (d > 0)
///   - dec-to-lower:  continue while v > L, v -= d (d > 0)
///   - and their <=/>= variants, all reduced to the canonical form
///     "continue while G <= 0, G += g per iteration, g > 0", with trip
///     count floor(-G0/g) + 1.
///
/// Bounds are polynomials over the function's *input symbols* (parameter
/// seeds and array lengths), e.g. [19*guess.len + 10, 23*guess.len + 10].
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_BOUNDS_BOUNDANALYSIS_H
#define BLAZER_BOUNDS_BOUNDANALYSIS_H

#include "absint/Analyzer.h"
#include "absint/ProductGraph.h"
#include "absint/VarEnv.h"
#include "automata/Automaton.h"
#include "ir/Cfg.h"
#include "support/Bound.h"
#include "support/EngineConfig.h"
#include "support/EngineTelemetry.h"
#include "support/TrailBoundCache.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace blazer {

class ThreadPool;

/// Outcome of bounding one trail.
struct TrailBoundResult {
  /// False when the trail admits no feasible complete execution (either no
  /// path through the CFG or ruled out by the abstract interpreter).
  bool Feasible = false;
  /// Always valid when feasible.
  Bound Lo = Bound::lower(CostPoly());
  /// Unset when no upper bound could be established (unknown trip count,
  /// irreducible loop shape, ...).
  std::optional<Bound> Hi;
  /// Human-readable reason when Hi is unset.
  std::string Note;

  bool hasUpper() const { return Hi.has_value(); }
  /// The [Lo, Hi] range; only call when hasUpper().
  BoundRange range() const;
  /// Renders "[lo, hi]" or "[lo, ?]".
  std::string str() const;
};

/// Memoization cache for analyzeTrail results, shared across refinement
/// rounds and across the safety/capacity/attack phases (and, when the
/// caller salts keys per function — BoundAnalysis does — across drivers).
/// Budget-degraded results are never stored.
using TrailBoundCache = ShardedTrailCache<TrailBoundResult>;

/// Bound analysis engine for one function. Construct once, query per trail.
///
/// Thread-safe for concurrent analyzeTrail calls: the engine holds only
/// immutable per-function state (alphabet, variable environment, analyzer),
/// and every query builds its own product graph, invariants, and region
/// state. The optional worker pool additionally parallelizes the arc
/// feasibility sweep *inside* one query; results are written to
/// per-iteration slots, so bounds are identical with and without the pool.
class BoundAnalysis {
public:
  /// \p InputPins fixes publicly known input symbols (e.g. key bit-lengths)
  /// in the abstract initial state; see VarEnv. \p Pool (not owned, may be
  /// null) parallelizes per-query inner loops; null means fully sequential.
  /// \p Cache (not owned, may be null) memoizes analyzeTrail by canonical
  /// trail fingerprint; null disables memoization. The cache may be shared
  /// across functions: keys carry a salt of everything the result depends
  /// on besides the trail language (function name/shape, per-block costs,
  /// input pins, fixpoint scheduler, domain mode). \p Engine selects the
  /// abstract-domain mode (interval->zone cascade, zone-only, or
  /// interval-only) and the fixpoint scheduler; closure policy and trail
  /// caching are handled by the driver, not here.
  explicit BoundAnalysis(const CfgFunction &F,
                         std::map<std::string, int64_t> InputPins = {},
                         ThreadPool *Pool = nullptr,
                         TrailBoundCache *Cache = nullptr,
                         EngineConfig Engine = {});

  const EdgeAlphabet &alphabet() const { return A; }
  const VarEnv &env() const { return Env; }

  /// Bounds the executions in L(trail) ∩ JCK.
  ///
  /// This is also the engine's fault-recovery boundary: when a fault plan
  /// is active (see FaultInjector.h), an InjectedFault unwinding out of the
  /// analysis is retried once with backoff for transient sites, else
  /// converted into a fail-soft degraded result with fault provenance
  /// (Budget tripped with BudgetKind::FaultInjected). Faults never escape
  /// to the caller as exceptions from here.
  TrailBoundResult analyzeTrail(const Dfa &TrailDfa) const;

  /// The most general trail's automaton (the whole CFG).
  Dfa mostGeneralTrail() const;

  /// Accumulated fixpoint work counters across every analyzeTrail run by
  /// this engine (cache hits do no fixpoint work and contribute nothing).
  /// Counts the deciding domain's fixpoints: zone runs under cascade and
  /// zone-only, interval runs under interval-only. Safe to read
  /// concurrently; the snapshot is per-counter consistent, not
  /// cross-counter atomic.
  FixpointStats fixpointStats() const;

  /// Interval->zone cascade counters (all zero outside cascade mode): how
  /// many trails the interval tier discharged outright, how many were
  /// promoted to a zone run, and the interval fixpoint work spent deciding.
  CascadeStats cascadeStats() const;

private:
  /// The memoization wrapper (cache lookup/compute-once) behind
  /// analyzeTrail, without the fault-recovery wrapper.
  TrailBoundResult analyzeTrailMemo(const Dfa &TrailDfa) const;

  /// The product/fixpoint/region pipeline behind analyzeTrail, without the
  /// memoization wrapper.
  TrailBoundResult analyzeTrailUncached(const Dfa &TrailDfa) const;

  void accumulateStats(const FixpointStats &S) const;

  const CfgFunction &F;
  EdgeAlphabet A;
  VarEnv Env;
  EngineConfig Engine;
  /// The engine's cost model bound to F; every block cost the region
  /// folding accumulates is charged through this.
  CostEvaluator Costs;
  Analyzer Az;
  /// The interval tier of the cascade (also the whole engine under
  /// interval-only mode); shares Env and the scheduler choice with Az.
  IntervalAnalyzer IntAz;
  ThreadPool *Pool;
  TrailBoundCache *Cache;
  /// Key prefix distinguishing this function's results in a shared cache.
  std::string CacheSalt;
  /// Fixpoint work counters, accumulated from concurrent trail queries.
  struct {
    std::atomic<uint64_t> Pops{0};
    std::atomic<uint64_t> Joins{0};
    std::atomic<uint64_t> Widenings{0};
    std::atomic<uint64_t> TransferHits{0};
    std::atomic<uint64_t> TransferMisses{0};
    std::atomic<uint64_t> Sweeps{0};
    std::atomic<uint64_t> SweepTransferHits{0};
    std::atomic<uint64_t> SweepTransferMisses{0};
    std::atomic<uint64_t> ArcHits{0};
    std::atomic<uint64_t> ArcMisses{0};
    std::atomic<uint64_t> ArcBytes{0};
    std::atomic<uint64_t> CtxHits{0};
    std::atomic<uint64_t> CtxMisses{0};
    std::atomic<uint64_t> BatchPasses{0};
    std::atomic<uint64_t> BatchedNodes{0};
    std::atomic<uint64_t> CmpFastHits{0};
    std::atomic<uint64_t> CmpFastMisses{0};
    std::atomic<uint64_t> ArcVerifyMismatches{0};
    std::atomic<uint64_t> JoinNanos{0};
    std::atomic<uint64_t> TransferNanos{0};
    std::atomic<uint64_t> WidenNanos{0};
  } mutable Stats;
  /// Cascade counters, accumulated from concurrent trail queries.
  struct {
    std::atomic<uint64_t> Discharged{0};
    std::atomic<uint64_t> Promoted{0};
    std::atomic<uint64_t> IntervalPops{0};
  } mutable Casc;
};

} // namespace blazer

#endif // BLAZER_BOUNDS_BOUNDANALYSIS_H
