//===- Blazer.cpp - The timing-channel verifier driver --------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"

#include "absint/ProductGraph.h"
#include "automata/AnnotateTrail.h"
#include "dataflow/Dominators.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <sstream>

using namespace blazer;

const char *blazer::verdictName(VerdictKind V) {
  switch (V) {
  case VerdictKind::Safe:
    return "safe";
  case VerdictKind::Attack:
    return "attack";
  case VerdictKind::Unknown:
    return "unknown";
  }
  return "?";
}

const char *blazer::ctVerdictName(CtVerdict V) {
  switch (V) {
  case CtVerdict::CtUnknown:
    return "ct-unknown";
  case CtVerdict::CtSafe:
    return "ct-safe";
  case CtVerdict::CtUnsafe:
    return "ct-unsafe";
  }
  return "?";
}

std::string CtWitness::str() const {
  std::ostringstream OS;
  OS << "ct witness: trails tr" << TrailA << " and tr" << TrailB
     << " have provably unequal costs at the assumed input sizes:\n"
     << "  tr" << TrailA << ": " << BoundsA << "\n"
     << "  tr" << TrailB << ": " << BoundsB;
  return OS.str();
}

const char *blazer::splitKindName(SplitKind K) {
  switch (K) {
  case SplitKind::None:
    return "most general";
  case SplitKind::AvoidTrue:
    return "never takes the true edge";
  case SplitKind::AvoidFalse:
    return "never takes the false edge";
  case SplitKind::TakesBoth:
    return "takes both edges";
  }
  return "?";
}

std::string AttackSpec::str() const {
  std::ostringstream OS;
  if (TrailB < 0) {
    OS << "attack specification: trail tr" << TrailA
       << " has running time correlated with secret data; bounds "
       << BoundsA;
    return OS.str();
  }
  OS << "attack specification: trails tr" << TrailA << " and tr" << TrailB
     << " are chosen by the secret-dependent branch at bb" << SecretBranch
     << " yet have observably different running times:\n"
     << "  tr" << TrailA << ": " << BoundsA << "\n"
     << "  tr" << TrailB << ": " << BoundsB << "\n"
     << "  witness path skeletons:\n"
     << "    A: " << PathA << "\n"
     << "    B: " << PathB;
  return OS.str();
}

namespace {

class Driver {
public:
  Driver(const CfgFunction &F, const BlazerOptions &Options)
      : F(F), Opt(Options),
        Pool(Options.Jobs <= 0 ? 0u : static_cast<unsigned>(Options.Jobs)),
        TrailCache(!Options.Engine.TrailCache    ? nullptr
                   : Options.SharedTrailCache    ? Options.SharedTrailCache
                                                 : std::make_shared<TrailBoundCache>()),
        BA(F, Options.Observer.pinnedSymbols(), &Pool, TrailCache.get(),
           Options.Engine),
        Budget(Options.Budget),
        Faults(Options.Engine.Fault.enabled()
                   ? std::make_unique<FaultInjector>(Options.Engine.Fault)
                   : nullptr) {
    // Boolean parameters range over {0,1} regardless of the configured
    // default input maximum.
    for (const Param &P : F.Params)
      if (P.Type == TypeKind::Bool)
        Opt.Observer.setMaxInput(P.Name, 1);
  }

  BlazerResult run() {
    BudgetScope Scope(&Budget);
    ClosurePolicyScope CScope(Opt.Engine.Closure);
    FaultScope FScope(Faults.get());
    auto T0 = std::chrono::steady_clock::now();
    BlazerResult R;
    // Injected pool-task faults escape parallelForWithBudget as exceptions
    // (every lower site is already recovered at the analyzeTrail boundary);
    // catching them at the phase boundary degrades the phase instead of
    // killing the process — the same fail-soft shape as a budget trip.
    bool Safe = false;
    try {
      Safe = runSafetyPhase(R.Taint);
    } catch (const InjectedFault &IF) {
      degradeOnFault(IF);
    }
    auto T1 = std::chrono::steady_clock::now();
    R.SafetySeconds = std::chrono::duration<double>(T1 - T0).count();

    // A tripped budget can never prove safety: degraded trails carry no
    // upper bounds, and partial refinements may have been abandoned.
    if (Budget.exhausted())
      Safe = false;

    if (Safe) {
      R.Verdict = VerdictKind::Safe;
    } else if (Opt.Engine.CtMode) {
      // --ct replaces the attack search with the strict constant-time
      // check below; the threshold-based Attack verdict would be
      // misleading next to an exactness classification.
      R.Verdict = VerdictKind::Unknown;
    } else if (Opt.SearchAttack) {
      // Attack specifications found before (or despite) a budget trip are
      // genuine — they require real upper bounds on both trails — so the
      // search still runs; its own checkpoints make it wind down quickly
      // once the budget is gone.
      try {
        attackLoop(R.Attacks);
      } catch (const InjectedFault &IF) {
        degradeOnFault(IF);
      }
      R.Verdict =
          R.Attacks.empty() ? VerdictKind::Unknown : VerdictKind::Attack;
    } else {
      R.Verdict = VerdictKind::Unknown;
    }

    if (Opt.Engine.CtMode) {
      try {
        R.Ct = ctCheck(R.CtPair);
      } catch (const InjectedFault &IF) {
        degradeOnFault(IF);
        R.Ct = CtVerdict::CtUnknown;
      }
      R.Telemetry.Ct = CtCounters;
    }
    auto T2 = std::chrono::steady_clock::now();
    R.TotalSeconds = std::chrono::duration<double>(T2 - T0).count();
    R.Tree = std::move(Tree);
    R.Degradation = Budget.reason();
    R.Usage = Budget.usage();
    if (TrailCache)
      R.Telemetry.Cache = TrailCache->stats();
    R.Telemetry.Fixpoint = BA.fixpointStats();
    R.Telemetry.Cascade = BA.cascadeStats();
    if (Faults)
      R.Telemetry.Fault = Faults->stats();
    return R;
  }

  /// §3.4: the channel-capacity analysis (see analyzeChannelCapacity).
  ChannelCapacityResult runCapacity(int Q) {
    BudgetScope Scope(&Budget);
    ClosurePolicyScope CScope(Opt.Engine.Closure);
    FaultScope FScope(Faults.get());
    ChannelCapacityResult R;
    R.Q = Q;
    bool Safe = false;
    try {
      Safe = runSafetyPhase(R.Taint);
    } catch (const InjectedFault &IF) {
      degradeOnFault(IF);
    }

    // The ψ_tcf components are the safety-phase leaves; remember them
    // before the secret refinement grows the tree.
    std::vector<int> Components;
    for (const Trail &T : Tree)
      if (T.isLeaf() && T.feasible())
        Components.push_back(T.Id);

    if (!Safe) {
      // Exhaustive secret refinement: split every non-narrow feasible leaf
      // at every remaining secret branch (no early exit). Processed in
      // generations — plan a whole generation's splits on the pool, adopt
      // sequentially in order, collect the children as the next
      // generation. Generation order equals the sequential queue's FIFO
      // order, so the tree is identical for any job count.
      PhaseScope Phase("capacity-refinement");
      std::vector<int> Round;
      for (int Id : Components)
        if (!Tree[Id].Narrow)
          Round.push_back(Id);
      bool Stopped = false;
      while (!Round.empty() && !Stopped) {
        if (!Budget.checkpoint())
          break;
        std::vector<int> Eligible;
        for (int Id : Round)
          if (static_cast<int>(Tree[Id].UsedSplits.size()) < Opt.MaxDepth)
            Eligible.push_back(Id);
        std::vector<std::optional<PlannedSplit>> Plans(Eligible.size());
        try {
          parallelForWithBudget(&Pool, Eligible.size(), [&](size_t I) {
            Plans[I] = planSplit(Eligible[I], /*SecretMode=*/true);
          });
        } catch (const InjectedFault &IF) {
          degradeOnFault(IF); // Tripped budget forces Known = false below.
          break;
        }
        std::vector<int> Next;
        for (std::optional<PlannedSplit> &P : Plans) {
          if (!P)
            continue;
          if (!Budget.checkpoint()) {
            Stopped = true;
            break;
          }
          if (!budgetLeft())
            continue; // Out of trail room: skip this leaf, keep scanning.
          if (!Budget.countTrailNodes(
                  static_cast<uint64_t>(P->Children.size()))) {
            Stopped = true;
            break;
          }
          for (int C : adoptChildren(P->LeafId, std::move(P->Children)))
            if (Tree[C].feasible() && !Tree[C].Narrow)
              Next.push_back(C);
        }
        Round = std::move(Next);
      }
    }

    // Classify each component's final trails into observational classes.
    R.Known = true;
    R.MaxClasses = 0;
    for (int Comp : Components) {
      std::vector<const Trail *> Finals;
      std::function<void(int)> Collect = [&](int Id) {
        if (Tree[Id].isLeaf()) {
          if (Tree[Id].feasible())
            Finals.push_back(&Tree[Id]);
          return;
        }
        for (int C : Tree[Id].Children)
          Collect(C);
      };
      Collect(Comp);

      std::vector<BoundRange> Classes;
      for (const Trail *T : Finals) {
        if (!T->Narrow) {
          // A wide trail may contain arbitrarily many observable times.
          R.Known = false;
          break;
        }
        BoundRange Range = T->Bounds.range();
        bool Matched = false;
        for (const BoundRange &Rep : Classes)
          if (!Opt.Observer.observablyDifferent(Range, Rep)) {
            Matched = true;
            break;
          }
        if (!Matched)
          Classes.push_back(Range);
      }
      if (!R.Known)
        break;
      R.MaxClasses =
          std::max(R.MaxClasses, static_cast<int>(Classes.size()));
    }
    // Exhausted budgets invalidate the class count: splits may have been
    // abandoned, and degraded trails look wide for the wrong reason.
    if (Budget.exhausted())
      R.Known = false;
    R.Bounded = R.Known && R.MaxClasses <= Q;
    R.Tree = std::move(Tree);
    R.Degradation = Budget.reason();
    if (TrailCache)
      R.Telemetry.Cache = TrailCache->stats();
    R.Telemetry.Fixpoint = BA.fixpointStats();
    R.Telemetry.Cascade = BA.cascadeStats();
    if (Faults)
      R.Telemetry.Fault = Faults->stats();
    return R;
  }

private:
  /// An unadopted refinement of one leaf: the chosen branch plus fully
  /// built and bounded child trails, ids not yet assigned.
  struct PlannedSplit {
    int LeafId = -1;
    int Block = -1;
    std::vector<Trail> Children;
  };

  /// Converts an injected fault that reached a phase boundary into the
  /// fail-soft budget shape: count it, trip with provenance, continue
  /// winding down. First-trip-wins keeps an earlier reason if one raced.
  void degradeOnFault(const InjectedFault &IF) {
    if (Faults)
      Faults->countDegradation();
    Budget.tripFault(faultSiteName(IF.site()));
  }

  /// The strict constant-time check (--ct). Classifies every ψ_tcf
  /// component — the safety-phase feasible leaves — by whether its cost is
  /// provably *single-valued* over the input box: first the component's own
  /// bounds are tested for exactness (gap 0, no unpinned secret symbols),
  /// then non-exact components are exhaustively refined at secret branches
  /// (the same generation scheme as runCapacity, so the tree is identical
  /// for any job count) and the final leaves compared pairwise. A corner
  /// separation (ctDiffers) yields a CtUnsafe witness — genuine even after
  /// a budget trip, like an attack spec; all leaves exact and pairwise
  /// ctEqual within budget yields CtSafe; anything else CtUnknown.
  CtVerdict ctCheck(std::optional<CtWitness> &Witness) {
    PhaseScope Phase("ct-check");

    std::vector<int> Components;
    for (const Trail &T : Tree)
      if (T.isLeaf() && T.feasible())
        Components.push_back(T.Id);
    CtCounters.Components = Components.size();

    std::vector<int> Round;
    for (int Id : Components) {
      if (ctExactTrail(Tree[Id]))
        ++CtCounters.ExactComponents;
      else
        Round.push_back(Id);
    }

    bool Stopped = false;
    while (!Round.empty() && !Stopped) {
      if (!Budget.checkpoint())
        break;
      std::vector<int> Eligible;
      for (int Id : Round)
        if (static_cast<int>(Tree[Id].UsedSplits.size()) < Opt.MaxDepth)
          Eligible.push_back(Id);
      std::vector<std::optional<PlannedSplit>> Plans(Eligible.size());
      try {
        parallelForWithBudget(&Pool, Eligible.size(), [&](size_t I) {
          Plans[I] = ctPlanSplit(Eligible[I]);
        });
      } catch (const InjectedFault &IF) {
        degradeOnFault(IF); // Tripped budget forces CtUnknown below.
        break;
      }
      std::vector<int> Next;
      for (std::optional<PlannedSplit> &P : Plans) {
        if (!P)
          continue;
        if (!Budget.checkpoint()) {
          Stopped = true;
          break;
        }
        if (!budgetLeft())
          continue; // Out of trail room: skip this leaf, keep scanning.
        if (!Budget.countTrailNodes(
                static_cast<uint64_t>(P->Children.size()))) {
          Stopped = true;
          break;
        }
        ++CtCounters.Splits;
        for (int C : adoptChildren(P->LeafId, std::move(P->Children)))
          if (Tree[C].feasible() && !ctExactTrail(Tree[C]))
            Next.push_back(C);
      }
      Round = std::move(Next);
    }

    // Classification: every component's final feasible leaves must all be
    // exact and pairwise equal-cost.
    bool AllOk = true;
    for (int Comp : Components) {
      std::vector<const Trail *> Finals;
      std::function<void(int)> Collect = [&](int Id) {
        if (Tree[Id].isLeaf()) {
          if (Tree[Id].feasible())
            Finals.push_back(&Tree[Id]);
          return;
        }
        for (int C : Tree[Id].Children)
          Collect(C);
      };
      Collect(Comp);
      CtCounters.Leaves += Finals.size();

      for (const Trail *T : Finals)
        if (!ctExactTrail(*T))
          AllOk = false;
      for (size_t I = 0; I < Finals.size(); ++I) {
        for (size_t J = I + 1; J < Finals.size(); ++J) {
          const Trail &TA = *Finals[I];
          const Trail &TB = *Finals[J];
          if (!TA.Bounds.hasUpper() || !TB.Bounds.hasUpper())
            continue;
          BoundRange RA = TA.Bounds.range();
          BoundRange RB = TB.Bounds.range();
          if (Opt.Observer.ctDiffers(RA, RB)) {
            if (!Witness) { // First pair in tree order wins.
              CtWitness W;
              W.TrailA = TA.Id;
              W.TrailB = TB.Id;
              W.BoundsA = TA.Bounds.str();
              W.BoundsB = TB.Bounds.str();
              Witness = std::move(W);
            }
          } else if (!Opt.Observer.ctEqual(RA, RB)) {
            // Neither corner-separated nor provably equal: too weak for
            // either side of the classification.
            AllOk = false;
          }
        }
      }
    }

    if (Witness)
      return CtVerdict::CtUnsafe;
    if (AllOk && !Budget.exhausted())
      return CtVerdict::CtSafe;
    return CtVerdict::CtUnknown;
  }

  /// CT-mode refinement of one leaf. Unlike planSplit, which takes the
  /// first eligible branch, every live unused secret branch is tried and
  /// the split whose children are most often *decided* — infeasible or
  /// already ct-exact — is kept (ties to the lower block id, so the choice
  /// is deterministic). The difference matters for crypto loops: splitting
  /// a secret-tainted loop guard first forces takes-both "contains"
  /// products on everything below it, whose lower bounds are too weak to
  /// separate; splitting the *inner* secret branch first yields pure
  /// avoid products (all-ones vs all-zeros arms) with exact bounds.
  std::optional<PlannedSplit> ctPlanSplit(int LeafId) {
    if (!Budget.checkpoint())
      return std::nullopt;
    std::vector<int> Candidates;
    for (int B : liveBranches(Tree[LeafId])) {
      if (Tree[LeafId].UsedSplits.count(B))
        continue;
      if (Taint->markOf(B).High)
        Candidates.push_back(B);
    }
    std::optional<PlannedSplit> Best;
    int BestScore = -1;
    for (int B : Candidates) {
      PlannedSplit P;
      P.LeafId = LeafId;
      P.Block = B;
      P.Children = buildChildSpecs(LeafId, B, /*SecretSplit=*/true);
      if (Budget.exhausted())
        return std::nullopt;
      int Score = 0;
      for (Trail &C : P.Children) {
        evaluate(C);
        // Exact feasible children are worth more than infeasible ones: an
        // exact child is a classified behavior, while a split whose avoid
        // children are both infeasible (a secret loop guard under a pinned
        // trip count) only re-derives the parent behind a weaker
        // takes-both automaton.
        if (C.Bounds.Feasible && ctExactTrail(C))
          Score += 2;
        else if (!C.Bounds.Feasible)
          Score += 1;
      }
      if (Score > BestScore) {
        BestScore = Score;
        Best = std::move(P);
      }
    }
    return Best;
  }

  /// \returns true when trail \p T's bounds are ct-exact: an upper bound
  /// exists and the range is provably single-valued over the input box.
  bool ctExactTrail(const Trail &T) const {
    return T.Bounds.hasUpper() &&
           Opt.Observer.ctExact(T.Bounds.range(),
                                [this](const std::string &S) {
                                  return isHighSymbol(S);
                                });
  }

  /// Shared front half of run()/runCapacity(): taint, the most general
  /// trail, and the Figure-2 safety loop. \returns CheckSafe's verdict.
  bool runSafetyPhase(TaintInfo &TaintOut) {
    TaintOut = runTaintAnalysis(F);
    Taint = &TaintOut;
    OnCycle = blocksOnCycles(F);

    Trail Mg;
    Mg.Id = 0;
    Mg.Auto = BA.mostGeneralTrail().minimize();
    Mg.Label = "most general trail";
    Budget.countTrailNodes();
    evaluate(Mg);
    Tree.push_back(std::move(Mg));

    return safetyLoop();
  }
  bool isHighSymbol(const std::string &Sym) const {
    std::string Base = Sym;
    size_t Pos = Sym.rfind(".len");
    if (Pos != std::string::npos && Pos + 4 == Sym.size())
      Base = Sym.substr(0, Pos);
    return F.paramLevel(Base) == SecurityLevel::Secret;
  }

  void evaluate(Trail &T) {
    T.Bounds = BA.analyzeTrail(T.Auto);
    if (!T.Bounds.Feasible) {
      T.Narrow = true; // Vacuously: no real executions.
      return;
    }
    if (!T.Bounds.hasUpper()) {
      T.Narrow = false;
      return;
    }
    T.Narrow = Opt.Observer.isNarrow(
        T.Bounds.range(), [this](const std::string &S) {
          return isHighSymbol(S);
        });
  }

  /// CheckSafe: every feasible leaf narrow?
  bool checkSafe() const {
    for (const Trail &T : Tree)
      if (T.isLeaf() && T.feasible() && !T.Narrow)
        return false;
    return true;
  }

  /// The branch blocks of \p T whose two out-edges are both present in the
  /// trail's product with the CFG (i.e. the trail really branches there).
  std::vector<int> liveBranches(const Trail &T) const {
    ProductGraph G = ProductGraph::build(F, T.Auto, BA.alphabet());
    std::vector<std::set<int>> SeenSuccs(F.blockCount());
    for (size_t Id = 0; Id < G.size(); ++Id)
      for (const ProductGraph::Arc &Arc : G.successors(Id))
        SeenSuccs[Arc.CfgEdge.From].insert(Arc.CfgEdge.To);
    std::vector<int> Out;
    for (const BasicBlock &B : F.Blocks) {
      if (B.Term != BasicBlock::TermKind::Branch ||
          B.TrueSucc == B.FalseSucc)
        continue;
      if (SeenSuccs[B.Id].count(B.TrueSucc) &&
          SeenSuccs[B.Id].count(B.FalseSucc))
        Out.push_back(B.Id);
    }
    return Out;
  }

  /// Builds the unevaluated child trails of splitting leaf \p LeafId at
  /// branch \p Block: the avoid-true / avoid-false pair, plus takes-both
  /// when the branch sits on a cycle. Ids are left unassigned; the tree is
  /// read but never written, so any number of leaves may build their
  /// children concurrently.
  std::vector<Trail> buildChildSpecs(int LeafId, int Block,
                                     bool SecretSplit) {
    const EdgeAlphabet &A = BA.alphabet();
    const BasicBlock &B = F.block(Block);
    int SymT = A.symbol(Edge{Block, B.TrueSucc});
    int SymF = A.symbol(Edge{Block, B.FalseSucc});
    int N = static_cast<int>(A.size());

    TaintMark Mark;
    if (SecretSplit)
      Mark.High = true;
    else
      Mark.Low = true;

    struct ChildSpec {
      Dfa Auto;
      SplitKind Kind;
      std::string Label;
    };
    std::vector<ChildSpec> Specs;
    const Dfa &Parent = Tree[LeafId].Auto;
    Specs.push_back({Parent.intersect(Dfa::avoidsSymbol(N, SymF)).minimize(),
                     SplitKind::AvoidFalse,
                     "bb" + std::to_string(Block) + ": always takes " +
                         Edge{Block, B.TrueSucc}.str()});
    Specs.push_back({Parent.intersect(Dfa::avoidsSymbol(N, SymT)).minimize(),
                     SplitKind::AvoidTrue,
                     "bb" + std::to_string(Block) + ": always takes " +
                         Edge{Block, B.FalseSucc}.str()});
    if (OnCycle[Block])
      Specs.push_back(
          {Parent.intersect(Dfa::containsSymbol(N, SymT))
               .intersect(Dfa::containsSymbol(N, SymF))
               .minimize(),
           SplitKind::TakesBoth,
           "bb" + std::to_string(Block) + ": takes both edges"});

    std::vector<Trail> Children;
    for (ChildSpec &S : Specs) {
      Trail Child;
      Child.Parent = LeafId;
      Child.Auto = std::move(S.Auto);
      Child.SplitBlock = Block;
      Child.Split = S.Kind;
      Child.SplitOn = Mark;
      Child.UsedSplits = Tree[LeafId].UsedSplits;
      Child.UsedSplits.insert(Block);
      Child.Label = S.Label;
      Children.push_back(std::move(Child));
    }
    return Children;
  }

  /// Appends evaluated children to the tree in order, assigning ids. The
  /// only place refinement mutates the tree — always called sequentially.
  std::vector<int> adoptChildren(int LeafId, std::vector<Trail> &&Children) {
    std::vector<int> ChildIds;
    for (Trail &Child : Children) {
      Child.Id = static_cast<int>(Tree.size());
      ChildIds.push_back(Child.Id);
      Tree.push_back(std::move(Child));
      Tree[LeafId].Children.push_back(ChildIds.back());
    }
    return ChildIds;
  }

  /// Splits leaf \p LeafId at branch \p Block. \returns the new child ids
  /// — empty (leaving \p LeafId an unsplit leaf) when the budget trips
  /// before or during the split, so truncated child automata are never
  /// adopted into the tree.
  std::vector<int> splitAt(int LeafId, int Block, bool SecretSplit) {
    if (!Budget.checkpoint())
      return {};
    std::vector<Trail> Children = buildChildSpecs(LeafId, Block, SecretSplit);

    // The intersections above may have been truncated mid-product; their
    // languages would under-approximate the split and must be discarded.
    if (Budget.exhausted() ||
        !Budget.countTrailNodes(static_cast<uint64_t>(Children.size())))
      return {};

    parallelForWithBudget(&Pool, Children.size(),
                          [&](size_t I) { evaluate(Children[I]); });
    return adoptChildren(LeafId, std::move(Children));
  }

  /// Plans one refinement of leaf \p LeafId: picks the branch, builds the
  /// child automata, and bounds them. This is the per-component worker
  /// task — it reads the tree but never writes it, and defers trail-node
  /// accounting to adoption so only splits actually adopted are charged.
  /// \returns nullopt when no branch is eligible or the budget trips while
  /// building (truncated intersections would under-approximate the split).
  std::optional<PlannedSplit> planSplit(int LeafId, bool SecretMode) {
    if (!Budget.checkpoint())
      return std::nullopt;
    std::optional<int> B = pickBranch(Tree[LeafId], SecretMode);
    if (!B)
      return std::nullopt;
    PlannedSplit P;
    P.LeafId = LeafId;
    P.Block = *B;
    P.Children = buildChildSpecs(LeafId, *B, SecretMode);
    if (Budget.exhausted())
      return std::nullopt;
    for (Trail &C : P.Children)
      evaluate(C);
    return P;
  }

  /// Finds the first eligible branch of leaf \p T for the given mode.
  /// Acyclic (if-style) branches are preferred over loop guards: splitting
  /// an if resolves a whole path case, while splitting a loop guard only
  /// unrolls.
  std::optional<int> pickBranch(const Trail &T, bool SecretMode) const {
    std::vector<int> Ordered = liveBranches(T);
    std::stable_sort(Ordered.begin(), Ordered.end(), [this](int A, int B) {
      return OnCycle[A] < OnCycle[B];
    });
    for (int B : Ordered) {
      if (T.UsedSplits.count(B))
        continue;
      TaintMark M = Taint->markOf(B);
      if (SecretMode) {
        if (M.High)
          return B;
      } else {
        if (M.Low && !M.High)
          return B;
      }
    }
    return std::nullopt;
  }

  bool budgetLeft() const {
    return static_cast<int>(Tree.size()) + 3 <= Opt.MaxTrails;
  }

  /// RefinePartition(safe) + CheckSafe until fixed point, parallelized in
  /// rounds: snapshot the refinable leaves in id order, plan every split
  /// on the pool, then adopt the plans sequentially in the same order.
  /// This builds the exact tree the one-leaf-at-a-time loop would have
  /// built — leaf eligibility is fixed while a round is planned, children
  /// always receive ids above every existing leaf, and the sequential loop
  /// processed eligible leaves in increasing id order anyway — so verdicts
  /// and treeString output are byte-identical for any job count.
  bool safetyLoop() {
    PhaseScope Phase("safety-refinement");
    while (true) {
      if (!Budget.checkpoint())
        return false;
      if (checkSafe())
        return true;

      std::vector<int> Leaves;
      for (size_t Id = 0; Id < Tree.size(); ++Id) {
        const Trail &T = Tree[Id];
        if (T.isLeaf() && T.feasible() && !T.Narrow &&
            static_cast<int>(T.UsedSplits.size()) < Opt.MaxDepth)
          Leaves.push_back(static_cast<int>(Id));
      }
      if (Leaves.empty())
        return false; // No more safe refinements possible.
      if (!budgetLeft())
        return false;

      std::vector<std::optional<PlannedSplit>> Plans(Leaves.size());
      parallelForWithBudget(&Pool, Leaves.size(), [&](size_t I) {
        Plans[I] = planSplit(Leaves[I], /*SecretMode=*/false);
      });

      bool Progress = false;
      for (std::optional<PlannedSplit> &P : Plans) {
        if (!P)
          continue;
        if (Budget.exhausted() || !budgetLeft())
          return false;
        if (!Budget.countTrailNodes(
                static_cast<uint64_t>(P->Children.size())))
          return false;
        adoptChildren(P->LeafId, std::move(P->Children));
        Progress = true;
      }
      if (!Progress)
        return false; // No more safe refinements possible.
    }
  }

  /// RefinePartition(vulnerable) + CheckAttack (right half of Figure 2).
  void attackLoop(std::vector<AttackSpec> &Attacks) {
    PhaseScope Phase("attack-search");
    std::deque<int> Queue;
    for (size_t Id = 0; Id < Tree.size(); ++Id)
      if (Tree[Id].isLeaf() && Tree[Id].feasible() && !Tree[Id].Narrow)
        Queue.push_back(static_cast<int>(Id));

    while (!Queue.empty() && Attacks.empty()) {
      if (!Budget.checkpoint())
        break;
      int LeafId = Queue.front();
      Queue.pop_front();
      if (static_cast<int>(Tree[LeafId].UsedSplits.size()) >= Opt.MaxDepth)
        continue;
      if (!budgetLeft())
        break;
      std::optional<int> B = pickBranch(Tree[LeafId], /*SecretMode=*/true);
      if (!B) {
        // No secret branch left to split on: fall back to the
        // bounds-correlated-with-secret check.
        if (boundsMentionHigh(Tree[LeafId])) {
          AttackSpec Spec;
          Spec.TrailA = LeafId;
          Spec.BoundsA = Tree[LeafId].Bounds.str();
          Attacks.push_back(std::move(Spec));
        }
        continue;
      }
      std::vector<int> Children = splitAt(LeafId, *B, /*SecretSplit=*/true);
      // CheckAttack: compare the avoid-true/avoid-false pair.
      checkAttackPair(Children, *B, Attacks);
      for (int C : Children)
        if (Tree[C].feasible() && !Tree[C].Narrow)
          Queue.push_back(C);
    }
  }

  bool boundsMentionHigh(const Trail &T) const {
    if (!T.feasible())
      return false;
    auto Mentions = [this](const Bound &B) {
      for (const std::string &V : B.variables())
        if (isHighSymbol(V) && !Opt.Observer.isPinned(V))
          return true;
      return false;
    };
    if (Mentions(T.Bounds.Lo))
      return true;
    return T.Bounds.Hi && Mentions(*T.Bounds.Hi);
  }

  void checkAttackPair(const std::vector<int> &Children, int Branch,
                       std::vector<AttackSpec> &Attacks) {
    // Every pair of sibling components split at the secret branch is a
    // candidate: the choice between them depends on high data, so
    // observably different bounds are an attack suspicion (§4.4). All
    // differing pairs are emitted — "the algorithm outputs a set of
    // possible attack specifications".
    for (size_t I = 0; I < Children.size(); ++I) {
      for (size_t J = I + 1; J < Children.size(); ++J) {
        const Trail &TA = Tree[Children[I]];
        const Trail &TB = Tree[Children[J]];
        if (!TA.feasible() || !TB.feasible())
          continue;
        // CheckAttack compares the *symbolic bounds* of the two components;
        // when either side has no upper bound there is nothing to compare
        // and no specification is emitted — this conservatism is how
        // gpt14_unsafe escapes detection (§6.2).
        if (!TA.Bounds.hasUpper() || !TB.Bounds.hasUpper())
          continue;
        if (!Opt.Observer.observablyDifferent(TA.Bounds.range(),
                                              TB.Bounds.range()))
          continue;
        AttackSpec Spec;
        Spec.TrailA = TA.Id;
        Spec.TrailB = TB.Id;
        Spec.SecretBranch = Branch;
        Spec.BoundsA = TA.Bounds.str();
        Spec.BoundsB = TB.Bounds.str();
        Spec.PathA = pathSkeleton(TA);
        Spec.PathB = pathSkeleton(TB);
        Attacks.push_back(std::move(Spec));
      }
    }
  }

  std::string pathSkeleton(const Trail &T) const {
    auto Word = T.Auto.shortestWord();
    if (!Word)
      return "<none>";
    std::ostringstream OS;
    for (size_t I = 0; I < Word->size(); ++I) {
      if (I)
        OS << " ";
      OS << BA.alphabet().edge((*Word)[I]).str();
    }
    return OS.str();
  }

  const CfgFunction &F;
  BlazerOptions Opt;
  /// Declared before BA so the pool outlives (and can be handed to) the
  /// bound analysis. Jobs == 1 starts no threads: every parallelFor runs
  /// inline and the driver is exactly the sequential engine.
  ThreadPool Pool;
  /// Declared before BA, which captures the raw pointer. Shared ownership
  /// so bench drivers can keep one cache warm across repeated runs.
  std::shared_ptr<TrailBoundCache> TrailCache;
  BoundAnalysis BA;
  AnalysisBudget Budget;
  /// Null without an active fault plan: the scopes then install null and
  /// every maybeInjectFault call stays one untaken branch.
  std::unique_ptr<FaultInjector> Faults;
  const TaintInfo *Taint = nullptr;
  std::vector<bool> OnCycle;
  std::vector<Trail> Tree;
  /// Work counters of the --ct check; all zero otherwise.
  CtStats CtCounters;
};

} // namespace

BlazerResult blazer::analyzeFunction(const CfgFunction &F,
                                     const BlazerOptions &Options) {
  Driver D(F, Options);
  return D.run();
}

ChannelCapacityResult
blazer::analyzeChannelCapacity(const CfgFunction &F, int Q,
                               const BlazerOptions &Options) {
  if (Q < 1) {
    // Recoverable misuse: a non-positive capacity has no meaningful ccf
    // instance; report "could not establish" rather than aborting.
    ChannelCapacityResult R;
    R.Q = Q;
    return R;
  }
  Driver D(F, Options);
  return D.runCapacity(Q);
}

TrailExpr::Ptr blazer::renderAnnotatedTrail(const CfgFunction &F,
                                            const Dfa &Trail,
                                            const TaintInfo &Taint,
                                            size_t SizeLimit) {
  TrailExpr::Ptr Raw = dfaToTrailExpr(Trail, SizeLimit);
  if (!Raw)
    return nullptr;
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  std::map<int, AnnotatedBranch> Branches;
  for (const BasicBlock &B : F.Blocks) {
    if (B.Term != BasicBlock::TermKind::Branch || B.TrueSucc == B.FalseSucc)
      continue;
    AnnotatedBranch Info;
    Info.TrueSymbol = A.symbol(Edge{B.Id, B.TrueSucc});
    Info.FalseSymbol = A.symbol(Edge{B.Id, B.FalseSucc});
    Info.Mark = Taint.markOf(B.Id);
    Branches[B.Id] = Info;
  }
  return annotateTrail(Raw, Branches);
}

std::string BlazerResult::treeString(const CfgFunction &F) const {
  std::ostringstream OS;
  // Depth-first walk from the root.
  std::function<void(int, int)> Walk = [&](int Id, int Depth) {
    const Trail &T = Tree[Id];
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
    OS << "tr" << T.Id;
    if (T.SplitOn.any())
      OS << " --" << (T.SplitOn.High ? "sec" : "taint") << "--";
    OS << " [" << T.Label << "] ";
    if (!T.feasible()) {
      OS << "infeasible";
    } else {
      OS << T.Bounds.str() << (T.Narrow ? " narrow" : " NOT-narrow");
    }
    OS << "\n";
    for (int C : T.Children)
      Walk(C, Depth + 1);
  };
  if (!Tree.empty())
    Walk(0, 0);
  if (Degradation.tripped())
    OS << "degraded: " << Degradation.str() << "\n";
  OS << "verdict: " << verdictName(Verdict) << " (" << F.Name << ")\n";
  return OS.str();
}
