//===- Blazer.h - The timing-channel verifier driver ------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: the Figure-2 algorithm. Starting from the most
/// general trail, the driver alternates
///   RefinePartition(safe)   — split non-narrow trails at low-only branches
///   CheckSafe               — all feasible leaves narrow?
/// and, when safe refinement is exhausted,
///   RefinePartition(vuln)   — split at secret branches
///   CheckAttack             — sibling trails with observably different
///                             bounds, or bounds correlated with a secret
/// producing either a safety proof, an attack specification, or unknown.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_CORE_BLAZER_H
#define BLAZER_CORE_BLAZER_H

#include "core/Trail.h"
#include "dataflow/Taint.h"
#include "support/Budget.h"
#include "support/EngineConfig.h"
#include "support/EngineTelemetry.h"
#include "support/Observer.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// The three possible outcomes (§6.2: "it either determines the program is
/// safe, finds an attack specification, or gives up").
enum class VerdictKind { Safe, Attack, Unknown };

const char *verdictName(VerdictKind V);

/// The strict constant-time classification produced in --ct mode (off by
/// default; see EngineConfig::CtMode). Strictness: CtSafe requires every
/// ψ_tcf component's cost bounds to be *exactly equal* across all
/// secret-dependent behaviors — gap 0 over the input box — not merely
/// finite or within the observer's threshold, so CtSafe is strictly
/// stronger than the Safe verdict under any threshold.
enum class CtVerdict {
  CtUnknown, ///< Not run, budget-tripped, or bounds too weak to decide.
  CtSafe,    ///< Every component provably single-valued in cost.
  CtUnsafe,  ///< A witness pair of components with provably unequal costs.
};

const char *ctVerdictName(CtVerdict V);

/// The CtUnsafe witness: two trails in the same ψ_tcf component, separated
/// only by secret-dependent branching, whose cost bounds are provably
/// unequal at an admissible input size.
struct CtWitness {
  int TrailA = -1;
  int TrailB = -1;
  std::string BoundsA;
  std::string BoundsB;

  /// Renders "ct witness: trails trA and trB ... [boundsA] vs [boundsB]".
  std::string str() const;
};

/// A synthesized attack specification (§2.3): two sibling trails whose
/// choice depends on secret data yet whose running-time bounds differ
/// observably — plus, when available, skeleton paths witnessing each trail.
struct AttackSpec {
  int TrailA = -1;
  int TrailB = -1;
  /// The secret-dependent branch block the trails disagree on. -1 for the
  /// single-trail "bounds correlated with a secret variable" form.
  int SecretBranch = -1;
  std::string BoundsA;
  std::string BoundsB;
  /// Example path skeletons (shortest accepted edge words).
  std::string PathA;
  std::string PathB;

  std::string str() const;
};

/// Tuning knobs.
struct BlazerOptions {
  ObserverModel Observer = ObserverModel::polynomialDegree();
  /// Refinement budgets ("parameters around the size and form of the
  /// partitions produced", §4.4).
  int MaxTrails = 512;
  int MaxDepth = 12;
  /// Skip the attack search (safety verification only).
  bool SearchAttack = true;
  /// Worker threads for the parallel trail-tree analysis: the §4
  /// decomposition makes per-component bound proofs independent, so
  /// refinement rounds plan every component's split concurrently and adopt
  /// the results sequentially in tree order. 1 = fully sequential (no
  /// threads started); 0 = hardware concurrency. Verdicts, bounds, and
  /// treeString output are byte-identical for any Jobs value on runs that
  /// stay within budget; budget-tripped runs may truncate refinement at
  /// different points but still never report Safe.
  int Jobs = 1;
  /// Resource limits (wall-clock deadline, step budgets, cancellation).
  /// Default-constructed limits never trip. When a limit trips mid-run the
  /// analysis fails soft: the verdict degrades to Unknown (never Safe), the
  /// partial trail tree is kept, and BlazerResult::Degradation records
  /// which budget tripped, in which phase, and after how long.
  BudgetLimits Budget;
  /// The abstract-interpretation engine knobs — domain mode
  /// (interval->zone cascade / zone-only / interval-only), fixpoint
  /// scheduler (WTO / FIFO), DBM closure policy (incremental / full), and
  /// the per-trail bound cache switch — under one registry with canonical
  /// CLI/env spellings (see EngineConfig). Every configuration is
  /// verdict-preserving by design: cascade vs zone-only, WTO vs FIFO,
  /// incremental vs full closure, and cache on vs off each produce
  /// byte-identical verdicts, bounds, and treeString output on runs that
  /// stay within budget; only the work differs (interval-only is the one
  /// diagnostic exception — its weaker invariants may degrade verdicts
  /// toward Unknown, never toward an unsound Safe).
  EngineConfig Engine;
  /// Optional externally-owned cache reused across analyzeFunction calls
  /// (the bench drivers share one per benchmark so repeated runs hit warm
  /// entries). Keys are salted per function/pins/engine mode, so sharing
  /// is sound. Null: the driver creates a private cache for the run (when
  /// Engine.TrailCache). Ignored when Engine.TrailCache is false.
  std::shared_ptr<TrailBoundCache> SharedTrailCache;
};

/// Everything the analysis produced.
struct BlazerResult {
  VerdictKind Verdict = VerdictKind::Unknown;
  std::vector<Trail> Tree; ///< Index = trail id; 0 is the most general.
  std::vector<AttackSpec> Attacks;
  TaintInfo Taint;

  /// The strict constant-time classification; CtUnknown unless
  /// Engine.CtMode was on (in which case the attack search is replaced by
  /// the CT check and Verdict is Safe or Unknown, never Attack).
  CtVerdict Ct = CtVerdict::CtUnknown;
  /// The witness pair behind a CtUnsafe classification.
  std::optional<CtWitness> CtPair;

  /// Wall-clock seconds: safety phase alone, and including attack search.
  double SafetySeconds = 0;
  double TotalSeconds = 0;

  /// Why (and whether) the analysis degraded: Kind == None when it ran to
  /// completion within its budget; otherwise the first budget trip. A
  /// tripped budget never yields a Safe verdict.
  DegradationReason Degradation;
  /// Step counters accumulated over the run (states, joins, trail nodes).
  ResourceUsage Usage;
  /// Engine work counters — trail-cache hits/misses, fixpoint work, and
  /// cascade discharge/promotion counts — under one struct with a single
  /// JSON emitter shared by the CLI and the bench drivers. Diagnostics
  /// only: they vary with scheduler, domain mode, and cache hits, unlike
  /// the verdict. Cache counters are cumulative across runs when
  /// BlazerOptions::SharedTrailCache reuses one cache.
  EngineTelemetry Telemetry;

  /// Pretty-prints the trail tree with bound balloons, Figure-1 style.
  std::string treeString(const CfgFunction &F) const;
};

/// Runs the full analysis on \p F.
BlazerResult analyzeFunction(const CfgFunction &F,
                             const BlazerOptions &Options = BlazerOptions());

/// Result of the §3.4 channel-capacity analysis — the (q+1)-safety
/// generalization of timing-channel freedom: at most q distinct observable
/// running times per public input (tcf is the q = 1 case).
struct ChannelCapacityResult {
  /// False when some fully-refined trail had no tight bounds, so the class
  /// count could not be established (analogous to the tcf "unknown").
  bool Known = false;
  /// Known and every component exhibits at most Q observational classes.
  bool Bounded = false;
  int Q = 1;
  /// The largest number of distinct running-time classes found within any
  /// single ψ_tcf component.
  int MaxClasses = 0;
  std::vector<Trail> Tree;
  TaintInfo Taint;
  /// First budget trip, if any; a tripped budget forces Known = false.
  DegradationReason Degradation;
  /// Engine work counters (see BlazerResult::Telemetry).
  EngineTelemetry Telemetry;
};

/// Verifies the §3.4 channel-capacity property ccf with capacity \p Q
/// (\p Q < 1 is rejected with a default Known = false result):
/// runs the quotient-partitioning safety phase, then *exhaustively* splits
/// the non-narrow components at secret branches and clusters the resulting
/// trails' bound ranges into observational classes. Each narrow trail
/// realizes one high-independent running-time function f_i of the
/// RBPS(P_{f1..fq}, ccf) instance, so <= Q classes per component verifies
/// ccf.
ChannelCapacityResult
analyzeChannelCapacity(const CfgFunction &F, int Q,
                       const BlazerOptions &Options = BlazerOptions());

/// Renders \p Trail as the paper's annotated regular expression (§4.2):
/// union and Kleene-star constructors that decide a tainted branch are
/// marked |_l, |_h, *_l, ... per \p Taint's branch marks. \returns null
/// when regex extraction exceeds \p SizeLimit nodes.
TrailExpr::Ptr renderAnnotatedTrail(const CfgFunction &F, const Dfa &Trail,
                                    const TaintInfo &Taint,
                                    size_t SizeLimit = 4096);

} // namespace blazer

#endif // BLAZER_CORE_BLAZER_H
