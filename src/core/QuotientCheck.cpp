//===- QuotientCheck.cpp - Semantic quotient-partition checks -------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/QuotientCheck.h"

#include "bounds/BoundAnalysis.h"

#include <functional>

using namespace blazer;

bool blazer::traceInTrail(const Dfa &D, const EdgeAlphabet &A,
                          const std::vector<Edge> &Edges) {
  std::vector<int> Word;
  Word.reserve(Edges.size());
  for (const Edge &E : Edges) {
    int S = A.symbolOrNone(E);
    if (S < 0)
      return false;
    Word.push_back(S);
  }
  return D.accepts(Word);
}

QuotientCheckResult
blazer::checkQuotientPartition(const CfgFunction &F, const BlazerResult &R,
                               const std::vector<InputAssignment> &Inputs) {
  QuotientCheckResult Out;
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);

  // Collect the feasible leaves of the *safety-phase* partition: descend
  // only through taint (low) splits — attack-phase (sec) children split on
  // secrets and are deliberately not ψ_tcf-quotient.
  std::vector<const Trail *> Leaves;
  std::function<void(int)> Collect = [&](int Id) {
    const Trail &T = R.Tree[Id];
    bool HasTaintChildren = false;
    for (int C : T.Children)
      if (R.Tree[C].SplitOn.Low)
        HasTaintChildren = true;
    if (HasTaintChildren) {
      for (int C : T.Children)
        if (R.Tree[C].SplitOn.Low)
          Collect(C);
      return;
    }
    if (T.feasible())
      Leaves.push_back(&T);
  };
  if (!R.Tree.empty())
    Collect(0);

  // Run every input and record trail membership bitsets.
  struct Run {
    const InputAssignment *In;
    std::vector<bool> InLeaf;
  };
  std::vector<Run> Runs;
  for (const InputAssignment &In : Inputs) {
    TraceResult TR = runFunction(F, In);
    if (!TR.Ok)
      continue;
    ++Out.TracesTotal;
    Run Rn;
    Rn.In = &In;
    Rn.InLeaf.resize(Leaves.size());
    bool Covered = false;
    for (size_t L = 0; L < Leaves.size(); ++L) {
      Rn.InLeaf[L] = traceInTrail(Leaves[L]->Auto, A, TR.Edges);
      Covered |= Rn.InLeaf[L];
    }
    if (Covered)
      ++Out.TracesCovered;
    else if (Out.Holds) {
      Out.Holds = false;
      Out.CounterExample =
          "trace of " + In.str() + " is covered by no feasible leaf trail";
    }
    Runs.push_back(std::move(Rn));
  }

  // Pairwise quotient condition.
  for (size_t I = 0; I < Runs.size() && Out.Holds; ++I) {
    for (size_t J = I + 1; J < Runs.size(); ++J) {
      if (!InputAssignment::agreeOn(F, SecurityLevel::Public, *Runs[I].In,
                                    *Runs[J].In))
        continue;
      ++Out.PairsChecked;
      bool Together = false;
      for (size_t L = 0; L < Leaves.size(); ++L)
        if (Runs[I].InLeaf[L] && Runs[J].InLeaf[L]) {
          Together = true;
          break;
        }
      if (!Together) {
        Out.Holds = false;
        Out.CounterExample = "equal-low inputs " + Runs[I].In->str() +
                             " and " + Runs[J].In->str() +
                             " share no leaf trail";
        break;
      }
    }
  }
  return Out;
}
