//===- QuotientCheck.h - Semantic quotient-partition checks -----*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct (enumerative) evaluations of the §3 definitions on concrete
/// traces: whether a family of trails forms a ψ_tcf-quotient partition,
/// and whether a verdict agrees with the empirical 2-safety ground truth.
/// These power the property-based tests of Theorem 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_CORE_QUOTIENTCHECK_H
#define BLAZER_CORE_QUOTIENTCHECK_H

#include "core/Blazer.h"
#include "interp/Interpreter.h"

#include <string>
#include <vector>

namespace blazer {

/// Result of checking the quotient property on enumerated inputs.
struct QuotientCheckResult {
  bool Holds = true;
  /// Populated with the offending input pair when !Holds.
  std::string CounterExample;
  size_t PairsChecked = 0;
  size_t TracesCovered = 0;
  size_t TracesTotal = 0;
};

/// Checks, over all pairs of terminating runs on \p Inputs, that
///   (1) every trace is covered by some feasible leaf trail, and
///   (2) any two traces with equal low inputs share a leaf trail
/// — i.e. the leaf trails of \p R form a ψ_tcf-quotient partition of the
/// sampled traces (Definition in §3.2, with ψ_tcf(π1,π2) =
/// in(π1)[low] = in(π2)[low]).
QuotientCheckResult
checkQuotientPartition(const CfgFunction &F, const BlazerResult &R,
                       const std::vector<InputAssignment> &Inputs);

/// Converts a concrete trace's edges to the symbol word of \p A, checking
/// membership in \p D. \returns false if some edge is missing from the
/// alphabet.
bool traceInTrail(const Dfa &D, const EdgeAlphabet &A,
                  const std::vector<Edge> &Edges);

} // namespace blazer

#endif // BLAZER_CORE_QUOTIENTCHECK_H
