//===- Trail.h - Annotated trails and the trail tree ------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Trail pairs a regular language of CFG-edge strings (held as a DFA)
/// with bookkeeping: how it was carved out of its parent, which branch
/// blocks were already split on, and the bound-analysis verdict. The trail
/// tree of Figure 1 is a vector of these, linked by parent/child ids.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_CORE_TRAIL_H
#define BLAZER_CORE_TRAIL_H

#include "automata/Automaton.h"
#include "automata/TrailExpr.h"
#include "bounds/BoundAnalysis.h"

#include <set>
#include <string>
#include <vector>

namespace blazer {

/// How a child trail restricts its parent at the split branch.
enum class SplitKind {
  None,      ///< The most general trail.
  AvoidTrue, ///< Never takes the branch's true edge.
  AvoidFalse,///< Never takes the branch's false edge.
  TakesBoth, ///< Takes both edges at some point (loop-carried split).
};

/// \returns a short description, e.g. "never takes the true edge".
const char *splitKindName(SplitKind K);

/// One node of the trail tree.
struct Trail {
  int Id = 0;
  int Parent = -1;
  std::vector<int> Children;

  Dfa Auto = Dfa::emptyLanguage(1);

  /// The branch block this trail was split from (in the parent), and how.
  int SplitBlock = -1;
  SplitKind Split = SplitKind::None;
  /// Whether the split was on tainted (low) or secret (high) data — the
  /// edge annotations of Figure 1.
  TaintMark SplitOn;

  /// Branch blocks already consumed along this lineage (no re-splitting).
  std::set<int> UsedSplits;

  /// Filled by the analysis.
  TrailBoundResult Bounds;
  bool Narrow = false;

  /// Human-readable description ("most general trail", "bb4: never takes
  /// 4->5", ...).
  std::string Label;

  bool feasible() const { return Bounds.Feasible; }
  bool isLeaf() const { return Children.empty(); }
};

} // namespace blazer

#endif // BLAZER_CORE_TRAIL_H
