//===- Dominators.cpp - Dominance, post-dominance, control deps -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dominators.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace blazer;

/// Iterative dataflow dominator computation (Cooper/Harvey/Kennedy style but
/// on plain sets is fine at benchmark scale: CFGs are ~100 blocks).
DominatorTree
DominatorTree::compute(int NumBlocks, int Root,
                       const std::vector<std::vector<int>> &Preds,
                       const std::vector<std::vector<int>> &Succs) {
  // Reverse postorder from the root for fast convergence.
  std::vector<int> Order;
  std::vector<bool> Seen(NumBlocks, false);
  std::vector<std::pair<int, size_t>> Stack;
  Stack.push_back({Root, 0});
  Seen[Root] = true;
  while (!Stack.empty()) {
    auto &[B, I] = Stack.back();
    if (I < Succs[B].size()) {
      int S = Succs[B][I++];
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Order.push_back(B);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end()); // Now reverse postorder.

  std::vector<int> Rpo(NumBlocks, -1);
  for (size_t I = 0; I < Order.size(); ++I)
    Rpo[Order[I]] = static_cast<int>(I);

  std::vector<int> Idom(NumBlocks, -1);
  Idom[Root] = Root;

  auto IntersectDoms = [&](int A, int B) {
    while (A != B) {
      while (Rpo[A] > Rpo[B])
        A = Idom[A];
      while (Rpo[B] > Rpo[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : Order) {
      if (B == Root)
        continue;
      int NewIdom = -1;
      for (int P : Preds[B]) {
        if (Idom[P] < 0)
          continue; // Not yet processed / unreachable.
        NewIdom = NewIdom < 0 ? P : IntersectDoms(NewIdom, P);
      }
      if (NewIdom >= 0 && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }

  DominatorTree T;
  T.Root = Root;
  T.Idom = std::move(Idom);
  // Normalize: the root reports -1 (it has no strict dominator).
  T.Idom[Root] = -1;
  return T;
}

DominatorTree DominatorTree::dominators(const CfgFunction &F) {
  int N = static_cast<int>(F.blockCount());
  std::vector<std::vector<int>> Succs(N);
  for (const BasicBlock &B : F.Blocks)
    Succs[B.Id] = B.successors();
  return compute(N, F.Entry, F.predecessors(), Succs);
}

DominatorTree DominatorTree::postDominators(const CfgFunction &F) {
  int N = static_cast<int>(F.blockCount());
  std::vector<std::vector<int>> Succs(N);
  for (const BasicBlock &B : F.Blocks)
    Succs[B.Id] = B.successors();
  // Reverse the graph: post-dominators are dominators of the reversal.
  return compute(N, F.Exit, Succs, F.predecessors());
}

bool DominatorTree::dominates(int A, int B) const {
  if (Idom[B] < 0 && B != Root)
    return false; // B unreachable: nothing dominates it.
  int Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == Root)
      return false;
    Cur = Idom[Cur];
    if (Cur < 0)
      return false;
  }
}

std::vector<std::set<int>> blazer::controlDependence(const CfgFunction &F) {
  int N = static_cast<int>(F.blockCount());
  DominatorTree PostDom = DominatorTree::postDominators(F);
  std::vector<std::set<int>> Deps(N);

  // Blocks that cannot reach the exit are unreachable in the reversed CFG;
  // treat them conservatively as dependent on every branch.
  std::vector<bool> ReachesExit(N, false);
  {
    std::deque<int> Work = {F.Exit};
    ReachesExit[F.Exit] = true;
    auto Preds = F.predecessors();
    while (!Work.empty()) {
      int B = Work.front();
      Work.pop_front();
      for (int P : Preds[B])
        if (!ReachesExit[P]) {
          ReachesExit[P] = true;
          Work.push_back(P);
        }
    }
  }
  std::vector<int> AllBranches;
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch && B.TrueSucc != B.FalseSucc)
      AllBranches.push_back(B.Id);

  for (const BasicBlock &B : F.Blocks) {
    if (!ReachesExit[B.Id]) {
      Deps[B.Id].insert(AllBranches.begin(), AllBranches.end());
      continue;
    }
    for (int C : AllBranches) {
      if (!ReachesExit[C])
        continue;
      const BasicBlock &Branch = F.block(C);
      bool SomeSuccDominated = false;
      for (int S : Branch.successors())
        if (ReachesExit[S] && PostDom.dominates(B.Id, S))
          SomeSuccDominated = true;
      if (!SomeSuccDominated)
        continue;
      // B control-depends on C unless B post-dominates C itself (then B runs
      // no matter which way C goes). The standard definition uses *strict*
      // post-dominance; a branch can be control dependent on itself (loop
      // headers), which the reflexive check below preserves.
      if (B.Id == C || !PostDom.dominates(B.Id, C))
        Deps[B.Id].insert(C);
    }
  }
  return Deps;
}

std::vector<bool> blazer::blocksOnCycles(const CfgFunction &F) {
  // Tarjan SCC; a block is on a cycle iff its SCC has size > 1 or it has a
  // self edge.
  int N = static_cast<int>(F.blockCount());
  std::vector<int> Index(N, -1), Low(N, 0);
  std::vector<bool> OnStack(N, false), OnCycle(N, false);
  std::vector<int> Stack;
  int NextIndex = 0;

  struct Frame {
    int Block;
    size_t SuccIdx;
  };
  for (int Start = 0; Start < N; ++Start) {
    if (Index[Start] >= 0)
      continue;
    std::vector<Frame> Frames{{Start, 0}};
    Index[Start] = Low[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;
    while (!Frames.empty()) {
      Frame &Fr = Frames.back();
      std::vector<int> Succs = F.block(Fr.Block).successors();
      if (Fr.SuccIdx < Succs.size()) {
        int S = Succs[Fr.SuccIdx++];
        if (Index[S] < 0) {
          Index[S] = Low[S] = NextIndex++;
          Stack.push_back(S);
          OnStack[S] = true;
          Frames.push_back({S, 0});
        } else if (OnStack[S]) {
          Low[Fr.Block] = std::min(Low[Fr.Block], Index[S]);
        }
        continue;
      }
      // Pop.
      int B = Fr.Block;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Block] = std::min(Low[Frames.back().Block], Low[B]);
      if (Low[B] == Index[B]) {
        std::vector<int> Component;
        while (true) {
          int X = Stack.back();
          Stack.pop_back();
          OnStack[X] = false;
          Component.push_back(X);
          if (X == B)
            break;
        }
        bool Cyclic = Component.size() > 1;
        if (!Cyclic) {
          for (int S : F.block(B).successors())
            if (S == B)
              Cyclic = true;
        }
        if (Cyclic)
          for (int X : Component)
            OnCycle[X] = true;
      }
    }
  }
  return OnCycle;
}
