//===- Dominators.h - Dominance, post-dominance, control deps ---*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees over the CFG, control-dependence
/// computation (used for implicit-flow taint propagation), and
/// strongly-connected-component / cycle queries used by partition
/// refinement and the bound analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_DATAFLOW_DOMINATORS_H
#define BLAZER_DATAFLOW_DOMINATORS_H

#include "ir/Cfg.h"

#include <set>
#include <vector>

namespace blazer {

/// A dominator (or post-dominator) tree. Nodes unreachable from the root
/// report -1 as their immediate dominator and are dominated by nothing.
class DominatorTree {
public:
  /// Dominators rooted at \p F's entry.
  static DominatorTree dominators(const CfgFunction &F);
  /// Post-dominators: dominators of the reversed CFG rooted at exit.
  static DominatorTree postDominators(const CfgFunction &F);

  /// \returns the immediate dominator of \p Block (-1 for the root or
  /// unreachable nodes).
  int idom(int Block) const { return Idom[Block]; }

  /// \returns true if \p A dominates \p B (reflexive).
  bool dominates(int A, int B) const;

  int root() const { return Root; }

private:
  static DominatorTree compute(int NumBlocks, int Root,
                               const std::vector<std::vector<int>> &Preds,
                               const std::vector<std::vector<int>> &Succs);

  int Root = 0;
  std::vector<int> Idom;
};

/// Control dependence per Ferrante/Ottenstein/Warren: block B is control
/// dependent on branch C when C has a successor from which B is always
/// reached (B post-dominates it) but B does not post-dominate C itself.
///
/// \returns for every block the set of branch blocks it is control dependent
/// on. Blocks that cannot reach the exit are conservatively reported as
/// control dependent on every branch block.
std::vector<std::set<int>> controlDependence(const CfgFunction &F);

/// \returns for each block whether it lies on a CFG cycle.
std::vector<bool> blocksOnCycles(const CfgFunction &F);

} // namespace blazer

#endif // BLAZER_DATAFLOW_DOMINATORS_H
