//===- Taint.cpp - Information-flow (taint) analysis ----------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Taint.h"
#include "dataflow/Dominators.h"

#include <cassert>

using namespace blazer;

std::string blazer::lengthSymbol(const std::string &Name) {
  return Name + ".len";
}

bool TaintInfo::isHighSymbol(const std::string &Symbol) const {
  if (HighVars.count(Symbol))
    return true;
  // "<array>.len" derives its level from the array.
  size_t Pos = Symbol.rfind(".len");
  if (Pos != std::string::npos && Pos + 4 == Symbol.size())
    return HighVars.count(Symbol.substr(0, Pos)) > 0;
  return false;
}

TaintMark TaintInfo::markOf(int Id) const {
  auto It = BranchMarks.find(Id);
  return It == BranchMarks.end() ? TaintMark() : It->second;
}

namespace {

/// Collects every variable (and array) name an expression reads.
void collectReads(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
    return;
  case Expr::Kind::VarRef:
    Out.insert(cast<VarRefExpr>(E)->Name);
    return;
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    Out.insert(A->Array);
    collectReads(A->Index.get(), Out);
    return;
  }
  case Expr::Kind::ArrayLength:
    Out.insert(cast<ArrayLengthExpr>(E)->Array);
    return;
  case Expr::Kind::Unary:
    collectReads(cast<UnaryExpr>(E)->Sub.get(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectReads(B->Lhs.get(), Out);
    collectReads(B->Rhs.get(), Out);
    return;
  }
  case Expr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E)->Args)
      collectReads(A.get(), Out);
    return;
  }
}

/// One taint lattice run seeded with the parameters at \p SeedLevel.
std::set<std::string> propagate(const CfgFunction &F, SecurityLevel SeedLevel,
                                const std::vector<std::set<int>> &CtrlDeps) {
  std::set<std::string> Tainted;
  for (const Param &P : F.Params)
    if (P.Level == SeedLevel)
      Tainted.insert(P.Name);

  auto ExprTainted = [&](const Expr *E) {
    std::set<std::string> Reads;
    collectReads(E, Reads);
    for (const std::string &R : Reads)
      if (Tainted.count(R))
        return true;
    return false;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Branch blocks whose condition currently reads tainted data.
    std::set<int> TaintedBranches;
    for (const BasicBlock &B : F.Blocks)
      if (B.Term == BasicBlock::TermKind::Branch && ExprTainted(B.Cond))
        TaintedBranches.insert(B.Id);

    auto UnderTaintedControl = [&](int Block) {
      for (int C : CtrlDeps[Block])
        if (TaintedBranches.count(C))
          return true;
      return false;
    };

    for (const BasicBlock &B : F.Blocks) {
      bool Implicit = UnderTaintedControl(B.Id);
      for (const Instr &I : B.Instrs) {
        switch (I.K) {
        case Instr::Kind::Assign:
          if ((Implicit || ExprTainted(I.Value)) &&
              Tainted.insert(I.Dest).second)
            Changed = true;
          break;
        case Instr::Kind::ArrayStore:
          // A store taints the whole array (content-level granularity).
          if ((Implicit || ExprTainted(I.Value) || ExprTainted(I.Index)) &&
              Tainted.insert(I.Array).second)
            Changed = true;
          break;
        case Instr::Kind::CallStmt:
        case Instr::Kind::Nop:
          break;
        }
      }
    }
  }
  return Tainted;
}

} // namespace

TaintInfo blazer::runTaintAnalysis(const CfgFunction &F) {
  std::vector<std::set<int>> CtrlDeps = controlDependence(F);

  TaintInfo Info;
  Info.LowVars = propagate(F, SecurityLevel::Public, CtrlDeps);
  Info.HighVars = propagate(F, SecurityLevel::Secret, CtrlDeps);

  for (const BasicBlock &B : F.Blocks) {
    if (B.Term != BasicBlock::TermKind::Branch)
      continue;
    std::set<std::string> Reads;
    collectReads(B.Cond, Reads);
    TaintMark Mark;
    for (const std::string &R : Reads) {
      if (Info.LowVars.count(R))
        Mark.Low = true;
      if (Info.HighVars.count(R))
        Mark.High = true;
    }
    Info.BranchMarks[B.Id] = Mark;
  }
  return Info;
}
