//===- Taint.h - Information-flow (taint) analysis --------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The information-flow analysis that substitutes for JOANA (§5): it
/// classifies variables and branch blocks as low-dependent (influenced by
/// attacker-controlled `public` parameters) and/or high-dependent
/// (influenced by `secret` parameters).
///
/// Both explicit flows (assignments) and implicit flows (assignments under
/// control dependence on a tainted branch) are tracked; implicit flows are
/// what makes splitting trails at "low-only" branches ψ-quotient-sound: a
/// branch whose condition is not high-tainted makes the same decision
/// sequence in any two executions that agree on the low inputs.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_DATAFLOW_TAINT_H
#define BLAZER_DATAFLOW_TAINT_H

#include "automata/TrailExpr.h" // TaintMark
#include "ir/Cfg.h"

#include <map>
#include <set>
#include <string>

namespace blazer {

/// The symbolic-variable name the bound analysis uses for the length of
/// array \p Name ("guess" -> "guess.len", matching the paper's g.len).
std::string lengthSymbol(const std::string &Name);

/// Results of the two taint runs (low seeds and high seeds).
struct TaintInfo {
  /// Variables influenced by public inputs (array names stand for both
  /// their contents and their length).
  std::set<std::string> LowVars;
  /// Variables influenced by secret inputs.
  std::set<std::string> HighVars;
  /// For every two-way branch block: whether its decision depends on low
  /// and/or high data (the §4.2 annotations).
  std::map<int, TaintMark> BranchMarks;

  bool isLowVar(const std::string &Name) const { return LowVars.count(Name); }
  bool isHighVar(const std::string &Name) const {
    return HighVars.count(Name);
  }

  /// Classifies a *symbolic bound variable* (a parameter name or a
  /// "<array>.len" pseudo-variable) as secret-derived.
  bool isHighSymbol(const std::string &Symbol) const;

  /// Mark for branch block \p Id (empty mark for non-branch blocks).
  TaintMark markOf(int Id) const;
};

/// Runs the analysis on \p F to a fixpoint.
TaintInfo runTaintAnalysis(const CfgFunction &F);

} // namespace blazer

#endif // BLAZER_DATAFLOW_TAINT_H
