//===- Interpreter.cpp - Concrete trace semantics --------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>

using namespace blazer;

bool InputAssignment::agreeOn(const CfgFunction &F, SecurityLevel Level,
                              const InputAssignment &A,
                              const InputAssignment &B) {
  for (const Param &P : F.Params) {
    if (F.paramLevel(P.Name) != Level)
      continue;
    if (P.Type == TypeKind::IntArray) {
      auto IA = A.Arrays.find(P.Name);
      auto IB = B.Arrays.find(P.Name);
      std::vector<int64_t> Empty;
      const auto &VA = IA == A.Arrays.end() ? Empty : IA->second;
      const auto &VB = IB == B.Arrays.end() ? Empty : IB->second;
      if (VA != VB)
        return false;
      continue;
    }
    auto IA = A.Ints.find(P.Name);
    auto IB = B.Ints.find(P.Name);
    int64_t VA = IA == A.Ints.end() ? 0 : IA->second;
    int64_t VB = IB == B.Ints.end() ? 0 : IB->second;
    if (VA != VB)
      return false;
  }
  return true;
}

std::string InputAssignment::str() const {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[K, V] : Ints) {
    if (!First)
      OS << ", ";
    First = false;
    OS << K << "=" << V;
  }
  for (const auto &[K, V] : Arrays) {
    if (!First)
      OS << ", ";
    First = false;
    OS << K << "=[";
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        OS << ",";
      OS << V[I];
    }
    OS << "]";
  }
  OS << "}";
  return OS.str();
}

namespace {

/// Mutable machine state for one run.
struct Machine {
  const CfgFunction &F;
  std::map<std::string, int64_t> Scalars;
  std::map<std::string, std::vector<int64_t>> Arrays;
  std::string Error;

  explicit Machine(const CfgFunction &F) : F(F) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  bool eval(const Expr *E, int64_t &Out) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      Out = cast<IntLitExpr>(E)->Value;
      return true;
    case Expr::Kind::BoolLit:
      Out = cast<BoolLitExpr>(E)->Value ? 1 : 0;
      return true;
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      auto It = Scalars.find(V->Name);
      Out = It == Scalars.end() ? 0 : It->second;
      return true;
    }
    case Expr::Kind::ArrayIndex: {
      const auto *A = cast<ArrayIndexExpr>(E);
      int64_t Idx;
      if (!eval(A->Index.get(), Idx))
        return false;
      const std::vector<int64_t> &Arr = Arrays[A->Array];
      if (Idx < 0 || static_cast<size_t>(Idx) >= Arr.size())
        return fail("array index out of bounds on '" + A->Array + "'");
      Out = Arr[static_cast<size_t>(Idx)];
      return true;
    }
    case Expr::Kind::ArrayLength: {
      const auto *A = cast<ArrayLengthExpr>(E);
      Out = static_cast<int64_t>(Arrays[A->Array].size());
      return true;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t S;
      if (!eval(U->Sub.get(), S))
        return false;
      Out = U->Op == UnaryOp::Not ? (S == 0 ? 1 : 0) : -S;
      return true;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      int64_t L, R;
      if (!eval(B->Lhs.get(), L) || !eval(B->Rhs.get(), R))
        return false;
      switch (B->Op) {
      case BinaryOp::Add:
        Out = L + R;
        return true;
      case BinaryOp::Sub:
        Out = L - R;
        return true;
      case BinaryOp::Mul:
        Out = L * R;
        return true;
      case BinaryOp::Div:
        if (R == 0)
          return fail("division by zero");
        Out = L / R;
        return true;
      case BinaryOp::Rem:
        if (R == 0)
          return fail("remainder by zero");
        Out = L % R;
        return true;
      case BinaryOp::Eq:
        Out = L == R;
        return true;
      case BinaryOp::Ne:
        Out = L != R;
        return true;
      case BinaryOp::Lt:
        Out = L < R;
        return true;
      case BinaryOp::Le:
        Out = L <= R;
        return true;
      case BinaryOp::Gt:
        Out = L > R;
        return true;
      case BinaryOp::Ge:
        Out = L >= R;
        return true;
      case BinaryOp::And:
        Out = (L != 0) && (R != 0);
        return true;
      case BinaryOp::Or:
        Out = (L != 0) || (R != 0);
        return true;
      }
      return fail("unknown binary op");
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      const BuiltinInfo *Info = F.Builtins.find(C->Callee);
      assert(Info && "Sema admitted an unknown builtin");
      std::vector<int64_t> Args;
      Args.reserve(C->Args.size());
      for (const ExprPtr &A : C->Args) {
        int64_t V;
        if (!eval(A.get(), V))
          return false;
        Args.push_back(V);
      }
      Out = Info->Eval ? Info->Eval(Args) : 0;
      return true;
    }
    }
    return fail("unknown expression kind");
  }
};

} // namespace

namespace {

/// Shared execution loop; \p Costs selects the model charged (null = the
/// paper's unit model via CfgFunction's own cost methods, untouched so the
/// default path is bit-identical to the pre-cost-model interpreter).
TraceResult runFunctionImpl(const CfgFunction &F, const InputAssignment &In,
                            const CostEvaluator *Costs, int64_t MaxSteps) {
  Machine M(F);
  TraceResult Res;

  for (const Param &P : F.Params) {
    if (P.Type == TypeKind::IntArray) {
      auto It = In.Arrays.find(P.Name);
      M.Arrays[P.Name] =
          It == In.Arrays.end() ? std::vector<int64_t>{} : It->second;
      continue;
    }
    auto It = In.Ints.find(P.Name);
    M.Scalars[P.Name] = It == In.Ints.end() ? 0 : It->second;
  }

  int Cur = F.Entry;
  int64_t Steps = 0;
  while (true) {
    if (++Steps > MaxSteps) {
      Res.Ok = false;
      Res.Error = "step limit exceeded (likely non-termination)";
      return Res;
    }
    const BasicBlock &B = F.block(Cur);
    for (const Instr &I : B.Instrs) {
      Res.Cost += Costs ? Costs->instrCost(I) : F.instrCost(I);
      switch (I.K) {
      case Instr::Kind::Assign: {
        int64_t V = 0;
        if (I.Value && !M.eval(I.Value, V)) {
          Res.Ok = false;
          Res.Error = M.Error;
          return Res;
        }
        M.Scalars[I.Dest] = V;
        break;
      }
      case Instr::Kind::ArrayStore: {
        int64_t Idx, V;
        if (!M.eval(I.Index, Idx) || !M.eval(I.Value, V)) {
          Res.Ok = false;
          Res.Error = M.Error;
          return Res;
        }
        std::vector<int64_t> &Arr = M.Arrays[I.Array];
        if (Idx < 0 || static_cast<size_t>(Idx) >= Arr.size()) {
          Res.Ok = false;
          Res.Error = "array store out of bounds on '" + I.Array + "'";
          return Res;
        }
        Arr[static_cast<size_t>(Idx)] = V;
        break;
      }
      case Instr::Kind::CallStmt: {
        int64_t Ignored;
        if (!M.eval(I.Value, Ignored)) {
          Res.Ok = false;
          Res.Error = M.Error;
          return Res;
        }
        break;
      }
      case Instr::Kind::Nop:
        break;
      }
    }

    int Next = -1;
    switch (B.Term) {
    case BasicBlock::TermKind::Branch: {
      Res.Cost += Costs ? Costs->termCost(B) : F.termCost(B);
      int64_t C;
      if (!M.eval(B.Cond, C)) {
        Res.Ok = false;
        Res.Error = M.Error;
        return Res;
      }
      Next = C != 0 ? B.TrueSucc : B.FalseSucc;
      break;
    }
    case BasicBlock::TermKind::Jump:
      Next = B.TrueSucc;
      break;
    case BasicBlock::TermKind::Return: {
      Res.Cost += Costs ? Costs->termCost(B) : F.termCost(B);
      if (B.RetVal) {
        int64_t V;
        if (!M.eval(B.RetVal, V)) {
          Res.Ok = false;
          Res.Error = M.Error;
          return Res;
        }
        Res.ReturnValue = V;
      }
      Next = B.TrueSucc;
      break;
    }
    case BasicBlock::TermKind::Exit:
      return Res;
    }
    Res.Edges.push_back(Edge{Cur, Next});
    Cur = Next;
  }
}

} // namespace

TraceResult blazer::runFunction(const CfgFunction &F,
                                const InputAssignment &In, int64_t MaxSteps) {
  return runFunctionImpl(F, In, nullptr, MaxSteps);
}

TraceResult blazer::runFunction(const CfgFunction &F,
                                const InputAssignment &In,
                                const CostEvaluator &Costs,
                                int64_t MaxSteps) {
  return runFunctionImpl(F, In, &Costs, MaxSteps);
}

std::vector<InputAssignment> blazer::enumerateInputs(const CfgFunction &F,
                                                     const InputGrid &Grid) {
  // Per-parameter candidate lists, then a cartesian product with a cap.
  struct Candidate {
    bool IsArray;
    std::string Name;
    std::vector<int64_t> IntChoices;
    std::vector<std::vector<int64_t>> ArrayChoices;
  };
  std::vector<Candidate> Cands;
  for (const Param &P : F.Params) {
    Candidate C;
    C.Name = P.Name;
    if (P.Type == TypeKind::IntArray) {
      C.IsArray = true;
      for (size_t Len : Grid.ArrayLengths) {
        // Constant fills...
        for (int64_t V : Grid.ElementValues)
          C.ArrayChoices.push_back(std::vector<int64_t>(Len, V));
        // ...plus one prefix variation per non-trivial length, so that
        // early-exit comparisons (password checks) see both match and
        // mismatch positions.
        if (Len >= 2 && Grid.ElementValues.size() >= 2) {
          std::vector<int64_t> Mixed(Len, Grid.ElementValues[0]);
          Mixed[Len - 1] = Grid.ElementValues[1];
          C.ArrayChoices.push_back(std::move(Mixed));
          std::vector<int64_t> Mixed2(Len, Grid.ElementValues[1]);
          Mixed2[0] = Grid.ElementValues[0];
          C.ArrayChoices.push_back(std::move(Mixed2));
        }
      }
      // De-duplicate (constant fills of length 0 collide).
      std::sort(C.ArrayChoices.begin(), C.ArrayChoices.end());
      C.ArrayChoices.erase(
          std::unique(C.ArrayChoices.begin(), C.ArrayChoices.end()),
          C.ArrayChoices.end());
    } else if (P.Type == TypeKind::Bool) {
      C.IsArray = false;
      C.IntChoices = {0, 1};
    } else {
      C.IsArray = false;
      C.IntChoices = Grid.IntValues;
    }
    Cands.push_back(std::move(C));
  }

  std::vector<InputAssignment> Out;
  InputAssignment Current;
  // Recursive cartesian product with early cutoff.
  std::function<void(size_t)> Rec = [&](size_t I) {
    if (Out.size() >= Grid.MaxAssignments)
      return;
    if (I == Cands.size()) {
      Out.push_back(Current);
      return;
    }
    const Candidate &C = Cands[I];
    if (C.IsArray) {
      for (const auto &A : C.ArrayChoices) {
        Current.Arrays[C.Name] = A;
        Rec(I + 1);
      }
      Current.Arrays.erase(C.Name);
    } else {
      for (int64_t V : C.IntChoices) {
        Current.Ints[C.Name] = V;
        Rec(I + 1);
      }
      Current.Ints.erase(C.Name);
    }
  };
  Rec(0);
  return Out;
}

EmpiricalTcf
blazer::empiricalTimingCheck(const CfgFunction &F,
                             const std::vector<InputAssignment> &Inputs) {
  EmpiricalTcf Out;
  std::vector<TraceResult> Results;
  Results.reserve(Inputs.size());
  for (const InputAssignment &In : Inputs) {
    Results.push_back(runFunction(F, In));
    if (Results.back().Ok)
      ++Out.RunsOk;
    else
      ++Out.RunsFailed;
  }
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (!Results[I].Ok)
      continue;
    for (size_t J = I + 1; J < Inputs.size(); ++J) {
      if (!Results[J].Ok)
        continue;
      if (!InputAssignment::agreeOn(F, SecurityLevel::Public, Inputs[I],
                                    Inputs[J]))
        continue;
      int64_t Gap = std::abs(Results[I].Cost - Results[J].Cost);
      if (Gap > Out.MaxGapEqualLow) {
        Out.MaxGapEqualLow = Gap;
        Out.Witness = std::make_pair(Inputs[I], Inputs[J]);
      }
    }
  }
  return Out;
}
