//===- Interpreter.h - Concrete trace semantics -----------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete execution of a CfgFunction. A run yields the trace (as the
/// sequence of CFG edges taken), the executed-instruction cost under the
/// paper's machine model, and the return value. The interpreter is the
/// ground truth the property tests compare the static verdicts against, and
/// the witness finder CheckAttack's specifications are validated with.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_INTERP_INTERPRETER_H
#define BLAZER_INTERP_INTERPRETER_H

#include "ir/Cfg.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// Concrete inputs for one run: int/bool parameters (bools as 0/1) and
/// arrays.
struct InputAssignment {
  std::map<std::string, int64_t> Ints;
  std::map<std::string, std::vector<int64_t>> Arrays;

  /// \returns true if the two assignments agree on every parameter of \p F
  /// marked with \p Level.
  static bool agreeOn(const CfgFunction &F, SecurityLevel Level,
                      const InputAssignment &A, const InputAssignment &B);

  /// Renders e.g. "{low=3, a=[1,2]}".
  std::string str() const;
};

/// The outcome of one concrete run.
struct TraceResult {
  bool Ok = true;           ///< False on runtime error or step-limit hit.
  std::string Error;        ///< Populated when !Ok.
  std::vector<Edge> Edges;  ///< The path taken, as CFG edges.
  int64_t Cost = 0;         ///< Instructions executed (machine model, §5).
  std::optional<int64_t> ReturnValue;
};

/// Executes \p F on \p In. \p MaxSteps bounds the number of executed basic
/// blocks to keep non-terminating programs testable.
TraceResult runFunction(const CfgFunction &F, const InputAssignment &In,
                        int64_t MaxSteps = 1 << 20);

/// Same execution, but charges \p Costs instead of the paper's unit model.
/// A unit-model evaluator reproduces the overload above bit-for-bit (the
/// differential cost-oracle suite asserts this).
TraceResult runFunction(const CfgFunction &F, const InputAssignment &In,
                        const CostEvaluator &Costs,
                        int64_t MaxSteps = 1 << 20);

//===----------------------------------------------------------------------===//
// Input enumeration and the empirical 2-safety check
//===----------------------------------------------------------------------===//

/// A small grid of candidate inputs per parameter kind, used to enumerate
/// InputAssignments for property tests and witness search.
struct InputGrid {
  /// Candidate values for int parameters.
  std::vector<int64_t> IntValues = {-2, -1, 0, 1, 3};
  /// Candidate lengths for array parameters.
  std::vector<size_t> ArrayLengths = {0, 1, 3};
  /// Candidate element values (arrays are filled with combinations drawn
  /// from this pool; to keep the grid tractable, each array is constant or
  /// a prefix-variation, see implementation).
  std::vector<int64_t> ElementValues = {0, 1, 7};
  /// Caps the total number of generated assignments.
  size_t MaxAssignments = 4096;
};

/// Enumerates concrete inputs for \p F's signature over \p Grid.
std::vector<InputAssignment> enumerateInputs(const CfgFunction &F,
                                             const InputGrid &Grid);

/// The result of empirically checking the timing-channel-freedom property
/// on an input set: the maximal cost gap among pairs of runs that agree on
/// all public (low) inputs, and a witnessing pair.
struct EmpiricalTcf {
  int64_t MaxGapEqualLow = 0;
  std::optional<std::pair<InputAssignment, InputAssignment>> Witness;
  size_t RunsOk = 0;
  size_t RunsFailed = 0;
};

/// Runs \p F on every input and compares all equal-low pairs. This is a
/// direct (exponential) evaluation of the tcf property of §3 — usable only
/// on small grids, which is exactly what ground-truth testing needs.
EmpiricalTcf empiricalTimingCheck(const CfgFunction &F,
                                  const std::vector<InputAssignment> &Inputs);

} // namespace blazer

#endif // BLAZER_INTERP_INTERPRETER_H
