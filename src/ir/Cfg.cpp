//===- Cfg.cpp - Control-flow-graph intermediate representation -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cfg.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace blazer;

std::vector<int> BasicBlock::successors() const {
  switch (Term) {
  case TermKind::Branch:
    if (TrueSucc == FalseSucc)
      return {TrueSucc};
    return {TrueSucc, FalseSucc};
  case TermKind::Jump:
  case TermKind::Return:
    return {TrueSucc};
  case TermKind::Exit:
    return {};
  }
  return {};
}

std::vector<Edge> CfgFunction::edges() const {
  std::vector<Edge> Out;
  for (const BasicBlock &B : Blocks)
    for (int S : B.successors())
      Out.push_back(Edge{B.Id, S});
  // Successors() already avoids duplicating a two-way branch to the same
  // target, so edges are unique; keep them sorted for determinism.
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<std::vector<int>> CfgFunction::predecessors() const {
  std::vector<std::vector<int>> Preds(Blocks.size());
  for (const BasicBlock &B : Blocks)
    for (int S : B.successors())
      Preds[S].push_back(B.Id);
  return Preds;
}

int64_t CfgFunction::exprCost(const Expr *E) const {
  if (!E)
    return 0;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::ArrayLength:
    return 1; // One load/push.
  case Expr::Kind::ArrayIndex:
    return 2 + exprCost(cast<ArrayIndexExpr>(E)->Index.get());
  case Expr::Kind::Unary:
    return 1 + exprCost(cast<UnaryExpr>(E)->Sub.get());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return 1 + exprCost(B->Lhs.get()) + exprCost(B->Rhs.get());
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    const BuiltinInfo *Info = Builtins.find(C->Callee);
    assert(Info && "Sema admitted an unknown builtin");
    int64_t Cost = 1 + Info->Cost;
    for (const ExprPtr &A : C->Args)
      Cost += exprCost(A.get());
    return Cost;
  }
  }
  return 1;
}

int64_t CfgFunction::instrCost(const Instr &I) const {
  int64_t Cost = 1; // The store / effect itself.
  Cost += exprCost(I.Value);
  Cost += exprCost(I.Index);
  return Cost;
}

int64_t CfgFunction::termCost(const BasicBlock &B) const {
  switch (B.Term) {
  case BasicBlock::TermKind::Branch:
    return 1 + exprCost(B.Cond);
  case BasicBlock::TermKind::Return:
    return 1 + exprCost(B.RetVal);
  case BasicBlock::TermKind::Jump:
  case BasicBlock::TermKind::Exit:
    return 0; // Fall-through and the sink are free.
  }
  return 0;
}

int64_t CfgFunction::blockCost(const BasicBlock &B) const {
  int64_t Cost = 0;
  for (const Instr &I : B.Instrs)
    Cost += instrCost(I);
  return Cost + termCost(B);
}

//===----------------------------------------------------------------------===//
// CostEvaluator
//===----------------------------------------------------------------------===//

CostEvaluator::CostEvaluator(const CfgFunction &F, const CostModel &M)
    : F(F), Model(M) {
  bool Weighted = M.Kind == CostModelKind::Weighted;
  auto W = [&](const char *Op, int64_t UnitW) {
    return Weighted ? M.weight(Op) : UnitW;
  };
  WLoad = W("load", 1);
  WArrayRead = W("arrayread", 2);
  WArith = W("arith", 1);
  WStore = W("store", 1);
  WCall = W("call", 1);
  WBuiltin = W("builtin", 1);
  WBranch = W("branch", 1);
  WReturn = W("return", 1);
  Surcharge = M.Kind == CostModelKind::MemAccess ? M.Surcharge : 0;
  if (!Surcharge)
    return;
  // Explicit-flow secret closure: Secret parameters, then any variable
  // assigned from (or array stored through) something already in the set,
  // to a fixpoint. Branch conditions are intentionally not propagated —
  // see the class comment.
  for (const auto &[Name, Level] : F.ParamLevels)
    if (Level == SecurityLevel::Secret)
      SecretVars.insert(Name);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs) {
        if (I.K == Instr::Kind::Assign && !SecretVars.count(I.Dest) &&
            secretExpr(I.Value))
          Changed |= SecretVars.insert(I.Dest).second;
        else if (I.K == Instr::Kind::ArrayStore &&
                 !SecretVars.count(I.Array) &&
                 (secretExpr(I.Value) || secretExpr(I.Index)))
          Changed |= SecretVars.insert(I.Array).second;
      }
  }
}

bool CostEvaluator::secretExpr(const Expr *E) const {
  if (!E)
    return false;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
    return false;
  case Expr::Kind::VarRef:
    return SecretVars.count(cast<VarRefExpr>(E)->Name) != 0;
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    return SecretVars.count(A->Array) != 0 || secretExpr(A->Index.get());
  }
  case Expr::Kind::ArrayLength:
    return SecretVars.count(cast<ArrayLengthExpr>(E)->Array) != 0;
  case Expr::Kind::Unary:
    return secretExpr(cast<UnaryExpr>(E)->Sub.get());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return secretExpr(B->Lhs.get()) || secretExpr(B->Rhs.get());
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (const ExprPtr &A : C->Args)
      if (secretExpr(A.get()))
        return true;
    return false;
  }
  }
  return false;
}

int64_t CostEvaluator::exprCost(const Expr *E) const {
  if (!E)
    return 0;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::ArrayLength:
    return WLoad;
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    int64_t Cost = WArrayRead + exprCost(A->Index.get());
    // The cache model keys on the address, so the surcharge fires when
    // the *index* is secret-derived, not when the array contents are.
    if (Surcharge && secretExpr(A->Index.get()))
      Cost += Surcharge;
    return Cost;
  }
  case Expr::Kind::Unary:
    return WArith + exprCost(cast<UnaryExpr>(E)->Sub.get());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return WArith + exprCost(B->Lhs.get()) + exprCost(B->Rhs.get());
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    const BuiltinInfo *Info = F.Builtins.find(C->Callee);
    assert(Info && "Sema admitted an unknown builtin");
    int64_t Cost = WCall + WBuiltin * Info->Cost;
    for (const ExprPtr &A : C->Args)
      Cost += exprCost(A.get());
    return Cost;
  }
  }
  return WLoad;
}

int64_t CostEvaluator::instrCost(const Instr &I) const {
  int64_t Cost = WStore;
  Cost += exprCost(I.Value);
  Cost += exprCost(I.Index);
  if (Surcharge && I.K == Instr::Kind::ArrayStore && secretExpr(I.Index))
    Cost += Surcharge;
  return Cost;
}

int64_t CostEvaluator::termCost(const BasicBlock &B) const {
  switch (B.Term) {
  case BasicBlock::TermKind::Branch:
    return WBranch + exprCost(B.Cond);
  case BasicBlock::TermKind::Return:
    return WReturn + exprCost(B.RetVal);
  case BasicBlock::TermKind::Jump:
  case BasicBlock::TermKind::Exit:
    return 0;
  }
  return 0;
}

int64_t CostEvaluator::blockCost(const BasicBlock &B) const {
  int64_t Cost = 0;
  for (const Instr &I : B.Instrs)
    Cost += instrCost(I);
  return Cost + termCost(B);
}

SecurityLevel CfgFunction::paramLevel(const std::string &Name) const {
  auto It = ParamLevels.find(Name);
  return It == ParamLevels.end() ? SecurityLevel::Public : It->second;
}

static std::string instrToString(const Instr &I) {
  switch (I.K) {
  case Instr::Kind::Assign:
    return I.Dest + " = " + exprToString(I.Value);
  case Instr::Kind::ArrayStore:
    return I.Array + "[" + exprToString(I.Index) + "] = " +
           exprToString(I.Value);
  case Instr::Kind::CallStmt:
    return exprToString(I.Value);
  case Instr::Kind::Nop:
    return "skip";
  }
  return "<instr>";
}

std::string CfgFunction::str() const {
  std::ostringstream OS;
  OS << "fn " << Name << " (entry=" << Entry << ", exit=" << Exit << ")\n";
  for (const BasicBlock &B : Blocks) {
    OS << "  bb" << B.Id << ":\n";
    for (const Instr &I : B.Instrs)
      OS << "    " << instrToString(I) << "\n";
    switch (B.Term) {
    case BasicBlock::TermKind::Branch:
      OS << "    br " << exprToString(B.Cond) << " ? bb" << B.TrueSucc
         << " : bb" << B.FalseSucc << "\n";
      break;
    case BasicBlock::TermKind::Jump:
      OS << "    jmp bb" << B.TrueSucc << "\n";
      break;
    case BasicBlock::TermKind::Return:
      OS << "    ret" << (B.RetVal ? " " + exprToString(B.RetVal) : "")
         << " -> bb" << B.TrueSucc << "\n";
      break;
    case BasicBlock::TermKind::Exit:
      OS << "    exit\n";
      break;
    }
  }
  return OS.str();
}

std::string CfgFunction::toDot() const {
  std::ostringstream OS;
  OS << "digraph \"" << Name << "\" {\n  node [shape=box];\n";
  for (const BasicBlock &B : Blocks) {
    OS << "  bb" << B.Id << " [label=\"bb" << B.Id;
    for (const Instr &I : B.Instrs)
      OS << "\\n" << instrToString(I);
    if (B.Term == BasicBlock::TermKind::Branch)
      OS << "\\nbr " << exprToString(B.Cond);
    OS << "\"];\n";
    std::vector<int> Succs = B.successors();
    for (size_t I = 0; I < Succs.size(); ++I) {
      OS << "  bb" << B.Id << " -> bb" << Succs[I];
      if (B.Term == BasicBlock::TermKind::Branch && Succs.size() == 2)
        OS << " [label=\"" << (I == 0 ? "T" : "F") << "\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}
