//===- Cfg.h - Control-flow-graph intermediate representation ---*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CFG IR that everything downstream (taint, trails, abstract
/// interpretation, bound analysis, the interpreter) operates on. It plays
/// the role WALA's SSA CFG plays for the original Blazer: basic blocks of
/// unit-cost instructions, branch terminators with explicit condition
/// expressions, and one distinguished entry and exit block.
///
/// The machine model follows §5 of the paper: every executed instruction
/// counts one unit; builtin calls additionally charge their
/// manually-specified cost summary.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_IR_CFG_H
#define BLAZER_IR_CFG_H

#include "lang/Ast.h"
#include "lang/Builtins.h"
#include "lang/Sema.h"
#include "support/CostModel.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace blazer {

/// A directed CFG edge between block ids.
struct Edge {
  int From = -1;
  int To = -1;

  bool operator==(const Edge &E) const {
    return From == E.From && To == E.To;
  }
  bool operator<(const Edge &E) const {
    return From != E.From ? From < E.From : To < E.To;
  }

  /// Renders e.g. "3->7".
  std::string str() const {
    return std::to_string(From) + "->" + std::to_string(To);
  }
};

/// One straight-line instruction.
struct Instr {
  enum class Kind {
    Assign,     ///< Dest = Value
    ArrayStore, ///< Array[Index] = Value
    CallStmt,   ///< Value (a CallExpr) evaluated for effect/cost
    Nop,        ///< skip
  };

  Kind K = Kind::Nop;
  std::string Dest;  ///< Assign target.
  std::string Array; ///< ArrayStore target.
  const Expr *Index = nullptr;
  const Expr *Value = nullptr;
  int Line = 0;
};

/// A basic block: instructions plus one terminator.
struct BasicBlock {
  enum class TermKind {
    Branch, ///< conditional: Cond ? TrueSucc : FalseSucc
    Jump,   ///< unconditional to TrueSucc
    Return, ///< sets the return value, then edges to the exit block
    Exit,   ///< the distinguished sink; no successors
  };

  int Id = -1;
  std::vector<Instr> Instrs;
  TermKind Term = TermKind::Jump;
  const Expr *Cond = nullptr;   ///< For Branch.
  const Expr *RetVal = nullptr; ///< For Return (may be null).
  int TrueSucc = -1;
  int FalseSucc = -1;
  int Line = 0; ///< Source line of the terminator.

  /// \returns the successor ids (0, 1, or 2 of them).
  std::vector<int> successors() const;
};

/// A lowered function: the unit of analysis.
///
/// Keeps the originating AST alive because instructions reference Expr nodes
/// owned by it.
class CfgFunction {
public:
  std::string Name;
  std::vector<Param> Params;
  std::map<std::string, TypeKind> VarTypes;
  std::map<std::string, SecurityLevel> ParamLevels;
  std::vector<BasicBlock> Blocks;
  int Entry = 0;
  int Exit = 0;
  bool HasReturnType = false;
  TypeKind ReturnType = TypeKind::Int;

  /// Shared ownership of the AST whose Expr nodes the blocks reference.
  std::shared_ptr<Program> OwnedAst;
  /// Builtin registry used for call cost summaries.
  BuiltinRegistry Builtins;

  const BasicBlock &block(int Id) const { return Blocks[Id]; }
  size_t blockCount() const { return Blocks.size(); }

  /// All edges, sorted; this is the trail alphabet.
  std::vector<Edge> edges() const;

  /// Predecessor block ids of every block.
  std::vector<std::vector<int>> predecessors() const;

  /// Cost of executing every instruction of \p B plus its terminator, per
  /// the machine model.
  int64_t blockCost(const BasicBlock &B) const;

  /// Cost of one instruction: one unit for the store/effect plus the cost
  /// of evaluating its expressions.
  int64_t instrCost(const Instr &I) const;

  /// Cost of evaluating \p E, bytecode-style: one unit per operation
  /// (load, arithmetic, comparison, array access); builtin calls charge
  /// their manually-specified summary.
  int64_t exprCost(const Expr *E) const;

  /// Cost of \p B's terminator (branch/return evaluation).
  int64_t termCost(const BasicBlock &B) const;

  /// \returns the security level of variable \p Name: parameters report
  /// their annotation; locals report Public (their taint is computed by the
  /// dataflow, not declared).
  SecurityLevel paramLevel(const std::string &Name) const;

  /// Human-readable listing of the whole CFG.
  std::string str() const;

  /// Graphviz dot rendering.
  std::string toDot() const;
};

/// A CostModel bound to one function: the per-expression / per-block cost
/// every consumer charges (interpreter steps, bound-analysis cost
/// polynomials, the self-composition counter). CfgFunction's own *Cost
/// methods stay as the paper's fixed unit model; a CostEvaluator built
/// over the unit model reproduces them bit-for-bit (asserted by the
/// differential suite in tests/CostModelTest.cpp).
///
/// For the memaccess model the evaluator needs to know which array
/// accesses have secret-dependent addresses. It computes an explicit-flow
/// closure of the Secret parameters over assignments and array stores —
/// deliberately ignoring implicit flows through branch conditions (the
/// dataflow layer above IR handles those for verdicts; here an
/// over-approximation would only inflate costs, and the surcharge is a
/// static per-site decision so the concrete interpreter and the abstract
/// per-block cost charge identically by construction).
class CostEvaluator {
public:
  CostEvaluator(const CfgFunction &F, const CostModel &M);

  int64_t exprCost(const Expr *E) const;
  int64_t instrCost(const Instr &I) const;
  int64_t termCost(const BasicBlock &B) const;
  int64_t blockCost(const BasicBlock &B) const;

  const CostModel &model() const { return Model; }

  /// Whether \p Var is in the explicit-flow secret closure (exposed for
  /// the cost-model tests).
  bool secretDerived(const std::string &Var) const {
    return SecretVars.count(Var) != 0;
  }

  /// Whether evaluating \p E reads a secret-derived variable or array.
  bool secretExpr(const Expr *E) const;

private:
  const CfgFunction &F;
  CostModel Model;
  /// Resolved per-opcode weights (unit defaults unless Kind == Weighted).
  int64_t WLoad, WArrayRead, WArith, WStore, WCall, WBuiltin, WBranch,
      WReturn;
  /// Per secret-indexed array access; 0 unless Kind == MemAccess.
  int64_t Surcharge;
  std::set<std::string> SecretVars;
};

/// Lowers function \p Name of the checked program \p P. The returned
/// CfgFunction shares ownership of \p P.
///
/// Short-circuit '&&'/'||' are lowered as strict boolean operators (both
/// sides evaluate); the benchmark programs do not rely on short-circuiting.
CfgFunction lowerFunction(std::shared_ptr<Program> P, const std::string &Name,
                          const SemaResult &Sema,
                          const BuiltinRegistry &Registry);

/// Convenience front door: parse + typecheck \p Source, then lower \p Name.
Result<CfgFunction> compileFunction(const std::string &Source,
                                    const std::string &Name,
                                    const BuiltinRegistry &Registry);

/// Compiles the sole function of \p Source (error if it has several).
Result<CfgFunction> compileSingleFunction(const std::string &Source,
                                          const BuiltinRegistry &Registry);

} // namespace blazer

#endif // BLAZER_IR_CFG_H
