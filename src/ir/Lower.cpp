//===- Lower.cpp - AST to CFG lowering ------------------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cfg.h"
#include "lang/Parser.h"

#include <cassert>

using namespace blazer;

namespace {

/// Stateful lowering of one function body to basic blocks.
class Lowerer {
public:
  Lowerer(CfgFunction &F) : F(F) {}

  void run(const FunctionDecl &Decl) {
    int EntryId = newBlock();
    F.Entry = EntryId;
    ExitId = newBlock();
    F.Blocks[ExitId].Term = BasicBlock::TermKind::Exit;
    Cur = EntryId;
    lowerBlock(Decl.Body);
    // Fall off the end: implicit `return;`.
    if (!terminated()) {
      BasicBlock &B = block(Cur);
      B.Term = BasicBlock::TermKind::Return;
      B.RetVal = nullptr;
      B.TrueSucc = ExitId;
    }
    F.Exit = ExitId;
    pruneUnreachable();
  }

private:
  BasicBlock &block(int Id) { return F.Blocks[Id]; }

  int newBlock() {
    BasicBlock B;
    B.Id = static_cast<int>(F.Blocks.size());
    // A fresh block defaults to an unterminated state; use Jump with an
    // invalid successor as the sentinel.
    B.Term = BasicBlock::TermKind::Jump;
    B.TrueSucc = -1;
    F.Blocks.push_back(B);
    return B.Id;
  }

  bool terminated() {
    const BasicBlock &B = block(Cur);
    return !(B.Term == BasicBlock::TermKind::Jump && B.TrueSucc == -1);
  }

  void lowerBlock(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts) {
      if (terminated()) {
        // Unreachable trailing code; lower it into a fresh dead block so the
        // AST stays fully visited, then let pruning discard it.
        Cur = newBlock();
      }
      lowerStmt(S.get());
    }
  }

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::VarDecl: {
      const auto *D = cast<VarDeclStmt>(S);
      if (D->Type == TypeKind::IntArray)
        return; // Declarations of array locals carry no runtime effect here.
      Instr I;
      I.K = Instr::Kind::Assign;
      I.Dest = D->Name;
      I.Value = D->Init.get(); // Null init means default zero; see interp.
      I.Line = S->line();
      block(Cur).Instrs.push_back(I);
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Instr I;
      I.K = Instr::Kind::Assign;
      I.Dest = A->Name;
      I.Value = A->Value.get();
      I.Line = S->line();
      block(Cur).Instrs.push_back(I);
      return;
    }
    case Stmt::Kind::ArrayStore: {
      const auto *A = cast<ArrayStoreStmt>(S);
      Instr I;
      I.K = Instr::Kind::ArrayStore;
      I.Array = A->Array;
      I.Index = A->Index.get();
      I.Value = A->Value.get();
      I.Line = S->line();
      block(Cur).Instrs.push_back(I);
      return;
    }
    case Stmt::Kind::Skip: {
      Instr I;
      I.K = Instr::Kind::Nop;
      I.Line = S->line();
      block(Cur).Instrs.push_back(I);
      return;
    }
    case Stmt::Kind::ExprStmt: {
      const auto *E = cast<ExprStmt>(S);
      Instr I;
      I.K = Instr::Kind::CallStmt;
      I.Value = E->E.get();
      I.Line = S->line();
      block(Cur).Instrs.push_back(I);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      BasicBlock &B = block(Cur);
      B.Term = BasicBlock::TermKind::Return;
      B.RetVal = R->Value.get();
      B.TrueSucc = ExitId;
      B.Line = S->line();
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      int CondBlock = Cur;
      int ThenEntry = newBlock();
      int ElseEntry = newBlock();
      int Join = newBlock();
      BasicBlock &B = block(CondBlock);
      B.Term = BasicBlock::TermKind::Branch;
      B.Cond = I->Cond.get();
      B.TrueSucc = ThenEntry;
      B.FalseSucc = ElseEntry;
      B.Line = S->line();

      Cur = ThenEntry;
      lowerBlock(I->Then);
      if (!terminated()) {
        block(Cur).Term = BasicBlock::TermKind::Jump;
        block(Cur).TrueSucc = Join;
      }
      Cur = ElseEntry;
      lowerBlock(I->Else);
      if (!terminated()) {
        block(Cur).Term = BasicBlock::TermKind::Jump;
        block(Cur).TrueSucc = Join;
      }
      Cur = Join;
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      int Header = newBlock();
      int BodyEntry = newBlock();
      int After = newBlock();
      // Close the current block into the header.
      BasicBlock &Pre = block(Cur);
      assert(!terminated() && "lowerBlock guarantees an open block");
      Pre.Term = BasicBlock::TermKind::Jump;
      Pre.TrueSucc = Header;

      BasicBlock &H = block(Header);
      H.Term = BasicBlock::TermKind::Branch;
      H.Cond = W->Cond.get();
      H.TrueSucc = BodyEntry;
      H.FalseSucc = After;
      H.Line = S->line();

      Cur = BodyEntry;
      lowerBlock(W->Body);
      if (!terminated()) {
        block(Cur).Term = BasicBlock::TermKind::Jump;
        block(Cur).TrueSucc = Header;
      }
      Cur = After;
      return;
    }
    }
  }

  /// Removes blocks unreachable from the entry and renumbers the survivors,
  /// so the "Size" metric (Table 1) counts only live blocks.
  void pruneUnreachable() {
    std::vector<bool> Live(F.Blocks.size(), false);
    std::vector<int> Work = {F.Entry};
    Live[F.Entry] = true;
    // The exit block always survives, even for functions that loop forever.
    if (!Live[ExitId])
      Live[ExitId] = true;
    while (!Work.empty()) {
      int Id = Work.back();
      Work.pop_back();
      for (int S : F.Blocks[Id].successors()) {
        if (Live[S])
          continue;
        Live[S] = true;
        Work.push_back(S);
      }
    }
    std::vector<int> Remap(F.Blocks.size(), -1);
    std::vector<BasicBlock> Kept;
    for (const BasicBlock &B : F.Blocks) {
      if (!Live[B.Id])
        continue;
      Remap[B.Id] = static_cast<int>(Kept.size());
      Kept.push_back(B);
    }
    for (BasicBlock &B : Kept) {
      B.Id = Remap[B.Id];
      if (B.TrueSucc >= 0)
        B.TrueSucc = Remap[B.TrueSucc];
      if (B.FalseSucc >= 0)
        B.FalseSucc = Remap[B.FalseSucc];
      assert((B.Term == BasicBlock::TermKind::Exit ||
              B.TrueSucc >= 0) &&
             "live block must have live successors");
    }
    F.Blocks = std::move(Kept);
    F.Entry = Remap[F.Entry];
    F.Exit = Remap[ExitId];
  }

  CfgFunction &F;
  int Cur = 0;
  int ExitId = 0;
};

} // namespace

CfgFunction blazer::lowerFunction(std::shared_ptr<Program> P,
                                  const std::string &Name,
                                  const SemaResult &Sema,
                                  const BuiltinRegistry &Registry) {
  const FunctionDecl *Decl = P->find(Name);
  assert(Decl && "lowering an unknown function");
  auto InfoIt = Sema.Functions.find(Name);
  assert(InfoIt != Sema.Functions.end() && "function was not checked");

  CfgFunction F;
  F.Name = Name;
  F.Params = Decl->Params;
  F.VarTypes = InfoIt->second.VarTypes;
  F.ParamLevels = InfoIt->second.ParamLevels;
  F.HasReturnType = Decl->HasReturnType;
  F.ReturnType = Decl->ReturnType;
  F.OwnedAst = std::move(P);
  F.Builtins = Registry;

  Lowerer L(F);
  L.run(*Decl);
  return F;
}

Result<CfgFunction> blazer::compileFunction(const std::string &Source,
                                            const std::string &Name,
                                            const BuiltinRegistry &Registry) {
  auto Parsed = parseProgram(Source);
  if (!Parsed)
    return Parsed.diag();
  auto P = std::make_shared<Program>(Parsed.take());
  auto Sema = analyzeProgram(*P, Registry);
  if (!Sema)
    return Sema.diag();
  if (!P->find(Name))
    return Result<CfgFunction>::error("no function named '" + Name + "'");
  return lowerFunction(P, Name, *Sema, Registry);
}

Result<CfgFunction>
blazer::compileSingleFunction(const std::string &Source,
                              const BuiltinRegistry &Registry) {
  auto Parsed = parseProgram(Source);
  if (!Parsed)
    return Parsed.diag();
  if (Parsed->Functions.size() != 1)
    return Result<CfgFunction>::error("expected exactly one function");
  std::string Name = Parsed->Functions[0]->Name;
  auto P = std::make_shared<Program>(Parsed.take());
  auto Sema = analyzeProgram(*P, Registry);
  if (!Sema)
    return Sema.diag();
  return lowerFunction(P, Name, *Sema, Registry);
}
