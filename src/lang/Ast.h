//===- Ast.h - Mini-language abstract syntax tree ---------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the mini-language. A Program is a set of functions; each function
/// declares `public` (low / attacker-controlled) and `secret` (high)
/// parameters — the security lattice the timing-channel property is stated
/// over. LLVM-style tag-based RTTI (no dynamic_cast).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_AST_H
#define BLAZER_LANG_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace blazer {

/// The mini-language's three types.
enum class TypeKind { Int, Bool, IntArray };

/// \returns "int", "bool" or "int[]".
const char *typeName(TypeKind T);

/// Security classification of a parameter (paper: low = tainted /
/// attacker-controlled, high = secret).
enum class SecurityLevel { Public, Secret };

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    IntLit,
    BoolLit,
    VarRef,
    ArrayIndex,
    ArrayLength,
    Unary,
    Binary,
    Call,
  };

  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  int line() const { return Line; }
  int col() const { return Col; }
  void setLoc(int L, int C) {
    Line = L;
    Col = C;
  }

  /// Set by Sema.
  TypeKind type() const { return Type; }
  void setType(TypeKind T) { Type = T; }

protected:
  explicit Expr(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
  TypeKind Type = TypeKind::Int;
  int Line = 0;
  int Col = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t V) : Expr(Kind::IntLit), Value(V) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

  int64_t Value;
};

class BoolLitExpr : public Expr {
public:
  explicit BoolLitExpr(bool V) : Expr(Kind::BoolLit), Value(V) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLit; }

  bool Value;
};

class VarRefExpr : public Expr {
public:
  explicit VarRefExpr(std::string Name)
      : Expr(Kind::VarRef), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

  std::string Name;
};

class ArrayIndexExpr : public Expr {
public:
  ArrayIndexExpr(std::string Array, ExprPtr Index)
      : Expr(Kind::ArrayIndex), Array(std::move(Array)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayIndex; }

  std::string Array;
  ExprPtr Index;
};

class ArrayLengthExpr : public Expr {
public:
  explicit ArrayLengthExpr(std::string Array)
      : Expr(Kind::ArrayLength), Array(std::move(Array)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayLength; }

  std::string Array;
};

enum class UnaryOp { Not, Neg };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub)
      : Expr(Kind::Unary), Op(Op), Sub(std::move(Sub)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

  UnaryOp Op;
  ExprPtr Sub;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// \returns the source spelling, e.g. "<=".
const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr L, ExprPtr R)
      : Expr(Kind::Binary), Op(Op), Lhs(std::move(L)), Rhs(std::move(R)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Call), Callee(std::move(Callee)), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// Minimal LLVM-style cast helpers over the Expr hierarchy.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }
template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "bad Expr cast");
  return static_cast<const T *>(E);
}
template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind { VarDecl, Assign, ArrayStore, If, While, Return, Skip,
                    ExprStmt };

  virtual ~Stmt() = default;

  Kind kind() const { return TheKind; }
  int line() const { return Line; }
  void setLine(int L) { Line = L; }

protected:
  explicit Stmt(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
  int Line = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, TypeKind Type, ExprPtr Init)
      : Stmt(Kind::VarDecl), Name(std::move(Name)), Type(Type),
        Init(std::move(Init)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

  std::string Name;
  TypeKind Type;
  ExprPtr Init; ///< May be null (default-initialized to 0 / false).
};

class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Name, ExprPtr Value)
      : Stmt(Kind::Assign), Name(std::move(Name)), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

  std::string Name;
  ExprPtr Value;
};

class ArrayStoreStmt : public Stmt {
public:
  ArrayStoreStmt(std::string Array, ExprPtr Index, ExprPtr Value)
      : Stmt(Kind::ArrayStore), Array(std::move(Array)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::ArrayStore; }

  std::string Array;
  ExprPtr Index;
  ExprPtr Value;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtList Then, StmtList Else)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

  ExprPtr Cond;
  StmtList Then;
  StmtList Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtList Body)
      : Stmt(Kind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

  ExprPtr Cond;
  StmtList Body;
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(ExprPtr Value)
      : Stmt(Kind::Return), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

  ExprPtr Value; ///< May be null for a bare `return;`.
};

class SkipStmt : public Stmt {
public:
  SkipStmt() : Stmt(Kind::Skip) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Skip; }
};

class ExprStmt : public Stmt {
public:
  explicit ExprStmt(ExprPtr E) : Stmt(Kind::ExprStmt), E(std::move(E)) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }

  ExprPtr E;
};

/// Stmt cast helpers.
template <typename T> bool isa(const Stmt *S) { return T::classof(S); }
template <typename T> const T *cast(const Stmt *S) {
  assert(isa<T>(S) && "bad Stmt cast");
  return static_cast<const T *>(S);
}
template <typename T> const T *dyn_cast(const Stmt *S) {
  return isa<T>(S) ? static_cast<const T *>(S) : nullptr;
}

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

struct Param {
  std::string Name;
  TypeKind Type;
  SecurityLevel Level;
};

struct FunctionDecl {
  std::string Name;
  std::vector<Param> Params;
  bool HasReturnType = false;
  TypeKind ReturnType = TypeKind::Int;
  StmtList Body;
};

/// Renders \p E as source text (fully parenthesized where needed).
std::string exprToString(const Expr *E);

struct Program {
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  /// \returns the function named \p Name, or null.
  const FunctionDecl *find(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace blazer

#endif // BLAZER_LANG_AST_H
