//===- AstClone.cpp - Expression cloning with renaming --------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/AstClone.h"

using namespace blazer;

static std::string renamed(const std::string &Name, const RenameMap &M) {
  auto It = M.find(Name);
  return It == M.end() ? Name : It->second;
}

ExprPtr blazer::cloneExpr(const Expr *E, const RenameMap &Renames) {
  ExprPtr Out;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Out = std::make_unique<IntLitExpr>(cast<IntLitExpr>(E)->Value);
    break;
  case Expr::Kind::BoolLit:
    Out = std::make_unique<BoolLitExpr>(cast<BoolLitExpr>(E)->Value);
    break;
  case Expr::Kind::VarRef:
    Out = std::make_unique<VarRefExpr>(
        renamed(cast<VarRefExpr>(E)->Name, Renames));
    break;
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    Out = std::make_unique<ArrayIndexExpr>(
        renamed(A->Array, Renames), cloneExpr(A->Index.get(), Renames));
    break;
  }
  case Expr::Kind::ArrayLength:
    Out = std::make_unique<ArrayLengthExpr>(
        renamed(cast<ArrayLengthExpr>(E)->Array, Renames));
    break;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Out = std::make_unique<UnaryExpr>(U->Op,
                                      cloneExpr(U->Sub.get(), Renames));
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out = std::make_unique<BinaryExpr>(B->Op,
                                       cloneExpr(B->Lhs.get(), Renames),
                                       cloneExpr(B->Rhs.get(), Renames));
    break;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(C->Args.size());
    for (const ExprPtr &A : C->Args)
      Args.push_back(cloneExpr(A.get(), Renames));
    Out = std::make_unique<CallExpr>(C->Callee, std::move(Args));
    break;
  }
  }
  Out->setType(E->type());
  Out->setLoc(E->line(), E->col());
  return Out;
}
