//===- AstClone.h - Expression cloning with renaming ------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clones expressions while renaming variable references — the
/// building block of the self-composition baseline, which needs two
/// alpha-renamed copies of every condition and right-hand side.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_ASTCLONE_H
#define BLAZER_LANG_ASTCLONE_H

#include "lang/Ast.h"

#include <map>
#include <string>

namespace blazer {

/// Maps old variable/array names to new ones; names absent from the map are
/// kept.
using RenameMap = std::map<std::string, std::string>;

/// \returns a deep copy of \p E with every variable and array reference
/// renamed through \p Renames. Types are preserved.
ExprPtr cloneExpr(const Expr *E, const RenameMap &Renames);

} // namespace blazer

#endif // BLAZER_LANG_ASTCLONE_H
