//===- AstPrinter.cpp - Expression rendering ------------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

#include <sstream>

using namespace blazer;

std::string blazer::exprToString(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->Value);
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(E)->Value ? "true" : "false";
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(E)->Name;
  case Expr::Kind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(E);
    return A->Array + "[" + exprToString(A->Index.get()) + "]";
  }
  case Expr::Kind::ArrayLength:
    return cast<ArrayLengthExpr>(E)->Array + ".length";
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return std::string(U->Op == UnaryOp::Not ? "!" : "-") + "(" +
           exprToString(U->Sub.get()) + ")";
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return "(" + exprToString(B->Lhs.get()) + " " + binaryOpSpelling(B->Op) +
           " " + exprToString(B->Rhs.get()) + ")";
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::ostringstream OS;
    OS << C->Callee << "(";
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << exprToString(C->Args[I].get());
    }
    OS << ")";
    return OS.str();
  }
  }
  return "<expr>";
}
