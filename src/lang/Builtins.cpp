//===- Builtins.cpp - Builtin functions with manual cost summaries --------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Builtins.h"

#include <cassert>

using namespace blazer;

void BuiltinRegistry::add(BuiltinInfo Info) {
  assert(!Info.Name.empty() && "builtin needs a name");
  Builtins[Info.Name] = std::move(Info);
}

const BuiltinInfo *BuiltinRegistry::find(const std::string &Name) const {
  auto It = Builtins.find(Name);
  return It == Builtins.end() ? nullptr : &It->second;
}

BuiltinRegistry BuiltinRegistry::standard() {
  BuiltinRegistry R;

  // A cheap deterministic stand-in for a cryptographic hash; only the cost
  // summary matters to the analysis, only determinism matters to the
  // interpreter.
  BuiltinInfo Md5;
  Md5.Name = "md5";
  Md5.ParamTypes = {TypeKind::Int};
  Md5.ReturnType = TypeKind::Int;
  Md5.Cost = 860;
  Md5.Eval = [](const std::vector<int64_t> &Args) {
    uint64_t X = static_cast<uint64_t>(Args[0]) * 0x9E3779B97F4A7C15ULL;
    X ^= X >> 29;
    X *= 0xBF58476D1CE4E5B9ULL;
    X ^= X >> 32;
    return static_cast<int64_t>(X & 0x7FFFFFFFFFFFFFFFULL);
  };
  R.add(std::move(Md5));

  // Modular multiply at a fixed (4096-bit) width, as in the Java BigInteger
  // calls of the modPow STAC benchmarks.
  BuiltinInfo MulMod;
  MulMod.Name = "mulmod";
  MulMod.ParamTypes = {TypeKind::Int, TypeKind::Int, TypeKind::Int};
  MulMod.ReturnType = TypeKind::Int;
  MulMod.Cost = 97;
  MulMod.Eval = [](const std::vector<int64_t> &Args) {
    int64_t M = Args[2] == 0 ? 1 : Args[2];
    // Use unsigned 128-bit arithmetic to avoid overflow UB.
    unsigned __int128 P = static_cast<unsigned __int128>(
                              static_cast<uint64_t>(Args[0])) *
                          static_cast<uint64_t>(Args[1]);
    uint64_t Mod = static_cast<uint64_t>(M < 0 ? -M : M);
    if (Mod == 0)
      Mod = 1;
    return static_cast<int64_t>(P % Mod);
  };
  R.add(std::move(MulMod));

  // Plain big-integer multiply.
  BuiltinInfo BigMul;
  BigMul.Name = "bigmul";
  BigMul.ParamTypes = {TypeKind::Int, TypeKind::Int};
  BigMul.ReturnType = TypeKind::Int;
  BigMul.Cost = 61;
  BigMul.Eval = [](const std::vector<int64_t> &Args) {
    return static_cast<int64_t>(static_cast<uint64_t>(Args[0]) *
                                static_cast<uint64_t>(Args[1]));
  };
  R.add(std::move(BigMul));

  return R;
}
