//===- Builtins.h - Builtin functions with manual cost summaries -*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builtin (library) functions. Blazer's bound analysis "relies on
/// manually-specified bound summaries for interprocedural function calls"
/// (§5) — e.g. Java BigInteger arithmetic in the modPow benchmarks and md5
/// in unixlogin. Each builtin here carries such a summary: a fixed
/// instruction cost charged when the call executes.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_BUILTINS_H
#define BLAZER_LANG_BUILTINS_H

#include "lang/Ast.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace blazer {

/// Signature, cost summary, and concrete semantics of one builtin.
struct BuiltinInfo {
  std::string Name;
  std::vector<TypeKind> ParamTypes;
  TypeKind ReturnType = TypeKind::Int;
  /// Manually-specified running-time summary, in machine-model instructions.
  int64_t Cost = 1;
  /// Concrete semantics for the interpreter (deterministic, total).
  std::function<int64_t(const std::vector<int64_t> &)> Eval;
};

/// Registry of builtins visible to Sema, the interpreter, and the bound
/// analysis.
class BuiltinRegistry {
public:
  /// The standard library used by the benchmark suite:
  ///  - md5(x) -> int             cost 860  (hash of one password)
  ///  - mulmod(a, b, m) -> int    cost 97   (4096-bit multiply + mod)
  ///  - bigmul(a, b) -> int       cost 61   (4096-bit multiply)
  static BuiltinRegistry standard();

  /// Registers or replaces a builtin.
  void add(BuiltinInfo Info);

  /// \returns the builtin named \p Name, or null.
  const BuiltinInfo *find(const std::string &Name) const;

private:
  std::map<std::string, BuiltinInfo> Builtins;
};

} // namespace blazer

#endif // BLAZER_LANG_BUILTINS_H
