//===- Lexer.cpp - Mini-language lexer ------------------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <map>

using namespace blazer;

const char *blazer::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwPublic:
    return "'public'";
  case TokenKind::KwSecret:
    return "'secret'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Dot:
    return "'.'";
  }
  return "<unknown>";
}

static const std::map<std::string, TokenKind> &keywordMap() {
  static const std::map<std::string, TokenKind> Keywords = {
      {"fn", TokenKind::KwFn},         {"var", TokenKind::KwVar},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"return", TokenKind::KwReturn},
      {"skip", TokenKind::KwSkip},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"public", TokenKind::KwPublic},
      {"secret", TokenKind::KwSecret}, {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},
  };
  return Keywords;
}

Result<std::vector<Token>> blazer::lex(const std::string &Source) {
  std::vector<Token> Tokens;
  int Line = 1;
  int Col = 1;
  size_t I = 0;
  const size_t N = Source.size();

  auto Advance = [&]() {
    if (I < N && Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto Peek = [&](size_t Off = 0) -> char {
    return I + Off < N ? Source[I + Off] : '\0';
  };
  auto Emit = [&](TokenKind K, int L, int C) {
    Token T;
    T.Kind = K;
    T.Line = L;
    T.Col = C;
    Tokens.push_back(T);
  };

  while (I < N) {
    char C = Peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      Advance();
      continue;
    }
    if (C == '/' && Peek(1) == '/') {
      while (I < N && Peek() != '\n')
        Advance();
      continue;
    }
    int TLine = Line;
    int TCol = Col;
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (I < N && std::isdigit(static_cast<unsigned char>(Peek()))) {
        V = V * 10 + (Peek() - '0');
        Advance();
      }
      Token T;
      T.Kind = TokenKind::IntLiteral;
      T.IntValue = V;
      T.Line = TLine;
      T.Col = TCol;
      Tokens.push_back(T);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                       Peek() == '_')) {
        Text += Peek();
        Advance();
      }
      auto It = keywordMap().find(Text);
      Token T;
      T.Line = TLine;
      T.Col = TCol;
      if (It != keywordMap().end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokenKind::Identifier;
        T.Text = std::move(Text);
      }
      Tokens.push_back(T);
      continue;
    }
    // Two-character operators first.
    auto Two = [&](char A, char B, TokenKind K) -> bool {
      if (C != A || Peek(1) != B)
        return false;
      Advance();
      Advance();
      Emit(K, TLine, TCol);
      return true;
    };
    if (Two('-', '>', TokenKind::Arrow) || Two('=', '=', TokenKind::EqEq) ||
        Two('!', '=', TokenKind::BangEq) ||
        Two('<', '=', TokenKind::LessEq) ||
        Two('>', '=', TokenKind::GreaterEq) ||
        Two('&', '&', TokenKind::AmpAmp) ||
        Two('|', '|', TokenKind::PipePipe))
      continue;
    TokenKind K;
    switch (C) {
    case '(':
      K = TokenKind::LParen;
      break;
    case ')':
      K = TokenKind::RParen;
      break;
    case '{':
      K = TokenKind::LBrace;
      break;
    case '}':
      K = TokenKind::RBrace;
      break;
    case '[':
      K = TokenKind::LBracket;
      break;
    case ']':
      K = TokenKind::RBracket;
      break;
    case ',':
      K = TokenKind::Comma;
      break;
    case ';':
      K = TokenKind::Semicolon;
      break;
    case ':':
      K = TokenKind::Colon;
      break;
    case '=':
      K = TokenKind::Assign;
      break;
    case '+':
      K = TokenKind::Plus;
      break;
    case '-':
      K = TokenKind::Minus;
      break;
    case '*':
      K = TokenKind::Star;
      break;
    case '/':
      K = TokenKind::Slash;
      break;
    case '%':
      K = TokenKind::Percent;
      break;
    case '!':
      K = TokenKind::Bang;
      break;
    case '<':
      K = TokenKind::Less;
      break;
    case '>':
      K = TokenKind::Greater;
      break;
    case '.':
      K = TokenKind::Dot;
      break;
    default:
      return Result<std::vector<Token>>::error(
          std::string("unexpected character '") + C + "'", TLine, TCol);
    }
    Advance();
    Emit(K, TLine, TCol);
  }
  Emit(TokenKind::Eof, Line, Col);
  return Tokens;
}
