//===- Lexer.h - Mini-language lexer ----------------------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the mini-language. Supports `//` line comments.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_LEXER_H
#define BLAZER_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Result.h"

#include <vector>

namespace blazer {

/// Tokenizes \p Source. On success the returned vector always ends with an
/// Eof token; on failure a located diagnostic describes the bad character.
Result<std::vector<Token>> lex(const std::string &Source);

} // namespace blazer

#endif // BLAZER_LANG_LEXER_H
