//===- Parser.cpp - Mini-language recursive-descent parser ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Lexer.h"

using namespace blazer;

const char *blazer::typeName(TypeKind T) {
  switch (T) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::IntArray:
    return "int[]";
  }
  return "<type>";
}

const char *blazer::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over the token stream. Methods return null on
/// error and record the first diagnostic in Err.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Result<Program> run() {
    Program P;
    while (!peek().is(TokenKind::Eof)) {
      auto F = parseFunction();
      if (!F)
        return *Err;
      P.Functions.push_back(std::move(F));
    }
    if (P.Functions.empty())
      return fail<Program>("expected at least one function");
    return P;
  }

private:
  const Token &peek(size_t Off = 0) const {
    size_t I = Pos + Off;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool match(TokenKind K) {
    if (!peek().is(K))
      return false;
    advance();
    return true;
  }

  void error(const std::string &Msg) {
    if (!Err)
      Err = Diag{Msg, peek().Line, peek().Col};
  }
  template <typename T> Result<T> fail(const std::string &Msg) {
    error(Msg);
    return *Err;
  }
  bool expect(TokenKind K, const char *What) {
    if (match(K))
      return true;
    error(std::string("expected ") + tokenKindName(K) + " " + What +
          ", found " + tokenKindName(peek().Kind));
    return false;
  }

  std::unique_ptr<FunctionDecl> parseFunction() {
    if (!expect(TokenKind::KwFn, "to begin a function"))
      return nullptr;
    auto F = std::make_unique<FunctionDecl>();
    if (!peek().is(TokenKind::Identifier)) {
      error("expected function name");
      return nullptr;
    }
    F->Name = advance().Text;
    if (!expect(TokenKind::LParen, "after function name"))
      return nullptr;
    if (!peek().is(TokenKind::RParen)) {
      do {
        SecurityLevel Level;
        if (match(TokenKind::KwPublic)) {
          Level = SecurityLevel::Public;
        } else if (match(TokenKind::KwSecret)) {
          Level = SecurityLevel::Secret;
        } else {
          error("parameter must be marked 'public' or 'secret'");
          return nullptr;
        }
        if (!peek().is(TokenKind::Identifier)) {
          error("expected parameter name");
          return nullptr;
        }
        std::string Name = advance().Text;
        if (!expect(TokenKind::Colon, "after parameter name"))
          return nullptr;
        auto Ty = parseType();
        if (!Ty)
          return nullptr;
        F->Params.push_back(Param{std::move(Name), *Ty, Level});
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "to close the parameter list"))
      return nullptr;
    if (match(TokenKind::Arrow)) {
      auto Ty = parseType();
      if (!Ty)
        return nullptr;
      F->HasReturnType = true;
      F->ReturnType = *Ty;
    }
    if (!parseBlock(F->Body))
      return nullptr;
    return F;
  }

  std::optional<TypeKind> parseType() {
    if (match(TokenKind::KwBool))
      return TypeKind::Bool;
    if (match(TokenKind::KwInt)) {
      if (match(TokenKind::LBracket)) {
        if (!expect(TokenKind::RBracket, "to close 'int['"))
          return std::nullopt;
        return TypeKind::IntArray;
      }
      return TypeKind::Int;
    }
    error("expected a type ('int', 'bool' or 'int[]')");
    return std::nullopt;
  }

  bool parseBlock(StmtList &Out) {
    if (!expect(TokenKind::LBrace, "to open a block"))
      return false;
    while (!peek().is(TokenKind::RBrace)) {
      if (peek().is(TokenKind::Eof)) {
        error("unterminated block");
        return false;
      }
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      Out.push_back(std::move(S));
    }
    advance(); // consume '}'
    return true;
  }

  StmtPtr parseStmt() {
    int Line = peek().Line;
    StmtPtr S = parseStmtInner();
    if (S)
      S->setLine(Line);
    return S;
  }

  StmtPtr parseStmtInner() {
    switch (peek().Kind) {
    case TokenKind::KwVar:
      return parseVarDecl();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwReturn: {
      advance();
      ExprPtr Value;
      if (!peek().is(TokenKind::Semicolon)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokenKind::Semicolon, "after return"))
        return nullptr;
      return std::make_unique<ReturnStmt>(std::move(Value));
    }
    case TokenKind::KwSkip: {
      advance();
      if (!expect(TokenKind::Semicolon, "after skip"))
        return nullptr;
      return std::make_unique<SkipStmt>();
    }
    case TokenKind::Identifier: {
      // Assignment, array store, or a call statement.
      if (peek(1).is(TokenKind::Assign)) {
        std::string Name = advance().Text;
        advance(); // '='
        ExprPtr Value = parseExpr();
        if (!Value || !expect(TokenKind::Semicolon, "after assignment"))
          return nullptr;
        return std::make_unique<AssignStmt>(std::move(Name),
                                            std::move(Value));
      }
      if (peek(1).is(TokenKind::LBracket)) {
        // Could be `a[i] = v;` — parse the index and require '='.
        std::string Name = advance().Text;
        advance(); // '['
        ExprPtr Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket, "after array index"))
          return nullptr;
        if (!expect(TokenKind::Assign, "in array store"))
          return nullptr;
        ExprPtr Value = parseExpr();
        if (!Value || !expect(TokenKind::Semicolon, "after array store"))
          return nullptr;
        return std::make_unique<ArrayStoreStmt>(
            std::move(Name), std::move(Index), std::move(Value));
      }
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::Semicolon, "after expression statement"))
        return nullptr;
      return std::make_unique<ExprStmt>(std::move(E));
    }
    default:
      error(std::string("expected a statement, found ") +
            tokenKindName(peek().Kind));
      return nullptr;
    }
  }

  StmtPtr parseVarDecl() {
    advance(); // 'var'
    if (!peek().is(TokenKind::Identifier)) {
      error("expected variable name");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (!expect(TokenKind::Colon, "after variable name"))
      return nullptr;
    auto Ty = parseType();
    if (!Ty)
      return nullptr;
    ExprPtr Init;
    if (match(TokenKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon, "after variable declaration"))
      return nullptr;
    return std::make_unique<VarDeclStmt>(std::move(Name), *Ty,
                                         std::move(Init));
  }

  StmtPtr parseIf() {
    advance(); // 'if'
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    StmtList Then;
    if (!parseBlock(Then))
      return nullptr;
    StmtList Else;
    if (match(TokenKind::KwElse)) {
      if (peek().is(TokenKind::KwIf)) {
        StmtPtr Nested = parseStmt();
        if (!Nested)
          return nullptr;
        Else.push_back(std::move(Nested));
      } else if (!parseBlock(Else)) {
        return nullptr;
      }
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }

  StmtPtr parseWhile() {
    advance(); // 'while'
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "after while condition"))
      return nullptr;
    StmtList Body;
    if (!parseBlock(Body))
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr located(ExprPtr E, int Line, int Col) {
    if (E)
      E->setLoc(Line, Col);
    return E;
  }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && peek().is(TokenKind::PipePipe)) {
      int Line = peek().Line, Col = peek().Col;
      advance();
      ExprPtr R = parseAnd();
      if (!R)
        return nullptr;
      L = located(std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(L),
                                               std::move(R)),
                  Line, Col);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (L && peek().is(TokenKind::AmpAmp)) {
      int Line = peek().Line, Col = peek().Col;
      advance();
      ExprPtr R = parseCmp();
      if (!R)
        return nullptr;
      L = located(std::make_unique<BinaryExpr>(BinaryOp::And, std::move(L),
                                               std::move(R)),
                  Line, Col);
    }
    return L;
  }

  std::optional<BinaryOp> cmpOp() {
    switch (peek().Kind) {
    case TokenKind::EqEq:
      return BinaryOp::Eq;
    case TokenKind::BangEq:
      return BinaryOp::Ne;
    case TokenKind::Less:
      return BinaryOp::Lt;
    case TokenKind::LessEq:
      return BinaryOp::Le;
    case TokenKind::Greater:
      return BinaryOp::Gt;
    case TokenKind::GreaterEq:
      return BinaryOp::Ge;
    default:
      return std::nullopt;
    }
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    if (auto Op = cmpOp()) {
      int Line = peek().Line, Col = peek().Col;
      advance();
      ExprPtr R = parseAdd();
      if (!R)
        return nullptr;
      return located(
          std::make_unique<BinaryExpr>(*Op, std::move(L), std::move(R)), Line,
          Col);
    }
    return L;
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (L &&
           (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus))) {
      BinaryOp Op =
          peek().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      int Line = peek().Line, Col = peek().Col;
      advance();
      ExprPtr R = parseMul();
      if (!R)
        return nullptr;
      L = located(
          std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R)), Line,
          Col);
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (L && (peek().is(TokenKind::Star) || peek().is(TokenKind::Slash) ||
                 peek().is(TokenKind::Percent))) {
      BinaryOp Op = peek().is(TokenKind::Star)    ? BinaryOp::Mul
                    : peek().is(TokenKind::Slash) ? BinaryOp::Div
                                                  : BinaryOp::Rem;
      int Line = peek().Line, Col = peek().Col;
      advance();
      ExprPtr R = parseUnary();
      if (!R)
        return nullptr;
      L = located(
          std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R)), Line,
          Col);
    }
    return L;
  }

  ExprPtr parseUnary() {
    int Line = peek().Line, Col = peek().Col;
    if (match(TokenKind::Bang)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return located(std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Sub)),
                     Line, Col);
    }
    if (match(TokenKind::Minus)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return located(std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Sub)),
                     Line, Col);
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    int Line = peek().Line, Col = peek().Col;
    switch (peek().Kind) {
    case TokenKind::IntLiteral: {
      int64_t V = advance().IntValue;
      return located(std::make_unique<IntLitExpr>(V), Line, Col);
    }
    case TokenKind::KwTrue:
      advance();
      return located(std::make_unique<BoolLitExpr>(true), Line, Col);
    case TokenKind::KwFalse:
      advance();
      return located(std::make_unique<BoolLitExpr>(false), Line, Col);
    case TokenKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::RParen, "to close parenthesis"))
        return nullptr;
      return E;
    }
    case TokenKind::Identifier: {
      std::string Name = advance().Text;
      if (match(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!peek().is(TokenKind::RParen)) {
          do {
            ExprPtr A = parseExpr();
            if (!A)
              return nullptr;
            Args.push_back(std::move(A));
          } while (match(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen, "to close call arguments"))
          return nullptr;
        return located(
            std::make_unique<CallExpr>(std::move(Name), std::move(Args)),
            Line, Col);
      }
      if (match(TokenKind::LBracket)) {
        ExprPtr Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket, "after array index"))
          return nullptr;
        return located(std::make_unique<ArrayIndexExpr>(std::move(Name),
                                                        std::move(Index)),
                       Line, Col);
      }
      if (match(TokenKind::Dot)) {
        if (!peek().is(TokenKind::Identifier) || peek().Text != "length") {
          error("only '.length' is supported after '.'");
          return nullptr;
        }
        advance();
        return located(std::make_unique<ArrayLengthExpr>(std::move(Name)),
                       Line, Col);
      }
      return located(std::make_unique<VarRefExpr>(std::move(Name)), Line,
                     Col);
    }
    default:
      error(std::string("expected an expression, found ") +
            tokenKindName(peek().Kind));
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::optional<Diag> Err;
};

} // namespace

Result<Program> blazer::parseProgram(const std::string &Source) {
  auto Tokens = lex(Source);
  if (!Tokens)
    return Tokens.diag();
  Parser P(Tokens.take());
  return P.run();
}
