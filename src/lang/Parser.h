//===- Parser.h - Mini-language recursive-descent parser --------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses mini-language source text into an AST. Grammar sketch:
///
/// \code
///   program := fn*
///   fn      := "fn" ID "(" (param ("," param)*)? ")" ("->" type)? block
///   param   := ("public" | "secret") ID ":" type
///   type    := "int" | "bool" | "int" "[" "]"
///   stmt    := "var" ID ":" type ("=" expr)? ";"
///            | ID "=" expr ";" | ID "[" expr "]" "=" expr ";"
///            | "if" "(" expr ")" block ("else" (block | if-stmt))?
///            | "while" "(" expr ")" block
///            | "return" expr? ";" | "skip" ";" | expr ";"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_PARSER_H
#define BLAZER_LANG_PARSER_H

#include "lang/Ast.h"
#include "support/Result.h"

namespace blazer {

/// Lexes and parses \p Source into a Program (unchecked; run Sema next).
Result<Program> parseProgram(const std::string &Source);

} // namespace blazer

#endif // BLAZER_LANG_PARSER_H
