//===- Sema.cpp - Mini-language semantic analysis -------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

using namespace blazer;

namespace {

class SemaChecker {
public:
  SemaChecker(const BuiltinRegistry &Registry) : Registry(Registry) {}

  Result<SemaResult> run(Program &P) {
    SemaResult Out;
    for (auto &F : P.Functions) {
      if (Out.Functions.count(F->Name))
        return fail("duplicate function '" + F->Name + "'", 0, 0);
      Info = FunctionInfo();
      Fn = F.get();
      for (const Param &Pa : F->Params) {
        if (Info.VarTypes.count(Pa.Name))
          return fail("duplicate parameter '" + Pa.Name + "'", 0, 0);
        Info.VarTypes[Pa.Name] = Pa.Type;
        Info.ParamLevels[Pa.Name] = Pa.Level;
      }
      if (!checkBlock(F->Body))
        return *Err;
      Out.Functions[F->Name] = Info;
    }
    return Out;
  }

private:
  Result<SemaResult> fail(const std::string &Msg, int Line, int Col) {
    if (!Err)
      Err = Diag{Msg, Line, Col};
    return *Err;
  }
  bool error(const std::string &Msg, int Line = 0, int Col = 0) {
    if (!Err)
      Err = Diag{Msg, Line, Col};
    return false;
  }

  bool checkBlock(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts)
      if (!checkStmt(S.get()))
        return false;
    return true;
  }

  bool checkStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::VarDecl: {
      const auto *D = cast<VarDeclStmt>(S);
      if (Info.VarTypes.count(D->Name))
        return error("redeclaration of '" + D->Name + "'", S->line());
      if (D->Type == TypeKind::IntArray && D->Init)
        return error("array locals cannot be initialized", S->line());
      if (D->Init) {
        if (!checkExpr(D->Init.get()))
          return false;
        if (D->Init->type() != D->Type)
          return error("initializer type " + std::string(typeName(
                           D->Init->type())) + " does not match '" + D->Name +
                           ": " + typeName(D->Type) + "'",
                       S->line());
      }
      Info.VarTypes[D->Name] = D->Type;
      return true;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      auto It = Info.VarTypes.find(A->Name);
      if (It == Info.VarTypes.end())
        return error("assignment to undeclared '" + A->Name + "'", S->line());
      if (It->second == TypeKind::IntArray)
        return error("cannot reassign array '" + A->Name + "'", S->line());
      if (!checkExpr(A->Value.get()))
        return false;
      if (A->Value->type() != It->second)
        return error("type mismatch assigning to '" + A->Name + "'",
                     S->line());
      return true;
    }
    case Stmt::Kind::ArrayStore: {
      const auto *A = cast<ArrayStoreStmt>(S);
      if (!requireArray(A->Array, S->line()))
        return false;
      if (!checkExpr(A->Index.get()) || !checkExpr(A->Value.get()))
        return false;
      if (A->Index->type() != TypeKind::Int)
        return error("array index must be int", S->line());
      if (A->Value->type() != TypeKind::Int)
        return error("array element must be int", S->line());
      return true;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      if (!checkExpr(I->Cond.get()))
        return false;
      if (I->Cond->type() != TypeKind::Bool)
        return error("if condition must be bool", S->line());
      return checkBlock(I->Then) && checkBlock(I->Else);
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      if (!checkExpr(W->Cond.get()))
        return false;
      if (W->Cond->type() != TypeKind::Bool)
        return error("while condition must be bool", S->line());
      return checkBlock(W->Body);
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (!R->Value)
        return true;
      if (!checkExpr(R->Value.get()))
        return false;
      if (Fn->HasReturnType && R->Value->type() != Fn->ReturnType)
        return error("return type mismatch", S->line());
      return true;
    }
    case Stmt::Kind::Skip:
      return true;
    case Stmt::Kind::ExprStmt:
      return checkExpr(cast<ExprStmt>(S)->E.get());
    }
    return error("unknown statement kind");
  }

  bool requireArray(const std::string &Name, int Line) {
    auto It = Info.VarTypes.find(Name);
    if (It == Info.VarTypes.end())
      return error("use of undeclared '" + Name + "'", Line);
    if (It->second != TypeKind::IntArray)
      return error("'" + Name + "' is not an array", Line);
    return true;
  }

  bool checkExpr(Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      E->setType(TypeKind::Int);
      return true;
    case Expr::Kind::BoolLit:
      E->setType(TypeKind::Bool);
      return true;
    case Expr::Kind::VarRef: {
      const auto *V = cast<VarRefExpr>(E);
      auto It = Info.VarTypes.find(V->Name);
      if (It == Info.VarTypes.end())
        return error("use of undeclared '" + V->Name + "'", E->line(),
                     E->col());
      if (It->second == TypeKind::IntArray)
        return error("array '" + V->Name +
                         "' can only be indexed or measured",
                     E->line(), E->col());
      E->setType(It->second);
      return true;
    }
    case Expr::Kind::ArrayIndex: {
      auto *A = static_cast<ArrayIndexExpr *>(E);
      if (!requireArray(A->Array, E->line()))
        return false;
      if (!checkExpr(A->Index.get()))
        return false;
      if (A->Index->type() != TypeKind::Int)
        return error("array index must be int", E->line(), E->col());
      E->setType(TypeKind::Int);
      return true;
    }
    case Expr::Kind::ArrayLength: {
      const auto *A = cast<ArrayLengthExpr>(E);
      if (!requireArray(A->Array, E->line()))
        return false;
      E->setType(TypeKind::Int);
      return true;
    }
    case Expr::Kind::Unary: {
      auto *U = static_cast<UnaryExpr *>(E);
      if (!checkExpr(U->Sub.get()))
        return false;
      if (U->Op == UnaryOp::Not) {
        if (U->Sub->type() != TypeKind::Bool)
          return error("'!' needs a bool operand", E->line(), E->col());
        E->setType(TypeKind::Bool);
      } else {
        if (U->Sub->type() != TypeKind::Int)
          return error("unary '-' needs an int operand", E->line(), E->col());
        E->setType(TypeKind::Int);
      }
      return true;
    }
    case Expr::Kind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E);
      if (!checkExpr(B->Lhs.get()) || !checkExpr(B->Rhs.get()))
        return false;
      TypeKind L = B->Lhs->type();
      TypeKind R = B->Rhs->type();
      switch (B->Op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Rem:
        if (L != TypeKind::Int || R != TypeKind::Int)
          return error(std::string("'") + binaryOpSpelling(B->Op) +
                           "' needs int operands",
                       E->line(), E->col());
        E->setType(TypeKind::Int);
        return true;
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        if (L != R || L == TypeKind::IntArray)
          return error("'==' needs matching int or bool operands", E->line(),
                       E->col());
        E->setType(TypeKind::Bool);
        return true;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        if (L != TypeKind::Int || R != TypeKind::Int)
          return error("comparison needs int operands", E->line(), E->col());
        E->setType(TypeKind::Bool);
        return true;
      case BinaryOp::And:
      case BinaryOp::Or:
        if (L != TypeKind::Bool || R != TypeKind::Bool)
          return error("logical operator needs bool operands", E->line(),
                       E->col());
        E->setType(TypeKind::Bool);
        return true;
      }
      return error("unknown binary operator");
    }
    case Expr::Kind::Call: {
      auto *C = static_cast<CallExpr *>(E);
      const BuiltinInfo *B = Registry.find(C->Callee);
      if (!B)
        return error("unknown builtin '" + C->Callee + "'", E->line(),
                     E->col());
      if (C->Args.size() != B->ParamTypes.size())
        return error("'" + C->Callee + "' expects " +
                         std::to_string(B->ParamTypes.size()) + " arguments",
                     E->line(), E->col());
      for (size_t I = 0; I < C->Args.size(); ++I) {
        if (!checkExpr(C->Args[I].get()))
          return false;
        if (C->Args[I]->type() != B->ParamTypes[I])
          return error("argument " + std::to_string(I + 1) + " of '" +
                           C->Callee + "' has the wrong type",
                       E->line(), E->col());
      }
      E->setType(B->ReturnType);
      return true;
    }
    }
    return error("unknown expression kind");
  }

  const BuiltinRegistry &Registry;
  FunctionInfo Info;
  const FunctionDecl *Fn = nullptr;
  std::optional<Diag> Err;
};

} // namespace

Result<SemaResult> blazer::analyzeProgram(Program &P,
                                          const BuiltinRegistry &Registry) {
  SemaChecker Checker(Registry);
  return Checker.run(P);
}
