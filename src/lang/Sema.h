//===- Sema.h - Mini-language semantic analysis -----------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis: name resolution, type checking, and collection of the
/// per-function symbol table (variable types and parameter security levels)
/// later consumed by IR lowering and the taint analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_SEMA_H
#define BLAZER_LANG_SEMA_H

#include "lang/Ast.h"
#include "lang/Builtins.h"
#include "support/Result.h"

#include <map>

namespace blazer {

/// Per-function facts Sema establishes.
struct FunctionInfo {
  /// Types of all parameters and locals (flat function scope; the language
  /// forbids shadowing).
  std::map<std::string, TypeKind> VarTypes;
  /// Security levels of the parameters only.
  std::map<std::string, SecurityLevel> ParamLevels;
};

/// Semantic results for a whole program.
struct SemaResult {
  std::map<std::string, FunctionInfo> Functions;
};

/// Type-checks \p P (annotating expression types in place) against the
/// builtins in \p Registry.
Result<SemaResult> analyzeProgram(Program &P, const BuiltinRegistry &Registry);

} // namespace blazer

#endif // BLAZER_LANG_SEMA_H
