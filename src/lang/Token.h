//===- Token.h - Mini-language tokens ---------------------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for the Blazer mini-language, the input language that
/// substitutes for Java bytecode (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_LANG_TOKEN_H
#define BLAZER_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace blazer {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  // Keywords.
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwSkip,
  KwTrue,
  KwFalse,
  KwPublic,
  KwSecret,
  KwInt,
  KwBool,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Arrow,   // ->
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Dot,
};

/// \returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;     ///< Identifier spelling (when Kind==Identifier).
  int64_t IntValue = 0; ///< Literal value (when Kind==IntLiteral).
  int Line = 1;
  int Col = 1;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace blazer

#endif // BLAZER_LANG_TOKEN_H
