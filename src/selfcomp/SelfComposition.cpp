//===- SelfComposition.cpp - The self-composition baseline ----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "selfcomp/SelfComposition.h"

#include "absint/Analyzer.h"
#include "absint/ProductGraph.h"
#include "lang/AstClone.h"

#include <cassert>
#include <chrono>

using namespace blazer;

namespace {

/// Owns the expressions synthesized for the composed function by parking
/// them in a dummy FunctionDecl of a fresh Program.
class ExprOwner {
public:
  ExprOwner() : Holder(std::make_shared<Program>()) {
    auto Decl = std::make_unique<FunctionDecl>();
    Decl->Name = "$selfcomp$holder";
    Parking = Decl.get();
    Holder->Functions.push_back(std::move(Decl));
  }

  const Expr *own(ExprPtr E) {
    const Expr *Raw = E.get();
    Parking->Body.push_back(std::make_unique<ExprStmt>(std::move(E)));
    return Raw;
  }

  std::shared_ptr<Program> holder() const { return Holder; }

private:
  std::shared_ptr<Program> Holder;
  FunctionDecl *Parking;
};

} // namespace

CfgFunction blazer::buildSelfComposition(const CfgFunction &F,
                                         const CostModel &Model) {
  CostEvaluator Costs(F, Model);
  CfgFunction C;
  C.Name = F.Name + "$selfcomp";
  C.Builtins = F.Builtins;

  ExprOwner Owner;
  int N = static_cast<int>(F.blockCount());
  const std::string Cost1 = "cost$1";
  const std::string Cost2 = "cost$2";

  auto IsLowParam = [&](const std::string &Name) {
    for (const Param &P : F.Params)
      if (P.Name == Name)
        return P.Level == SecurityLevel::Public;
    return false;
  };

  // Variable environment of the composition: shared low parameters, two
  // renamed copies of everything else, plus the two cost counters.
  for (int Copy = 1; Copy <= 2; ++Copy) {
    std::string Suffix = "$" + std::to_string(Copy);
    for (const auto &[Name, Type] : F.VarTypes) {
      std::string NewName = IsLowParam(Name) ? Name : Name + Suffix;
      C.VarTypes[NewName] = Type;
    }
  }
  C.VarTypes[Cost1] = TypeKind::Int;
  C.VarTypes[Cost2] = TypeKind::Int;
  for (const Param &P : F.Params) {
    if (P.Level == SecurityLevel::Public) {
      if (C.ParamLevels.count(P.Name))
        continue;
      C.Params.push_back(P);
      C.ParamLevels[P.Name] = P.Level;
      continue;
    }
    for (int Copy = 1; Copy <= 2; ++Copy) {
      Param Dup = P;
      Dup.Name = P.Name + "$" + std::to_string(Copy);
      C.Params.push_back(Dup);
      C.ParamLevels[Dup.Name] = Dup.Level;
    }
  }

  // Blocks: [0, N) copy 1, [N, 2N) copy 2, 2N = prologue entry.
  int Copy2Entry = N + F.Entry;
  for (int Copy = 1; Copy <= 2; ++Copy) {
    std::string Suffix = "$" + std::to_string(Copy);
    const std::string &CostVar = Copy == 1 ? Cost1 : Cost2;
    RenameMap R;
    for (const auto &[Name, Type] : F.VarTypes) {
      (void)Type;
      if (!IsLowParam(Name))
        R[Name] = Name + Suffix;
    }
    int Offset = (Copy - 1) * N;

    for (const BasicBlock &B : F.Blocks) {
      BasicBlock NB;
      NB.Id = B.Id + Offset;
      NB.Line = B.Line;
      for (const Instr &I : B.Instrs) {
        Instr NI;
        NI.K = I.K;
        NI.Line = I.Line;
        switch (I.K) {
        case Instr::Kind::Assign:
          NI.Dest = R.count(I.Dest) ? R[I.Dest] : I.Dest;
          if (I.Value)
            NI.Value = Owner.own(cloneExpr(I.Value, R));
          break;
        case Instr::Kind::ArrayStore:
          NI.Array = R.count(I.Array) ? R[I.Array] : I.Array;
          NI.Index = Owner.own(cloneExpr(I.Index, R));
          NI.Value = Owner.own(cloneExpr(I.Value, R));
          break;
        case Instr::Kind::CallStmt:
          NI.Value = Owner.own(cloneExpr(I.Value, R));
          break;
        case Instr::Kind::Nop:
          break;
        }
        NB.Instrs.push_back(NI);
      }
      // Charge this block's cost under the selected model to the copy's
      // counter.
      int64_t BlockCost = Costs.blockCost(B);
      if (BlockCost > 0) {
        Instr CostInstr;
        CostInstr.K = Instr::Kind::Assign;
        CostInstr.Dest = CostVar;
        auto Sum = std::make_unique<BinaryExpr>(
            BinaryOp::Add, std::make_unique<VarRefExpr>(CostVar),
            std::make_unique<IntLitExpr>(BlockCost));
        Sum->setType(TypeKind::Int);
        CostInstr.Value = Owner.own(std::move(Sum));
        NB.Instrs.push_back(CostInstr);
      }

      switch (B.Term) {
      case BasicBlock::TermKind::Branch:
        NB.Term = BasicBlock::TermKind::Branch;
        NB.Cond = Owner.own(cloneExpr(B.Cond, R));
        NB.TrueSucc = B.TrueSucc + Offset;
        NB.FalseSucc = B.FalseSucc + Offset;
        break;
      case BasicBlock::TermKind::Jump:
        NB.Term = BasicBlock::TermKind::Jump;
        NB.TrueSucc = B.TrueSucc + Offset;
        break;
      case BasicBlock::TermKind::Return:
        // Copy 1 falls through into copy 2 instead of leaving; its return
        // value is irrelevant to the timing property. (The return's
        // evaluation cost is already part of blockCost.)
        NB.Term = BasicBlock::TermKind::Jump;
        NB.TrueSucc =
            Copy == 1 ? Copy2Entry : B.TrueSucc + Offset /* copy-2 exit */;
        break;
      case BasicBlock::TermKind::Exit:
        if (Copy == 1) {
          // Copy 1's exit is bypassed; make it a jump for completeness.
          NB.Term = BasicBlock::TermKind::Jump;
          NB.TrueSucc = Copy2Entry;
        } else {
          NB.Term = BasicBlock::TermKind::Exit;
        }
        break;
      }
      C.Blocks.push_back(std::move(NB));
    }
  }

  // Prologue: zero both counters, then run copy 1.
  BasicBlock Prologue;
  Prologue.Id = 2 * N;
  for (const std::string &CostVar : {Cost1, Cost2}) {
    Instr Init;
    Init.K = Instr::Kind::Assign;
    Init.Dest = CostVar;
    auto Zero = std::make_unique<IntLitExpr>(0);
    Zero->setType(TypeKind::Int);
    Init.Value = Owner.own(std::move(Zero));
    Prologue.Instrs.push_back(Init);
  }
  Prologue.Term = BasicBlock::TermKind::Jump;
  Prologue.TrueSucc = F.Entry;
  C.Blocks.push_back(std::move(Prologue));

  C.Entry = 2 * N;
  C.Exit = N + F.Exit;
  C.OwnedAst = Owner.holder();
  return C;
}

SelfCompResult blazer::verifyBySelfComposition(const CfgFunction &F,
                                               int64_t Epsilon,
                                               const BudgetLimits &Limits,
                                               const CostModel &Model) {
  auto T0 = std::chrono::steady_clock::now();
  SelfCompResult Res;

  AnalysisBudget Budget(Limits);
  BudgetScope Scope(&Budget);
  PhaseScope Phase("self-composition");

  CfgFunction C = buildSelfComposition(F, Model);
  Res.ComposedBlocks = C.blockCount();

  EdgeAlphabet A = EdgeAlphabet::forFunction(C);
  Dfa Full = Dfa::fromCfg(C, A);
  ProductGraph G = ProductGraph::build(C, Full, A);
  VarEnv Env(C);
  Analyzer Az(C, Env);
  AnalysisResult AR = Az.analyze(G);
  Res.ProductNodes = G.size();

  auto Elapsed = [&] {
    auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(T1 - T0).count();
  };

  // A tripped budget leaves the product truncated or the fixpoint below
  // its limit — neither supports a verification claim.
  if (Budget.exhausted()) {
    Res.Seconds = Elapsed();
    Res.Degradation = Budget.reason();
    Res.Verified = false;
    Res.GapBounded = false;
    return Res;
  }

  int I1 = Env.indexOf("cost$1");
  int I2 = Env.indexOf("cost$2");
  assert(I1 > 0 && I2 > 0 && "cost counters must exist");

  // Join the exit invariants and read off the counter difference.
  Dbm ExitState = Dbm::bottom(Env.numVars());
  for (int Acc : G.accepts())
    ExitState.joinWith(AR.EntryState[Acc]);

  Res.Seconds = Elapsed();

  if (ExitState.isBottom()) {
    // No feasible terminating execution: vacuously timing-channel free.
    Res.Verified = true;
    Res.GapBounded = true;
    return Res;
  }
  int64_t Hi = ExitState.bound(I1, I2);
  int64_t Lo = ExitState.bound(I2, I1);
  if (Hi == Dbm::Inf || Lo == Dbm::Inf) {
    Res.GapBounded = false;
    Res.Verified = false;
    return Res;
  }
  Res.GapBounded = true;
  Res.GapUpper = Hi;
  Res.GapLower = -Lo;
  Res.Verified = Hi <= Epsilon && -Lo >= -Epsilon;
  return Res;
}
