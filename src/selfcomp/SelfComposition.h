//===- SelfComposition.h - The self-composition baseline --------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline the paper argues against (§1, §7): sequential
/// self-composition [Barthe/D'Argenio/Rezk CSFW'04; Terauchi/Aiken SAS'05].
///
/// To verify timing-channel freedom of C, build C;C' — two alpha-renamed
/// copies sharing the low inputs but with independent secrets — instrument
/// each copy with an explicit cost counter, and ask a standard (1-safety)
/// analyzer whether |cost1 - cost2| <= epsilon holds at the exit. Here the
/// "standard analyzer" is the same zone abstract interpreter the
/// decomposition uses, run on the composed program's full CFG.
///
/// Zones can relate the two counters exactly on loop-free code, but
/// sequential composition runs copy 1 to completion first, so any
/// input-dependent loop forces widening that severs the cost1-cost2
/// relation — reproducing the paper's observation that naive
/// self-composition "only scales to relatively simple examples".
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SELFCOMP_SELFCOMPOSITION_H
#define BLAZER_SELFCOMP_SELFCOMPOSITION_H

#include "ir/Cfg.h"
#include "support/Budget.h"

#include <cstdint>
#include <string>

namespace blazer {

/// Outcome of the baseline verification.
struct SelfCompResult {
  /// True when the analyzer proved |cost1 - cost2| <= Epsilon.
  bool Verified = false;
  /// True when the exit-state difference was finite at all.
  bool GapBounded = false;
  int64_t GapUpper = 0; ///< Upper bound on cost1 - cost2 (when bounded).
  int64_t GapLower = 0; ///< Lower bound on cost1 - cost2 (when bounded).
  size_t ComposedBlocks = 0;
  size_t ProductNodes = 0; ///< Abstract states explored.
  double Seconds = 0;
  /// First budget trip, if any. A tripped budget forces Verified = false
  /// and GapBounded = false (the baseline analogue of a Table-1 T/O row).
  DegradationReason Degradation;
};

/// Builds the sequential self-composition of \p F: blocks duplicated with
/// locals and secret parameters alpha-renamed (suffixes "$1"/"$2"), public
/// parameters shared, per-block cost-counter increments appended (charged
/// under \p Model, the paper's unit model by default), and copy 1's
/// returns rewired into copy 2's entry.
CfgFunction buildSelfComposition(const CfgFunction &F,
                                 const CostModel &Model = {});

/// Runs the baseline end to end: compose, analyze, inspect the exit
/// invariant on cost$1 - cost$2. \p Limits governs the run's resources
/// (the default never trips); on a trip the result degrades to
/// unverified/unbounded with Degradation filled in. \p Model selects the
/// timing cost model the counters accumulate.
SelfCompResult verifyBySelfComposition(const CfgFunction &F, int64_t Epsilon,
                                       const BudgetLimits &Limits = {},
                                       const CostModel &Model = {});

} // namespace blazer

#endif // BLAZER_SELFCOMP_SELFCOMPOSITION_H
