//===- Bound.cpp - Symbolic lower/upper running-time bounds ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bound.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace blazer;

Bound Bound::lower(CostPoly P) {
  Bound B(CombineKind::Min);
  B.Polys.insert(std::move(P));
  return B;
}

Bound Bound::upper(CostPoly P) {
  Bound B(CombineKind::Max);
  B.Polys.insert(std::move(P));
  return B;
}

/// \returns true when variable \p Name is non-negative by construction.
/// Array lengths (the ".len" pseudo-variables) are; integer parameters can
/// be negative, so nothing else qualifies.
static bool isNonNegativeVar(const std::string &Name) {
  size_t Pos = Name.rfind(".len");
  return Pos != std::string::npos && Pos + 4 == Name.size();
}

/// \returns true if \p A >= \p B pointwise over ALL admissible inputs,
/// decided structurally: every coefficient of A - B (including the constant
/// term) is non-negative, and every non-constant monomial of the difference
/// ranges only over variables known to be non-negative. (Without the second
/// condition, a negative-valued integer input could flip the sign of a
/// monomial and break the comparison — pruning max(8*low+7, 7) down to
/// 8*low+7 would be unsound at low = -1.)
static bool dominates(const CostPoly &A, const CostPoly &B) {
  CostPoly Diff = A - B;
  for (const auto &[M, C] : Diff.terms()) {
    if (C < 0)
      return false;
    for (const std::string &V : M)
      if (!isNonNegativeVar(V))
        return false;
  }
  return true;
}

void Bound::insertPruned(const CostPoly &P) {
  // For a Max bound a member dominated by another is redundant; dually for
  // Min. Check both directions against existing members.
  for (auto It = Polys.begin(); It != Polys.end();) {
    const CostPoly &Q = *It;
    bool NewRedundant =
        Kind == CombineKind::Max ? dominates(Q, P) : dominates(P, Q);
    if (NewRedundant)
      return;
    bool OldRedundant =
        Kind == CombineKind::Max ? dominates(P, Q) : dominates(Q, P);
    if (OldRedundant)
      It = Polys.erase(It);
    else
      ++It;
  }
  Polys.insert(P);
}

void Bound::merge(const Bound &RHS) {
  assert(Kind == RHS.Kind && "cannot merge min with max bounds");
  for (const CostPoly &P : RHS.Polys)
    insertPruned(P);
}

Bound Bound::operator+(const Bound &RHS) const {
  assert(Kind == RHS.Kind && "cannot add min to max bounds");
  Bound Out(Kind);
  for (const CostPoly &P : Polys)
    for (const CostPoly &Q : RHS.Polys)
      Out.insertPruned(P + Q);
  return Out;
}

Bound Bound::operator+(const CostPoly &P) const {
  Bound Out(Kind);
  for (const CostPoly &Q : Polys)
    Out.insertPruned(Q + P);
  return Out;
}

Bound Bound::operator*(const CostPoly &P) const {
  Bound Out(Kind);
  for (const CostPoly &Q : Polys)
    Out.insertPruned(Q * P);
  return Out;
}

int64_t Bound::evaluate(const std::map<std::string, int64_t> &Assignment,
                        int64_t Default) const {
  assert(!Polys.empty() && "evaluating an empty bound");
  if (Polys.empty())
    return Default; // Release builds: degrade rather than read past the end.
  bool First = true;
  int64_t Best = 0;
  for (const CostPoly &P : Polys) {
    int64_t V = P.evaluate(Assignment, Default);
    if (First) {
      Best = V;
      First = false;
      continue;
    }
    Best = Kind == CombineKind::Max ? std::max(Best, V) : std::min(Best, V);
  }
  return Best;
}

unsigned Bound::degree() const {
  unsigned Deg = 0;
  for (const CostPoly &P : Polys)
    Deg = std::max(Deg, P.degree());
  return Deg;
}

unsigned Bound::minDegree() const {
  assert(!Polys.empty() && "degree of an empty bound");
  if (Polys.empty())
    return 0; // Release builds: the degree of the zero polynomial.
  unsigned Deg = Polys.begin()->degree();
  for (const CostPoly &P : Polys)
    Deg = std::min(Deg, P.degree());
  return Deg;
}

bool Bound::isConstant() const {
  for (const CostPoly &P : Polys)
    if (!P.isConstant())
      return false;
  return true;
}

std::vector<std::string> Bound::variables() const {
  std::vector<std::string> Vars;
  for (const CostPoly &P : Polys) {
    std::vector<std::string> V = P.variables();
    Vars.insert(Vars.end(), V.begin(), V.end());
  }
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

bool Bound::equalsUpToConstant(const Bound &RHS, int64_t Epsilon) const {
  // Every member of one set must have a partner in the other that differs by
  // an acceptably small constant, in both directions.
  auto Covered = [Epsilon](const std::set<CostPoly> &From,
                           const std::set<CostPoly> &To) {
    for (const CostPoly &P : From) {
      bool Found = false;
      for (const CostPoly &Q : To) {
        std::optional<int64_t> D = P.constantDifference(Q);
        if (D && std::abs(*D) <= Epsilon) {
          Found = true;
          break;
        }
      }
      if (!Found)
        return false;
    }
    return true;
  };
  return Covered(Polys, RHS.Polys) && Covered(RHS.Polys, Polys);
}

std::string Bound::str() const {
  assert(!Polys.empty() && "printing an empty bound");
  if (Polys.empty())
    return "0"; // Release builds: print the neutral bound.
  if (Polys.size() == 1)
    return Polys.begin()->str();
  std::ostringstream OS;
  OS << (Kind == CombineKind::Max ? "max(" : "min(");
  bool First = true;
  for (const CostPoly &P : Polys) {
    if (!First)
      OS << ", ";
    First = false;
    OS << P.str();
  }
  OS << ")";
  return OS.str();
}

BoundRange BoundRange::exact(int64_t C) {
  return exactPoly(CostPoly::constant(C));
}

BoundRange BoundRange::exactPoly(const CostPoly &P) {
  return BoundRange(Bound::lower(P), Bound::upper(P));
}

BoundRange BoundRange::operator+(const BoundRange &RHS) const {
  return BoundRange(Lo + RHS.Lo, Hi + RHS.Hi);
}

BoundRange BoundRange::operator*(const CostPoly &P) const {
  return BoundRange(Lo * P, Hi * P);
}

BoundRange BoundRange::scaleByTrips(const BoundRange &Trips) const {
  // Lower end: minimum trips times minimum per-iteration cost; upper end:
  // maximum trips times maximum per-iteration cost. Cross products over the
  // member sets keep the min/max semantics.
  Bound NewLo = Bound::lower(CostPoly());
  bool FirstLo = true;
  for (const CostPoly &T : Trips.Lo.polys()) {
    Bound Scaled = Lo * T;
    if (FirstLo) {
      NewLo = Scaled;
      FirstLo = false;
    } else {
      NewLo.merge(Scaled);
    }
  }
  Bound NewHi = Bound::upper(CostPoly());
  bool FirstHi = true;
  for (const CostPoly &T : Trips.Hi.polys()) {
    Bound Scaled = Hi * T;
    if (FirstHi) {
      NewHi = Scaled;
      FirstHi = false;
    } else {
      NewHi.merge(Scaled);
    }
  }
  return BoundRange(NewLo, NewHi);
}

void BoundRange::mergeUnion(const BoundRange &RHS) {
  Lo.merge(RHS.Lo);
  Hi.merge(RHS.Hi);
}

std::vector<std::string> BoundRange::variables() const {
  std::vector<std::string> Vars = Lo.variables();
  std::vector<std::string> HV = Hi.variables();
  Vars.insert(Vars.end(), HV.begin(), HV.end());
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

std::string BoundRange::str() const {
  return "[" + Lo.str() + ", " + Hi.str() + "]";
}
