//===- Bound.h - Symbolic lower/upper running-time bounds -------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic running-time bounds. A Bound is the pointwise min or max of a
/// finite set of cost polynomials; a BoundRange pairs a lower and an upper
/// bound, e.g. the "[19*g.len+10, 23*g.len+10]" balloons of Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_BOUND_H
#define BLAZER_SUPPORT_BOUND_H

#include "support/CostPoly.h"

#include <set>
#include <string>

namespace blazer {

/// The pointwise min (for lower bounds) or max (for upper bounds) of a
/// non-empty set of polynomials.
///
/// Keeping a *set* rather than a single polynomial is what lets the analysis
/// express bounds such as 20*max(g.len, p.len) + 8 without a dedicated max
/// operator in the polynomial language. Structural dominance pruning keeps
/// the sets small.
class Bound {
public:
  enum class CombineKind { Min, Max };

  /// A min-combined bound of the single polynomial \p P.
  static Bound lower(CostPoly P);
  /// A max-combined bound of the single polynomial \p P.
  static Bound upper(CostPoly P);

  CombineKind kind() const { return Kind; }
  const std::set<CostPoly> &polys() const { return Polys; }

  /// Set-union with \p RHS (which must have the same combine kind), i.e. the
  /// pointwise min/max of the two bounds. Applies dominance pruning.
  void merge(const Bound &RHS);

  /// Pointwise sum: { p + q | p in this, q in RHS }.
  Bound operator+(const Bound &RHS) const;
  /// Adds the polynomial \p P to every member.
  Bound operator+(const CostPoly &P) const;
  /// Multiplies every member by \p P. Only valid when \p P is non-negative
  /// over the intended inputs (trip counts and costs always are).
  Bound operator*(const CostPoly &P) const;

  bool operator==(const Bound &RHS) const {
    return Kind == RHS.Kind && Polys == RHS.Polys;
  }

  /// Evaluates the min/max over members under \p Assignment.
  int64_t evaluate(const std::map<std::string, int64_t> &Assignment,
                   int64_t Default = 0) const;

  /// \returns the maximal total degree among members.
  unsigned degree() const;

  /// \returns the minimal total degree among members. For a min-combined
  /// (lower) bound this is the degree of the asymptotic lower envelope: a
  /// constant member makes the whole envelope constant.
  unsigned minDegree() const;

  /// \returns true if every member is a constant polynomial.
  bool isConstant() const;

  /// \returns the variables mentioned across all members.
  std::vector<std::string> variables() const;

  /// \returns true iff this bound equals \p RHS up to a constant shift of at
  /// most \p Epsilon: the two sets pair up so that matched members differ by
  /// a constant with absolute value <= Epsilon.
  bool equalsUpToConstant(const Bound &RHS, int64_t Epsilon) const;

  /// Renders e.g. "23*g.len + 10" or "max(20*g.len + 8, 20*p.len + 8)".
  std::string str() const;

private:
  explicit Bound(CombineKind K) : Kind(K) {}

  void insertPruned(const CostPoly &P);

  CombineKind Kind = CombineKind::Max;
  std::set<CostPoly> Polys;
};

/// A pair of symbolic bounds [Lo, Hi] on the running time of the traces in
/// one trail.
struct BoundRange {
  Bound Lo;
  Bound Hi;

  BoundRange() : Lo(Bound::lower(CostPoly())), Hi(Bound::upper(CostPoly())) {}
  BoundRange(Bound L, Bound H) : Lo(std::move(L)), Hi(std::move(H)) {}

  /// The range containing exactly the constant \p C.
  static BoundRange exact(int64_t C);
  /// The range containing exactly the polynomial \p P.
  static BoundRange exactPoly(const CostPoly &P);

  /// Pointwise sum of ranges (sequential composition of costs).
  BoundRange operator+(const BoundRange &RHS) const;
  /// Multiplies both ends by a non-negative polynomial (loop trip count).
  BoundRange operator*(const CostPoly &P) const;
  /// Multiplies lower end by \p TripLo and upper end by \p TripHi.
  BoundRange scaleByTrips(const BoundRange &Trips) const;
  /// Range union: min of lowers, max of uppers (control-flow join).
  void mergeUnion(const BoundRange &RHS);

  bool operator==(const BoundRange &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi;
  }

  /// \returns all variables mentioned by either end.
  std::vector<std::string> variables() const;

  /// Renders "[lo, hi]".
  std::string str() const;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_BOUND_H
