//===- Budget.cpp - Analysis resource budgets and cancellation ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <sstream>

using namespace blazer;

const char *blazer::budgetKindName(BudgetKind K) {
  switch (K) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::Deadline:
    return "deadline";
  case BudgetKind::States:
    return "automaton-states";
  case BudgetKind::Joins:
    return "dbm-joins";
  case BudgetKind::TrailNodes:
    return "trail-nodes";
  case BudgetKind::Cancelled:
    return "cancelled";
  case BudgetKind::FaultInjected:
    return "fault-injected";
  }
  return "?";
}

std::string DegradationReason::str() const {
  if (!tripped())
    return "within budget";
  std::ostringstream OS;
  OS.precision(2);
  OS << std::fixed;
  switch (Kind) {
  case BudgetKind::Deadline:
    OS << "wall-clock deadline exceeded";
    break;
  case BudgetKind::States:
    OS << "automaton state budget exhausted (" << Used << "/" << Limit << ")";
    break;
  case BudgetKind::Joins:
    OS << "DBM join budget exhausted (" << Used << "/" << Limit << ")";
    break;
  case BudgetKind::TrailNodes:
    OS << "trail-tree node budget exhausted (" << Used << "/" << Limit
       << ")";
    break;
  case BudgetKind::Cancelled:
    OS << "analysis cancelled";
    break;
  case BudgetKind::FaultInjected:
    OS << "injected fault at site '" << FaultSite << "'";
    break;
  case BudgetKind::None:
    break;
  }
  if (!Phase.empty())
    OS << " in phase '" << Phase << "'";
  OS << " after " << ElapsedSeconds << "s";
  return OS.str();
}

AnalysisBudget::AnalysisBudget(BudgetLimits L)
    : Limits(L), Start(std::chrono::steady_clock::now()) {}

double AnalysisBudget::elapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

ResourceUsage AnalysisBudget::usage() const {
  return ResourceUsage{States.load(std::memory_order_relaxed),
                       Joins.load(std::memory_order_relaxed),
                       TrailNodes.load(std::memory_order_relaxed),
                       elapsedSeconds()};
}

void AnalysisBudget::trip(BudgetKind K, uint64_t Used, uint64_t Limit) {
  // First trip wins: racing threads serialize on TripMu and only the first
  // writes the record; the release store publishes it to exhausted()'s
  // acquire load on every other thread.
  std::lock_guard<std::mutex> Lock(TripMu);
  if (TrippedFlag.load(std::memory_order_relaxed))
    return;
  Tripped.Kind = K;
  Tripped.Phase = PhaseScope::current();
  Tripped.ElapsedSeconds = elapsedSeconds();
  Tripped.Used = Used;
  Tripped.Limit = Limit;
  TrippedFlag.store(true, std::memory_order_release);
}

void AnalysisBudget::tripFault(const char *Site) {
  std::lock_guard<std::mutex> Lock(TripMu);
  if (TrippedFlag.load(std::memory_order_relaxed))
    return;
  Tripped.Kind = BudgetKind::FaultInjected;
  Tripped.Phase = PhaseScope::current();
  Tripped.ElapsedSeconds = elapsedSeconds();
  Tripped.FaultSite = Site ? Site : "";
  TrippedFlag.store(true, std::memory_order_release);
}

bool AnalysisBudget::pollDeadline() {
  if (InternalCancel.load(std::memory_order_relaxed) ||
      (Limits.CancelFlag &&
       Limits.CancelFlag->load(std::memory_order_relaxed))) {
    trip(BudgetKind::Cancelled, 0, 0);
    return false;
  }
  if (Limits.TimeoutSeconds > 0 &&
      elapsedSeconds() > Limits.TimeoutSeconds) {
    trip(BudgetKind::Deadline, 0, 0);
    return false;
  }
  return true;
}

bool AnalysisBudget::checkpoint() {
  if (exhausted())
    return false;
  // Amortize the clock read; the first call always polls so an
  // already-expired deadline (the "zero-deadline" fast path) trips before
  // any real work happens. The tick is shared by all threads: with K
  // threads counting, some thread still polls at least every 32 ticks.
  if (PollTick.fetch_add(1, std::memory_order_relaxed) % 32 != 0)
    return true;
  return pollDeadline();
}

bool AnalysisBudget::countStates(uint64_t N) {
  if (exhausted())
    return false;
  uint64_t Total = States.fetch_add(N, std::memory_order_relaxed) + N;
  if (Limits.MaxStates && Total > Limits.MaxStates) {
    trip(BudgetKind::States, Total, Limits.MaxStates);
    return false;
  }
  return checkpoint();
}

bool AnalysisBudget::countJoins(uint64_t N) {
  if (exhausted())
    return false;
  uint64_t Total = Joins.fetch_add(N, std::memory_order_relaxed) + N;
  if (Limits.MaxJoins && Total > Limits.MaxJoins) {
    trip(BudgetKind::Joins, Total, Limits.MaxJoins);
    return false;
  }
  return checkpoint();
}

bool AnalysisBudget::countTrailNodes(uint64_t N) {
  if (exhausted())
    return false;
  uint64_t Total = TrailNodes.fetch_add(N, std::memory_order_relaxed) + N;
  if (Limits.MaxTrailNodes && Total > Limits.MaxTrailNodes) {
    trip(BudgetKind::TrailNodes, Total, Limits.MaxTrailNodes);
    return false;
  }
  return checkpoint();
}

//===----------------------------------------------------------------------===//
// Thread-local installation
//===----------------------------------------------------------------------===//

namespace {
thread_local AnalysisBudget *CurrentBudget = nullptr;
thread_local const char *CurrentPhase = "";
} // namespace

BudgetScope::BudgetScope(AnalysisBudget *B) : Prev(CurrentBudget) {
  CurrentBudget = B;
}

BudgetScope::~BudgetScope() { CurrentBudget = Prev; }

AnalysisBudget *BudgetScope::current() { return CurrentBudget; }

PhaseScope::PhaseScope(const char *Name) : Prev(CurrentPhase) {
  CurrentPhase = Name;
}

PhaseScope::~PhaseScope() { CurrentPhase = Prev; }

const char *PhaseScope::current() { return CurrentPhase; }
