//===- Budget.cpp - Analysis resource budgets and cancellation ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <sstream>

using namespace blazer;

const char *blazer::budgetKindName(BudgetKind K) {
  switch (K) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::Deadline:
    return "deadline";
  case BudgetKind::States:
    return "automaton-states";
  case BudgetKind::Joins:
    return "dbm-joins";
  case BudgetKind::TrailNodes:
    return "trail-nodes";
  case BudgetKind::Cancelled:
    return "cancelled";
  }
  return "?";
}

std::string DegradationReason::str() const {
  if (!tripped())
    return "within budget";
  std::ostringstream OS;
  OS.precision(2);
  OS << std::fixed;
  switch (Kind) {
  case BudgetKind::Deadline:
    OS << "wall-clock deadline exceeded";
    break;
  case BudgetKind::States:
    OS << "automaton state budget exhausted (" << Used << "/" << Limit << ")";
    break;
  case BudgetKind::Joins:
    OS << "DBM join budget exhausted (" << Used << "/" << Limit << ")";
    break;
  case BudgetKind::TrailNodes:
    OS << "trail-tree node budget exhausted (" << Used << "/" << Limit
       << ")";
    break;
  case BudgetKind::Cancelled:
    OS << "analysis cancelled";
    break;
  case BudgetKind::None:
    break;
  }
  if (!Phase.empty())
    OS << " in phase '" << Phase << "'";
  OS << " after " << ElapsedSeconds << "s";
  return OS.str();
}

AnalysisBudget::AnalysisBudget(BudgetLimits L)
    : Limits(L), Start(std::chrono::steady_clock::now()) {}

double AnalysisBudget::elapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

ResourceUsage AnalysisBudget::usage() const {
  return ResourceUsage{States, Joins, TrailNodes, elapsedSeconds()};
}

void AnalysisBudget::trip(BudgetKind K, uint64_t Used, uint64_t Limit) {
  if (Tripped.tripped())
    return; // First trip wins.
  Tripped.Kind = K;
  Tripped.Phase = Phase;
  Tripped.ElapsedSeconds = elapsedSeconds();
  Tripped.Used = Used;
  Tripped.Limit = Limit;
}

bool AnalysisBudget::pollDeadline() {
  if (InternalCancel.load(std::memory_order_relaxed) ||
      (Limits.CancelFlag &&
       Limits.CancelFlag->load(std::memory_order_relaxed))) {
    trip(BudgetKind::Cancelled, 0, 0);
    return false;
  }
  if (Limits.TimeoutSeconds > 0 &&
      elapsedSeconds() > Limits.TimeoutSeconds) {
    trip(BudgetKind::Deadline, 0, 0);
    return false;
  }
  return true;
}

bool AnalysisBudget::checkpoint() {
  if (exhausted())
    return false;
  // Amortize the clock read; the first call always polls so an
  // already-expired deadline (the "zero-deadline" fast path) trips before
  // any real work happens.
  if (PollTick++ % 32 != 0)
    return true;
  return pollDeadline();
}

bool AnalysisBudget::countStates(uint64_t N) {
  if (exhausted())
    return false;
  States += N;
  if (Limits.MaxStates && States > Limits.MaxStates) {
    trip(BudgetKind::States, States, Limits.MaxStates);
    return false;
  }
  return checkpoint();
}

bool AnalysisBudget::countJoins(uint64_t N) {
  if (exhausted())
    return false;
  Joins += N;
  if (Limits.MaxJoins && Joins > Limits.MaxJoins) {
    trip(BudgetKind::Joins, Joins, Limits.MaxJoins);
    return false;
  }
  return checkpoint();
}

bool AnalysisBudget::countTrailNodes(uint64_t N) {
  if (exhausted())
    return false;
  TrailNodes += N;
  if (Limits.MaxTrailNodes && TrailNodes > Limits.MaxTrailNodes) {
    trip(BudgetKind::TrailNodes, TrailNodes, Limits.MaxTrailNodes);
    return false;
  }
  return checkpoint();
}

//===----------------------------------------------------------------------===//
// Thread-local installation
//===----------------------------------------------------------------------===//

namespace {
thread_local AnalysisBudget *CurrentBudget = nullptr;
} // namespace

BudgetScope::BudgetScope(AnalysisBudget *B) : Prev(CurrentBudget) {
  CurrentBudget = B;
}

BudgetScope::~BudgetScope() { CurrentBudget = Prev; }

AnalysisBudget *BudgetScope::current() { return CurrentBudget; }

PhaseScope::PhaseScope(const char *Name)
    : Budget(BudgetScope::current()), Prev(Budget ? Budget->phase() : "") {
  if (Budget)
    Budget->setPhase(Name);
}

PhaseScope::~PhaseScope() {
  if (Budget)
    Budget->setPhase(Prev);
}
