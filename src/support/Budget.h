//===- Budget.h - Analysis resource budgets and cancellation ----*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the analysis engine. Timing-channel analysis is
/// inherently prone to blow-up (trail-tree growth, DFA products and
/// determinization, DBM fixpoints) — the paper's own Table 1 reports T/O
/// entries — so every long-running phase runs against an AnalysisBudget: a
/// wall-clock deadline, step budgets (automaton states created, DBM
/// joins/widenings, trail-tree nodes), and a cooperative cancellation flag.
///
/// When a budget trips, the engine *fails soft*: the current refinement is
/// abandoned, partial results are kept, and the verdict degrades to Unknown
/// with a structured DegradationReason — mirroring Table 1's T/O rows
/// rather than hanging or dying on an assert.
///
/// Deep library layers (automaton products, zone joins) count against the
/// budget through a thread-local installation (BudgetScope) so the hot
/// const operations need no extra parameters; the driver phases carry the
/// budget explicitly.
///
/// Concurrency: one AnalysisBudget may be shared by many worker threads —
/// the parallel trail-tree analysis installs the same budget in a
/// BudgetScope on every worker. Step counters are atomic (totals aggregate
/// race-free regardless of interleaving), the first trip wins under a
/// mutex, and cancellation/exhaustion is observed by all threads at their
/// next checkpoint. Phase labels are tracked per *thread* (see PhaseScope),
/// so a trip is labeled with the phase the tripping thread was actually in.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_BUDGET_H
#define BLAZER_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace blazer {

/// Which resource limit tripped first (None = the analysis ran to
/// completion within its budget).
enum class BudgetKind {
  None,       ///< Nothing tripped.
  Deadline,   ///< Wall-clock deadline exceeded.
  States,     ///< Automaton/product state-creation budget exhausted.
  Joins,      ///< DBM join/widening budget exhausted.
  TrailNodes, ///< Trail-tree node budget exhausted.
  Cancelled,  ///< External cooperative cancellation was requested.
  /// A deterministic injected fault (see FaultInjector.h) was not
  /// recoverable and degraded the run. Carries fault provenance in
  /// DegradationReason::FaultSite.
  FaultInjected,
};

const char *budgetKindName(BudgetKind K);

/// Structured report of a tripped budget: which limit, in which phase, and
/// after how long. Surfaced in BlazerResult, treeString, and the CLI exit
/// path — the reproduction of a Table-1 "T/O" row.
struct DegradationReason {
  BudgetKind Kind = BudgetKind::None;
  /// The phase that was running when the budget tripped, e.g.
  /// "safety-refinement", "dfa-product", "zone-fixpoint".
  std::string Phase;
  /// Wall-clock seconds from budget start to the trip.
  double ElapsedSeconds = 0;
  /// Counter value and limit for step budgets (0/0 for deadline/cancel).
  uint64_t Used = 0;
  uint64_t Limit = 0;
  /// Fault provenance: the injection-site name ("transfer", "dbm-pool",
  /// ...) for Kind == FaultInjected, empty otherwise.
  std::string FaultSite;

  bool tripped() const { return Kind != BudgetKind::None; }
  /// Renders e.g. "wall-clock deadline (1.00s) exceeded in phase
  /// 'safety-refinement' after 1.02s".
  std::string str() const;
};

/// Resource limits. Zero means "unlimited" for every field, so a
/// default-constructed BudgetLimits never trips.
struct BudgetLimits {
  /// Wall-clock deadline in seconds from AnalysisBudget construction.
  double TimeoutSeconds = 0;
  /// Automaton states created (DFA products, subset construction,
  /// CFG x trail product nodes).
  uint64_t MaxStates = 0;
  /// DBM joins + widenings performed by the abstract interpreter.
  uint64_t MaxJoins = 0;
  /// Trail-tree nodes created by the refinement driver.
  uint64_t MaxTrailNodes = 0;
  /// Optional external cancellation flag, polled at checkpoints. The engine
  /// never blocks on it; setting it from another thread makes the analysis
  /// wind down at the next checkpoint. Not owned.
  const std::atomic<bool> *CancelFlag = nullptr;

  bool unlimited() const {
    return TimeoutSeconds <= 0 && MaxStates == 0 && MaxJoins == 0 &&
           MaxTrailNodes == 0 && CancelFlag == nullptr;
  }
};

/// Step counters accumulated during one analysis, for reporting and tests.
struct ResourceUsage {
  uint64_t States = 0;
  uint64_t Joins = 0;
  uint64_t TrailNodes = 0;
  double Seconds = 0;
};

/// One analysis run's budget: counters plus the first-trip record. All
/// count*/checkpoint members return false once any budget has tripped, so
/// loops can use them directly as continue conditions.
///
/// Thread-safe: any number of threads may count, checkpoint, and cancel
/// concurrently (the parallel driver shares one budget across its worker
/// pool). reason() may be read once exhausted() has returned true, or after
/// every counting thread has quiesced — the first trip immutably freezes
/// the record.
class AnalysisBudget {
public:
  explicit AnalysisBudget(BudgetLimits L = {});

  /// Cooperative cancellation (thread-safe); takes effect at the next
  /// checkpoint.
  void requestCancel() { InternalCancel.store(true, std::memory_order_relaxed); }

  /// Counts \p N created automaton/product states. \returns false when the
  /// budget (this one or any other) is exhausted.
  bool countStates(uint64_t N = 1);
  /// Counts \p N DBM joins/widenings.
  bool countJoins(uint64_t N = 1);
  /// Counts \p N trail-tree nodes.
  bool countTrailNodes(uint64_t N = 1);

  /// Polls the deadline and the cancellation flags. Cheap: reads the clock
  /// only every few calls. \returns false when exhausted.
  bool checkpoint();

  /// Trips the budget with fault provenance: an injected fault at site
  /// \p Site (a faultSiteName string, borrowed) could not be recovered.
  /// First-trip-wins like every other kind — a fault racing a deadline
  /// keeps whichever reason froze first.
  void tripFault(const char *Site);

  bool exhausted() const {
    return TrippedFlag.load(std::memory_order_acquire);
  }
  /// The first trip, with elapsed time filled in; Kind == None when the
  /// budget never tripped. See the class comment for when this is safe to
  /// read concurrently.
  const DegradationReason &reason() const { return Tripped; }

  double elapsedSeconds() const;
  ResourceUsage usage() const;

private:
  void trip(BudgetKind K, uint64_t Used, uint64_t Limit);
  bool pollDeadline();

  BudgetLimits Limits;
  std::chrono::steady_clock::time_point Start;
  std::atomic<bool> InternalCancel{false};
  std::atomic<uint64_t> States{0};
  std::atomic<uint64_t> Joins{0};
  std::atomic<uint64_t> TrailNodes{0};
  std::atomic<unsigned> PollTick{0};
  /// First-trip record: TripMu serializes writers, TrippedFlag's release
  /// store publishes the frozen record to exhausted()'s acquire load.
  std::mutex TripMu;
  std::atomic<bool> TrippedFlag{false};
  DegradationReason Tripped;
};

/// RAII installation of \p B as the calling thread's current budget, so
/// deep layers (Automaton products, Dbm joins, ProductGraph construction)
/// can count against it without threading a pointer through every const
/// operation. Scopes nest; null is allowed (and clears the current budget).
/// The installation is per thread: a worker task sharing the driver's
/// budget must install its own scope.
class BudgetScope {
public:
  explicit BudgetScope(AnalysisBudget *B);
  ~BudgetScope();

  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

  /// The innermost installed budget of this thread, or null.
  static AnalysisBudget *current();

private:
  AnalysisBudget *Prev;
};

/// RAII phase label for budget-trip reports. The label is thread-local —
/// each worker carries its own phase stack — so concurrent phases on a
/// shared budget do not race, and a trip is attributed to the tripping
/// thread's phase.
class PhaseScope {
public:
  explicit PhaseScope(const char *Name);
  ~PhaseScope();

  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

  /// The calling thread's innermost phase label ("" outside any scope).
  static const char *current();

private:
  const char *Prev;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_BUDGET_H
