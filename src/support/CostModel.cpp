//===- CostModel.cpp - Pluggable timing cost models -----------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CostModel.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace blazer;

const char *blazer::costModelKindName(CostModelKind K) {
  switch (K) {
  case CostModelKind::Unit:
    return "unit";
  case CostModelKind::Weighted:
    return "weighted";
  case CostModelKind::MemAccess:
    return "memaccess";
  }
  return "?";
}

const std::vector<CostModel::Opcode> &CostModel::opcodes() {
  // Defaults chosen so an empty weight table reproduces the paper's unit
  // model exactly (CfgFunction::exprCost charges 2 + index for ArrayIndex,
  // 1 everywhere else; builtin scales the intrinsic cost table, so its
  // unit multiplier is 1).
  static const std::vector<Opcode> Registry = {
      {"load", 1},  {"arrayread", 2}, {"arith", 1},  {"store", 1},
      {"call", 1},  {"builtin", 1},   {"branch", 1}, {"return", 1},
  };
  return Registry;
}

int64_t CostModel::weight(const std::string &Op) const {
  auto It = Weights.find(Op);
  if (It != Weights.end())
    return It->second;
  for (const Opcode &O : opcodes())
    if (Op == O.Name)
      return O.UnitWeight;
  return 1;
}

namespace {

std::string opcodeList() {
  std::string S;
  for (const CostModel::Opcode &O : CostModel::opcodes()) {
    if (!S.empty())
      S += '|';
    S += O.Name;
  }
  return S;
}

bool knownOpcode(const std::string &Op) {
  for (const CostModel::Opcode &O : CostModel::opcodes())
    if (Op == O.Name)
      return true;
  return false;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Strict non-negative decimal parse; rejects empty, garbage, and overflow
/// (std::atoll would yield 0 for all three).
bool parseWeight(const std::string &Text, int64_t *Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  *Out = V;
  return true;
}

std::string trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

/// One "op=weight" (or JSON "op": weight) entry into \p Out's table.
bool addEntry(const std::string &Op, const std::string &Weight,
              const std::string &Origin, CostModel *Out, std::string *Err) {
  if (!knownOpcode(Op))
    return fail(Err, "unknown cost-model opcode '" + Op + "' in " + Origin +
                         " (expected " + opcodeList() + ")");
  int64_t W = 0;
  if (!parseWeight(Weight, &W) || W < 0)
    return fail(Err, "cost-model weight for '" + Op + "' in " + Origin +
                         " must be a non-negative integer, got '" + Weight +
                         "'");
  Out->Weights[Op] = W;
  return true;
}

/// A flat JSON object {"op": w, ...} — the one shape the spec-file format
/// promises. Anything fancier (nesting, strings, floats) is malformed.
bool parseJsonTable(const std::string &Text, const std::string &Origin,
                    CostModel *Out, std::string *Err) {
  size_t I = 0;
  auto Skip = [&] {
    while (I < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
  };
  auto Malformed = [&] {
    return fail(Err, "malformed cost-model spec file " + Origin +
                         " (expected {\"op\": weight, ...})");
  };
  Skip();
  if (I >= Text.size() || Text[I] != '{')
    return Malformed();
  ++I;
  Skip();
  if (I < Text.size() && Text[I] == '}')
    ++I;
  else
    while (true) {
      Skip();
      if (I >= Text.size() || Text[I] != '"')
        return Malformed();
      size_t KeyEnd = Text.find('"', ++I);
      if (KeyEnd == std::string::npos)
        return Malformed();
      std::string Op = Text.substr(I, KeyEnd - I);
      I = KeyEnd + 1;
      Skip();
      if (I >= Text.size() || Text[I] != ':')
        return Malformed();
      ++I;
      Skip();
      size_t NumBegin = I;
      if (I < Text.size() && Text[I] == '-')
        ++I;
      while (I < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[I])))
        ++I;
      if (I == NumBegin)
        return Malformed();
      if (!addEntry(Op, Text.substr(NumBegin, I - NumBegin), Origin, Out,
                    Err))
        return false;
      Skip();
      if (I < Text.size() && Text[I] == ',') {
        ++I;
        continue;
      }
      if (I < Text.size() && Text[I] == '}') {
        ++I;
        break;
      }
      return Malformed();
    }
  Skip();
  if (I != Text.size())
    return Malformed();
  return true;
}

/// "@file" spec bodies: JSON object, or line-based "op=weight" with '#'
/// comments and blank lines.
bool parseWeightFile(const std::string &Path, CostModel *Out,
                     std::string *Err) {
  std::ifstream In(Path);
  if (!In)
    return fail(Err, "cannot read cost-model spec file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  std::string Origin = "'" + Path + "'";
  std::string Trimmed = trim(Text);
  if (!Trimmed.empty() && Trimmed[0] == '{')
    return parseJsonTable(Text, Origin, Out, Err);
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    Line = trim(Line);
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return fail(Err, "malformed cost-model spec file " + Origin +
                           " (expected op=weight lines, got '" + Line +
                           "')");
    if (!addEntry(trim(Line.substr(0, Eq)), trim(Line.substr(Eq + 1)),
                  Origin, Out, Err))
      return false;
  }
  return true;
}

bool parseInlineTable(const std::string &Body, CostModel *Out,
                      std::string *Err) {
  size_t Pos = 0;
  while (Pos <= Body.size()) {
    size_t Comma = Body.find(',', Pos);
    std::string Item = Body.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return fail(Err, "malformed cost-model weight '" + Item +
                           "' (expected op=weight)");
    if (!addEntry(Item.substr(0, Eq), Item.substr(Eq + 1), "'" + Body + "'",
                  Out, Err))
      return false;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

bool CostModel::parse(const std::string &Spec, CostModel *Out,
                      std::string *Err) {
  CostModel M;
  std::string Head = Spec;
  std::string Body;
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos) {
    Head = Spec.substr(0, Colon);
    Body = Spec.substr(Colon + 1);
  }
  if (Head == "unit") {
    if (Colon != std::string::npos)
      return fail(Err, "cost model 'unit' takes no parameters, got '" +
                           Spec + "'");
    M.Kind = CostModelKind::Unit;
  } else if (Head == "weighted") {
    M.Kind = CostModelKind::Weighted;
    if (Colon != std::string::npos) {
      if (!Body.empty() && Body[0] == '@') {
        if (!parseWeightFile(Body.substr(1), &M, Err))
          return false;
      } else if (!parseInlineTable(Body, &M, Err)) {
        return false;
      }
    }
  } else if (Head == "memaccess") {
    M.Kind = CostModelKind::MemAccess;
    if (Colon != std::string::npos &&
        (!parseWeight(Body, &M.Surcharge) || M.Surcharge < 0))
      return fail(Err, "memaccess surcharge must be a non-negative "
                       "integer, got '" +
                           Body + "'");
  } else {
    return fail(Err, "unknown cost model '" + Head +
                         "' (expected unit|weighted[:op=w,...|:@file]|"
                         "memaccess[:surcharge])");
  }
  *Out = M;
  return true;
}

std::string CostModel::str() const {
  switch (Kind) {
  case CostModelKind::Unit:
    return "unit";
  case CostModelKind::Weighted: {
    if (Weights.empty())
      return "weighted";
    std::string S = "weighted:";
    bool First = true;
    for (const auto &[Op, W] : Weights) {
      if (!First)
        S += ',';
      First = false;
      S += Op + "=" + std::to_string(W);
    }
    return S;
  }
  case CostModelKind::MemAccess:
    return "memaccess:" + std::to_string(Surcharge);
  }
  return "?";
}
