//===- CostModel.h - Pluggable timing cost models ---------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing cost model: what one step of the program costs the attacker's
/// clock. The paper's machine model charges every operation one unit
/// (Sec. 5); that assumption used to be hardwired into the three places a
/// step is charged — the concrete interpreter, the per-block cost the bound
/// analysis accumulates into cost polynomials, and the self-composition
/// baseline's cost counter. CostModel is the value-semantic spec all three
/// now share:
///
///   unit                        every operation costs 1 (the paper model);
///   weighted[:op=w,...|:@file]  per-opcode weight table — unlisted opcodes
///                               keep their unit-reproducing defaults;
///   memaccess[:N]               unit weights plus a surcharge of N
///                               (default 8) on every array access whose
///                               index is derived from a secret, a coarse
///                               data-cache model for table lookups.
///
/// The opcode vocabulary is deliberately small — it names the cost sites in
/// the mini-language, not x86: load (literals, variable reads, .length),
/// arrayread, arith (unary/binary operators), store (assignments), call
/// (call overhead; "builtin" scales the intrinsic's own cost table),
/// branch, return.
///
/// This header is IR-free on purpose: the binding of a model to a concrete
/// function (which expressions index arrays with secrets, what each block
/// costs) lives in CostEvaluator (ir/Cfg.h), so support-layer clients like
/// EngineConfig can parse and compare specs without linking the IR.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_COSTMODEL_H
#define BLAZER_SUPPORT_COSTMODEL_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blazer {

enum class CostModelKind {
  Unit,      ///< Everything costs 1 — the paper's machine model.
  Weighted,  ///< Per-opcode weight table.
  MemAccess, ///< Unit weights + secret-indexed array-access surcharge.
};

const char *costModelKindName(CostModelKind K);

/// A parsed, canonical cost-model spec. Cheap to copy and compare; embeds
/// in EngineConfig so the CLI flag (--cost-model=...), the bench env vars
/// (BLAZER_TABLE1_COST_MODEL=...), and programmatic options share one
/// grammar. str() round-trips through parse(), and file-based weight specs
/// canonicalize to the inline spelling, so the trail-cache salt and the
/// engine-config echo never depend on how the model was spelled.
struct CostModel {
  CostModelKind Kind = CostModelKind::Unit;
  /// Weighted only: opcode -> weight overrides. Opcodes not present cost
  /// their unit-reproducing default, so an empty table is exactly "unit".
  std::map<std::string, int64_t> Weights;
  /// MemAccess only: extra cost per secret-indexed array access.
  int64_t Surcharge = 8;

  /// The opcode vocabulary, in display order, with the default weight each
  /// opcode has when unlisted (these defaults reproduce the unit model
  /// bit-for-bit: arrayread is 2 because the paper charges base-plus-index
  /// for an indexed load).
  struct Opcode {
    const char *Name;
    int64_t UnitWeight;
  };
  static const std::vector<Opcode> &opcodes();

  /// Weight of \p Op under this model (the table override if present, else
  /// the unit default). \p Op must be a registered opcode name.
  int64_t weight(const std::string &Op) const;

  /// Parses a spec — "unit", "weighted", "weighted:op=w,op=w",
  /// "weighted:@file" (line-based "op=w" with '#' comments, or a flat JSON
  /// object {"op": w}), "memaccess", "memaccess:N". \returns false and
  /// fills \p Err with a single-line diagnostic on an unknown model,
  /// unknown opcode, negative weight, or unreadable/malformed file.
  static bool parse(const std::string &Spec, CostModel *Out,
                    std::string *Err = nullptr);

  /// Canonical spelling: "unit", "weighted[:op=w,...]", "memaccess:N".
  std::string str() const;

  bool operator==(const CostModel &O) const = default;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_COSTMODEL_H
