//===- CostPoly.cpp - Multivariate integer cost polynomials ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CostPoly.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace blazer;

CostPoly CostPoly::constant(int64_t C) {
  CostPoly P;
  P.addTerm({}, C);
  return P;
}

CostPoly CostPoly::variable(const std::string &Name) {
  assert(!Name.empty() && "variable needs a name");
  CostPoly P;
  P.addTerm({Name}, 1);
  return P;
}

void CostPoly::addTerm(const Monomial &M, int64_t Coeff) {
  if (Coeff == 0)
    return;
  assert(std::is_sorted(M.begin(), M.end()) && "monomial must be sorted");
  auto It = Terms.find(M);
  if (It == Terms.end()) {
    Terms.emplace(M, Coeff);
    return;
  }
  It->second += Coeff;
  if (It->second == 0)
    Terms.erase(It);
}

CostPoly CostPoly::operator+(const CostPoly &RHS) const {
  CostPoly Out = *this;
  Out += RHS;
  return Out;
}

CostPoly &CostPoly::operator+=(const CostPoly &RHS) {
  for (const auto &[M, C] : RHS.Terms)
    addTerm(M, C);
  return *this;
}

CostPoly CostPoly::operator-(const CostPoly &RHS) const {
  CostPoly Out = *this;
  for (const auto &[M, C] : RHS.Terms)
    Out.addTerm(M, -C);
  return Out;
}

CostPoly CostPoly::operator*(const CostPoly &RHS) const {
  CostPoly Out;
  for (const auto &[LM, LC] : Terms) {
    for (const auto &[RM, RC] : RHS.Terms) {
      Monomial M = LM;
      M.insert(M.end(), RM.begin(), RM.end());
      std::sort(M.begin(), M.end());
      Out.addTerm(M, LC * RC);
    }
  }
  return Out;
}

CostPoly CostPoly::operator*(int64_t Scale) const {
  CostPoly Out;
  for (const auto &[M, C] : Terms)
    Out.addTerm(M, C * Scale);
  return Out;
}

bool CostPoly::isConstant() const {
  if (Terms.empty())
    return true;
  return Terms.size() == 1 && Terms.begin()->first.empty();
}

int64_t CostPoly::constantTerm() const {
  auto It = Terms.find(Monomial{});
  return It == Terms.end() ? 0 : It->second;
}

unsigned CostPoly::degree() const {
  unsigned Deg = 0;
  for (const auto &[M, C] : Terms) {
    (void)C;
    Deg = std::max<unsigned>(Deg, M.size());
  }
  return Deg;
}

std::vector<std::string> CostPoly::variables() const {
  std::vector<std::string> Vars;
  for (const auto &[M, C] : Terms) {
    (void)C;
    Vars.insert(Vars.end(), M.begin(), M.end());
  }
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

int64_t CostPoly::coefficient(const Monomial &M) const {
  auto It = Terms.find(M);
  return It == Terms.end() ? 0 : It->second;
}

int64_t CostPoly::evaluate(const std::map<std::string, int64_t> &Assignment,
                           int64_t Default) const {
  int64_t Sum = 0;
  for (const auto &[M, C] : Terms) {
    int64_t Prod = C;
    for (const std::string &V : M) {
      auto It = Assignment.find(V);
      Prod *= It == Assignment.end() ? Default : It->second;
    }
    Sum += Prod;
  }
  return Sum;
}

std::optional<int64_t> CostPoly::constantDifference(const CostPoly &RHS) const {
  CostPoly Diff = *this - RHS;
  if (!Diff.isConstant())
    return std::nullopt;
  return Diff.constantTerm();
}

bool CostPoly::hasNonNegativeVarCoefficients() const {
  for (const auto &[M, C] : Terms)
    if (!M.empty() && C < 0)
      return false;
  return true;
}

std::string CostPoly::str() const {
  if (Terms.empty())
    return "0";
  // Render higher-degree terms first for readability.
  std::vector<std::pair<Monomial, int64_t>> Sorted(Terms.begin(), Terms.end());
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const auto &A, const auto &B) {
                     return A.first.size() > B.first.size();
                   });
  std::ostringstream OS;
  bool First = true;
  for (const auto &[M, C] : Sorted) {
    int64_t Coeff = C;
    if (First) {
      if (Coeff < 0) {
        OS << "-";
        Coeff = -Coeff;
      }
    } else {
      OS << (Coeff < 0 ? " - " : " + ");
      Coeff = Coeff < 0 ? -Coeff : Coeff;
    }
    First = false;
    if (M.empty()) {
      OS << Coeff;
      continue;
    }
    if (Coeff != 1)
      OS << Coeff << "*";
    for (size_t I = 0; I < M.size(); ++I) {
      if (I)
        OS << "*";
      OS << M[I];
    }
  }
  return OS.str();
}
