//===- CostPoly.h - Multivariate integer cost polynomials -------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multivariate polynomials with 64-bit integer coefficients over named
/// symbolic variables. These are the symbolic running-time expressions the
/// bound analysis produces, e.g. 23*g.len + 10 in Figure 1 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_COSTPOLY_H
#define BLAZER_SUPPORT_COSTPOLY_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace blazer {

/// A monomial is a sorted multiset of variable names; x*x*y is {"x","x","y"}.
using Monomial = std::vector<std::string>;

/// A multivariate polynomial with int64 coefficients.
///
/// CostPoly is a value type with the usual ring operations. Variables are
/// identified by name; the bound analysis uses parameter names and
/// pseudo-variables such as "guess.len" for array lengths.
class CostPoly {
public:
  /// The zero polynomial.
  CostPoly() = default;

  /// The constant polynomial \p C.
  static CostPoly constant(int64_t C);

  /// The polynomial consisting of the single variable \p Name.
  static CostPoly variable(const std::string &Name);

  CostPoly operator+(const CostPoly &RHS) const;
  CostPoly operator-(const CostPoly &RHS) const;
  CostPoly operator*(const CostPoly &RHS) const;
  CostPoly operator*(int64_t Scale) const;
  CostPoly &operator+=(const CostPoly &RHS);

  bool operator==(const CostPoly &RHS) const { return Terms == RHS.Terms; }
  bool operator!=(const CostPoly &RHS) const { return !(*this == RHS); }
  /// Arbitrary-but-total order so polynomials can key ordered containers.
  bool operator<(const CostPoly &RHS) const { return Terms < RHS.Terms; }

  /// \returns true if this is the zero polynomial.
  bool isZero() const { return Terms.empty(); }

  /// \returns true if the polynomial has no variable terms.
  bool isConstant() const;

  /// \returns the constant term (zero if absent).
  int64_t constantTerm() const;

  /// \returns the total degree; the zero polynomial has degree 0.
  unsigned degree() const;

  /// \returns the names of every variable that occurs with a non-zero
  /// coefficient, sorted and de-duplicated.
  std::vector<std::string> variables() const;

  /// \returns the coefficient of the given monomial (zero if absent).
  int64_t coefficient(const Monomial &M) const;

  /// Evaluates under \p Assignment; variables missing from the map evaluate
  /// to \p Default.
  int64_t evaluate(const std::map<std::string, int64_t> &Assignment,
                   int64_t Default = 0) const;

  /// Structural subtraction check: \returns this - RHS if that difference is
  /// a constant, otherwise std::nullopt. Used by the polynomial-degree
  /// observer to decide that two bounds differ only by a constant.
  std::optional<int64_t> constantDifference(const CostPoly &RHS) const;

  /// \returns true if every coefficient (ignoring the constant term) is
  /// non-negative. Such polynomials are monotone in each variable over
  /// non-negative inputs, which the observer model relies on when plugging
  /// in assumed maxima.
  bool hasNonNegativeVarCoefficients() const;

  /// Renders e.g. "23*g.len + 10". The zero polynomial renders as "0".
  std::string str() const;

  const std::map<Monomial, int64_t> &terms() const { return Terms; }

private:
  void addTerm(const Monomial &M, int64_t Coeff);

  /// Monomial -> coefficient; invariant: no zero coefficients stored.
  std::map<Monomial, int64_t> Terms;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_COSTPOLY_H
