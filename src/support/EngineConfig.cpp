//===- EngineConfig.cpp - Unified analysis-engine knobs -------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/EngineConfig.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

using namespace blazer;

const char *blazer::domainModeName(DomainMode M) {
  switch (M) {
  case DomainMode::Cascade:
    return "cascade";
  case DomainMode::ZoneOnly:
    return "zone";
  case DomainMode::IntervalOnly:
    return "interval-only";
  }
  return "?";
}

const char *blazer::fixpointSchedName(FixpointSched S) {
  switch (S) {
  case FixpointSched::Wto:
    return "wto";
  case FixpointSched::Fifo:
    return "fifo";
  }
  return "?";
}

const char *blazer::closureModeName(ClosureMode M) {
  switch (M) {
  case ClosureMode::Incremental:
    return "incremental";
  case ClosureMode::Full:
    return "full";
  }
  return "?";
}

const std::vector<EngineConfig::Knob> &EngineConfig::knobs() {
  static const std::vector<Knob> Registry = {
      {"domain", "cascade|zone|interval-only",
       "abstract-domain mode (default cascade)"},
      {"fixpoint", "wto|fifo", "zone-fixpoint scheduler (default wto)"},
      {"closure", "incremental|full",
       "DBM closure policy (default incremental)"},
      {"cache", "on|off", "trail-bound memo cache (default on)"},
      {"fault-plan", "off|<seed>:<rate>[:site,...]",
       "deterministic fault injection (default off)"},
      // New knobs append here: cli_engine_knobs pins the str() order of
      // the first five.
      {"cost-model", "unit|weighted[:op=w,...|:@file]|memaccess[:N]",
       "timing cost model (default unit)"},
      {"ct", "on|off", "strict constant-time verdict mode (default off)"},
      {"arc-cache", "on|off",
       "per-arc transfer cache + incremental joins (default on)"},
      {"fixpoint-ctx", "pooled|fresh",
       "per-thread fixpoint context pool: shape/arena reuse across trail "
       "fixpoints (default pooled)"},
  };
  return Registry;
}

bool EngineConfig::set(const std::string &Name, const std::string &Value,
                       std::string *Err) {
  auto Fail = [&](const char *Values) {
    if (Err)
      *Err = "unknown " + Name + " value '" + Value + "' (expected " +
             Values + ")";
    return false;
  };
  if (Name == "domain") {
    if (Value == "cascade")
      Domain = DomainMode::Cascade;
    else if (Value == "zone" || Value == "zone-only")
      Domain = DomainMode::ZoneOnly;
    else if (Value == "interval-only")
      Domain = DomainMode::IntervalOnly;
    else
      return Fail("cascade|zone|interval-only");
    return true;
  }
  if (Name == "fixpoint") {
    if (Value == "wto")
      Fixpoint = FixpointSched::Wto;
    else if (Value == "fifo")
      Fixpoint = FixpointSched::Fifo;
    else
      return Fail("wto|fifo");
    return true;
  }
  if (Name == "closure") {
    if (Value == "incremental")
      Closure = ClosureMode::Incremental;
    else if (Value == "full")
      Closure = ClosureMode::Full;
    else
      return Fail("incremental|full");
    return true;
  }
  if (Name == "cache") {
    if (Value == "on" || Value == "1")
      TrailCache = true;
    else if (Value == "off" || Value == "0")
      TrailCache = false;
    else
      return Fail("on|off");
    return true;
  }
  if (Name == "fault-plan") {
    std::string PlanErr;
    if (!FaultPlan::parse(Value, &Fault, &PlanErr)) {
      if (Err)
        *Err = PlanErr;
      return false;
    }
    return true;
  }
  if (Name == "cost-model") {
    std::string ModelErr;
    if (!CostModel::parse(Value, &Cost, &ModelErr)) {
      if (Err)
        *Err = ModelErr;
      return false;
    }
    return true;
  }
  if (Name == "ct") {
    if (Value == "on" || Value == "1")
      CtMode = true;
    else if (Value == "off" || Value == "0")
      CtMode = false;
    else
      return Fail("on|off");
    return true;
  }
  if (Name == "arc-cache") {
    if (Value == "on" || Value == "1")
      ArcCache = true;
    else if (Value == "off" || Value == "0")
      ArcCache = false;
    else
      return Fail("on|off");
    return true;
  }
  if (Name == "fixpoint-ctx") {
    if (Value == "pooled")
      PooledFixpointCtx = true;
    else if (Value == "fresh")
      PooledFixpointCtx = false;
    else
      return Fail("pooled|fresh");
    return true;
  }
  if (Err)
    *Err = "unknown engine knob '" + Name + "'";
  return false;
}

std::string EngineConfig::get(const std::string &Name) const {
  if (Name == "domain")
    return domainModeName(Domain);
  if (Name == "fixpoint")
    return fixpointSchedName(Fixpoint);
  if (Name == "closure")
    return closureModeName(Closure);
  if (Name == "cache")
    return TrailCache ? "on" : "off";
  if (Name == "fault-plan")
    return Fault.str();
  if (Name == "cost-model")
    return Cost.str();
  if (Name == "ct")
    return CtMode ? "on" : "off";
  if (Name == "arc-cache")
    return ArcCache ? "on" : "off";
  if (Name == "fixpoint-ctx")
    return PooledFixpointCtx ? "pooled" : "fresh";
  return "";
}

void EngineConfig::loadEnv(const std::string &Prefix) {
  auto Env = [](const std::string &Name) -> const char * {
    return std::getenv(Name.c_str());
  };
  for (const Knob &K : knobs()) {
    std::string Var = Prefix + "_";
    // '-' maps to '_' so "fault-plan" reads <PREFIX>_FAULT_PLAN.
    for (const char *P = K.Name; *P; ++P)
      Var += *P == '-'
                 ? '_'
                 : static_cast<char>(
                       std::toupper(static_cast<unsigned char>(*P)));
    const char *V = Env(Var);
    if (!V)
      continue;
    std::string Err;
    if (!set(K.Name, V, &Err))
      std::fprintf(stderr, "ignoring malformed %s: %s\n", Var.c_str(),
                   Err.c_str());
  }
  // Deprecated 0/1 aliases from the pre-unification bench drivers. The
  // canonical spelling wins when both are present (it was read above).
  auto Legacy = [&](const char *Suffix, const char *Knob, const char *On,
                    const char *Off, bool SkipIfCanonical) {
    std::string Var = Prefix + "_" + Suffix;
    const char *V = Env(Var);
    if (!V)
      return;
    // The legacy spelling was used (even if the canonical one overrides
    // it): nudge once per process, not once per parse.
    std::string Canonical = Prefix + "_";
    for (const char *P = Knob; *P; ++P)
      Canonical += static_cast<char>(std::toupper(static_cast<unsigned char>(*P)));
    warnDeprecatedAlias(Var, Canonical + "=" + On + "|" + Off);
    if (SkipIfCanonical)
      return;
    std::string S = V;
    if (S == "1")
      set(Knob, On);
    else if (S == "0")
      set(Knob, Off);
    else
      std::fprintf(stderr, "ignoring malformed %s '%s'\n", Var.c_str(), V);
  };
  Legacy("FIFO", "fixpoint", "fifo", "wto",
         Env(Prefix + "_FIXPOINT") != nullptr);
  Legacy("FULLCLOSE", "closure", "full", "incremental",
         Env(Prefix + "_CLOSURE") != nullptr);
  // "_CACHE" is both the canonical name and the legacy 0/1 switch; set()
  // accepts 0/1 alongside on/off, so the loop above already handled it.
}

std::string EngineConfig::str() const {
  std::string S;
  for (const Knob &K : knobs()) {
    if (!S.empty())
      S += ' ';
    S += K.Name;
    S += '=';
    S += get(K.Name);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Deprecation warnings
//===----------------------------------------------------------------------===//

namespace {
std::mutex DeprecationMu;
// Guarded by DeprecationMu. Function-local statics would re-order against
// the mutex during shutdown; plain namespace statics of these types are
// constant-initialized and safe from any thread.
std::set<std::string> *DeprecationsSeen = nullptr;
std::atomic<bool> DeprecationWarningsEnabled{true};
} // namespace

void blazer::warnDeprecatedAlias(const std::string &Old,
                                 const std::string &New) {
  std::lock_guard<std::mutex> Lock(DeprecationMu);
  if (!DeprecationsSeen)
    DeprecationsSeen = new std::set<std::string>();
  // Dedup first: a spelling seen while warnings were suppressed stays
  // silent for the rest of the process.
  if (!DeprecationsSeen->insert(Old).second)
    return;
  if (!DeprecationWarningsEnabled.load(std::memory_order_relaxed))
    return;
  std::fprintf(stderr, "warning: %s is deprecated; use %s\n", Old.c_str(),
               New.c_str());
}

void blazer::setDeprecationWarningsEnabled(bool Enabled) {
  DeprecationWarningsEnabled.store(Enabled, std::memory_order_relaxed);
}

namespace {
thread_local ClosureMode CurrentClosure = ClosureMode::Incremental;
} // namespace

ClosurePolicyScope::ClosurePolicyScope(ClosureMode M) : Prev(CurrentClosure) {
  CurrentClosure = M;
}

ClosurePolicyScope::~ClosurePolicyScope() { CurrentClosure = Prev; }

ClosureMode ClosurePolicyScope::current() { return CurrentClosure; }
