//===- EngineConfig.h - Unified analysis-engine knobs -----------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One block for every analysis-engine knob that accreted across the perf
/// PRs: the abstract-domain mode (interval->zone cascade vs zone-only vs
/// interval-only), the zone-fixpoint scheduler (WTO vs the legacy FIFO
/// worklist), the DBM closure policy (incremental vs full Floyd-Warshall),
/// and the trail-bound memo cache. Each knob has exactly one canonical
/// spelling shared by the CLI (--domain=cascade), the bench drivers
/// (BLAZER_TABLE1_DOMAIN=cascade), and programmatic use
/// (BlazerOptions::Engine), enumerated by a single registry so the
/// surfaces cannot drift. Old spellings (--no-cache, --fixpoint=fifo,
/// BLAZER_TABLE1_{FIFO,CACHE,FULLCLOSE}) are kept as deprecated aliases.
///
/// The closure policy used to be the process-wide Dbm::forceFullClose
/// static; it is now per-options, delivered to the DBM kernels through a
/// thread-local ClosurePolicyScope that the driver installs for the run
/// and parallelForWithBudget re-installs on pool workers.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_ENGINECONFIG_H
#define BLAZER_SUPPORT_ENGINECONFIG_H

#include "support/CostModel.h"
#include "support/FaultInjector.h"

#include <string>
#include <vector>

namespace blazer {

/// Which abstract domain(s) drive the per-trail fixpoint.
enum class DomainMode {
  /// Interval pre-pass discharges trail infeasibility; zones decide
  /// everything else (the default).
  Cascade,
  /// Zones only — the pre-cascade behavior, the A/B baseline.
  ZoneOnly,
  /// Intervals only — a diagnostic mode; bounds are weaker, so verdicts
  /// may degrade to unknown (never to an unsound Safe).
  IntervalOnly,
};

/// Zone-fixpoint iteration strategy.
enum class FixpointSched {
  Wto,  ///< Bourdoncle weak-topological-order recursion (default).
  Fifo, ///< Legacy FIFO worklist, kept as the A/B baseline.
};

/// How DBM addConstraint restores canonical form.
enum class ClosureMode {
  Incremental, ///< O(n^2) single-constraint re-closure (default).
  Full,        ///< Always the O(n^3) Floyd-Warshall — the A/B baseline.
};

const char *domainModeName(DomainMode M);
const char *fixpointSchedName(FixpointSched S);
const char *closureModeName(ClosureMode M);

/// The unified engine-knob block. Value-semantic and cheap to copy; embeds
/// in BlazerOptions as the one place engine behavior is configured.
struct EngineConfig {
  DomainMode Domain = DomainMode::Cascade;
  FixpointSched Fixpoint = FixpointSched::Wto;
  ClosureMode Closure = ClosureMode::Incremental;
  /// Memoize per-trail bound analyses (see BlazerOptions for semantics).
  bool TrailCache = true;
  /// Deterministic fault-injection plan ("off" by default — compiled down
  /// to one untaken thread-local branch per site). See FaultInjector.h.
  FaultPlan Fault;
  /// Timing cost model charged by the interpreter, the bound analysis, and
  /// the self-composition baseline ("unit" by default). See CostModel.h.
  CostModel Cost;
  /// Strict constant-time verdict mode: when on, the driver replaces the
  /// attack search with a CtSafe/CtUnsafe classification requiring every
  /// high-quotient component's cost bounds to be exactly equal — not
  /// merely finite (see DESIGN.md "Cost models & constant-time verdicts").
  bool CtMode = false;
  /// Per-arc transfer cache + dirty-arc incremental joins in the zone
  /// fixpoint (on by default). Off restores the uncached full-join path;
  /// entry states are byte-identical either way (see DESIGN.md "Fixpoint
  /// engine: the arc cache").
  bool ArcCache = true;
  /// Per-thread fixpoint context pool (on by default): WTO/arc-index
  /// reuse across same-shape trail fixpoints, a retained state arena
  /// reset by version stamp, batched flat-component stabilization, and
  /// the version-stamped comparison fast path. "fresh" rebuilds
  /// everything per run — the A/B baseline; entry states, trajectories,
  /// and verdicts are byte-identical either way (see DESIGN.md "Fixpoint
  /// engine: the context pool").
  bool PooledFixpointCtx = true;

  /// One registry entry: the canonical knob name doubles as the CLI flag
  /// ("--<name>=<value>") and the bench env var ("<prefix>_<NAME>", with
  /// '-' mapped to '_': fault-plan -> <prefix>_FAULT_PLAN).
  struct Knob {
    const char *Name;   ///< "domain", "fixpoint", ..., "fault-plan".
    const char *Values; ///< Accepted values, for usage text.
    const char *Help;   ///< One-line description.
  };
  /// The full knob registry, in display order.
  static const std::vector<Knob> &knobs();

  /// Sets knob \p Name to \p Value (both canonical spellings). \returns
  /// false and fills \p Err on an unknown knob or value.
  bool set(const std::string &Name, const std::string &Value,
           std::string *Err = nullptr);

  /// Current value of knob \p Name (canonical spelling), or "" if unknown.
  std::string get(const std::string &Name) const;

  /// Reads every knob from the environment: for each registry entry the
  /// canonical "<prefix>_<NAME>" (e.g. BLAZER_TABLE1_DOMAIN=cascade), then
  /// the deprecated 0/1 aliases <prefix>_FIFO, <prefix>_FULLCLOSE and
  /// <prefix>_CACHE. Malformed values warn on stderr and keep the default,
  /// matching the historical bench-driver behavior.
  void loadEnv(const std::string &Prefix);

  /// Renders "domain=cascade fixpoint=wto closure=incremental cache=on".
  std::string str() const;

  bool operator==(const EngineConfig &O) const = default;
};

/// Emits "warning: <Old> is deprecated; use <New>" to stderr — once per
/// process per distinct \p Old, no matter how many configs are parsed.
/// First sighting also claims the dedup slot when warnings are suppressed,
/// so toggling suppression never replays old warnings.
void warnDeprecatedAlias(const std::string &Old, const std::string &New);

/// Globally enables/disables deprecation warnings. Machine-output paths
/// (--json style) suppress them so structured consumers never see stray
/// advice on stderr. Defaults to enabled.
void setDeprecationWarningsEnabled(bool Enabled);

/// RAII thread-local installation of the DBM closure policy. The zone
/// kernels read the innermost scope's mode (Incremental when none is
/// installed), so the policy follows the options of the run that installed
/// it instead of mutating process-wide state — concurrent drivers with
/// different policies no longer interfere.
class ClosurePolicyScope {
public:
  explicit ClosurePolicyScope(ClosureMode M);
  ~ClosurePolicyScope();

  ClosurePolicyScope(const ClosurePolicyScope &) = delete;
  ClosurePolicyScope &operator=(const ClosurePolicyScope &) = delete;

  /// The calling thread's effective closure mode.
  static ClosureMode current();

private:
  ClosureMode Prev;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_ENGINECONFIG_H
