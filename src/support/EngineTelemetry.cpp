//===- EngineTelemetry.cpp - Unified engine work counters -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/EngineTelemetry.h"

#include <cstdio>

using namespace blazer;

std::string EngineTelemetry::json() const {
  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"cache\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
      "\"entries\": %llu}, "
      "\"fixpoint\": {\"pops\": %llu, \"joins\": %llu, \"widenings\": %llu, "
      "\"transfer_hit_rate\": %.4f, \"sweep_transfer_hit_rate\": %.4f, "
      "\"sweeps\": %llu, "
      "\"arc_cache\": {\"hits\": %llu, \"misses\": %llu, \"bytes\": %llu}, "
      "\"ctx\": {\"hits\": %llu, \"misses\": %llu, \"batch_passes\": %llu, "
      "\"batched_nodes\": %llu, \"cmp_fast_hits\": %llu, "
      "\"cmp_fast_misses\": %llu}}, "
      "\"cascade\": {\"discharged\": %llu, \"promoted\": %llu, "
      "\"interval_pops\": %llu}, "
      "\"fault\": {\"injected\": %llu, \"retries\": %llu, "
      "\"degradations\": %llu}, "
      "\"ct\": {\"components\": %llu, \"exact_components\": %llu, "
      "\"leaves\": %llu, \"splits\": %llu}}",
      static_cast<unsigned long long>(Cache.Hits),
      static_cast<unsigned long long>(Cache.Misses),
      static_cast<unsigned long long>(Cache.Evictions),
      static_cast<unsigned long long>(Cache.Entries),
      static_cast<unsigned long long>(Fixpoint.Pops),
      static_cast<unsigned long long>(Fixpoint.Joins),
      static_cast<unsigned long long>(Fixpoint.Widenings),
      Fixpoint.transferHitRate(), Fixpoint.sweepTransferHitRate(),
      static_cast<unsigned long long>(Fixpoint.Sweeps),
      static_cast<unsigned long long>(Fixpoint.ArcHits),
      static_cast<unsigned long long>(Fixpoint.ArcMisses),
      static_cast<unsigned long long>(Fixpoint.ArcBytes),
      static_cast<unsigned long long>(Fixpoint.CtxHits),
      static_cast<unsigned long long>(Fixpoint.CtxMisses),
      static_cast<unsigned long long>(Fixpoint.BatchPasses),
      static_cast<unsigned long long>(Fixpoint.BatchedNodes),
      static_cast<unsigned long long>(Fixpoint.CmpFastHits),
      static_cast<unsigned long long>(Fixpoint.CmpFastMisses),
      static_cast<unsigned long long>(Cascade.Discharged),
      static_cast<unsigned long long>(Cascade.Promoted),
      static_cast<unsigned long long>(Cascade.IntervalPops),
      static_cast<unsigned long long>(Fault.Injected),
      static_cast<unsigned long long>(Fault.Retries),
      static_cast<unsigned long long>(Fault.Degradations),
      static_cast<unsigned long long>(Ct.Components),
      static_cast<unsigned long long>(Ct.ExactComponents),
      static_cast<unsigned long long>(Ct.Leaves),
      static_cast<unsigned long long>(Ct.Splits));
  return Buf;
}
