//===- EngineTelemetry.h - Unified engine work counters ---------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one struct every stats surface speaks: trail-cache counters,
/// zone-fixpoint work counters, and interval-cascade counters, with a
/// single JSON emitter shared by the CLI's --cache-stats/--fixpoint-stats
/// and the bench drivers' BENCH_table1.json rows. Consolidates what used
/// to be the separate BlazerResult::CacheStats and BlazerResult::Fixpoint
/// fields (plus ad-hoc printf schemas per surface).
///
/// Everything here is diagnostic, not semantic: two configurations that
/// agree on every verdict and bound still pop, join, and memoize different
/// amounts.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_ENGINETELEMETRY_H
#define BLAZER_SUPPORT_ENGINETELEMETRY_H

#include "support/FaultInjector.h"
#include "support/TrailBoundCache.h"

#include <cstdint>
#include <string>

namespace blazer {

/// Work counters of one (or several, merged) zone-fixpoint runs.
struct FixpointStats {
  uint64_t Pops = 0;      ///< Node entry-state recomputations.
  uint64_t Joins = 0;     ///< In-arc joins folded into entry states.
  uint64_t Widenings = 0; ///< Widening applications.
  uint64_t TransferHits = 0;   ///< Ascent post-block memo hits.
  uint64_t TransferMisses = 0; ///< Ascent post-block memo misses.
  uint64_t Sweeps = 0;         ///< Descending sweeps actually run.
  /// Post-block memo traffic during the descending sweeps, kept separate
  /// from the ascent counters so --fixpoint-stats and the Table-1 JSON do
  /// not hide sweep-phase behavior inside one summed pair.
  uint64_t SweepTransferHits = 0;
  uint64_t SweepTransferMisses = 0;
  /// Per-arc transfer cache traffic; all zero under --arc-cache=off.
  uint64_t ArcHits = 0;   ///< Arc lookups served from the stamped cache.
  uint64_t ArcMisses = 0; ///< Arc recomputations (copy + applyBranch).
  uint64_t ArcBytes = 0;  ///< Peak bytes held by arc values + accumulators.
  /// Fixpoint-context pool traffic; all zero under --fixpoint-ctx=fresh.
  uint64_t CtxHits = 0;   ///< analyze() runs that reused a cached shape.
  uint64_t CtxMisses = 0; ///< Runs that built (or rebuilt) their shape.
  uint64_t BatchPasses = 0;  ///< Flat-component stabilization passes.
  uint64_t BatchedNodes = 0; ///< Body pops performed inside batched passes.
  uint64_t CmpFastHits = 0;   ///< Pops short-circuited by the version token.
  uint64_t CmpFastMisses = 0; ///< Pops that fell through to join + leq.
  /// Staleness-oracle mismatches (AnalyzerConfig::VerifyArcCache only;
  /// always zero in production). Not serialized.
  uint64_t ArcVerifyMismatches = 0;
  /// Per-phase wall time (AnalyzerConfig::PhaseTimers only; the bench
  /// harness turns these on — production runs keep the clock off the hot
  /// path). Not serialized.
  uint64_t JoinNanos = 0;
  uint64_t TransferNanos = 0;
  uint64_t WidenNanos = 0;

  void mergeFrom(const FixpointStats &O) {
    Pops += O.Pops;
    Joins += O.Joins;
    Widenings += O.Widenings;
    TransferHits += O.TransferHits;
    TransferMisses += O.TransferMisses;
    Sweeps += O.Sweeps;
    SweepTransferHits += O.SweepTransferHits;
    SweepTransferMisses += O.SweepTransferMisses;
    ArcHits += O.ArcHits;
    ArcMisses += O.ArcMisses;
    ArcBytes += O.ArcBytes;
    CtxHits += O.CtxHits;
    CtxMisses += O.CtxMisses;
    BatchPasses += O.BatchPasses;
    BatchedNodes += O.BatchedNodes;
    CmpFastHits += O.CmpFastHits;
    CmpFastMisses += O.CmpFastMisses;
    ArcVerifyMismatches += O.ArcVerifyMismatches;
    JoinNanos += O.JoinNanos;
    TransferNanos += O.TransferNanos;
    WidenNanos += O.WidenNanos;
  }

  /// Fraction of ascent post-block lookups served from the memo, in [0, 1].
  double transferHitRate() const {
    uint64_t Total = TransferHits + TransferMisses;
    return Total ? static_cast<double>(TransferHits) / Total : 0.0;
  }

  /// Fraction of sweep-phase post-block lookups served from the memo.
  double sweepTransferHitRate() const {
    uint64_t Total = SweepTransferHits + SweepTransferMisses;
    return Total ? static_cast<double>(SweepTransferHits) / Total : 0.0;
  }

  /// Fraction of analyze() runs that reused a pooled shape, in [0, 1].
  double ctxHitRate() const {
    uint64_t Total = CtxHits + CtxMisses;
    return Total ? static_cast<double>(CtxHits) / Total : 0.0;
  }

  /// Fraction of pops short-circuited by the comparison fast path.
  double cmpFastHitRate() const {
    uint64_t Total = CmpFastHits + CmpFastMisses;
    return Total ? static_cast<double>(CmpFastHits) / Total : 0.0;
  }
};

/// Work counters of the interval->zone domain cascade: how many trail
/// products the interval pre-pass discharged outright (proved infeasible
/// without any zone fixpoint) vs promoted to the zone domain.
struct CascadeStats {
  uint64_t Discharged = 0;   ///< Products settled by intervals alone.
  uint64_t Promoted = 0;     ///< Products that ran the zone fixpoint.
  uint64_t IntervalPops = 0; ///< Interval-fixpoint node recomputations.

  void mergeFrom(const CascadeStats &O) {
    Discharged += O.Discharged;
    Promoted += O.Promoted;
    IntervalPops += O.IntervalPops;
  }
};

/// Work counters of the strict constant-time check: all zero unless the
/// driver ran in --ct mode.
struct CtStats {
  uint64_t Components = 0;      ///< ψ_tcf components examined.
  uint64_t ExactComponents = 0; ///< Components already ct-exact unsplit.
  uint64_t Leaves = 0;          ///< Final leaves classified.
  uint64_t Splits = 0;          ///< Secret-refinement splits adopted.

  void mergeFrom(const CtStats &O) {
    Components += O.Components;
    ExactComponents += O.ExactComponents;
    Leaves += O.Leaves;
    Splits += O.Splits;
  }
};

/// Everything the engine counts in one run, one schema everywhere.
struct EngineTelemetry {
  /// Trail-bound cache counters. All zero when the cache was disabled;
  /// cumulative across runs when a shared cache is reused.
  TrailCacheStats Cache;
  /// Zone-fixpoint work counters accumulated over every trail analyzed.
  FixpointStats Fixpoint;
  /// Interval-cascade counters; all zero under --domain=zone.
  CascadeStats Cascade;
  /// Fault-injection counters; all zero without an active --fault-plan.
  FaultStats Fault;
  /// Constant-time check counters; all zero without --ct.
  CtStats Ct;

  void mergeFrom(const EngineTelemetry &O) {
    Cache.Hits += O.Cache.Hits;
    Cache.Misses += O.Cache.Misses;
    Cache.Evictions += O.Cache.Evictions;
    Cache.Entries += O.Cache.Entries;
    Fixpoint.mergeFrom(O.Fixpoint);
    Cascade.mergeFrom(O.Cascade);
    Fault.mergeFrom(O.Fault);
    Ct.mergeFrom(O.Ct);
  }

  /// The shared JSON schema:
  /// {"cache": {"hits": H, "misses": M, "evictions": E, "entries": N},
  ///  "fixpoint": {"pops": .., "joins": .., "widenings": ..,
  ///               "transfer_hit_rate": .., "sweep_transfer_hit_rate": ..,
  ///               "sweeps": ..,
  ///               "arc_cache": {"hits": .., "misses": .., "bytes": ..},
  ///               "ctx": {"hits": .., "misses": .., "batch_passes": ..,
  ///                       "batched_nodes": .., "cmp_fast_hits": ..,
  ///                       "cmp_fast_misses": ..}},
  ///  "cascade": {"discharged": .., "promoted": .., "interval_pops": ..},
  ///  "fault": {"injected": .., "retries": .., "degradations": ..},
  ///  "ct": {"components": .., "exact_components": .., "leaves": ..,
  ///         "splits": ..}}
  /// Diagnostic-only fields (verify mismatches, phase nanos) are not
  /// serialized — they exist for the staleness oracle and the bench
  /// breakdown, not the stable schema.
  std::string json() const;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_ENGINETELEMETRY_H
