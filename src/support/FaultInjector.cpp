//===- FaultInjector.cpp - Seeded deterministic fault injection -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace blazer {

namespace detail {
thread_local FaultInjector *TLFaultInjector = nullptr;
} // namespace detail

static const char *const FaultSiteNames[NumFaultSites] = {
    "dbm-pool",     "transfer",     "closure",        "pool-task",
    "cache-insert", "cache-retake", "trail-analysis", "arc-cache",
    "fixpoint-ctx",
};

const char *faultSiteName(FaultSite S) {
  unsigned I = static_cast<unsigned>(S);
  return I < NumFaultSites ? FaultSiteNames[I] : "?";
}

bool parseFaultSite(const std::string &Name, FaultSite *Out) {
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    if (Name == FaultSiteNames[I]) {
      *Out = static_cast<FaultSite>(I);
      return true;
    }
  }
  return false;
}

static void setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
}

bool FaultPlan::parse(const std::string &Spec, FaultPlan *Out,
                      std::string *Err) {
  *Out = FaultPlan();
  if (Spec.empty() || Spec == "off")
    return true;

  // Split on ':' into seed, rate, and the optional site list.
  size_t C1 = Spec.find(':');
  if (C1 == std::string::npos) {
    setErr(Err, "fault plan '" + Spec +
                    "' needs <seed>:<rate>[:site,...] (or 'off')");
    return false;
  }
  size_t C2 = Spec.find(':', C1 + 1);
  std::string SeedStr = Spec.substr(0, C1);
  std::string RateStr = Spec.substr(
      C1 + 1, C2 == std::string::npos ? std::string::npos : C2 - C1 - 1);
  std::string Sites = C2 == std::string::npos ? "" : Spec.substr(C2 + 1);

  char *End = nullptr;
  Out->Seed = std::strtoull(SeedStr.c_str(), &End, 0);
  if (SeedStr.empty() || *End != '\0') {
    setErr(Err, "fault plan seed '" + SeedStr + "' is not an integer");
    return false;
  }
  Out->Rate = std::strtod(RateStr.c_str(), &End);
  if (RateStr.empty() || *End != '\0' || Out->Rate < 0 || Out->Rate > 1) {
    setErr(Err, "fault plan rate '" + RateStr + "' is not in [0, 1]");
    return false;
  }

  if (Sites.empty()) {
    Out->SiteMask = allSitesMask();
    return true;
  }
  for (size_t Pos = 0; Pos <= Sites.size();) {
    size_t Comma = Sites.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Sites.size();
    std::string Tok = Sites.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Tok == "all") {
      Out->SiteMask = allSitesMask();
    } else if (Tok == "abort") {
      Out->Abort = true;
    } else {
      FaultSite S;
      if (!parseFaultSite(Tok, &S)) {
        std::string Known;
        for (unsigned I = 0; I < NumFaultSites; ++I) {
          if (I)
            Known += ", ";
          Known += FaultSiteNames[I];
        }
        setErr(Err, "unknown fault site '" + Tok + "' (known: " + Known +
                        ", all, abort)");
        return false;
      }
      Out->SiteMask |= 1u << static_cast<unsigned>(S);
    }
  }
  // "<seed>:<rate>:abort" alone means abort at any site.
  if (Out->SiteMask == 0)
    Out->SiteMask = allSitesMask();
  return true;
}

std::string FaultPlan::str() const {
  if (!enabled())
    return "off";
  char Head[64];
  std::snprintf(Head, sizeof(Head), "%llu:%g",
                static_cast<unsigned long long>(Seed), Rate);
  std::string S = Head;
  bool AllSites = SiteMask == allSitesMask();
  if (!AllSites || Abort) {
    S += ':';
    bool First = true;
    if (AllSites) {
      S += "all";
      First = false;
    } else {
      for (unsigned I = 0; I < NumFaultSites; ++I) {
        if (!(SiteMask & (1u << I)))
          continue;
        if (!First)
          S += ',';
        S += FaultSiteNames[I];
        First = false;
      }
    }
    if (Abort)
      S += First ? "abort" : ",abort";
  }
  return S;
}

InjectedFault::InjectedFault(FaultSite S, uint64_t Idx)
    : std::runtime_error(std::string("injected fault at ") + faultSiteName(S) +
                         "[" + std::to_string(Idx) + "]"),
      Site(S), Index(Idx) {}

// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool FaultInjector::decides(uint64_t Seed, FaultSite S, uint64_t Index,
                            double Rate) {
  if (Rate <= 0)
    return false;
  if (Rate >= 1)
    return true;
  uint64_t H =
      mix64(Seed ^ mix64((uint64_t(static_cast<unsigned>(S)) << 32) ^ Index));
  // Top 53 bits → uniform double in [0, 1).
  double U = double(H >> 11) * 0x1.0p-53;
  return U < Rate;
}

void FaultInjector::hit(FaultSite S) {
  if (!Plan.siteEnabled(S))
    return;
  uint64_t Index = NextIndex[static_cast<unsigned>(S)].fetch_add(
      1, std::memory_order_relaxed);
  if (!decides(Plan.Seed, S, Index, Plan.Rate))
    return;
  Injected.fetch_add(1, std::memory_order_relaxed);
  if (Plan.Abort) {
    // Crash-containment testing: die the way a real heap corruption or
    // assert would, so the fork sandbox has something to contain.
    std::fprintf(stderr, "fault-injector: aborting at %s[%llu]\n",
                 faultSiteName(S), static_cast<unsigned long long>(Index));
    std::abort();
  }
  throw InjectedFault(S, Index);
}

void FaultInjector::backoff(int Attempt) {
  // Transient faults model momentary resource pressure; a short bounded
  // pause is part of the recovery contract (and keeps the chaos suite from
  // hot-spinning when every retry re-fires).
  int Ms = 1 << (Attempt < 4 ? Attempt : 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace blazer
