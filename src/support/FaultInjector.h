//===- FaultInjector.h - Seeded deterministic fault injection ---*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded fault injection for the engine's riskiest seams.
/// A long-lived analysis service must survive allocation failures, worker
/// exceptions, and poisoned cache entries without ever emitting an unsound
/// Safe verdict; this subsystem makes those failure modes reproducible so
/// the chaos suite can assert the recovery paths instead of hoping.
///
/// Named *injection sites* are threaded through the engine — DBM pool
/// allocation, transfer/closure kernels, pool task execution, trail-cache
/// insert and waiter-retake, and whole-trail analysis. Each site calls
/// maybeInjectFault(Site), which is a single thread-local pointer test when
/// no plan is installed (the disabled configuration must cost nothing
/// measurable). With a plan installed, every site hit draws a deterministic
/// pseudo-random decision keyed by (seed, site, per-site hit index); firing
/// hits throw InjectedFault (or abort() under an abort plan, for testing
/// crash containment of whole processes).
///
/// Determinism contract: the set of firing (site, index) pairs is a pure
/// function of the plan. The engine performs identical work at any job
/// count, so per-site hit totals — and therefore *whether* a plan faults at
/// all — are reproducible; replaying a plan yields the same outcome. Which
/// thread observes a given index may vary under parallelism, so only the
/// first-trip provenance site can differ between multi-job replays of a
/// multi-site plan; verdicts cannot.
///
/// Recovery is layered (see DESIGN.md "Failure model"):
///  - transient sites (pool allocation, cache insert/retake) get one
///    bounded retry with backoff at the per-trail boundary;
///  - persistent sites degrade the trail immediately;
///  - every unrecovered fault trips the AnalysisBudget with
///    BudgetKind::FaultInjected and the site name, riding the existing
///    fail-soft machinery: the verdict degrades to Unknown, never flips.
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_FAULTINJECTOR_H
#define BLAZER_SUPPORT_FAULTINJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace blazer {

/// Every named injection site, in registry order. Site indices are part of
/// the plan syntax's stable surface: new sites append.
enum class FaultSite : unsigned {
  DbmPool,       ///< MatrixPool::acquire — heap matrix allocation.
  Transfer,      ///< AnalyzerT::transferBlock — the post-block kernel.
  Closure,       ///< Dbm::close — the Floyd-Warshall canonicalization.
  PoolTask,      ///< parallelForWithBudget — a stolen pool iteration.
  CacheInsert,   ///< ShardedTrailCache — owner about to compute/publish.
  CacheRetake,   ///< ShardedTrailCache — waiter retaking an abandon.
  TrailAnalysis, ///< BoundAnalysis::analyzeTrail — whole-trail boundary.
  ArcCache,      ///< FixpointRun arc cache — degrades to uncached joins.
  FixpointCtx,   ///< Fixpoint context pool — degrades a run to fresh mode.
};
inline constexpr unsigned NumFaultSites = 9;

const char *faultSiteName(FaultSite S);
/// \returns false when \p Name matches no site.
bool parseFaultSite(const std::string &Name, FaultSite *Out);

/// One parsed `--fault-plan=<seed>:<rate>[:site,...]` specification.
/// `<rate>` is the per-hit firing probability in [0, 1]; omitted sites
/// mean "all"; the pseudo-site token `abort` turns firing hits into
/// std::abort() instead of a recoverable exception (crash-containment
/// testing). "off" (or an empty string) disables injection.
struct FaultPlan {
  uint64_t Seed = 0;
  double Rate = 0;
  /// Bit I enables FaultSite(I).
  uint32_t SiteMask = 0;
  /// Firing hits call std::abort() instead of throwing InjectedFault.
  bool Abort = false;

  bool enabled() const { return Rate > 0 && SiteMask != 0; }
  bool siteEnabled(FaultSite S) const {
    return SiteMask & (1u << static_cast<unsigned>(S));
  }
  static uint32_t allSitesMask() { return (1u << NumFaultSites) - 1; }

  /// Parses \p Spec; \returns false and fills \p Err on malformed input.
  static bool parse(const std::string &Spec, FaultPlan *Out,
                    std::string *Err = nullptr);
  /// Canonical rendering ("off", "7:0.01", "7:0.01:transfer,closure").
  std::string str() const;

  bool operator==(const FaultPlan &O) const = default;
};

/// The recoverable fault an armed site throws. Deliberately NOT derived
/// from the failure it simulates (bad_alloc etc.): recovery code must
/// catch the injection type explicitly, so a plan can never be confused
/// with a genuine error and silently swallowed.
class InjectedFault : public std::runtime_error {
public:
  InjectedFault(FaultSite S, uint64_t Index);
  FaultSite site() const { return Site; }
  /// The per-site hit index that fired (for replay diagnostics).
  uint64_t index() const { return Index; }

private:
  FaultSite Site;
  uint64_t Index;
};

/// Counters one injector accumulates over a run; surfaced through
/// EngineTelemetry so the CLI and bench JSON report chaos coverage.
struct FaultStats {
  uint64_t Injected = 0;     ///< Site hits that fired.
  uint64_t Retries = 0;      ///< Transient faults retried (with backoff).
  uint64_t Degradations = 0; ///< Faults that degraded a result to Unknown.

  void mergeFrom(const FaultStats &O) {
    Injected += O.Injected;
    Retries += O.Retries;
    Degradations += O.Degradations;
  }
};

/// One run's fault source: owns the plan, the per-site hit counters, and
/// the outcome counters. Thread-safe — the parallel driver shares one
/// injector across its worker pool (counters are atomic; decisions are
/// pure functions of (seed, site, index)).
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &P) : Plan(P) {
    for (auto &C : NextIndex)
      C.store(0, std::memory_order_relaxed);
  }

  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  const FaultPlan &plan() const { return Plan; }

  /// The pure decision function: does hit \p Index of \p S fire under
  /// (\p Seed, \p Rate)? Exposed so tests can pick seeds that fire at a
  /// chosen index and nowhere else.
  static bool decides(uint64_t Seed, FaultSite S, uint64_t Index,
                      double Rate);

  /// Registers one hit of \p S: claims the next per-site index and throws
  /// InjectedFault (or aborts, under an abort plan) when the decision
  /// fires. Called only from maybeInjectFault's armed path.
  void hit(FaultSite S);

  /// Sites whose simulated failure is momentary (an allocation that would
  /// succeed on retry, a cache slot freed by the abandon itself): the
  /// per-trail recovery grants these one retry with backoff before
  /// degrading. Kernel and task faults are persistent — retrying the same
  /// computation would re-execute the whole failure path.
  static bool transientSite(FaultSite S) {
    return S == FaultSite::DbmPool || S == FaultSite::CacheInsert ||
           S == FaultSite::CacheRetake;
  }

  /// Bounded backoff before a transient retry (attempt 0 = first retry).
  static void backoff(int Attempt);

  void countRetry() { Retries.fetch_add(1, std::memory_order_relaxed); }
  void countDegradation() {
    Degradations.fetch_add(1, std::memory_order_relaxed);
  }

  FaultStats stats() const {
    FaultStats S;
    S.Injected = Injected.load(std::memory_order_relaxed);
    S.Retries = Retries.load(std::memory_order_relaxed);
    S.Degradations = Degradations.load(std::memory_order_relaxed);
    return S;
  }

private:
  FaultPlan Plan;
  std::array<std::atomic<uint64_t>, NumFaultSites> NextIndex;
  std::atomic<uint64_t> Injected{0};
  std::atomic<uint64_t> Retries{0};
  std::atomic<uint64_t> Degradations{0};
};

namespace detail {
/// The calling thread's active injector (null = injection disabled). A
/// plain extern thread_local so maybeInjectFault inlines to one load and
/// branch — the no-plan configuration pays nothing measurable at the hot
/// sites (transfer kernels, pool allocation).
extern thread_local FaultInjector *TLFaultInjector;
} // namespace detail

/// The one call injection sites make. No-op unless a FaultScope installed
/// an injector on this thread.
inline void maybeInjectFault(FaultSite S) {
  if (FaultInjector *F = detail::TLFaultInjector)
    F->hit(S);
}

/// RAII thread-local installation of an injector, mirroring BudgetScope:
/// the driver installs the run's injector, and parallelForWithBudget
/// re-installs it on pool workers so stolen work draws from the same plan.
/// Null is allowed (and disables injection within the scope).
class FaultScope {
public:
  explicit FaultScope(FaultInjector *F) : Prev(detail::TLFaultInjector) {
    detail::TLFaultInjector = F;
  }
  ~FaultScope() { detail::TLFaultInjector = Prev; }

  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

  /// The innermost installed injector of this thread, or null.
  static FaultInjector *current() { return detail::TLFaultInjector; }

private:
  FaultInjector *Prev;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_FAULTINJECTOR_H
