//===- Observer.cpp - Attacker observability models -----------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Observer.h"

#include <cassert>
#include <cstdlib>

using namespace blazer;

ObserverModel ObserverModel::polynomialDegree(int64_t Epsilon) {
  return ObserverModel(Kind::PolynomialDegree, Epsilon, /*DefMax=*/0);
}

ObserverModel ObserverModel::concreteInstructions(int64_t Threshold,
                                                  int64_t DefaultMaxInput) {
  return ObserverModel(Kind::ConcreteInstructions, Threshold, DefaultMaxInput);
}

void ObserverModel::setMaxInput(const std::string &Var, int64_t Max) {
  MaxInputs[Var] = Max;
}

void ObserverModel::pinSymbol(const std::string &Var, int64_t Value) {
  Pinned.insert(Var);
  MaxInputs[Var] = Value;
}

bool ObserverModel::isPinned(const std::string &Var) const {
  return Pinned.count(Var) > 0;
}

std::map<std::string, int64_t> ObserverModel::pinnedSymbols() const {
  std::map<std::string, int64_t> Out;
  for (const std::string &Var : Pinned)
    Out[Var] = maxInput(Var);
  return Out;
}

int64_t ObserverModel::maxInput(const std::string &Var) const {
  auto It = MaxInputs.find(Var);
  return It == MaxInputs.end() ? DefaultMaxInput : It->second;
}

int64_t ObserverModel::evalMaxOverBox(const CostPoly &P) const {
  // Monomials with positive coefficients are maximized at the per-variable
  // maxima; negative ones at zero (inputs are assumed non-negative). This
  // overestimates P over the whole box, which is the sound direction for
  // gap checks.
  int64_t Sum = 0;
  for (const auto &[M, C] : P.terms()) {
    if (C < 0 && !M.empty())
      continue; // Contributes at most 0 over the box.
    int64_t Prod = C;
    for (const std::string &V : M)
      Prod *= maxInput(V);
    Sum += Prod;
  }
  return Sum;
}

bool ObserverModel::isNarrow(
    const BoundRange &R,
    const std::function<bool(const std::string &)> &IsHighVar) const {
  if (ModelKind == Kind::PolynomialDegree) {
    // The MicroBench heuristic (§6.1): the attacker observes asymptotic
    // complexity, so a trail is safe when its lower and upper bound have the
    // same polynomial degree; constant-time trails must additionally agree
    // up to the epsilon constant. The lower envelope's class is its
    // *smallest*-degree member (a constant member means some executions
    // finish in constant time).
    unsigned DegLo = R.Lo.minDegree();
    unsigned DegHi = R.Hi.degree();
    if (DegLo != DegHi)
      return false;
    if (DegHi == 0)
      return gapWithinThreshold(R);
    return true;
  }

  // Concrete-instruction model: a bound that mentions a secret-derived
  // symbolic variable means the running time is a function of the secret,
  // which the per-component check must reject outright — except for pinned
  // symbols, whose value is publicly known and fixed (key sizes).
  for (const std::string &V : R.variables())
    if (IsHighVar && IsHighVar(V) && !isPinned(V))
      return false;
  return gapWithinThreshold(R);
}

bool ObserverModel::gapWithinThreshold(const BoundRange &R) const {
  for (const CostPoly &H : R.Hi.polys())
    for (const CostPoly &L : R.Lo.polys())
      if (evalMaxOverBox(H - L) > Threshold)
        return false;
  return true;
}

bool ObserverModel::ctGapNonPositive(const Bound &Hi, const Bound &Lo) const {
  for (const CostPoly &H : Hi.polys()) {
    for (const CostPoly &L : Lo.polys()) {
      CostPoly D = H - L;
      if (ModelKind == Kind::PolynomialDegree) {
        // Unbounded inputs: a positive coefficient anywhere means the gap
        // grows without bound (or a positive constant persists).
        for (const auto &[M, C] : D.terms()) {
          (void)M;
          if (C > 0)
            return false;
        }
      } else if (evalMaxOverBox(D) > 0) {
        return false;
      }
    }
  }
  return true;
}

bool ObserverModel::ctExact(
    const BoundRange &R,
    const std::function<bool(const std::string &)> &IsHighVar) const {
  // A bound mentioning an unpinned secret-derived symbol is a running time
  // that is a function of the secret — never constant-time, and the gap
  // check below could not evaluate it meaningfully anyway.
  for (const std::string &V : R.variables())
    if (IsHighVar && IsHighVar(V) && !isPinned(V))
      return false;
  // Hi >= Lo pointwise on feasible executions, so a provably non-positive
  // gap pins it to 0 everywhere (the sound direction: exactness is never
  // overclaimed).
  return ctGapNonPositive(R.Hi, R.Lo);
}

bool ObserverModel::ctDiffers(const BoundRange &A, const BoundRange &B) const {
  // Evaluate all four bounds at the all-maxima corner of the input box.
  // Lo(A) > Hi(B) there means every A-execution outcosts every
  // B-execution at that concrete input size — a genuine cost difference,
  // not an artifact of incomparable symbolic shapes.
  std::map<std::string, int64_t> Corner;
  for (const std::string &V : A.variables())
    Corner[V] = maxInput(V);
  for (const std::string &V : B.variables())
    Corner[V] = maxInput(V);
  return A.Lo.evaluate(Corner) > B.Hi.evaluate(Corner) ||
         B.Lo.evaluate(Corner) > A.Hi.evaluate(Corner);
}

bool ObserverModel::ctEqual(const BoundRange &A, const BoundRange &B) const {
  // Hi(A) - Lo(B) <= 0 over the box forces cost(A) <= cost(B) pointwise
  // (cost(A) <= Hi(A), Lo(B) <= cost(B)); the symmetric gap forces the
  // other direction, so both together prove the costs coincide.
  return ctGapNonPositive(A.Hi, B.Lo) && ctGapNonPositive(B.Hi, A.Lo);
}

bool ObserverModel::observablyDifferent(const BoundRange &A,
                                        const BoundRange &B) const {
  // Two sibling trails are suspicious when their symbolic bounds do not
  // coincide up to an unobservable constant shift (§4.4 CheckAttack).
  return !(A.Hi.equalsUpToConstant(B.Hi, Threshold) &&
           A.Lo.equalsUpToConstant(B.Lo, Threshold));
}
