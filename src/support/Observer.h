//===- Observer.h - Attacker observability models ---------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of what running-time difference an attacker can observe (paper
/// §5/§6.1). Blazer ships two: a generic polynomial-degree heuristic used
/// for the hand-crafted MicroBench programs, and a platform model that plugs
/// assumed maximum input sizes into the symbolic bounds and compares
/// concrete instruction counts against a threshold (25k instructions for
/// the STAC and Literature benchmarks, with 4096-bit crypto inputs).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_OBSERVER_H
#define BLAZER_SUPPORT_OBSERVER_H

#include "support/Bound.h"

#include <functional>
#include <set>

namespace blazer {

/// Decides whether a symbolic bound range is "narrow" (gap unobservable) and
/// whether two ranges are observably different.
class ObserverModel {
public:
  enum class Kind {
    /// Narrow iff lower and upper bound agree up to an additive constant
    /// (equivalently: their non-constant terms coincide). Distinguishes
    /// linear from quadratic from constant running times.
    PolynomialDegree,
    /// Narrow iff, after substituting assumed maximum input values, the
    /// worst-case gap in executed instructions is below a threshold.
    ConcreteInstructions,
  };

  /// The MicroBench model: unbounded inputs, degree comparison; additive
  /// slack of \p Epsilon instructions is unobservable.
  static ObserverModel polynomialDegree(int64_t Epsilon = 64);

  /// The STAC/Literature model: inputs capped at \p DefaultMaxInput, gaps
  /// under \p Threshold instructions unobservable.
  static ObserverModel concreteInstructions(int64_t Threshold = 25000,
                                            int64_t DefaultMaxInput = 4096);

  Kind kind() const { return ModelKind; }
  int64_t threshold() const { return Threshold; }

  /// Overrides the assumed maximum for one symbolic input variable.
  void setMaxInput(const std::string &Var, int64_t Max);

  /// Declares a symbolic variable as *pinned*: its value is secret-derived
  /// but publicly known and fixed across executions (e.g. the bit-length of
  /// a 4096-bit RSA exponent — timing attacks leak key bits, not the key
  /// size). Pinned symbols do not count as secret correlation in the
  /// narrowness check; their assumed maximum is used when evaluating gaps.
  void pinSymbol(const std::string &Var, int64_t Value);

  /// \returns true when \p Var was pinned via pinSymbol.
  bool isPinned(const std::string &Var) const;

  /// \returns every pinned symbol with its pinned value.
  std::map<std::string, int64_t> pinnedSymbols() const;

  /// \returns the assumed maximum value of symbolic variable \p Var.
  int64_t maxInput(const std::string &Var) const;

  /// \returns a sound overestimate of \p P over the box [0, max]^n: positive
  /// monomial coefficients are evaluated at the per-variable maxima,
  /// negative ones at zero.
  int64_t evalMaxOverBox(const CostPoly &P) const;

  /// \returns true if the gap between \p R's lower and upper bound is below
  /// the attacker's observational power. \p IsHighVar classifies symbolic
  /// variables; a range whose width depends on a high variable is never
  /// narrow (the gap itself would leak the secret).
  bool
  isNarrow(const BoundRange &R,
           const std::function<bool(const std::string &)> &IsHighVar) const;

  /// \returns true if the two ranges describe observably different running
  /// times, i.e. they do NOT agree up to an unobservable constant shift.
  /// Used by CheckAttack on sibling trails split at a secret branch.
  bool observablyDifferent(const BoundRange &A, const BoundRange &B) const;

  /// Strict constant-time exactness: \returns true when \p R provably
  /// describes a single running-time function of the public inputs — no
  /// unpinned secret-derived variable appears, and the worst-case gap
  /// between upper and lower bound over the input box is exactly 0
  /// (threshold slack does not apply; CtSafe requires *equal* bounds, not
  /// merely unobservably different ones). Note Lo and Hi are min-/
  /// max-combined sets, so structural Lo == Hi can never hold; the
  /// gap-over-box test is the right exactness check.
  bool
  ctExact(const BoundRange &R,
          const std::function<bool(const std::string &)> &IsHighVar) const;

  /// Strict constant-time difference witness: \returns true when there is
  /// an admissible input-size corner (every symbol at its assumed maximum,
  /// pinned symbols at their pinned value) where one range lies strictly
  /// above the other — i.e. every execution of one trail provably costs
  /// more than every execution of the other. Sound for CtUnsafe: unlike
  /// observablyDifferent's structural comparison, a true result here
  /// cannot be a bound-slack artifact.
  bool ctDiffers(const BoundRange &A, const BoundRange &B) const;

  /// Strict constant-time equality: \returns true when the two ranges
  /// provably describe the *same* cost at every input in the box — the
  /// cross gaps Hi(A) - Lo(B) and Hi(B) - Lo(A) are both bounded by 0.
  /// Semantic, not structural: 2*k.len and the constant 8192 compare equal
  /// under pin k.len = 4096. A true result subsumes per-range exactness.
  bool ctEqual(const BoundRange &A, const BoundRange &B) const;

private:
  ObserverModel(Kind K, int64_t Thresh, int64_t DefMax)
      : ModelKind(K), Threshold(Thresh), DefaultMaxInput(DefMax) {}

  /// \returns true if every pairwise gap Hi - Lo, overestimated over the
  /// input box, is at most the threshold.
  bool gapWithinThreshold(const BoundRange &R) const;

  /// \returns true when every pairwise gap \p Hi - \p Lo is provably <= 0
  /// over the whole input box. Under ConcreteInstructions the box is
  /// [0, max]^n and evalMaxOverBox decides; under PolynomialDegree inputs
  /// are unbounded, so any surviving positive coefficient makes the
  /// supremum +inf and the check fails (evaluating at the finite defaults
  /// would *under*estimate there — the unsound direction for exactness).
  bool ctGapNonPositive(const Bound &Hi, const Bound &Lo) const;

  Kind ModelKind;
  int64_t Threshold;
  int64_t DefaultMaxInput;
  std::map<std::string, int64_t> MaxInputs;
  std::set<std::string> Pinned;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_OBSERVER_H
