//===- Result.h - Lightweight error-or-value return type --------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny Expected<T>-style result type. Library code does not throw; parse
/// and analysis failures are returned as Result<T> carrying a diagnostic
/// message (with a source location where one is known).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_RESULT_H
#define BLAZER_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace blazer {

/// A diagnostic with an optional 1-based line/column source position.
struct Diag {
  std::string Message;
  int Line = 0;
  int Col = 0;

  /// Renders "line L:C: message" (or just the message when unlocated).
  std::string str() const {
    if (Line <= 0)
      return Message;
    return "line " + std::to_string(Line) + ":" + std::to_string(Col) + ": " +
           Message;
  }
};

/// Either a T or a Diag explaining why no T could be produced.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Result(Diag D) : Storage(std::move(D)) {}

  /// Convenience failure constructor.
  static Result error(std::string Message, int Line = 0, int Col = 0) {
    return Result(Diag{std::move(Message), Line, Col});
  }

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  const T &operator*() const {
    assert(*this && "dereferencing an error Result");
    return std::get<T>(Storage);
  }
  T &operator*() {
    assert(*this && "dereferencing an error Result");
    return std::get<T>(Storage);
  }
  const T *operator->() const { return &**this; }
  T *operator->() { return &**this; }

  /// Moves the value out. Only valid on success.
  T take() {
    assert(*this && "taking from an error Result");
    return std::move(std::get<T>(Storage));
  }

  const Diag &diag() const {
    assert(!*this && "no diagnostic on a success Result");
    return std::get<Diag>(Storage);
  }

private:
  std::variant<T, Diag> Storage;
};

} // namespace blazer

#endif // BLAZER_SUPPORT_RESULT_H
