//===- ThreadPool.cpp - Work-stealing worker pool -------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Budget.h"
#include "support/EngineConfig.h"
#include "support/FaultInjector.h"

#include <algorithm>

using namespace blazer;

unsigned ThreadPool::defaultConcurrency() {
  unsigned H = std::thread::hardware_concurrency();
  return H ? H : 1;
}

ThreadPool::ThreadPool(unsigned ThreadsIn)
    : Threads(ThreadsIn ? ThreadsIn : defaultConcurrency()) {
  Workers.reserve(Threads - 1);
  for (unsigned I = 1; I < Threads; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::drain(Loop &L) {
  for (;;) {
    size_t I = L.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= L.N)
      return;
    try {
      (*L.Body)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(L.M);
      if (!L.Failure)
        L.Failure = std::current_exception();
    }
    if (L.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == L.N) {
      // Last iteration: wake the loop's owner. The empty critical section
      // orders the notify after the owner's wait-predicate check.
      { std::lock_guard<std::mutex> Lock(L.M); }
      L.DoneCV.notify_all();
    }
  }
}

void ThreadPool::workerMain() {
  for (;;) {
    std::shared_ptr<Loop> L;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCV.wait(Lock, [this] { return Stop || !Pending.empty(); });
      if (Pending.empty()) {
        if (Stop)
          return;
        continue;
      }
      L = Pending.back();
      if (L->Next.load(std::memory_order_relaxed) >= L->N) {
        // Exhausted but not yet retired; drop it and look again.
        Pending.erase(std::remove(Pending.begin(), Pending.end(), L),
                      Pending.end());
        continue;
      }
    }
    drain(*L);
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Threads == 1 || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  auto L = std::make_shared<Loop>();
  L->Body = &Fn;
  L->N = N;
  {
    std::lock_guard<std::mutex> Lock(M);
    Pending.push_back(L);
  }
  WorkCV.notify_all();

  drain(*L);

  {
    std::unique_lock<std::mutex> Lock(L->M);
    L->DoneCV.wait(Lock, [&] {
      return L->Done.load(std::memory_order_acquire) == N;
    });
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Pending.erase(std::remove(Pending.begin(), Pending.end(), L),
                  Pending.end());
  }
  // Move the failure out before rethrowing: a worker may still hold the
  // last shared_ptr to the Loop, and its ~Loop must not race the caller's
  // use of the exception (or free the exception object on a worker
  // thread). After the move the caller owns the exception outright.
  std::exception_ptr Failure;
  {
    std::lock_guard<std::mutex> Lock(L->M);
    Failure = std::move(L->Failure);
  }
  if (Failure)
    std::rethrow_exception(Failure);
}

void blazer::parallelForWithBudget(ThreadPool *Pool, size_t N,
                                   const std::function<void(size_t)> &Fn) {
  if (!Pool || Pool->concurrency() == 1) {
    for (size_t I = 0; I < N; ++I) {
      // Same site hit as the pool path, so per-site fault-plan indices are
      // identical at any job count (the determinism contract).
      maybeInjectFault(FaultSite::PoolTask);
      Fn(I);
    }
    return;
  }
  AnalysisBudget *Budget = BudgetScope::current();
  const char *Phase = PhaseScope::current();
  ClosureMode Closure = ClosurePolicyScope::current();
  FaultInjector *Faults = FaultScope::current();
  Pool->parallelFor(N, [&, Budget, Phase, Closure, Faults](size_t I) {
    BudgetScope Scope(Budget);
    PhaseScope PScope(Phase);
    ClosurePolicyScope CScope(Closure);
    FaultScope FScope(Faults);
    maybeInjectFault(FaultSite::PoolTask);
    Fn(I);
  });
}
