//===- ThreadPool.h - Work-stealing worker pool -----------------*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing worker pool for the parallel trail-tree analysis.
/// The decomposition argument of the paper (§4) makes the per-component
/// bound proofs independent, so the engine fans each partition component
/// out as a task and merges results deterministically in tree order.
///
/// The unit of scheduling is a *loop*: parallelFor(N, Fn) publishes the
/// iteration space [0, N) and every participant — the calling thread plus
/// any idle worker — steals the next unclaimed index from a shared atomic
/// cursor. This gives the properties the analysis needs:
///
///  - the caller always participates, so a loop makes progress even when
///    every worker is busy; in particular, *nested* parallelFor calls from
///    inside a task cannot deadlock (the nested caller drains its own
///    iteration space itself if nobody helps);
///  - iterations write to caller-provided slots indexed by the iteration
///    number, so results are position-stable and independent of which
///    thread ran which iteration — the basis of the jobs=1 vs jobs=N
///    byte-identical-output guarantee;
///  - a pool of concurrency 1 starts no threads at all and runs every loop
///    inline, making the sequential path exactly the pre-pool code path.
///
/// Tasks must not install thread-local state they expect to survive the
/// call: worker threads are shared. In particular, a task that counts
/// against an AnalysisBudget must install its own BudgetScope (budgets are
/// announced per thread, see support/Budget.h).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_THREADPOOL_H
#define BLAZER_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace blazer {

/// A fixed-size worker pool executing stealable iteration spaces.
class ThreadPool {
public:
  /// \p Threads is the total concurrency including the calling thread;
  /// 0 selects defaultConcurrency(). A pool of concurrency C starts C - 1
  /// background workers.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total parallelism (background workers + the calling thread).
  unsigned concurrency() const { return Threads; }

  /// Runs Fn(0) .. Fn(N-1), returning when all iterations completed. The
  /// calling thread participates; idle workers steal iterations. Safe to
  /// call from inside a task (nested loops make progress through their
  /// caller). The first exception thrown by an iteration is rethrown here
  /// after the loop drains; further exceptions are dropped.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits a 0 return when the hardware cannot be queried).
  static unsigned defaultConcurrency();

private:
  /// One published iteration space.
  struct Loop {
    const std::function<void(size_t)> *Body = nullptr;
    size_t N = 0;
    std::atomic<size_t> Next{0}; ///< Next unclaimed iteration.
    std::atomic<size_t> Done{0}; ///< Completed iterations.
    std::mutex M;                ///< Guards Failure + completion wakeup.
    std::condition_variable DoneCV;
    std::exception_ptr Failure;
  };

  /// Claims and runs iterations of \p L until the space is exhausted.
  void drain(Loop &L);
  void workerMain();

  unsigned Threads;
  std::vector<std::thread> Workers;

  std::mutex M; ///< Guards Pending + Stop.
  std::condition_variable WorkCV;
  /// Active loops, newest last. Workers help the newest first: inner
  /// (nested) loops drain fastest, unblocking the tasks that spawned them.
  std::vector<std::shared_ptr<Loop>> Pending;
  bool Stop = false;
};

/// parallelFor with analysis-context propagation: captures the calling
/// thread's current AnalysisBudget and phase label and re-installs both
/// (BudgetScope + PhaseScope) around every iteration, so work stolen by a
/// pool worker counts against the same shared budget and budget trips are
/// attributed to the right phase. A null \p Pool runs the loop inline on
/// the calling thread (whose scopes are already installed).
void parallelForWithBudget(ThreadPool *Pool, size_t N,
                           const std::function<void(size_t)> &Fn);

} // namespace blazer

#endif // BLAZER_SUPPORT_THREADPOOL_H
