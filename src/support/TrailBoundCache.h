//===- TrailBoundCache.h - Sharded memo cache for trail analyses -*- C++ -*-===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, thread-safe, compute-once memoization cache. The refinement
/// driver re-derives trail components constantly — a split leaves every
/// sibling subtree untouched, the capacity and attack-synthesis phases
/// re-analyze trails the safety phase already bounded — so BoundAnalysis
/// keys each trail by a canonical fingerprint of its DFA (Dfa::canonicalKey,
/// prefixed with a per-function context salt) and memoizes the result here.
///
/// Guarantees:
///  - *Compute-once*: concurrent getOrCompute calls for the same key run
///    the compute function exactly once; late arrivals block until the
///    winner publishes. This keeps step counters (ResourceUsage) identical
///    across --jobs levels — two workers missing on the same key must not
///    both pay (and count) the analysis.
///  - *Fail-soft aware*: the compute function reports whether its result is
///    cacheable. Budget-degraded results are never stored; waiters then
///    retry the protocol themselves (one becomes the new owner). Liveness
///    holds because compute runs inline on the owning thread — the
///    work-stealing pool's caller participation means it cannot be parked
///    behind the waiters.
///  - *Bounded*: each shard holds at most MaxPerShard ready entries;
///    beyond that, the oldest entry of the shard is evicted (FIFO) and
///    counted.
///
/// The template lives in support/ so the dependency points upward: the
/// cache knows nothing about bounds/; BoundAnalysis instantiates it with
/// TrailBoundResult (see the TrailBoundCache alias in BoundAnalysis.h).
///
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SUPPORT_TRAILBOUNDCACHE_H
#define BLAZER_SUPPORT_TRAILBOUNDCACHE_H

#include "support/FaultInjector.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace blazer {

/// Hit/miss/eviction counters plus the current entry count, as one
/// consistent-enough snapshot (counters are monotone; Entries is summed
/// shard by shard).
struct TrailCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;

  /// Renders e.g. "trail-cache: 37 hits, 12 misses, 0 evictions,
  /// 12 entries".
  std::string str() const {
    return "trail-cache: " + std::to_string(Hits) + " hits, " +
           std::to_string(Misses) + " misses, " + std::to_string(Evictions) +
           " evictions, " + std::to_string(Entries) + " entries";
  }
};

template <typename Value> class ShardedTrailCache {
public:
  explicit ShardedTrailCache(size_t MaxPerShard = 4096)
      : MaxPerShard(MaxPerShard ? MaxPerShard : 1) {}

  ShardedTrailCache(const ShardedTrailCache &) = delete;
  ShardedTrailCache &operator=(const ShardedTrailCache &) = delete;

  /// Looks up \p Key; on a miss runs \p Compute, which must return
  /// std::pair<Value, bool> — the result and whether it may be cached
  /// (false for budget-degraded results). Concurrent callers with the same
  /// key block until the computing thread publishes; if it declines to
  /// cache, one waiter takes over as the new owner and the rest keep
  /// waiting on it.
  template <typename ComputeFn>
  Value getOrCompute(const std::string &Key, ComputeFn Compute) {
    Shard &S = shardFor(Key);
    std::unique_lock<std::mutex> Lock(S.Mu);
    bool Retaking = false;
    for (;;) {
      auto It = S.Map.find(Key);
      if (It == S.Map.end())
        break; // This thread becomes the owner.
      std::shared_ptr<Entry> E = It->second;
      if (E->Ready) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return E->V;
      }
      // In flight on another thread: wait for it to publish or abandon.
      S.Cv.wait(Lock, [&] { return E->Ready || E->Abandoned; });
      Retaking = E->Abandoned;
      // Loop: on Ready the map still holds E (hit path above); on
      // Abandoned the entry was erased and somebody must recompute.
    }
    // Injection sites for the two ownership transitions. Both fire while
    // nothing is inserted yet, so an unwound exception here leaves the
    // shard clean — no poisoned entry, and remaining waiters are either
    // unaffected (insert) or already unblocked by the abandon (retake).
    if (Retaking)
      maybeInjectFault(FaultSite::CacheRetake);
    Misses.fetch_add(1, std::memory_order_relaxed);
    maybeInjectFault(FaultSite::CacheInsert);
    auto E = std::make_shared<Entry>();
    S.Map.emplace(Key, E);
    Lock.unlock();

    std::pair<Value, bool> R;
    try {
      R = Compute();
    } catch (...) {
      Lock.lock();
      S.Map.erase(Key);
      E->Abandoned = true;
      Lock.unlock();
      S.Cv.notify_all();
      throw;
    }

    Lock.lock();
    if (!R.second) {
      // Degraded result: never cached, waiters retake the protocol.
      S.Map.erase(Key);
      E->Abandoned = true;
    } else {
      E->V = R.first;
      E->Ready = true;
      S.Order.push_back(Key);
      if (S.Order.size() > MaxPerShard)
        evictOldest(S);
    }
    Lock.unlock();
    S.Cv.notify_all();
    return R.first;
  }

  TrailCacheStats stats() const {
    TrailCacheStats St;
    St.Hits = Hits.load(std::memory_order_relaxed);
    St.Misses = Misses.load(std::memory_order_relaxed);
    St.Evictions = Evictions.load(std::memory_order_relaxed);
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      St.Entries += S.Order.size();
    }
    return St;
  }

  /// Drops every ready entry (in-flight computations are untouched and
  /// publish into the emptied cache). Evictions are not counted — this is
  /// an epoch clear, not pressure.
  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (const std::string &K : S.Order)
        S.Map.erase(K);
      S.Order.clear();
    }
  }

private:
  struct Entry {
    Value V{};
    bool Ready = false;
    bool Abandoned = false;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::condition_variable Cv;
    /// Key -> entry; in-flight entries are present but not Ready.
    std::unordered_map<std::string, std::shared_ptr<Entry>> Map;
    /// Ready keys in insertion order, for FIFO eviction.
    std::deque<std::string> Order;
  };

  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &Key) {
    return Shards[std::hash<std::string>{}(Key) % NumShards];
  }

  /// Caller holds S.Mu.
  void evictOldest(Shard &S) {
    while (S.Order.size() > MaxPerShard) {
      auto It = S.Map.find(S.Order.front());
      // Order only ever names Ready entries; in-flight ones are not listed.
      if (It != S.Map.end() && It->second->Ready)
        S.Map.erase(It);
      S.Order.pop_front();
      Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  size_t MaxPerShard;
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace blazer

#endif // BLAZER_SUPPORT_TRAILBOUNDCACHE_H
