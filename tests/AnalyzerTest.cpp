//===- AnalyzerTest.cpp - Tests for the trail-restricted interpreter --------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

struct Pipeline {
  CfgFunction F;
  EdgeAlphabet A;
  VarEnv Env;

  explicit Pipeline(const std::string &Src)
      : F(compile(Src)), A(EdgeAlphabet::forFunction(F)), Env(F) {}

  ProductGraph product(const Dfa &D) const {
    return ProductGraph::build(F, D, A);
  }
  ProductGraph fullProduct() const { return product(Dfa::fromCfg(F, A)); }
};

//===----------------------------------------------------------------------===//
// ProductGraph
//===----------------------------------------------------------------------===//

TEST(ProductGraph, FullTrailMirrorsCfg) {
  Pipeline P("fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  ProductGraph G = P.fullProduct();
  // One DFA state per block in the CFG automaton: product size == #blocks
  // reachable and co-reachable, which here is all of them.
  EXPECT_EQ(G.size(), P.F.blockCount());
  EXPECT_FALSE(G.empty());
  EXPECT_EQ(G.node(G.entry()).Block, P.F.Entry);
  ASSERT_EQ(G.accepts().size(), 1u);
  EXPECT_EQ(G.node(G.accepts()[0]).Block, P.F.Exit);
}

TEST(ProductGraph, EmptyTrailGivesEmptyProduct) {
  Pipeline P("fn f(public x: int) { x = 1; }");
  ProductGraph G = P.product(Dfa::emptyLanguage(
      static_cast<int>(P.A.size())));
  EXPECT_TRUE(G.empty());
}

TEST(ProductGraph, AvoidTrailPrunesBranchSide) {
  Pipeline P("fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  const BasicBlock &Entry = P.F.block(P.F.Entry);
  int SymTrue = P.A.symbol(Edge{P.F.Entry, Entry.TrueSucc});
  Dfa Trail = Dfa::fromCfg(P.F, P.A)
                  .intersect(Dfa::avoidsSymbol(
                      static_cast<int>(P.A.size()), SymTrue));
  ProductGraph G = P.product(Trail);
  ASSERT_FALSE(G.empty());
  // The true arm's block must not appear.
  for (size_t I = 0; I < G.size(); ++I)
    EXPECT_NE(G.node(I).Block, Entry.TrueSucc);
}

TEST(ProductGraph, ContainsTrailUnrollsFirstIteration) {
  Pipeline P(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  // Require at least one loop entry: the loop header appears in two DFA
  // states (before/after the first body entry).
  int HeaderBlock = -1;
  for (const BasicBlock &B : P.F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch)
      HeaderBlock = B.Id;
  ASSERT_GE(HeaderBlock, 0);
  int BodySym = P.A.symbol(
      Edge{HeaderBlock, P.F.block(HeaderBlock).TrueSucc});
  Dfa Trail = Dfa::fromCfg(P.F, P.A)
                  .intersect(Dfa::containsSymbol(
                      static_cast<int>(P.A.size()), BodySym));
  ProductGraph G = P.product(Trail);
  int HeaderNodes = 0;
  for (size_t I = 0; I < G.size(); ++I)
    if (G.node(I).Block == HeaderBlock)
      ++HeaderNodes;
  EXPECT_EQ(HeaderNodes, 2);
}

TEST(ProductGraph, RpoStartsAtEntryAndCoversAll) {
  Pipeline P("fn f(public x: int) { if (x > 0) { x = 1; } }");
  ProductGraph G = P.fullProduct();
  ASSERT_FALSE(G.rpo().empty());
  EXPECT_EQ(G.rpo().front(), G.entry());
  EXPECT_EQ(G.rpo().size(), G.size());
}

//===----------------------------------------------------------------------===//
// Fixpoint analysis
//===----------------------------------------------------------------------===//

TEST(Analyzer, StraightLineInvariants) {
  Pipeline P("fn f(public a: int) { var x: int = a + 1; }");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  int ExitNode = G.accepts()[0];
  ASSERT_TRUE(R.Feasible[ExitNode]);
  const Dbm &D = R.EntryState[ExitNode];
  EXPECT_EQ(*D.exactDifference(P.Env.indexOf("x"), P.Env.indexOf("a#in")),
            1);
}

TEST(Analyzer, BranchRefinementReachesArms) {
  Pipeline P(
      "fn f(public x: int) { if (x > 5) { skip; } else { skip; } }");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  const BasicBlock &Entry = P.F.block(P.F.Entry);
  int ThenNode = G.indexOf(Entry.TrueSucc, Entry.TrueSucc);
  int ElseNode = G.indexOf(Entry.FalseSucc, Entry.FalseSucc);
  ASSERT_GE(ThenNode, 0);
  ASSERT_GE(ElseNode, 0);
  EXPECT_EQ(*R.EntryState[ThenNode].lowerOf(P.Env.indexOf("x")), 6);
  EXPECT_EQ(*R.EntryState[ElseNode].upperOfOpt(P.Env.indexOf("x")), 5);
}

TEST(Analyzer, LoopInvariantWithWideningAndNarrowing) {
  Pipeline P(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  // At the exit, i >= 0 and i >= n (loop ran to completion).
  int ExitNode = G.accepts()[0];
  const Dbm &D = R.EntryState[ExitNode];
  int I = P.Env.indexOf("i");
  int N = P.Env.indexOf("n");
  ASSERT_TRUE(R.Feasible[ExitNode]);
  EXPECT_GE(*D.lowerOf(I), 0);
  // i - n >= 0 at exit.
  EXPECT_LE(D.bound(N, I), 0);
}

TEST(Analyzer, InfeasibleBranchDetected) {
  // After low >= 0 and low = low + 10, the path low < 10 is impossible.
  Pipeline P(R"(
    fn f(public low: int) {
      if (low >= 0) {
        low = low + 10;
        if (low < 10) { skip; } else { skip; }
      }
    }
  )");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  // Find the inner branch and check its true side is infeasible.
  int InnerBranch = -1;
  for (const BasicBlock &B : P.F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch &&
        exprToString(B.Cond) == "(low < 10)")
      InnerBranch = B.Id;
  ASSERT_GE(InnerBranch, 0);
  int ThenBlock = P.F.block(InnerBranch).TrueSucc;
  int Node = G.indexOf(ThenBlock, ThenBlock);
  ASSERT_GE(Node, 0);
  EXPECT_FALSE(R.Feasible[Node]);
}

TEST(Analyzer, TransferEdgeAppliesBlockThenAssume) {
  Pipeline P(
      "fn f(public x: int) { x = x + 1; if (x > 3) { skip; } }");
  Analyzer Az(P.F, P.Env);
  Dbm In = P.Env.initialState();
  const BasicBlock &Entry = P.F.block(P.F.Entry);
  Dbm Out = Az.transferEdge(In, Edge{P.F.Entry, Entry.TrueSucc});
  int X = P.Env.indexOf("x");
  // x was incremented, then x > 3 assumed.
  EXPECT_EQ(*Out.lowerOf(X), 4);
  // And x still relates to its seed: x = x#in + 1.
  EXPECT_EQ(*Out.exactDifference(X, P.Env.indexOf("x#in")), 1);
}

TEST(Analyzer, EntryStateIsInitialState) {
  Pipeline P("fn f(public a: int) { skip; }");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  EXPECT_TRUE(
      R.EntryState[G.entry()].equals(P.Env.initialState()));
}

TEST(Analyzer, TerminatesOnNestedLoops) {
  Pipeline P(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) {
        var j: int = 0;
        while (j < i) { j = j + 1; }
        i = i + 1;
      }
    }
  )");
  ProductGraph G = P.fullProduct();
  Analyzer Az(P.F, P.Env);
  AnalysisResult R = Az.analyze(G);
  EXPECT_TRUE(R.Feasible[G.accepts()[0]]);
}

TEST(Analyzer, BottomStatesStayInfeasibleUnderTrailRestriction) {
  // A trail that forbids the only edge out of the entry leaves nothing.
  Pipeline P("fn f(public x: int) { x = 1; }");
  const BasicBlock &Entry = P.F.block(P.F.Entry);
  int OnlySym = P.A.symbol(Edge{P.F.Entry, Entry.TrueSucc});
  Dfa Trail = Dfa::fromCfg(P.F, P.A)
                  .intersect(Dfa::avoidsSymbol(
                      static_cast<int>(P.A.size()), OnlySym));
  EXPECT_TRUE(P.product(Trail).empty());
}

} // namespace
