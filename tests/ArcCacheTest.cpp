//===- ArcCacheTest.cpp - Arc-cache byte-identity & staleness suite --------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-arc transfer cache (AnalyzerConfig::ArcCache) promises the
/// strongest property an optimization can: it changes how joinOfPreds
/// computes each join, never its value. This harness holds it to that —
///  - entry-state byte-identity cache-on vs cache-off at the Analyzer
///    level, on the most-general products of all 24 Table-1 benchmarks and
///    a swarm of seeded random programs, under both WTO and FIFO and for
///    both engine domains (zones and intervals);
///  - driver-level fingerprint identity (verdict, rendered tree, attacks,
///    degradation) for arc-cache {on, off} x jobs {1, 2, 8} x both
///    schedulers over the Table-1 suite;
///  - a staleness oracle (AnalyzerConfig::VerifyArcCache): every cache hit
///    is recomputed from scratch and compared, hammering the setState
///    invalidation protocol on the loopiest products we have — zero
///    mismatches allowed, and the cache must actually score hits, or the
///    oracle proved nothing.
///
/// Work counters are not compared across cache modes: doing less work is
/// the cache's purpose. Only the semantics must not move.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "absint/ProductGraph.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "core/Blazer.h"
#include "ir/Cfg.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

AnalyzerConfig cacheConfig(bool UseWto, bool ArcCache, bool Verify = false) {
  AnalyzerConfig C;
  C.UseWto = UseWto;
  C.ArcCache = ArcCache;
  C.VerifyArcCache = Verify;
  return C;
}

/// Byte-identity of two analysis results: equal entry states (equals() on
/// a zone/box compares bottom flags and every matrix entry — exactly the
/// bytes the rest of the engine can observe), equal feasibility, and equal
/// rendered constraints.
template <NumericDomain Domain>
void expectIdenticalStates(const AnalysisResultT<Domain> &On,
                           const AnalysisResultT<Domain> &Off,
                           const std::vector<std::string> &Names) {
  ASSERT_EQ(On.EntryState.size(), Off.EntryState.size());
  for (size_t Id = 0; Id < On.EntryState.size(); ++Id) {
    EXPECT_TRUE(On.EntryState[Id].equals(Off.EntryState[Id]))
        << "entry states differ at product node " << Id << "\n  on:  "
        << On.EntryState[Id].str(Names) << "\n  off: "
        << Off.EntryState[Id].str(Names);
    EXPECT_EQ(On.Feasible[Id], Off.Feasible[Id]) << "node " << Id;
  }
}

//===----------------------------------------------------------------------===//
// Analyzer-level identity: Table-1 most-general products, both domains
//===----------------------------------------------------------------------===//

TEST(ArcCacheInvariants, EntryStatesIdenticalOnMostGeneralProducts) {
  uint64_t TotalArcHits = 0;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    for (bool UseWto : {true, false}) {
      SCOPED_TRACE(UseWto ? "wto" : "fifo");
      Analyzer AzOn(F, BA.env(), cacheConfig(UseWto, true));
      Analyzer AzOff(F, BA.env(), cacheConfig(UseWto, false));
      AnalysisResult On = AzOn.analyze(G);
      AnalysisResult Off = AzOff.analyze(G);
      expectIdenticalStates(On, Off, BA.env().names());
      // The cache must be exercised on one side and silent on the other.
      EXPECT_GT(On.Stats.ArcHits + On.Stats.ArcMisses, 0u);
      EXPECT_EQ(Off.Stats.ArcHits + Off.Stats.ArcMisses, 0u);
      EXPECT_EQ(Off.Stats.ArcBytes, 0u);
      // Pops never short-circuit: the ascent trajectory is shared.
      EXPECT_EQ(On.Stats.Pops, Off.Stats.Pops);
      EXPECT_EQ(On.Stats.Widenings, Off.Stats.Widenings);
      EXPECT_EQ(On.Stats.Sweeps, Off.Stats.Sweeps);
      TotalArcHits += On.Stats.ArcHits;
    }
  }
  // Across the suite the cache must score real hits, or the A/B above
  // compared two copies of the uncached path.
  EXPECT_GT(TotalArcHits, 0u);
}

TEST(ArcCacheInvariants, IntervalDomainStatesIdenticalToo) {
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    for (bool UseWto : {true, false}) {
      SCOPED_TRACE(UseWto ? "wto" : "fifo");
      IntervalAnalyzer AzOn(F, BA.env(), cacheConfig(UseWto, true));
      IntervalAnalyzer AzOff(F, BA.env(), cacheConfig(UseWto, false));
      IntervalAnalysisResult On = AzOn.analyze(G);
      IntervalAnalysisResult Off = AzOff.analyze(G);
      expectIdenticalStates(On, Off, BA.env().names());
    }
  }
}

//===----------------------------------------------------------------------===//
// Seeded random products
//===----------------------------------------------------------------------===//

/// Deterministic xorshift RNG (no global state, reproducible per seed).
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint32_t S;
};

/// Compact random-function generator biased toward what stresses the arc
/// cache: nested loops (re-pops, widening, descending sweeps) and
/// multi-predecessor join points (many in-arcs per node). Bounded counter
/// loops keep every program terminating.
class ArcProgramGen {
public:
  explicit ArcProgramGen(uint32_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "fn arcfuzz(secret h: int, public l: int) {\n";
    OS << "  var a: int = 0;\n  var b: int = 0;\n";
    block(1, /*Depth=*/0);
    OS << "}\n";
    return OS.str();
  }

private:
  const char *scalar() {
    switch (R.range(0, 3)) {
    case 0:
      return "h";
    case 1:
      return "l";
    case 2:
      return "a";
    default:
      return "b";
    }
  }

  void indent(int Ind) {
    for (int I = 0; I <= Ind; ++I)
      OS << "  ";
  }

  std::string cond() {
    std::ostringstream C;
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    C << scalar() << " " << Ops[R.range(0, 5)] << " ";
    if (R.chance(60))
      C << R.range(-2, 4);
    else
      C << scalar();
    return C.str();
  }

  void assign(int Ind) {
    indent(Ind);
    const char *T = R.chance(50) ? "a" : "b";
    if (R.chance(40))
      OS << T << " = " << R.range(-3, 7) << ";\n";
    else
      OS << T << " = " << scalar() << " + " << R.range(-2, 3) << ";\n";
  }

  void loop(int Ind, int Depth) {
    int Id = NextLoop++;
    std::string V = "i" + std::to_string(Id);
    indent(Ind);
    OS << "var " << V << ": int = 0;\n";
    indent(Ind);
    OS << "while (" << V << " < "
       << (R.chance(50) ? std::string(R.chance(50) ? "l" : "h")
                        : std::to_string(R.range(1, 5)))
       << ") {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind + 1);
    OS << V << " = " << V << " + 1;\n";
    indent(Ind);
    OS << "}\n";
  }

  void branch(int Ind, int Depth) {
    indent(Ind);
    OS << "if (" << cond() << ") {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind);
    OS << "} else {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind);
    OS << "}\n";
  }

  void block(int Ind, int Depth) {
    int Stmts = R.range(1, 3);
    for (int I = 0; I < Stmts; ++I) {
      int Kind = R.range(0, 9);
      if (Kind < 5 || Depth >= 3)
        assign(Ind);
      else if (Kind < 8)
        branch(Ind, Depth);
      else
        loop(Ind, Depth);
    }
  }

  Rng R;
  std::ostringstream OS;
  int NextLoop = 0;
};

CfgFunction compileArcFuzz(uint32_t Seed, std::string *SrcOut = nullptr) {
  ArcProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  if (SrcOut)
    *SrcOut = Src;
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F))
      << (F ? "" : F.diag().str()) << "\n"
      << Src;
  return F.take();
}

class ArcCacheRandomProducts : public ::testing::TestWithParam<int> {};

TEST_P(ArcCacheRandomProducts, EntryStatesIdentical) {
  std::string Src;
  CfgFunction F = compileArcFuzz(static_cast<uint32_t>(GetParam()), &Src);
  BoundAnalysis BA(F);
  ProductGraph G =
      ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
  ASSERT_FALSE(G.empty()) << Src;
  for (bool UseWto : {true, false}) {
    SCOPED_TRACE(std::string(UseWto ? "wto" : "fifo") + "\n" + Src);
    Analyzer AzOn(F, BA.env(), cacheConfig(UseWto, true));
    Analyzer AzOff(F, BA.env(), cacheConfig(UseWto, false));
    AnalysisResult On = AzOn.analyze(G);
    AnalysisResult Off = AzOff.analyze(G);
    expectIdenticalStates(On, Off, BA.env().names());
    EXPECT_EQ(On.Stats.Pops, Off.Stats.Pops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcCacheRandomProducts,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Staleness oracle
//===----------------------------------------------------------------------===//

/// VerifyArcCache recomputes every hit from scratch inside refreshArc and
/// counts disagreements. Run it over the loopiest Table-1 products (most
/// setState churn per arc: widening, re-pops, two descending sweeps) and
/// the random swarm; a single mismatch means a stale stamp survived an
/// invalidation, and zero hits means the oracle never fired.
TEST(ArcCacheStaleness, OracleFindsNoStaleEntriesOnLoopyBenchmarks) {
  uint64_t TotalHits = 0;
  for (const char *Name : {"modPow1_safe", "modPow2_safe", "gpt14_safe",
                           "k96_safe", "loopAndbranch_safe"}) {
    const BenchmarkProgram *B = findBenchmark(Name);
    ASSERT_NE(B, nullptr) << Name;
    CfgFunction F = B->compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    for (bool UseWto : {true, false}) {
      SCOPED_TRACE(std::string(Name) + (UseWto ? " wto" : " fifo"));
      Analyzer Az(F, BA.env(), cacheConfig(UseWto, true, /*Verify=*/true));
      AnalysisResult R = Az.analyze(G);
      EXPECT_EQ(R.Stats.ArcVerifyMismatches, 0u);
      TotalHits += R.Stats.ArcHits;
    }
  }
  EXPECT_GT(TotalHits, 0u);
}

TEST(ArcCacheStaleness, OracleFindsNoStaleEntriesOnRandomSwarm) {
  uint64_t TotalHits = 0;
  for (uint32_t Seed = 100; Seed < 130; ++Seed) {
    std::string Src;
    CfgFunction F = compileArcFuzz(Seed, &Src);
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty()) << Src;
    Analyzer Az(F, BA.env(), cacheConfig(true, true, /*Verify=*/true));
    AnalysisResult R = Az.analyze(G);
    EXPECT_EQ(R.Stats.ArcVerifyMismatches, 0u) << Src;
    TotalHits += R.Stats.ArcHits;
  }
  EXPECT_GT(TotalHits, 0u);
}

//===----------------------------------------------------------------------===//
// Driver-level differential: Table-1 x jobs {1,2,8} x both schedulers
//===----------------------------------------------------------------------===//

/// The analysis outputs that must not depend on the arc cache (nor, per
/// the existing scheduler suite, on the job count).
struct RunFingerprint {
  std::string Verdict;
  std::string Tree;
  std::string Attacks;
  std::string Degradation;
};

RunFingerprint fingerprint(const CfgFunction &F, const BlazerResult &R) {
  RunFingerprint FP;
  FP.Verdict = verdictName(R.Verdict);
  FP.Tree = R.treeString(F);
  std::ostringstream Attacks;
  for (const AttackSpec &Spec : R.Attacks)
    Attacks << Spec.str() << "\n";
  FP.Attacks = Attacks.str();
  FP.Degradation = R.Degradation.str();
  return FP;
}

void expectIdentical(const RunFingerprint &A, const RunFingerprint &B,
                     const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Tree, B.Tree);
  EXPECT_EQ(A.Attacks, B.Attacks);
  EXPECT_EQ(A.Degradation, B.Degradation);
}

class ArcCacheDifferential
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(ArcCacheDifferential, OnAndOffAgreeAtAnyJobsUnderBothSchedulers) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  for (bool Fifo : {false, true}) {
    EngineConfig On;
    On.Fixpoint = Fifo ? FixpointSched::Fifo : FixpointSched::Wto;
    EngineConfig Off = On;
    Off.ArcCache = false;
    std::string Sched = Fifo ? "fifo" : "wto";
    RunFingerprint Base = fingerprint(F, runBenchmark(B, {}, 1, On));
    for (int Jobs : {1, 2, 8})
      expectIdentical(fingerprint(F, runBenchmark(B, {}, Jobs, Off)), Base,
                      B.Name + " " + Sched + " arc-cache=off jobs=" +
                          std::to_string(Jobs));
    for (int Jobs : {2, 8})
      expectIdentical(fingerprint(F, runBenchmark(B, {}, Jobs, On)), Base,
                      B.Name + " " + Sched + " arc-cache=on jobs=" +
                          std::to_string(Jobs));
  }
}

std::vector<const BenchmarkProgram *> benchmarkPointers() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  // The strict-ct crypto-kernel family rides along: its verdicts come
  // from the same fixpoints, so the on/off identity must hold there too.
  for (const BenchmarkProgram &B : tableCtBenchmarks())
    Out.push_back(&B);
  return Out;
}

std::string benchmarkName(
    const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
  return Info.param->Name;
}

INSTANTIATE_TEST_SUITE_P(Table1, ArcCacheDifferential,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// Telemetry plumbing
//===----------------------------------------------------------------------===//

TEST(ArcCacheTelemetry, CountersReachBlazerResultAndSweepSplitWorks) {
  const BenchmarkProgram *B = findBenchmark("modPow2_safe");
  ASSERT_NE(B, nullptr);
  BlazerResult On = runBenchmark(*B);
  EXPECT_GT(On.Telemetry.Fixpoint.ArcHits, 0u);
  EXPECT_GT(On.Telemetry.Fixpoint.ArcMisses, 0u);
  EXPECT_GT(On.Telemetry.Fixpoint.ArcBytes, 0u);

  EngineConfig OffEngine;
  OffEngine.ArcCache = false;
  BlazerResult Off = runBenchmark(*B, {}, 1, OffEngine);
  EXPECT_EQ(Off.Telemetry.Fixpoint.ArcHits, 0u);
  EXPECT_EQ(Off.Telemetry.Fixpoint.ArcMisses, 0u);
  EXPECT_EQ(Off.Telemetry.Fixpoint.ArcBytes, 0u);
  // Widening fires on modPow2, so descending sweeps run — and with the
  // cache off their post-block traffic lands in the sweep pair, not the
  // ascent pair.
  EXPECT_GT(Off.Telemetry.Fixpoint.Sweeps, 0u);
  EXPECT_GT(Off.Telemetry.Fixpoint.SweepTransferHits +
                Off.Telemetry.Fixpoint.SweepTransferMisses,
            0u);
  // The JSON schema carries the new nested object on both surfaces.
  std::string Json = On.Telemetry.json();
  EXPECT_NE(Json.find("\"arc_cache\": {\"hits\": "), std::string::npos);
  EXPECT_NE(Json.find("\"sweep_transfer_hit_rate\": "), std::string::npos);
}

} // namespace
