//===- AutomatonTest.cpp - Tests for the automaton library -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "automata/Automaton.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

TEST(EdgeAlphabet, BijectionOverFunctionEdges) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  EXPECT_EQ(A.size(), F.edges().size());
  for (const Edge &E : F.edges()) {
    int S = A.symbol(E);
    EXPECT_EQ(A.edge(S), E);
  }
  EXPECT_EQ(A.symbolOrNone(Edge{99, 98}), -1);
}

TEST(Dfa, EmptyAndAllWords) {
  Dfa Empty = Dfa::emptyLanguage(3);
  Dfa All = Dfa::allWords(3);
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_FALSE(All.isEmpty());
  EXPECT_TRUE(All.accepts({}));
  EXPECT_TRUE(All.accepts({0, 1, 2}));
  EXPECT_FALSE(Empty.accepts({}));
  EXPECT_FALSE(Empty.accepts({0}));
}

TEST(Dfa, ContainsSymbol) {
  Dfa D = Dfa::containsSymbol(3, 1);
  EXPECT_FALSE(D.accepts({}));
  EXPECT_FALSE(D.accepts({0, 2, 0}));
  EXPECT_TRUE(D.accepts({1}));
  EXPECT_TRUE(D.accepts({0, 1, 2}));
}

TEST(Dfa, AvoidsSymbol) {
  Dfa D = Dfa::avoidsSymbol(3, 1);
  EXPECT_TRUE(D.accepts({}));
  EXPECT_TRUE(D.accepts({0, 2, 0}));
  EXPECT_FALSE(D.accepts({1}));
  EXPECT_FALSE(D.accepts({0, 1, 2}));
}

TEST(Dfa, ComplementFlipsMembership) {
  Dfa D = Dfa::containsSymbol(2, 0);
  Dfa C = D.complement();
  for (const std::vector<int> &W :
       {std::vector<int>{}, {0}, {1}, {1, 1}, {1, 0, 1}})
    EXPECT_NE(D.accepts(W), C.accepts(W));
}

TEST(Dfa, IntersectIsConjunction) {
  Dfa D = Dfa::containsSymbol(2, 0).intersect(Dfa::containsSymbol(2, 1));
  EXPECT_FALSE(D.accepts({0}));
  EXPECT_FALSE(D.accepts({1}));
  EXPECT_TRUE(D.accepts({0, 1}));
  EXPECT_TRUE(D.accepts({1, 0}));
}

TEST(Dfa, UniteIsDisjunction) {
  Dfa D = Dfa::containsSymbol(2, 0).unite(Dfa::containsSymbol(2, 1));
  EXPECT_TRUE(D.accepts({0}));
  EXPECT_TRUE(D.accepts({1}));
  EXPECT_FALSE(D.accepts({}));
}

TEST(Dfa, InclusionAndEquivalence) {
  Dfa Both = Dfa::containsSymbol(2, 0).intersect(Dfa::containsSymbol(2, 1));
  Dfa Zero = Dfa::containsSymbol(2, 0);
  EXPECT_TRUE(Both.includedIn(Zero));
  EXPECT_FALSE(Zero.includedIn(Both));
  EXPECT_TRUE(Zero.equivalent(Dfa::containsSymbol(2, 0)));
  EXPECT_FALSE(Zero.equivalent(Both));
}

TEST(Dfa, MinimizePreservesLanguage) {
  Dfa D = Dfa::containsSymbol(3, 1)
              .unite(Dfa::containsSymbol(3, 2))
              .intersect(Dfa::avoidsSymbol(3, 0));
  Dfa M = D.minimize();
  EXPECT_LE(M.numStates(), D.numStates());
  EXPECT_TRUE(M.equivalent(D));
}

TEST(Dfa, MinimizeReachesCanonicalSize) {
  // avoids(0) needs exactly 2 states (live + dead).
  Dfa M = Dfa::avoidsSymbol(4, 0).minimize();
  EXPECT_EQ(M.numStates(), 2);
}

TEST(Dfa, ShortestWordFindsBfsPath) {
  Dfa D = Dfa::containsSymbol(2, 1);
  auto W = D.shortestWord();
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(*W, std::vector<int>{1});
  EXPECT_FALSE(Dfa::emptyLanguage(2).shortestWord().has_value());
}

TEST(Dfa, LiveStatesReachAccept) {
  Dfa D = Dfa::avoidsSymbol(2, 0);
  std::vector<bool> Live = D.liveStates();
  EXPECT_TRUE(Live[D.start()]);
  // The dead state (reached on symbol 0) is not live.
  EXPECT_FALSE(Live[D.next(D.start(), 0)]);
}

TEST(Dfa, FromCfgAcceptsExactlyTracePaths) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa D = Dfa::fromCfg(F, A);
  // A real path: follow TrueSucc pointers entry -> exit.
  std::vector<int> Word;
  int Cur = F.Entry;
  while (Cur != F.Exit) {
    int Next = F.block(Cur).successors()[0];
    Word.push_back(A.symbol(Edge{Cur, Next}));
    Cur = Next;
  }
  EXPECT_TRUE(D.accepts(Word));
  // Prefixes of real paths are not complete traces.
  Word.pop_back();
  EXPECT_FALSE(D.accepts(Word));
  // A non-path word is rejected.
  EXPECT_FALSE(D.accepts({static_cast<int>(A.size()) - 1,
                          static_cast<int>(A.size()) - 1}));
}

//===----------------------------------------------------------------------===//
// Property sweeps: boolean-algebra laws over generated automata.
//===----------------------------------------------------------------------===//

class DfaAlgebra : public ::testing::TestWithParam<int> {
protected:
  static constexpr int NumSymbols = 3;

  static Dfa make(int Seed) {
    // Compose a small automaton from the primitive constructors.
    Dfa D = Dfa::allWords(NumSymbols);
    uint32_t S = static_cast<uint32_t>(Seed) * 2654435761u + 7u;
    auto Next = [&S] {
      S ^= S << 13;
      S ^= S >> 17;
      S ^= S << 5;
      return S;
    };
    int Ops = 1 + Next() % 3;
    for (int I = 0; I < Ops; ++I) {
      int Sym = Next() % NumSymbols;
      Dfa Atom = Next() % 2 ? Dfa::containsSymbol(NumSymbols, Sym)
                            : Dfa::avoidsSymbol(NumSymbols, Sym);
      D = Next() % 2 ? D.intersect(Atom) : D.unite(Atom);
    }
    return D;
  }

  static std::vector<std::vector<int>> sampleWords() {
    std::vector<std::vector<int>> Words = {{}};
    for (int A = 0; A < NumSymbols; ++A) {
      Words.push_back({A});
      for (int B = 0; B < NumSymbols; ++B) {
        Words.push_back({A, B});
        Words.push_back({A, B, A});
      }
    }
    return Words;
  }
};

TEST_P(DfaAlgebra, DeMorgan) {
  Dfa A = make(GetParam());
  Dfa B = make(GetParam() + 31);
  Dfa Lhs = A.intersect(B).complement();
  Dfa Rhs = A.complement().unite(B.complement());
  EXPECT_TRUE(Lhs.equivalent(Rhs));
}

TEST_P(DfaAlgebra, DoubleComplementIsIdentity) {
  Dfa A = make(GetParam());
  EXPECT_TRUE(A.complement().complement().equivalent(A));
}

TEST_P(DfaAlgebra, IntersectionIsLowerBound) {
  Dfa A = make(GetParam());
  Dfa B = make(GetParam() + 31);
  Dfa I = A.intersect(B);
  EXPECT_TRUE(I.includedIn(A));
  EXPECT_TRUE(I.includedIn(B));
}

TEST_P(DfaAlgebra, UnionIsUpperBound) {
  Dfa A = make(GetParam());
  Dfa B = make(GetParam() + 31);
  Dfa U = A.unite(B);
  EXPECT_TRUE(A.includedIn(U));
  EXPECT_TRUE(B.includedIn(U));
}

TEST_P(DfaAlgebra, MembershipMatchesSetSemantics) {
  Dfa A = make(GetParam());
  Dfa B = make(GetParam() + 31);
  Dfa I = A.intersect(B);
  Dfa U = A.unite(B);
  Dfa C = A.complement();
  for (const auto &W : sampleWords()) {
    EXPECT_EQ(I.accepts(W), A.accepts(W) && B.accepts(W));
    EXPECT_EQ(U.accepts(W), A.accepts(W) || B.accepts(W));
    EXPECT_EQ(C.accepts(W), !A.accepts(W));
  }
}

TEST_P(DfaAlgebra, MinimizationIsIdempotent) {
  Dfa M = make(GetParam()).minimize();
  Dfa MM = M.minimize();
  EXPECT_EQ(M.numStates(), MM.numStates());
  EXPECT_TRUE(M.equivalent(MM));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaAlgebra, ::testing::Range(0, 20));

//===----------------------------------------------------------------------===//
// Nfa determinization
//===----------------------------------------------------------------------===//

TEST(Nfa, DeterminizeSimpleUnion) {
  // (0|1) over a 2-symbol alphabet.
  Nfa N(2);
  int S = N.addState();
  int A1 = N.addState();
  N.addTransition(S, 0, A1);
  N.addTransition(S, 1, A1);
  N.setStart(S);
  N.setAccept(A1);
  Dfa D = N.determinize();
  EXPECT_TRUE(D.accepts({0}));
  EXPECT_TRUE(D.accepts({1}));
  EXPECT_FALSE(D.accepts({}));
  EXPECT_FALSE(D.accepts({0, 0}));
}

TEST(Nfa, EpsilonClosureChains) {
  // eps-chain s -> a -> b with b accepting on symbol 0 loop.
  Nfa N(1);
  int S = N.addState();
  int A = N.addState();
  int B = N.addState();
  N.addEpsilon(S, A);
  N.addEpsilon(A, B);
  N.addTransition(B, 0, B);
  N.setStart(S);
  N.setAccept(B);
  Dfa D = N.determinize();
  EXPECT_TRUE(D.accepts({}));
  EXPECT_TRUE(D.accepts({0, 0, 0}));
}

} // namespace
