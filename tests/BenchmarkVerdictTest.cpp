//===- BenchmarkVerdictTest.cpp - Table-1 verdicts as tests -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every row of Table 1 as a parameterized test: the analysis verdict on
/// each of the 24 benchmarks must match what the paper reports (safe for
/// *_safe, attack specification for *_unsafe, and "gives up" for
/// gpt14_unsafe).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

class BenchmarkVerdict
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(BenchmarkVerdict, MatchesPaper) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  BlazerResult R = analyzeFunction(F, B.options());
  EXPECT_EQ(R.Verdict, B.Expected)
      << B.Name << " tree:\n"
      << R.treeString(F);
  if (B.Expected == VerdictKind::Attack) {
    EXPECT_FALSE(R.Attacks.empty());
  }
  if (B.Expected == VerdictKind::Safe) {
    EXPECT_TRUE(R.Attacks.empty());
    // Every feasible leaf of a safe tree is narrow.
    for (const Trail &T : R.Tree) {
      if (T.isLeaf() && T.feasible()) {
        EXPECT_TRUE(T.Narrow) << B.Name << " leaf tr" << T.Id;
      }
    }
  }
}

TEST_P(BenchmarkVerdict, CompilesWithNonTrivialCfg) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  EXPECT_GE(F.blockCount(), 2u);
  EXPECT_EQ(F.Name, B.Name);
}

std::vector<const BenchmarkProgram *> allPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, BenchmarkVerdict, ::testing::ValuesIn(allPtrs()),
    [](const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
      return Info.param->Name;
    });

TEST(BenchmarkSuite, HasAll24InPaperOrder) {
  const auto &All = allBenchmarks();
  ASSERT_EQ(All.size(), 24u);
  int Micro = 0, Stac = 0, Lit = 0;
  for (const BenchmarkProgram &B : All) {
    if (B.Category == "MicroBench")
      ++Micro;
    else if (B.Category == "STAC")
      ++Stac;
    else if (B.Category == "Literature")
      ++Lit;
  }
  EXPECT_EQ(Micro, 12);
  EXPECT_EQ(Stac, 6);
  EXPECT_EQ(Lit, 6);
}

TEST(BenchmarkSuite, SafeUnsafePairing) {
  // 12 safe, 11 attack, 1 unknown (gpt14_unsafe).
  int Safe = 0, Attack = 0, Unknown = 0;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    switch (B.Expected) {
    case VerdictKind::Safe:
      ++Safe;
      break;
    case VerdictKind::Attack:
      ++Attack;
      break;
    case VerdictKind::Unknown:
      ++Unknown;
      break;
    }
  }
  EXPECT_EQ(Safe, 12);
  EXPECT_EQ(Attack, 11);
  EXPECT_EQ(Unknown, 1);
}

TEST(BenchmarkSuite, FindByName) {
  EXPECT_NE(findBenchmark("login_safe"), nullptr);
  EXPECT_EQ(findBenchmark("not_a_benchmark"), nullptr);
}

TEST(BenchmarkSuite, Figure1ShapeForLoginSafe) {
  // The §2.2 story: trmg is not narrow; the taint split yields an early-
  // exit trail with exact constant bounds and a loop trail with matching
  // linear bounds.
  const BenchmarkProgram *B = findBenchmark("login_safe");
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  ASSERT_EQ(R.Verdict, VerdictKind::Safe);
  ASSERT_GE(R.Tree.size(), 3u);
  const Trail &Mg = R.Tree[0];
  EXPECT_FALSE(Mg.Narrow);
  ASSERT_EQ(Mg.Children.size(), 2u);
  const Trail &Tr1 = R.Tree[Mg.Children[0]];
  const Trail &Tr2 = R.Tree[Mg.Children[1]];
  // One child exits early with an exact constant range...
  EXPECT_TRUE(Tr1.Bounds.range().Lo.isConstant());
  EXPECT_TRUE(Tr1.Bounds.range().Hi.isConstant());
  // ...the other runs the loop with bounds linear in guess.len only.
  EXPECT_EQ(Tr2.Bounds.range().Hi.degree(), 1u);
  EXPECT_EQ(Tr2.Bounds.range().variables(),
            std::vector<std::string>{"guess.len"});
}

TEST(BenchmarkSuite, Figure1ShapeForLoginUnsafe) {
  // loginBad: the secret-split trails must exhibit the p.len-dependent
  // bound (the paper's 20*max(g.len-1, p.len)+8 balloon).
  const BenchmarkProgram *B = findBenchmark("login_unsafe");
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  ASSERT_EQ(R.Verdict, VerdictKind::Attack);
  bool SomeTrailMentionsPwLen = false;
  for (const Trail &T : R.Tree) {
    if (!T.feasible() || !T.Bounds.hasUpper())
      continue;
    for (const std::string &V : T.Bounds.range().variables())
      if (V == "user_pw.len")
        SomeTrailMentionsPwLen = true;
  }
  EXPECT_TRUE(SomeTrailMentionsPwLen);
}

TEST(BenchmarkSuite, ModPowAttackImplicatesBitTest) {
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  ASSERT_EQ(R.Verdict, VerdictKind::Attack);
  ASSERT_FALSE(R.Attacks.empty());
  // Some emitted specification must implicate the bit-test branch (the
  // one whose condition reads the exponent directly); other specs may
  // implicate the loop guard, which is exponent-tainted via width.
  bool BitTestImplicated = false;
  for (const AttackSpec &A : R.Attacks) {
    ASSERT_GE(A.SecretBranch, 0);
    const BasicBlock &Branch = F.block(A.SecretBranch);
    if (exprToString(Branch.Cond).find("exponent") != std::string::npos)
      BitTestImplicated = true;
    EXPECT_TRUE(R.Taint.markOf(A.SecretBranch).High);
  }
  EXPECT_TRUE(BitTestImplicated);
}

TEST(BenchmarkSuite, Gpt14UnsafeGivesUpWithoutFalseAttack) {
  const BenchmarkProgram *B = findBenchmark("gpt14_unsafe");
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  EXPECT_TRUE(R.Attacks.empty());
}

//===----------------------------------------------------------------------===//
// The TableCT family: strict constant-time verdicts
//===----------------------------------------------------------------------===//

class TableCtVerdict
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(TableCtVerdict, MatchesRegistryUnderEveryEngineMode) {
  const BenchmarkProgram &B = *GetParam();
  // The ct-verdict must be engine-invariant: WTO vs FIFO fixpoint
  // scheduling and trail-cache on/off only change how bounds are computed,
  // never what they are.
  for (const char *Fixpoint : {"wto", "fifo"}) {
    for (const char *Cache : {"on", "off"}) {
      EngineConfig Engine;
      ASSERT_TRUE(Engine.set("fixpoint", Fixpoint));
      ASSERT_TRUE(Engine.set("cache", Cache));
      ASSERT_TRUE(Engine.set("ct", "on"));
      BlazerResult R = runBenchmark(B, {}, /*Jobs=*/1, Engine);
      std::string Mode =
          B.Name + " fixpoint=" + Fixpoint + " cache=" + Cache;
      EXPECT_EQ(R.Ct, B.ExpectedCt) << Mode;
      if (B.ExpectedCt == CtVerdict::CtUnsafe) {
        // The unsafe half must come with a concrete witness pair whose
        // rendered bounds the CLI can print.
        ASSERT_TRUE(R.CtPair.has_value()) << Mode;
        EXPECT_GE(R.CtPair->TrailA, 0) << Mode;
        EXPECT_GE(R.CtPair->TrailB, 0) << Mode;
        EXPECT_NE(R.CtPair->TrailA, R.CtPair->TrailB) << Mode;
        EXPECT_FALSE(R.CtPair->BoundsA.empty()) << Mode;
        EXPECT_FALSE(R.CtPair->BoundsB.empty()) << Mode;
      } else {
        EXPECT_FALSE(R.CtPair.has_value()) << Mode;
      }
      // CT mode replaces the attack search: never an Attack verdict.
      EXPECT_NE(R.Verdict, VerdictKind::Attack) << Mode;
    }
  }
}

TEST_P(TableCtVerdict, NormalModeVerdictMatchesRegistry) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  BlazerResult R = analyzeFunction(F, B.options());
  EXPECT_EQ(R.Verdict, B.Expected) << B.Name << " tree:\n" << R.treeString(F);
}

std::vector<const BenchmarkProgram *> tableCtPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : tableCtBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    TableCT, TableCtVerdict, ::testing::ValuesIn(tableCtPtrs()),
    [](const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
      return Info.param->Name;
    });

TEST(TableCtSuite, ThreePairsWithStrictExpectations) {
  const auto &All = tableCtBenchmarks();
  ASSERT_EQ(All.size(), 6u);
  int CtSafe = 0, CtUnsafe = 0;
  for (const BenchmarkProgram &B : All) {
    EXPECT_EQ(B.Category, "TableCT") << B.Name;
    EXPECT_NE(B.ExpectedCt, CtVerdict::CtUnknown) << B.Name;
    (B.ExpectedCt == CtVerdict::CtSafe ? CtSafe : CtUnsafe) += 1;
    // Both registries are reachable through the one lookup.
    EXPECT_EQ(findBenchmark(B.Name), &B);
  }
  EXPECT_EQ(CtSafe, 3);
  EXPECT_EQ(CtUnsafe, 3);
}

TEST(TableCtSuite, CompareUnsafeIsTheThresholdBlindSpot) {
  // The showcase pair: the early-exit comparison's leak (~500 instructions
  // at mac.len=32) is far below the 25k threshold, so the paper's observer
  // calls it Safe — only the strict --ct verdict catches it.
  const BenchmarkProgram *B = findBenchmark("ctcompare_unsafe");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Expected, VerdictKind::Safe);
  EXPECT_EQ(B->ExpectedCt, CtVerdict::CtUnsafe);
}

} // namespace
