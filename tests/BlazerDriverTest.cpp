//===- BlazerDriverTest.cpp - Tests for the Figure-2 driver -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Blazer.h"
#include "benchmarks/Benchmarks.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

TEST(Driver, Example1SingleComponentSafe) {
  // Example 1 of the paper: both secret-branch arms are linear in low.
  CfgFunction F = compile(R"(
    fn foo(secret high: int, public low: int) {
      var i: int = 0;
      if (high == 0) {
        i = 0;
        while (i < low) { i = i + 1; }
      } else {
        i = low;
        while (i > 0) { i = i - 1; }
      }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_EQ(R.Verdict, VerdictKind::Safe);
}

TEST(Driver, Example2SplitsOnLowBranch) {
  CfgFunction F = compile(R"(
    fn bar(secret high: int, public low: int) {
      var i: int = 0;
      if (low > 0) {
        i = 0;
        while (i < low) { i = i + 1; }
        while (i > 0) { i = i - 1; }
      } else {
        if (high == 0) { i = 5; } else { i = 0; i = i + 1; }
      }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_EQ(R.Verdict, VerdictKind::Safe);
  // The most general trail was split once, at the taint branch on low.
  ASSERT_GE(R.Tree.size(), 3u);
  EXPECT_EQ(R.Tree[0].Children.size(), 2u);
  for (int C : R.Tree[0].Children) {
    EXPECT_TRUE(R.Tree[C].SplitOn.Low);
    EXPECT_FALSE(R.Tree[C].SplitOn.High);
    EXPECT_TRUE(R.Tree[C].Narrow);
  }
}

TEST(Driver, TriviallySafeStaysOneTrail) {
  CfgFunction F = compile("fn f(secret h: int, public l: int) { skip; }");
  BlazerResult R = analyzeFunction(F);
  EXPECT_EQ(R.Verdict, VerdictKind::Safe);
  EXPECT_EQ(R.Tree.size(), 1u);
  EXPECT_TRUE(R.Tree[0].Narrow);
  EXPECT_EQ(R.Tree[0].Split, SplitKind::None);
}

TEST(Driver, AttackCarriesSpecification) {
  CfgFunction F = compile(R"(
    fn leak(secret h: int, public l: int) {
      var i: int = 0;
      if (h > 0) {
        while (i < h) { i = i + 1; }
      } else {
        skip;
      }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  BlazerResult R = analyzeFunction(F, Opt);
  ASSERT_EQ(R.Verdict, VerdictKind::Attack);
  ASSERT_FALSE(R.Attacks.empty());
  const AttackSpec &A = R.Attacks[0];
  EXPECT_GE(A.TrailA, 0);
  EXPECT_GE(A.TrailB, 0);
  EXPECT_GE(A.SecretBranch, 0);
  // The implicated branch really is secret-dependent.
  EXPECT_TRUE(R.Taint.markOf(A.SecretBranch).High);
  // The two trails are siblings split on the secret.
  EXPECT_EQ(R.Tree[A.TrailA].Parent, R.Tree[A.TrailB].Parent);
  EXPECT_TRUE(R.Tree[A.TrailA].SplitOn.High);
  // The rendered specification mentions both trails.
  std::string S = A.str();
  EXPECT_NE(S.find("tr" + std::to_string(A.TrailA)), std::string::npos);
  EXPECT_NE(S.find("tr" + std::to_string(A.TrailB)), std::string::npos);
}

TEST(Driver, SafetyOnlyModeSkipsAttackSearch) {
  CfgFunction F = compile(R"(
    fn leak(secret h: int, public l: int) {
      var i: int = 0;
      if (h > 0) { while (i < h) { i = i + 1; } }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  Opt.SearchAttack = false;
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  EXPECT_TRUE(R.Attacks.empty());
}

TEST(Driver, BudgetLimitsTrailCount) {
  const BenchmarkProgram *B = findBenchmark("modPow2_unsafe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerOptions Opt = B->options();
  Opt.MaxTrails = 4;
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_LE(R.Tree.size(), 4u);
}

TEST(Driver, TreeParentChildLinksAreConsistent) {
  const BenchmarkProgram *B = findBenchmark("login_unsafe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  for (const Trail &T : R.Tree) {
    if (T.Parent >= 0) {
      const auto &Sibs = R.Tree[T.Parent].Children;
      EXPECT_NE(std::find(Sibs.begin(), Sibs.end(), T.Id), Sibs.end());
    }
    for (int C : T.Children)
      EXPECT_EQ(R.Tree[C].Parent, T.Id);
  }
}

TEST(Driver, ChildTrailLanguagesAreSubsets) {
  const BenchmarkProgram *B = findBenchmark("login_unsafe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  for (const Trail &T : R.Tree) {
    if (T.Parent >= 0) {
      EXPECT_TRUE(T.Auto.includedIn(R.Tree[T.Parent].Auto))
          << "tr" << T.Id << " not within tr" << T.Parent;
    }
  }
}

TEST(Driver, SiblingTrailsCoverTheParent) {
  const BenchmarkProgram *B = findBenchmark("login_unsafe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  for (const Trail &T : R.Tree) {
    if (T.Children.empty())
      continue;
    // Union the children split from the same branch.
    Dfa Union = Dfa::emptyLanguage(T.Auto.numSymbols());
    for (int C : T.Children)
      Union = Union.unite(R.Tree[C].Auto);
    EXPECT_TRUE(T.Auto.includedIn(Union))
        << "children of tr" << T.Id << " do not cover it";
  }
}

TEST(Driver, TimingFieldsPopulated) {
  const BenchmarkProgram *B = findBenchmark("sanity_unsafe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  EXPECT_GE(R.SafetySeconds, 0.0);
  EXPECT_GE(R.TotalSeconds, R.SafetySeconds);
}

TEST(Driver, TreeStringMentionsVerdictAndTrails) {
  const BenchmarkProgram *B = findBenchmark("login_safe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BlazerResult R = analyzeFunction(F, B->options());
  std::string S = R.treeString(F);
  EXPECT_NE(S.find("tr0"), std::string::npos);
  EXPECT_NE(S.find("most general trail"), std::string::npos);
  EXPECT_NE(S.find("verdict: safe"), std::string::npos);
  EXPECT_NE(S.find("taint"), std::string::npos);
}

TEST(Driver, RelatedWorkEx1TypeSystemFalseAlarmAvoided) {
  // §7 ex1: `if false { while (h < x) h++ }` — untypeable by security type
  // systems, but the trail abstraction + abstract interpreter prove it.
  CfgFunction F = compile(R"(
    fn ex1(public x: int, secret h: int) {
      if (false) {
        while (h < x) { h = h + 1; }
      }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_EQ(R.Verdict, VerdictKind::Safe);
}

TEST(Driver, RelatedWorkEx2CompensatingBranches) {
  // §7 ex2: two secret branches whose costs compensate. Each trail is
  // constant-time within epsilon, so the decomposition proves it.
  CfgFunction F = compile(R"(
    fn ex2(public x: int, secret h: int) {
      var t: int = 0;
      if (h > x) { t = t + 1; } else { t = t + 1; t = t + 1; }
      if (h <= x) { t = t + 1; } else { t = t + 1; t = t + 1; }
    }
  )");
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  BlazerResult R = analyzeFunction(F, Opt);
  EXPECT_EQ(R.Verdict, VerdictKind::Safe);
}

} // namespace
