//===- BoundAnalysisTest.cpp - Tests for BOUNDANALYSIS ----------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundAnalysis.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

TrailBoundResult boundsOf(const CfgFunction &F) {
  BoundAnalysis BA(F);
  return BA.analyzeTrail(BA.mostGeneralTrail());
}

/// Evaluates a bound under the given symbol values.
int64_t evalAt(const Bound &B, std::map<std::string, int64_t> Env) {
  return B.evaluate(Env);
}

TEST(BoundAnalysis, StraightLineIsExact) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; x = x + 2; }");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible);
  ASSERT_TRUE(R.hasUpper());
  // Exact: Lo == Hi == the concrete cost of the only trace.
  InputAssignment In;
  int64_t Actual = runFunction(F, In).Cost;
  EXPECT_EQ(evalAt(R.Lo, {}), Actual);
  EXPECT_EQ(evalAt(*R.Hi, {}), Actual);
}

TEST(BoundAnalysis, BranchGivesRange) {
  CfgFunction F = compile(R"(
    fn f(public x: int) {
      if (x > 0) { x = 1; x = 2; x = 3; } else { skip; }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper());
  int64_t Lo = evalAt(R.Lo, {});
  int64_t Hi = evalAt(*R.Hi, {});
  EXPECT_LT(Lo, Hi);
  // The concrete costs of both paths lie within.
  InputAssignment Pos, Neg;
  Pos.Ints["x"] = 5;
  Neg.Ints["x"] = -5;
  EXPECT_LE(Lo, runFunction(F, Neg).Cost);
  EXPECT_GE(Hi, runFunction(F, Pos).Cost);
}

//===----------------------------------------------------------------------===//
// Trip-count lemmas
//===----------------------------------------------------------------------===//

/// The canonical loop shapes the lemma database must handle. Each case
/// checks the symbolic bounds against the interpreter over a grid.
struct LoopCase {
  const char *Name;
  const char *Src;
  /// Whether the analysis should find matching (exact) lower/upper bounds.
  bool ExactExpected;
};

class LoopLemmas : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopLemmas, SymbolicBoundsContainConcreteCosts) {
  CfgFunction F = compile(GetParam().Src);
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible);
  ASSERT_TRUE(R.hasUpper()) << R.Note;

  for (int64_t N : {0, 1, 2, 5, 17}) {
    InputAssignment In;
    In.Ints["n"] = N;
    TraceResult TR = runFunction(F, In);
    ASSERT_TRUE(TR.Ok) << TR.Error;
    std::map<std::string, int64_t> Env{{"n", N}};
    EXPECT_LE(evalAt(R.Lo, Env), TR.Cost)
        << GetParam().Name << " n=" << N << " bounds " << R.str();
    EXPECT_GE(evalAt(*R.Hi, Env), TR.Cost)
        << GetParam().Name << " n=" << N << " bounds " << R.str();
    if (GetParam().ExactExpected && N >= 0) {
      EXPECT_EQ(evalAt(R.Lo, Env), TR.Cost) << GetParam().Name;
      EXPECT_EQ(evalAt(*R.Hi, Env), TR.Cost) << GetParam().Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LoopLemmas,
    ::testing::Values(
        LoopCase{"IncLt",
                 "fn f(public n: int) { var i: int = 0;"
                 " while (i < n) { i = i + 1; } }",
                 true},
        LoopCase{"IncLe",
                 "fn f(public n: int) { var i: int = 1;"
                 " while (i <= n) { i = i + 1; } }",
                 true},
        LoopCase{"DecGt",
                 "fn f(public n: int) { var i: int = n;"
                 " while (i > 0) { i = i - 1; } }",
                 true},
        LoopCase{"DecGe",
                 "fn f(public n: int) { var i: int = n;"
                 " while (i >= 1) { i = i - 1; } }",
                 true},
        LoopCase{"IncByTwo",
                 "fn f(public n: int) { var i: int = 0;"
                 " while (i < n) { i = i + 2; } }",
                 false},
        LoopCase{"ReversedOperands",
                 "fn f(public n: int) { var i: int = 0;"
                 " while (n > i) { i = i + 1; } }",
                 true},
        LoopCase{"OffsetBound",
                 // Not exact: the trip polynomial n - 1 dips below zero at
                 // n = 0, where the max(0, .)-clamped bound takes over.
                 "fn f(public n: int) { var i: int = 0;"
                 " while (i < n - 1) { i = i + 1; } }",
                 false},
        LoopCase{"ConstantTrip",
                 "fn f(public n: int) { var i: int = 0;"
                 " while (i < 16) { i = i + 1; } }",
                 true},
        LoopCase{"DisequalityUp",
                 // The Ne lemma: unit progress toward zero from below.
                 "fn f(public n: int) { var i: int = 0;"
                 " if (n >= 0) { while (i != n) { i = i + 1; } } }",
                 false},
        LoopCase{"DisequalityDown",
                 "fn f(public n: int) {"
                 " if (n >= 0) { var i: int = n;"
                 "   while (i != 0) { i = i - 1; } } }",
                 false}),
    [](const ::testing::TestParamInfo<LoopCase> &Info) {
      return Info.param.Name;
    });

TEST(BoundAnalysis, ArrayLengthBound) {
  CfgFunction F = compile(R"(
    fn f(public a: int[]) {
      var i: int = 0;
      while (i < a.length) { i = i + 1; }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper()) << R.Note;
  // The bound must be symbolic in a.len.
  std::vector<std::string> Vars = R.Hi->variables();
  EXPECT_EQ(Vars, std::vector<std::string>{"a.len"});
  for (size_t Len : {0u, 1u, 4u}) {
    InputAssignment In;
    In.Arrays["a"] = std::vector<int64_t>(Len, 1);
    int64_t Cost = runFunction(F, In).Cost;
    std::map<std::string, int64_t> Env{
        {"a.len", static_cast<int64_t>(Len)}};
    EXPECT_EQ(evalAt(R.Lo, Env), Cost);
    EXPECT_EQ(evalAt(*R.Hi, Env), Cost);
  }
}

TEST(BoundAnalysis, NestedLoopsMultiply) {
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) {
        var j: int = 0;
        while (j < n) { j = j + 1; }
        i = i + 1;
      }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper()) << R.Note;
  EXPECT_EQ(R.Hi->degree(), 2u);
  for (int64_t N : {0, 1, 3, 6}) {
    InputAssignment In;
    In.Ints["n"] = N;
    int64_t Cost = runFunction(F, In).Cost;
    std::map<std::string, int64_t> Env{{"n", N}};
    EXPECT_LE(evalAt(R.Lo, Env), Cost);
    EXPECT_GE(evalAt(*R.Hi, Env), Cost);
  }
}

TEST(BoundAnalysis, EarlyExitLoopKeepsLowerConstant) {
  CfgFunction F = compile(R"(
    fn f(public a: int[]) -> bool {
      var i: int = 0;
      while (i < a.length) {
        if (a[i] == 0) { return true; }
        i = i + 1;
      }
      return false;
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper()) << R.Note;
  // The lower bound cannot scale with a.len (early exit possible).
  EXPECT_EQ(R.Lo.minDegree(), 0u);
  EXPECT_EQ(R.Hi->degree(), 1u);
  // Soundness: both the instant-exit and full-scan costs are contained.
  InputAssignment Instant;
  Instant.Arrays["a"] = {0, 1, 1, 1};
  InputAssignment Full;
  Full.Arrays["a"] = {1, 1, 1, 1};
  std::map<std::string, int64_t> Env{{"a.len", 4}};
  EXPECT_LE(evalAt(R.Lo, Env), runFunction(F, Instant).Cost);
  EXPECT_GE(evalAt(*R.Hi, Env), runFunction(F, Full).Cost);
}

TEST(BoundAnalysis, UnknownTripCountReportsNoUpper) {
  // t = t / 2 is not a constant-delta update: no lemma applies.
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var t: int = n;
      while (t > 1) { t = t / 2; }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible);
  EXPECT_FALSE(R.hasUpper());
  EXPECT_FALSE(R.Note.empty());
}

TEST(BoundAnalysis, NonMonotoneGuardReportsNoUpper) {
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) { i = i - 1; }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible);
  EXPECT_FALSE(R.hasUpper());
}

TEST(BoundAnalysis, BuiltinSummariesEnterBounds) {
  CfgFunction F = compile(R"(
    fn f(public n: int, public m: int) {
      var i: int = 0;
      var s: int = 1;
      while (i < n) { s = mulmod(s, s, m); i = i + 1; }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper()) << R.Note;
  // Per-iteration cost must include the 97-unit mulmod summary.
  std::map<std::string, int64_t> E0{{"n", 0}};
  std::map<std::string, int64_t> E1{{"n", 1}};
  EXPECT_GE(evalAt(*R.Hi, E1) - evalAt(*R.Hi, E0), 97);
}

TEST(BoundAnalysis, InfeasibleTrailReported) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; }");
  BoundAnalysis BA(F);
  TrailBoundResult R = BA.analyzeTrail(
      Dfa::emptyLanguage(static_cast<int>(BA.alphabet().size())));
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.str(), "<infeasible>");
}

TEST(BoundAnalysis, AbstractlyInfeasiblePathsArePruned) {
  // The `if false` example from §7: a secret loop behind a false guard.
  CfgFunction F = compile(R"(
    fn f(public x: int, secret h: int) {
      if (false) {
        while (h < x) { h = h + 1; }
      }
    }
  )");
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible);
  ASSERT_TRUE(R.hasUpper()) << R.Note;
  EXPECT_TRUE(R.Hi->isConstant());
}

TEST(BoundAnalysis, TrailRestrictionTightensBounds) {
  CfgFunction F = compile(R"(
    fn f(public x: int) {
      if (x > 0) { x = 1; x = 2; x = 3; x = 4; } else { skip; }
    }
  )");
  BoundAnalysis BA(F);
  TrailBoundResult Full = BA.analyzeTrail(BA.mostGeneralTrail());
  // Restrict to the then-side only.
  const BasicBlock &Entry = F.block(F.Entry);
  int FalseSym = BA.alphabet().symbol(Edge{F.Entry, Entry.FalseSucc});
  Dfa ThenOnly = BA.mostGeneralTrail().intersect(Dfa::avoidsSymbol(
      static_cast<int>(BA.alphabet().size()), FalseSym));
  TrailBoundResult Then = BA.analyzeTrail(ThenOnly);
  ASSERT_TRUE(Then.Feasible && Then.hasUpper());
  // The restricted trail has an exact cost; the full trail straddles it.
  EXPECT_EQ(evalAt(Then.Lo, {}), evalAt(*Then.Hi, {}));
  EXPECT_LT(evalAt(Full.Lo, {}), evalAt(Then.Lo, {}));
  EXPECT_EQ(evalAt(*Full.Hi, {}), evalAt(*Then.Hi, {}));
}

TEST(BoundAnalysis, RotatedLoopFromContainsTrail) {
  // Restricting to "loop entered at least once" unrolls the first
  // iteration in the product; the counting node is found mid-SCC.
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) { i = i + 1; }
    }
  )");
  BoundAnalysis BA(F);
  int Header = -1;
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch)
      Header = B.Id;
  int BodySym =
      BA.alphabet().symbol(Edge{Header, F.block(Header).TrueSucc});
  Dfa Trail = BA.mostGeneralTrail().intersect(Dfa::containsSymbol(
      static_cast<int>(BA.alphabet().size()), BodySym));
  TrailBoundResult R = BA.analyzeTrail(Trail);
  ASSERT_TRUE(R.Feasible);
  ASSERT_TRUE(R.hasUpper()) << R.Note;
  // Soundness on a concrete run that enters the loop.
  InputAssignment In;
  In.Ints["n"] = 7;
  int64_t Cost = runFunction(F, In).Cost;
  std::map<std::string, int64_t> Env{{"n", 7}};
  EXPECT_LE(R.Lo.evaluate(Env), Cost);
  EXPECT_GE(R.Hi->evaluate(Env), Cost);
}

//===----------------------------------------------------------------------===//
// Randomized soundness sweep: bounds always contain the interpreter's cost.
//===----------------------------------------------------------------------===//

class BoundSoundness : public ::testing::TestWithParam<int> {};

TEST_P(BoundSoundness, MostGeneralBoundsContainAllRuns) {
  // A family of programs with branch+loop mixtures, indexed by seed.
  int Seed = GetParam();
  std::string Guard = (Seed % 2) ? "i < n" : "n > i";
  std::string Step = (Seed % 3 == 0) ? "i + 1" : "i + 1";
  std::string Extra = (Seed % 2) ? "if (x > 2) { x = x + 1; } else { skip; }"
                                 : "skip;";
  std::string Src = "fn f(public n: int, public x: int) {\n"
                    "  var i: int = 0;\n" +
                    Extra + "\n  while (" + Guard + ") { i = " + Step +
                    "; }\n}";
  CfgFunction F = compile(Src);
  TrailBoundResult R = boundsOf(F);
  ASSERT_TRUE(R.Feasible && R.hasUpper()) << R.Note;
  for (int64_t N : {0, 1, 5})
    for (int64_t X : {0, 5}) {
      InputAssignment In;
      In.Ints["n"] = N;
      In.Ints["x"] = X;
      int64_t Cost = runFunction(F, In).Cost;
      std::map<std::string, int64_t> Env{{"n", N}, {"x", X}};
      EXPECT_LE(R.Lo.evaluate(Env), Cost) << Src;
      EXPECT_GE(R.Hi->evaluate(Env), Cost) << Src;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundSoundness, ::testing::Range(0, 6));

} // namespace
