//===- BoundTest.cpp - Unit/property tests for Bound/BoundRange ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bound.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CostPoly var(const std::string &N) { return CostPoly::variable(N); }
CostPoly c(int64_t V) { return CostPoly::constant(V); }

TEST(Bound, SingletonStr) {
  EXPECT_EQ(Bound::upper(var("n") * 23 + c(10)).str(), "23*n + 10");
  EXPECT_EQ(Bound::lower(c(8)).str(), "8");
}

TEST(Bound, MaxMergeKeepsIncomparableMembers) {
  Bound B = Bound::upper(var("g"));
  B.merge(Bound::upper(var("p")));
  EXPECT_EQ(B.polys().size(), 2u);
  std::string S = B.str();
  EXPECT_NE(S.find("max("), std::string::npos);
}

TEST(Bound, MaxMergePrunesDominated) {
  // 2*a.len + 5 dominates a.len + 1: lengths are non-negative.
  Bound B = Bound::upper(var("a.len") + c(1));
  B.merge(Bound::upper(var("a.len") * 2 + c(5)));
  EXPECT_EQ(B.polys().size(), 1u);
  EXPECT_EQ(B.str(), "2*a.len + 5");
}

TEST(Bound, MinMergePrunesDominated) {
  Bound B = Bound::lower(var("a.len") + c(1));
  B.merge(Bound::lower(var("a.len") * 2 + c(5)));
  EXPECT_EQ(B.polys().size(), 1u);
  EXPECT_EQ(B.str(), "a.len + 1");
}

TEST(Bound, NoPruningOverPossiblyNegativeVariables) {
  // "n" is an integer parameter: 2n + 5 does NOT dominate n + 1 at n = -10,
  // so both members must survive.
  Bound B = Bound::upper(var("n") + c(1));
  B.merge(Bound::upper(var("n") * 2 + c(5)));
  EXPECT_EQ(B.polys().size(), 2u);
  std::map<std::string, int64_t> E{{"n", -10}};
  EXPECT_EQ(B.evaluate(E), -9);
}

TEST(Bound, ConstantDominancePrunesRegardlessOfVariables) {
  // n + 5 >= n + 1 holds for every n: constant-difference pruning is safe.
  Bound B = Bound::upper(var("n") + c(1));
  B.merge(Bound::upper(var("n") + c(5)));
  EXPECT_EQ(B.polys().size(), 1u);
  EXPECT_EQ(B.str(), "n + 5");
}

TEST(Bound, EvaluateTakesExtremes) {
  Bound Hi = Bound::upper(var("g"));
  Hi.merge(Bound::upper(var("p")));
  std::map<std::string, int64_t> A{{"g", 3}, {"p", 9}};
  EXPECT_EQ(Hi.evaluate(A), 9);

  Bound Lo = Bound::lower(var("g"));
  Lo.merge(Bound::lower(var("p")));
  EXPECT_EQ(Lo.evaluate(A), 3);
}

TEST(Bound, AdditionIsCrossProduct) {
  Bound A = Bound::upper(var("x"));
  A.merge(Bound::upper(var("y")));
  Bound B = Bound::upper(c(1));
  Bound Sum = A + B;
  std::map<std::string, int64_t> E{{"x", 10}, {"y", 2}};
  EXPECT_EQ(Sum.evaluate(E), 11);
}

TEST(Bound, MultiplyByPoly) {
  Bound B = Bound::upper(var("n") + c(1)) * var("m");
  std::map<std::string, int64_t> E{{"n", 3}, {"m", 5}};
  EXPECT_EQ(B.evaluate(E), 20);
}

TEST(Bound, DegreeMinAndMax) {
  Bound B = Bound::lower(c(20));
  B.merge(Bound::lower(var("h") * 8 + c(11)));
  EXPECT_EQ(B.degree(), 1u);
  EXPECT_EQ(B.minDegree(), 0u);
}

TEST(Bound, EqualsUpToConstantAccepts) {
  Bound A = Bound::upper(var("n") * 20 + c(8));
  Bound B = Bound::upper(var("n") * 20 + c(12));
  EXPECT_TRUE(A.equalsUpToConstant(B, 4));
  EXPECT_FALSE(A.equalsUpToConstant(B, 3));
}

TEST(Bound, EqualsUpToConstantRejectsDifferentShape) {
  Bound A = Bound::upper(var("n") * 20 + c(8));
  Bound B = Bound::upper(var("p") * 20 + c(8));
  EXPECT_FALSE(A.equalsUpToConstant(B, 1000000));
}

TEST(Bound, EqualsUpToConstantNeedsBothDirections) {
  Bound A = Bound::upper(var("n"));
  Bound B = Bound::upper(var("n"));
  B.merge(Bound::upper(var("p")));
  // Every member of A is matched in B, but B's "p" member has no partner.
  EXPECT_FALSE(A.equalsUpToConstant(B, 10));
}

TEST(BoundRange, ExactAndStr) {
  BoundRange R = BoundRange::exact(8);
  EXPECT_EQ(R.str(), "[8, 8]");
  BoundRange P = BoundRange::exactPoly(var("g") * 21);
  EXPECT_EQ(P.str(), "[21*g, 21*g]");
}

TEST(BoundRange, SumAddsBothEnds) {
  BoundRange R = BoundRange::exact(3) + BoundRange::exact(4);
  EXPECT_EQ(R.str(), "[7, 7]");
}

TEST(BoundRange, MergeUnionWidens) {
  BoundRange R = BoundRange::exact(8);
  R.mergeUnion(BoundRange::exactPoly(var("g") * 23 + c(10)));
  std::map<std::string, int64_t> E{{"g", 100}};
  EXPECT_EQ(R.Lo.evaluate(E), 8);
  EXPECT_EQ(R.Hi.evaluate(E), 2310);
}

TEST(BoundRange, ScaleByTripsUsesMinAndMaxTrips) {
  // Body cost in [2, 5], trips in [n, n+1].
  BoundRange Body(Bound::lower(c(2)), Bound::upper(c(5)));
  BoundRange Trips(Bound::lower(var("n")), Bound::upper(var("n") + c(1)));
  BoundRange Total = Body.scaleByTrips(Trips);
  std::map<std::string, int64_t> E{{"n", 10}};
  EXPECT_EQ(Total.Lo.evaluate(E), 20);
  EXPECT_EQ(Total.Hi.evaluate(E), 55);
}

TEST(BoundRange, VariablesCollectsBothEnds) {
  BoundRange R(Bound::lower(var("a")), Bound::upper(var("b") + var("a")));
  EXPECT_EQ(R.variables(), (std::vector<std::string>{"a", "b"}));
}

//===----------------------------------------------------------------------===//
// Property sweep: Bound evaluation always bounds its members' evaluations.
//===----------------------------------------------------------------------===//

class BoundEnvelope : public ::testing::TestWithParam<int> {};

TEST_P(BoundEnvelope, MaxEnvelopeDominatesEveryMember) {
  int Seed = GetParam();
  Bound B = Bound::upper(var("x") * (Seed % 5) + c(Seed % 17));
  B.merge(Bound::upper(var("y") * ((Seed + 3) % 4) + c(Seed % 7)));
  B.merge(Bound::upper(c(Seed % 29)));
  std::map<std::string, int64_t> E{{"x", (Seed * 7) % 13},
                                   {"y", (Seed * 11) % 9}};
  int64_t Env = B.evaluate(E);
  for (const CostPoly &P : B.polys())
    EXPECT_GE(Env, P.evaluate(E));
}

TEST_P(BoundEnvelope, MinEnvelopeIsBelowEveryMember) {
  int Seed = GetParam();
  Bound B = Bound::lower(var("x") * (Seed % 5) + c(Seed % 17));
  B.merge(Bound::lower(var("y") * ((Seed + 3) % 4) + c(Seed % 7)));
  std::map<std::string, int64_t> E{{"x", (Seed * 7) % 13},
                                   {"y", (Seed * 11) % 9}};
  int64_t Env = B.evaluate(E);
  for (const CostPoly &P : B.polys())
    EXPECT_LE(Env, P.evaluate(E));
}

TEST_P(BoundEnvelope, MergePreservesEnvelopeSemantics) {
  // Pruning members must not change the pointwise max over the
  // non-negative box (checked at a few sample points).
  int Seed = GetParam();
  CostPoly P1 = var("x") * (Seed % 4) + c(Seed % 23);
  CostPoly P2 = var("x") * ((Seed + 1) % 4) + c((Seed * 3) % 23);
  Bound Pruned = Bound::upper(P1);
  Pruned.merge(Bound::upper(P2));
  for (int64_t X : {0, 1, 5, 100}) {
    std::map<std::string, int64_t> E{{"x", X}};
    int64_t Expected = std::max(P1.evaluate(E), P2.evaluate(E));
    EXPECT_EQ(Pruned.evaluate(E), Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundEnvelope, ::testing::Range(0, 20));

} // namespace
