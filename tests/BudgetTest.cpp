//===- BudgetTest.cpp - Resource governance / fail-soft tests ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial budget tests: programs designed to blow the trail-tree,
/// automaton-state, join, and wall-clock budgets must degrade to Unknown
/// with a structured DegradationReason — never hang, abort, or (worst of
/// all) claim Safe on a truncated analysis.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/Blazer.h"
#include "selfcomp/SelfComposition.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

/// A refinement-hungry program: a secret branch choosing between loops of
/// different degree, behind a pile of low branches — the driver wants many
/// splits and many zone fixpoints before it can decide anything.
const char *AdversarialSource = R"(
  fn adversary(secret high: int, public low: int, public a: int,
               public b: int, public c: int) {
    var i: int = 0;
    var j: int = 0;
    var acc: int = 0;
    if (a > 0) { acc = acc + 1; } else { acc = acc + 2; }
    if (b > 0) { acc = acc + 3; } else { acc = acc + 4; }
    if (c > 0) { acc = acc + 5; } else { acc = acc + 6; }
    if (high == 0) {
      i = 0;
      while (i < low) {
        j = 0;
        while (j < low) { j = j + 1; }
        i = i + 1;
      }
    } else {
      i = low;
      while (i > 0) { i = i - 1; }
    }
  }
)";

/// The known-safe Example-1 program for verdict-preservation checks.
const char *SafeSource = R"(
  fn foo(secret high: int, public low: int) {
    var i: int = 0;
    if (high == 0) {
      i = 0;
      while (i < low) { i = i + 1; }
    } else {
      i = low;
      while (i > 0) { i = i - 1; }
    }
  }
)";

BlazerOptions optionsWith(BudgetLimits Limits) {
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  Opt.Budget = Limits;
  return Opt;
}

//===----------------------------------------------------------------------===//
// AnalysisBudget unit behavior
//===----------------------------------------------------------------------===//

TEST(Budget, UnlimitedNeverTrips) {
  AnalysisBudget B;
  for (int I = 0; I < 10000; ++I) {
    EXPECT_TRUE(B.countStates());
    EXPECT_TRUE(B.countJoins());
    EXPECT_TRUE(B.countTrailNodes());
    EXPECT_TRUE(B.checkpoint());
  }
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.reason().Kind, BudgetKind::None);
  EXPECT_EQ(B.usage().States, 10000u);
}

TEST(Budget, StateLimitTripsAtThreshold) {
  BudgetLimits L;
  L.MaxStates = 5;
  AnalysisBudget B(L);
  EXPECT_TRUE(B.countStates(5)); // Exactly at the limit: still fine.
  EXPECT_FALSE(B.countStates()); // One past: trips.
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason().Kind, BudgetKind::States);
  EXPECT_EQ(B.reason().Used, 6u);
  EXPECT_EQ(B.reason().Limit, 5u);
  // Every subsequent operation keeps reporting exhaustion.
  EXPECT_FALSE(B.countJoins());
  EXPECT_FALSE(B.checkpoint());
}

TEST(Budget, FirstTripWins) {
  BudgetLimits L;
  L.MaxStates = 1;
  L.MaxJoins = 1;
  AnalysisBudget B(L);
  EXPECT_FALSE(B.countStates(2));
  EXPECT_FALSE(B.countJoins(2)); // Ignored: already exhausted.
  EXPECT_EQ(B.reason().Kind, BudgetKind::States);
}

TEST(Budget, ZeroDeadlineFastPath) {
  // An already-expired deadline must trip on the very first checkpoint,
  // before any real work happens — no 32-call amortization window.
  BudgetLimits L;
  L.TimeoutSeconds = 1e-9;
  AnalysisBudget B(L);
  EXPECT_FALSE(B.checkpoint());
  EXPECT_EQ(B.reason().Kind, BudgetKind::Deadline);
}

TEST(Budget, ExternalCancelFlag) {
  std::atomic<bool> Cancel{false};
  BudgetLimits L;
  L.CancelFlag = &Cancel;
  AnalysisBudget B(L);
  EXPECT_TRUE(B.checkpoint());
  Cancel.store(true);
  // The amortized poll may skip a few calls; within 32 it must land.
  bool SawTrip = false;
  for (int I = 0; I < 64 && !SawTrip; ++I)
    SawTrip = !B.checkpoint();
  EXPECT_TRUE(SawTrip);
  EXPECT_EQ(B.reason().Kind, BudgetKind::Cancelled);
}

TEST(Budget, PhaseScopeLabelsTrips) {
  BudgetLimits L;
  L.MaxStates = 1;
  AnalysisBudget B(L);
  BudgetScope Scope(&B);
  {
    PhaseScope Phase("unit-test-phase");
    BudgetScope::current()->countStates(2);
  }
  EXPECT_EQ(B.reason().Phase, "unit-test-phase");
  EXPECT_NE(B.reason().str().find("unit-test-phase"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Concurrent sharing (the parallel driver's contract)
//===----------------------------------------------------------------------===//

TEST(BudgetConcurrent, SharedScopesAggregateExactlyAndObserveCancel) {
  // The parallel trail-tree analysis shares one AnalysisBudget across its
  // worker pool: every worker installs its own BudgetScope on the same
  // budget. Counters must aggregate without losing updates, and a single
  // requestCancel() must stop every worker at its next checkpoint.
  AnalysisBudget B;
  const unsigned Workers = 8;
  const uint64_t PerWorker = 10'000;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> DoneCounting{0};
  std::atomic<unsigned> Stopped{0};
  for (unsigned W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      BudgetScope Scope(&B);
      PhaseScope Phase(W % 2 ? "worker-odd" : "worker-even");
      AnalysisBudget *Cur = BudgetScope::current();
      ASSERT_EQ(Cur, &B);
      for (uint64_t I = 0; I < PerWorker; ++I) {
        Cur->countStates();
        Cur->countJoins(2);
        Cur->countTrailNodes();
      }
      DoneCounting.fetch_add(1);
      // One worker cancels once every thread has finished counting (a
      // tripped budget stops accumulating, by contract); the rest spin on
      // checkpoints until the cancellation reaches them.
      if (W == 0) {
        while (DoneCounting.load() != Workers) {
        }
        Cur->requestCancel();
      }
      while (Cur->checkpoint()) {
      }
      Stopped.fetch_add(1);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Stopped.load(), Workers); // Every worker saw the cancellation.
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason().Kind, BudgetKind::Cancelled);
  // Exact aggregation: no increments were lost to races.
  EXPECT_EQ(B.usage().States, Workers * PerWorker);
  EXPECT_EQ(B.usage().Joins, Workers * PerWorker * 2);
  EXPECT_EQ(B.usage().TrailNodes, Workers * PerWorker);
}

TEST(BudgetConcurrent, FirstTripWinsAcrossThreads) {
  // Many threads racing past a step limit: exactly one trip record is
  // frozen, and it names a phase some thread was actually in.
  BudgetLimits L;
  L.MaxStates = 1000;
  AnalysisBudget B(L);
  const unsigned Workers = 8;
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Workers; ++W) {
    Threads.emplace_back([&] {
      BudgetScope Scope(&B);
      PhaseScope Phase("race-phase");
      for (int I = 0; I < 1000; ++I)
        if (!BudgetScope::current()->countStates())
          break;
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.reason().Kind, BudgetKind::States);
  EXPECT_EQ(B.reason().Phase, "race-phase");
  EXPECT_GT(B.reason().Used, 1000u);
  EXPECT_EQ(B.reason().Limit, 1000u);
}

//===----------------------------------------------------------------------===//
// Driver fail-soft behavior
//===----------------------------------------------------------------------===//

TEST(BudgetDriver, TinyDeadlineDegradesToUnknownPromptly) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.TimeoutSeconds = 1e-9; // Expired before the analysis even starts.
  auto T0 = std::chrono::steady_clock::now();
  BlazerResult R = analyzeFunction(F, optionsWith(L));
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  EXPECT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::Deadline);
  EXPECT_LT(Elapsed, 2.0); // The fast path: no real work happens.
  // The partial tree (at least the root) is kept.
  ASSERT_FALSE(R.Tree.empty());
  // And the degradation is surfaced in the rendered tree.
  EXPECT_NE(R.treeString(F).find("degraded:"), std::string::npos);
  EXPECT_NE(R.treeString(F).find("verdict: unknown"), std::string::npos);
}

TEST(BudgetDriver, StateBudgetDegradesToUnknown) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.MaxStates = 10; // The most general trail alone needs more.
  BlazerResult R = analyzeFunction(F, optionsWith(L));
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::States);
  EXPECT_GT(R.Usage.States, 10u);
}

TEST(BudgetDriver, JoinBudgetDegradesToUnknown) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.MaxJoins = 5; // The first zone fixpoint needs more.
  BlazerResult R = analyzeFunction(F, optionsWith(L));
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::Joins);
}

TEST(BudgetDriver, TrailNodeBudgetDegradesToUnknown) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.MaxTrailNodes = 1; // Room for the root, none for any split.
  BlazerResult R = analyzeFunction(F, optionsWith(L));
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::TrailNodes);
  // No truncated children were adopted: the root is the whole tree.
  EXPECT_EQ(R.Tree.size(), 1u);
}

TEST(BudgetDriver, PreCancelledFlagDegradesToUnknown) {
  CfgFunction F = compile(SafeSource);
  std::atomic<bool> Cancel{true};
  BudgetLimits L;
  L.CancelFlag = &Cancel;
  BlazerResult R = analyzeFunction(F, optionsWith(L));
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::Cancelled);
}

TEST(BudgetDriver, GenerousBudgetPreservesVerdict) {
  CfgFunction F = compile(SafeSource);
  BlazerResult Unlimited = analyzeFunction(F, optionsWith(BudgetLimits{}));
  EXPECT_EQ(Unlimited.Verdict, VerdictKind::Safe);
  EXPECT_FALSE(Unlimited.Degradation.tripped());

  BudgetLimits L;
  L.TimeoutSeconds = 300;
  L.MaxStates = 10'000'000;
  L.MaxJoins = 10'000'000;
  L.MaxTrailNodes = 100'000;
  BlazerResult Governed = analyzeFunction(F, optionsWith(L));
  EXPECT_EQ(Governed.Verdict, VerdictKind::Safe);
  EXPECT_FALSE(Governed.Degradation.tripped());
  EXPECT_GT(Governed.Usage.States, 0u);
  EXPECT_GT(Governed.Usage.Joins, 0u);
}

TEST(BudgetDriver, TrippedBudgetNeverClaimsSafe) {
  // Sweep tight budgets over a program whose true verdict is Safe: every
  // degraded outcome must be Unknown, never a spurious Safe (an interrupted
  // analysis proves nothing) — and with these all-degraded bounds no
  // Attack can be fabricated either.
  CfgFunction F = compile(SafeSource);
  for (uint64_t Max : {1u, 2u, 5u, 10u, 50u, 200u}) {
    BudgetLimits L;
    L.MaxJoins = Max;
    BlazerResult R = analyzeFunction(F, optionsWith(L));
    if (R.Degradation.tripped())
      EXPECT_EQ(R.Verdict, VerdictKind::Unknown) << "MaxJoins=" << Max;
    else
      EXPECT_EQ(R.Verdict, VerdictKind::Safe) << "MaxJoins=" << Max;
  }
}

//===----------------------------------------------------------------------===//
// Capacity, self-composition, and benchmark entry points
//===----------------------------------------------------------------------===//

TEST(BudgetCapacity, TrippedBudgetForcesUnknownCapacity) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.TimeoutSeconds = 1e-9;
  ChannelCapacityResult R =
      analyzeChannelCapacity(F, 2, optionsWith(L));
  EXPECT_FALSE(R.Known);
  EXPECT_FALSE(R.Bounded);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::Deadline);
}

TEST(BudgetCapacity, NonPositiveQIsRecoverable) {
  CfgFunction F = compile(SafeSource);
  ChannelCapacityResult R = analyzeChannelCapacity(F, 0);
  EXPECT_FALSE(R.Known);
  EXPECT_FALSE(R.Bounded);
  R = analyzeChannelCapacity(F, -3);
  EXPECT_FALSE(R.Known);
}

TEST(BudgetSelfComp, TrippedBudgetDegradesBaseline) {
  CfgFunction F = compile(AdversarialSource);
  BudgetLimits L;
  L.TimeoutSeconds = 1e-9;
  SelfCompResult R = verifyBySelfComposition(F, 32, L);
  EXPECT_FALSE(R.Verified);
  EXPECT_FALSE(R.GapBounded);
  ASSERT_TRUE(R.Degradation.tripped());
  EXPECT_EQ(R.Degradation.Kind, BudgetKind::Deadline);
}

TEST(BudgetSelfComp, UnlimitedBaselineUnchanged) {
  CfgFunction F = compile(SafeSource);
  SelfCompResult Plain = verifyBySelfComposition(F, 32);
  EXPECT_FALSE(Plain.Degradation.tripped());
}

TEST(BudgetBenchmarks, RunBenchmarkSurvivesTimeout) {
  const BenchmarkProgram *B = findBenchmark("modPow1_safe");
  ASSERT_NE(B, nullptr);
  BudgetLimits L;
  L.TimeoutSeconds = 1e-9;
  BlazerResult R = runBenchmark(*B, L);
  EXPECT_EQ(R.Verdict, VerdictKind::Unknown);
  EXPECT_TRUE(R.Degradation.tripped());
}

TEST(BudgetBenchmarks, RunBenchmarkUnlimitedMatchesExpectation) {
  const BenchmarkProgram *B = findBenchmark("loopAndbranch_safe");
  if (!B)
    B = &allBenchmarks().front();
  BlazerResult R = runBenchmark(*B);
  EXPECT_FALSE(R.Degradation.tripped());
  EXPECT_EQ(R.Verdict, B->Expected);
}

} // namespace
