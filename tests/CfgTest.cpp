//===- CfgTest.cpp - Tests for CFG lowering and the cost model -------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cfg.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

TEST(Cfg, StraightLineLowersToEntryPlusExit) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; x = 2; }");
  // Entry block with both assignments + implicit return, plus the exit.
  EXPECT_EQ(F.blockCount(), 2u);
  EXPECT_EQ(F.block(F.Entry).Instrs.size(), 2u);
  EXPECT_EQ(F.block(F.Entry).Term, BasicBlock::TermKind::Return);
  EXPECT_EQ(F.block(F.Exit).Term, BasicBlock::TermKind::Exit);
}

TEST(Cfg, IfLowersToDiamond) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }");
  const BasicBlock &Entry = F.block(F.Entry);
  ASSERT_EQ(Entry.Term, BasicBlock::TermKind::Branch);
  EXPECT_NE(Entry.TrueSucc, Entry.FalseSucc);
  // Both arms must reach a common join.
  const BasicBlock &T = F.block(Entry.TrueSucc);
  const BasicBlock &E = F.block(Entry.FalseSucc);
  ASSERT_EQ(T.Term, BasicBlock::TermKind::Jump);
  ASSERT_EQ(E.Term, BasicBlock::TermKind::Jump);
  EXPECT_EQ(T.TrueSucc, E.TrueSucc);
}

TEST(Cfg, WhileLowersToHeaderBodyBackedge) {
  CfgFunction F = compile(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  // Find the branch block (loop header).
  const BasicBlock *Header = nullptr;
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch)
      Header = &B;
  ASSERT_NE(Header, nullptr);
  // The body jumps back to the header.
  const BasicBlock &Body = F.block(Header->TrueSucc);
  EXPECT_EQ(Body.Term, BasicBlock::TermKind::Jump);
  EXPECT_EQ(Body.TrueSucc, Header->Id);
}

TEST(Cfg, ReturnEdgesTargetExit) {
  CfgFunction F = compile(
      "fn f(public x: int) -> int { if (x > 0) { return 1; } return 2; }");
  int Returns = 0;
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Return) {
      ++Returns;
      EXPECT_EQ(B.TrueSucc, F.Exit);
    }
  EXPECT_EQ(Returns, 2);
}

TEST(Cfg, UnreachableCodeIsPruned) {
  CfgFunction F = compile(
      "fn f() -> int { return 1; skip; skip; skip; }");
  // Just entry (with return) and exit survive.
  EXPECT_EQ(F.blockCount(), 2u);
}

TEST(Cfg, EdgesAreSortedUnique) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  std::vector<Edge> Es = F.edges();
  for (size_t I = 1; I < Es.size(); ++I)
    EXPECT_TRUE(Es[I - 1] < Es[I]);
}

TEST(Cfg, PredecessorsMatchSuccessors) {
  CfgFunction F = compile(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  auto Preds = F.predecessors();
  size_t EdgeCount = 0;
  for (const BasicBlock &B : F.Blocks)
    EdgeCount += B.successors().size();
  size_t PredCount = 0;
  for (const auto &P : Preds)
    PredCount += P.size();
  EXPECT_EQ(EdgeCount, PredCount);
  for (const BasicBlock &B : F.Blocks)
    for (int S : B.successors()) {
      const auto &Ps = Preds[S];
      EXPECT_NE(std::find(Ps.begin(), Ps.end(), B.Id), Ps.end());
    }
}

TEST(Cfg, ParamLevelLookup) {
  CfgFunction F = compile("fn f(public a: int, secret b: int) { }");
  EXPECT_EQ(F.paramLevel("a"), SecurityLevel::Public);
  EXPECT_EQ(F.paramLevel("b"), SecurityLevel::Secret);
  EXPECT_EQ(F.paramLevel("nonparam"), SecurityLevel::Public);
}

//===----------------------------------------------------------------------===//
// Machine-model costs (§5: "each bytecode instruction ... a single unit")
//===----------------------------------------------------------------------===//

TEST(CfgCost, SimpleAssignCost) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; }");
  const Instr &I = F.block(F.Entry).Instrs[0];
  // Store (1) + literal push (1).
  EXPECT_EQ(F.instrCost(I), 2);
}

TEST(CfgCost, ExpressionCostCountsOperations) {
  CfgFunction F = compile("fn f(public x: int, public a: int[]) "
                          "{ x = a[x + 1] * 2; }");
  const Instr &I = F.block(F.Entry).Instrs[0];
  // store1 + mul1 + lit1 + arrayload2 + add1 + var1 + lit1 = 8.
  EXPECT_EQ(F.instrCost(I), 8);
}

TEST(CfgCost, BuiltinChargesSummary) {
  CfgFunction F = compile("fn f(public x: int) { x = md5(x); }");
  const Instr &I = F.block(F.Entry).Instrs[0];
  // store1 + call(1 + 860) + arg1.
  EXPECT_EQ(F.instrCost(I), 863);
}

TEST(CfgCost, BranchTerminatorCost) {
  CfgFunction F = compile("fn f(public x: int) { if (x > 0) { skip; } }");
  const BasicBlock &Entry = F.block(F.Entry);
  // branch1 + cmp1 + var1 + lit1.
  EXPECT_EQ(F.termCost(Entry), 4);
}

TEST(CfgCost, JumpAndExitAreFree) {
  CfgFunction F = compile(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  for (const BasicBlock &B : F.Blocks) {
    if (B.Term == BasicBlock::TermKind::Jump ||
        B.Term == BasicBlock::TermKind::Exit) {
      EXPECT_EQ(F.termCost(B), 0);
    }
  }
}

TEST(CfgCost, BlockCostSumsInstrsAndTerminator) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; x = x + 2; }");
  const BasicBlock &Entry = F.block(F.Entry);
  int64_t Sum = F.termCost(Entry);
  for (const Instr &I : Entry.Instrs)
    Sum += F.instrCost(I);
  EXPECT_EQ(F.blockCost(Entry), Sum);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(CfgPrint, StrMentionsEveryBlock) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  std::string S = F.str();
  for (const BasicBlock &B : F.Blocks)
    EXPECT_NE(S.find("bb" + std::to_string(B.Id)), std::string::npos);
}

TEST(CfgPrint, DotIsWellFormed) {
  CfgFunction F = compile("fn f(public x: int) { if (x > 0) { x = 1; } }");
  std::string Dot = F.toDot();
  EXPECT_EQ(Dot.rfind("digraph", 0), 0u);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
}

TEST(Cfg, CompileFunctionByName) {
  auto F = compileFunction("fn a() { } fn b(public x: int) { x = 1; }", "b",
                           BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F->Name, "b");
  auto Missing = compileFunction("fn a() { }", "zz",
                                 BuiltinRegistry::standard());
  EXPECT_FALSE(static_cast<bool>(Missing));
}

TEST(Cfg, CompileSingleRejectsMultiple) {
  auto F = compileSingleFunction("fn a() { } fn b() { }",
                                 BuiltinRegistry::standard());
  EXPECT_FALSE(static_cast<bool>(F));
}

} // namespace
