//===- CostModelTest.cpp - Differential cost-model oracle ------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost-model layer's contract, checked differentially:
///  - spec grammar: parse/str round-trips, canonical forms, and the
///    single-line diagnostics for every malformed-spec class;
///  - unit equivalence: a CostEvaluator over the unit model reproduces
///    CfgFunction's built-in per-block/instr/expr costs bit-for-bit on
///    every benchmark, and the costed interpreter overload reproduces the
///    classic one run-for-run;
///  - unit identity: in unit mode the Table-1 verdicts and the refinement
///    tree are byte-identical to the paper pipeline at jobs 1, 2, and 8;
///  - the differential oracle: for each model, the most-general-trail
///    bounds computed by the abstract engine contain the concrete
///    interpreter's cost on >= 10k seeded runs (generated programs plus
///    the full benchmark suites);
///  - memaccess semantics: the surcharge fires exactly on secret-indexed
///    array accesses, identically in the interpreter and the static
///    per-site closure.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace blazer;

namespace {

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

CostModel parseOk(const std::string &Spec) {
  CostModel M;
  std::string Err;
  EXPECT_TRUE(CostModel::parse(Spec, &M, &Err)) << Spec << ": " << Err;
  return M;
}

std::string parseErr(const std::string &Spec) {
  CostModel M;
  std::string Err;
  EXPECT_FALSE(CostModel::parse(Spec, &M, &Err)) << Spec;
  EXPECT_FALSE(Err.empty()) << Spec;
  // The CLI prints this verbatim as its one-line diagnostic.
  EXPECT_EQ(Err.find('\n'), std::string::npos) << Spec << ": " << Err;
  return Err;
}

TEST(CostModelSpec, RoundTripsThroughCanonicalForm) {
  for (const char *Spec :
       {"unit", "weighted", "weighted:arith=3", "weighted:arith=3,call=2",
        "memaccess", "memaccess:8", "memaccess:16", "memaccess:0"}) {
    CostModel M = parseOk(Spec);
    CostModel Again = parseOk(M.str());
    EXPECT_EQ(M, Again) << Spec << " canonical " << M.str();
    EXPECT_EQ(M.str(), Again.str()) << Spec;
  }
  // Canonical forms are order-independent and drop unit-default noise.
  EXPECT_EQ(parseOk("weighted:call=2,arith=3").str(),
            parseOk("weighted:arith=3,call=2").str());
  EXPECT_EQ(parseOk("memaccess").str(), parseOk("memaccess:8").str());
  EXPECT_EQ(parseOk("weighted").str(), "weighted");
}

TEST(CostModelSpec, UnitWeightsReproduceDefaults) {
  CostModel Unit = parseOk("unit");
  CostModel EmptyWeighted = parseOk("weighted");
  for (const CostModel::Opcode &Op : CostModel::opcodes()) {
    EXPECT_EQ(Unit.weight(Op.Name), Op.UnitWeight) << Op.Name;
    EXPECT_EQ(EmptyWeighted.weight(Op.Name), Op.UnitWeight) << Op.Name;
  }
  CostModel W = parseOk("weighted:arith=3");
  EXPECT_EQ(W.weight("arith"), 3);
  EXPECT_EQ(W.weight("branch"), 1);
}

TEST(CostModelSpec, MalformedSpecsGetOneLineDiagnostics) {
  parseErr("");
  parseErr("quantum");                // Unknown model.
  parseErr("weighted:bogus=3");       // Unknown opcode.
  parseErr("weighted:arith=-1");      // Negative weight.
  parseErr("weighted:arith");         // Missing '='.
  parseErr("weighted:arith=nan");     // Non-numeric weight.
  parseErr("weighted:@/no/such/dir/weights.txt"); // Unreadable file.
  parseErr("memaccess:-4");           // Negative surcharge.
  parseErr("memaccess:many");         // Non-numeric surcharge.
  parseErr("unit:1");                 // Unit takes no arguments.
}

TEST(CostModelSpec, WeightFilesParseInBothFormats) {
  std::string Dir = ::testing::TempDir();
  auto WriteFile = [&](const std::string &Name, const std::string &Body) {
    std::string Path = Dir + "/" + Name;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr) << Path;
    std::fputs(Body.c_str(), F);
    std::fclose(F);
  };
  WriteFile("w.txt", "# comment\narith=3\ncall = 2\n\n");
  WriteFile("w.json", "{\"arith\": 3, \"call\": 2}");
  WriteFile("bad.txt", "arith=3\nbogus=1\n");
  CostModel Inline = parseOk("weighted:arith=3,call=2");
  EXPECT_EQ(parseOk("weighted:@" + Dir + "/w.txt"), Inline);
  EXPECT_EQ(parseOk("weighted:@" + Dir + "/w.json"), Inline);
  // File specs canonicalize to the inline spelling: the cache salt never
  // depends on the path the weights came from.
  EXPECT_EQ(parseOk("weighted:@" + Dir + "/w.txt").str(), Inline.str());
  parseErr("weighted:@" + Dir + "/bad.txt");
}

//===----------------------------------------------------------------------===//
// Unit equivalence
//===----------------------------------------------------------------------===//

std::vector<const BenchmarkProgram *> allSuites() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  for (const BenchmarkProgram &B : tableCtBenchmarks())
    Out.push_back(&B);
  return Out;
}

TEST(CostModelUnitEquivalence, ReproducesBuiltinCostsOnEveryBenchmark) {
  for (const BenchmarkProgram *B : allSuites()) {
    CfgFunction F = B->compile();
    CostEvaluator Unit(F, CostModel{});
    for (size_t I = 0; I < F.blockCount(); ++I) {
      const BasicBlock &Blk = F.block(static_cast<int>(I));
      EXPECT_EQ(Unit.blockCost(Blk), F.blockCost(Blk))
          << B->Name << " bb" << I;
      EXPECT_EQ(Unit.termCost(Blk), F.termCost(Blk)) << B->Name << " bb" << I;
      for (const Instr &Ins : Blk.Instrs)
        EXPECT_EQ(Unit.instrCost(Ins), F.instrCost(Ins)) << B->Name;
    }
  }
}

TEST(CostModelUnitEquivalence, CostedInterpreterMatchesClassicRunForRun) {
  InputGrid Grid;
  Grid.MaxAssignments = 64;
  for (const BenchmarkProgram *B : allSuites()) {
    CfgFunction F = B->compile();
    CostEvaluator Unit(F, CostModel{});
    for (const InputAssignment &In : enumerateInputs(F, Grid)) {
      TraceResult Classic = runFunction(F, In);
      TraceResult Costed = runFunction(F, In, Unit);
      EXPECT_EQ(Classic.Ok, Costed.Ok) << B->Name << " " << In.str();
      EXPECT_EQ(Classic.Cost, Costed.Cost) << B->Name << " " << In.str();
      EXPECT_EQ(Classic.Edges, Costed.Edges) << B->Name << " " << In.str();
    }
  }
}

TEST(CostModelUnitIdentity, Table1TreesByteIdenticalAcrossJobs) {
  // Unit mode is the paper pipeline: all 24 verdicts must match Table 1
  // and the refinement tree must be byte-identical at every job count
  // (the cost-model layer adds no nondeterminism).
  for (const BenchmarkProgram &B : allBenchmarks()) {
    EngineConfig Engine; // Cost defaults to unit.
    CfgFunction F = B.compile();
    BlazerResult Ref = runBenchmark(B, {}, /*Jobs=*/1, Engine);
    EXPECT_EQ(Ref.Verdict, B.Expected) << B.Name;
    std::string RefTree = Ref.treeString(F);
    for (int Jobs : {2, 8}) {
      BlazerResult R = runBenchmark(B, {}, Jobs, Engine);
      EXPECT_EQ(R.Verdict, Ref.Verdict) << B.Name << " jobs=" << Jobs;
      EXPECT_EQ(R.treeString(F), RefTree) << B.Name << " jobs=" << Jobs;
    }
  }
}

//===----------------------------------------------------------------------===//
// The differential oracle
//===----------------------------------------------------------------------===//

/// Deterministic xorshift RNG (no global state, reproducible per seed).
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint32_t S;
};

/// A structured generator in the RandomProgramTest mold, extended with a
/// secret array parameter so the memaccess surcharge has sites to fire on:
/// params (secret h, public l, secret k: int[]), bounded counter loops,
/// and occasional k[...] reads with both public and secret-derived
/// indices.
class CostProgramGen {
public:
  explicit CostProgramGen(uint32_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "fn fuzz(secret h: int, public l: int, secret k: int[]) {\n";
    OS << "  var a: int = 0;\n  var b: int = 0;\n";
    emitBlock(2, 0);
    OS << "}\n";
    return OS.str();
  }

private:
  const char *scalar() {
    switch (R.range(0, 3)) {
    case 0:
      return "h";
    case 1:
      return "l";
    case 2:
      return "a";
    default:
      return "b";
    }
  }
  const char *target() { return R.chance(50) ? "a" : "b"; }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  std::string cond() {
    std::ostringstream C;
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    C << scalar() << " " << Ops[R.range(0, 5)] << " ";
    if (R.chance(50))
      C << R.range(-3, 5);
    else
      C << scalar();
    return C.str();
  }

  void emitAssign(int Depth) {
    indent(Depth);
    const char *T = target();
    switch (R.range(0, 4)) {
    case 0:
      OS << T << " = " << R.range(-4, 9) << ";\n";
      break;
    case 1:
      OS << T << " = " << scalar() << " + " << R.range(-2, 4) << ";\n";
      break;
    case 2:
      OS << T << " = " << T << " + " << scalar() << ";\n";
      break;
    case 3:
      // A guarded array read; the index is public ("l"-derived) or secret
      // ("h"/"a"/"b" may be tainted), so memaccess sees both site kinds.
      emitRead(Depth, T);
      break;
    default:
      OS << "skip;\n";
      break;
    }
  }

  void emitRead(int Depth, const char *T) {
    const char *Idx = scalar();
    OS << "if (" << Idx << " >= 0) {\n";
    indent(Depth + 1);
    OS << "if (" << Idx << " < k.length) { " << T << " = k[" << Idx
       << "]; }\n";
    indent(Depth);
    OS << "}\n";
  }

  void emitLoop(int Depth) {
    int Id = NextLoop++;
    std::string V = "i" + std::to_string(Id);
    indent(Depth);
    OS << "var " << V << ": int = 0;\n";
    indent(Depth);
    std::string Bound = R.chance(60) ? std::string(R.chance(50) ? "l" : "h")
                                     : std::to_string(R.range(0, 6));
    OS << "while (" << V << " < " << Bound << ") {\n";
    int Stmts = R.range(1, 2);
    for (int I = 0; I < Stmts; ++I)
      emitStmt(Depth + 1, /*AllowLoop=*/false);
    indent(Depth + 1);
    OS << V << " = " << V << " + 1;\n";
    indent(Depth);
    OS << "}\n";
  }

  void emitIf(int Depth, int Budget) {
    indent(Depth);
    OS << "if (" << cond() << ") {\n";
    emitBlock(Depth + 1, Budget);
    if (R.chance(70)) {
      indent(Depth);
      OS << "} else {\n";
      emitBlock(Depth + 1, Budget);
    }
    indent(Depth);
    OS << "}\n";
  }

  void emitStmt(int Depth, bool AllowLoop, int Budget = 0) {
    int Kind = R.range(0, 9);
    if (Kind < 6 || Depth > 4) {
      emitAssign(Depth);
    } else if (Kind < 8 && AllowLoop) {
      emitLoop(Depth);
    } else {
      emitIf(Depth, Budget);
    }
  }

  void emitBlock(int Depth, int Budget) {
    int Stmts = R.range(1, 3);
    for (int I = 0; I < Stmts; ++I)
      emitStmt(Depth, /*AllowLoop=*/Budget < 2, Budget + 1);
  }

  Rng R;
  std::ostringstream OS;
  int NextLoop = 0;
};

CfgFunction compileFuzz(uint32_t Seed, std::string *SrcOut = nullptr) {
  CostProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  if (SrcOut)
    *SrcOut = Src;
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F))
      << (F ? "" : F.diag().str()) << "\n"
      << Src;
  return F.take();
}

/// The evaluation environment for symbolic bounds: the int params plus one
/// "<array>.len" symbol per array param.
std::map<std::string, int64_t> boundEnv(const InputAssignment &In) {
  std::map<std::string, int64_t> Env(In.Ints.begin(), In.Ints.end());
  for (const auto &[Name, Elems] : In.Arrays)
    Env[Name + ".len"] = static_cast<int64_t>(Elems.size());
  return Env;
}

/// Checks Lo <= concrete cost <= Hi for every grid input of \p F under
/// \p Model; returns the number of concrete runs exercised.
int checkOracle(const CfgFunction &F, const CostModel &Model,
                const InputGrid &Grid, const std::string &Tag) {
  EngineConfig Engine;
  Engine.Cost = Model;
  BoundAnalysis BA(F, /*InputPins=*/{}, /*Pool=*/nullptr, /*Cache=*/nullptr,
                   Engine);
  TrailBoundResult R = BA.analyzeTrail(BA.mostGeneralTrail());
  EXPECT_TRUE(R.Feasible) << Tag;
  if (!R.Feasible)
    return 0;
  CostEvaluator Costs(F, Model);
  int Runs = 0;
  for (const InputAssignment &In : enumerateInputs(F, Grid)) {
    TraceResult TR = runFunction(F, In, Costs);
    if (!TR.Ok)
      continue; // Step limit or arithmetic fault: outside the claim.
    ++Runs;
    std::map<std::string, int64_t> Env = boundEnv(In);
    EXPECT_LE(R.Lo.evaluate(Env), TR.Cost)
        << Tag << " model=" << Model.str() << " input " << In.str()
        << " bounds " << R.str();
    if (R.hasUpper()) {
      EXPECT_GE(R.Hi->evaluate(Env), TR.Cost)
          << Tag << " model=" << Model.str() << " input " << In.str()
          << " bounds " << R.str();
    }
  }
  return Runs;
}

class CostOracle : public ::testing::TestWithParam<const char *> {};

TEST_P(CostOracle, BoundsContainEveryConcreteRun) {
  CostModel Model = parseOk(GetParam());

  int Runs = 0;
  // The full benchmark suites: real loops, arrays, builtins, early exits.
  InputGrid BenchGrid;
  BenchGrid.MaxAssignments = 256;
  for (const BenchmarkProgram *B : allSuites())
    Runs += checkOracle(B->compile(), Model, BenchGrid, B->Name);

  // Seeded generated programs: 300 seeds x a 6x6 int grid (plus the secret
  // array) comfortably clears the 10k-run floor per model.
  InputGrid FuzzGrid;
  FuzzGrid.IntValues = {-2, -1, 0, 1, 3, 6};
  FuzzGrid.ArrayLengths = {0, 4};
  FuzzGrid.ElementValues = {5};
  for (uint32_t Seed = 0; Seed < 300; ++Seed) {
    std::string Src;
    CfgFunction F = compileFuzz(Seed, &Src);
    SCOPED_TRACE(Src);
    Runs += checkOracle(F, Model, FuzzGrid, "seed" + std::to_string(Seed));
  }
  EXPECT_GE(Runs, 10000) << "oracle under-sampled for " << Model.str();
}

INSTANTIATE_TEST_SUITE_P(Models, CostOracle,
                         ::testing::Values("unit",
                                           "weighted:arith=3,call=2,arrayread=5",
                                           "memaccess:8"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// MemAccess semantics
//===----------------------------------------------------------------------===//

TEST(CostModelMemAccess, SurchargeFiresExactlyOnSecretIndexedReads) {
  auto F = compileSingleFunction(R"(
    fn f(secret s: int, public p: int, public t: int[]) {
      var x: int = 0;
      var si: int = s;
      if (si >= 0) { if (si < t.length) { x = t[si]; } }
      if (p >= 0) { if (p < t.length) { x = t[p]; } }
    }
  )",
                                 BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(F)) << F.diag().str();
  CfgFunction Fn = F.take();

  CostEvaluator Mem(Fn, parseOk("memaccess:10"));
  // The explicit-flow closure: si copies s; p stays public.
  EXPECT_TRUE(Mem.secretDerived("si"));
  EXPECT_FALSE(Mem.secretDerived("p"));

  InputAssignment In;
  In.Arrays["t"] = {7, 7, 7, 7};
  CostEvaluator Unit(Fn, CostModel{});
  // Both reads execute: exactly one is secret-indexed, so the memaccess
  // run costs exactly one surcharge more than unit.
  In.Ints["s"] = 2;
  In.Ints["p"] = 2;
  EXPECT_EQ(runFunction(Fn, In, Mem).Cost, runFunction(Fn, In, Unit).Cost + 10);
  // Secret read skipped (negative index): costs coincide... except the
  // surcharge is per-site *and* per-execution, so skipping the site drops
  // the extra charge entirely.
  In.Ints["s"] = -1;
  EXPECT_EQ(runFunction(Fn, In, Mem).Cost, runFunction(Fn, In, Unit).Cost);
}

} // namespace
