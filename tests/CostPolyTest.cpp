//===- CostPolyTest.cpp - Unit/property tests for CostPoly -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CostPoly.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CostPoly var(const std::string &N) { return CostPoly::variable(N); }
CostPoly c(int64_t V) { return CostPoly::constant(V); }

TEST(CostPoly, ZeroIsConstantAndZero) {
  CostPoly P;
  EXPECT_TRUE(P.isZero());
  EXPECT_TRUE(P.isConstant());
  EXPECT_EQ(P.constantTerm(), 0);
  EXPECT_EQ(P.degree(), 0u);
  EXPECT_EQ(P.str(), "0");
}

TEST(CostPoly, ConstantRoundTrip) {
  EXPECT_EQ(c(42).constantTerm(), 42);
  EXPECT_TRUE(c(42).isConstant());
  EXPECT_FALSE(c(42).isZero());
  EXPECT_TRUE(c(0).isZero());
}

TEST(CostPoly, VariableBasics) {
  CostPoly X = var("x");
  EXPECT_FALSE(X.isConstant());
  EXPECT_EQ(X.degree(), 1u);
  EXPECT_EQ(X.variables(), std::vector<std::string>{"x"});
  EXPECT_EQ(X.str(), "x");
}

TEST(CostPoly, AdditionMergesTerms) {
  CostPoly P = var("x") + var("x") + c(3);
  EXPECT_EQ(P.coefficient({"x"}), 2);
  EXPECT_EQ(P.constantTerm(), 3);
  EXPECT_EQ(P.str(), "2*x + 3");
}

TEST(CostPoly, SubtractionCancelsToZero) {
  CostPoly P = var("x") * 3 + c(1);
  CostPoly D = P - P;
  EXPECT_TRUE(D.isZero());
}

TEST(CostPoly, MultiplicationDegrees) {
  CostPoly P = (var("x") + c(1)) * (var("y") + c(2));
  EXPECT_EQ(P.degree(), 2u);
  EXPECT_EQ(P.coefficient({"x", "y"}), 1);
  EXPECT_EQ(P.coefficient({"x"}), 2);
  EXPECT_EQ(P.coefficient({"y"}), 1);
  EXPECT_EQ(P.constantTerm(), 2);
}

TEST(CostPoly, MonomialOrderIsCanonical) {
  // x*y and y*x are the same monomial.
  CostPoly A = var("x") * var("y");
  CostPoly B = var("y") * var("x");
  EXPECT_EQ(A, B);
}

TEST(CostPoly, ScalarMultiplication) {
  CostPoly P = (var("x") + c(2)) * 5;
  EXPECT_EQ(P.coefficient({"x"}), 5);
  EXPECT_EQ(P.constantTerm(), 10);
  EXPECT_TRUE((P * 0).isZero());
}

TEST(CostPoly, SquareHasDegreeTwo) {
  CostPoly P = var("x") * var("x");
  EXPECT_EQ(P.degree(), 2u);
  EXPECT_EQ(P.coefficient({"x", "x"}), 1);
}

TEST(CostPoly, EvaluateSubstitutes) {
  CostPoly P = var("x") * 3 + var("y") * var("y") + c(7);
  std::map<std::string, int64_t> A{{"x", 2}, {"y", 4}};
  EXPECT_EQ(P.evaluate(A), 3 * 2 + 16 + 7);
}

TEST(CostPoly, EvaluateUsesDefaultForMissing) {
  CostPoly P = var("x") + var("missing");
  std::map<std::string, int64_t> A{{"x", 5}};
  EXPECT_EQ(P.evaluate(A, /*Default=*/10), 15);
  EXPECT_EQ(P.evaluate(A, /*Default=*/0), 5);
}

TEST(CostPoly, ConstantDifferenceDetected) {
  CostPoly A = var("n") * 23 + c(10);
  CostPoly B = var("n") * 23 + c(4);
  auto D = A.constantDifference(B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, 6);
}

TEST(CostPoly, ConstantDifferenceRejectsDifferentSlopes) {
  CostPoly A = var("n") * 23;
  CostPoly B = var("n") * 19;
  EXPECT_FALSE(A.constantDifference(B).has_value());
}

TEST(CostPoly, NonNegativeCoefficientCheck) {
  EXPECT_TRUE((var("x") * 3 + c(-5)).hasNonNegativeVarCoefficients());
  EXPECT_FALSE((var("x") * -1 + c(100)).hasNonNegativeVarCoefficients());
}

TEST(CostPoly, VariablesAreSortedUnique) {
  CostPoly P = var("b") + var("a") * var("b") + var("a");
  std::vector<std::string> V = P.variables();
  EXPECT_EQ(V, (std::vector<std::string>{"a", "b"}));
}

TEST(CostPoly, StrRendersNegativeLeading) {
  CostPoly P = CostPoly() - var("x");
  EXPECT_EQ(P.str(), "-x");
}

TEST(CostPoly, StrHigherDegreeFirst) {
  CostPoly P = c(1) + var("x") * var("x") + var("x");
  std::string S = P.str();
  EXPECT_LT(S.find("x*x"), S.find("+ x"));
}

//===----------------------------------------------------------------------===//
// Property sweeps: ring laws checked on a family of generated polynomials.
//===----------------------------------------------------------------------===//

class CostPolyRingLaws : public ::testing::TestWithParam<int> {
protected:
  /// Deterministic pseudo-random polynomial generator.
  static CostPoly make(int Seed) {
    CostPoly P;
    uint32_t S = static_cast<uint32_t>(Seed) * 2654435761u + 12345u;
    auto Next = [&S] {
      S ^= S << 13;
      S ^= S >> 17;
      S ^= S << 5;
      return S;
    };
    const char *Vars[] = {"x", "y", "z"};
    int Terms = 1 + Next() % 4;
    for (int T = 0; T < Terms; ++T) {
      CostPoly Mono = CostPoly::constant(
          static_cast<int64_t>(Next() % 11) - 5);
      int Deg = Next() % 3;
      for (int D = 0; D < Deg; ++D)
        Mono = Mono * CostPoly::variable(Vars[Next() % 3]);
      P += Mono;
    }
    return P;
  }

  static std::map<std::string, int64_t> assignment(int Seed) {
    return {{"x", Seed % 5}, {"y", (Seed * 3) % 7}, {"z", (Seed * 5) % 4}};
  }
};

TEST_P(CostPolyRingLaws, AdditionCommutes) {
  CostPoly A = make(GetParam());
  CostPoly B = make(GetParam() + 100);
  EXPECT_EQ(A + B, B + A);
}

TEST_P(CostPolyRingLaws, MultiplicationCommutes) {
  CostPoly A = make(GetParam());
  CostPoly B = make(GetParam() + 100);
  EXPECT_EQ(A * B, B * A);
}

TEST_P(CostPolyRingLaws, DistributesOverAddition) {
  CostPoly A = make(GetParam());
  CostPoly B = make(GetParam() + 100);
  CostPoly C = make(GetParam() + 200);
  EXPECT_EQ(A * (B + C), A * B + A * C);
}

TEST_P(CostPolyRingLaws, EvaluationIsHomomorphic) {
  CostPoly A = make(GetParam());
  CostPoly B = make(GetParam() + 100);
  auto Env = assignment(GetParam());
  EXPECT_EQ((A + B).evaluate(Env), A.evaluate(Env) + B.evaluate(Env));
  EXPECT_EQ((A * B).evaluate(Env), A.evaluate(Env) * B.evaluate(Env));
  EXPECT_EQ((A - B).evaluate(Env), A.evaluate(Env) - B.evaluate(Env));
}

TEST_P(CostPolyRingLaws, SubtractThenAddRoundTrips) {
  CostPoly A = make(GetParam());
  CostPoly B = make(GetParam() + 100);
  EXPECT_EQ((A - B) + B, A);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostPolyRingLaws, ::testing::Range(0, 25));

} // namespace
