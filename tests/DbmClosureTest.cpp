//===- DbmClosureTest.cpp - Incremental vs full closure differential test ---===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// addConstraint runs a single-constraint O(n^2) re-closure on closed
/// matrices; addConstraintFullClose is the original full Floyd-Warshall
/// kept behind a debug hook. The two must agree entry-for-entry on every
/// reachable zone — this harness drives mirrored twins through >10k random
/// constraint sequences (pure and mixed with forget/assign/join/meet/widen,
/// including the deliberately non-closed post-widening states) and asserts
/// byte-identical matrices and bottom flags after every operation.
///
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"
#include "support/EngineConfig.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

using namespace blazer;

namespace {

/// A pair of zones kept in lock-step: Inc takes the incremental
/// addConstraint path, Full the debug full-closure hook. Every mutation
/// goes through both; check() compares the observable state.
struct Twins {
  Dbm Inc;
  Dbm Full;
  std::vector<std::string> Names;

  explicit Twins(int NumVars) : Inc(Dbm::top(NumVars)), Full(Dbm::top(NumVars)) {
    for (int V = 1; V <= NumVars; ++V)
      Names.push_back("v" + std::to_string(V));
  }

  void check(const char *What, int Step) {
    ASSERT_EQ(Inc.isBottom(), Full.isBottom())
        << What << " step " << Step << ": bottom disagreement";
    ASSERT_TRUE(Inc.equals(Full))
        << What << " step " << Step << ": incremental " << Inc.str(Names)
        << " vs full " << Full.str(Names);
  }
};

/// Small constants: big enough for interesting negative cycles and slack,
/// small enough that saturating-free additions cannot overflow and the two
/// closure orders cannot diverge on UB.
int64_t smallConst(std::mt19937 &Rng) {
  return static_cast<int64_t>(static_cast<int>(Rng() % 17)) - 8;
}

//===----------------------------------------------------------------------===//
// Pure constraint sequences: 10k sequences x up to 12 constraints.
//===----------------------------------------------------------------------===//

TEST(DbmClosure, DifferentialPureConstraintSequences) {
  int Checked = 0;
  for (unsigned Seed = 0; Seed < 10000; ++Seed) {
    std::mt19937 Rng(Seed);
    int NumVars = 2 + static_cast<int>(Rng() % 5); // 2..6 client vars
    int Dim = NumVars + 1;
    Twins T(NumVars);
    int Steps = 3 + static_cast<int>(Rng() % 10);
    for (int Step = 0; Step < Steps; ++Step) {
      // -1 and Dim are out of range; both are part of the contract.
      int I = static_cast<int>(Rng() % (Dim + 2)) - 1;
      int J = static_cast<int>(Rng() % (Dim + 2)) - 1;
      int64_t C = smallConst(Rng);
      T.Inc.addConstraint(I, J, C);
      T.Full.addConstraintFullClose(I, J, C);
      T.check("pure", Step);
      ++Checked;
      if (T.Inc.isBottom())
        break; // Bottom absorbs; nothing left to compare.
    }
  }
  // The acceptance bar is >= 10k sequences; make the count visible.
  RecordProperty("constraints_checked", Checked);
  EXPECT_GE(Checked, 10000);
}

//===----------------------------------------------------------------------===//
// Mixed sequences: interleave lattice and transfer ops, including widening
// (which leaves matrices non-closed and must route the next addConstraint
// through the full-closure fallback in both twins identically).
//===----------------------------------------------------------------------===//

Dbm randomClosedZone(std::mt19937 &Rng, int NumVars) {
  Dbm D = Dbm::top(NumVars);
  int Steps = static_cast<int>(Rng() % 6);
  for (int S = 0; S < Steps && !D.isBottom(); ++S) {
    int I = static_cast<int>(Rng() % (NumVars + 1));
    int J = static_cast<int>(Rng() % (NumVars + 1));
    D.addConstraint(I, J, smallConst(Rng));
  }
  if (D.isBottom())
    return Dbm::top(NumVars);
  return D;
}

TEST(DbmClosure, DifferentialMixedOperationSequences) {
  for (unsigned Seed = 0; Seed < 2000; ++Seed) {
    std::mt19937 Rng(100000 + Seed);
    int NumVars = 2 + static_cast<int>(Rng() % 4); // 2..5 client vars
    Twins T(NumVars);
    for (int Step = 0; Step < 16; ++Step) {
      int V = 1 + static_cast<int>(Rng() % NumVars);
      int W = 1 + static_cast<int>(Rng() % NumVars);
      switch (Rng() % 8) {
      case 0:
      case 1:
      case 2: { // Constraints dominate real workloads.
        int I = static_cast<int>(Rng() % (NumVars + 1));
        int J = static_cast<int>(Rng() % (NumVars + 1));
        int64_t C = smallConst(Rng);
        T.Inc.addConstraint(I, J, C);
        T.Full.addConstraintFullClose(I, J, C);
        break;
      }
      case 3:
        T.Inc.forget(V);
        T.Full.forget(V);
        break;
      case 4: {
        int64_t C = smallConst(Rng);
        T.Inc.assignConst(V, C);
        T.Full.assignConst(V, C);
        break;
      }
      case 5: {
        int64_t C = smallConst(Rng);
        T.Inc.assignVarPlus(V, W, C);
        T.Full.assignVarPlus(V, W, C);
        break;
      }
      case 6: { // join or meet with a shared random zone.
        Dbm R = randomClosedZone(Rng, NumVars);
        if (Rng() % 2) {
          T.Inc.joinWith(R);
          T.Full.joinWith(R);
        } else {
          T.Inc.meetWith(R);
          T.Full.meetWith(R);
        }
        break;
      }
      case 7: { // Widen, then immediately constrain the non-closed state.
        Dbm R = randomClosedZone(Rng, NumVars);
        T.Inc.widenWith(R);
        T.Full.widenWith(R);
        int I = static_cast<int>(Rng() % (NumVars + 1));
        int J = static_cast<int>(Rng() % (NumVars + 1));
        int64_t C = smallConst(Rng);
        T.Inc.addConstraint(I, J, C);
        T.Full.addConstraintFullClose(I, J, C);
        break;
      }
      }
      T.check("mixed", Step);
      if (T.Inc.isBottom())
        break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Targeted cases the fuzzer could in principle miss.
//===----------------------------------------------------------------------===//

TEST(DbmClosure, IncrementalDetectsNegativeCycle) {
  Dbm D = Dbm::top(2);
  D.addConstraint(1, 2, -3); // x - y <= -3
  D.addConstraint(2, 1, 2);  // y - x <= 2  -> cycle weight -1
  EXPECT_TRUE(D.isBottom());
}

TEST(DbmClosure, IncrementalPropagatesThroughNewEdge) {
  Dbm D = Dbm::top(3);
  D.addConstraint(1, 0, 10); // x <= 10
  D.addConstraint(2, 1, -1); // y <= x - 1
  D.addConstraint(3, 2, -1); // z <= y - 1
  EXPECT_EQ(D.bound(2, 0), 9); // y <= 9 via x
  EXPECT_EQ(D.bound(3, 0), 8); // z <= 8 via y via x
  EXPECT_EQ(D.bound(3, 1), -2);
}

TEST(DbmClosure, PostWidenConstraintMatchesFullClosure) {
  auto Build = [](bool FullClose) {
    Dbm D = Dbm::top(2);
    D.addConstraint(1, 0, 5);
    D.addConstraint(0, 1, 0);
    Dbm Wider = Dbm::top(2);
    Wider.addConstraint(1, 0, 7);
    Wider.addConstraint(0, 1, 0);
    D.widenWith(Wider); // x-upper widens to Inf; matrix not re-closed.
    if (FullClose)
      D.addConstraintFullClose(1, 2, 1);
    else
      D.addConstraint(1, 2, 1);
    return D;
  };
  Dbm Inc = Build(false);
  Dbm Full = Build(true);
  EXPECT_TRUE(Inc.equals(Full));
}

TEST(DbmClosure, ClosurePolicyScopeKeepsResultsIdentical) {
  auto Build = [] {
    Dbm D = Dbm::top(3);
    D.addConstraint(1, 0, 4);
    D.addConstraint(2, 1, -2);
    D.addConstraint(0, 3, -1);
    D.addConstraint(3, 2, 0);
    return D;
  };
  Dbm Fast = Build();
  Dbm Slow = [&] {
    ClosurePolicyScope Scope(ClosureMode::Full);
    return Build();
  }();
  EXPECT_TRUE(Fast.equals(Slow));
}

TEST(DbmClosure, ClosurePolicyScopeNestsAndRestores) {
  EXPECT_EQ(ClosurePolicyScope::current(), ClosureMode::Incremental);
  {
    ClosurePolicyScope Outer(ClosureMode::Full);
    EXPECT_EQ(ClosurePolicyScope::current(), ClosureMode::Full);
    {
      ClosurePolicyScope Inner(ClosureMode::Incremental);
      EXPECT_EQ(ClosurePolicyScope::current(), ClosureMode::Incremental);
    }
    EXPECT_EQ(ClosurePolicyScope::current(), ClosureMode::Full);
  }
  EXPECT_EQ(ClosurePolicyScope::current(), ClosureMode::Incremental);
}

} // namespace
