//===- DbmTest.cpp - Tests for the zone (DBM) domain ------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Dbm.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

// Variable indices for a 3-variable zone.
constexpr int X = 1, Y = 2, Z3 = 3;

TEST(Dbm, TopHasNoConstraints) {
  Dbm D = Dbm::top(3);
  EXPECT_FALSE(D.isBottom());
  EXPECT_EQ(D.bound(X, Y), Dbm::Inf);
  EXPECT_FALSE(D.lowerOf(X).has_value());
  EXPECT_FALSE(D.upperOfOpt(X).has_value());
  EXPECT_EQ(D.str({"x", "y", "z"}), "<top>");
}

TEST(Dbm, BottomAbsorbsEverything) {
  Dbm B = Dbm::bottom(3);
  EXPECT_TRUE(B.isBottom());
  B.addConstraint(X, 0, 5);
  EXPECT_TRUE(B.isBottom());
  Dbm T = Dbm::top(3);
  T.meetWith(B);
  EXPECT_TRUE(T.isBottom());
}

TEST(Dbm, AddConstraintAndReadBack) {
  Dbm D = Dbm::top(3);
  D.addConstraint(X, 0, 10);  // x <= 10
  D.addConstraint(0, X, -2);  // x >= 2
  EXPECT_EQ(*D.upperOfOpt(X), 10);
  EXPECT_EQ(*D.lowerOf(X), 2);
}

TEST(Dbm, ClosurePropagatesTransitively) {
  Dbm D = Dbm::top(3);
  D.addConstraint(X, Y, 3);  // x - y <= 3
  D.addConstraint(Y, Z3, 4); // y - z <= 4
  EXPECT_EQ(D.bound(X, Z3), 7);
}

TEST(Dbm, ContradictionBecomesBottom) {
  Dbm D = Dbm::top(2);
  D.addConstraint(X, 0, 1);  // x <= 1
  D.addConstraint(0, X, -5); // x >= 5
  EXPECT_TRUE(D.isBottom());
}

TEST(Dbm, ExactDifferenceRequiresBothSides) {
  Dbm D = Dbm::top(3);
  D.addConstraint(X, Y, 4);
  EXPECT_FALSE(D.exactDifference(X, Y).has_value());
  D.addConstraint(Y, X, -4);
  ASSERT_TRUE(D.exactDifference(X, Y).has_value());
  EXPECT_EQ(*D.exactDifference(X, Y), 4);
}

TEST(Dbm, ForgetDropsOnlyThatVariable) {
  Dbm D = Dbm::top(3);
  D.addConstraint(X, Y, 1);
  D.addConstraint(Y, X, -1); // x - y == 1
  D.addConstraint(Y, 0, 5);  // y <= 5  =>  x <= 6 (via closure)
  EXPECT_EQ(*D.upperOfOpt(X), 6);
  D.forget(Y);
  // Knowledge about x derived through y must survive (closure ran first).
  EXPECT_EQ(*D.upperOfOpt(X), 6);
  EXPECT_EQ(D.bound(X, Y), Dbm::Inf);
}

TEST(Dbm, AssignConstPins) {
  Dbm D = Dbm::top(2);
  D.assignConst(X, 7);
  EXPECT_EQ(*D.lowerOf(X), 7);
  EXPECT_EQ(*D.upperOfOpt(X), 7);
}

TEST(Dbm, AssignVarPlusRelates) {
  Dbm D = Dbm::top(3);
  D.assignConst(Y, 10);
  D.assignVarPlus(X, Y, 5); // x := y + 5
  EXPECT_EQ(*D.exactDifference(X, Y), 5);
  EXPECT_EQ(*D.upperOfOpt(X), 15);
}

TEST(Dbm, SelfIncrementTranslates) {
  Dbm D = Dbm::top(3);
  D.assignConst(X, 3);
  D.addConstraint(X, Y, 0); // x <= y
  D.assignVarPlus(X, X, 2); // x := x + 2
  EXPECT_EQ(*D.lowerOf(X), 5);
  EXPECT_EQ(*D.upperOfOpt(X), 5);
  EXPECT_EQ(D.bound(X, Y), 2); // x - y <= 2 now.
}

TEST(Dbm, SelfDecrement) {
  Dbm D = Dbm::top(2);
  D.assignConst(X, 3);
  D.assignVarPlus(X, X, -1);
  EXPECT_EQ(*D.upperOfOpt(X), 2);
  EXPECT_EQ(*D.lowerOf(X), 2);
}

TEST(Dbm, AssignBoolUnknownGivesUnitRange) {
  Dbm D = Dbm::top(2);
  D.assignBoolUnknown(X);
  EXPECT_EQ(*D.lowerOf(X), 0);
  EXPECT_EQ(*D.upperOfOpt(X), 1);
}

TEST(Dbm, JoinIsPointwiseMax) {
  Dbm A = Dbm::top(2);
  A.assignConst(X, 1);
  Dbm B = Dbm::top(2);
  B.assignConst(X, 5);
  A.joinWith(B);
  EXPECT_EQ(*A.lowerOf(X), 1);
  EXPECT_EQ(*A.upperOfOpt(X), 5);
}

TEST(Dbm, JoinWithBottomIsIdentity) {
  Dbm A = Dbm::top(2);
  A.assignConst(X, 1);
  Dbm Saved = A;
  A.joinWith(Dbm::bottom(2));
  EXPECT_TRUE(A.equals(Saved));
  Dbm B = Dbm::bottom(2);
  B.joinWith(Saved);
  EXPECT_TRUE(B.equals(Saved));
}

TEST(Dbm, MeetRefines) {
  Dbm A = Dbm::top(2);
  A.addConstraint(X, 0, 10);
  Dbm B = Dbm::top(2);
  B.addConstraint(0, X, -3);
  A.meetWith(B);
  EXPECT_EQ(*A.lowerOf(X), 3);
  EXPECT_EQ(*A.upperOfOpt(X), 10);
}

TEST(Dbm, WideningDropsUnstableBounds) {
  Dbm A = Dbm::top(2);
  A.assignConst(X, 0);
  Dbm B = Dbm::top(2);
  B.addConstraint(X, 0, 1);  // x <= 1 (grew from 0)
  B.addConstraint(0, X, 0);  // x >= 0 (stable)
  A.widenWith(B);
  EXPECT_EQ(A.bound(X, 0), Dbm::Inf); // Upper widened away.
  EXPECT_EQ(*A.lowerOf(X), 0);        // Lower kept.
}

TEST(Dbm, LeqIsPartialOrder) {
  Dbm Tight = Dbm::top(2);
  Tight.assignConst(X, 5);
  Dbm Loose = Dbm::top(2);
  Loose.addConstraint(X, 0, 10);
  EXPECT_TRUE(Tight.leq(Loose));
  EXPECT_FALSE(Loose.leq(Tight));
  EXPECT_TRUE(Dbm::bottom(2).leq(Tight));
  EXPECT_FALSE(Tight.leq(Dbm::bottom(2)));
  EXPECT_TRUE(Tight.leq(Tight));
}

TEST(Dbm, StrRendersConstraints) {
  Dbm D = Dbm::top(2);
  D.addConstraint(X, Y, 3);
  std::string S = D.str({"x", "y"});
  EXPECT_NE(S.find("x - y <= 3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Lattice-law property sweeps
//===----------------------------------------------------------------------===//

class DbmLattice : public ::testing::TestWithParam<int> {
protected:
  static Dbm make(int Seed) {
    Dbm D = Dbm::top(3);
    uint32_t S = static_cast<uint32_t>(Seed) * 2654435761u + 17u;
    auto Next = [&S] {
      S ^= S << 13;
      S ^= S >> 17;
      S ^= S << 5;
      return S;
    };
    int Ops = Next() % 5;
    for (int I = 0; I < Ops; ++I) {
      int A = Next() % 4;
      int B = Next() % 4;
      if (A == B)
        continue;
      D.addConstraint(A, B, static_cast<int64_t>(Next() % 21) - 5);
      if (D.isBottom())
        return Dbm::top(3); // Keep the samples non-trivial.
    }
    return D;
  }
};

TEST_P(DbmLattice, JoinIsUpperBound) {
  Dbm A = make(GetParam());
  Dbm B = make(GetParam() + 57);
  Dbm J = A;
  J.joinWith(B);
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
}

TEST_P(DbmLattice, MeetIsLowerBound) {
  Dbm A = make(GetParam());
  Dbm B = make(GetParam() + 57);
  Dbm M = A;
  M.meetWith(B);
  EXPECT_TRUE(M.leq(A));
  EXPECT_TRUE(M.leq(B));
}

TEST_P(DbmLattice, JoinCommutes) {
  Dbm A = make(GetParam());
  Dbm B = make(GetParam() + 57);
  Dbm AB = A;
  AB.joinWith(B);
  Dbm BA = B;
  BA.joinWith(A);
  EXPECT_TRUE(AB.equals(BA));
}

TEST_P(DbmLattice, JoinIdempotent) {
  Dbm A = make(GetParam());
  Dbm AA = A;
  AA.joinWith(A);
  EXPECT_TRUE(AA.equals(A));
}

TEST_P(DbmLattice, WideningIsAboveBothArguments) {
  Dbm A = make(GetParam());
  Dbm B = make(GetParam() + 57);
  Dbm W = A;
  W.widenWith(B);
  EXPECT_TRUE(A.leq(W));
  EXPECT_TRUE(B.leq(W));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmLattice, ::testing::Range(0, 25));

} // namespace
