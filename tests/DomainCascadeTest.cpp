//===- DomainCascadeTest.cpp - Interval/zone cascade differential tests ----===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two properties the interval->zone cascade stands on, checked on all
/// 24 Table-1 benchmarks and on generated random programs:
///
///  - Projection soundness: the interval fixpoint over-approximates the
///    per-variable projection of the zone fixpoint at every product node —
///    an interval-bottom node is zone-bottom, and every per-variable
///    interval bound is at least the corresponding zone bound. This is the
///    inclusion that lets the cascade discharge interval-infeasible trails
///    without running a zone fixpoint.
///
///  - Behavioral transparency: --domain=cascade and --domain=zone produce
///    byte-identical verdicts, bounds, and treeString output at jobs
///    1/2/8. The cascade only skips zone work it can prove irrelevant;
///    zones still decide every bound.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

using namespace blazer;

namespace {

//===----------------------------------------------------------------------===//
// Projection soundness on the Table-1 products
//===----------------------------------------------------------------------===//

/// Runs the interval and zone fixpoints over the same product and checks
/// node-for-node inclusion of the zone invariant in the interval one.
void expectIntervalCoversZone(const CfgFunction &F, const VarEnv &Env,
                              const ProductGraph &G, const std::string &What) {
  SCOPED_TRACE(What);
  Analyzer Az(F, Env);
  IntervalAnalyzer IntAz(F, Env);
  AnalysisResult Zone = Az.analyze(G);
  IntervalAnalysisResult Box = IntAz.analyze(G);

  ASSERT_EQ(Zone.EntryState.size(), Box.EntryState.size());
  for (size_t Id = 0; Id < Zone.EntryState.size(); ++Id) {
    const Dbm &Z = Zone.EntryState[Id];
    const IntervalDomain &B = Box.EntryState[Id];
    // Interval-infeasible must imply zone-infeasible (the discharge rule).
    if (B.isBottom()) {
      EXPECT_TRUE(Z.isBottom()) << "node " << Id
                                << ": interval bottom but zone feasible";
      continue;
    }
    if (Z.isBottom())
      continue; // Coarser domain keeping a node alive is expected.
    for (int V = 1; V <= Env.numVars(); ++V) {
      // bound(V, 0) is the upper bound on v, bound(0, V) on -v; the
      // interval's must never be tighter than the zone's projection.
      EXPECT_GE(B.bound(V, 0), Z.bound(V, 0))
          << "node " << Id << " upper of " << Env.nameOf(V);
      EXPECT_GE(B.bound(0, V), Z.bound(0, V))
          << "node " << Id << " lower of " << Env.nameOf(V);
    }
  }
}

class CascadeProjection
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(CascadeProjection, IntervalOverapproximatesZoneProjection) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  BoundAnalysis BA(F, B.options().Observer.pinnedSymbols());
  ProductGraph G = ProductGraph::build(F, BA.mostGeneralTrail(),
                                       BA.alphabet());
  expectIntervalCoversZone(F, BA.env(), G, B.Name);
}

std::vector<const BenchmarkProgram *> benchmarkPointers() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

std::string benchmarkName(
    const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
  return Info.param->Name;
}

INSTANTIATE_TEST_SUITE_P(Table1, CascadeProjection,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// Cascade vs zone-only transparency on the Table-1 suite
//===----------------------------------------------------------------------===//

struct RunFingerprint {
  VerdictKind Verdict;
  std::string TreeText;
  size_t Attacks;
};

RunFingerprint fingerprint(const CfgFunction &F, const BlazerResult &R) {
  return {R.Verdict, R.treeString(F), R.Attacks.size()};
}

class CascadeTransparency
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(CascadeTransparency, CascadeAndZoneOnlyAgreeByteForByte) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  EngineConfig ZoneOnly;
  ZoneOnly.Domain = DomainMode::ZoneOnly;
  RunFingerprint Reference = fingerprint(F, runBenchmark(B, {}, 1, ZoneOnly));
  for (int Jobs : {1, 2, 8}) {
    SCOPED_TRACE(B.Name + " jobs=" + std::to_string(Jobs));
    EngineConfig Cascade; // DomainMode::Cascade is the default.
    BlazerResult R = runBenchmark(B, {}, Jobs, Cascade);
    RunFingerprint Got = fingerprint(F, R);
    EXPECT_EQ(Got.Verdict, Reference.Verdict);
    EXPECT_EQ(Got.TreeText, Reference.TreeText);
    EXPECT_EQ(Got.Attacks, Reference.Attacks);
    // Every analyzed trail is either discharged by intervals or promoted
    // to a zone run — the counters must account for all of them.
    EXPECT_GT(R.Telemetry.Cascade.Discharged + R.Telemetry.Cascade.Promoted,
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, CascadeTransparency,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// Random programs: projection + transparency under generated control flow
//===----------------------------------------------------------------------===//

/// Deterministic xorshift RNG (no global state, reproducible per seed).
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint32_t S;
};

/// Structured generator over (secret h, public l) with bounded counter
/// loops and nested branches — the same shape RandomProgramTest fuzzes,
/// kept loop-heavy so both domains' widenings actually fire.
class ProgramGen {
public:
  explicit ProgramGen(uint32_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "fn fuzz(secret h: int, public l: int) {\n";
    OS << "  var a: int = 0;\n  var b: int = 0;\n";
    emitBlock(2, 0);
    OS << "}\n";
    return OS.str();
  }

private:
  const char *scalar() {
    switch (R.range(0, 3)) {
    case 0:
      return "h";
    case 1:
      return "l";
    case 2:
      return "a";
    default:
      return "b";
    }
  }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  std::string cond() {
    std::ostringstream C;
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    C << scalar() << " " << Ops[R.range(0, 5)] << " ";
    if (R.chance(50))
      C << R.range(-3, 5);
    else
      C << scalar();
    return C.str();
  }

  void emitAssign(int Depth) {
    indent(Depth);
    const char *T = R.chance(50) ? "a" : "b";
    switch (R.range(0, 2)) {
    case 0:
      OS << T << " = " << R.range(-4, 9) << ";\n";
      break;
    case 1:
      OS << T << " = " << scalar() << " + " << R.range(-2, 4) << ";\n";
      break;
    default:
      OS << T << " = " << T << " + " << scalar() << ";\n";
      break;
    }
  }

  void emitLoop(int Depth) {
    int Id = NextLoop++;
    std::string V = "i" + std::to_string(Id);
    indent(Depth);
    OS << "var " << V << ": int = 0;\n";
    indent(Depth);
    std::string Bound = R.chance(60) ? std::string(R.chance(50) ? "l" : "h")
                                     : std::to_string(R.range(0, 6));
    OS << "while (" << V << " < " << Bound << ") {\n";
    emitAssign(Depth + 1);
    indent(Depth + 1);
    OS << V << " = " << V << " + 1;\n";
    indent(Depth);
    OS << "}\n";
  }

  void emitIf(int Depth, int Budget) {
    indent(Depth);
    OS << "if (" << cond() << ") {\n";
    emitBlock(Depth + 1, Budget);
    if (R.chance(70)) {
      indent(Depth);
      OS << "} else {\n";
      emitBlock(Depth + 1, Budget);
    }
    indent(Depth);
    OS << "}\n";
  }

  void emitStmt(int Depth, bool AllowLoop, int Budget = 0) {
    int Kind = R.range(0, 9);
    if (Kind < 6 || Depth > 4)
      emitAssign(Depth);
    else if (Kind < 8 && AllowLoop)
      emitLoop(Depth);
    else
      emitIf(Depth, Budget);
  }

  void emitBlock(int Depth, int Budget) {
    int Stmts = R.range(1, 3);
    for (int I = 0; I < Stmts; ++I)
      emitStmt(Depth, /*AllowLoop=*/Budget < 2, Budget + 1);
  }

  Rng R;
  std::ostringstream OS;
  int NextLoop = 0;
};

CfgFunction compileFuzz(uint32_t Seed, std::string *SrcOut = nullptr) {
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  if (SrcOut)
    *SrcOut = Src;
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F))
      << (F ? "" : F.diag().str()) << "\n" << Src;
  return F.take();
}

class RandomCascade : public ::testing::TestWithParam<int> {};

TEST_P(RandomCascade, IntervalOverapproximatesZoneProjection) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 6000),
                              &Src);
  BoundAnalysis BA(F);
  ProductGraph G = ProductGraph::build(F, BA.mostGeneralTrail(),
                                       BA.alphabet());
  expectIntervalCoversZone(F, BA.env(), G, Src);
}

TEST_P(RandomCascade, CascadeAndZoneOnlyAgreeByteForByte) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 7000),
                              &Src);
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(32);
  Opt.Engine.Domain = DomainMode::ZoneOnly;
  BlazerResult Zone = analyzeFunction(F, Opt);
  Opt.Engine.Domain = DomainMode::Cascade;
  for (int Jobs : {1, 4}) {
    Opt.Jobs = Jobs;
    BlazerResult Casc = analyzeFunction(F, Opt);
    EXPECT_EQ(Casc.Verdict, Zone.Verdict) << Src << "jobs=" << Jobs;
    EXPECT_EQ(Casc.treeString(F), Zone.treeString(F))
        << Src << "jobs=" << Jobs;
  }
}

TEST_P(RandomCascade, IntervalOnlyIsNeverUnsoundlySafe) {
  // The diagnostic interval-only mode may lose bounds (weaker domain) but
  // must never flip an unsafe/unknown program to Safe: anything it proves
  // safe, the zone engine proves safe too.
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 8000),
                              &Src);
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(32);
  Opt.Engine.Domain = DomainMode::IntervalOnly;
  BlazerResult Box = analyzeFunction(F, Opt);
  if (Box.Verdict != VerdictKind::Safe)
    return;
  Opt.Engine.Domain = DomainMode::ZoneOnly;
  BlazerResult Zone = analyzeFunction(F, Opt);
  EXPECT_EQ(Zone.Verdict, VerdictKind::Safe) << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCascade, ::testing::Range(0, 25));

} // namespace
