//===- DominatorsTest.cpp - Tests for dominance and control deps -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dominators.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

/// Finds the unique branch block whose condition renders to \p CondText.
int branchBlock(const CfgFunction &F, const std::string &CondText) {
  for (const BasicBlock &B : F.Blocks)
    if (B.Term == BasicBlock::TermKind::Branch &&
        exprToString(B.Cond) == CondText)
      return B.Id;
  ADD_FAILURE() << "no branch with condition " << CondText;
  return -1;
}

TEST(Dominators, EntryDominatesEverything) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  DominatorTree DT = DominatorTree::dominators(F);
  for (const BasicBlock &B : F.Blocks)
    EXPECT_TRUE(DT.dominates(F.Entry, B.Id));
  EXPECT_EQ(DT.idom(F.Entry), -1);
}

TEST(Dominators, BranchArmsDoNotDominateJoin) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }");
  DominatorTree DT = DominatorTree::dominators(F);
  const BasicBlock &Entry = F.block(F.Entry);
  int Join = F.block(Entry.TrueSucc).TrueSucc;
  EXPECT_FALSE(DT.dominates(Entry.TrueSucc, Join));
  EXPECT_FALSE(DT.dominates(Entry.FalseSucc, Join));
  EXPECT_TRUE(DT.dominates(F.Entry, Join));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  CfgFunction F = compile(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  DominatorTree DT = DominatorTree::dominators(F);
  int Header = branchBlock(F, "(i < n)");
  int Body = F.block(Header).TrueSucc;
  EXPECT_TRUE(DT.dominates(Header, Body));
  EXPECT_FALSE(DT.dominates(Body, Header));
}

TEST(PostDominators, ExitPostDominatesEverything) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  DominatorTree PDT = DominatorTree::postDominators(F);
  for (const BasicBlock &B : F.Blocks)
    EXPECT_TRUE(PDT.dominates(F.Exit, B.Id));
}

TEST(PostDominators, JoinPostDominatesBranch) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }");
  DominatorTree PDT = DominatorTree::postDominators(F);
  const BasicBlock &Entry = F.block(F.Entry);
  int Join = F.block(Entry.TrueSucc).TrueSucc;
  EXPECT_TRUE(PDT.dominates(Join, F.Entry));
  EXPECT_FALSE(PDT.dominates(Entry.TrueSucc, F.Entry));
}

TEST(ControlDependence, BranchArmsDependOnBranch) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }");
  auto Deps = controlDependence(F);
  const BasicBlock &Entry = F.block(F.Entry);
  EXPECT_TRUE(Deps[Entry.TrueSucc].count(F.Entry));
  EXPECT_TRUE(Deps[Entry.FalseSucc].count(F.Entry));
  // The join runs either way: not control dependent on the branch.
  int Join = F.block(Entry.TrueSucc).TrueSucc;
  EXPECT_FALSE(Deps[Join].count(F.Entry));
}

TEST(ControlDependence, LoopBodyDependsOnHeader) {
  CfgFunction F = compile(
      "fn f(public n: int) { var i: int = 0; while (i < n) { i = i + 1; } }");
  auto Deps = controlDependence(F);
  int Header = branchBlock(F, "(i < n)");
  int Body = F.block(Header).TrueSucc;
  EXPECT_TRUE(Deps[Body].count(Header));
  // Classic FOW: the header is control dependent on itself.
  EXPECT_TRUE(Deps[Header].count(Header));
}

TEST(ControlDependence, NestedBranchDependsOnBoth) {
  CfgFunction F = compile(R"(
    fn f(public x: int, public y: int) {
      if (x > 0) {
        if (y > 0) { x = 1; }
      }
    }
  )");
  auto Deps = controlDependence(F);
  int Outer = branchBlock(F, "(x > 0)");
  int Inner = branchBlock(F, "(y > 0)");
  int InnerThen = F.block(Inner).TrueSucc;
  EXPECT_TRUE(Deps[Inner].count(Outer));
  EXPECT_TRUE(Deps[InnerThen].count(Inner));
  // Transitively nested work does not directly depend on the outer branch
  // unless the inner join skips it; the direct dependence on Inner is what
  // matters here.
  EXPECT_TRUE(Deps[InnerThen].count(Inner));
}

TEST(ControlDependence, EarlyReturnMakesTailDependent) {
  CfgFunction F = compile(R"(
    fn f(public x: int) -> int {
      if (x > 0) { return 1; }
      x = 5;
      return x;
    }
  )");
  auto Deps = controlDependence(F);
  const BasicBlock &Entry = F.block(F.Entry);
  // The fall-through code only runs when the branch goes false.
  int Tail = Entry.FalseSucc;
  EXPECT_TRUE(Deps[Tail].count(F.Entry));
}

TEST(BlocksOnCycles, LoopBlocksFlagged) {
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) { i = i + 1; }
      i = 99;
    }
  )");
  std::vector<bool> OnCycle = blocksOnCycles(F);
  int Header = branchBlock(F, "(i < n)");
  int Body = F.block(Header).TrueSucc;
  EXPECT_TRUE(OnCycle[Header]);
  EXPECT_TRUE(OnCycle[Body]);
  EXPECT_FALSE(OnCycle[F.Entry]);
  EXPECT_FALSE(OnCycle[F.Exit]);
}

TEST(BlocksOnCycles, StraightLineHasNone) {
  CfgFunction F = compile("fn f(public x: int) { x = 1; x = 2; }");
  for (bool B : blocksOnCycles(F))
    EXPECT_FALSE(B);
}

TEST(BlocksOnCycles, NestedLoopsAllFlagged) {
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) {
        var j: int = 0;
        while (j < n) { j = j + 1; }
        i = i + 1;
      }
    }
  )");
  std::vector<bool> OnCycle = blocksOnCycles(F);
  int Outer = branchBlock(F, "(i < n)");
  int Inner = branchBlock(F, "(j < n)");
  EXPECT_TRUE(OnCycle[Outer]);
  EXPECT_TRUE(OnCycle[Inner]);
}

} // namespace
