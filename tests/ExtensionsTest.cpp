//===- ExtensionsTest.cpp - §3.4 / §4.2 extension features ------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the paper features beyond the headline tcf analysis:
///  - the §3.4 channel-capacity property (at most q observable running
///    times per public input — a (q+1)-safety instance of quotient
///    partitioning);
///  - the §4.2 ANNOTATETRAIL procedure marking trail-expression
///    constructors with l/h dependence.
///
//===----------------------------------------------------------------------===//

#include "automata/AnnotateTrail.h"
#include "benchmarks/Benchmarks.h"
#include "core/Blazer.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

BlazerOptions degreeOptions() {
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(16);
  return Opt;
}

//===----------------------------------------------------------------------===//
// Channel capacity (§3.4)
//===----------------------------------------------------------------------===//

TEST(ChannelCapacity, TcfSafeProgramHasOneClass) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var i: int = 0;
      while (i < l) { i = i + 1; }
    }
  )");
  ChannelCapacityResult R = analyzeChannelCapacity(F, 1, degreeOptions());
  EXPECT_TRUE(R.Known);
  EXPECT_TRUE(R.Bounded);
  EXPECT_LE(R.MaxClasses, 1);
}

TEST(ChannelCapacity, TwoConstantArmsAreTwoClasses) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (h > 0) { x = md5(l); } else { x = 1; }
    }
  )");
  ChannelCapacityResult Q1 = analyzeChannelCapacity(F, 1, degreeOptions());
  EXPECT_TRUE(Q1.Known);
  EXPECT_FALSE(Q1.Bounded);
  EXPECT_EQ(Q1.MaxClasses, 2);
  ChannelCapacityResult Q2 = analyzeChannelCapacity(F, 2, degreeOptions());
  EXPECT_TRUE(Q2.Bounded);
}

TEST(ChannelCapacity, NestedSecretBranchesGiveFourClasses) {
  CfgFunction F = compile(R"(
    fn f(secret h1: int, secret h2: int, public l: int) {
      var x: int = 0;
      if (h1 > 0) {
        if (h2 > 0) { x = md5(l); } else { x = 1; }
      } else {
        if (h2 > 0) { x = md5(l); x = md5(x); }
        else { x = md5(l); x = md5(x); x = md5(x); }
      }
    }
  )");
  ChannelCapacityResult R = analyzeChannelCapacity(F, 4, degreeOptions());
  ASSERT_TRUE(R.Known);
  EXPECT_EQ(R.MaxClasses, 4);
  EXPECT_TRUE(R.Bounded);
  EXPECT_FALSE(analyzeChannelCapacity(F, 3, degreeOptions()).Bounded);
}

TEST(ChannelCapacity, EqualCostArmsCollapseToOneClass) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (h > 0) { x = 1; } else { x = 2; }
    }
  )");
  // The two arms cost the same: the program is already tcf-safe, so the
  // capacity phase sees a single narrow component.
  ChannelCapacityResult R = analyzeChannelCapacity(F, 1, degreeOptions());
  EXPECT_TRUE(R.Bounded);
  EXPECT_LE(R.MaxClasses, 1);
}

TEST(ChannelCapacity, ClassCountIsPerPublicComponent) {
  // Two public cases, each with a two-way secret choice: per component
  // only 2 classes even though 4 distinct running times exist globally.
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (l > 0) {
        if (h > 0) { x = md5(l); } else { x = 1; }
      } else {
        if (h > 0) { x = md5(l); x = md5(x); } else { x = 2; }
      }
    }
  )");
  ChannelCapacityResult R = analyzeChannelCapacity(F, 2, degreeOptions());
  ASSERT_TRUE(R.Known);
  EXPECT_EQ(R.MaxClasses, 2);
  EXPECT_TRUE(R.Bounded);
}

TEST(ChannelCapacity, UnboundableSecretLoopIsUnknown) {
  // The per-bit leak: the number of classes grows with the key length, so
  // no finite q can be established (the takes-both trail stays wide).
  const BenchmarkProgram *B = findBenchmark("modPow1_unsafe");
  CfgFunction F = B->compile();
  ChannelCapacityResult R = analyzeChannelCapacity(F, 8, B->options());
  EXPECT_FALSE(R.Known);
  EXPECT_FALSE(R.Bounded);
}

TEST(ChannelCapacity, AgreesWithTcfOnSafeBenchmarks) {
  for (const char *Name : {"sanity_safe", "login_safe", "modPow1_safe"}) {
    const BenchmarkProgram *B = findBenchmark(Name);
    ASSERT_NE(B, nullptr);
    CfgFunction F = B->compile();
    ChannelCapacityResult R = analyzeChannelCapacity(F, 1, B->options());
    EXPECT_TRUE(R.Bounded) << Name;
  }
}

//===----------------------------------------------------------------------===//
// AnnotateTrail (§4.2)
//===----------------------------------------------------------------------===//

using TE = TrailExpr;

TEST(AnnotateTrail, MarksSeparatingUnion) {
  // (e0 | e1) where e0/e1 are the two edges of a low branch.
  std::map<int, AnnotatedBranch> Branches;
  AnnotatedBranch B;
  B.TrueSymbol = 0;
  B.FalseSymbol = 1;
  B.Mark.Low = true;
  Branches[7] = B;
  TE::Ptr E = TE::unite(TE::symbol(0), TE::symbol(1));
  TE::Ptr A = annotateTrail(E, Branches);
  ASSERT_EQ(A->kind(), TE::Kind::Union);
  EXPECT_TRUE(A->mark().Low);
  EXPECT_FALSE(A->mark().High);
  EXPECT_EQ(A->str(), "e0 |_l e1");
}

TEST(AnnotateTrail, OutermostRuleConsumesBranch) {
  // ((e0 | e2) | e1): the OUTER union separates the branch {0,1}; the
  // inner one must stay unmarked for that branch.
  std::map<int, AnnotatedBranch> Branches;
  AnnotatedBranch B;
  B.TrueSymbol = 0;
  B.FalseSymbol = 1;
  B.Mark.High = true;
  Branches[3] = B;
  TE::Ptr Inner = TE::unite(TE::symbol(0), TE::symbol(2));
  TE::Ptr E = TE::unite(Inner, TE::symbol(1));
  TE::Ptr A = annotateTrail(E, Branches);
  ASSERT_EQ(A->kind(), TE::Kind::Union);
  EXPECT_TRUE(A->mark().High);
  // Find the inner union and check it is unmarked.
  const TE *InnerOut = A->lhs()->kind() == TE::Kind::Union
                           ? A->lhs().get()
                           : A->rhs().get();
  ASSERT_EQ(InnerOut->kind(), TE::Kind::Union);
  EXPECT_FALSE(InnerOut->mark().any());
}

TEST(AnnotateTrail, MarksLoopStar) {
  // (e0)* . e1 where e0 stays in the loop and e1 leaves it: the star
  // decides the branch.
  std::map<int, AnnotatedBranch> Branches;
  AnnotatedBranch B;
  B.TrueSymbol = 0;
  B.FalseSymbol = 1;
  B.Mark.Low = true;
  Branches[2] = B;
  TE::Ptr E = TE::concat(TE::star(TE::symbol(0)), TE::symbol(1));
  TE::Ptr A = annotateTrail(E, Branches);
  EXPECT_EQ(A->str(), "e0*_l . e1");
}

TEST(AnnotateTrail, UntaintedBranchesProduceNoMarks) {
  std::map<int, AnnotatedBranch> Branches;
  AnnotatedBranch B;
  B.TrueSymbol = 0;
  B.FalseSymbol = 1;
  Branches[2] = B; // No taint mark.
  TE::Ptr E = TE::unite(TE::symbol(0), TE::symbol(1));
  TE::Ptr A = annotateTrail(E, Branches);
  EXPECT_FALSE(A->mark().any());
}

TEST(AnnotateTrail, NonSeparatingUnionUnmarked) {
  // Both edges occur on both sides: the union does not decide the branch.
  std::map<int, AnnotatedBranch> Branches;
  AnnotatedBranch B;
  B.TrueSymbol = 0;
  B.FalseSymbol = 1;
  B.Mark.Low = true;
  Branches[2] = B;
  TE::Ptr Side1 = TE::concat(TE::symbol(0), TE::symbol(1));
  TE::Ptr Side2 = TE::concat(TE::symbol(1), TE::symbol(0));
  TE::Ptr A = annotateTrail(TE::unite(Side1, Side2), Branches);
  EXPECT_FALSE(A->mark().any());
}

TEST(AnnotateTrail, RenderAnnotatedTrailOnExample2) {
  // Example 2 of the paper: the outer branch is low, the inner secret —
  // the rendered trmg must carry both kinds of marks.
  CfgFunction F = compile(R"(
    fn bar(secret high: int, public low: int) {
      var i: int = 0;
      if (low > 0) {
        while (i < low) { i = i + 1; }
      } else {
        if (high == 0) { i = 5; } else { i = 6; }
      }
    }
  )");
  TaintInfo Taint = runTaintAnalysis(F);
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  TE::Ptr Regex =
      renderAnnotatedTrail(F, Dfa::fromCfg(F, A), Taint, 1 << 16);
  ASSERT_NE(Regex, nullptr);
  std::string S = Regex->str(&A);
  EXPECT_NE(S.find("_l"), std::string::npos) << S;
  EXPECT_NE(S.find("_h"), std::string::npos) << S;
  // The annotated expression still denotes the same language.
  EXPECT_TRUE(Regex->toDfa(static_cast<int>(A.size()))
                  .equivalent(Dfa::fromCfg(F, A)));
}

TEST(AnnotateTrail, AnnotationPreservesLanguageOnBenchmarks) {
  for (const char *Name : {"login_safe", "sanity_unsafe", "nosecret_safe"}) {
    const BenchmarkProgram *B = findBenchmark(Name);
    ASSERT_NE(B, nullptr);
    CfgFunction F = B->compile();
    TaintInfo Taint = runTaintAnalysis(F);
    EdgeAlphabet A = EdgeAlphabet::forFunction(F);
    Dfa Cfg = Dfa::fromCfg(F, A);
    TE::Ptr Regex = renderAnnotatedTrail(F, Cfg, Taint, 1 << 16);
    ASSERT_NE(Regex, nullptr) << Name;
    EXPECT_TRUE(Regex->toDfa(static_cast<int>(A.size())).equivalent(Cfg))
        << Name;
  }
}

} // namespace
