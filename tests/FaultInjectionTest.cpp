//===- FaultInjectionTest.cpp - Chaos suite for the fault injector ---------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the deterministic fault-injection subsystem (plan
/// parsing, the splitmix64 decision function, scope plumbing, EngineConfig
/// integration) plus the chaos sweep: 500+ distinct seeded fault plans
/// across all 24 Table-1 benchmarks at jobs 1 and 8, asserting the iron
/// invariant — an injected fault may degrade a verdict to Unknown (with
/// fault provenance in the DegradationReason) but may never flip Safe to
/// Attack or vice versa — and that jobs=1 replays of the same plan are
/// byte-identical (verdict, trail tree, provenance). At jobs=8 transient
/// retry success depends on interleaving, so replays assert soundness
/// only, plus byte-identity whenever the run reports zero injected faults.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "support/EngineConfig.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

using namespace blazer;

namespace {

//===----------------------------------------------------------------------===//
// Plan parsing
//===----------------------------------------------------------------------===//

TEST(FaultPlan, ParseOffAndEmpty) {
  FaultPlan P;
  P.Seed = 7;
  P.Rate = 1;
  EXPECT_TRUE(FaultPlan::parse("off", &P));
  EXPECT_FALSE(P.enabled());
  EXPECT_EQ(P.str(), "off");
  EXPECT_TRUE(FaultPlan::parse("", &P));
  EXPECT_FALSE(P.enabled());
}

TEST(FaultPlan, ParseSeedRate) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("7:0.25", &P));
  EXPECT_EQ(P.Seed, 7u);
  EXPECT_DOUBLE_EQ(P.Rate, 0.25);
  EXPECT_EQ(P.SiteMask, FaultPlan::allSitesMask());
  EXPECT_FALSE(P.Abort);
  EXPECT_TRUE(P.enabled());
  for (unsigned I = 0; I < NumFaultSites; ++I)
    EXPECT_TRUE(P.siteEnabled(static_cast<FaultSite>(I)));
}

TEST(FaultPlan, ParseSiteList) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("99:1:transfer,closure", &P));
  EXPECT_TRUE(P.siteEnabled(FaultSite::Transfer));
  EXPECT_TRUE(P.siteEnabled(FaultSite::Closure));
  EXPECT_FALSE(P.siteEnabled(FaultSite::DbmPool));
  EXPECT_FALSE(P.siteEnabled(FaultSite::PoolTask));
  EXPECT_FALSE(P.Abort);
}

TEST(FaultPlan, ParseAbort) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("3:1:abort", &P));
  EXPECT_TRUE(P.Abort);
  EXPECT_EQ(P.SiteMask, FaultPlan::allSitesMask());
  ASSERT_TRUE(FaultPlan::parse("3:1:transfer,abort", &P));
  EXPECT_TRUE(P.Abort);
  EXPECT_TRUE(P.siteEnabled(FaultSite::Transfer));
  EXPECT_FALSE(P.siteEnabled(FaultSite::Closure));
}

TEST(FaultPlan, ParseRejectsMalformed) {
  FaultPlan P;
  std::string Err;
  EXPECT_FALSE(FaultPlan::parse("7", &P, &Err));        // Missing rate.
  EXPECT_FALSE(FaultPlan::parse("x:0.5", &P, &Err));    // Bad seed.
  EXPECT_FALSE(FaultPlan::parse("7:1.5", &P, &Err));    // Rate > 1.
  EXPECT_FALSE(FaultPlan::parse("7:-0.1", &P, &Err));   // Rate < 0.
  EXPECT_FALSE(FaultPlan::parse("7:0.5:bogus", &P, &Err));
  EXPECT_FALSE(FaultPlan::parse("7:0.5:transfer,", &P, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(FaultPlan, StrParseRoundTrip) {
  for (const char *Spec :
       {"off", "7:0.01", "7:1", "42:0.5:transfer,closure",
        "1:0.25:dbm-pool", "9:1:abort", "9:1:cache-insert,abort"}) {
    FaultPlan P;
    ASSERT_TRUE(FaultPlan::parse(Spec, &P)) << Spec;
    FaultPlan Q;
    ASSERT_TRUE(FaultPlan::parse(P.str(), &Q)) << Spec << " -> " << P.str();
    EXPECT_EQ(P, Q) << Spec;
  }
}

TEST(FaultSiteNames, RoundTrip) {
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    FaultSite Back;
    ASSERT_TRUE(parseFaultSite(faultSiteName(S), &Back));
    EXPECT_EQ(Back, S);
  }
  FaultSite S;
  EXPECT_FALSE(parseFaultSite("nope", &S));
}

//===----------------------------------------------------------------------===//
// Decision function
//===----------------------------------------------------------------------===//

TEST(FaultDecides, PureAndSeeded) {
  // Same (seed, site, index, rate) always decides the same way; different
  // seeds decide differently somewhere.
  unsigned Diffs = 0;
  for (uint64_t I = 0; I < 256; ++I) {
    bool A = FaultInjector::decides(1, FaultSite::Transfer, I, 0.5);
    EXPECT_EQ(A, FaultInjector::decides(1, FaultSite::Transfer, I, 0.5));
    if (A != FaultInjector::decides(2, FaultSite::Transfer, I, 0.5))
      ++Diffs;
  }
  EXPECT_GT(Diffs, 0u);
}

TEST(FaultDecides, RateEndpoints) {
  for (uint64_t I = 0; I < 64; ++I) {
    EXPECT_TRUE(FaultInjector::decides(7, FaultSite::Closure, I, 1.0));
    EXPECT_FALSE(FaultInjector::decides(7, FaultSite::Closure, I, 0.0));
  }
}

TEST(FaultDecides, RateRoughlyProportional) {
  unsigned Fired = 0;
  for (uint64_t I = 0; I < 4096; ++I)
    Fired += FaultInjector::decides(11, FaultSite::DbmPool, I, 0.25);
  // 0.25 of 4096 = 1024; allow a generous band.
  EXPECT_GT(Fired, 700u);
  EXPECT_LT(Fired, 1350u);
}

TEST(FaultSites, TransientClassification) {
  EXPECT_TRUE(FaultInjector::transientSite(FaultSite::DbmPool));
  EXPECT_TRUE(FaultInjector::transientSite(FaultSite::CacheInsert));
  EXPECT_TRUE(FaultInjector::transientSite(FaultSite::CacheRetake));
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::Transfer));
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::Closure));
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::TrailAnalysis));
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::PoolTask));
  // Arc-cache faults are absorbed in place (the fixpoint falls back to
  // uncached joins for the rest of the run), so retrying the whole trail
  // would just re-fire the plan — non-transient by design.
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::ArcCache));
  // Fixpoint-ctx faults likewise absorb in place: the run degrades to a
  // fresh (unpooled) context, which is semantically identical.
  EXPECT_FALSE(FaultInjector::transientSite(FaultSite::FixpointCtx));
}

//===----------------------------------------------------------------------===//
// Injector + scope plumbing
//===----------------------------------------------------------------------===//

TEST(FaultInjectorHit, FiresThrowsAndCounts) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("7:1:transfer", &P));
  FaultInjector Inj(P);
  FaultScope Scope(&Inj);
  ASSERT_EQ(FaultScope::current(), &Inj);
  // Disabled site: no throw, no count.
  maybeInjectFault(FaultSite::Closure);
  EXPECT_EQ(Inj.stats().Injected, 0u);
  // Enabled site at rate 1: every hit throws with provenance.
  for (uint64_t I = 0; I < 3; ++I) {
    try {
      maybeInjectFault(FaultSite::Transfer);
      FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &F) {
      EXPECT_EQ(F.site(), FaultSite::Transfer);
      EXPECT_EQ(F.index(), I);
      EXPECT_NE(std::string(F.what()).find("transfer"), std::string::npos);
    }
  }
  EXPECT_EQ(Inj.stats().Injected, 3u);
}

TEST(FaultInjectorHit, NoScopeMeansNoOp) {
  ASSERT_EQ(FaultScope::current(), nullptr);
  maybeInjectFault(FaultSite::Transfer); // Must not throw.
}

TEST(FaultScopeNesting, RestoresPrevious) {
  FaultPlan P;
  ASSERT_TRUE(FaultPlan::parse("1:1", &P));
  FaultInjector Outer(P), Inner(P);
  FaultScope SO(&Outer);
  {
    FaultScope SI(&Inner);
    EXPECT_EQ(FaultScope::current(), &Inner);
  }
  EXPECT_EQ(FaultScope::current(), &Outer);
}

//===----------------------------------------------------------------------===//
// EngineConfig integration
//===----------------------------------------------------------------------===//

TEST(EngineConfigFault, KnobRoundTrip) {
  EngineConfig E;
  EXPECT_EQ(E.get("fault-plan"), "off");
  std::string Err;
  ASSERT_TRUE(E.set("fault-plan", "7:0.5:transfer", &Err)) << Err;
  EXPECT_EQ(E.get("fault-plan"), "7:0.5:transfer");
  EXPECT_TRUE(E.Fault.enabled());
  EXPECT_FALSE(E.set("fault-plan", "bogus", &Err));
  EXPECT_FALSE(Err.empty());
  ASSERT_TRUE(E.set("fault-plan", "off", &Err));
  EXPECT_FALSE(E.Fault.enabled());
}

TEST(EngineConfigFault, LoadEnvReadsFaultPlan) {
  ::setenv("BLAZER_FITEST_FAULT_PLAN", "13:0.125:closure", 1);
  EngineConfig E;
  E.loadEnv("BLAZER_FITEST");
  EXPECT_EQ(E.Fault.Seed, 13u);
  EXPECT_DOUBLE_EQ(E.Fault.Rate, 0.125);
  EXPECT_TRUE(E.Fault.siteEnabled(FaultSite::Closure));
  EXPECT_FALSE(E.Fault.siteEnabled(FaultSite::Transfer));
  ::unsetenv("BLAZER_FITEST_FAULT_PLAN");
}

TEST(DeprecatedAliases, WarnOncePerAlias) {
  ::testing::internal::CaptureStderr();
  warnDeprecatedAlias("--fitest-old-flag", "--fitest-new-flag");
  warnDeprecatedAlias("--fitest-old-flag", "--fitest-new-flag");
  std::string Err = ::testing::internal::GetCapturedStderr();
  size_t First = Err.find("--fitest-old-flag");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Err.find("--fitest-old-flag", First + 1), std::string::npos);
}

TEST(DeprecatedAliases, SuppressionStillDedupes) {
  setDeprecationWarningsEnabled(false);
  ::testing::internal::CaptureStderr();
  warnDeprecatedAlias("--fitest-quiet-flag", "--fitest-new-flag");
  setDeprecationWarningsEnabled(true);
  warnDeprecatedAlias("--fitest-quiet-flag", "--fitest-new-flag");
  std::string Err = ::testing::internal::GetCapturedStderr();
  // First call was suppressed but claimed the dedup slot; the second call
  // must not print either.
  EXPECT_EQ(Err.find("--fitest-quiet-flag"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Chaos sweep
//===----------------------------------------------------------------------===//

struct Baseline {
  VerdictKind Verdict;
  std::string Tree;
};

/// Replaces the wall-clock "after 1.23s" fragment of degradation lines
/// with "after Xs": elapsed time is the one legitimately nondeterministic
/// piece of a degraded tree dump.
std::string stripElapsed(std::string S) {
  size_t Pos = 0;
  while ((Pos = S.find("after ", Pos)) != std::string::npos) {
    size_t End = Pos + 6;
    while (End < S.size() && (std::isdigit(S[End]) || S[End] == '.'))
      ++End;
    if (End < S.size() && S[End] == 's' && End > Pos + 6)
      S.replace(Pos + 6, End - Pos - 6, "X");
    Pos += 6;
  }
  return S;
}

Baseline baselineFor(const BenchmarkProgram &B, const CfgFunction &F,
                     int Jobs) {
  BlazerResult R = runBenchmark(B, {}, Jobs);
  EXPECT_FALSE(R.Degradation.tripped()) << B.Name << " jobs=" << Jobs;
  EXPECT_EQ(R.Telemetry.Fault.Injected, 0u);
  return {R.Verdict, R.treeString(F)};
}

/// The iron invariant: a faulted run either matches the fault-free verdict
/// (the fault never fired, or a transient retry absorbed it) or degrades
/// to a non-Safe verdict with fault provenance. Never a flipped verdict.
void checkSoundness(const BenchmarkProgram &B, const CfgFunction &F,
                    const Baseline &Base, const BlazerResult &R,
                    const std::string &Plan, int Jobs) {
  SCOPED_TRACE(B.Name + " plan=" + Plan + " jobs=" + std::to_string(Jobs));
  if (R.Degradation.tripped()) {
    EXPECT_EQ(R.Degradation.Kind, BudgetKind::FaultInjected)
        << R.Degradation.str();
    EXPECT_FALSE(R.Degradation.FaultSite.empty());
    // Degraded runs can never claim safety.
    EXPECT_NE(R.Verdict, VerdictKind::Safe);
    // ... and can never invent an attack on a safe program: attacks need
    // genuine upper bounds on both trails, which degraded results lack.
    if (Base.Verdict == VerdictKind::Safe) {
      EXPECT_NE(R.Verdict, VerdictKind::Attack) << R.treeString(F);
    }
  } else {
    // No degradation recorded: the run must agree with fault-free.
    EXPECT_EQ(R.Verdict, Base.Verdict) << R.treeString(F);
  }
  if (R.Verdict == VerdictKind::Attack) {
    EXPECT_FALSE(R.Attacks.empty());
  }
}

class FaultChaos : public ::testing::TestWithParam<const BenchmarkProgram *> {
};

/// Every single-site plan, two seeds each, at jobs=1: byte-identical
/// replay (verdict, tree, provenance) plus soundness. 9 sites x 2 seeds x
/// 24 benchmarks = 432 distinct plans.
TEST_P(FaultChaos, SingleSitePlansReplayDeterministicallyAtJobs1) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  Baseline Base = baselineFor(B, F, /*Jobs=*/1);
  size_t BenchSalt =
      std::hash<std::string>()(B.Name) % 100000; // Distinct plans per bench.
  for (unsigned SiteIdx = 0; SiteIdx < NumFaultSites; ++SiteIdx) {
    for (uint64_t SeedIdx = 0; SeedIdx < 2; ++SeedIdx) {
      FaultSite S = static_cast<FaultSite>(SiteIdx);
      std::string Plan = std::to_string(BenchSalt + SiteIdx * 10 + SeedIdx) +
                         (SeedIdx ? ":0.25:" : ":1:") + faultSiteName(S);
      EngineConfig Engine;
      ASSERT_TRUE(Engine.set("fault-plan", Plan));
      BlazerResult R1 = runBenchmark(B, {}, 1, Engine);
      BlazerResult R2 = runBenchmark(B, {}, 1, Engine);
      checkSoundness(B, F, Base, R1, Plan, 1);
      checkSoundness(B, F, Base, R2, Plan, 1);
      SCOPED_TRACE(B.Name + " plan=" + Plan + " replay");
      // Sequential replay of the same plan is byte-identical.
      EXPECT_EQ(R1.Verdict, R2.Verdict);
      EXPECT_EQ(stripElapsed(R1.treeString(F)), stripElapsed(R2.treeString(F)));
      EXPECT_EQ(R1.Degradation.Kind, R2.Degradation.Kind);
      EXPECT_EQ(R1.Degradation.FaultSite, R2.Degradation.FaultSite);
      EXPECT_EQ(R1.Telemetry.Fault.Injected, R2.Telemetry.Fault.Injected);
      if (!R1.Degradation.tripped()) {
        EXPECT_EQ(R1.treeString(F), Base.Tree);
      }
    }
  }
}

/// All-site plans across 8 seeds at jobs=1 and jobs=8: 192 more distinct
/// plans. jobs=8 asserts soundness only — transient-retry success under
/// concurrency is interleaving-dependent — plus byte-identity with the
/// parallel baseline whenever the run reports zero injected faults.
TEST_P(FaultChaos, AllSitePlansSoundAtAnyJobCount) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  Baseline Base1 = baselineFor(B, F, /*Jobs=*/1);
  Baseline Base8 = baselineFor(B, F, /*Jobs=*/8);
  // Parallel and sequential fault-free runs agree (determinism contract).
  EXPECT_EQ(Base1.Verdict, Base8.Verdict);
  EXPECT_EQ(Base1.Tree, Base8.Tree);
  size_t BenchSalt = std::hash<std::string>()(B.Name) % 100000;
  for (uint64_t SeedIdx = 0; SeedIdx < 8; ++SeedIdx) {
    std::string Plan = std::to_string(200000 + BenchSalt * 8 + SeedIdx) +
                       ":" + (SeedIdx % 2 ? "0.1" : "0.02");
    EngineConfig Engine;
    ASSERT_TRUE(Engine.set("fault-plan", Plan));
    BlazerResult R1 = runBenchmark(B, {}, 1, Engine);
    checkSoundness(B, F, Base1, R1, Plan, 1);
    BlazerResult R8 = runBenchmark(B, {}, 8, Engine);
    checkSoundness(B, F, Base8, R8, Plan, 8);
    if (R8.Telemetry.Fault.Injected == 0) {
      SCOPED_TRACE(B.Name + " plan=" + Plan + " jobs=8 zero-fault");
      EXPECT_EQ(R8.Verdict, Base8.Verdict);
      EXPECT_EQ(stripElapsed(R8.treeString(F)), stripElapsed(Base8.Tree));
    }
  }
}

std::vector<const BenchmarkProgram *> allPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Table1, FaultChaos, ::testing::ValuesIn(allPtrs()),
                         [](const auto &Info) { return Info.param->Name; });

/// The arc-cache site has a recovery mode unlike every other site: an
/// injected fault disables the cache for the rest of that fixpoint run and
/// the join falls back to the uncached path. The run must complete without
/// degradation (no Budget trip, no provenance), with the fault counted as
/// injected, and the verdict and trail tree byte-identical to both the
/// fault-free baseline and an arc-cache=off run.
TEST(FaultArcCache, InjectionDegradesToUncachedJoinsWithoutVerdictImpact) {
  const BenchmarkProgram *B = findBenchmark("modPow2_safe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  Baseline Base = baselineFor(*B, F, /*Jobs=*/1);

  EngineConfig Off;
  ASSERT_TRUE(Off.set("arc-cache", "off"));
  BlazerResult ROff = runBenchmark(*B, {}, 1, Off);

  EngineConfig Faulted;
  ASSERT_TRUE(Faulted.set("fault-plan", "1:1:arc-cache"));
  BlazerResult R = runBenchmark(*B, {}, 1, Faulted);

  // Absorbed, not degraded: the fault fired but the analysis recovered in
  // place by switching the rest of the run to uncached joins.
  EXPECT_GE(R.Telemetry.Fault.Injected, 1u);
  EXPECT_FALSE(R.Degradation.tripped()) << R.Degradation.str();
  EXPECT_EQ(R.Verdict, Base.Verdict);
  EXPECT_EQ(R.treeString(F), Base.Tree);

  // With rate 1 the fault fires at the first cached join of every fixpoint
  // run, so the join work collapses to exactly the arc-cache=off count.
  EXPECT_EQ(R.Verdict, ROff.Verdict);
  EXPECT_EQ(R.treeString(F), ROff.treeString(F));
  EXPECT_EQ(R.Telemetry.Fixpoint.Joins, ROff.Telemetry.Fixpoint.Joins);
  EXPECT_EQ(ROff.Telemetry.Fixpoint.ArcHits, 0u);
  EXPECT_EQ(ROff.Telemetry.Fixpoint.ArcMisses, 0u);
}

/// The fixpoint-ctx site degrades a single analyze() run to fresh-context
/// mode (local shape + local arena, no fast paths). That is an allocation/
/// layout change only: the run completes undegraded, the fault is counted,
/// and the verdict and tree are byte-identical to both the fault-free
/// baseline and a --fixpoint-ctx=fresh run.
TEST(FaultFixpointCtx, InjectionDegradesToFreshContextWithoutVerdictImpact) {
  const BenchmarkProgram *B = findBenchmark("modPow2_safe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  Baseline Base = baselineFor(*B, F, /*Jobs=*/1);

  EngineConfig Fresh;
  ASSERT_TRUE(Fresh.set("fixpoint-ctx", "fresh"));
  BlazerResult RFresh = runBenchmark(*B, {}, 1, Fresh);

  EngineConfig Faulted;
  ASSERT_TRUE(Faulted.set("fault-plan", "1:1:fixpoint-ctx"));
  BlazerResult R = runBenchmark(*B, {}, 1, Faulted);

  // Absorbed, not degraded: every fixpoint run fell back to a fresh
  // context, which computes the same states from the same schedule.
  EXPECT_GE(R.Telemetry.Fault.Injected, 1u);
  EXPECT_FALSE(R.Degradation.tripped()) << R.Degradation.str();
  EXPECT_EQ(R.Verdict, Base.Verdict);
  EXPECT_EQ(R.treeString(F), Base.Tree);

  EXPECT_EQ(R.Verdict, RFresh.Verdict);
  EXPECT_EQ(R.treeString(F), RFresh.treeString(F));
  // With rate 1 the degradation hits every run, so pool telemetry is
  // exactly the fresh-mode profile: no context traffic at all.
  EXPECT_EQ(R.Telemetry.Fixpoint.CtxHits, 0u);
  EXPECT_EQ(R.Telemetry.Fixpoint.CtxMisses, 0u);
  EXPECT_EQ(RFresh.Telemetry.Fixpoint.CtxHits, 0u);
  EXPECT_EQ(RFresh.Telemetry.Fixpoint.CtxMisses, 0u);
}

/// The distinct-plan floor the sweep above guarantees: 432 single-site +
/// 192 all-site plans, all with distinct seeds, >= 500 total.
TEST(FaultChaosCoverage, AtLeast500DistinctPlans) {
  std::set<std::string> Plans;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    size_t BenchSalt = std::hash<std::string>()(B.Name) % 100000;
    for (unsigned SiteIdx = 0; SiteIdx < NumFaultSites; ++SiteIdx)
      for (uint64_t SeedIdx = 0; SeedIdx < 2; ++SeedIdx)
        Plans.insert(std::to_string(BenchSalt + SiteIdx * 10 + SeedIdx) +
                     (SeedIdx ? ":0.25:" : ":1:") +
                     faultSiteName(static_cast<FaultSite>(SiteIdx)));
    for (uint64_t SeedIdx = 0; SeedIdx < 8; ++SeedIdx)
      Plans.insert(std::to_string(200000 + BenchSalt * 8 + SeedIdx) + ":" +
                   (SeedIdx % 2 ? "0.1" : "0.02"));
  }
  EXPECT_GE(Plans.size(), 500u);
}

} // namespace
