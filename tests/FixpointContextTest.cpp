//===- FixpointContextTest.cpp - Pooled-context byte-identity suite --------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread fixpoint context pool (AnalyzerConfig::PooledContext)
/// amortizes shape decomposition, arena allocation, and comparison work
/// across same-shape trail fixpoints. Like the arc cache before it, the
/// pool promises full transparency: it changes where states live and how
/// the no-change test is evaluated, never a single computed byte. This
/// harness holds it to that —
///  - entry-state byte-identity pooled vs fresh at the Analyzer level, on
///    the most-general products of all 24 Table-1 benchmarks and a swarm
///    of seeded random loopy programs, under both WTO and FIFO and for
///    both engine domains (zones and intervals), including repeated
///    same-shape runs so the fast paths actually engage;
///  - exact trajectory equality (Pops, Widenings, Sweeps): the comparison
///    fast path must replay the recursion's counters, not skip them;
///  - driver-level fingerprint identity (verdict, rendered tree, attacks,
///    degradation) for fixpoint-ctx {pooled, fresh} x jobs {1, 2, 8} x
///    both schedulers over Table-1 plus the strict-ct family;
///  - a WTO-reuse oracle: the pooled schedule must equal a from-scratch
///    Bourdoncle decomposition of the same graph, every time;
///  - pool telemetry: context hits >= 90% on repeated-shape runs, batching
///    and comparison counters live, and the JSON schema carries them.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "absint/FixpointContext.h"
#include "absint/ProductGraph.h"
#include "absint/Wto.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "core/Blazer.h"
#include "ir/Cfg.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

AnalyzerConfig ctxConfig(bool UseWto, bool Pooled) {
  AnalyzerConfig C;
  C.UseWto = UseWto;
  C.PooledContext = Pooled;
  return C;
}

/// Byte-identity of two analysis results: equal entry states (equals()
/// compares bottom flags and every matrix/interval entry — exactly the
/// bytes the rest of the engine can observe) and equal feasibility.
template <NumericDomain Domain>
void expectIdenticalStates(const AnalysisResultT<Domain> &Pooled,
                           const AnalysisResultT<Domain> &Fresh,
                           const std::vector<std::string> &Names) {
  ASSERT_EQ(Pooled.EntryState.size(), Fresh.EntryState.size());
  for (size_t Id = 0; Id < Pooled.EntryState.size(); ++Id) {
    EXPECT_TRUE(Pooled.EntryState[Id].equals(Fresh.EntryState[Id]))
        << "entry states differ at product node " << Id << "\n  pooled: "
        << Pooled.EntryState[Id].str(Names) << "\n  fresh:  "
        << Fresh.EntryState[Id].str(Names);
    EXPECT_EQ(Pooled.Feasible[Id], Fresh.Feasible[Id]) << "node " << Id;
  }
}

/// The trajectory invariant: the comparison fast path and the batched
/// walk must *replay* the recursion's counters, never short-circuit them.
template <NumericDomain Domain>
void expectIdenticalTrajectory(const AnalysisResultT<Domain> &Pooled,
                               const AnalysisResultT<Domain> &Fresh) {
  EXPECT_EQ(Pooled.Stats.Pops, Fresh.Stats.Pops);
  EXPECT_EQ(Pooled.Stats.Widenings, Fresh.Stats.Widenings);
  EXPECT_EQ(Pooled.Stats.Sweeps, Fresh.Stats.Sweeps);
}

//===----------------------------------------------------------------------===//
// Analyzer-level identity: Table-1 most-general products, both domains
//===----------------------------------------------------------------------===//

TEST(FixpointContextInvariants, EntryStatesIdenticalOnMostGeneralProducts) {
  uint64_t TotalCtxHits = 0;
  uint64_t TotalBatched = 0;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    for (bool UseWto : {true, false}) {
      SCOPED_TRACE(UseWto ? "wto" : "fifo");
      Analyzer AzPooled(F, BA.env(), ctxConfig(UseWto, true));
      Analyzer AzFresh(F, BA.env(), ctxConfig(UseWto, false));
      // Repeat the pooled run so the second pass exercises shape reuse,
      // stamp-reset arenas, and the comparison memo — each repetition must
      // still match the fresh run byte for byte.
      AnalysisResult Fresh = AzFresh.analyze(G);
      for (int Round = 0; Round < 3; ++Round) {
        SCOPED_TRACE("round " + std::to_string(Round));
        AnalysisResult Pooled = AzPooled.analyze(G);
        expectIdenticalStates(Pooled, Fresh, BA.env().names());
        expectIdenticalTrajectory(Pooled, Fresh);
        // Fresh mode never touches the pool.
        EXPECT_EQ(Fresh.Stats.CtxHits + Fresh.Stats.CtxMisses, 0u);
        EXPECT_EQ(Fresh.Stats.CmpFastHits + Fresh.Stats.CmpFastMisses, 0u);
        EXPECT_EQ(Fresh.Stats.BatchPasses, 0u);
        TotalCtxHits += Pooled.Stats.CtxHits;
        TotalBatched += Pooled.Stats.BatchedNodes;
      }
    }
  }
  // Across the suite the pool must score real shape hits and the batched
  // walk must visit real body nodes, or the A/B above compared two copies
  // of the fresh path.
  EXPECT_GT(TotalCtxHits, 0u);
  EXPECT_GT(TotalBatched, 0u);
}

TEST(FixpointContextInvariants, IntervalDomainStatesIdenticalToo) {
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    for (bool UseWto : {true, false}) {
      SCOPED_TRACE(UseWto ? "wto" : "fifo");
      IntervalAnalyzer AzPooled(F, BA.env(), ctxConfig(UseWto, true));
      IntervalAnalyzer AzFresh(F, BA.env(), ctxConfig(UseWto, false));
      IntervalAnalysisResult Fresh = AzFresh.analyze(G);
      for (int Round = 0; Round < 2; ++Round) {
        IntervalAnalysisResult Pooled = AzPooled.analyze(G);
        expectIdenticalStates(Pooled, Fresh, BA.env().names());
        expectIdenticalTrajectory(Pooled, Fresh);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Seeded random loopy products
//===----------------------------------------------------------------------===//

/// Deterministic xorshift RNG (no global state, reproducible per seed).
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint32_t S;
};

/// Compact random-function generator biased toward what stresses the
/// context pool: nested loops (widening, flat and non-flat components,
/// descending sweeps) and multi-predecessor join points. Bounded counter
/// loops keep every program terminating.
class CtxProgramGen {
public:
  explicit CtxProgramGen(uint32_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "fn ctxfuzz(secret h: int, public l: int) {\n";
    OS << "  var a: int = 0;\n  var b: int = 0;\n";
    block(1, /*Depth=*/0);
    OS << "}\n";
    return OS.str();
  }

private:
  const char *scalar() {
    switch (R.range(0, 3)) {
    case 0:
      return "h";
    case 1:
      return "l";
    case 2:
      return "a";
    default:
      return "b";
    }
  }

  void indent(int Ind) {
    for (int I = 0; I <= Ind; ++I)
      OS << "  ";
  }

  std::string cond() {
    std::ostringstream C;
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    C << scalar() << " " << Ops[R.range(0, 5)] << " ";
    if (R.chance(60))
      C << R.range(-2, 4);
    else
      C << scalar();
    return C.str();
  }

  void assign(int Ind) {
    indent(Ind);
    const char *T = R.chance(50) ? "a" : "b";
    if (R.chance(40))
      OS << T << " = " << R.range(-3, 7) << ";\n";
    else
      OS << T << " = " << scalar() << " + " << R.range(-2, 3) << ";\n";
  }

  void loop(int Ind, int Depth) {
    int Id = NextLoop++;
    std::string V = "i" + std::to_string(Id);
    indent(Ind);
    OS << "var " << V << ": int = 0;\n";
    indent(Ind);
    OS << "while (" << V << " < "
       << (R.chance(50) ? std::string(R.chance(50) ? "l" : "h")
                        : std::to_string(R.range(1, 5)))
       << ") {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind + 1);
    OS << V << " = " << V << " + 1;\n";
    indent(Ind);
    OS << "}\n";
  }

  void branch(int Ind, int Depth) {
    indent(Ind);
    OS << "if (" << cond() << ") {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind);
    OS << "} else {\n";
    block(Ind + 1, Depth + 1);
    indent(Ind);
    OS << "}\n";
  }

  void block(int Ind, int Depth) {
    int Stmts = R.range(1, 3);
    for (int I = 0; I < Stmts; ++I) {
      // Heavier loop bias than the arc-cache fuzzer: flat single loops
      // (batchable) and nested ones (recursive path) both matter here.
      int Kind = R.range(0, 9);
      if (Kind < 4 || Depth >= 3)
        assign(Ind);
      else if (Kind < 7)
        branch(Ind, Depth);
      else
        loop(Ind, Depth);
    }
  }

  Rng R;
  std::ostringstream OS;
  int NextLoop = 0;
};

CfgFunction compileCtxFuzz(uint32_t Seed, std::string *SrcOut = nullptr) {
  CtxProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  if (SrcOut)
    *SrcOut = Src;
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F))
      << (F ? "" : F.diag().str()) << "\n"
      << Src;
  return F.take();
}

class FixpointContextRandomProducts : public ::testing::TestWithParam<int> {};

TEST_P(FixpointContextRandomProducts, EntryStatesIdentical) {
  std::string Src;
  CfgFunction F = compileCtxFuzz(static_cast<uint32_t>(GetParam()), &Src);
  BoundAnalysis BA(F);
  ProductGraph G =
      ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
  ASSERT_FALSE(G.empty()) << Src;
  for (bool UseWto : {true, false}) {
    SCOPED_TRACE(std::string(UseWto ? "wto" : "fifo") + "\n" + Src);
    Analyzer AzPooled(F, BA.env(), ctxConfig(UseWto, true));
    Analyzer AzFresh(F, BA.env(), ctxConfig(UseWto, false));
    AnalysisResult Fresh = AzFresh.analyze(G);
    for (int Round = 0; Round < 2; ++Round) {
      AnalysisResult Pooled = AzPooled.analyze(G);
      expectIdenticalStates(Pooled, Fresh, BA.env().names());
      expectIdenticalTrajectory(Pooled, Fresh);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixpointContextRandomProducts,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// WTO-reuse oracle
//===----------------------------------------------------------------------===//

/// A pooled run must iterate the exact Bourdoncle decomposition a fresh
/// run would build: after analyzing each most-general product, the shape
/// cached for it renders identically to a from-scratch Wto::build.
TEST(FixpointContextOracle, PooledWtoEqualsFreshDecomposition) {
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    Analyzer Az(F, BA.env(), ctxConfig(/*UseWto=*/true, /*Pooled=*/true));
    (void)Az.analyze(G);
    const FixpointShape *Shape =
        FixpointContext::forThread().peekShape(G);
    ASSERT_NE(Shape, nullptr);
    ASSERT_TRUE(Shape->WtoBuilt);
    Wto Reference = Wto::build(G.successorIds(), G.entry());
    EXPECT_EQ(Shape->W.str(), Reference.str());
    // The flat-component mask is a pure function of the decomposition.
    EXPECT_EQ(Shape->FlatComponent, Reference.flatComponents());
  }
}

//===----------------------------------------------------------------------===//
// Pool telemetry: hit rate, fast-path traffic, JSON schema
//===----------------------------------------------------------------------===//

/// Repeated same-shape fixpoints are the pool's design load (the cascade
/// re-runs every promoted product, refinement revisits sibling trails).
/// Twenty same-shape runs must score >= 90% context hits and engage the
/// comparison fast path.
TEST(FixpointContextTelemetry, RepeatedShapeHitRateAtLeast90Percent) {
  const BenchmarkProgram *B = findBenchmark("modPow2_safe");
  ASSERT_NE(B, nullptr);
  CfgFunction F = B->compile();
  BoundAnalysis BA(F);
  ProductGraph G =
      ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
  ASSERT_FALSE(G.empty());
  FixpointContext::forThread().clear();
  Analyzer Az(F, BA.env(), ctxConfig(/*UseWto=*/true, /*Pooled=*/true));
  uint64_t Hits = 0, Misses = 0;
  for (int Round = 0; Round < 20; ++Round) {
    AnalysisResult R = Az.analyze(G);
    Hits += R.Stats.CtxHits;
    Misses += R.Stats.CtxMisses;
  }
  ASSERT_EQ(Hits + Misses, 20u);
  EXPECT_EQ(Misses, 1u); // Only the cold first run builds the shape.
  EXPECT_GE(static_cast<double>(Hits) / (Hits + Misses), 0.90);
}

/// The comparison memo is reset per run (version tokens are only
/// comparable within one fixpoint), so fast-path hits come from re-pops
/// whose inputs sat still — outer passes over stabilized inner components
/// and late passes over flat bodies. Across the Table-1 products and the
/// fuzz swarm the path must score real hits, or every token check was
/// wasted work.
TEST(FixpointContextTelemetry, ComparisonFastPathScoresHits) {
  uint64_t CmpHits = 0, CmpMisses = 0;
  auto Sample = [&](const CfgFunction &F) {
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    if (G.empty())
      return;
    for (bool UseWto : {true, false}) {
      Analyzer Az(F, BA.env(), ctxConfig(UseWto, /*Pooled=*/true));
      AnalysisResult R = Az.analyze(G);
      CmpHits += R.Stats.CmpFastHits;
      CmpMisses += R.Stats.CmpFastMisses;
    }
  };
  for (const BenchmarkProgram &B : allBenchmarks()) {
    CfgFunction F = B.compile();
    Sample(F);
  }
  for (uint32_t Seed = 0; Seed < 40; ++Seed) {
    CfgFunction F = compileCtxFuzz(Seed);
    Sample(F);
  }
  // Every pooled pop draws exactly one token check.
  EXPECT_GT(CmpMisses, 0u);
  EXPECT_GT(CmpHits, 0u);
}

TEST(FixpointContextTelemetry, CountersReachBlazerResultAndJsonSchema) {
  const BenchmarkProgram *B = findBenchmark("modPow2_safe");
  ASSERT_NE(B, nullptr);
  BlazerResult Pooled = runBenchmark(*B);
  // The driver's cascade reruns each promoted product in the zone domain
  // after the interval pre-pass, so pooled runs always score shape hits —
  // and the pre-pass that inserted each shape counts its cold miss.
  EXPECT_GT(Pooled.Telemetry.Fixpoint.CtxHits, 0u);
  EXPECT_GT(Pooled.Telemetry.Fixpoint.CtxMisses, 0u);

  EngineConfig FreshEngine;
  ASSERT_TRUE(FreshEngine.set("fixpoint-ctx", "fresh"));
  BlazerResult Fresh = runBenchmark(*B, {}, 1, FreshEngine);
  EXPECT_EQ(Fresh.Telemetry.Fixpoint.CtxHits, 0u);
  EXPECT_EQ(Fresh.Telemetry.Fixpoint.CtxMisses, 0u);
  EXPECT_EQ(Fresh.Telemetry.Fixpoint.CmpFastHits, 0u);
  EXPECT_EQ(Fresh.Telemetry.Fixpoint.BatchPasses, 0u);

  // The JSON schema carries the nested ctx object on both surfaces.
  std::string Json = Pooled.Telemetry.json();
  EXPECT_NE(Json.find("\"ctx\": {\"hits\": "), std::string::npos);
  EXPECT_NE(Json.find("\"batch_passes\": "), std::string::npos);
  EXPECT_NE(Json.find("\"cmp_fast_hits\": "), std::string::npos);
}

/// The engine-knob surface round-trips and rejects garbage.
TEST(FixpointContextKnob, RegistryRoundTrip) {
  EngineConfig E;
  EXPECT_EQ(E.get("fixpoint-ctx"), "pooled");
  EXPECT_TRUE(E.set("fixpoint-ctx", "fresh"));
  EXPECT_FALSE(E.PooledFixpointCtx);
  EXPECT_EQ(E.get("fixpoint-ctx"), "fresh");
  EXPECT_TRUE(E.set("fixpoint-ctx", "pooled"));
  EXPECT_TRUE(E.PooledFixpointCtx);
  std::string Err;
  EXPECT_FALSE(E.set("fixpoint-ctx", "maybe", &Err));
  EXPECT_NE(Err.find("pooled|fresh"), std::string::npos);
  EXPECT_NE(E.str().find("fixpoint-ctx=pooled"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Driver-level differential: Table-1 + strict-ct x jobs {1,2,8}
//===----------------------------------------------------------------------===//

/// The analysis outputs that must not depend on the context pool (nor,
/// per the existing scheduler suite, on the job count).
struct RunFingerprint {
  std::string Verdict;
  std::string Tree;
  std::string Attacks;
  std::string Degradation;
};

RunFingerprint fingerprint(const CfgFunction &F, const BlazerResult &R) {
  RunFingerprint FP;
  FP.Verdict = verdictName(R.Verdict);
  FP.Tree = R.treeString(F);
  std::ostringstream Attacks;
  for (const AttackSpec &Spec : R.Attacks)
    Attacks << Spec.str() << "\n";
  FP.Attacks = Attacks.str();
  FP.Degradation = R.Degradation.str();
  return FP;
}

void expectIdentical(const RunFingerprint &A, const RunFingerprint &B,
                     const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Tree, B.Tree);
  EXPECT_EQ(A.Attacks, B.Attacks);
  EXPECT_EQ(A.Degradation, B.Degradation);
}

class FixpointContextDifferential
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(FixpointContextDifferential,
       PooledAndFreshAgreeAtAnyJobsUnderBothSchedulers) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  for (bool Fifo : {false, true}) {
    EngineConfig Pooled;
    Pooled.Fixpoint = Fifo ? FixpointSched::Fifo : FixpointSched::Wto;
    EngineConfig Fresh = Pooled;
    Fresh.PooledFixpointCtx = false;
    std::string Sched = Fifo ? "fifo" : "wto";
    RunFingerprint Base = fingerprint(F, runBenchmark(B, {}, 1, Pooled));
    for (int Jobs : {1, 2, 8})
      expectIdentical(fingerprint(F, runBenchmark(B, {}, Jobs, Fresh)), Base,
                      B.Name + " " + Sched + " fixpoint-ctx=fresh jobs=" +
                          std::to_string(Jobs));
    for (int Jobs : {2, 8})
      expectIdentical(fingerprint(F, runBenchmark(B, {}, Jobs, Pooled)), Base,
                      B.Name + " " + Sched + " fixpoint-ctx=pooled jobs=" +
                          std::to_string(Jobs));
  }
}

std::vector<const BenchmarkProgram *> benchmarkPointers() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  // The strict-ct crypto-kernel family rides along: its verdicts come
  // from the same fixpoints, so the pooled/fresh identity must hold
  // there too.
  for (const BenchmarkProgram &B : tableCtBenchmarks())
    Out.push_back(&B);
  return Out;
}

std::string benchmarkName(
    const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
  return Info.param->Name;
}

INSTANTIATE_TEST_SUITE_P(Table1, FixpointContextDifferential,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

} // namespace
