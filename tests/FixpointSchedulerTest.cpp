//===- FixpointSchedulerTest.cpp - WTO vs FIFO differential suite ----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zone fixpoint promises scheduler-independent results: the default
/// WTO engine and the legacy FIFO worklist must produce byte-identical
/// verdicts, bounds, rendered trees, attack specifications, and
/// degradation reasons — at any job count. This harness checks that over
/// all 24 Table-1 benchmarks and the samples/*.blz programs, checks the
/// raw per-node invariants at the Analyzer level, verifies that
/// budget-tripped runs never report Safe under either scheduler, and unit
/// tests the weak-topological-order construction on straight-line, simply
/// looped, nested, self-looped, irreducible, and entry-in-loop shapes.
///
/// Work counters (ResourceUsage, FixpointStats) are deliberately NOT
/// compared across schedulers: iterating in a different order does a
/// different amount of work — that is the point — while the semantics must
/// not move.
///
//===----------------------------------------------------------------------===//

#include "absint/Analyzer.h"
#include "absint/ProductGraph.h"
#include "absint/Wto.h"
#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "core/Blazer.h"
#include "ir/Cfg.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

//===----------------------------------------------------------------------===//
// WTO construction
//===----------------------------------------------------------------------===//

/// True when the subgraph of \p Succs obtained by deleting every node V
/// with HeadNode(V) still contains a cycle — i.e. the heads were NOT an
/// admissible widening set.
bool cycleAvoidingHeads(const std::vector<std::vector<int>> &Succs,
                        const Wto &W) {
  size_t N = Succs.size();
  // Iterative DFS with colors over non-head nodes.
  std::vector<int> Color(N, 0); // 0 white, 1 gray, 2 black.
  for (size_t Root = 0; Root < N; ++Root) {
    if (Color[Root] != 0 || W.isHeadNode(static_cast<int>(Root)))
      continue;
    std::vector<std::pair<int, size_t>> Stack{{static_cast<int>(Root), 0}};
    Color[Root] = 1;
    while (!Stack.empty()) {
      auto &[V, I] = Stack.back();
      if (I < Succs[V].size()) {
        int S = Succs[V][I++];
        if (W.isHeadNode(S))
          continue;
        if (Color[S] == 1)
          return true; // Back edge among non-heads: uncovered cycle.
        if (Color[S] == 0) {
          Color[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Color[V] = 2;
      Stack.pop_back();
    }
  }
  return false;
}

TEST(WtoTest, StraightLineHasNoHeads) {
  std::vector<std::vector<int>> Succs = {{1}, {2}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "0 1 2");
  EXPECT_EQ(W.headCount(), 0u);
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
}

TEST(WtoTest, SimpleLoop) {
  // 0 -> 1 -> 2 -> {1, 3}
  std::vector<std::vector<int>> Succs = {{1}, {2}, {1, 3}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "0 (1 2) 3");
  EXPECT_EQ(W.headCount(), 1u);
  EXPECT_TRUE(W.isHeadNode(1));
  EXPECT_FALSE(W.isHeadNode(2));
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
}

TEST(WtoTest, SelfLoopIsAHeadWithEmptyBody) {
  // 0 -> 1 -> {1, 2}: node 1's component has no body, yet it must widen.
  std::vector<std::vector<int>> Succs = {{1}, {1, 2}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "0 (1) 2");
  EXPECT_EQ(W.headCount(), 1u);
  EXPECT_TRUE(W.isHeadNode(1));
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
}

TEST(WtoTest, NestedLoops) {
  // 0 -> (1 -> (2 <-> 3) -> 4 -> back to 1) -> 5
  std::vector<std::vector<int>> Succs = {{1}, {2}, {3}, {2, 4}, {1, 5}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "0 (1 (2 3) 4) 5");
  EXPECT_EQ(W.headCount(), 2u);
  EXPECT_TRUE(W.isHeadNode(1));
  EXPECT_TRUE(W.isHeadNode(2));
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
}

TEST(WtoTest, IrreducibleLoopStillCoversItsCycle) {
  // The SCC {1, 2} has two entries (0 -> 1 and 0 -> 2): no natural-loop
  // header exists, but the WTO head must still cut the cycle.
  std::vector<std::vector<int>> Succs = {{1, 2}, {2, 3}, {1}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.headCount(), 1u);
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
  // Every node appears exactly once.
  std::vector<int> Seen(Succs.size(), 0);
  for (const Wto::Item &It : W.items())
    ++Seen[It.Node];
  for (size_t V = 0; V < Succs.size(); ++V)
    EXPECT_EQ(Seen[V], 1) << "node " << V;
}

TEST(WtoTest, EntryInsideALoop) {
  // 0 <-> 1, 1 -> 2: the component head is the entry itself.
  std::vector<std::vector<int>> Succs = {{1}, {0, 2}, {}};
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "(0 1) 2");
  EXPECT_TRUE(W.isHeadNode(0));
  EXPECT_FALSE(cycleAvoidingHeads(Succs, W));
}

TEST(WtoTest, UnreachableNodesAreOmitted) {
  std::vector<std::vector<int>> Succs = {{1}, {}, {1}}; // 2 unreachable.
  Wto W = Wto::build(Succs, 0);
  EXPECT_EQ(W.str(), "0 1");
  EXPECT_EQ(W.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Analyzer-level invariant identity
//===----------------------------------------------------------------------===//

/// Both schedulers must compute the same per-node entry states (as zone
/// elements, i.e. mutually leq) on the most-general product of every
/// benchmark.
TEST(SchedulerInvariants, EntryStatesAgreeOnMostGeneralProducts) {
  for (const BenchmarkProgram &B : allBenchmarks()) {
    SCOPED_TRACE(B.Name);
    CfgFunction F = B.compile();
    BoundAnalysis BA(F);
    ProductGraph G =
        ProductGraph::build(F, BA.mostGeneralTrail(), BA.alphabet());
    ASSERT_FALSE(G.empty());
    Analyzer AzWto(F, BA.env(), /*UseWto=*/true);
    Analyzer AzFifo(F, BA.env(), /*UseWto=*/false);
    AnalysisResult RW = AzWto.analyze(G);
    AnalysisResult RF = AzFifo.analyze(G);
    ASSERT_EQ(RW.EntryState.size(), RF.EntryState.size());
    for (size_t Id = 0; Id < RW.EntryState.size(); ++Id) {
      EXPECT_TRUE(RW.EntryState[Id].leq(RF.EntryState[Id]) &&
                  RF.EntryState[Id].leq(RW.EntryState[Id]))
          << "entry states differ at product node " << Id;
      EXPECT_EQ(RW.Feasible[Id], RF.Feasible[Id]) << "node " << Id;
    }
    // The memo must actually serve hits: every product arc beyond a node's
    // first consults the cached post-block state.
    EXPECT_GT(RW.Stats.TransferHits + RW.Stats.TransferMisses, 0u);
    EXPECT_GT(RW.Stats.Pops, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Driver-level differential: Table-1 benchmarks
//===----------------------------------------------------------------------===//

/// The analysis outputs that must not depend on the scheduler. Work
/// counters are excluded on purpose.
struct RunFingerprint {
  std::string Verdict;
  std::string Tree;
  std::string Attacks;
  std::string Degradation;
};

RunFingerprint fingerprint(const CfgFunction &F, const BlazerResult &R) {
  RunFingerprint FP;
  FP.Verdict = verdictName(R.Verdict);
  FP.Tree = R.treeString(F);
  std::ostringstream Attacks;
  for (const AttackSpec &Spec : R.Attacks)
    Attacks << Spec.str() << "\n";
  FP.Attacks = Attacks.str();
  FP.Degradation = R.Degradation.str();
  return FP;
}

void expectIdentical(const RunFingerprint &A, const RunFingerprint &B,
                     const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Tree, B.Tree);
  EXPECT_EQ(A.Attacks, B.Attacks);
  EXPECT_EQ(A.Degradation, B.Degradation);
}

class SchedulerDifferential
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(SchedulerDifferential, WtoAndFifoAgree) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  RunFingerprint Wto = fingerprint(F, runBenchmark(B, {}, 1));
  EngineConfig FifoEngine;
  FifoEngine.Fixpoint = FixpointSched::Fifo;
  for (int Jobs : {1, 8}) {
    RunFingerprint Fifo =
        fingerprint(F, runBenchmark(B, {}, Jobs, FifoEngine));
    expectIdentical(Fifo, Wto,
                    B.Name + " fifo jobs=" + std::to_string(Jobs));
  }
}

std::vector<const BenchmarkProgram *> benchmarkPointers() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

std::string benchmarkName(
    const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
  return Info.param->Name;
}

INSTANTIATE_TEST_SUITE_P(Table1, SchedulerDifferential,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// Budget-tripped runs never report Safe
//===----------------------------------------------------------------------===//

/// Fail-soft must hold under both schedulers: a run whose budget trips
/// mid-fixpoint (or anywhere else) may degrade to Unknown but can never
/// claim Safe.
TEST(SchedulerBudget, TrippedRunsAreNeverSafe) {
  BudgetLimits Tight;
  Tight.MaxJoins = 200; // Trips inside the zone fixpoint on loopy programs.
  int TrippedRuns = 0;
  for (const BenchmarkProgram &B : allBenchmarks()) {
    for (bool Fifo : {false, true}) {
      SCOPED_TRACE(B.Name + (Fifo ? " fifo" : " wto"));
      EngineConfig Engine;
      Engine.Fixpoint = Fifo ? FixpointSched::Fifo : FixpointSched::Wto;
      BlazerResult R = runBenchmark(B, Tight, 1, Engine);
      if (R.Degradation.tripped()) {
        ++TrippedRuns;
        EXPECT_NE(R.Verdict, VerdictKind::Safe);
      }
    }
  }
  // The limit must actually bite somewhere, or this test checks nothing.
  EXPECT_GT(TrippedRuns, 0);
}

//===----------------------------------------------------------------------===//
// Fixpoint stats plumbing
//===----------------------------------------------------------------------===//

TEST(FixpointStatsPlumbing, CountersReachBlazerResult) {
  const BenchmarkProgram *B = findBenchmark("modPow1_safe");
  ASSERT_NE(B, nullptr);
  BlazerResult R = runBenchmark(*B);
  EXPECT_GT(R.Telemetry.Fixpoint.Pops, 0u);
  EXPECT_GT(R.Telemetry.Fixpoint.Joins, 0u);
  EXPECT_GT(R.Telemetry.Fixpoint.TransferMisses, 0u);
  // Products have more arcs than nodes here, so the memo must score hits.
  EXPECT_GT(R.Telemetry.Fixpoint.TransferHits, 0u);
  double Rate = R.Telemetry.Fixpoint.transferHitRate();
  EXPECT_GT(Rate, 0.0);
  EXPECT_LE(Rate, 1.0);
}

//===----------------------------------------------------------------------===//
// samples/*.blz differential
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SAMPLES_DIR
#error "BLAZER_SAMPLES_DIR must be defined by the build"
#endif

class SampleSchedulerDifferential
    : public ::testing::TestWithParam<const char *> {};

TEST_P(SampleSchedulerDifferential, WtoAndFifoAgree) {
  std::string Path = std::string(BLAZER_SAMPLES_DIR) + "/" + GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();

  BuiltinRegistry Registry = BuiltinRegistry::standard();
  auto Parsed = parseProgram(Buf.str());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.diag().str();
  auto P = std::make_shared<Program>(Parsed.take());
  auto Checked = analyzeProgram(*P, Registry);
  ASSERT_TRUE(static_cast<bool>(Checked)) << Checked.diag().str();

  for (const auto &Fn : P->Functions) {
    CfgFunction F = lowerFunction(P, Fn->Name, *Checked, Registry);
    BlazerOptions Opt;
    Opt.Jobs = 1;
    RunFingerprint Wto = fingerprint(F, analyzeFunction(F, Opt));
    Opt.Engine.Fixpoint = FixpointSched::Fifo;
    for (int Jobs : {1, 8}) {
      Opt.Jobs = Jobs;
      RunFingerprint Fifo = fingerprint(F, analyzeFunction(F, Opt));
      expectIdentical(Fifo, Wto,
                      std::string(GetParam()) + ":" + Fn->Name +
                          " fifo jobs=" + std::to_string(Jobs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, SampleSchedulerDifferential,
                         ::testing::Values("adversarial.blz", "modexp.blz",
                                           "pin_check.blz"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (C == '.')
                               C = '_';
                           return Name;
                         });

} // namespace
