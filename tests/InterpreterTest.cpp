//===- InterpreterTest.cpp - Tests for concrete trace semantics ------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

InputAssignment ints(std::map<std::string, int64_t> M) {
  InputAssignment In;
  In.Ints = std::move(M);
  return In;
}

TEST(Interpreter, ReturnsValue) {
  CfgFunction F = compile("fn f(public x: int) -> int { return x + 1; }");
  TraceResult R = runFunction(F, ints({{"x", 41}}));
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.ReturnValue.has_value());
  EXPECT_EQ(*R.ReturnValue, 42);
}

TEST(Interpreter, ArithmeticAndLogic) {
  CfgFunction F = compile(R"(
    fn f(public a: int, public b: int) -> int {
      var r: int = 0;
      if (a > b && !(a == 0) || false) { r = a * b + a / b - a % b; }
      return r;
    }
  )");
  TraceResult R = runFunction(F, ints({{"a", 7}, {"b", 2}}));
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.ReturnValue, 14 + 3 - 1);
  R = runFunction(F, ints({{"a", 1}, {"b", 2}}));
  EXPECT_EQ(*R.ReturnValue, 0);
}

TEST(Interpreter, LoopComputesSum) {
  CfgFunction F = compile(R"(
    fn f(public n: int) -> int {
      var s: int = 0;
      var i: int = 0;
      while (i < n) { i = i + 1; s = s + i; }
      return s;
    }
  )");
  TraceResult R = runFunction(F, ints({{"n", 5}}));
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.ReturnValue, 15);
}

TEST(Interpreter, ArraysLoadStoreLength) {
  CfgFunction F = compile(R"(
    fn f(public a: int[]) -> int {
      a[0] = a[0] + 10;
      return a[0] + a.length;
    }
  )");
  InputAssignment In;
  In.Arrays["a"] = {1, 2, 3};
  TraceResult R = runFunction(F, In);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(*R.ReturnValue, 11 + 3);
}

TEST(Interpreter, MissingInputsDefaultToZeroAndEmpty) {
  CfgFunction F = compile(
      "fn f(public x: int, public a: int[]) -> int { return x + a.length; }");
  TraceResult R = runFunction(F, InputAssignment());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.ReturnValue, 0);
}

TEST(Interpreter, DefaultInitializedLocals) {
  CfgFunction F = compile("fn f() -> int { var x: int; return x; }");
  TraceResult R = runFunction(F, InputAssignment());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.ReturnValue, 0);
}

TEST(Interpreter, BuiltinsAreDeterministic) {
  CfgFunction F = compile("fn f(public x: int) -> int { return md5(x); }");
  TraceResult A = runFunction(F, ints({{"x", 5}}));
  TraceResult B = runFunction(F, ints({{"x", 5}}));
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(*A.ReturnValue, *B.ReturnValue);
  TraceResult C = runFunction(F, ints({{"x", 6}}));
  EXPECT_NE(*A.ReturnValue, *C.ReturnValue);
}

TEST(Interpreter, MulmodMatchesModularArithmetic) {
  CfgFunction F = compile(
      "fn f(public a: int, public b: int, public m: int) -> int "
      "{ return mulmod(a, b, m); }");
  TraceResult R = runFunction(F, ints({{"a", 123}, {"b", 77}, {"m", 1000}}));
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(*R.ReturnValue, (123 * 77) % 1000);
}

//===----------------------------------------------------------------------===//
// Error behaviour
//===----------------------------------------------------------------------===//

TEST(Interpreter, DivisionByZeroFails) {
  CfgFunction F = compile("fn f(public x: int) -> int { return 1 / x; }");
  TraceResult R = runFunction(F, ints({{"x", 0}}));
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Interpreter, OutOfBoundsLoadFails) {
  CfgFunction F = compile("fn f(public a: int[]) -> int { return a[5]; }");
  InputAssignment In;
  In.Arrays["a"] = {1};
  TraceResult R = runFunction(F, In);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(Interpreter, OutOfBoundsStoreFails) {
  CfgFunction F = compile("fn f(public a: int[]) { a[0] = 1; }");
  TraceResult R = runFunction(F, InputAssignment()); // Empty array.
  EXPECT_FALSE(R.Ok);
}

TEST(Interpreter, NonTerminationHitsStepLimit) {
  CfgFunction F = compile(
      "fn f() { var x: int = 1; while (x > 0) { x = 1; } }");
  TraceResult R = runFunction(F, InputAssignment(), /*MaxSteps=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Costs and traces
//===----------------------------------------------------------------------===//

TEST(Interpreter, CostGrowsLinearlyWithLoopTrips) {
  CfgFunction F = compile(R"(
    fn f(public n: int) {
      var i: int = 0;
      while (i < n) { i = i + 1; }
    }
  )");
  int64_t C0 = runFunction(F, ints({{"n", 0}})).Cost;
  int64_t C1 = runFunction(F, ints({{"n", 1}})).Cost;
  int64_t C10 = runFunction(F, ints({{"n", 10}})).Cost;
  int64_t PerIter = C1 - C0;
  EXPECT_GT(PerIter, 0);
  EXPECT_EQ(C10, C0 + 10 * PerIter);
}

TEST(Interpreter, TraceEdgesFormAPathFromEntryToExit) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  TraceResult R = runFunction(F, ints({{"x", 5}}));
  ASSERT_TRUE(R.Ok);
  ASSERT_FALSE(R.Edges.empty());
  EXPECT_EQ(R.Edges.front().From, F.Entry);
  EXPECT_EQ(R.Edges.back().To, F.Exit);
  for (size_t I = 1; I < R.Edges.size(); ++I)
    EXPECT_EQ(R.Edges[I - 1].To, R.Edges[I].From);
}

TEST(Interpreter, BranchSelectsDifferentTraces) {
  CfgFunction F = compile(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }");
  TraceResult A = runFunction(F, ints({{"x", 5}}));
  TraceResult B = runFunction(F, ints({{"x", -5}}));
  EXPECT_NE(A.Edges, B.Edges);
}

//===----------------------------------------------------------------------===//
// Input enumeration + empirical tcf check
//===----------------------------------------------------------------------===//

TEST(InputEnum, CoversIntAndBoolGrids) {
  CfgFunction F = compile("fn f(public x: int, secret b: bool) { }");
  InputGrid Grid;
  Grid.IntValues = {0, 1, 2};
  std::vector<InputAssignment> Ins = enumerateInputs(F, Grid);
  EXPECT_EQ(Ins.size(), 3u * 2u);
}

TEST(InputEnum, ArrayGridsIncludePrefixVariations) {
  CfgFunction F = compile("fn f(public a: int[]) { }");
  InputGrid Grid;
  Grid.ArrayLengths = {0, 2};
  Grid.ElementValues = {0, 1};
  std::vector<InputAssignment> Ins = enumerateInputs(F, Grid);
  // Length 0: one empty array. Length 2: two constant fills plus one
  // distinct prefix variation (the two generated mixes coincide at len 2).
  EXPECT_EQ(Ins.size(), 1u + 3u);
}

TEST(InputEnum, RespectsCap) {
  CfgFunction F = compile(
      "fn f(public a: int, public b: int, public c: int) { }");
  InputGrid Grid;
  Grid.IntValues = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Grid.MaxAssignments = 50;
  EXPECT_EQ(enumerateInputs(F, Grid).size(), 50u);
}

TEST(EmpiricalTcf, FlatProgramHasZeroGap) {
  CfgFunction F = compile(
      "fn f(secret h: int, public l: int) { var x: int = h + l; }");
  InputGrid Grid;
  std::vector<InputAssignment> Ins = enumerateInputs(F, Grid);
  EmpiricalTcf R = empiricalTimingCheck(F, Ins);
  EXPECT_EQ(R.MaxGapEqualLow, 0);
  EXPECT_GT(R.RunsOk, 0u);
}

TEST(EmpiricalTcf, SecretLoopShowsGapWithWitness) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var i: int = 0;
      while (i < h) { i = i + 1; }
    }
  )");
  InputGrid Grid;
  Grid.IntValues = {0, 1, 4};
  std::vector<InputAssignment> Ins = enumerateInputs(F, Grid);
  EmpiricalTcf R = empiricalTimingCheck(F, Ins);
  EXPECT_GT(R.MaxGapEqualLow, 0);
  ASSERT_TRUE(R.Witness.has_value());
  // The witnessing pair agrees on low inputs but not on the secret.
  EXPECT_TRUE(InputAssignment::agreeOn(F, SecurityLevel::Public,
                                       R.Witness->first, R.Witness->second));
  EXPECT_FALSE(InputAssignment::agreeOn(F, SecurityLevel::Secret,
                                        R.Witness->first, R.Witness->second));
}

TEST(EmpiricalTcf, PublicLoopHasNoEqualLowGap) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var i: int = 0;
      while (i < l) { i = i + 1; }
    }
  )");
  InputGrid Grid;
  Grid.IntValues = {0, 2, 5};
  EmpiricalTcf R = empiricalTimingCheck(F, enumerateInputs(F, Grid));
  EXPECT_EQ(R.MaxGapEqualLow, 0);
}

TEST(InputAssignmentStr, RendersIntsAndArrays) {
  InputAssignment In;
  In.Ints["x"] = 3;
  In.Arrays["a"] = {1, 2};
  EXPECT_EQ(In.str(), "{x=3, a=[1,2]}");
}

} // namespace
