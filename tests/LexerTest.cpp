//===- LexerTest.cpp - Tests for the mini-language lexer -------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

std::vector<TokenKind> kinds(const std::string &Src) {
  auto R = lex(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.diag().str());
  std::vector<TokenKind> Out;
  if (R)
    for (const Token &T : *R)
      Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  EXPECT_EQ(kinds(""), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("fn var if else while return skip true false public "
                  "secret int bool"),
            (std::vector<TokenKind>{
                TokenKind::KwFn, TokenKind::KwVar, TokenKind::KwIf,
                TokenKind::KwElse, TokenKind::KwWhile, TokenKind::KwReturn,
                TokenKind::KwSkip, TokenKind::KwTrue, TokenKind::KwFalse,
                TokenKind::KwPublic, TokenKind::KwSecret, TokenKind::KwInt,
                TokenKind::KwBool, TokenKind::Eof}));
}

TEST(Lexer, IdentifiersVsKeywords) {
  auto R = lex("iffy whileLoop _x x_1");
  ASSERT_TRUE(static_cast<bool>(R));
  ASSERT_EQ(R->size(), 5u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ((*R)[I].Kind, TokenKind::Identifier);
  EXPECT_EQ((*R)[0].Text, "iffy");
  EXPECT_EQ((*R)[3].Text, "x_1");
}

TEST(Lexer, IntegerLiterals) {
  auto R = lex("0 7 123456789");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ((*R)[0].IntValue, 0);
  EXPECT_EQ((*R)[1].IntValue, 7);
  EXPECT_EQ((*R)[2].IntValue, 123456789);
}

TEST(Lexer, TwoCharOperators) {
  EXPECT_EQ(kinds("-> == != <= >= && ||"),
            (std::vector<TokenKind>{
                TokenKind::Arrow, TokenKind::EqEq, TokenKind::BangEq,
                TokenKind::LessEq, TokenKind::GreaterEq, TokenKind::AmpAmp,
                TokenKind::PipePipe, TokenKind::Eof}));
}

TEST(Lexer, SingleCharOperators) {
  EXPECT_EQ(kinds("( ) { } [ ] , ; : = + - * / % ! < > ."),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
                TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
                TokenKind::Comma, TokenKind::Semicolon, TokenKind::Colon,
                TokenKind::Assign, TokenKind::Plus, TokenKind::Minus,
                TokenKind::Star, TokenKind::Slash, TokenKind::Percent,
                TokenKind::Bang, TokenKind::Less, TokenKind::Greater,
                TokenKind::Dot, TokenKind::Eof}));
}

TEST(Lexer, LineCommentsAreSkipped) {
  EXPECT_EQ(kinds("x // this is a comment\ny"),
            (std::vector<TokenKind>{TokenKind::Identifier,
                                    TokenKind::Identifier, TokenKind::Eof}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto R = lex("a\n  b");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ((*R)[0].Line, 1);
  EXPECT_EQ((*R)[0].Col, 1);
  EXPECT_EQ((*R)[1].Line, 2);
  EXPECT_EQ((*R)[1].Col, 3);
}

TEST(Lexer, RejectsUnknownCharacter) {
  auto R = lex("a @ b");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.diag().Message.find("unexpected character"), std::string::npos);
  EXPECT_EQ(R.diag().Line, 1);
  EXPECT_EQ(R.diag().Col, 3);
}

TEST(Lexer, RejectsLoneAmpersand) {
  auto R = lex("a & b");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(Lexer, GreedyOperatorMatching) {
  // "<=" must not lex as "<" "=".
  auto R = lex("a<=b");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ((*R)[1].Kind, TokenKind::LessEq);
}

TEST(Lexer, MinusGreaterIsArrow) {
  auto R = lex("x->y - >z");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ((*R)[1].Kind, TokenKind::Arrow);
  EXPECT_EQ((*R)[3].Kind, TokenKind::Minus);
  EXPECT_EQ((*R)[4].Kind, TokenKind::Greater);
}

} // namespace
