//===- ObserverTest.cpp - Tests for the observability models ---------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Observer.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CostPoly var(const std::string &N) { return CostPoly::variable(N); }
CostPoly c(int64_t V) { return CostPoly::constant(V); }

std::function<bool(const std::string &)> highSet(
    std::initializer_list<std::string> Names) {
  std::set<std::string> S(Names);
  return [S](const std::string &V) { return S.count(V) > 0; };
}

//===----------------------------------------------------------------------===//
// Polynomial-degree model (MicroBench, §6.1)
//===----------------------------------------------------------------------===//

TEST(DegreeObserver, SameDegreeLinearIsNarrow) {
  ObserverModel M = ObserverModel::polynomialDegree(16);
  // Figure 1 shape: [19g+10, 23g+10].
  BoundRange R(Bound::lower(var("g") * 19 + c(10)),
               Bound::upper(var("g") * 23 + c(10)));
  EXPECT_TRUE(M.isNarrow(R, highSet({})));
}

TEST(DegreeObserver, ConstantVsLinearIsNotNarrow) {
  ObserverModel M = ObserverModel::polynomialDegree(16);
  BoundRange R(Bound::lower(c(6)), Bound::upper(var("g") * 20 + c(8)));
  EXPECT_FALSE(M.isNarrow(R, highSet({})));
}

TEST(DegreeObserver, ConstantGapWithinEpsilonIsNarrow) {
  ObserverModel M = ObserverModel::polynomialDegree(16);
  EXPECT_TRUE(M.isNarrow(BoundRange(Bound::lower(c(10)),
                                    Bound::upper(c(20))),
                         highSet({})));
  EXPECT_FALSE(M.isNarrow(BoundRange(Bound::lower(c(10)),
                                     Bound::upper(c(100))),
                          highSet({})));
}

TEST(DegreeObserver, HighVariableAllowedWhenDegreesMatch) {
  // The crude asymptotic observer cannot distinguish two linear-in-secret
  // running times (this is what lets loopAndbranch_safe verify).
  ObserverModel M = ObserverModel::polynomialDegree(16);
  BoundRange R(Bound::lower(var("high") * 8 + c(11)),
               Bound::upper(var("high") * 8 + c(25)));
  EXPECT_TRUE(M.isNarrow(R, highSet({"high"})));
}

TEST(DegreeObserver, LowerEnvelopeUsesMinDegree) {
  // A constant member in the min-set means some executions finish in O(1):
  // against a linear upper bound that is a leak.
  ObserverModel M = ObserverModel::polynomialDegree(16);
  Bound Lo = Bound::lower(var("h") * 8 + c(11));
  Lo.merge(Bound::lower(c(20)));
  BoundRange R(Lo, Bound::upper(var("h") * 8 + c(25)));
  EXPECT_FALSE(M.isNarrow(R, highSet({"h"})));
}

//===----------------------------------------------------------------------===//
// Concrete-instruction model (STAC/Literature, §6.1)
//===----------------------------------------------------------------------===//

TEST(ConcreteObserver, GapUnderThresholdIsNarrow) {
  ObserverModel M = ObserverModel::concreteInstructions(25000, 4096);
  BoundRange R(Bound::lower(var("g") * 19 + c(10)),
               Bound::upper(var("g") * 23 + c(10)));
  // Gap = 4 * 4096 = 16384 <= 25000.
  EXPECT_TRUE(M.isNarrow(R, highSet({})));
}

TEST(ConcreteObserver, GapOverThresholdIsNotNarrow) {
  ObserverModel M = ObserverModel::concreteInstructions(25000, 4096);
  BoundRange R(Bound::lower(c(10)), Bound::upper(var("g") * 98 + c(10)));
  EXPECT_FALSE(M.isNarrow(R, highSet({})));
}

TEST(ConcreteObserver, MaxInputOverrideShrinksGap) {
  ObserverModel M = ObserverModel::concreteInstructions(500, 4096);
  M.setMaxInput("g", 10);
  BoundRange R(Bound::lower(c(0)), Bound::upper(var("g") * 20));
  EXPECT_TRUE(M.isNarrow(R, highSet({}))); // 200 <= 500.
}

TEST(ConcreteObserver, SecretVariableInBoundsIsNeverNarrow) {
  ObserverModel M = ObserverModel::concreteInstructions(25000, 4096);
  // Even a tiny gap leaks if the bound itself tracks the secret.
  BoundRange R(Bound::lower(var("p.len") * 20),
               Bound::upper(var("p.len") * 20 + c(2)));
  EXPECT_FALSE(M.isNarrow(R, highSet({"p.len"})));
}

TEST(ConcreteObserver, PinnedSecretSymbolIsAllowed) {
  // Key sizes are public knowledge: pinning exempts them.
  ObserverModel M = ObserverModel::concreteInstructions(25000, 4096);
  M.pinSymbol("exponent.len", 4096);
  EXPECT_TRUE(M.isPinned("exponent.len"));
  BoundRange R(Bound::lower(var("exponent.len") * 100),
               Bound::upper(var("exponent.len") * 100 + c(40)));
  EXPECT_TRUE(M.isNarrow(R, highSet({"exponent.len"})));
}

TEST(ConcreteObserver, EvalMaxOverBoxDropsNegativeMonomials) {
  ObserverModel M = ObserverModel::concreteInstructions(100, 50);
  CostPoly P = var("a") * 2 - var("b") * 3 + c(7);
  // a at max (50), the -3b monomial contributes at most 0.
  EXPECT_EQ(M.evalMaxOverBox(P), 107);
}

TEST(ConcreteObserver, EvalMaxNegativeConstantKept) {
  ObserverModel M = ObserverModel::concreteInstructions(100, 50);
  EXPECT_EQ(M.evalMaxOverBox(c(-5)), -5);
}

//===----------------------------------------------------------------------===//
// observablyDifferent (CheckAttack's comparison)
//===----------------------------------------------------------------------===//

TEST(Observer, IdenticalRangesAreNotDifferent) {
  ObserverModel M = ObserverModel::concreteInstructions(700, 100);
  BoundRange A(Bound::lower(c(6)), Bound::upper(var("g") * 20 + c(8)));
  EXPECT_FALSE(M.observablyDifferent(A, A));
}

TEST(Observer, ConstantShiftWithinThresholdNotDifferent) {
  ObserverModel M = ObserverModel::concreteInstructions(700, 100);
  BoundRange A(Bound::lower(c(6)), Bound::upper(var("g") * 20 + c(8)));
  BoundRange B(Bound::lower(c(10)), Bound::upper(var("g") * 20 + c(100)));
  EXPECT_FALSE(M.observablyDifferent(A, B));
}

TEST(Observer, StructurallyDifferentUppersAreDifferent) {
  // The loginBad tr3/tr4 situation: max(g-1, p) vs g slopes.
  ObserverModel M = ObserverModel::concreteInstructions(700, 100);
  Bound HiA = Bound::upper(var("g") * 20 - c(12));
  HiA.merge(Bound::upper(var("p") * 20 + c(8)));
  BoundRange A(Bound::lower(c(6)), HiA);
  BoundRange B(Bound::lower(c(6)), Bound::upper(var("g") * 20 + c(8)));
  EXPECT_TRUE(M.observablyDifferent(A, B));
}

TEST(Observer, ConstantVsLinearIsDifferent) {
  ObserverModel M = ObserverModel::polynomialDegree(16);
  BoundRange A = BoundRange::exact(11);
  BoundRange B(Bound::lower(c(7)), Bound::upper(var("p") * 20 + c(43)));
  EXPECT_TRUE(M.observablyDifferent(A, B));
}

TEST(Observer, BigConstantGapIsDifferent) {
  ObserverModel M = ObserverModel::polynomialDegree(16);
  EXPECT_TRUE(M.observablyDifferent(BoundRange::exact(3),
                                    BoundRange::exact(863)));
  EXPECT_FALSE(M.observablyDifferent(BoundRange::exact(3),
                                     BoundRange::exact(13)));
}

//===----------------------------------------------------------------------===//
// Parameterized threshold sweep
//===----------------------------------------------------------------------===//

class ThresholdSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ThresholdSweep, NarrownessIsMonotoneInThreshold) {
  int64_t Gap = GetParam();
  BoundRange R(Bound::lower(c(0)), Bound::upper(c(Gap)));
  ObserverModel Tight = ObserverModel::concreteInstructions(Gap - 1, 10);
  ObserverModel Loose = ObserverModel::concreteInstructions(Gap, 10);
  EXPECT_FALSE(Tight.isNarrow(R, highSet({})));
  EXPECT_TRUE(Loose.isNarrow(R, highSet({})));
}

INSTANTIATE_TEST_SUITE_P(Gaps, ThresholdSweep,
                         ::testing::Values(1, 2, 10, 100, 25000, 1000000));

} // namespace
