//===- ParallelDeterminismTest.cpp - jobs=1 vs jobs=N byte-identity ---------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel trail-tree analysis promises byte-identical results for any
/// worker count: refinement rounds plan splits concurrently but adopt them
/// sequentially in tree order, so the trail tree — and everything derived
/// from it — must not depend on scheduling. This harness runs all 24
/// Table-1 benchmarks plus the samples/*.blz programs at jobs = 1, 2, and
/// 8 and asserts identical verdicts, bounds, attack specifications,
/// degradation reasons, rendered trees, and step-counter totals.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/Blazer.h"
#include "ir/Cfg.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace blazer;

namespace {

/// Everything observable about one analysis run, rendered to strings so a
/// mismatch prints a readable diff.
struct RunFingerprint {
  std::string Verdict;
  std::string Tree;
  std::string Attacks;
  std::string Degradation;
  uint64_t States = 0;
  uint64_t Joins = 0;
  uint64_t TrailNodes = 0;
};

RunFingerprint fingerprint(const CfgFunction &F, const BlazerResult &R) {
  RunFingerprint FP;
  FP.Verdict = verdictName(R.Verdict);
  FP.Tree = R.treeString(F);
  std::ostringstream Attacks;
  for (const AttackSpec &Spec : R.Attacks)
    Attacks << Spec.str() << "\n";
  FP.Attacks = Attacks.str();
  FP.Degradation = R.Degradation.str();
  FP.States = R.Usage.States;
  FP.Joins = R.Usage.Joins;
  FP.TrailNodes = R.Usage.TrailNodes;
  return FP;
}

void expectIdentical(const RunFingerprint &A, const RunFingerprint &B,
                     const std::string &What, int Jobs) {
  SCOPED_TRACE(What + " at jobs=" + std::to_string(Jobs) + " vs jobs=1");
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Tree, B.Tree);
  EXPECT_EQ(A.Attacks, B.Attacks);
  EXPECT_EQ(A.Degradation, B.Degradation);
  EXPECT_EQ(A.States, B.States);
  EXPECT_EQ(A.Joins, B.Joins);
  EXPECT_EQ(A.TrailNodes, B.TrailNodes);
}

//===----------------------------------------------------------------------===//
// Table-1 benchmarks
//===----------------------------------------------------------------------===//

class BenchmarkDeterminism
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(BenchmarkDeterminism, IdenticalAcrossJobCounts) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  RunFingerprint Sequential = fingerprint(F, runBenchmark(B, {}, 1));
  for (int Jobs : {2, 8}) {
    RunFingerprint Parallel = fingerprint(F, runBenchmark(B, {}, Jobs));
    expectIdentical(Parallel, Sequential, B.Name, Jobs);
  }
}

std::vector<const BenchmarkProgram *> benchmarkPointers() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

std::string benchmarkName(
    const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
  return Info.param->Name;
}

INSTANTIATE_TEST_SUITE_P(Table1, BenchmarkDeterminism,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// Cache transparency: on/off byte-identity at every job count
//===----------------------------------------------------------------------===//

/// The trail-bound cache must be purely a work-saver: verdicts, rendered
/// trees, attack specs, and degradation reasons are byte-identical with
/// the cache on or off at jobs 1, 2, and 8. Step counters are deliberately
/// NOT compared across cache modes — skipping recomputation is the whole
/// point, so States/Joins/TrailNodes legitimately shrink on hits (their
/// cross-job determinism within a mode is covered above).
void expectSameAnalysis(const RunFingerprint &A, const RunFingerprint &B,
                        const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(A.Tree, B.Tree);
  EXPECT_EQ(A.Attacks, B.Attacks);
  EXPECT_EQ(A.Degradation, B.Degradation);
}

class CacheTransparency
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(CacheTransparency, IdenticalWithCacheOnOrOff) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  EngineConfig NoCache;
  NoCache.TrailCache = false;
  RunFingerprint Reference = fingerprint(F, runBenchmark(B, {}, 1, NoCache));
  for (int Jobs : {2, 8})
    expectSameAnalysis(fingerprint(F, runBenchmark(B, {}, Jobs, NoCache)),
                       Reference,
                       B.Name + " cache=off jobs=" + std::to_string(Jobs));
  for (int Jobs : {1, 2, 8})
    expectSameAnalysis(fingerprint(F, runBenchmark(B, {}, Jobs)), Reference,
                       B.Name + " cache=on jobs=" + std::to_string(Jobs));
}

INSTANTIATE_TEST_SUITE_P(Table1, CacheTransparency,
                         ::testing::ValuesIn(benchmarkPointers()),
                         benchmarkName);

//===----------------------------------------------------------------------===//
// samples/*.blz
//===----------------------------------------------------------------------===//

#ifndef BLAZER_SAMPLES_DIR
#error "BLAZER_SAMPLES_DIR must be defined by the build"
#endif

class SampleDeterminism : public ::testing::TestWithParam<const char *> {};

TEST_P(SampleDeterminism, IdenticalAcrossJobCounts) {
  std::string Path = std::string(BLAZER_SAMPLES_DIR) + "/" + GetParam();
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();

  BuiltinRegistry Registry = BuiltinRegistry::standard();
  auto Parsed = parseProgram(Buf.str());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.diag().str();
  auto P = std::make_shared<Program>(Parsed.take());
  auto Checked = analyzeProgram(*P, Registry);
  ASSERT_TRUE(static_cast<bool>(Checked)) << Checked.diag().str();

  for (const auto &Fn : P->Functions) {
    CfgFunction F = lowerFunction(P, Fn->Name, *Checked, Registry);
    BlazerOptions Opt;
    Opt.Jobs = 1;
    RunFingerprint Sequential = fingerprint(F, analyzeFunction(F, Opt));
    for (int Jobs : {2, 8}) {
      Opt.Jobs = Jobs;
      RunFingerprint Parallel = fingerprint(F, analyzeFunction(F, Opt));
      expectIdentical(Parallel, Sequential,
                      std::string(GetParam()) + ":" + Fn->Name, Jobs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, SampleDeterminism,
                         ::testing::Values("adversarial.blz", "modexp.blz",
                                           "pin_check.blz"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (C == '.')
                               C = '_';
                           return Name;
                         });

} // namespace
