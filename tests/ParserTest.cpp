//===- ParserTest.cpp - Tests for the mini-language parser -----------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

Program parseOk(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.diag().str());
  return R ? R.take() : Program();
}

std::string parseErr(const std::string &Src) {
  auto R = parseProgram(Src);
  EXPECT_FALSE(static_cast<bool>(R)) << "expected a parse error";
  return R ? "" : R.diag().Message;
}

TEST(Parser, MinimalFunction) {
  Program P = parseOk("fn f() { }");
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0]->Name, "f");
  EXPECT_TRUE(P.Functions[0]->Params.empty());
  EXPECT_FALSE(P.Functions[0]->HasReturnType);
}

TEST(Parser, ParametersWithLevelsAndTypes) {
  Program P = parseOk(
      "fn f(public a: int, secret b: bool, public c: int[]) { }");
  const FunctionDecl &F = *P.Functions[0];
  ASSERT_EQ(F.Params.size(), 3u);
  EXPECT_EQ(F.Params[0].Level, SecurityLevel::Public);
  EXPECT_EQ(F.Params[0].Type, TypeKind::Int);
  EXPECT_EQ(F.Params[1].Level, SecurityLevel::Secret);
  EXPECT_EQ(F.Params[1].Type, TypeKind::Bool);
  EXPECT_EQ(F.Params[2].Type, TypeKind::IntArray);
}

TEST(Parser, ReturnType) {
  Program P = parseOk("fn f() -> bool { return true; }");
  EXPECT_TRUE(P.Functions[0]->HasReturnType);
  EXPECT_EQ(P.Functions[0]->ReturnType, TypeKind::Bool);
}

TEST(Parser, MultipleFunctions) {
  Program P = parseOk("fn f() { } fn g() { }");
  EXPECT_EQ(P.Functions.size(), 2u);
  EXPECT_NE(P.find("f"), nullptr);
  EXPECT_NE(P.find("g"), nullptr);
  EXPECT_EQ(P.find("h"), nullptr);
}

TEST(Parser, StatementKinds) {
  Program P = parseOk(R"(
    fn f(public a: int[]) {
      var x: int = 1;
      var b: bool;
      x = x + 1;
      a[0] = x;
      if (x > 0) { skip; } else { x = 0; }
      while (x < 10) { x = x + 1; }
      return;
    }
  )");
  const StmtList &Body = P.Functions[0]->Body;
  ASSERT_EQ(Body.size(), 7u);
  EXPECT_TRUE(isa<VarDeclStmt>(Body[0].get()));
  EXPECT_TRUE(isa<VarDeclStmt>(Body[1].get()));
  EXPECT_TRUE(isa<AssignStmt>(Body[2].get()));
  EXPECT_TRUE(isa<ArrayStoreStmt>(Body[3].get()));
  EXPECT_TRUE(isa<IfStmt>(Body[4].get()));
  EXPECT_TRUE(isa<WhileStmt>(Body[5].get()));
  EXPECT_TRUE(isa<ReturnStmt>(Body[6].get()));
  EXPECT_TRUE(isa<SkipStmt>(
      cast<IfStmt>(Body[4].get())->Then[0].get()));
}

TEST(Parser, ElseIfChains) {
  Program P = parseOk(R"(
    fn f(public x: int) {
      if (x == 0) { skip; }
      else if (x == 1) { skip; }
      else { skip; }
    }
  )");
  const auto *If = cast<IfStmt>(P.Functions[0]->Body[0].get());
  ASSERT_EQ(If->Else.size(), 1u);
  EXPECT_TRUE(isa<IfStmt>(If->Else[0].get()));
}

TEST(Parser, PrecedenceMulOverAdd) {
  Program P = parseOk("fn f(public x: int) { x = 1 + 2 * 3; }");
  const auto *A = cast<AssignStmt>(P.Functions[0]->Body[0].get());
  const auto *Add = cast<BinaryExpr>(A->Value.get());
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->Rhs.get())->Op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceCmpOverAnd) {
  Program P = parseOk(
      "fn f(public x: int) { if (x < 1 && x > 0) { skip; } }");
  const auto *If = cast<IfStmt>(P.Functions[0]->Body[0].get());
  const auto *And = cast<BinaryExpr>(If->Cond.get());
  EXPECT_EQ(And->Op, BinaryOp::And);
  EXPECT_EQ(cast<BinaryExpr>(And->Lhs.get())->Op, BinaryOp::Lt);
}

TEST(Parser, PrecedenceAndOverOr) {
  Program P = parseOk(
      "fn f(public a: bool, public b: bool, public c: bool) "
      "{ if (a || b && c) { skip; } }");
  const auto *If = cast<IfStmt>(P.Functions[0]->Body[0].get());
  EXPECT_EQ(cast<BinaryExpr>(If->Cond.get())->Op, BinaryOp::Or);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  Program P = parseOk("fn f(public x: int) { x = (1 + 2) * 3; }");
  const auto *A = cast<AssignStmt>(P.Functions[0]->Body[0].get());
  EXPECT_EQ(cast<BinaryExpr>(A->Value.get())->Op, BinaryOp::Mul);
}

TEST(Parser, UnaryOperators) {
  Program P = parseOk(
      "fn f(public b: bool, public x: int) { b = !b; x = -x; }");
  const auto *A0 = cast<AssignStmt>(P.Functions[0]->Body[0].get());
  EXPECT_EQ(cast<UnaryExpr>(A0->Value.get())->Op, UnaryOp::Not);
  const auto *A1 = cast<AssignStmt>(P.Functions[0]->Body[1].get());
  EXPECT_EQ(cast<UnaryExpr>(A1->Value.get())->Op, UnaryOp::Neg);
}

TEST(Parser, ArrayLengthAndIndex) {
  Program P = parseOk(
      "fn f(public a: int[]) { var n: int = a.length; n = a[n - 1]; }");
  const auto *D = cast<VarDeclStmt>(P.Functions[0]->Body[0].get());
  EXPECT_TRUE(isa<ArrayLengthExpr>(D->Init.get()));
  const auto *A = cast<AssignStmt>(P.Functions[0]->Body[1].get());
  EXPECT_TRUE(isa<ArrayIndexExpr>(A->Value.get()));
}

TEST(Parser, CallsWithArguments) {
  Program P = parseOk("fn f(public x: int) { x = md5(x + 1); }");
  const auto *A = cast<AssignStmt>(P.Functions[0]->Body[0].get());
  const auto *C = cast<CallExpr>(A->Value.get());
  EXPECT_EQ(C->Callee, "md5");
  EXPECT_EQ(C->Args.size(), 1u);
}

TEST(Parser, CallStatement) {
  Program P = parseOk("fn f(public x: int) { md5(x); }");
  EXPECT_TRUE(isa<ExprStmt>(P.Functions[0]->Body[0].get()));
}

TEST(Parser, ReturnWithValue) {
  Program P = parseOk("fn f() -> int { return 1 + 2; }");
  const auto *R = cast<ReturnStmt>(P.Functions[0]->Body[0].get());
  EXPECT_NE(R->Value, nullptr);
}

TEST(Parser, ExprToStringRoundTripShape) {
  Program P = parseOk(
      "fn f(public a: int[], public x: int) { x = (x + 1) * a[x]; }");
  const auto *A = cast<AssignStmt>(P.Functions[0]->Body[0].get());
  EXPECT_EQ(exprToString(A->Value.get()), "((x + 1) * a[x])");
}

//===----------------------------------------------------------------------===//
// Error cases
//===----------------------------------------------------------------------===//

TEST(Parser, ErrorMissingLevel) {
  EXPECT_NE(parseErr("fn f(a: int) { }").find("'public' or 'secret'"),
            std::string::npos);
}

TEST(Parser, ErrorEmptyProgram) {
  EXPECT_NE(parseErr("").find("at least one function"), std::string::npos);
}

TEST(Parser, ErrorUnterminatedBlock) {
  EXPECT_NE(parseErr("fn f() { skip;").find("unterminated"),
            std::string::npos);
}

TEST(Parser, ErrorMissingSemicolon) {
  auto R = parseProgram("fn f(public x: int) { x = 1 }");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(Parser, ErrorBadType) {
  auto R = parseProgram("fn f(public x: string) { }");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(Parser, ErrorDotWithoutLength) {
  auto R = parseProgram("fn f(public a: int[]) { var n: int = a.size; }");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.diag().Message.find(".length"), std::string::npos);
}

TEST(Parser, ErrorHasLocation) {
  auto R = parseProgram("fn f() {\n  var x: int = ;\n}");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.diag().Line, 2);
}

} // namespace
