//===- QuotientPropertyTest.cpp - Theorem 3.1 on enumerated traces ----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests of the §3 semantics on concrete traces: the safety-phase
/// leaf trails of every benchmark must form a ψ_tcf-quotient partition —
/// (1) every terminating trace is covered by a feasible leaf, and
/// (2) any two equal-low traces land in a common leaf.
/// This is the premise of Theorem 3.1 that makes the per-trail
/// (non-relational) bound checks sufficient for the 2-safety property.
///
//===----------------------------------------------------------------------===//

#include "core/QuotientCheck.h"
#include "benchmarks/Benchmarks.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

InputGrid gridFor(const BenchmarkProgram &B) {
  InputGrid Grid;
  Grid.IntValues = {-1, 0, 1, 3};
  Grid.ArrayLengths = {0, 1, 2};
  Grid.ElementValues = {0, 1};
  Grid.MaxAssignments = 600;
  if (B.Name.rfind("modPow2", 0) == 0 || B.Name.rfind("straightline", 0) == 0)
    Grid.MaxAssignments = 200; // Keep the slowest programs tractable.
  return Grid;
}

class QuotientPartition
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(QuotientPartition, LeavesFormPsiTcfQuotient) {
  const BenchmarkProgram &B = *GetParam();
  CfgFunction F = B.compile();
  BlazerResult R = analyzeFunction(F, B.options());
  std::vector<InputAssignment> Inputs = enumerateInputs(F, gridFor(B));
  QuotientCheckResult Q = checkQuotientPartition(F, R, Inputs);
  EXPECT_TRUE(Q.Holds) << B.Name << ": " << Q.CounterExample;
  EXPECT_EQ(Q.TracesCovered, Q.TracesTotal) << B.Name;
  EXPECT_GT(Q.TracesTotal, 0u) << B.Name;
}

std::vector<const BenchmarkProgram *> allPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, QuotientPartition, ::testing::ValuesIn(allPtrs()),
    [](const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
      return Info.param->Name;
    });

//===----------------------------------------------------------------------===//
// Direct checks of the trail-membership machinery
//===----------------------------------------------------------------------===//

TEST(TraceInTrail, AcceptsOwnTraceRejectsOthers) {
  auto FRes = compileSingleFunction(
      "fn f(public x: int) { if (x > 0) { x = 1; } else { x = 2; } }",
      BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(FRes));
  const CfgFunction &F = *FRes;
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  Dfa Cfg = Dfa::fromCfg(F, A);

  InputAssignment Pos;
  Pos.Ints["x"] = 1;
  TraceResult TR = runFunction(F, Pos);
  ASSERT_TRUE(TR.Ok);
  EXPECT_TRUE(traceInTrail(Cfg, A, TR.Edges));

  // A trail avoiding the true edge rejects this trace.
  const BasicBlock &Entry = F.block(F.Entry);
  Dfa Avoid = Cfg.intersect(Dfa::avoidsSymbol(
      static_cast<int>(A.size()),
      A.symbol(Edge{F.Entry, Entry.TrueSucc})));
  EXPECT_FALSE(traceInTrail(Avoid, A, TR.Edges));

  // Edges outside the alphabet are rejected outright.
  EXPECT_FALSE(traceInTrail(Cfg, A, {Edge{97, 98}}));
}

TEST(QuotientCheck, DetectsDeliberatelyBrokenPartition) {
  // A hand-made "partition" that separates equal-low traces: split on the
  // secret branch only. The checker must flag it.
  auto FRes = compileSingleFunction(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (h > 0) { x = 1; } else { x = 2; }
    }
  )",
                                    BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(FRes));
  const CfgFunction &F = *FRes;

  // Build a fake BlazerResult whose "leaves" are the two secret-split
  // halves, marked as taint splits so the checker treats them as the
  // safety partition.
  BoundAnalysis BA(F);
  const BasicBlock &Entry = F.block(F.Entry);
  int SymT = BA.alphabet().symbol(Edge{F.Entry, Entry.TrueSucc});
  int SymF = BA.alphabet().symbol(Edge{F.Entry, Entry.FalseSucc});
  int N = static_cast<int>(BA.alphabet().size());

  BlazerResult Fake;
  Trail Root;
  Root.Id = 0;
  Root.Auto = BA.mostGeneralTrail();
  Root.Bounds = BA.analyzeTrail(Root.Auto);
  Root.Children = {1, 2};
  Fake.Tree.push_back(Root);
  for (int I = 0; I < 2; ++I) {
    Trail T;
    T.Id = 1 + I;
    T.Parent = 0;
    T.Auto = Root.Auto.intersect(
        Dfa::avoidsSymbol(N, I == 0 ? SymF : SymT));
    T.SplitOn.Low = true; // Lie: pretend this was a taint split.
    T.Bounds = BA.analyzeTrail(T.Auto);
    Fake.Tree.push_back(T);
  }

  InputGrid Grid;
  Grid.IntValues = {-1, 1};
  QuotientCheckResult Q =
      checkQuotientPartition(F, Fake, enumerateInputs(F, Grid));
  EXPECT_FALSE(Q.Holds);
  EXPECT_NE(Q.CounterExample.find("share no leaf trail"),
            std::string::npos);
}

TEST(QuotientCheck, MostGeneralTrailAloneIsAlwaysQuotient) {
  // Example 3 of the paper: the trivial partition {JCK} is ψ-quotient for
  // any ψ.
  auto FRes = compileSingleFunction(R"(
    fn f(secret h: int, public l: int) {
      var i: int = 0;
      while (i < l) { i = i + 1; }
    }
  )",
                                    BuiltinRegistry::standard());
  ASSERT_TRUE(static_cast<bool>(FRes));
  const CfgFunction &F = *FRes;
  BoundAnalysis BA(F);
  BlazerResult Fake;
  Trail Root;
  Root.Id = 0;
  Root.Auto = BA.mostGeneralTrail();
  Root.Bounds = BA.analyzeTrail(Root.Auto);
  Fake.Tree.push_back(Root);
  InputGrid Grid;
  QuotientCheckResult Q =
      checkQuotientPartition(F, Fake, enumerateInputs(F, Grid));
  EXPECT_TRUE(Q.Holds) << Q.CounterExample;
}

} // namespace
