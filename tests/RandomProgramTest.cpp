//===- RandomProgramTest.cpp - Differential fuzzing of the analyzer ---------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential property testing on *generated* programs: a deterministic
/// structured generator produces random mini-language functions (nested
/// ifs/whiles over public and secret data), and each one is checked for
///  - bound soundness: the most-general-trail bounds contain every
///    concrete run's cost,
///  - verdict soundness: if the driver says Safe, no equal-low input pair
///    on the grid differs beyond the observer's power,
///  - quotient soundness: the safety-phase leaves form a ψ_tcf-quotient
///    partition of the sampled traces (Theorem 3.1's premise),
///  - parallel determinism + soundness: jobs=4 reproduces the jobs=1 tree
///    byte-for-byte and per-component bounds stay sound in both modes,
///  - fail-soft under budgets: a tripped run never reports Safe, at any
///    job count.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "bounds/BoundAnalysis.h"
#include "core/QuotientCheck.h"
#include "selfcomp/SelfComposition.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace blazer;

namespace {

/// Deterministic xorshift RNG (no global state, reproducible per seed).
class Rng {
public:
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761u + 0x9E3779B9u) {}

  uint32_t next() {
    S ^= S << 13;
    S ^= S >> 17;
    S ^= S << 5;
    return S;
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint32_t S;
};

/// Generates a structured random function over params (secret h, public l)
/// and locals a, b, i0..i<loops>. Loops are always of the bounded
/// counter shape so every generated program terminates.
class ProgramGen {
public:
  explicit ProgramGen(uint32_t Seed) : R(Seed) {}

  std::string generate() {
    OS << "fn fuzz(secret h: int, public l: int) {\n";
    OS << "  var a: int = 0;\n  var b: int = 0;\n";
    emitBlock(2, 0);
    OS << "}\n";
    return OS.str();
  }

private:
  const char *scalar() {
    switch (R.range(0, 3)) {
    case 0:
      return "h";
    case 1:
      return "l";
    case 2:
      return "a";
    default:
      return "b";
    }
  }
  const char *target() { return R.chance(50) ? "a" : "b"; }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  std::string cond() {
    std::ostringstream C;
    const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    C << scalar() << " " << Ops[R.range(0, 5)] << " ";
    if (R.chance(50))
      C << R.range(-3, 5);
    else
      C << scalar();
    return C.str();
  }

  void emitAssign(int Depth) {
    indent(Depth);
    const char *T = target();
    switch (R.range(0, 3)) {
    case 0:
      OS << T << " = " << R.range(-4, 9) << ";\n";
      break;
    case 1:
      OS << T << " = " << scalar() << " + " << R.range(-2, 4) << ";\n";
      break;
    case 2:
      OS << T << " = " << T << " + " << scalar() << ";\n";
      break;
    default:
      OS << "skip;\n";
      break;
    }
  }

  void emitLoop(int Depth) {
    int Id = NextLoop++;
    std::string V = "i" + std::to_string(Id);
    // A bounded counter loop: trips = max(0, bound - start).
    indent(Depth);
    OS << "var " << V << ": int = 0;\n";
    indent(Depth);
    std::string Bound = R.chance(60) ? std::string(R.chance(50) ? "l" : "h")
                                     : std::to_string(R.range(0, 6));
    OS << "while (" << V << " < " << Bound << ") {\n";
    int Stmts = R.range(1, 2);
    for (int I = 0; I < Stmts; ++I)
      emitStmt(Depth + 1, /*AllowLoop=*/false);
    indent(Depth + 1);
    OS << V << " = " << V << " + 1;\n";
    indent(Depth);
    OS << "}\n";
  }

  void emitIf(int Depth, int Budget) {
    indent(Depth);
    OS << "if (" << cond() << ") {\n";
    emitBlock(Depth + 1, Budget);
    if (R.chance(70)) {
      indent(Depth);
      OS << "} else {\n";
      emitBlock(Depth + 1, Budget);
    }
    indent(Depth);
    OS << "}\n";
  }

  void emitStmt(int Depth, bool AllowLoop, int Budget = 0) {
    int Kind = R.range(0, 9);
    if (Kind < 6 || Depth > 4) {
      emitAssign(Depth);
    } else if (Kind < 8 && AllowLoop) {
      emitLoop(Depth);
    } else {
      emitIf(Depth, Budget);
    }
  }

  void emitBlock(int Depth, int Budget) {
    int Stmts = R.range(1, 3);
    for (int I = 0; I < Stmts; ++I)
      emitStmt(Depth, /*AllowLoop=*/Budget < 2, Budget + 1);
  }

  Rng R;
  std::ostringstream OS;
  int NextLoop = 0;
};

CfgFunction compileFuzz(uint32_t Seed, std::string *SrcOut = nullptr) {
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  if (SrcOut)
    *SrcOut = Src;
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F))
      << (F ? "" : F.diag().str()) << "\n" << Src;
  return F.take();
}

std::vector<InputAssignment> fuzzInputs(const CfgFunction &F) {
  InputGrid Grid;
  Grid.IntValues = {-2, 0, 1, 3, 6};
  return enumerateInputs(F, Grid);
}

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, MostGeneralBoundsContainEveryRun) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam()), &Src);
  BoundAnalysis BA(F);
  TrailBoundResult R = BA.analyzeTrail(BA.mostGeneralTrail());
  ASSERT_TRUE(R.Feasible) << Src;

  for (const InputAssignment &In : fuzzInputs(F)) {
    TraceResult TR = runFunction(F, In);
    if (!TR.Ok)
      continue; // Step limit or arithmetic fault: outside the claim.
    std::map<std::string, int64_t> Env(In.Ints.begin(), In.Ints.end());
    EXPECT_LE(R.Lo.evaluate(Env), TR.Cost)
        << Src << "input " << In.str() << " bounds " << R.str();
    if (R.hasUpper()) {
      EXPECT_GE(R.Hi->evaluate(Env), TR.Cost)
          << Src << "input " << In.str() << " bounds " << R.str();
    }
  }
}

TEST_P(RandomPrograms, SafeVerdictMatchesEmpiricalGroundTruth) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 1000),
                              &Src);
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(32);
  BlazerResult R = analyzeFunction(F, Opt);
  if (R.Verdict != VerdictKind::Safe)
    return; // Attack/unknown verdicts carry no per-pair guarantee here.

  // The degree observer certifies equal asymptotics, and constant-time
  // components up to epsilon. On the small grid (loops run <= ~8 times),
  // an equal-low pair may differ through a secret-bounded loop only if
  // some trail is linear in the secret — which the degree model permits.
  // A *large constant-free* divergence would indicate a broken proof; we
  // check the strongest grid-checkable consequence: components whose
  // bounds are all constants stay within epsilon.
  bool AllConstant = true;
  for (const Trail &T : R.Tree)
    if (T.isLeaf() && T.feasible() && T.Bounds.hasUpper() &&
        !(T.Bounds.range().Lo.isConstant() &&
          T.Bounds.range().Hi.isConstant()))
      AllConstant = false;
  if (!AllConstant)
    return;
  EmpiricalTcf E = empiricalTimingCheck(F, fuzzInputs(F));
  EXPECT_LE(E.MaxGapEqualLow, 32)
      << Src
      << (E.Witness ? E.Witness->first.str() + " vs " +
                          E.Witness->second.str()
                    : "");
}

TEST_P(RandomPrograms, SafetyLeavesFormQuotientPartition) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 2000),
                              &Src);
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(32);
  BlazerResult R = analyzeFunction(F, Opt);
  QuotientCheckResult Q = checkQuotientPartition(F, R, fuzzInputs(F));
  EXPECT_TRUE(Q.Holds) << Src << "\n" << Q.CounterExample;
  EXPECT_EQ(Q.TracesCovered, Q.TracesTotal) << Src;
}

TEST_P(RandomPrograms, SelfCompositionNeverContradictsGroundTruth) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 3000),
                              &Src);
  SelfCompResult S = verifyBySelfComposition(F, /*Epsilon=*/32);
  if (!S.Verified)
    return; // Only a "verified" claim is falsifiable on the grid.
  EmpiricalTcf E = empiricalTimingCheck(F, fuzzInputs(F));
  EXPECT_LE(E.MaxGapEqualLow, 32) << Src;
}

TEST_P(RandomPrograms, ParallelAnalysisMatchesSequentialAndStaysSound) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 4000),
                              &Src);
  BlazerOptions Opt;
  Opt.Observer = ObserverModel::polynomialDegree(32);
  Opt.Jobs = 1;
  BlazerResult Seq = analyzeFunction(F, Opt);
  Opt.Jobs = 4;
  BlazerResult Par = analyzeFunction(F, Opt);

  // Determinism: the parallel driver plans splits concurrently but adopts
  // them in tree order, so the whole result must match the sequential run.
  EXPECT_EQ(Seq.Verdict, Par.Verdict) << Src;
  EXPECT_EQ(Seq.treeString(F), Par.treeString(F)) << Src;
  EXPECT_EQ(Seq.Usage.States, Par.Usage.States) << Src;
  EXPECT_EQ(Seq.Usage.TrailNodes, Par.Usage.TrailNodes) << Src;

  // Soundness under both modes: every interpreter-observed running time
  // lies within the bounds of each component covering its trace.
  EdgeAlphabet A = EdgeAlphabet::forFunction(F);
  for (const InputAssignment &In : fuzzInputs(F)) {
    TraceResult TR = runFunction(F, In);
    if (!TR.Ok)
      continue;
    std::map<std::string, int64_t> Env(In.Ints.begin(), In.Ints.end());
    for (const BlazerResult *R : {&Seq, &Par}) {
      const char *Mode = R == &Seq ? "jobs=1" : "jobs=4";
      for (const Trail &T : R->Tree) {
        if (!T.feasible() || !traceInTrail(T.Auto, A, TR.Edges))
          continue;
        EXPECT_LE(T.Bounds.Lo.evaluate(Env), TR.Cost)
            << Src << Mode << " tr" << T.Id << " input " << In.str();
        if (T.Bounds.hasUpper()) {
          EXPECT_GE(T.Bounds.Hi->evaluate(Env), TR.Cost)
              << Src << Mode << " tr" << T.Id << " input " << In.str();
        }
      }
    }
  }
}

TEST_P(RandomPrograms, BudgetTrippedRunsNeverReportSafe) {
  std::string Src;
  CfgFunction F = compileFuzz(static_cast<uint32_t>(GetParam() + 5000),
                              &Src);
  // Sweep tight step budgets under sequential and parallel execution: a
  // tripped run may truncate refinement anywhere, but fail-soft means it
  // must never claim Safe.
  for (int Jobs : {1, 4}) {
    for (uint64_t MaxStates : {1u, 16u, 256u}) {
      BlazerOptions Opt;
      Opt.Observer = ObserverModel::polynomialDegree(32);
      Opt.Jobs = Jobs;
      Opt.Budget.MaxStates = MaxStates;
      Opt.Budget.MaxTrailNodes = MaxStates;
      BlazerResult R = analyzeFunction(F, Opt);
      if (R.Degradation.tripped()) {
        EXPECT_NE(R.Verdict, VerdictKind::Safe)
            << Src << "jobs=" << Jobs << " maxStates=" << MaxStates;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 40));

TEST(ProgramGen, IsDeterministic) {
  ProgramGen A(7), B(7), C(8);
  EXPECT_EQ(A.generate(), B.generate());
  EXPECT_NE(ProgramGen(7).generate(), C.generate());
}

} // namespace
