//===- SelfCompTest.cpp - Tests for the self-composition baseline -----------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "selfcomp/SelfComposition.h"
#include "benchmarks/Benchmarks.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

CfgFunction compile(const std::string &Src) {
  auto F = compileSingleFunction(Src, BuiltinRegistry::standard());
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.diag().str());
  return F.take();
}

TEST(SelfComp, ComposedCfgHasTwoCopiesPlusPrologue) {
  CfgFunction F = compile("fn f(secret h: int, public l: int) { skip; }");
  CfgFunction C = buildSelfComposition(F);
  EXPECT_EQ(C.blockCount(), 2 * F.blockCount() + 1);
  EXPECT_EQ(C.Name, "f$selfcomp");
}

TEST(SelfComp, LowParamsSharedHighParamsDuplicated) {
  CfgFunction F = compile(
      "fn f(secret h: int, public l: int, secret arr: int[]) { }");
  CfgFunction C = buildSelfComposition(F);
  std::set<std::string> Names;
  for (const Param &P : C.Params)
    Names.insert(P.Name);
  EXPECT_TRUE(Names.count("l"));
  EXPECT_TRUE(Names.count("h$1"));
  EXPECT_TRUE(Names.count("h$2"));
  EXPECT_TRUE(Names.count("arr$1"));
  EXPECT_TRUE(Names.count("arr$2"));
  EXPECT_FALSE(Names.count("h"));
  EXPECT_EQ(C.paramLevel("l"), SecurityLevel::Public);
  EXPECT_EQ(C.paramLevel("h$1"), SecurityLevel::Secret);
}

TEST(SelfComp, CostCountersDeclared) {
  CfgFunction F = compile("fn f(public l: int) { }");
  CfgFunction C = buildSelfComposition(F);
  EXPECT_EQ(C.VarTypes.at("cost$1"), TypeKind::Int);
  EXPECT_EQ(C.VarTypes.at("cost$2"), TypeKind::Int);
}

TEST(SelfComp, ComposedProgramIsRunnable) {
  // The composition is an ordinary CfgFunction: the interpreter can run it
  // and both copies execute (visible through the shared low parameter).
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) -> int {
      var x: int = l + h;
      return x;
    }
  )");
  CfgFunction C = buildSelfComposition(F);
  InputAssignment In;
  In.Ints["l"] = 3;
  In.Ints["h$1"] = 10;
  In.Ints["h$2"] = 20;
  TraceResult TR = runFunction(C, In);
  EXPECT_TRUE(TR.Ok) << TR.Error;
}

//===----------------------------------------------------------------------===//
// Verification outcomes
//===----------------------------------------------------------------------===//

TEST(SelfComp, VerifiesStraightLineCode) {
  CfgFunction F = compile(
      "fn f(secret h: int, public l: int) { var x: int = h + l; x = x * 2; }");
  SelfCompResult R = verifyBySelfComposition(F, /*Epsilon=*/0);
  EXPECT_TRUE(R.GapBounded);
  EXPECT_TRUE(R.Verified);
  EXPECT_EQ(R.GapUpper, 0);
  EXPECT_EQ(R.GapLower, 0);
}

TEST(SelfComp, VerifiesBalancedSecretBranch) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (h == 0) { x = 1; } else { x = 2; }
    }
  )");
  SelfCompResult R = verifyBySelfComposition(F, /*Epsilon=*/4);
  EXPECT_TRUE(R.GapBounded);
  EXPECT_TRUE(R.Verified);
}

TEST(SelfComp, RefutesUnbalancedSecretBranchWithTightEpsilon) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (h == 0) { x = 1; } else { x = md5(l); }
    }
  )");
  SelfCompResult R = verifyBySelfComposition(F, /*Epsilon=*/16);
  EXPECT_TRUE(R.GapBounded);
  EXPECT_FALSE(R.Verified);
  EXPECT_GE(R.GapUpper, 800); // The md5 imbalance shows in the gap.
}

TEST(SelfComp, LosesLoopsThatDecompositionHandles) {
  // Example 1 of the paper: decomposition proves it (see BlazerDriverTest);
  // the sequential self-composition cannot relate the two loop counters
  // through widening and fails — exactly the paper's motivation.
  CfgFunction F = compile(R"(
    fn foo(secret high: int, public low: int) {
      var i: int = 0;
      if (high == 0) {
        i = 0;
        while (i < low) { i = i + 1; }
      } else {
        i = low;
        while (i > 0) { i = i - 1; }
      }
    }
  )");
  SelfCompResult R = verifyBySelfComposition(F, /*Epsilon=*/64);
  EXPECT_FALSE(R.Verified);
  EXPECT_FALSE(R.GapBounded);
}

TEST(SelfComp, StateSpaceGrowsQuadratically) {
  CfgFunction F = compile(R"(
    fn f(secret h: int, public l: int) {
      var x: int = 0;
      if (l > 0) { x = 1; } else { x = 2; }
      if (l > 1) { x = 3; } else { x = 4; }
    }
  )");
  SelfCompResult R = verifyBySelfComposition(F, 4);
  EXPECT_EQ(R.ComposedBlocks, 2 * F.blockCount() + 1);
  EXPECT_GE(R.ProductNodes, R.ComposedBlocks - 2);
}

//===----------------------------------------------------------------------===//
// Sweep over the benchmark suite: the baseline must never out-verify the
// ground truth (no unsafe benchmark may be "verified").
//===----------------------------------------------------------------------===//

class SelfCompOnBenchmarks
    : public ::testing::TestWithParam<const BenchmarkProgram *> {};

TEST_P(SelfCompOnBenchmarks, NeverVerifiesUnsafePrograms) {
  const BenchmarkProgram &B = *GetParam();
  if (B.Expected == VerdictKind::Safe)
    GTEST_SKIP() << "only checking unsafe programs here";
  CfgFunction F = B.compile();
  SelfCompResult R =
      verifyBySelfComposition(F, B.options().Observer.threshold());
  EXPECT_FALSE(R.Verified) << B.Name;
}

std::vector<const BenchmarkProgram *> allPtrs() {
  std::vector<const BenchmarkProgram *> Out;
  for (const BenchmarkProgram &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, SelfCompOnBenchmarks, ::testing::ValuesIn(allPtrs()),
    [](const ::testing::TestParamInfo<const BenchmarkProgram *> &Info) {
      return Info.param->Name;
    });

} // namespace
