//===- SemaTest.cpp - Tests for semantic analysis ---------------------------===//
//
// Part of the Blazer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace blazer;

namespace {

struct SemaOutcome {
  bool Ok;
  std::string Message;
  SemaResult Result;
};

SemaOutcome runSema(const std::string &Src) {
  auto P = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.diag().str());
  if (!P)
    return {false, "parse error", {}};
  Program Prog = P.take();
  auto S = analyzeProgram(Prog, BuiltinRegistry::standard());
  if (!S)
    return {false, S.diag().Message, {}};
  return {true, "", S.take()};
}

TEST(Sema, CollectsVarTypesAndLevels) {
  SemaOutcome O = runSema(
      "fn f(public a: int, secret b: int[]) { var x: bool = true; }");
  ASSERT_TRUE(O.Ok) << O.Message;
  const FunctionInfo &Info = O.Result.Functions.at("f");
  EXPECT_EQ(Info.VarTypes.at("a"), TypeKind::Int);
  EXPECT_EQ(Info.VarTypes.at("b"), TypeKind::IntArray);
  EXPECT_EQ(Info.VarTypes.at("x"), TypeKind::Bool);
  EXPECT_EQ(Info.ParamLevels.at("a"), SecurityLevel::Public);
  EXPECT_EQ(Info.ParamLevels.at("b"), SecurityLevel::Secret);
  EXPECT_EQ(Info.ParamLevels.count("x"), 0u);
}

TEST(Sema, AnnotatesExpressionTypes) {
  auto P = parseProgram("fn f(public a: int) { var b: bool = a < 1; }");
  ASSERT_TRUE(static_cast<bool>(P));
  Program Prog = P.take();
  ASSERT_TRUE(
      static_cast<bool>(analyzeProgram(Prog, BuiltinRegistry::standard())));
  const auto *D = cast<VarDeclStmt>(Prog.Functions[0]->Body[0].get());
  EXPECT_EQ(D->Init->type(), TypeKind::Bool);
  EXPECT_EQ(cast<BinaryExpr>(D->Init.get())->Lhs->type(), TypeKind::Int);
}

TEST(Sema, BuiltinCallTypes) {
  SemaOutcome O = runSema(
      "fn f(public x: int) { var y: int = mulmod(x, x, 7); }");
  EXPECT_TRUE(O.Ok) << O.Message;
}

//===----------------------------------------------------------------------===//
// Rejections
//===----------------------------------------------------------------------===//

struct BadCase {
  const char *Name;
  const char *Src;
  const char *ExpectSubstring;
};

class SemaRejects : public ::testing::TestWithParam<BadCase> {};

TEST_P(SemaRejects, ReportsError) {
  SemaOutcome O = runSema(GetParam().Src);
  ASSERT_FALSE(O.Ok) << "expected a sema error";
  EXPECT_NE(O.Message.find(GetParam().ExpectSubstring), std::string::npos)
      << "got: " << O.Message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemaRejects,
    ::testing::Values(
        BadCase{"UndeclaredRead", "fn f() { var x: int = y; }",
                "undeclared"},
        BadCase{"UndeclaredAssign", "fn f() { x = 1; }", "undeclared"},
        BadCase{"Redeclaration",
                "fn f(public x: int) { var x: int = 0; }",
                "redeclaration"},
        BadCase{"DuplicateParam", "fn f(public x: int, secret x: int) { }",
                "duplicate parameter"},
        BadCase{"DuplicateFunction", "fn f() { } fn f() { }",
                "duplicate function"},
        BadCase{"IntCondition", "fn f(public x: int) { if (x) { } }",
                "must be bool"},
        BadCase{"BoolArithmetic",
                "fn f(public b: bool) { var x: int = b + 1; }",
                "needs int operands"},
        BadCase{"MixedEquality",
                "fn f(public b: bool, public x: int) "
                "{ var c: bool = b == x; }",
                "matching"},
        BadCase{"AssignTypeMismatch",
                "fn f(public x: int) { x = true; }", "type mismatch"},
        BadCase{"ArrayNotReassignable",
                "fn f(public a: int[], public b: int[]) { a = 0; }",
                "cannot reassign array"},
        BadCase{"IndexingNonArray",
                "fn f(public x: int) { var y: int = x[0]; }",
                "is not an array"},
        BadCase{"BoolArrayIndex",
                "fn f(public a: int[], public b: bool) "
                "{ var y: int = a[b]; }",
                "index must be int"},
        BadCase{"ArrayUsedAsScalar",
                "fn f(public a: int[]) { var y: int = a; }",
                "indexed or measured"},
        BadCase{"UnknownBuiltin", "fn f(public x: int) { frobnicate(x); }",
                "unknown builtin"},
        BadCase{"BuiltinArity", "fn f(public x: int) { var y: int = md5(); }",
                "expects 1 arguments"},
        BadCase{"BuiltinArgType",
                "fn f(public b: bool) { var y: int = md5(b); }",
                "wrong type"},
        BadCase{"ReturnTypeMismatch",
                "fn f() -> int { return true; }", "return type mismatch"},
        BadCase{"WhileCondInt",
                "fn f(public x: int) { while (x + 1) { } }",
                "must be bool"},
        BadCase{"NotOnInt", "fn f(public x: int) { var b: bool = !x; }",
                "needs a bool"},
        BadCase{"NegOnBool", "fn f(public b: bool) { var x: int = -b; }",
                "needs an int"}),
    [](const ::testing::TestParamInfo<BadCase> &Info) {
      return Info.param.Name;
    });

TEST(Sema, ArrayLocalsAllowedButNotInitialized) {
  SemaOutcome Ok = runSema("fn f() { var a: int[]; }");
  EXPECT_TRUE(Ok.Ok) << Ok.Message;
  SemaOutcome Bad = runSema("fn f(public b: int[]) { var a: int[] = b; }");
  EXPECT_FALSE(Bad.Ok);
}

TEST(Sema, DeclareBeforeUseEnforcedInOrder) {
  SemaOutcome O = runSema("fn f() { x = 1; var x: int = 0; }");
  EXPECT_FALSE(O.Ok);
}

} // namespace
